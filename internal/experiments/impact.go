package experiments

import (
	"moe/internal/stats"
)

// WorkloadImpact reproduces Fig 13a: the effect of each target policy on
// co-executing workload performance, relative to the default policy,
// averaged across all experiment settings. Result 3: the mixture never
// slows workloads and improves them on average (reduced system-wide
// contention benefits everyone).
func (l *Lab) WorkloadImpact(sc Scale) (*Table, error) {
	t := &Table{
		Title:   "Fig 13a — workload performance relative to default",
		Columns: policyColumns(BaselinePolicies),
	}
	nt := len(sc.Targets)
	cells, err := grid(l, len(scenarioKinds)*nt, func(i int) (map[PolicyName]float64, error) {
		kind := scenarioKinds[i/nt]
		_, wl, err := l.targetScenarioSpeedups(sc.Targets[i%nt], kind.Size, kind.Freq, BaselinePolicies, sc)
		return wl, err
	})
	if err != nil {
		return nil, err
	}
	per := make(map[PolicyName][]float64)
	for _, wl := range cells {
		for _, n := range BaselinePolicies {
			per[n] = append(per[n], wl[n])
		}
	}
	vals := make([]float64, len(BaselinePolicies))
	for i, n := range BaselinePolicies {
		vals[i] = stats.HMean(per[n])
	}
	t.AddRow("workload", vals...)
	return t, nil
}

// AdaptivePairs reproduces Fig 13b (§7.4): both the target and the workload
// adapt with the same policy; the reported value is the combined speedup of
// the pair over both running the default, averaged across program pairs.
// Result 4: smart policies on both sides create a win–win, and the mixture
// most of all.
func (l *Lab) AdaptivePairs(sc Scale) (*Table, error) {
	t := &Table{
		Title:   "Fig 13b — both programs adaptive (combined speedup over default/default)",
		Columns: policyColumns(BaselinePolicies),
	}

	// Program pairs: each target with a partner of the opposite
	// scalability character, cycling through the scale's target list.
	targets := sc.Targets
	type pairJob struct {
		target, partner string
		name            PolicyName
		salt            uint64
	}
	var pairs []pairJob
	for i, target := range targets {
		partner := targets[(i+len(targets)/2)%len(targets)]
		if partner == target {
			continue
		}
		for _, name := range BaselinePolicies {
			pairs = append(pairs, pairJob{target, partner, name, uint64(i)})
		}
	}
	combined, err := grid(l, len(pairs), func(i int) (float64, error) {
		p := pairs[i]
		return l.adaptivePair(p.target, p.partner, p.name, sc, p.salt)
	})
	if err != nil {
		return nil, err
	}
	per := make(map[PolicyName][]float64)
	for i, p := range pairs {
		per[p.name] = append(per[p.name], combined[i])
	}
	vals := make([]float64, len(BaselinePolicies))
	for i, n := range BaselinePolicies {
		vals[i] = stats.HMean(per[n])
	}
	t.AddRow("pair", vals...)
	return t, nil
}

// adaptivePair measures the combined-execution speedup when target and
// partner both use the named policy versus both using the default. The
// combined metric is the harmonic mean of the two programs' individual
// speedups (equal weight to both sides of the pair).
func (l *Lab) adaptivePair(target, partner string, name PolicyName, sc Scale, salt uint64) (float64, error) {
	run := func(policyName PolicyName) (float64, float64, error) {
		var sumT, sumW float64
		for r := 0; r < max(1, sc.Repeats); r++ {
			spec := ScenarioSpec{
				Target:         target,
				Workload:       []string{partner},
				HWFreq:         scenarioKinds[0].Freq,
				WorkloadPolicy: policyName,
				Seed:           sc.Seed + salt*65537 + uint64(r)*1000003,
			}
			out, err := l.Run(spec, policyName)
			if err != nil {
				return 0, 0, err
			}
			sumT += out.ExecTime
			sumW += out.WorkloadThroughput
		}
		return sumT, sumW, nil
	}
	baseT, baseW, err := run(PolicyDefault)
	if err != nil {
		return 0, err
	}
	polT, polW, err := run(name)
	if err != nil {
		return 0, err
	}
	spT := baseT / polT
	spW := 1.0
	if baseW > 0 && polW > 0 {
		spW = polW / baseW
	}
	h, err := stats.HarmonicMean([]float64{spT, spW})
	if err != nil {
		return 0, err
	}
	return h, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
