package core

import (
	"math"
	"testing"
	"testing/quick"

	"moe/internal/expert"
	"moe/internal/features"
	"moe/internal/sim"
)

// Property tests on the selector and mixture invariants.

func cleanVec(raw [features.Dim]float64) features.Vector {
	var f features.Vector
	for i := range f {
		x := raw[i]
		if math.IsNaN(x) || math.IsInf(x, 0) {
			x = 0
		}
		f[i] = math.Mod(math.Abs(x), 1e4)
	}
	return f
}

func TestHyperplaneSelectorAlwaysInRange(t *testing.T) {
	// Arbitrary interleavings of Select and Update never produce an
	// out-of-range expert index or a panic.
	f := func(k8 uint8, states [][features.Dim]float64, errsRaw [][4]float64) bool {
		k := int(k8%4) + 1
		sel := NewHyperplaneSelector(k, 0)
		for i, raw := range states {
			v := cleanVec(raw)
			if got := sel.Select(v); got < 0 || got >= k {
				return false
			}
			errs := make([]float64, k)
			if i < len(errsRaw) {
				for j := 0; j < k; j++ {
					errs[j] = math.Abs(math.Mod(errsRaw[i][j%4], 1e3))
				}
			}
			sel.Update(v, errs)
			if got := sel.Select(v); got < 0 || got >= k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHyperplaneSelectorIgnoresWrongWidthUpdates(t *testing.T) {
	sel := NewHyperplaneSelector(3, 0)
	var f features.Vector
	sel.Update(f, []float64{1})       // too narrow: ignored
	sel.Update(f, make([]float64, 7)) // too wide: ignored
	if got := sel.Select(f); got < 0 || got > 2 {
		t.Errorf("selection %d out of range", got)
	}
}

func TestMixtureDecisionsAlwaysInRange(t *testing.T) {
	// The canonical experts driven by arbitrary feature states and caps
	// always produce a legal thread count and never panic.
	set := expert.Canonical4()
	f := func(states [][features.Dim]float64, cap8 bool) bool {
		m, err := NewMixture(set, Options{})
		if err != nil {
			return false
		}
		maxN := 32
		if cap8 {
			maxN = 8
		}
		for i, raw := range states {
			v := cleanVec(raw)
			n := m.Decide(sim.Decision{
				Time:           float64(i),
				Features:       v,
				MaxThreads:     maxN,
				AvailableProcs: maxN,
			})
			if n < 1 || n > maxN {
				return false
			}
		}
		st := m.Snapshot()
		sum := 0.0
		for _, frac := range st.SelectionFraction {
			if frac < 0 || frac > 1 {
				return false
			}
			sum += frac
		}
		return len(states) == 0 || math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMixtureAccuracyBoundsProperty(t *testing.T) {
	// Whatever the inputs, every accuracy statistic stays in [0, 1].
	set := expert.Canonical4()
	f := func(states [][features.Dim]float64) bool {
		m, err := NewMixture(set, Options{})
		if err != nil {
			return false
		}
		for i, raw := range states {
			m.Decide(sim.Decision{Time: float64(i), Features: cleanVec(raw), MaxThreads: 32, AvailableProcs: 32})
		}
		st := m.Snapshot()
		for _, a := range st.EnvAccuracy {
			if a < 0 || a > 1 {
				return false
			}
		}
		return st.MixtureEnvAccuracy >= 0 && st.MixtureEnvAccuracy <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestApplicabilityFactorMonotone(t *testing.T) {
	e := &expert.Expert{Name: "a"}
	for i := range e.FeatMean {
		e.FeatMean[i] = 10
		e.FeatStd[i] = 1
	}
	prev := 0.0
	for z := 0.0; z < 20; z += 0.5 {
		var f features.Vector
		for i := range f {
			f[i] = 10
		}
		f[features.Processors] = 10 + z
		got := applicabilityFactor(e, &f)
		if got < 1 {
			t.Fatalf("factor below 1 at z=%v", z)
		}
		if got < prev {
			t.Fatalf("factor not monotone at z=%v", z)
		}
		prev = got
	}
}
