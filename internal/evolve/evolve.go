// Package evolve implements the online expert lifecycle: quality-diversity
// emitters that breed candidate experts from the live pool's coefficient
// tables, a bounded history of raw observations to refit candidates
// against, and per-niche performance bookkeeping that decides which experts
// have earned retirement.
//
// The package is deliberately inert: it owns no goroutines, reads no
// clocks, and draws randomness only from its own seeded generator, so a
// mixture that replays the same decision stream replays the same births and
// retirements bit-for-bit. internal/core drives the lifecycle from its
// decision loop; this package only answers "what would the next candidate
// look like" and "who is dominated".
package evolve

// RNG is a splitmix64 generator. It is the lifecycle's only randomness
// source; its state is a single word, exported for checkpointing, so a
// restored run resumes the exact emitter stream the crashed run would have
// produced.
type RNG struct {
	s uint64
}

// NewRNG returns a generator seeded with seed (a zero seed is remapped to a
// fixed odd constant so the stream never degenerates).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{s: seed}
}

// Uint64 advances the stream.
func (r *RNG) Uint64() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform draw from [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Sym returns a uniform draw from [-1,1).
func (r *RNG) Sym() float64 { return 2*r.Float64() - 1 }

// Intn returns a uniform draw from [0,n). n must be positive.
func (r *RNG) Intn(n int) int {
	return int(r.Uint64() % uint64(n))
}

// State exposes the generator word for checkpointing.
func (r *RNG) State() uint64 { return r.s }

// SetState restores a checkpointed generator word.
func (r *RNG) SetState(s uint64) { r.s = s }

// Config tunes the lifecycle. The zero value means Enabled=false: the pool
// stays frozen and the mixture behaves — and serializes — exactly as it did
// before this package existed.
type Config struct {
	// Enabled turns the lifecycle on. Everything below is ignored when
	// false.
	Enabled bool
	// Period is how many decisions pass between lifecycle steps (one
	// retirement test plus at most one birth per step). Default 60.
	Period int
	// Seed seeds the emitter RNG. The stream is combined with nothing
	// else — two runs with the same seed and the same observations evolve
	// identically. Default 1.
	Seed uint64
	// MaxPool caps the pool size; no births happen at the cap. Default
	// 2·K₀+2 where K₀ is the construction pool size.
	MaxPool int
	// MinPool floors the pool size; no retirements happen at the floor.
	// Default K₀ (the pool never shrinks below its seed diversity).
	MinPool int
	// MinAge is how many decisions an expert must have lived before it can
	// be retired, so a newborn is not culled while still accumulating its
	// first niche evidence. Default 3·Period.
	MinAge int
	// HistoryCap bounds the in-memory ring of scored observations that
	// candidate refits train on. Default 256.
	HistoryCap int
	// RefitMin is the minimum history length before a candidate's
	// environment predictor is refit from observations rather than mutated
	// from its parent's. Default 40.
	RefitMin int
	// MutationScale scales coefficient perturbations. Default 0.08.
	MutationScale float64
	// DominanceMargin is how many times worse than the niche's best an
	// expert's rolling error must be, in every niche it was selected for,
	// to count as dominated. Default 1.25.
	DominanceMargin float64
}

// WithDefaults fills zero fields with the documented defaults. poolSize is
// the construction pool size K₀.
func (c Config) WithDefaults(poolSize int) Config {
	if c.Period <= 0 {
		c.Period = 60
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxPool <= 0 {
		c.MaxPool = 2*poolSize + 2
	}
	if c.MinPool <= 0 {
		c.MinPool = poolSize
	}
	if c.MinPool < 1 {
		c.MinPool = 1
	}
	if c.MaxPool < c.MinPool {
		c.MaxPool = c.MinPool
	}
	if c.MinAge <= 0 {
		c.MinAge = 3 * c.Period
	}
	if c.HistoryCap <= 0 {
		c.HistoryCap = 256
	}
	if c.RefitMin <= 0 {
		c.RefitMin = 40
	}
	if c.MutationScale <= 0 {
		c.MutationScale = 0.08
	}
	if c.DominanceMargin <= 1 {
		c.DominanceMargin = 1.25
	}
	return c
}
