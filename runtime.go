package moe

import (
	"fmt"
	"math"
	"sync"
	"time"

	"moe/internal/checkpoint"
	"moe/internal/features"
	"moe/internal/sim"
	"moe/internal/stats"
	"moe/internal/telemetry"
)

// Runtime is the embeddable decision loop: a host program (or the real
// worker-pool backend in internal/exec) calls Decide at every parallel
// region with the current Table 1 features and receives the thread count to
// use. Any Policy can drive it — the mixture, a single expert, or one of
// the baselines — making runtimes directly comparable.
//
// Concurrency guarantees: a Runtime is safe for concurrent use from any
// number of goroutines. Decide and DecideBatch serialize on one internal
// writer lock — decisions must serialize anyway because every policy in
// this repository is stateful (the mixture scores its previous prediction
// against the environment the next call observes). The read accessors —
// Decisions, SanitizedValues, ThreadHistogram, PolicyName, CheckpointErr,
// BatchStats — never take the writer lock: they read per-shard snapshots
// the decision path republishes before releasing it (see DESIGN.md §12), so
// readers scale independently of decisions and may safely be called from
// anywhere, including from a telemetry sink or a policy in the middle of a
// decision. MixtureStatsSnapshot is the exception: it introspects the live
// policy and therefore serializes with decisions. Accessors return
// snapshots that are the caller's to keep: ThreadHistogram builds a fresh
// map per call and MixtureStatsSnapshot fresh slices and maps, so mutating
// a returned value can never corrupt — or be corrupted by — a concurrent
// Decide. The wrapped policy itself must not be shared with another Runtime
// or called directly while a Runtime owns it.
type Runtime struct {
	mu         sync.Mutex
	policy     Policy
	name       string // policy.Name(), cached: Policy names are constant
	maxThreads int
	decisions  int
	hist       *stats.Histogram
	lastN      int
	clock      float64
	lastAvail  int
	sanitized  int

	// Read-path sharding: the scalar counters and the thread histogram are
	// mirrored into two read-mostly shards, each behind its own small lock,
	// republished at the end of every Decide/DecideBatch while the writer
	// lock is still held. Readers touch only their shard — never mu — so a
	// read can neither block a decision in flight nor deadlock against one.
	counters  counterShard
	histShard histShard
	// histArr mirrors hist's bin counts as a flat array (index = thread
	// count) so republishing the histogram shard is a copy, not a map walk,
	// and the batch fast path can defer increments allocation-free.
	histArr   []int64
	histTotal int64

	// Batching (see runtime_batch.go): mix is the wrapped policy when it is
	// the mixture itself — the precondition for the healthy-regime fast
	// path (a wrapping policy, e.g. a chaos injector, must see every
	// decision, so wrapped mixtures always take the full path). histDeferred
	// accumulates thread-histogram increments during a batch; batches/
	// batchFast/batchFull count dispatcher outcomes.
	mix          *Mixture
	histDeferred []int
	batches      int
	batchFast    int
	batchFull    int
	batchSink    telemetry.BatchSink
	// batchRec is the per-batch telemetry record reused across batches,
	// like scratch below.
	batchRec telemetry.BatchRecord

	// Crash safety (see checkpointing.go): when a store is attached, every
	// raw observation is journaled before it is decided on, and a snapshot
	// is written every checkpointEvery decisions. ckptErr latches the first
	// write failure; decisions continue in memory past it.
	store           *checkpoint.Store
	checkpointEvery int
	ckptErr         error

	// Observability (see telemetry.go): with a sink attached, every Decide
	// emits a telemetry.Record. sink == nil is the common case and costs
	// one pointer test — no allocation, no clock read. detailer is the
	// wrapped policy's detail hook when it (or anything it wraps, walked
	// through Unwrap) implements telemetry.Detailer.
	sink     telemetry.Sink
	detailer telemetry.Detailer
	// scratch is the telemetry record reused across decisions (guarded by
	// mu, like everything else here): resetting it and re-filling its slices
	// in place keeps the instrumented path allocation-free. Sinks therefore
	// must not retain the record past RecordDecision (see telemetry.Sink).
	scratch telemetry.Record
}

// monoBase anchors telemetry latency measurements: time.Since against a
// monotonic base compiles to a bare monotonic-clock read, roughly half the
// cost of time.Now (which also reads the wall clock). Only differences of
// these readings are ever used, so the base itself is arbitrary.
var monoBase = time.Now()

// counterShard is the scalar half of the read path: a point-in-time copy
// of the runtime's counters, replaced wholesale under its own lock at every
// publish. Readers RLock, copy what they need, and unlock — no allocation,
// no contention with the writer lock.
type counterShard struct {
	mu        sync.RWMutex
	decisions int
	sanitized int
	lastN     int
	lastAvail int
	clock     float64
	ckptErr   error
	batches   int
	batchFast int
	batchFull int
}

// histShard is the histogram half of the read path: flat bin counts plus
// their total, updated in place under the shard lock (updating in place —
// rather than publishing fresh snapshots — is what keeps the steady-state
// batch path allocation-free). The invariant sum(counts) == total holds
// under the shard lock; the torture tests assert no reader ever observes it
// torn.
type histShard struct {
	mu     sync.RWMutex
	counts []int64
	total  int64
}

// NewRuntime wraps a policy for a machine with maxThreads hardware
// contexts.
func NewRuntime(p Policy, maxThreads int) (*Runtime, error) {
	if p == nil {
		return nil, fmt.Errorf("moe: nil policy")
	}
	if maxThreads < 1 {
		return nil, fmt.Errorf("moe: maxThreads must be at least 1, got %d", maxThreads)
	}
	r := &Runtime{
		policy:       p,
		name:         p.Name(),
		maxThreads:   maxThreads,
		hist:         stats.NewHistogram(),
		lastN:        1,
		histArr:      make([]int64, maxThreads+1),
		histDeferred: make([]int, maxThreads+1),
	}
	r.mix, _ = p.(*Mixture)
	r.publishLocked()
	return r, nil
}

// histAdd records c decisions of n threads in both histogram forms. The
// flat mirror grows past maxThreads only when a restored state carries
// out-of-range bins (Restore accepts them; Decide never produces them).
func (r *Runtime) histAdd(n, c int) {
	r.hist.AddN(n, c)
	for len(r.histArr) <= n {
		r.histArr = append(r.histArr, 0)
	}
	r.histArr[n] += int64(c)
	r.histTotal += int64(c)
}

// publishLocked republishes the read shards from the authoritative state.
// Callers hold mu (or, in NewRuntime, exclusive ownership); the shard locks
// bound how long a reader can stall a publish to one copy.
func (r *Runtime) publishLocked() {
	c := &r.counters
	c.mu.Lock()
	c.decisions = r.decisions
	c.sanitized = r.sanitized
	c.lastN = r.lastN
	c.lastAvail = r.lastAvail
	c.clock = r.clock
	c.ckptErr = r.ckptErr
	c.batches = r.batches
	c.batchFast = r.batchFast
	c.batchFull = r.batchFull
	c.mu.Unlock()

	h := &r.histShard
	h.mu.Lock()
	if len(h.counts) < len(r.histArr) {
		h.counts = append(h.counts, make([]int64, len(r.histArr)-len(h.counts))...)
	}
	copy(h.counts, r.histArr)
	h.total = r.histTotal
	h.mu.Unlock()
}

// Observation is what the host reports at a decision point.
type Observation struct {
	// Time is the caller's clock in seconds (monotonic; wall or virtual).
	Time float64
	// Features is the current state f = c ‖ e.
	Features Features
	// Rate is the work rate achieved since the previous decision
	// (arbitrary units; only relative changes matter). Zero if unknown.
	Rate float64
	// RegionStart marks the beginning of a new parallel region.
	RegionStart bool
	// AvailableProcs is the number of processors currently online; 0
	// means "read it from the features" (f5).
	AvailableProcs int
}

// Decide returns the number of threads to use from this point on. The
// observation is sanitized before the policy sees it — non-finite or
// absurdly sized feature components are repaired, a non-finite or negative
// rate is treated as unknown, a non-finite timestamp as "no time
// information", and a missing processor availability falls back through
// the f5 feature, then the last availability any prior observation
// established, and only then the machine cap. Whatever the host reports,
// the result is always in [1, maxThreads] and Decide never panics.
func (r *Runtime) Decide(obs Observation) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.decideFullLocked(obs)
	r.publishLocked()
	return n
}

// decideFullLocked is the complete single-decision path — journaling,
// sanitization ladder, policy, snapshot cadence, telemetry — under mu. It
// does not republish the read shards; Decide and DecideBatch do that once
// per call.
func (r *Runtime) decideFullLocked(obs Observation) int {
	// Telemetry observes and never steers: rec only collects what the
	// decision path computes anyway, so the chosen n is bit-identical with
	// or without a sink (pinned by the byte-identity tests).
	var rec *telemetry.Record
	var start time.Duration
	if r.sink != nil {
		start = time.Since(monoBase)
		rec = &r.scratch
		*rec = telemetry.Record{
			Seq:            r.decisions,
			SelectedExpert: -1,
			RawFeatures:    rec.RawFeatures[:0],
			Features:       rec.Features[:0],
			GatingErrors:   rec.GatingErrors[:0],
			HealthEvents:   rec.HealthEvents[:0],
		}
		rec.RawFeatures = append(rec.RawFeatures, obs.Features[:]...)
	}
	if r.store != nil && r.ckptErr == nil {
		// Write-ahead: journal the observation exactly as the host reported
		// it, before sanitization, so replaying the journal through this
		// same method reproduces the decision bit-identically.
		var jStart time.Duration
		if rec != nil {
			jStart = time.Since(monoBase)
		}
		if err := r.store.Append(checkpoint.Observation{
			Time:           obs.Time,
			Features:       obs.Features,
			Rate:           obs.Rate,
			RegionStart:    obs.RegionStart,
			AvailableProcs: obs.AvailableProcs,
		}); err != nil {
			r.ckptErr = err
		}
		if rec != nil {
			rec.JournalNanos = (time.Since(monoBase) - jStart).Nanoseconds()
		}
	}
	n := r.decideLocked(obs, rec)
	if r.store != nil && r.ckptErr == nil && r.checkpointEvery > 0 && r.decisions%r.checkpointEvery == 0 {
		var sStart time.Duration
		if rec != nil {
			sStart = time.Since(monoBase)
		}
		if st, err := r.snapshotLocked(); err != nil {
			r.ckptErr = err
		} else if err := r.store.WriteSnapshot(st); err != nil {
			r.ckptErr = err
		}
		if rec != nil {
			rec.SnapshotNanos = (time.Since(monoBase) - sStart).Nanoseconds()
		}
	}
	if rec != nil {
		rec.Threads = n
		if r.ckptErr != nil {
			rec.CheckpointErr = r.ckptErr.Error()
		}
		if r.detailer != nil {
			r.detailer.DecisionDetail(rec)
		}
		rec.DecisionNanos = (time.Since(monoBase) - start).Nanoseconds()
		r.sink.RecordDecision(rec)
	}
	return n
}

func (r *Runtime) decideLocked(obs Observation, rec *telemetry.Record) int {
	f, repaired := features.Sanitize(obs.Features)
	obs.Features = f
	r.sanitized += repaired
	if math.IsNaN(obs.Rate) || math.IsInf(obs.Rate, 0) || obs.Rate < 0 {
		obs.Rate = 0
	}
	avail := obs.AvailableProcs
	if avail <= 0 {
		avail = int(obs.Features[features.Processors])
	}
	if avail <= 0 {
		// No availability in this observation: carry the last known-good
		// value rather than leaping to the machine cap — a sensor dropout
		// does not mean every processor came back online.
		avail = r.lastAvail
	}
	if avail <= 0 {
		avail = r.maxThreads
	}
	if avail > r.maxThreads {
		avail = r.maxThreads
	}
	r.lastAvail = avail
	if math.IsNaN(obs.Time) || math.IsInf(obs.Time, 0) || obs.Time < r.clock {
		obs.Time = r.clock
	}
	r.clock = obs.Time
	n := r.policy.Decide(sim.Decision{
		Time:           obs.Time,
		Features:       obs.Features,
		Rate:           obs.Rate,
		CurrentThreads: r.lastN,
		MaxThreads:     r.maxThreads,
		AvailableProcs: avail,
		RegionStart:    obs.RegionStart,
		RegionIndex:    r.decisions,
	})
	n = stats.ClampInt(n, 1, r.maxThreads)
	r.lastN = n
	r.decisions++
	r.histAdd(n, 1)
	if rec != nil {
		rec.Time = obs.Time
		rec.Features = append(rec.Features, obs.Features[:]...)
		rec.RuntimeRepaired = repaired
		rec.AvailableProcs = avail
	}
	return n
}

// Unwrapper is the convention for policies that wrap another policy (the
// chaos injector, instrumentation shims): Unwrap returns the wrapped
// policy. Runtime accessors that look for a concrete policy type — mixture
// statistics, telemetry detail — walk the chain, so wrapping never hides
// the mixture from analysis.
type Unwrapper interface {
	Unwrap() Policy
}

// unwrapTo walks p's Unwrap chain until visit reports success or the chain
// ends.
func unwrapTo(p Policy, visit func(Policy) bool) bool {
	for p != nil {
		if visit(p) {
			return true
		}
		u, ok := p.(Unwrapper)
		if !ok {
			return false
		}
		p = u.Unwrap()
	}
	return false
}

// PolicyName reports the wrapped policy's name. Names are constant by the
// Policy contract, so this reads a value cached at construction and can be
// called from anywhere — including from inside the policy itself.
func (r *Runtime) PolicyName() string {
	return r.name
}

// Decisions returns how many decisions have been published. Like every
// shard-backed accessor it reflects state as of the last completed
// Decide/DecideBatch call: a decision in flight is visible only once its
// call returns.
func (r *Runtime) Decisions() int {
	r.counters.mu.RLock()
	defer r.counters.mu.RUnlock()
	return r.counters.decisions
}

// SanitizedValues returns how many observation components the runtime has
// repaired (non-finite or out-of-bound feature values). A nonzero count
// signals the host's sensor path is feeding the runtime garbage.
func (r *Runtime) SanitizedValues() int {
	r.counters.mu.RLock()
	defer r.counters.mu.RUnlock()
	return r.counters.sanitized
}

// ThreadHistogram returns the distribution of chosen thread counts. The
// returned map is a freshly built copy, independent of the runtime's
// internal histogram — callers may mutate or retain it across further
// Decide calls.
func (r *Runtime) ThreadHistogram() map[int]float64 {
	h := &r.histShard
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make(map[int]float64, len(h.counts))
	if h.total == 0 {
		return out
	}
	for n, c := range h.counts {
		if c != 0 {
			out[n] = float64(c) / float64(h.total)
		}
	}
	return out
}

// histCounts returns a copy of the published flat histogram bins and their
// total, for merged views (ShardedRuntime.ThreadHistogram).
func (r *Runtime) histCounts() ([]int64, int64) {
	h := &r.histShard
	h.mu.RLock()
	defer h.mu.RUnlock()
	return append([]int64(nil), h.counts...), h.total
}

// MixtureStatsSnapshot returns the mixture analysis snapshot when the
// wrapped policy is a mixture — directly or through any chain of wrappers
// implementing Unwrap (a chaos injector, say); ok is false otherwise.
func (r *Runtime) MixtureStatsSnapshot() (MixtureStats, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var st MixtureStats
	found := unwrapTo(r.policy, func(p Policy) bool {
		m, ok := p.(*Mixture)
		if ok {
			st = m.Snapshot()
		}
		return ok
	})
	return st, found
}
