package experiments

import (
	"math"
	"testing"

	"moe/internal/sim"
	"moe/internal/trace"
)

// TestLabSteppingEquivalence is the experiments-level differential check:
// the same lab scenario evaluated under the fixed-dt reference and the
// event-horizon engine must produce execution times and workload
// throughput that agree within 1e-9 relative — the same contract
// TestSteppingEquivalence pins at the engine level, observed here through
// the full policy stack (trained mixture, noise, hardware churn).
func TestLabSteppingEquivalence(t *testing.T) {
	l := lab(t)
	if l.Stepping != sim.SteppingEvent {
		t.Fatalf("labs should default to the event engine, got %v", l.Stepping)
	}
	specs := []ScenarioSpec{
		{Target: "lu", Workload: []string{"mg", "cg"}, HWFreq: trace.LowFrequency, Seed: 11},
		{Target: "cg", Workload: []string{"swim"}, HWFreq: trace.HighFrequency, Seed: 12},
	}
	for _, name := range []PolicyName{PolicyDefault, PolicyMixture} {
		for _, spec := range specs {
			l.Stepping = sim.SteppingFixed
			ref, err := l.Run(spec, name)
			if err != nil {
				t.Fatalf("%s/%s fixed: %v", name, spec.Target, err)
			}
			l.Stepping = sim.SteppingEvent
			ev, err := l.Run(spec, name)
			if err != nil {
				t.Fatalf("%s/%s event: %v", name, spec.Target, err)
			}
			if !within(ref.ExecTime, ev.ExecTime, 1e-9) {
				t.Errorf("%s/%s ExecTime: fixed %.15g event %.15g", name, spec.Target, ref.ExecTime, ev.ExecTime)
			}
			if !within(ref.WorkloadThroughput, ev.WorkloadThroughput, 1e-9) {
				t.Errorf("%s/%s WorkloadThroughput: fixed %.15g event %.15g", name, spec.Target, ref.WorkloadThroughput, ev.WorkloadThroughput)
			}
		}
	}
	l.Stepping = sim.SteppingEvent
}

func within(a, b, rel float64) bool {
	d := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		return d <= rel
	}
	return d <= rel*scale
}
