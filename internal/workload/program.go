// Package workload models the parallel programs of the paper's evaluation
// (§6.2): the OpenMP C programs from NAS, SpecOMP and Parsec. Real binaries
// cannot run here, so each program is an analytic model of its parallel
// structure — the quantity thread selection actually responds to. A program
// is a sequence of parallel regions; each region carries the static code
// features of Table 1 (f1–f3) plus the execution characteristics that
// determine how it scales: serial fraction, memory intensity, per-thread
// synchronization cost, and the maximum useful parallelism of its loops.
//
// The models are differentiated along the axes the paper's analysis uses:
// scalable vs non-scalable (§5.1's P/4 rule splits training programs this
// way), compute- vs memory-bound, and regular vs irregular/barrier-heavy
// (§7.1 singles out mg, cg and art as irregular programs that slow down
// when over-threaded).
package workload

import (
	"fmt"

	"moe/internal/features"
)

// Suite identifies the benchmark suite a program belongs to.
type Suite string

// Benchmark suites used in the paper's evaluation.
const (
	NAS     Suite = "NAS"
	SpecOMP Suite = "SpecOMP"
	Parsec  Suite = "Parsec"
)

// Region is one parallel region (an OpenMP parallel loop plus its serial
// prologue). The runtime selects a thread count each time a region starts.
type Region struct {
	// Name identifies the region within its program (e.g. "sparse-matvec").
	Name string
	// Work is the amount of computation in abstract work units; one unit
	// takes one second on one uncontended core with no overheads.
	Work float64
	// ParallelFrac is the Amdahl parallel fraction p of the region.
	ParallelFrac float64
	// MemIntensity in [0,1] is the share of cycles stalled on the memory
	// system; it controls sensitivity to LLC/bandwidth contention.
	MemIntensity float64
	// SyncCost is the per-extra-thread relative overhead of barriers and
	// reductions: running with n threads multiplies execution time by
	// (1 + SyncCost·(n−1)).
	SyncCost float64
	// Grain is the maximum useful parallelism of the region's loops;
	// threads beyond Grain do no useful work.
	Grain int
	// LoadStore, Instructions, Branches are the raw static code features
	// (f1–f3) before per-program normalization.
	LoadStore, Instructions, Branches float64
}

// Program is a complete benchmark model.
type Program struct {
	Name  string
	Suite Suite
	// Regions execute in order; Iterations repeats the whole sequence
	// (time-stepped solvers run many sweeps over the same loops).
	Regions    []Region
	Iterations int
	// WorkingSetGB is the resident working set, feeding the cached-memory
	// and page-free-rate metrics (f9, f10).
	WorkingSetGB float64
	// totalInstructions normalizes the code features (§5.2.2).
	totalInstructions float64
	// avgMemIntensity/avgSyncCost cache the work-weighted region means;
	// derivedValid marks them usable. finalize fills them for catalog
	// programs; hand-built Programs that never pass through finalize fall
	// back to computing on demand, so the cache is invisible to callers.
	avgMemIntensity float64
	avgSyncCost     float64
	derivedValid    bool
}

// Validate checks model invariants. It is called by the catalog constructor
// and exposed for tests and external program definitions.
func (p *Program) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: program with empty name")
	}
	if len(p.Regions) == 0 {
		return fmt.Errorf("workload: program %s has no regions", p.Name)
	}
	if p.Iterations <= 0 {
		return fmt.Errorf("workload: program %s has non-positive iterations", p.Name)
	}
	for i, r := range p.Regions {
		switch {
		case r.Work <= 0:
			return fmt.Errorf("workload: %s region %d (%s) has non-positive work", p.Name, i, r.Name)
		case r.ParallelFrac < 0 || r.ParallelFrac > 1:
			return fmt.Errorf("workload: %s region %d (%s) parallel fraction %.3f outside [0,1]", p.Name, i, r.Name, r.ParallelFrac)
		case r.MemIntensity < 0 || r.MemIntensity > 1:
			return fmt.Errorf("workload: %s region %d (%s) memory intensity %.3f outside [0,1]", p.Name, i, r.Name, r.MemIntensity)
		case r.SyncCost < 0:
			return fmt.Errorf("workload: %s region %d (%s) negative sync cost", p.Name, i, r.Name)
		case r.Grain <= 0:
			return fmt.Errorf("workload: %s region %d (%s) non-positive grain", p.Name, i, r.Name)
		case r.Instructions <= 0:
			return fmt.Errorf("workload: %s region %d (%s) non-positive instruction count", p.Name, i, r.Name)
		}
	}
	if p.WorkingSetGB < 0 {
		return fmt.Errorf("workload: program %s has negative working set", p.Name)
	}
	return nil
}

// finalize computes derived quantities; must be called after construction.
func (p *Program) finalize() {
	total := 0.0
	for _, r := range p.Regions {
		total += r.Instructions
	}
	p.totalInstructions = total * float64(p.Iterations)
	p.avgMemIntensity = p.computeAvgMemIntensity()
	p.avgSyncCost = p.computeAvgSyncCost()
	p.derivedValid = true
}

// TotalInstructions returns the instruction total used for normalization.
func (p *Program) TotalInstructions() float64 { return p.totalInstructions }

// TotalWork returns the total work units over all iterations.
func (p *Program) TotalWork() float64 {
	sum := 0.0
	for _, r := range p.Regions {
		sum += r.Work
	}
	return sum * float64(p.Iterations)
}

// RegionCount returns the number of region executions in one full run.
func (p *Program) RegionCount() int { return len(p.Regions) * p.Iterations }

// RegionAt maps a flat region-execution index (0 … RegionCount-1) to the
// region it executes.
func (p *Program) RegionAt(idx int) Region {
	return p.Regions[idx%len(p.Regions)]
}

// CodeFeatures returns the normalized static code features of region idx
// (per §5.2.2, normalized to the program's total instruction count).
func (p *Program) CodeFeatures(idx int) features.Code {
	r := p.RegionAt(idx)
	// Scale keeps normalized features in a numerically convenient range
	// comparable to the worked example in §5.4 (values around 0.01–0.6).
	const scale = 10
	return features.NormalizeCode(r.LoadStore*scale, r.Instructions*scale, r.Branches*scale, p.totalInstructions)
}

// AvgMemIntensity returns the work-weighted mean memory intensity, used by
// the finer-granularity expert split (§8.4).
func (p *Program) AvgMemIntensity() float64 {
	if p.derivedValid {
		return p.avgMemIntensity
	}
	return p.computeAvgMemIntensity()
}

func (p *Program) computeAvgMemIntensity() float64 {
	var sum, w float64
	for _, r := range p.Regions {
		sum += r.MemIntensity * r.Work
		w += r.Work
	}
	if w == 0 {
		return 0
	}
	return sum / w
}

// AvgSyncCost returns the work-weighted mean synchronization cost.
func (p *Program) AvgSyncCost() float64 {
	if p.derivedValid {
		return p.avgSyncCost
	}
	return p.computeAvgSyncCost()
}

func (p *Program) computeAvgSyncCost() float64 {
	var sum, w float64
	for _, r := range p.Regions {
		sum += r.SyncCost * r.Work
		w += r.Work
	}
	if w == 0 {
		return 0
	}
	return sum / w
}

// Clone returns a deep copy; instances mutate nothing, but experiments that
// rescale work (e.g. to shorten benches) need private copies.
func (p *Program) Clone() *Program {
	cp := *p
	cp.Regions = append([]Region(nil), p.Regions...)
	return &cp
}

// ScaleWork multiplies all region work by factor (> 0), preserving shape
// while shortening or lengthening the run.
func (p *Program) ScaleWork(factor float64) error {
	if factor <= 0 {
		return fmt.Errorf("workload: scale factor must be positive, got %g", factor)
	}
	for i := range p.Regions {
		p.Regions[i].Work *= factor
	}
	if p.derivedValid {
		p.avgMemIntensity = p.computeAvgMemIntensity()
		p.avgSyncCost = p.computeAvgSyncCost()
	}
	return nil
}
