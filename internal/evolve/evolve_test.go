package evolve

import (
	"reflect"
	"testing"

	"moe/internal/expert"
	"moe/internal/features"
)

func TestRNGDeterminismAndState(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at draw %d", i)
		}
	}
	// State/SetState: a restored generator resumes the exact stream.
	mid := a.State()
	want := []uint64{a.Uint64(), a.Uint64(), a.Uint64()}
	c := NewRNG(1)
	c.SetState(mid)
	for i, w := range want {
		if g := c.Uint64(); g != w {
			t.Fatalf("restored stream draw %d = %d, want %d", i, g, w)
		}
	}
	// A zero seed must not degenerate into a constant stream.
	z := NewRNG(0)
	if z.Uint64() == z.Uint64() {
		t.Fatal("zero-seed stream repeats")
	}
	for i := 0; i < 1000; i++ {
		if f := NewRNG(uint64(i)).Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestHistoryRingOrder(t *testing.T) {
	h := NewHistory(4)
	for i := 1; i <= 7; i++ {
		h.Append(Sample{Threads: i})
	}
	if h.Len() != 4 {
		t.Fatalf("Len = %d, want 4", h.Len())
	}
	got := h.Export()
	for i, want := range []int{4, 5, 6, 7} {
		if got[i].Threads != want {
			t.Fatalf("Export[%d].Threads = %d, want %d (oldest-to-newest)", i, got[i].Threads, want)
		}
	}
	// Restore round-trips, including through another wrap.
	h2 := NewHistory(4)
	h2.Restore(got)
	if !reflect.DeepEqual(h2.Export(), got) {
		t.Fatal("Restore/Export round-trip changed the samples")
	}
	h2.Append(Sample{Threads: 8})
	if got := h2.Export(); got[0].Threads != 5 || got[3].Threads != 8 {
		t.Fatalf("post-restore eviction order wrong: %v", got)
	}
	// Restoring more samples than capacity keeps the newest.
	long := make([]Sample, 9)
	for i := range long {
		long[i].Threads = i
	}
	h3 := NewHistory(4)
	h3.Restore(long)
	if got := h3.Export(); got[0].Threads != 5 || got[3].Threads != 8 {
		t.Fatalf("oversized Restore kept wrong window: %v", got)
	}
}

func TestNicheOfPartition(t *testing.T) {
	niche := func(procs, load1 float64) int {
		var f features.Vector
		f[features.Processors] = procs
		f[features.CPULoad1] = load1
		return expert.NicheOf(&f)
	}
	cases := []struct {
		procs, load1 float64
		want         int
	}{
		{2, 0, 0}, {2, 2, 1}, // small, idle vs loaded (ratio 1.0)
		{4, 0, 2}, {8, 8, 3}, // medium
		{16, 0, 4}, {16, 8, 5}, // large
		{32, 0, 6}, {32, 30, 7}, // huge
		{0, 0, 0}, // degenerate: no processors, denom clamps to 1
	}
	for _, c := range cases {
		if got := niche(c.procs, c.load1); got != c.want {
			t.Errorf("NicheOf(procs=%v, load1=%v) = %d, want %d", c.procs, c.load1, got, c.want)
		}
	}
}

func TestNicheStatsDominated(t *testing.T) {
	s := NewNicheStats(2)
	// Expert 1 never selected anywhere: not dominated (no career to judge).
	if s.Dominated(1, 1.25) {
		t.Fatal("never-selected expert reported dominated")
	}
	// Selected but unscored: still not dominated — retirement needs proof.
	s.ObserveSelection(1, 3)
	if s.Dominated(1, 1.25) {
		t.Fatal("unscored expert reported dominated")
	}
	// Scored, but no rival evidence in the niche: not dominated.
	s.ObserveErr(1, 3, 1.0)
	if s.Dominated(1, 1.25) {
		t.Fatal("expert without a proven better rival reported dominated")
	}
	// A rival beats it beyond the margin in its only served niche.
	s.ObserveErr(0, 3, 0.1)
	if !s.Dominated(1, 1.25) {
		t.Fatal("beaten-everywhere expert not reported dominated")
	}
	// But serving a second niche where it is NOT beaten rescues it.
	s.ObserveSelection(1, 0)
	s.ObserveErr(1, 0, 0.05)
	if s.Dominated(1, 1.25) {
		t.Fatal("expert with one defensible niche reported dominated")
	}
	// Row splicing keeps the margin honest after membership changes.
	s.AddExpert()
	if s.K() != 3 {
		t.Fatalf("K = %d after AddExpert, want 3", s.K())
	}
	s.RemoveExpert(0)
	if s.K() != 2 {
		t.Fatalf("K = %d after RemoveExpert, want 2", s.K())
	}
	// With the dominator gone, expert (now index 0) keeps its history but
	// no rival beats it anywhere.
	if s.Dominated(0, 1.25) {
		t.Fatal("expert reported dominated after its dominator retired")
	}
	// Export/NewNicheStatsFrom round-trip.
	sel, errs, seen := s.Export()
	s2 := NewNicheStatsFrom(s.K(), sel, errs, seen)
	if !reflect.DeepEqual(s2, s) {
		t.Fatal("niche-stats export/import round-trip differs")
	}
}

func TestBestInNiche(t *testing.T) {
	s := NewNicheStats(3)
	s.ObserveErr(0, 2, 0.5)
	s.ObserveErr(1, 2, 0.2)
	s.ObserveErr(2, 2, 0.1)
	all := func(int) bool { return true }
	if got := s.BestInNiche(2, all); got != 2 {
		t.Fatalf("BestInNiche = %d, want 2", got)
	}
	// Admissibility filters: with expert 2 excluded, 1 wins.
	if got := s.BestInNiche(2, func(k int) bool { return k != 2 }); got != 1 {
		t.Fatalf("filtered BestInNiche = %d, want 1", got)
	}
	if got := s.BestInNiche(5, all); got != -1 {
		t.Fatalf("evidence-free niche returned %d, want -1", got)
	}
}

func TestConfigWithDefaults(t *testing.T) {
	c := Config{}.WithDefaults(4)
	if c.Period != 60 || c.Seed != 1 || c.MaxPool != 10 || c.MinPool != 4 ||
		c.MinAge != 180 || c.HistoryCap != 256 || c.RefitMin != 40 {
		t.Fatalf("zero-config defaults wrong: %+v", c)
	}
	// Explicit values survive; MaxPool is floored at MinPool.
	c = Config{Period: 5, MaxPool: 2, MinPool: 6}.WithDefaults(4)
	if c.Period != 5 || c.MinPool != 6 || c.MaxPool != 6 || c.MinAge != 15 {
		t.Fatalf("explicit config mangled: %+v", c)
	}
}

// driftHistory builds a history of RefitMin+ samples from a synthetic
// constrained regime: few processors, modest rates peaking at 8 threads.
func driftHistory(n int) *History {
	h := NewHistory(n)
	for i := 0; i < n; i++ {
		var f features.Vector
		f[features.Processors] = 6
		f[features.CPULoad1] = float64(i % 3)
		f[features.RunQueueSize] = float64(i % 2)
		threads := 2 + i%10
		rate := 100 - 10*absInt(threads-8)
		h.Append(Sample{Feat: f, NextNorm: 10 + float64(i%5), Threads: threads, Rate: float64(rate)})
	}
	return h
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestSpawnDeterministicAndValid(t *testing.T) {
	set := expert.Canonical4()
	cfg := Config{}.WithDefaults(len(set))
	hist := driftHistory(cfg.RefitMin + 10)

	spawn := func() *expert.Expert {
		rng := NewRNG(99)
		child, err := Spawn("ev1", set[0], set[1], hist, rng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return child
	}
	a, b := spawn(), spawn()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical inputs bred different children")
	}
	if a.Name != "ev1" || a.Validate() != nil {
		t.Fatalf("child invalid: %+v err=%v", a, a.Validate())
	}
	if a.TrainedOn != "evolved("+set[0].Name+"×"+set[1].Name+")" {
		t.Fatalf("lineage tag = %q", a.TrainedOn)
	}

	// Thin history: the env predictor falls back to mutating the parent —
	// still deterministic, still valid.
	thin := NewHistory(8)
	rng := NewRNG(99)
	solo, err := Spawn("ev2", set[2], nil, thin, rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if solo.Validate() != nil || solo.TrainedOn != "evolved("+set[2].Name+")" {
		t.Fatalf("solo child invalid: %+v", solo)
	}

	// No parent is a deterministic error, not a panic.
	if _, err := Spawn("ev3", nil, nil, hist, NewRNG(1), cfg); err == nil {
		t.Fatal("parentless spawn succeeded")
	}
}
