package policy

import (
	"testing"

	"moe/internal/features"
	"moe/internal/regress"
	"moe/internal/sim"
)

func decision(t float64, avail, cur int, rate float64) sim.Decision {
	var f features.Vector
	f[features.Processors] = float64(avail)
	return sim.Decision{
		Time:           t,
		Features:       f,
		Rate:           rate,
		CurrentThreads: cur,
		MaxThreads:     32,
		AvailableProcs: avail,
	}
}

func TestDefaultFollowsProcessors(t *testing.T) {
	p := NewDefault()
	if p.Name() != "default" {
		t.Errorf("name = %s", p.Name())
	}
	if got := p.Decide(decision(0, 17, 1, 0)); got != 17 {
		t.Errorf("default = %d, want 17", got)
	}
	if got := p.Decide(decision(1, 8, 17, 0)); got != 8 {
		t.Errorf("default after change = %d, want 8", got)
	}
}

func TestOnlineStartsConservative(t *testing.T) {
	p := NewOnline()
	if got := p.Decide(decision(0, 32, 1, 0)); got != 16 {
		t.Errorf("first decision = %d, want avail/2 = 16", got)
	}
}

func TestOnlineClimbsTowardBetterRates(t *testing.T) {
	p := NewOnline()
	n := p.Decide(decision(0, 32, 1, 0))
	// Feed a rate landscape peaked at 8 threads: the climber must move
	// toward it (downward from 16) over time.
	rate := func(n int) float64 {
		d := float64(n - 8)
		return 100 - d*d
	}
	tm := 0.0
	for i := 0; i < 100; i++ {
		tm += OnlineAdaptInterval
		n = p.Decide(decision(tm, 32, n, rate(n)))
	}
	if n < 4 || n > 12 {
		t.Errorf("climber ended at %d, want near the peak 8", n)
	}
}

func TestOnlineRespectsInterval(t *testing.T) {
	p := NewOnline()
	n0 := p.Decide(decision(0, 32, 1, 0))
	// Decisions inside the adaptation interval must not move.
	n1 := p.Decide(decision(0.5, 32, n0, 50))
	n2 := p.Decide(decision(1.0, 32, n1, 60))
	if n1 != n0 || n2 != n0 {
		t.Errorf("climber moved mid-interval: %d %d %d", n0, n1, n2)
	}
}

func TestOfflinePredicts(t *testing.T) {
	// Model: n = processors (coefficient 1 on f5).
	w := make([]float64, features.Dim)
	w[features.Processors] = 1
	p := NewOffline(&regress.Model{Weights: w, Bias: 0}, 12)
	if got := p.Decide(decision(0, 10, 1, 0)); got != 10 {
		t.Errorf("offline = %d, want 10", got)
	}
	// Cap at the training platform size.
	if got := p.Decide(decision(0, 30, 1, 0)); got != 12 {
		t.Errorf("offline cap = %d, want 12", got)
	}
	if p.Name() != "offline" {
		t.Errorf("name = %s", p.Name())
	}
}

func TestAnalyticProbesThenCommits(t *testing.T) {
	p := NewAnalytic(AnalyticOptions{ProbeInterval: 1, CommitInterval: 10, Seed: 3})
	seen := map[int]bool{}
	tm := 0.0
	var lastN int
	for i := 0; i < 8; i++ {
		lastN = p.Decide(decision(tm, 32, lastN, 10))
		seen[lastN] = true
		tm += 0.5
	}
	if len(seen) < 2 {
		t.Errorf("analytic should try two probe thread counts, saw %v", seen)
	}
	// After both probes it commits and holds.
	committed := p.Decide(decision(tm, 32, lastN, 10))
	for i := 0; i < 6; i++ {
		tm += 0.5
		if got := p.Decide(decision(tm, 32, committed, 10)); got != committed {
			t.Fatalf("analytic moved during commit: %d vs %d", got, committed)
		}
	}
}

func TestAnalyticReexploresOnDeviation(t *testing.T) {
	p := NewAnalytic(AnalyticOptions{ProbeInterval: 1, CommitInterval: 1000, Seed: 5})
	tm := 0.0
	var n int
	// Drive through the probe phase with a steady rate.
	for i := 0; i < 10; i++ {
		n = p.Decide(decision(tm, 32, n, 10))
		tm += 0.5
	}
	committed := n
	// Crash the observed rate: the deviation check must trigger fresh
	// probing (thread count changes) long before the commit expires.
	changed := false
	for i := 0; i < 20; i++ {
		tm += 0.5
		if got := p.Decide(decision(tm, 32, n, 0.5)); got != committed {
			changed = true
			break
		}
	}
	if !changed {
		t.Error("analytic never re-explored after a large rate deviation")
	}
}

func TestAnalyticDeterministicWithSeed(t *testing.T) {
	run := func() []int {
		p := NewAnalytic(AnalyticOptions{Seed: 11})
		var out []int
		tm := 0.0
		n := 0
		for i := 0; i < 50; i++ {
			n = p.Decide(decision(tm, 32, n, 10))
			out = append(out, n)
			tm += 0.5
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("analytic with same seed diverged")
		}
	}
}

func TestOracleFallback(t *testing.T) {
	o := &Oracle{}
	if got := o.Decide(decision(0, 13, 1, 0)); got != 13 {
		t.Errorf("oracle without BestFn = %d, want available processors", got)
	}
	o.BestFn = func(sim.Decision) int { return 7 }
	if got := o.Decide(decision(0, 13, 1, 0)); got != 7 {
		t.Errorf("oracle with BestFn = %d, want 7", got)
	}
}
