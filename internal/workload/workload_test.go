package workload

import (
	"testing"
	"testing/quick"
)

func TestCatalogValid(t *testing.T) {
	progs := Catalog()
	if len(progs) != 16 {
		t.Fatalf("catalog has %d programs, want 16", len(progs))
	}
	seen := map[string]bool{}
	suites := map[Suite]int{}
	for _, p := range progs {
		if err := p.Validate(); err != nil {
			t.Errorf("program %s invalid: %v", p.Name, err)
		}
		if seen[p.Name] {
			t.Errorf("duplicate program %s", p.Name)
		}
		seen[p.Name] = true
		suites[p.Suite]++
		if p.TotalInstructions() <= 0 {
			t.Errorf("%s has no instruction total", p.Name)
		}
	}
	if suites[NAS] != 8 {
		t.Errorf("NAS programs = %d, want 8 (bt cg ep ft is lu mg sp)", suites[NAS])
	}
	if suites[SpecOMP] != 4 || suites[Parsec] != 4 {
		t.Errorf("suites = %v", suites)
	}
}

func TestPaperProgramsPresent(t *testing.T) {
	// Every program named in the paper's figures must exist.
	for _, name := range []string{
		"bt", "cg", "ep", "ft", "is", "lu", "mg", "sp",
		"ammp", "art", "equake",
		"bscholes", "btrack", "fmine",
	} {
		if _, err := ByName(name); err != nil {
			t.Errorf("missing program %s: %v", name, err)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name should error")
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	if len(names) != 16 {
		t.Fatalf("Names() = %d entries", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("names not sorted: %s before %s", names[i-1], names[i])
		}
	}
}

func TestValidateRejectsBadRegions(t *testing.T) {
	base := func() *Program {
		return &Program{
			Name:       "x",
			Regions:    []Region{{Name: "r", Work: 1, ParallelFrac: 0.5, MemIntensity: 0.5, Grain: 4, Instructions: 10}},
			Iterations: 1,
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("base should validate: %v", err)
	}
	mutations := []func(*Program){
		func(p *Program) { p.Name = "" },
		func(p *Program) { p.Regions = nil },
		func(p *Program) { p.Iterations = 0 },
		func(p *Program) { p.Regions[0].Work = 0 },
		func(p *Program) { p.Regions[0].ParallelFrac = 1.2 },
		func(p *Program) { p.Regions[0].ParallelFrac = -0.1 },
		func(p *Program) { p.Regions[0].MemIntensity = 2 },
		func(p *Program) { p.Regions[0].SyncCost = -1 },
		func(p *Program) { p.Regions[0].Grain = 0 },
		func(p *Program) { p.Regions[0].Instructions = 0 },
		func(p *Program) { p.WorkingSetGB = -1 },
	}
	for i, mutate := range mutations {
		p := base()
		mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate", i)
		}
	}
}

func TestTotalWorkAndRegionCount(t *testing.T) {
	p, err := ByName("cg")
	if err != nil {
		t.Fatal(err)
	}
	wantWork := (1.5 + 0.35) * 50
	if got := p.TotalWork(); !close(got, wantWork) {
		t.Errorf("TotalWork = %v, want %v", got, wantWork)
	}
	if p.RegionCount() != 100 {
		t.Errorf("RegionCount = %d, want 100", p.RegionCount())
	}
	// RegionAt cycles.
	if p.RegionAt(0).Name != p.RegionAt(2).Name {
		t.Error("RegionAt should cycle through regions")
	}
	if p.RegionAt(0).Name == p.RegionAt(1).Name {
		t.Error("consecutive regions should differ for cg")
	}
}

func TestCodeFeaturesNormalized(t *testing.T) {
	for _, p := range Catalog() {
		for i := 0; i < len(p.Regions); i++ {
			c := p.CodeFeatures(i)
			if c.LoadStore <= 0 || c.Instructions <= 0 || c.Branches <= 0 {
				t.Errorf("%s region %d has non-positive code features: %+v", p.Name, i, c)
			}
			if c.Instructions > 1 {
				t.Errorf("%s region %d instructions feature %v not normalized", p.Name, i, c.Instructions)
			}
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	p, _ := ByName("lu")
	cp := p.Clone()
	cp.Regions[0].Work = 999
	if p.Regions[0].Work == 999 {
		t.Error("Clone shares region storage")
	}
}

func TestScaleWork(t *testing.T) {
	p, _ := ByName("lu")
	cp := p.Clone()
	before := cp.TotalWork()
	if err := cp.ScaleWork(0.5); err != nil {
		t.Fatal(err)
	}
	if got := cp.TotalWork(); !close(got, before/2) {
		t.Errorf("scaled work = %v, want %v", got, before/2)
	}
	if err := cp.ScaleWork(0); err == nil {
		t.Error("zero factor should error")
	}
	if err := cp.ScaleWork(-1); err == nil {
		t.Error("negative factor should error")
	}
}

func TestAvgIntensities(t *testing.T) {
	ep, _ := ByName("ep")
	cg, _ := ByName("cg")
	if ep.AvgMemIntensity() >= cg.AvgMemIntensity() {
		t.Error("ep (compute) should have lower memory intensity than cg")
	}
	bs, _ := ByName("bscholes")
	fa, _ := ByName("fanimate")
	if bs.AvgSyncCost() >= fa.AvgSyncCost() {
		t.Error("blackscholes should have lower sync cost than fluidanimate")
	}
	empty := &Program{}
	if empty.AvgMemIntensity() != 0 || empty.AvgSyncCost() != 0 {
		t.Error("empty program averages should be 0")
	}
}

func TestSetsMatchTable3(t *testing.T) {
	small := Sets(Small)
	if len(small) != 2 {
		t.Fatalf("small sets = %d", len(small))
	}
	if !equalStrings(small[0].Programs, []string{"is", "cg"}) {
		t.Errorf("small (i) = %v", small[0].Programs)
	}
	if !equalStrings(small[1].Programs, []string{"ammp", "ft"}) {
		t.Errorf("small (ii) = %v", small[1].Programs)
	}
	large := Sets(Large)
	if len(large) != 2 {
		t.Fatalf("large sets = %d", len(large))
	}
	if len(large[0].Programs) != 6 || len(large[1].Programs) != 7 {
		t.Errorf("large set sizes = %d, %d", len(large[0].Programs), len(large[1].Programs))
	}
	if Sets("bogus") != nil {
		t.Error("unknown size should return nil")
	}
}

func TestSetProgramsResolves(t *testing.T) {
	for _, size := range []Size{Small, Large} {
		for _, set := range Sets(size) {
			progs, err := SetPrograms(set)
			if err != nil {
				t.Fatalf("set %v: %v", set, err)
			}
			if len(progs) != len(set.Programs) {
				t.Errorf("set %v resolved %d programs", set, len(progs))
			}
			// Clones: mutating must not touch the catalog.
			progs[0].Regions[0].Work = 1e9
			orig, _ := ByName(set.Programs[0])
			if orig.Regions[0].Work == 1e9 {
				t.Error("SetPrograms should clone")
			}
		}
	}
}

func TestScaleWorkPreservesShape(t *testing.T) {
	f := func(factorRaw uint8) bool {
		factor := 0.1 + float64(factorRaw)/64
		p, _ := ByName("mg")
		cp := p.Clone()
		if err := cp.ScaleWork(factor); err != nil {
			return false
		}
		// Ratios between regions are preserved.
		r0 := p.Regions[0].Work / p.Regions[1].Work
		r1 := cp.Regions[0].Work / cp.Regions[1].Work
		return close(r0, r1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9*(1+abs(a)+abs(b))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
