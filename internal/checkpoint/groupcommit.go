package checkpoint

import (
	"os"
	"sync"
	"sync/atomic"
	"time"

	"moe/internal/atomicio"
	"moe/internal/telemetry"
)

// GroupCommitter amortizes journal fsyncs across tenants: stores that
// share a committer skip the per-append fsync and instead make their
// batch durable through Store.Sync, which parks the caller for at most
// one flush window and then issues a single fsync per dirty file on
// behalf of every batch that arrived inside the window.
//
// Durability semantics are unchanged at the ack boundary: the serving
// layer calls Store.Sync before acknowledging a batch, so commit-before-ack
// holds exactly as it does with per-append fsync — the only thing that
// moved is how many batches one fsync covers. A window of zero (or a nil
// committer) degenerates to the plain per-append behavior.
//
// An fsync error fans out to every waiter whose batch shared it: each of
// their tenants latches DiskError-degraded serving, the same path a
// per-append fsync failure takes.
type GroupCommitter struct {
	window time.Duration

	mu       sync.Mutex
	pending  map[*os.File]*pendingSync
	sleeping bool

	fsyncs atomic.Int64 // fsyncs actually issued
	saved  atomic.Int64 // fsyncs per-append sync would have issued, minus issued

	mFsyncs *telemetry.Counter
	mSaved  *telemetry.Counter
}

// pendingSync accumulates one window's claims against one file: the
// waiters to wake and the total appends their batches deferred (what
// per-append fsync would have cost).
type pendingSync struct {
	waiters []chan error
	batched int64
}

// NewGroupCommitter returns a committer with the given flush window. A
// window <= 0 yields a pass-through committer (every Sync fsyncs
// immediately — one fsync per batch instead of per append, no parking).
func NewGroupCommitter(window time.Duration) *GroupCommitter {
	return &GroupCommitter{window: window, pending: make(map[*os.File]*pendingSync)}
}

// SetMetrics attaches fsync counters (issued, saved). Call before first use.
func (g *GroupCommitter) SetMetrics(fsyncs, saved *telemetry.Counter) {
	g.mFsyncs, g.mSaved = fsyncs, saved
}

// Window returns the configured flush window.
func (g *GroupCommitter) Window() time.Duration { return g.window }

// Stats returns fsyncs issued and fsyncs saved by sharing, lifetime.
func (g *GroupCommitter) Stats() (fsyncs, saved int64) {
	return g.fsyncs.Load(), g.saved.Load()
}

// Sync makes everything written to f durable, sharing the fsync with every
// other Sync(f) caller inside the same flush window. batched is how many
// appends this batch deferred — what per-append fsync would have cost; the
// committer issues one fsync for all of them and counts the difference as
// saved. It blocks for at most one window plus the fsync itself.
func (g *GroupCommitter) Sync(f *os.File, batched int64) error {
	if batched < 1 {
		batched = 1
	}
	if g.window <= 0 {
		g.account(1, batched-1)
		return f.Sync()
	}
	ch := make(chan error, 1)
	g.mu.Lock()
	p := g.pending[f]
	if p == nil {
		p = &pendingSync{}
		g.pending[f] = p
	}
	p.waiters = append(p.waiters, ch)
	p.batched += batched
	if !g.sleeping {
		g.sleeping = true
		go g.flushAfterWindow()
	}
	g.mu.Unlock()
	return <-ch
}

func (g *GroupCommitter) account(fsyncs, saved int64) {
	g.fsyncs.Add(fsyncs)
	g.saved.Add(saved)
	if g.mFsyncs != nil {
		g.mFsyncs.Add(fsyncs)
	}
	if g.mSaved != nil {
		g.mSaved.Add(saved)
	}
}

// flushAfterWindow sleeps out the window, then fsyncs each dirty file once
// and wakes everyone whose batch it covered.
func (g *GroupCommitter) flushAfterWindow() {
	time.Sleep(g.window)
	g.mu.Lock()
	batch := g.pending
	g.pending = make(map[*os.File]*pendingSync, len(batch))
	g.sleeping = false
	g.mu.Unlock()
	for f, p := range batch {
		err := f.Sync()
		g.account(1, p.batched-1)
		for _, ch := range p.waiters {
			ch <- err
		}
	}
}

// SetGroupCommitter attaches a group committer to the store: journal
// appends stop fsyncing inline (they only mark the journal dirty) and
// Sync becomes the batch commit point. Call before the first append;
// nil detaches (per-append fsync resumes).
//
// With sync disabled on the store, the committer is inert — appends were
// never fsynced and Sync stays a no-op — so callers can attach it
// unconditionally and let Options decide.
func (s *Store) SetGroupCommitter(g *GroupCommitter) { s.gc = g }

// Sync is the batch commit point for group-committed stores: it makes every
// append since the last Sync durable before returning. On a store without a
// committer (or with sync disabled) it is a no-op — the appends were
// already fsynced inline (or deliberately not at all).
func (s *Store) Sync() error {
	if !s.sync || s.gc == nil || !s.dirty || s.journal == nil {
		return nil
	}
	if err := s.fault(atomicio.StageSyncFile); err != nil {
		return diskErr("sync", s.journal.Name(), err)
	}
	if err := s.gc.Sync(s.journal, int64(s.dirtyCount)); err != nil {
		return diskErr("sync", s.journal.Name(), err)
	}
	s.dirty = false
	s.dirtyCount = 0
	return nil
}
