package expert

import (
	"fmt"
	"strconv"
	"strings"

	"moe/internal/regress"
)

// FormatTable renders an expert set in the textual layout of the paper's
// Table 1: one line per expert,
//
//	name|maxThreads|trainedOn|w coefficients|m coefficients
//
// where each coefficient list is weights followed by the regression
// constant β, in regress.FormatCoefficients form. ParseTable reads the
// result back exactly. Only experts in direct Table 1 form — a linear
// thread predictor plus a NormEnvModel environment predictor — can be
// rendered; FormatTable panics on speedup-form or heuristic experts.
func FormatTable(s Set) string {
	var b strings.Builder
	for _, e := range s {
		env, ok := e.Env.(NormEnvModel)
		if !ok || e.Threads == nil {
			panic(fmt.Sprintf("expert: %q is not in Table 1 form", e.Name))
		}
		fmt.Fprintf(&b, "%s|%d|%s|%s|%s\n",
			e.Name, e.MaxThreads, e.TrainedOn,
			regress.FormatCoefficients(e.Threads.Coefficients()),
			regress.FormatCoefficients(env.Model.Coefficients()))
	}
	return b.String()
}

// ParseTable parses a FormatTable-style coefficient table into an expert
// set. Blank lines and lines starting with '#' are ignored. The returned
// set is fully validated: every line must carry a name, a positive thread
// limit and two finite coefficient rows of equal length, and expert names
// must be unique.
func ParseTable(s string) (Set, error) {
	var set Set
	for ln, line := range strings.Split(s, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, "|")
		if len(parts) != 5 {
			return nil, fmt.Errorf("expert: line %d: want 5 '|'-separated fields, got %d", ln+1, len(parts))
		}
		name := strings.TrimSpace(parts[0])
		if name == "" {
			return nil, fmt.Errorf("expert: line %d: empty expert name", ln+1)
		}
		maxThreads, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil {
			return nil, fmt.Errorf("expert: line %d: max threads: %w", ln+1, err)
		}
		if maxThreads < 1 {
			return nil, fmt.Errorf("expert: line %d: max threads must be positive, got %d", ln+1, maxThreads)
		}
		wm, err := regress.ParseModel(parts[3])
		if err != nil {
			return nil, fmt.Errorf("expert: line %d: thread predictor: %w", ln+1, err)
		}
		mm, err := regress.ParseModel(parts[4])
		if err != nil {
			return nil, fmt.Errorf("expert: line %d: environment predictor: %w", ln+1, err)
		}
		if wm.Dim() != mm.Dim() {
			return nil, fmt.Errorf("expert: line %d: predictor dimensions differ (%d vs %d)", ln+1, wm.Dim(), mm.Dim())
		}
		set = append(set, &Expert{
			Name:       name,
			Threads:    wm,
			Env:        NormEnvModel{Model: mm},
			MaxThreads: maxThreads,
			TrainedOn:  strings.TrimSpace(parts[2]),
		})
	}
	if err := set.Validate(); err != nil {
		return nil, err
	}
	return set, nil
}
