package expert

import (
	"fmt"
	"math"

	"moe/internal/features"
	"moe/internal/regress"
)

// Evolvable-pool support: the expert-layer half of the online lifecycle
// (internal/evolve holds the emitters and history; internal/core wires the
// lifecycle into the mixture). An evolved expert is always Table-1-form — a
// linear thread predictor plus a NormEnvModel — because that is the
// representation the paper's tables serialize and the only one whose whole
// genome is a flat coefficient slice that mutation and crossover can act on.

// NicheCount is the number of environment niches the lifecycle tracks
// per-expert performance in. Niches partition the observable environment the
// way the paper's scenarios do: by how much hardware is present and how
// loaded it is. Eight cells (four processor-count buckets × two load
// regimes) is coarse enough that every niche accumulates evidence within a
// few hundred decisions and fine enough that "dominated in every niche it
// was selected for" is a meaningful retirement test rather than a single
// global average.
const NicheCount = 8

// NicheOf maps a sanitized feature vector to its environment niche. The
// partition uses only observable environment features (f5 availability and
// the ldavg-1/processor load ratio), never model outputs, so every expert —
// and the frozen and living pools in a comparison run — sees the same niche
// for the same observation. Thresholds follow the paper's machine classes:
// small (dual/quad), medium (8-core), large (16-core), huge (32+).
func NicheOf(f *features.Vector) int {
	p := f[features.Processors]
	var bucket int
	switch {
	case p < 4:
		bucket = 0
	case p < 9:
		bucket = 1
	case p < 17:
		bucket = 2
	default:
		bucket = 3
	}
	denom := p
	if denom < 1 {
		denom = 1
	}
	load := 0
	if f[features.CPULoad1]/denom >= 0.5 {
		load = 1
	}
	return bucket*2 + load
}

// clampCoeff keeps a mutated coefficient inside the magnitude bound that
// FromCoefficients enforces, so mutation can never construct a genome the
// loading boundary would reject.
func clampCoeff(v float64) float64 {
	if v > regress.MaxCoefficient {
		return regress.MaxCoefficient
	}
	if v < -regress.MaxCoefficient {
		return -regress.MaxCoefficient
	}
	return v
}

// MutateModel returns a copy of m with every coefficient perturbed by
// scale·(1+|c|)·noise(), where noise draws from [-1,1). The (1+|c|) term
// makes the perturbation relative for large coefficients and absolute for
// near-zero ones, so a dead weight can be switched on by mutation rather
// than being stuck at zero forever — the standard QD line-mutation shape.
// The caller owns the noise source; this package stays deterministic and
// RNG-free.
func MutateModel(m *regress.Model, scale float64, noise func() float64) (*regress.Model, error) {
	if m == nil {
		return nil, fmt.Errorf("expert: mutate nil model")
	}
	c := m.Coefficients()
	for i, v := range c {
		c[i] = clampCoeff(v + scale*(1+math.Abs(v))*noise())
	}
	return regress.FromCoefficients(c)
}

// CrossModels blends two models of equal dimensionality coefficient-by-
// coefficient: child_i = a_i + t·(b_i − a_i) with t drawn per-coefficient
// from blend. With t beyond [0,1] this is the directional cross of the QD
// mixing emitters — the child can overshoot either parent along the line
// joining them.
func CrossModels(a, b *regress.Model, blend func() float64) (*regress.Model, error) {
	if a == nil || b == nil {
		return nil, fmt.Errorf("expert: cross nil model")
	}
	ca, cb := a.Coefficients(), b.Coefficients()
	if len(ca) != len(cb) {
		return nil, fmt.Errorf("expert: cross models of dim %d and %d", len(ca)-1, len(cb)-1)
	}
	for i := range ca {
		t := blend()
		ca[i] = clampCoeff(ca[i] + t*(cb[i]-ca[i]))
	}
	return regress.FromCoefficients(ca)
}

// NormEnv returns e's environment predictor model when it is in Table-1
// form (the only form evolution can breed from), or nil.
func NormEnv(e *Expert) *regress.Model {
	n, ok := e.Env.(NormEnvModel)
	if !ok {
		return nil
	}
	return n.Model
}
