package moe_test

import (
	"fmt"

	"moe"
)

// The canonical Table 1 experts run without any training: build a mixture,
// wrap it in a Runtime, and ask for a thread count at a parallel region.
func ExampleNewRuntime() {
	mixture, err := moe.NewMixture(moe.CanonicalExperts())
	if err != nil {
		panic(err)
	}
	rt, err := moe.NewRuntime(mixture, 32)
	if err != nil {
		panic(err)
	}
	// The worked example of the paper's §5.4: timestamp t1's feature
	// vector.
	f := moe.CombineFeatures(
		moe.CodeFeatures{LoadStore: 0.032, Instructions: 0.026, Branches: 0.2},
		moe.EnvFeatures{
			WorkloadThreads: 4, Processors: 8, RunQueue: 16,
			Load1: 4.76, Load5: 2.17, CachedMem: 1.11, PageFreeRate: 1.65,
		},
	)
	n := rt.Decide(moe.Observation{Time: 0, Features: f, RegionStart: true})
	fmt.Println(n >= 1 && n <= 8)
	// Output: true
}

// Simulate runs a co-execution scenario on the built-in evaluation
// machine; the same seed replays identical external conditions for every
// policy, so comparisons are exact.
func ExampleSimulate() {
	spec := moe.Simulation{
		Target:    "cg",
		Policy:    moe.NewDefaultPolicy(),
		Workload:  []string{"is"},
		Frequency: moe.StaticSystem,
		Seed:      1,
	}
	res, err := moe.Simulate(spec)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.ExecTime > 0, res.Decisions > 0)
	// Output: true true
}

// Policies share one interface, so baselines and the mixture are
// interchangeable everywhere.
func ExamplePolicy() {
	policies := []moe.Policy{
		moe.NewDefaultPolicy(),
		moe.NewOnlinePolicy(),
		moe.NewAnalyticPolicy(1),
	}
	for _, p := range policies {
		fmt.Println(p.Name())
	}
	// Output:
	// default
	// online
	// analytic
}
