package trace

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce the same stream")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collide too often: %d/100", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	sum := 0.0
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / 10000; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(9)
	counts := make([]int, 5)
	for i := 0; i < 5000; i++ {
		v := r.Intn(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 800 || c > 1200 {
			t.Errorf("Intn bucket %d count %d far from uniform", i, c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestRNGRangeHelpers(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 1000; i++ {
		v := r.Range(2, 3)
		if v < 2 || v > 3 {
			t.Fatalf("Range out of bounds: %v", v)
		}
		n := r.IntRange(4, 6)
		if n < 4 || n > 6 {
			t.Fatalf("IntRange out of bounds: %d", n)
		}
	}
	if r.Range(5, 5) != 5 || r.Range(5, 4) != 5 {
		t.Error("degenerate Range should return lo")
	}
	if r.IntRange(5, 5) != 5 || r.IntRange(5, 4) != 5 {
		t.Error("degenerate IntRange should return lo")
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(13)
	var sum, sumSq float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("Norm mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("Norm variance = %v", variance)
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(15)
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Exp(10)
		if v < 0 {
			t.Fatal("Exp produced negative value")
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-10) > 0.5 {
		t.Errorf("Exp mean = %v, want ~10", mean)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(17)
	p := r.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("Perm invalid: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(19)
	c1 := r.Split()
	c2 := r.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Error("split children should differ")
	}
}

func TestHardwareTraceAt(t *testing.T) {
	hw, err := NewHardwareTrace([]HardwareEvent{
		{Time: 10, Processors: 16},
		{Time: 0, Processors: 32}, // out of order on purpose
		{Time: 20, Processors: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		t    float64
		want int
	}{{-5, 32}, {0, 32}, {5, 32}, {10, 16}, {15, 16}, {20, 8}, {1000, 8}}
	for _, c := range cases {
		if got := hw.At(c.t); got != c.want {
			t.Errorf("At(%v) = %d, want %d", c.t, got, c.want)
		}
	}
	if hw.MaxProcessors() != 32 {
		t.Errorf("MaxProcessors = %d", hw.MaxProcessors())
	}
}

func TestHardwareTraceValidation(t *testing.T) {
	if _, err := NewHardwareTrace(nil); err == nil {
		t.Error("empty trace should error")
	}
	if _, err := NewHardwareTrace([]HardwareEvent{{Time: 0, Processors: 0}}); err == nil {
		t.Error("zero processors should error")
	}
}

func TestStaticHardware(t *testing.T) {
	hw := StaticHardware(12)
	if hw.At(0) != 12 || hw.At(1e9) != 12 {
		t.Error("static hardware should be constant")
	}
}

func TestGenerateHardwareBounds(t *testing.T) {
	f := func(seed uint64, highFreq bool) bool {
		freq := LowFrequency
		if highFreq {
			freq = HighFrequency
		}
		hw, err := GenerateHardware(NewRNG(seed), 32, freq, 600)
		if err != nil {
			return false
		}
		for _, ev := range hw.Events() {
			if ev.Processors < 8 || ev.Processors > 32 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestGenerateHardwarePeriod(t *testing.T) {
	hw, err := GenerateHardware(NewRNG(1), 32, LowFrequency, 100)
	if err != nil {
		t.Fatal(err)
	}
	events := hw.Events()
	// Every 20s over 100s: events at 0, 20, 40, 60, 80.
	if len(events) != 5 {
		t.Fatalf("low-frequency events = %d, want 5", len(events))
	}
	for i, ev := range events {
		if ev.Time != float64(i*20) {
			t.Errorf("event %d at %v, want %d", i, ev.Time, i*20)
		}
	}
	hwHigh, err := GenerateHardware(NewRNG(1), 32, HighFrequency, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(hwHigh.Events()) != 10 {
		t.Errorf("high-frequency events = %d, want 10", len(hwHigh.Events()))
	}
}

func TestGenerateHardwareStatic(t *testing.T) {
	hw, err := GenerateHardware(NewRNG(1), 16, Static, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(hw.Events()) != 1 || hw.At(999) != 16 {
		t.Error("static generation should hold the full count")
	}
	if _, err := GenerateHardware(NewRNG(1), 0, Static, 10); err == nil {
		t.Error("non-positive cores should error")
	}
}

func TestFailureHardware(t *testing.T) {
	hw, err := FailureHardware(32, 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	if hw.At(50) != 32 || hw.At(100) != 16 || hw.At(149) != 16 || hw.At(151) != 32 {
		t.Error("failure trace shape wrong")
	}
	if _, err := FailureHardware(1, 0, 1); err == nil {
		t.Error("single-core failure trace should error")
	}
}

func TestFrequencyStrings(t *testing.T) {
	if LowFrequency.String() != "low" || HighFrequency.String() != "high" || Static.String() != "static" {
		t.Error("frequency names wrong")
	}
	if LowFrequency.Period() != 20 || HighFrequency.Period() != 10 || Static.Period() != 0 {
		t.Error("frequency periods wrong")
	}
}

func TestGenerateLive(t *testing.T) {
	cfg := LiveConfig{
		Duration: 3600, SamplePerd: 10,
		MaxThreads: 1000, MaxProcs: 500,
		FailureAt: 1000, FailureLen: 500,
	}
	lt, err := GenerateLive(NewRNG(5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if lt.Len() != 361 {
		t.Errorf("samples = %d, want 361", lt.Len())
	}
	sawFailure := false
	for _, p := range lt.Points() {
		if p.Threads < 0 || p.Threads > cfg.MaxThreads {
			t.Fatalf("threads out of range: %d", p.Threads)
		}
		if p.Time >= 1000 && p.Time < 1500 {
			if p.Procs != 250 {
				t.Fatalf("failure window procs = %d", p.Procs)
			}
			sawFailure = true
		} else if p.Procs != 500 {
			t.Fatalf("normal procs = %d", p.Procs)
		}
	}
	if !sawFailure {
		t.Error("no failure-window sample")
	}
}

func TestGenerateLiveErrors(t *testing.T) {
	if _, err := GenerateLive(NewRNG(1), LiveConfig{}); err == nil {
		t.Error("zero config should error")
	}
	if _, err := GenerateLive(NewRNG(1), LiveConfig{Duration: 10, SamplePerd: 1}); err == nil {
		t.Error("zero capacities should error")
	}
}

func TestLiveTraceAtAndWindow(t *testing.T) {
	cfg := LiveConfig{Duration: 100, SamplePerd: 10, MaxThreads: 10, MaxProcs: 5}
	lt, err := GenerateLive(NewRNG(5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := lt.At(-5); got != lt.Points()[0] {
		t.Error("At before start should clamp")
	}
	if got := lt.At(1e9); got != lt.Points()[lt.Len()-1] {
		t.Error("At after end should clamp")
	}
	w := lt.Window(30, 60)
	if len(w) != 3 {
		t.Fatalf("window size = %d, want 3", len(w))
	}
	if w[0].Time != 0 {
		t.Errorf("window should rebase to 0, got %v", w[0].Time)
	}
}

func TestScaleTo(t *testing.T) {
	points := []LivePoint{
		{Time: 0, Threads: 1000, Procs: 500},
		{Time: 10, Threads: 500, Procs: 250},
	}
	hw, scaled, err := ScaleTo(points, 32)
	if err != nil {
		t.Fatal(err)
	}
	if scaled[0].Threads != 64 || scaled[0].Procs != 32 {
		t.Errorf("scaled[0] = %+v", scaled[0])
	}
	if scaled[1].Procs != 16 {
		t.Errorf("scaled[1] = %+v", scaled[1])
	}
	if hw.At(0) != 32 || hw.At(10) != 16 {
		t.Error("scaled hardware trace wrong")
	}
	if _, _, err := ScaleTo(nil, 32); err == nil {
		t.Error("empty window should error")
	}
	if _, _, err := ScaleTo(points, 0); err == nil {
		t.Error("non-positive target should error")
	}
}

func TestDefaultLiveConfigMatchesPaper(t *testing.T) {
	cfg := DefaultLiveConfig()
	if cfg.Duration != 50*3600 {
		t.Errorf("duration = %v, want 50 h", cfg.Duration)
	}
	if cfg.MaxProcs != 2912 || cfg.MaxThreads != 5824 {
		t.Errorf("capacities = %d/%d, want the paper's 2912 cores / 5824 contexts", cfg.MaxProcs, cfg.MaxThreads)
	}
	if cfg.FailureLen != 2*3600 {
		t.Errorf("failure length = %v, want 2 h", cfg.FailureLen)
	}
}
