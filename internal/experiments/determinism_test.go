package experiments

import (
	"sync"
	"testing"

	"moe/internal/trace"
	"moe/internal/workload"
)

// TestWorkersOutputIdentical is the determinism regression test for the
// parallel evaluation engine: every experiment table must render to the
// exact same bytes whether its scenario grid runs serially or on four
// workers. Seeds derive from grid coordinates — never from scheduling
// order — and reductions accumulate in index order, so float summation
// order is identical too.
func TestWorkersOutputIdentical(t *testing.T) {
	l := lab(t)
	saved := l.Workers
	defer func() { l.Workers = saved }()

	sc := tinyScale()
	one := tinyScale()
	one.Targets = []string{"lu"}

	experiments := []struct {
		name string
		run  func() (*Table, error)
	}{
		{"dynamic", func() (*Table, error) { return l.DynamicScenario(workload.Small, trace.LowFrequency, sc) }},
		{"static", func() (*Table, error) { return l.Static(sc) }},
		{"churn", func() (*Table, error) { return l.Churn(one) }},
		{"impact", func() (*Table, error) { return l.WorkloadImpact(one) }},
		{"env-accuracy", func() (*Table, error) { return l.EnvAccuracy(one) }},
		{"adaptive-pairs", func() (*Table, error) { return l.AdaptivePairs(sc) }},
		{"portability", func() (*Table, error) { return l.Portability(one) }},
	}

	render := func() map[string]string {
		out := make(map[string]string, len(experiments))
		for _, e := range experiments {
			tab, err := e.run()
			if err != nil {
				t.Fatalf("%s (workers=%d): %v", e.name, l.Workers, err)
			}
			out[e.name] = tab.String()
		}
		return out
	}

	l.Workers = 1
	serial := render()
	l.Workers = 4
	concurrent := render()

	for _, e := range experiments {
		if serial[e.name] != concurrent[e.name] {
			t.Errorf("%s: workers=4 output differs from workers=1:\n--- serial ---\n%s\n--- workers=4 ---\n%s",
				e.name, serial[e.name], concurrent[e.name])
		}
	}
}

// TestConcurrentScenarioRuns stress-tests sim.Run isolation: many
// goroutines running the same scenario spec must neither race (caught by
// -race) nor perturb each other's results.
func TestConcurrentScenarioRuns(t *testing.T) {
	l := lab(t)
	spec := ScenarioSpec{
		Target:   "cg",
		Workload: []string{"is"},
		HWFreq:   trace.LowFrequency,
		Seed:     11,
	}
	base, err := l.Run(spec, PolicyMixture)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	outs := make([]*RunOutcome, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			outs[g], errs[g] = l.Run(spec, PolicyMixture)
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if outs[g].ExecTime != base.ExecTime || outs[g].WorkloadThroughput != base.WorkloadThroughput {
			t.Errorf("goroutine %d diverged: exec %v vs %v, throughput %v vs %v",
				g, outs[g].ExecTime, base.ExecTime, outs[g].WorkloadThroughput, base.WorkloadThroughput)
		}
	}
}
