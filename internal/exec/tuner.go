package exec

import (
	"fmt"
	"runtime"
	"time"

	"moe/internal/features"
	"moe/internal/sim"
	"moe/internal/stats"
	"moe/internal/telemetry"
)

// Tuner drives a Kernel's parallel regions with a thread-selection policy,
// sampling live runtime metrics between regions — the end-to-end
// GOMAXPROCS-analog autotuner.
type Tuner struct {
	policy  sim.Policy
	sampler *MetricSampler
	maxN    int
	lastN   int
	region  int
	hist    *stats.Histogram
	// prevRate carries the last region's achieved rate into the next
	// decision (measurement-driven policies need it).
	prevRate float64

	// Metrics (nil until SetMetrics).
	regions       *telemetry.Counter
	workers       *telemetry.Gauge
	rate          *telemetry.Gauge
	regionLatency *telemetry.Histogram
}

// NewTuner wraps a policy. maxWorkers ≤ 0 selects the machine's CPU count.
func NewTuner(p sim.Policy, maxWorkers int) (*Tuner, error) {
	if p == nil {
		return nil, fmt.Errorf("exec: nil policy")
	}
	if maxWorkers <= 0 {
		maxWorkers = runtime.NumCPU()
	}
	return &Tuner{
		policy:  p,
		sampler: NewMetricSampler(),
		maxN:    maxWorkers,
		lastN:   1,
		hist:    stats.NewHistogram(),
	}, nil
}

// SetMetrics registers the tuner's region counters, worker/rate gauges and
// region-duration histogram in reg. Decisions are unchanged; only what the
// tuner already measures becomes scrapeable.
//
// SetMetrics must be called before the first ExecuteRegion: the metric
// fields are plain pointers read without synchronization, so attaching
// metrics to a tuner that is already executing regions is a data race.
func (t *Tuner) SetMetrics(reg *telemetry.Registry) {
	t.regions = reg.Counter("exec_regions_total", "Parallel regions executed.")
	t.workers = reg.Gauge("exec_workers", "Worker count chosen for the most recent region.")
	t.rate = reg.Gauge("exec_rate", "Items per second achieved by the most recent region.")
	t.regionLatency = reg.Histogram("exec_region_seconds", "Wall-clock duration of executed regions.", nil)
}

// RegionResult reports one executed region.
type RegionResult struct {
	Workers  int
	Items    int
	Duration time.Duration
	// Rate is items per second.
	Rate float64
}

// ExecuteRegion runs one parallel region of the kernel over `items` items:
// sample the environment, consult the policy, fan out, measure.
func (t *Tuner) ExecuteRegion(k Kernel, items int) RegionResult {
	env := t.sampler.Sample(t.lastN)
	f := features.Combine(k.Code(), env)
	procs := int(env.Processors)

	// The previous region's achieved rate feeds measurement-driven
	// policies; the first region reports zero.
	n := t.policy.Decide(sim.Decision{
		Time:           t.sampler.Elapsed(),
		Features:       f,
		Rate:           t.prevRate,
		CurrentThreads: t.lastN,
		MaxThreads:     t.maxN,
		AvailableProcs: procs,
		RegionStart:    true,
		RegionIndex:    t.region,
	})
	n = stats.ClampInt(n, 1, t.maxN)

	start := time.Now()
	RunRegion(k, items, n)
	elapsed := time.Since(start)

	rate := 0.0
	if secs := elapsed.Seconds(); secs > 0 {
		rate = float64(items) / secs
	}
	t.prevRate = rate
	t.lastN = n
	t.region++
	t.hist.Add(n)
	if t.regions != nil {
		t.regions.Inc()
		t.workers.Set(float64(n))
		t.rate.Set(rate)
		t.regionLatency.Observe(elapsed.Seconds())
	}
	return RegionResult{Workers: n, Items: items, Duration: elapsed, Rate: rate}
}

// WorkerHistogram returns the distribution of chosen worker counts.
func (t *Tuner) WorkerHistogram() map[int]float64 { return t.hist.Normalized() }

// Regions returns how many regions have executed.
func (t *Tuner) Regions() int { return t.region }

// PolicyName reports the wrapped policy.
func (t *Tuner) PolicyName() string { return t.policy.Name() }
