// Adaptive: the §7.4 smart-vs-smart study — what happens when *both*
// co-executing programs adapt with the same policy? Naive adaptation can
// fight itself; the paper's result is that smart policies on both sides
// create a win–win, the mixture most of all.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"moe"
)

func main() {
	fmt.Println("training…")
	data, err := moe.Train(moe.TrainingConfig{Seed: 1, WorkloadsPerTarget: 3})
	if err != nil {
		log.Fatal(err)
	}
	experts, err := moe.BuildExperts(data, 4)
	if err != nil {
		log.Fatal(err)
	}
	mono, err := moe.BuildExperts(data, 1)
	if err != nil {
		log.Fatal(err)
	}

	build := func(kind string) (moe.Policy, error) {
		switch kind {
		case "default":
			return moe.NewDefaultPolicy(), nil
		case "online":
			return moe.NewOnlinePolicy(), nil
		case "offline":
			return moe.NewOfflinePolicy(mono)
		case "analytic":
			return moe.NewAnalyticPolicy(11), nil
		default:
			return moe.NewTrainedMixture(data, experts)
		}
	}

	const target, partner = "lu", "cg"
	fmt.Printf("\n%s and %s co-executing, both adapting with the same policy:\n", target, partner)
	fmt.Printf("%-9s %12s %22s\n", "policy", "target time", "partner throughput")

	var baseTime, baseThroughput float64
	for _, kind := range []string{"default", "online", "offline", "analytic", "mixture"} {
		tp, err := build(kind)
		if err != nil {
			log.Fatal(err)
		}
		pp, err := build(kind)
		if err != nil {
			log.Fatal(err)
		}
		out, err := moe.Simulate(moe.Simulation{
			Target:           target,
			Policy:           tp,
			Workload:         []string{partner},
			WorkloadPolicies: []moe.Policy{pp},
			Frequency:        moe.LowFrequency,
			Seed:             7,
		})
		if err != nil {
			log.Fatal(err)
		}
		if kind == "default" {
			baseTime, baseThroughput = out.ExecTime, out.WorkloadThroughput
			fmt.Printf("%-9s %10.1f s %18.2f u/s\n", kind, out.ExecTime, out.WorkloadThroughput)
			continue
		}
		fmt.Printf("%-9s %10.1f s (%.2fx) %10.2f u/s (%.2fx)\n",
			kind, out.ExecTime, baseTime/out.ExecTime,
			out.WorkloadThroughput, out.WorkloadThroughput/baseThroughput)
	}
	fmt.Println("\nWhen both programs are smart they stop fighting over the machine:")
	fmt.Println("the target finishes sooner AND the partner gets more work done.")
}
