package core

import (
	"fmt"
	"math"
	"testing"

	"moe/internal/expert"
	"moe/internal/features"
	"moe/internal/sim"
)

// batchDecision builds a well-formed decision with the given environment
// norm and processor count.
func batchDecision(i int, norm, procs float64) sim.Decision {
	f := stateWithNorm(norm)
	f[features.Processors] = procs
	return sim.Decision{
		Time:           0.25 * float64(i),
		Features:       f,
		MaxThreads:     32,
		AvailableProcs: int(procs),
	}
}

// TestRegimeDispatch pins the per-batch half of the dispatcher: the fast
// path may only be considered when no ladder state is live.
func TestRegimeDispatch(t *testing.T) {
	fresh := func(set expert.Set) *Mixture {
		t.Helper()
		m, err := NewMixture(set, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	twoExperts := func() expert.Set {
		return expert.Set{envExpert("A", 4, 10), envExpert("B", 20, 50)}
	}

	t.Run("cold-until-first-decision", func(t *testing.T) {
		m := fresh(twoExperts())
		if got := m.Regime(); got != RegimeCold {
			t.Fatalf("fresh mixture regime = %v, want cold", got)
		}
		m.Decide(batchDecision(0, 10, 8))
		if got := m.Regime(); got != RegimeHealthy {
			t.Fatalf("after one decision regime = %v, want healthy", got)
		}
	})

	t.Run("lone-expert", func(t *testing.T) {
		m := fresh(expert.Set{envExpert("A", 4, 10)})
		m.Decide(batchDecision(0, 10, 8))
		if got := m.Regime(); got != RegimeLoneExpert {
			t.Fatalf("single-expert regime = %v, want lone-expert", got)
		}
	})

	t.Run("observed-while-detail-on", func(t *testing.T) {
		m := fresh(twoExperts())
		m.Decide(batchDecision(0, 10, 8))
		m.EnableDecisionDetail()
		if got := m.Regime(); got != RegimeObserved {
			t.Fatalf("detail-enabled regime = %v, want observed", got)
		}
		m.DisableDecisionDetail()
		if got := m.Regime(); got != RegimeHealthy {
			t.Fatalf("detail-disabled regime = %v, want healthy", got)
		}
	})

	t.Run("degraded-while-quarantine-live", func(t *testing.T) {
		// W's environment prediction is wrong by 5 orders of magnitude, so
		// its first scored observation quarantines it.
		m := fresh(expert.Set{envExpert("A", 4, 10), envExpert("W", 8, 1e6)})
		for i := 0; i < 3; i++ {
			m.Decide(batchDecision(i, 10, 8))
		}
		st := m.Snapshot()
		if !st.Quarantined[1] {
			t.Fatal("wild expert did not quarantine — scenario broken")
		}
		if got := m.Regime(); got != RegimeDegraded {
			t.Fatalf("quarantine-live regime = %v, want degraded", got)
		}
		// The regime stays demoted through cooldown AND probation: probation
		// is still a live ladder state even though the expert is usable.
		for i := 3; i < 3+quarantineCooldown+1; i++ {
			m.Decide(batchDecision(i, 10, 8))
			if got := m.Regime(); got != RegimeDegraded {
				t.Fatalf("decision %d: regime = %v, want degraded until probation resolves", i, got)
			}
		}
	})

	t.Run("suspect-keeps-pending", func(t *testing.T) {
		m := fresh(twoExperts())
		for i := 0; i < 5; i++ {
			m.Decide(batchDecision(i, 10, 8))
		}
		// An observation the whole pool condemns: every pending prediction
		// sits near norm 10–50, the observed environment collapses to zero —
		// the best raw error is ≥10× the observed scale, past suspectErrRatio.
		m.Decide(batchDecision(5, 0, 0.001))
		if m.Snapshot().SuspectObservations == 0 {
			t.Fatal("consensus outlier not disbelieved — scenario broken")
		}
		// A suspect step stashes nothing but also discards nothing: the
		// pre-suspect predictions stay pending for the next trustworthy
		// observation, so the regime returns to healthy — and the fast path
		// scores exactly the pending state the full path would.
		if got := m.Regime(); got != RegimeHealthy {
			t.Fatalf("post-suspect regime = %v, want healthy (pending predictions survive)", got)
		}
	})
}

// fastPlan adapts FastPlan's pointer signature for one-shot test probes.
func fastPlan(m *Mixture, d sim.Decision) bool { return m.FastPlan(&d) }

// TestFastPlanDemotions pins the per-observation half: each condition the
// plan must prove absent, when present, fails the plan — and because the
// plan is pure, the mixture afterwards behaves as if it never ran.
func TestFastPlanDemotions(t *testing.T) {
	warm := func(t *testing.T) *Mixture {
		t.Helper()
		m, err := NewMixture(expert.Set{envExpert("A", 4, 10), envExpert("B", 20, 50)}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			m.Decide(batchDecision(i, 10, 8))
		}
		if m.Regime() != RegimeHealthy {
			t.Fatalf("warm-up did not reach healthy regime: %v", m.Regime())
		}
		return m
	}

	t.Run("healthy-baseline-plans", func(t *testing.T) {
		m := warm(t)
		if !fastPlan(m, batchDecision(10, 10, 8)) {
			t.Fatal("steady-state observation failed the plan")
		}
	})

	t.Run("dirty-features", func(t *testing.T) {
		m := warm(t)
		d := batchDecision(10, 10, 8)
		d.Features[features.CPULoad1] = math.NaN()
		if fastPlan(m, d) {
			t.Fatal("NaN feature passed the plan")
		}
		d.Features[features.CPULoad1] = 2 * features.MaxMagnitude
		if fastPlan(m, d) {
			t.Fatal("out-of-bound feature passed the plan")
		}
	})

	t.Run("availability-churn", func(t *testing.T) {
		m := warm(t)
		// Alternate the processor count until one more change would tip the
		// churn EMA over the storm limit.
		procs := []float64{1, 8, 1, 8, 1}
		for i, p := range procs {
			m.Decide(batchDecision(10+i, 10, p))
		}
		d := batchDecision(15, 10, 4)
		if m.Regime() == RegimeHealthy && fastPlan(m, d) {
			t.Fatal("storming availability signal passed the plan")
		}
	})

	t.Run("consensus-outlier", func(t *testing.T) {
		m := warm(t)
		if fastPlan(m, batchDecision(10, 0, 0.001)) {
			t.Fatal("pool-condemned observation passed the plan")
		}
	})

	t.Run("imminent-health-transition", func(t *testing.T) {
		// W predicts garbage: scoring any observation would push its error
		// EMA over the quarantine threshold, so no plan may ever succeed.
		m, err := NewMixture(expert.Set{envExpert("A", 4, 10), envExpert("W", 8, 1e6)}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		m.Decide(batchDecision(0, 10, 8)) // warm pending predictions; W not yet scored
		if m.Regime() == RegimeHealthy && fastPlan(m, batchDecision(1, 10, 8)) {
			t.Fatal("observation that must quarantine an expert passed the plan")
		}
	})

	t.Run("failed-plan-is-pure", func(t *testing.T) {
		// Interleave failed plans into one of two identical mixtures; every
		// subsequent decision must stay byte-identical.
		ref, err := NewMixture(expert.Set{envExpert("A", 4, 10), envExpert("B", 20, 50)}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		probed, err := NewMixture(expert.Set{envExpert("A", 4, 10), envExpert("B", 20, 50)}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			d := batchDecision(i, 10+float64(i%3), 8)
			bad := d
			bad.Features[features.RunQueueSize] = math.Inf(1)
			if fastPlan(probed, bad) {
				t.Fatalf("step %d: corrupt probe passed the plan", i)
			}
			fastPlan(probed, batchDecision(i, 0, 0.001)) // consensus-stage failure
			if got, want := probed.Decide(d), ref.Decide(d); got != want {
				t.Fatalf("step %d: decisions diverged after failed plans: %d vs %d", i, got, want)
			}
		}
		if got, want := mixtureFingerprint(probed), mixtureFingerprint(ref); got != want {
			t.Fatalf("state diverged after failed plans:\n got %s\nwant %s", got, want)
		}
	})
}

// mixtureFingerprint renders a mixture's full analysis snapshot for
// bit-equality comparison (fmt prints NaN and -0 distinctly, which is all
// the differential suite needs).
func mixtureFingerprint(m *Mixture) string {
	return fmt.Sprintf("%+v", m.Snapshot())
}

// TestDecideFastEquivalence is the core-level differential test: a stream
// alternating healthy and demoting observations through DecideFast-with-
// fallback must match pure Decide decision-for-decision and leave
// bit-identical analysis state.
func TestDecideFastEquivalence(t *testing.T) {
	build := func() *Mixture {
		m, err := NewMixture(expert.Set{envExpert("A", 4, 10), envExpert("B", 20, 100)}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	ref, fast := build(), build()
	fastServed := 0
	for i := 0; i < 300; i++ {
		norm := 10.0
		if i/60%2 == 1 {
			norm = 100 // regime switch: B's territory
		}
		d := batchDecision(i, norm, 8)
		switch {
		case i%37 == 0:
			d.Features[features.CPULoad5] = math.NaN() // sanitizer territory
		case i%53 == 0:
			d = batchDecision(i, 0, 0.001) // consensus-suspect territory (zeroed env)
		}
		want := ref.Decide(d)
		got, ok := fast.DecideFast(d)
		if !ok {
			got = fast.Decide(d)
		} else {
			fastServed++
		}
		if got != want {
			t.Fatalf("decision %d diverged: fast %d vs full %d", i, got, want)
		}
	}
	fast.FlushFast()
	if fastServed == 0 {
		t.Fatal("fast path never engaged — the equivalence was tested vacuously")
	}
	if got, want := mixtureFingerprint(fast), mixtureFingerprint(ref); got != want {
		t.Fatalf("analysis state diverged:\n got %s\nwant %s", got, want)
	}
	t.Logf("fast path served %d/300 decisions", fastServed)
}

// TestFlushFastBeforeSnapshot pins the deferred-histogram contract: a
// snapshot taken after FlushFast sees every fast-committed decision.
func TestFlushFastBeforeSnapshot(t *testing.T) {
	m, err := NewMixture(expert.Set{envExpert("A", 4, 10), envExpert("B", 20, 50)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m.Decide(batchDecision(0, 10, 8))
	served := 1
	for i := 1; i < 20; i++ {
		if _, ok := m.DecideFast(batchDecision(i, 10, 8)); !ok {
			t.Fatalf("decision %d unexpectedly demoted", i)
		}
		served++
	}
	m.FlushFast()
	st := m.Snapshot()
	if st.Decisions != served {
		t.Fatalf("snapshot sees %d decisions, want %d", st.Decisions, served)
	}
	total := 0.0
	for _, frac := range st.ThreadHistogram {
		total += frac
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("thread histogram fractions sum to %v after flush", total)
	}
}
