// Package trace provides the dynamic-environment machinery of the paper's
// experimental setup (§6.4): schedules that vary the number of available
// processors at low (every 20 s) or high (every 10 s) frequency, workload
// arrival patterns, and the synthetic "live system" trace used for Fig 1 and
// the real-world case study (§7.5, a hardware failure that removes half the
// processors for two hours).
//
// Everything in this package is deterministic given a seed so that "the same
// external workload is reproduced for all evaluated policies in all cases"
// (§6.4) — the property the paper relies on for fair comparison.
package trace

import "math"

// RNG is a SplitMix64 pseudo-random generator. It is tiny, fast, has
// well-understood statistical quality, and — unlike math/rand's global state
// — gives the simulator reproducible, independently seedable streams.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0 (programmer
// error).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("trace: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo, hi].
func (r *RNG) Range(lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + r.Float64()*(hi-lo)
}

// IntRange returns a uniform integer in [lo, hi] inclusive.
func (r *RNG) IntRange(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.Intn(hi-lo+1)
}

// Norm returns a standard normal sample via Box–Muller.
func (r *RNG) Norm() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Exp returns an exponential sample with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// State exposes the generator's internal state for checkpointing.
func (r *RNG) State() uint64 { return r.state }

// SetState restores a previously captured state; the next Uint64 continues
// the original stream exactly.
func (r *RNG) SetState(s uint64) { r.state = s }

// Split derives an independent child generator; the parent advances once.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
