package serve

import (
	"context"
	"encoding/json"
	"net/http"
)

// Failover: turning a hot standby into the serving primary.
//
// Promotion is explicit — an operator (or orchestrator) decides the old
// primary is dead and POSTs /v1/promote to the standby. The sequence:
//
//  1. The replica layer bumps and persists the fencing term and starts
//     refusing shipments from any primary still stamping the old term
//     (the old primary latches Deposed on its next flush and stops acking).
//  2. Every replicated tenant lineage is resumed into a live runtime, the
//     same path a restart takes: newest intact snapshot, journal tail
//     replayed through the real policy, dedup window reconstructed from
//     its journaled markers. New lineages are floored at the term so they
//     supersede anything the deposed primary wrote after its last ship.
//  3. The decision gate opens. From the client's view the service moved:
//     retries of in-flight requests hit the dedup window (exactly-once),
//     new requests continue the timeline as if the primary never died.

// PromotedTenant is one tenant's promotion outcome.
type PromotedTenant struct {
	ID string `json:"id"`
	// Decisions the resumed runtime holds — how far the replicated lineage
	// reached. Zero with a non-empty Err means the tenant will be rebuilt
	// lazily on its next request instead.
	Decisions int64  `json:"decisions"`
	Err       string `json:"err,omitempty"`
}

// PromoteReport is what a promotion accomplished.
type PromoteReport struct {
	Term    uint64           `json:"term"`
	Tenants []PromotedTenant `json:"tenants"`
}

// Promote turns this standby into the serving primary: fence, resume every
// replicated tenant, open the decision gate. Idempotent at the replica
// layer (the term bumps once); per-tenant resume failures are reported, not
// fatal — a tenant that cannot resume now is quarantined and rebuilt on
// demand like any other build failure.
func (s *Server) Promote(ctx context.Context) (*PromoteReport, error) {
	if s.standby == nil {
		return nil, errNotStandby
	}
	term, err := s.standby.Promote()
	if err != nil {
		return nil, err
	}
	s.promoted.Store(term)
	if s.primary != nil {
		// Chained replication: ship onward under the new term.
		s.primary.SetTerm(term)
	}
	rep := &PromoteReport{Term: term}
	ids, err := s.standby.TenantDirs()
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		pt := PromotedTenant{ID: id}
		t, aerr := s.tenant(id)
		if aerr != nil {
			pt.Err = aerr.msg
			rep.Tenants = append(rep.Tenants, pt)
			continue
		}
		core, aerr := s.ensureCore(ctx, t)
		if aerr != nil {
			pt.Err = aerr.msg
			rep.Tenants = append(rep.Tenants, pt)
			continue
		}
		decided := int64(core.rt.Decisions())
		pt.Decisions = decided
		t.mu.Lock()
		if t.core == core {
			t.served = decided
		}
		t.mu.Unlock()
		rep.Tenants = append(rep.Tenants, pt)
	}
	s.serving.Store(true)
	s.logf("serve: promoted to primary at term %d (%d tenants resumed)", term, len(rep.Tenants))
	return rep, nil
}

var errNotStandby = &apiError{status: http.StatusConflict, code: "not-standby",
	msg: "this server is not a standby"}

func (e *apiError) Error() string { return e.msg }

// handlePromote is the operator endpoint for Promote.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, &apiError{status: http.StatusMethodNotAllowed, code: "method-not-allowed", msg: "POST required"})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.MaxDeadline)
	defer cancel()
	rep, err := s.Promote(ctx)
	if err != nil {
		if aerr, ok := err.(*apiError); ok {
			s.writeError(w, aerr)
			return
		}
		s.writeError(w, &apiError{status: http.StatusInternalServerError, code: "promote-failed", msg: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(rep)
}

// SetReplicaFailpoint installs a send-drop hook on the replication client
// (chaos tests: simulate groups lost on the wire). No-op on a server that
// is not replicating.
func (s *Server) SetReplicaFailpoint(fn func() bool) {
	if s.primary != nil {
		s.primary.SetFailpoint(fn)
	}
}

// ReplicaLag reports shipments buffered but not yet applied by the standby
// (0 when not replicating).
func (s *Server) ReplicaLag() int64 {
	if s.primary == nil {
		return 0
	}
	return s.primary.Lag()
}
