package serve

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"moe"
	"moe/internal/sim"
)

// meteredPolicy counts how many decisions are executing at once — the
// ground truth the admission bound is judged against — and dawdles long
// enough to make the storm actually contend.
type meteredPolicy struct {
	p       moe.Policy
	inUse   *atomic.Int32
	maxSeen *atomic.Int32
}

func (m *meteredPolicy) Name() string       { return m.p.Name() }
func (m *meteredPolicy) Unwrap() moe.Policy { return m.p }

func (m *meteredPolicy) Decide(d sim.Decision) int {
	cur := m.inUse.Add(1)
	for {
		max := m.maxSeen.Load()
		if cur <= max || m.maxSeen.CompareAndSwap(max, cur) {
			break
		}
	}
	time.Sleep(200 * time.Microsecond)
	m.inUse.Add(-1)
	return m.p.Decide(d)
}

// TestAdmissionBoundUnderStorm hammers a 2-slot server from 20 goroutines
// and asserts the contract the limiter sells: never more than 2 decisions
// execute concurrently, and everything else is shed with 503 "capacity"
// and a Retry-After — not queued, not dropped silently. Run under -race in
// CI, where the shared counters would catch an unsynchronized hole.
func TestAdmissionBoundUnderStorm(t *testing.T) {
	var inUse, maxSeen atomic.Int32
	srv, ts := newTestServer(t, Config{
		MaxInflight: 2,
		PolicyBuild: func(id string) (moe.Policy, error) {
			p, err := DefaultPolicyBuild(id)
			if err != nil {
				return nil, err
			}
			return &meteredPolicy{p: p, inUse: &inUse, maxSeen: &maxSeen}, nil
		},
	})

	const workers, perWorker, batch = 20, 10, 4
	var served, shed atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan string, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("storm-%d", w%5)
			for i := 0; i < perWorker; i++ {
				status, _, eresp, hdr := postDecide(t, ts.URL, id, toWire(tenantStream(id, i*batch, batch)), 2000)
				switch status {
				case http.StatusOK:
					served.Add(1)
				case http.StatusServiceUnavailable:
					shed.Add(1)
					if eresp.Code != "capacity" {
						errs <- fmt.Sprintf("503 with code %q, want capacity", eresp.Code)
					}
					if hdr.Get("Retry-After") == "" {
						errs <- "capacity shed without Retry-After"
					}
				default:
					errs <- fmt.Sprintf("status %d, want 200 or 503", status)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
	if max := maxSeen.Load(); max > 2 {
		t.Errorf("%d decisions executed concurrently; the 2-slot limiter is a fiction", max)
	}
	if served.Load() == 0 {
		t.Error("storm served nothing")
	}
	if shed.Load() == 0 {
		t.Skip("storm never contended the 2-slot pool (single-CPU scheduling); bound still verified")
	}
	if v := srv.metrics.sheds["capacity"].Value(); v != shed.Load() {
		t.Errorf("serve_shed_total{reason=capacity} = %d, clients saw %d", v, shed.Load())
	}
}

// TestRateLimitSheds429 floods a small token bucket and expects explicit
// 429s with retry hints once the burst is spent.
func TestRateLimitSheds429(t *testing.T) {
	srv, ts := newTestServer(t, Config{Rate: 20, Burst: 5})
	var ok200, shed429 int
	for i := 0; i < 40; i++ {
		status, _, eresp, hdr := postDecide(t, ts.URL, "rated", toWire(tenantStream("rated", i, 1)), 0)
		switch status {
		case http.StatusOK:
			ok200++
		case http.StatusTooManyRequests:
			shed429++
			if eresp.Code != "rate" {
				t.Fatalf("429 with code %q, want rate", eresp.Code)
			}
			if hdr.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
		default:
			t.Fatalf("status %d, want 200 or 429", status)
		}
	}
	if ok200 == 0 || shed429 == 0 {
		t.Fatalf("flood split 200/429 = %d/%d; want both nonzero", ok200, shed429)
	}
	if v := srv.metrics.sheds["rate"].Value(); v != int64(shed429) {
		t.Errorf("serve_shed_total{reason=rate} = %d, clients saw %d", v, shed429)
	}
}
