// Dynamicsim: the paper's headline comparison on a small scale — every
// policy (OpenMP default, online hill climbing, offline model, analytic
// runtime, mixture of experts) on the same dynamic scenarios, with the
// same external conditions replayed for each.
//
//	go run ./examples/dynamicsim
package main

import (
	"fmt"
	"log"

	"moe"
)

func main() {
	fmt.Println("training…")
	data, err := moe.Train(moe.TrainingConfig{Seed: 1, WorkloadsPerTarget: 3})
	if err != nil {
		log.Fatal(err)
	}
	experts4, err := moe.BuildExperts(data, 4)
	if err != nil {
		log.Fatal(err)
	}
	mono, err := moe.BuildExperts(data, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Policy constructors — fresh stateful instance per run.
	policies := []struct {
		name  string
		build func() (moe.Policy, error)
	}{
		{"online", func() (moe.Policy, error) { return moe.NewOnlinePolicy(), nil }},
		{"offline", func() (moe.Policy, error) { return moe.NewOfflinePolicy(mono) }},
		{"analytic", func() (moe.Policy, error) { return moe.NewAnalyticPolicy(9), nil }},
		{"mixture", func() (moe.Policy, error) { return moe.NewTrainedMixture(data, experts4) }},
	}

	scenarios := []struct {
		label    string
		workload []string
	}{
		{"small workload (is, cg)", []string{"is", "cg"}},
		{"large workload (bt, sp, equake, is, cg, art)", []string{"bt", "sp", "equake", "is", "cg", "art"}},
	}

	for _, target := range []string{"lu", "mg", "fmine"} {
		for _, sc := range scenarios {
			fmt.Printf("\n%s in %s:\n", target, sc.label)
			spec := moe.Simulation{
				Target:    target,
				Workload:  sc.workload,
				Frequency: moe.LowFrequency,
				Seed:      7,
			}
			spec.Policy = moe.NewDefaultPolicy()
			base, err := moe.Simulate(spec)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-9s %8.1f s\n", "default", base.ExecTime)
			for _, p := range policies {
				pol, err := p.build()
				if err != nil {
					log.Fatal(err)
				}
				spec.Policy = pol
				out, err := moe.Simulate(spec)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("  %-9s %8.1f s  (%.2fx)\n", p.name, out.ExecTime, base.ExecTime/out.ExecTime)
			}
		}
	}
}
