package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestHarmonicMean(t *testing.T) {
	got, err := HarmonicMean([]float64{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := 3 / (1.0 + 0.5 + 0.25)
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("HarmonicMean = %v, want %v", got, want)
	}
	if _, err := HarmonicMean(nil); err == nil {
		t.Error("HarmonicMean(nil) should error")
	}
	if _, err := HarmonicMean([]float64{1, 0}); err == nil {
		t.Error("HarmonicMean with zero should error")
	}
	if _, err := HarmonicMean([]float64{1, -2}); err == nil {
		t.Error("HarmonicMean with negative should error")
	}
}

func TestHarmonicMeanLeqArithmetic(t *testing.T) {
	// AM–HM inequality on positive inputs.
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			v := math.Abs(x)
			if v > 1e-6 && v < 1e6 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		h, err := HarmonicMean(xs)
		if err != nil {
			return false
		}
		return h <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeoMean(t *testing.T) {
	got, err := GeoMean([]float64{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 2, 1e-12) {
		t.Errorf("GeoMean(1,4) = %v, want 2", got)
	}
	if _, err := GeoMean([]float64{0}); err == nil {
		t.Error("GeoMean with zero should error")
	}
}

func TestMedian(t *testing.T) {
	got, err := Median([]float64{5, 1, 3})
	if err != nil || got != 3 {
		t.Errorf("Median odd = %v (%v), want 3", got, err)
	}
	got, err = Median([]float64{4, 1, 3, 2})
	if err != nil || got != 2.5 {
		t.Errorf("Median even = %v (%v), want 2.5", got, err)
	}
	// Median must not mutate the input.
	in := []float64{3, 1, 2}
	if _, err := Median(in); err != nil {
		t.Fatal(err)
	}
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Median mutated input: %v", in)
	}
	if _, err := Median(nil); err == nil {
		t.Error("Median(nil) should error")
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if Variance([]float64{1}) != 0 {
		t.Error("Variance of one sample should be 0")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi, err := MinMax([]float64{3, -1, 7, 2})
	if err != nil || lo != -1 || hi != 7 {
		t.Errorf("MinMax = (%v, %v, %v)", lo, hi, err)
	}
	if _, _, err := MinMax(nil); err == nil {
		t.Error("MinMax(nil) should error")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp misbehaves")
	}
	if ClampInt(5, 0, 3) != 3 || ClampInt(-1, 0, 3) != 0 || ClampInt(2, 0, 3) != 2 {
		t.Error("ClampInt misbehaves")
	}
}

func TestEMASeedsAndConverges(t *testing.T) {
	e := NewEMA(10)
	if got := e.Update(5, 1); got != 5 {
		t.Errorf("first update should seed: got %v", got)
	}
	// Constant input converges to the input.
	for i := 0; i < 1000; i++ {
		e.Update(3, 1)
	}
	if !almostEqual(e.Value(), 3, 1e-6) {
		t.Errorf("EMA did not converge: %v", e.Value())
	}
}

func TestEMATimeConstant(t *testing.T) {
	// After exactly one time constant, the EMA covers 1-1/e of a step.
	e := NewEMA(60)
	e.Update(0, 1)
	e.Update(1, 60)
	want := 1 - math.Exp(-1)
	if !almostEqual(e.Value(), want, 1e-9) {
		t.Errorf("EMA after one tc = %v, want %v", e.Value(), want)
	}
}

func TestEMAIgnoresNonPositiveDT(t *testing.T) {
	e := NewEMA(10)
	e.Update(5, 1)
	if got := e.Update(100, 0); got != 5 {
		t.Errorf("dt=0 should not move the EMA: %v", got)
	}
	e.Reset()
	if e.Value() != 0 {
		t.Error("Reset should zero the EMA")
	}
	if got := e.Update(7, 1); got != 7 {
		t.Errorf("after Reset the next update should seed: %v", got)
	}
}

func TestEMABounded(t *testing.T) {
	// The EMA stays within the range of its inputs.
	f := func(vals []float64, dts []float64) bool {
		e := NewEMA(5)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				continue
			}
			dt := 1.0
			if i < len(dts) {
				dt = math.Abs(dts[i])
				if math.IsNaN(dt) || math.IsInf(dt, 0) {
					dt = 1
				}
			}
			e.Update(v, dt)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if math.IsInf(lo, 1) {
			return true
		}
		return e.Value() >= lo-1e-9 && e.Value() <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	if _, ok := h.Mode(); ok {
		t.Error("empty histogram should have no mode")
	}
	h.Add(3)
	h.Add(3)
	h.Add(5)
	h.AddN(7, 0) // no-op
	h.AddN(7, -2)
	if h.Total() != 3 {
		t.Errorf("Total = %d, want 3", h.Total())
	}
	if h.Count(3) != 2 || h.Count(5) != 1 || h.Count(7) != 0 {
		t.Error("counts wrong")
	}
	if !almostEqual(h.Fraction(3), 2.0/3, 1e-12) {
		t.Errorf("Fraction(3) = %v", h.Fraction(3))
	}
	if mode, ok := h.Mode(); !ok || mode != 3 {
		t.Errorf("Mode = %d, %v", mode, ok)
	}
	bins := h.Bins()
	if len(bins) != 2 || bins[0] != 3 || bins[1] != 5 {
		t.Errorf("Bins = %v", bins)
	}
	norm := h.Normalized()
	sum := 0.0
	for _, f := range norm {
		sum += f
	}
	if !almostEqual(sum, 1, 1e-12) {
		t.Errorf("Normalized sums to %v", sum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Add(i)
	}
	q50, err := h.Quantile(0.5)
	if err != nil || q50 != 50 {
		t.Errorf("Quantile(0.5) = %d (%v), want 50", q50, err)
	}
	q0, _ := h.Quantile(0)
	if q0 != 1 {
		t.Errorf("Quantile(0) = %d, want 1", q0)
	}
	q1, _ := h.Quantile(1)
	if q1 != 100 {
		t.Errorf("Quantile(1) = %d, want 100", q1)
	}
	empty := NewHistogram()
	if _, err := empty.Quantile(0.5); err == nil {
		t.Error("Quantile on empty should error")
	}
}

func TestHistogramFractionsSumToOne(t *testing.T) {
	f := func(bins []uint8) bool {
		h := NewHistogram()
		for _, b := range bins {
			h.Add(int(b))
		}
		if h.Total() == 0 {
			return true
		}
		sum := 0.0
		for _, b := range h.Bins() {
			sum += h.Fraction(b)
		}
		return almostEqual(sum, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
