package experiments

import (
	"math"
	"testing"
)

// TestRestartStudyWarmRestoreIsExact is the study's acceptance property:
// recovery fidelity. A warm restore reproduces the crashed runtime's state
// bit-identically, so in a deterministic engine the warm-restore row must
// EQUAL the uninterrupted row for every policy — any daylight between them
// is a recovery bug, not noise. The stateless default must additionally be
// indifferent to even a cold restart.
func TestRestartStudyWarmRestoreIsExact(t *testing.T) {
	l := lab(t)
	sc := Scale{Targets: []string{"lu", "cg"}, Repeats: 1, Seed: 5}
	tab, err := l.restartStudy(sc, 800)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tab)
	for _, col := range tab.Columns {
		un := tab.MustGet("uninterrupted", col)
		warm := tab.MustGet("warm-restore", col)
		cold := tab.MustGet("cold-restart", col)
		for label, v := range map[string]float64{"uninterrupted": un, "warm-restore": warm, "cold-restart": cold} {
			if !(v > 0) || math.IsInf(v, 0) {
				t.Errorf("%s/%s: bad speedup %v", label, col, v)
			}
		}
		if math.Abs(warm-un) > 1e-9*math.Abs(un) {
			t.Errorf("%s: warm-restore %v != uninterrupted %v — recovery is not exact", col, warm, un)
		}
		if col == "default" && math.Abs(cold-un) > 1e-9*math.Abs(un) {
			t.Errorf("default: cold-restart %v != uninterrupted %v — stateless policy should not care", cold, un)
		}
	}
}
