package training

import (
	"fmt"
	"math"

	"moe/internal/core"
	"moe/internal/expert"
	"moe/internal/features"
)

// GatingPrior is the frozen result of offline gating training: the averaged
// perceptron hyperplanes plus the feature standardization used to fit them.
// It is immutable once fitted and therefore safe to share across goroutines
// and across policy instances — each call to NewSelector stamps the prior
// into a fresh, independently-adapting HyperplaneSelector. Fitting the
// prior is the expensive part of mixture construction (epochs × samples of
// perceptron passes), so Lab caches one per (target, pool size) instead of
// refitting for every scenario run.
type GatingPrior struct {
	// K is the expert-pool size the prior was trained for.
	K int
	// Theta holds K averaged hyperplanes of features.Dim+1 weights each;
	// nil when K == 1 (a single expert needs no routing).
	Theta [][]float64
	// Mean and Std standardize features before applying Theta.
	Mean, Std [features.Dim]float64
	// Weight is the confidence mass of the offline prior relative to
	// online updates (the training-sample count).
	Weight float64
}

// FitGatingPrior fits the offline prior for the expert selector: a
// multiclass perceptron over standardized features whose label for each
// training sample is the expert whose thread predictor would have served
// that state best. Selectors built from the prior start from this partition
// and keep adapting online from environment-prediction errors, realizing
// the paper's combination of offline prior models and online learning (§1).
//
// epochs ≤ 0 selects the default (8 passes).
func FitGatingPrior(ds *DataSet, set expert.Set, epochs int) (*GatingPrior, error) {
	if len(ds.Samples) == 0 {
		return nil, fmt.Errorf("training: gating needs training samples")
	}
	if err := set.Validate(); err != nil {
		return nil, err
	}
	if epochs <= 0 {
		epochs = 8
	}
	k := len(set)
	if k == 1 {
		return &GatingPrior{K: 1}, nil
	}

	// Standardization statistics over the training features.
	var mean, std [features.Dim]float64
	n := float64(len(ds.Samples))
	for _, s := range ds.Samples {
		for i := 0; i < features.Dim; i++ {
			mean[i] += s.Features[i]
		}
	}
	for i := range mean {
		mean[i] /= n
	}
	for _, s := range ds.Samples {
		for i := 0; i < features.Dim; i++ {
			d := s.Features[i] - mean[i]
			std[i] += d * d
		}
	}
	for i := range std {
		std[i] = math.Sqrt(std[i] / n)
		if std[i] < 1e-6 {
			std[i] = 1
		}
	}

	// For each sample, evaluate every expert's thread choice against the
	// sample's measured speedup curve. The best expert is the label; the
	// *regret* of picking another expert (relative speedup lost) weights
	// the perceptron updates, so routing mistakes that barely matter
	// teach gently while catastrophic ones teach hard.
	speedupAt := func(s LabeledSample, n int) float64 {
		if len(s.Speedups) == 0 {
			return 1
		}
		if n < 1 {
			n = 1
		}
		if n > len(s.Speedups) {
			n = len(s.Speedups)
		}
		return s.Speedups[n-1]
	}
	labels := make([]int, len(ds.Samples))
	gains := make([][]float64, len(ds.Samples)) // per-expert achieved speedup
	for si, s := range ds.Samples {
		gains[si] = make([]float64, k)
		best, bestV := 0, math.Inf(-1)
		for ki, e := range set {
			v := speedupAt(s, e.PredictThreads(s.Features, 0))
			gains[si][ki] = v
			if v > bestV {
				best, bestV = ki, v
			}
		}
		labels[si] = best
	}

	// Averaged cost-sensitive multiclass perceptron.
	theta := make([][]float64, k)
	sum := make([][]float64, k)
	for i := range theta {
		theta[i] = make([]float64, features.Dim+1)
		sum[i] = make([]float64, features.Dim+1)
	}
	x := make([]float64, features.Dim+1)
	updates := 0.0
	const rate = 0.1
	for ep := 0; ep < epochs; ep++ {
		for si, s := range ds.Samples {
			for i := 0; i < features.Dim; i++ {
				x[i] = (s.Features[i] - mean[i]) / std[i]
			}
			x[features.Dim] = 1
			pred, predV := 0, math.Inf(-1)
			for ki := range theta {
				v := 0.0
				for i := range x {
					v += theta[ki][i] * x[i]
				}
				if v > predV {
					pred, predV = ki, v
				}
			}
			if pred != labels[si] {
				label := labels[si]
				regret := 0.0
				if gains[si][label] > 0 {
					regret = (gains[si][label] - gains[si][pred]) / gains[si][label]
				}
				if regret > 0 {
					for i := range x {
						theta[label][i] += rate * regret * x[i]
						theta[pred][i] -= rate * regret * x[i]
					}
				}
			}
			for ki := range theta {
				for i := range x {
					sum[ki][i] += theta[ki][i]
				}
			}
			updates++
		}
	}
	for ki := range sum {
		for i := range sum[ki] {
			sum[ki][i] /= updates
		}
	}

	return &GatingPrior{K: k, Theta: sum, Mean: mean, Std: std, Weight: n}, nil
}

// NewSelector builds a fresh selector seeded from the prior. The selector
// owns all mutable adaptation state, so any number of concurrent policy
// instances may be stamped from one shared prior.
func (g *GatingPrior) NewSelector() (*core.HyperplaneSelector, error) {
	sel := core.NewHyperplaneSelector(g.K, 0)
	if g.K == 1 {
		return sel, nil
	}
	if err := sel.Pretrain(g.Theta, g.Mean, g.Std, g.Weight); err != nil {
		return nil, err
	}
	return sel, nil
}

// TrainGating fits a gating prior and returns a ready selector — the
// one-shot convenience path. Callers that build many policy instances over
// the same data should fit the prior once and call NewSelector per
// instance.
func TrainGating(ds *DataSet, set expert.Set, epochs int) (*core.HyperplaneSelector, error) {
	prior, err := FitGatingPrior(ds, set, epochs)
	if err != nil {
		return nil, err
	}
	return prior.NewSelector()
}

// NewMixturePolicy builds a ready-to-run mixture over the expert set with
// an offline-pretrained gating selector — the configuration the paper
// evaluates. Each call returns a fresh policy instance (mixtures are
// stateful and must not be shared between runs).
func NewMixturePolicy(ds *DataSet, set expert.Set) (*core.Mixture, error) {
	prior, err := FitGatingPrior(ds, set, 0)
	if err != nil {
		return nil, err
	}
	return NewMixtureFromPrior(prior, set)
}

// NewMixtureFromPrior builds a fresh mixture policy instance from an
// already-fitted gating prior, skipping the perceptron refit. This is what
// makes per-run policy construction cheap enough to do inside parallel
// scenario fan-outs.
func NewMixtureFromPrior(prior *GatingPrior, set expert.Set) (*core.Mixture, error) {
	return NewMixtureFromPriorOpts(prior, set, core.Options{})
}

// NewMixtureFromPriorOpts is NewMixtureFromPrior with extra mixture
// options (the Selector field is overwritten by the prior's selector).
func NewMixtureFromPriorOpts(prior *GatingPrior, set expert.Set, opts core.Options) (*core.Mixture, error) {
	sel, err := prior.NewSelector()
	if err != nil {
		return nil, err
	}
	opts.Selector = sel
	return core.NewMixture(set, opts)
}
