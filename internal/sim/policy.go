package sim

import "moe/internal/features"

// Decision is the information a thread-selection policy sees at each control
// point. Control points occur at every parallel-region start and every
// control interval within a region — matching a runtime that can only change
// thread counts at loop boundaries but encounters loops frequently.
type Decision struct {
	// Time is the virtual time in seconds.
	Time float64
	// Features is the full 10-feature state f = c ‖ e (Table 1): the
	// current region's code features plus the sampled environment.
	Features features.Vector
	// Rate is the controlled program's instantaneous progress rate (work
	// units per second) over the last control interval; 0 at the first
	// decision.
	Rate float64
	// CurrentThreads is the thread count currently in force.
	CurrentThreads int
	// MaxThreads is the hard cap (machine core count).
	MaxThreads int
	// AvailableProcs is the number of processors currently online (f5,
	// duplicated from Features for convenience).
	AvailableProcs int
	// RegionStart is true when a new parallel region is beginning.
	RegionStart bool
	// RegionIndex is the flat index of the current region execution.
	RegionIndex int
}

// Policy selects the number of threads for one program. Implementations
// must be deterministic given their construction inputs; any randomness must
// come from an injected seed so experiment replays are exact (§6.4).
type Policy interface {
	// Name identifies the policy in reports ("default", "mixture", …).
	Name() string
	// Decide returns the thread count to use from this control point on.
	// Returns are clamped by the engine to [1, MaxThreads].
	Decide(d Decision) int
}

// BatchPolicy is implemented by policies that can decide a whole slice of
// control points in one call (the runtime adapter, which amortizes its lock
// and bookkeeping across the batch). DecideBatch must be semantically
// identical to calling Decide per element in order — same decisions, same
// resulting policy state — differing only in cost; the exec layer falls back
// to that loop when a policy does not implement it.
type BatchPolicy interface {
	Policy
	// DecideBatch returns one thread count per decision, in order.
	DecideBatch(ds []Decision) []int
}

// PolicyFactory builds a fresh policy instance for one program run. Stateful
// policies (online, analytic, mixture) must not be shared across programs or
// repeated runs, so scenarios take factories rather than instances.
type PolicyFactory func() Policy

// Func adapts a function to the Policy interface for tests and simple
// built-ins.
type Func struct {
	PolicyName string
	DecideFn   func(d Decision) int
}

// Name implements Policy.
func (f Func) Name() string { return f.PolicyName }

// Decide implements Policy.
func (f Func) Decide(d Decision) int { return f.DecideFn(d) }

// FixedThreads returns a policy that always chooses n threads.
func FixedThreads(n int) Policy {
	return Func{PolicyName: "fixed", DecideFn: func(Decision) int { return n }}
}

// OracleAware policies receive, in addition to the ordinary decision
// context, the ground-truth best thread count computed from the simulator's
// rate model — the analog of exhaustively timing every thread count at this
// instant. Only the engine can provide it; such policies are for
// training-data generation and headroom ablations, not realizable runtimes.
type OracleAware interface {
	Policy
	// DecideWithOracle is called by the engine instead of Decide.
	DecideWithOracle(d Decision, oracleN int) int
}

// OraclePolicy always uses the ground-truth best thread count. It bounds
// how much headroom the learned policies leave on the table.
type OraclePolicy struct{}

// Name implements Policy.
func (OraclePolicy) Name() string { return "oracle" }

// Decide implements Policy; outside an engine (no oracle available) it
// falls back to the default policy's choice.
func (OraclePolicy) Decide(d Decision) int { return d.AvailableProcs }

// DecideWithOracle implements OracleAware.
func (OraclePolicy) DecideWithOracle(_ Decision, oracleN int) int { return oracleN }
