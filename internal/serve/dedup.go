package serve

import (
	"sync"
	"time"

	"moe/internal/checkpoint"
)

// Request deduplication. A client that retries a decide request across a
// failure — a dropped response, a primary death mid-ack — must get the
// original decisions back instead of advancing the runtime a second time.
// Each tenant keeps a bounded FIFO window of identified requests
// (X-Request-Id / request_id); hits answer from the window without touching
// the runtime. The window is journaled with the batches (dedup markers per
// batch, the full window at each rotation), so a restart or a promoted
// standby reconstructs exactly the window that was acked.

// dedupWindow is a bounded insertion-ordered map of request ID → the acked
// result. Not self-locking: the owning tenant's mutex guards it.
type dedupWindow struct {
	cap   int
	m     map[string]checkpoint.DedupEntry
	order []string // insertion order, oldest first
}

func newDedupWindow(capacity int) *dedupWindow {
	return &dedupWindow{cap: capacity, m: make(map[string]checkpoint.DedupEntry)}
}

// add remembers one acked request, evicting the oldest past capacity.
// Re-adding an existing ID refreshes its value without growing the window.
func (w *dedupWindow) add(e checkpoint.DedupEntry) {
	if w.cap <= 0 || e.ID == "" {
		return
	}
	e.Threads = append([]int(nil), e.Threads...)
	if _, ok := w.m[e.ID]; !ok {
		w.order = append(w.order, e.ID)
	}
	w.m[e.ID] = e
	for len(w.order) > w.cap {
		delete(w.m, w.order[0])
		w.order = w.order[1:]
	}
}

// lookup returns the remembered result for id, if any. The Threads slice
// is a copy: hits escape to response writers after the tenant lock drops.
func (w *dedupWindow) lookup(id string) (checkpoint.DedupEntry, bool) {
	if id == "" || w.cap <= 0 {
		return checkpoint.DedupEntry{}, false
	}
	e, ok := w.m[id]
	if ok {
		e.Threads = append([]int(nil), e.Threads...)
	}
	return e, ok
}

// entries returns the window oldest-first (copies: safe to journal or ship
// after the tenant lock is released).
func (w *dedupWindow) entries() []checkpoint.DedupEntry {
	out := make([]checkpoint.DedupEntry, 0, len(w.order))
	for _, id := range w.order {
		e := w.m[id]
		e.Threads = append([]int(nil), e.Threads...)
		out = append(out, e)
	}
	return out
}

// load replaces the window with recovered entries (oldest first), keeping
// the newest cap of them.
func (w *dedupWindow) load(entries []checkpoint.DedupEntry) {
	w.m = make(map[string]checkpoint.DedupEntry, len(entries))
	w.order = w.order[:0]
	if w.cap > 0 && len(entries) > w.cap {
		entries = entries[len(entries)-w.cap:]
	}
	for _, e := range entries {
		w.add(e)
	}
}

func (w *dedupWindow) len() int { return len(w.order) }

// jitter is a seeded splitmix64 stream that spreads Retry-After hints:
// spread(d) = d + U[0, d/2). Deterministic per seed, so tests reproduce;
// distinct per draw, so shed clients do not synchronize into retry storms.
// The hint stays an upper-bound-style promise — it only ever grows.
type jitter struct {
	mu    sync.Mutex
	state uint64
}

func newJitter(seed uint64) *jitter { return &jitter{state: seed} }

func (j *jitter) next() uint64 {
	j.mu.Lock()
	j.state += 0x9e3779b97f4a7c15
	z := j.state
	j.mu.Unlock()
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// spread widens a Retry-After hint by a uniform fraction of itself.
func (j *jitter) spread(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	u := float64(j.next()>>11) / float64(uint64(1)<<53) // [0, 1)
	return d + time.Duration(u*float64(d)/2)
}
