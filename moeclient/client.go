// Package moeclient is the wire-protocol client for the moed streaming
// transport (DESIGN.md §16): one TCP or upgraded-HTTP connection carrying
// length-prefixed, CRC-framed decide requests and responses, pipelined —
// many requests may be in flight before the first response arrives, which
// is what lets the server's per-tenant coalescer merge them into shared
// DecideBatch commits.
//
// The client is deliberately small: Send queues a frame, Flush pushes the
// buffer, Recv blocks for the next response (responses come back in frame
// arrival order), and Do is the synchronous convenience wrapper. A Client
// is safe for one writer goroutine plus one reader goroutine (the usual
// pipelining split); it is not a connection pool.
package moeclient

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"net/url"
	"strings"
	"time"

	"moe"
	"moe/internal/wire"
)

// Response is one decide outcome, either a result or a typed refusal.
type Response struct {
	Seq       uint64
	Decisions int64
	Threads   []int
	Deduped   bool
	// Err is non-nil for an error frame; it is a *ServerError carrying the
	// typed code (rate, capacity, deadline-exceeded, quarantined, ...).
	Err error
}

// ServerError is a typed refusal from the server.
type ServerError struct {
	Code       string
	Msg        string
	RetryAfter time.Duration
	Seq        uint64
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("moed: %s: %s", e.Code, e.Msg)
}

// Client is one streaming session.
type Client struct {
	conn net.Conn
	bw   *bufio.Writer
	rd   *wire.Reader
	wbuf []byte
	res  wire.Result
	werr error
}

// Dial opens a wire session against a raw TCP stream listener
// (moed -stream-addr).
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return handshake(conn)
}

// DialHTTP opens a wire session by upgrading POST /v1/stream on an HTTP
// base URL (http://host:port). The upgrade is a raw 101 exchange on a
// plain TCP connection; the session then speaks frames both ways.
func DialHTTP(baseURL string, timeout time.Duration) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, err
	}
	if u.Scheme != "http" {
		return nil, fmt.Errorf("moeclient: unsupported scheme %q (http only)", u.Scheme)
	}
	host := u.Host
	if u.Port() == "" {
		host = net.JoinHostPort(u.Host, "80")
	}
	conn, err := net.DialTimeout("tcp", host, timeout)
	if err != nil {
		return nil, err
	}
	req := "POST /v1/stream HTTP/1.1\r\nHost: " + u.Host +
		"\r\nConnection: Upgrade\r\nUpgrade: moe-wire/1\r\nContent-Length: 0\r\n\r\n"
	if _, err := conn.Write([]byte(req)); err != nil {
		conn.Close()
		return nil, err
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	status, err := br.ReadString('\n')
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("moeclient: reading upgrade status: %w", err)
	}
	if !strings.Contains(status, " 101 ") {
		conn.Close()
		return nil, fmt.Errorf("moeclient: upgrade refused: %s", strings.TrimSpace(status))
	}
	for { // drain response headers to the blank line; frames follow
		line, err := br.ReadString('\n')
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("moeclient: reading upgrade headers: %w", err)
		}
		if line == "\r\n" || line == "\n" {
			break
		}
	}
	return handshakeBuffered(conn, br)
}

// FromConn wraps an already-connected stream without performing the
// handshake — for harnesses that speak their own (possibly hostile) hello.
func FromConn(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		bw:   bufio.NewWriterSize(conn, 64<<10),
		rd:   wire.NewReader(bufio.NewReaderSize(conn, 64<<10)),
	}
}

// SendRaw queues raw bytes on the session and flushes them — hostile-frame
// test harnesses only; a misframed write desyncs the session by design.
func (c *Client) SendRaw(b []byte) error {
	if c.werr != nil {
		return c.werr
	}
	if _, err := c.bw.Write(b); err != nil {
		c.werr = err
		return err
	}
	return c.Flush()
}

func handshake(conn net.Conn) (*Client, error) {
	return handshakeBuffered(conn, bufio.NewReaderSize(conn, 64<<10))
}

func handshakeBuffered(conn net.Conn, br *bufio.Reader) (*Client, error) {
	c := &Client{conn: conn, bw: bufio.NewWriterSize(conn, 64<<10), rd: wire.NewReader(br)}
	c.wbuf = wire.AppendHello(c.wbuf[:0])
	if _, err := c.bw.Write(c.wbuf); err != nil {
		conn.Close()
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	kind, payload, _, err := c.rd.Next()
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("moeclient: reading server hello: %w", err)
	}
	switch kind {
	case wire.FrameHello:
		if _, err := wire.ParseHello(payload); err != nil {
			conn.Close()
			return nil, fmt.Errorf("moeclient: server hello: %w", err)
		}
	case wire.FrameError:
		var e wire.Error
		if perr := wire.ParseError(payload, &e); perr == nil {
			conn.Close()
			return nil, &ServerError{Code: string(e.Code), Msg: string(e.Msg), Seq: e.Seq}
		}
		fallthrough
	default:
		conn.Close()
		return nil, fmt.Errorf("moeclient: unexpected handshake frame kind %#x", kind)
	}
	return c, nil
}

// Send queues one decide frame without flushing; pair with Flush (or rely
// on a following Do). seq is echoed back in the matching response; with
// pipelining, responses arrive in Send order. deadlineMs of 0 takes the
// server default.
func (c *Client) Send(seq, deadlineMs uint64, tenant, requestID string, obs []moe.Observation) error {
	if c.werr != nil {
		return c.werr
	}
	c.wbuf = wire.AppendDecide(c.wbuf[:0], seq, deadlineMs, tenant, requestID, obs)
	if _, err := c.bw.Write(c.wbuf); err != nil {
		c.werr = err
		return err
	}
	return nil
}

// Flush pushes every queued frame to the connection.
func (c *Client) Flush() error {
	if c.werr != nil {
		return c.werr
	}
	if err := c.bw.Flush(); err != nil {
		c.werr = err
		return err
	}
	return nil
}

// Recv blocks for the next response frame. The returned Response's Threads
// slice is owned by the caller; a *ServerError in Err is a per-request
// refusal, not a session failure (the session stays usable). A transport
// or framing error is returned as the function error and ends the session.
func (c *Client) Recv() (*Response, error) {
	for {
		kind, payload, _, err := c.rd.Next()
		if err != nil {
			return nil, err
		}
		switch kind {
		case wire.FrameResult:
			if err := wire.ParseResult(payload, &c.res); err != nil {
				return nil, err
			}
			out := &Response{
				Seq:       c.res.Seq,
				Decisions: c.res.Decisions,
				Deduped:   c.res.Deduped,
				Threads:   append([]int(nil), c.res.Threads...),
			}
			return out, nil
		case wire.FrameError:
			var e wire.Error
			if err := wire.ParseError(payload, &e); err != nil {
				return nil, err
			}
			return &Response{Seq: e.Seq, Err: &ServerError{
				Code:       string(e.Code),
				Msg:        string(e.Msg),
				RetryAfter: time.Duration(e.RetryAfterMs) * time.Millisecond,
				Seq:        e.Seq,
			}}, nil
		case wire.FrameHello:
			// Tolerated mid-stream; keep reading.
		default:
			return nil, fmt.Errorf("moeclient: unexpected frame kind %#x", kind)
		}
	}
}

// Do is the synchronous round trip: Send + Flush + Recv. Do not mix with
// in-flight pipelined requests on other goroutines.
func (c *Client) Do(seq, deadlineMs uint64, tenant, requestID string, obs []moe.Observation) (*Response, error) {
	if err := c.Send(seq, deadlineMs, tenant, requestID, obs); err != nil {
		return nil, err
	}
	if err := c.Flush(); err != nil {
		return nil, err
	}
	return c.Recv()
}

// Close flushes and closes the session. The server drains any responses
// still owed to earlier frames into the closed connection harmlessly.
func (c *Client) Close() error {
	ferr := c.bw.Flush()
	cerr := c.conn.Close()
	if ferr != nil && !errors.Is(ferr, net.ErrClosed) {
		return ferr
	}
	return cerr
}
