package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestProgramSharesBasic(t *testing.T) {
	// Two saturated programs split evenly.
	shares := ProgramShares([]int{32, 32}, 32)
	if !close(shares[0], 16) || !close(shares[1], 16) {
		t.Errorf("even split: %v", shares)
	}
	// A small demand cedes its surplus.
	shares = ProgramShares([]int{2, 32}, 32)
	if !close(shares[0], 2) || !close(shares[1], 30) {
		t.Errorf("water-fill: %v", shares)
	}
	// Undersubscribed machine: everyone gets their demand.
	shares = ProgramShares([]int{4, 4}, 32)
	if !close(shares[0], 4) || !close(shares[1], 4) {
		t.Errorf("undersubscribed: %v", shares)
	}
	// Zero demand gets nothing.
	shares = ProgramShares([]int{0, 16}, 8)
	if shares[0] != 0 || !close(shares[1], 8) {
		t.Errorf("zero demand: %v", shares)
	}
}

func TestProgramSharesCascade(t *testing.T) {
	// 3 programs on 12 cores: slot 4; the demand-2 program frees 2 cores
	// split between the other two.
	shares := ProgramShares([]int{2, 20, 20}, 12)
	if !close(shares[0], 2) || !close(shares[1], 5) || !close(shares[2], 5) {
		t.Errorf("cascade: %v", shares)
	}
}

func TestProgramSharesProperties(t *testing.T) {
	f := func(rawDemands []uint8, rawAvail uint8) bool {
		avail := int(rawAvail%64) + 1
		demands := make([]int, len(rawDemands))
		total := 0
		for i, d := range rawDemands {
			demands[i] = int(d % 100)
			total += demands[i]
		}
		shares := ProgramShares(demands, avail)
		sum := 0.0
		for i, s := range shares {
			if s < -1e-9 || s > float64(demands[i])+1e-9 {
				return false // allocation within [0, demand]
			}
			sum += s
		}
		if sum > float64(avail)+1e-6 {
			return false // never over-allocate
		}
		// Work-conserving: if total demand ≥ avail, all cores are used.
		if total >= avail && sum < float64(avail)-1e-6 {
			return false
		}
		// If total demand < avail, everyone is satisfied.
		if total < avail {
			for i, s := range shares {
				if !close(s, float64(demands[i])) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestProgramSharesFairness(t *testing.T) {
	// Equal demands get equal shares.
	f := func(rawN, rawAvail uint8) bool {
		n := int(rawN%6) + 2
		avail := int(rawAvail%32) + 1
		demands := make([]int, n)
		for i := range demands {
			demands[i] = 64
		}
		shares := ProgramShares(demands, avail)
		for _, s := range shares[1:] {
			if !close(s, shares[0]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func close(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}
