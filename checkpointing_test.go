package moe_test

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"moe"
)

const ckptMaxThreads = 8

// ckptObservation builds the i-th observation of a deterministic synthetic
// stream with drifting features, periodic availability dips, and a wobbling
// rate — enough signal that every stateful policy keeps learning.
func ckptObservation(i int) moe.Observation {
	var f moe.Features
	for j := range f {
		f[j] = 0.15*float64(j+1) + 0.02*float64((i*7+j*3)%11)
	}
	avail := ckptMaxThreads
	if i%9 >= 6 {
		avail = ckptMaxThreads / 2
	}
	f[4] = float64(avail) // f5: processors
	return moe.Observation{
		Time:           0.25 * float64(i),
		Features:       f,
		Rate:           100 + 8*math.Sin(float64(i)/3),
		RegionStart:    i%4 == 0,
		AvailableProcs: avail,
	}
}

// ckptPolicies enumerates every checkpointable built-in policy kind.
func ckptPolicies(t *testing.T) map[string]func() moe.Policy {
	t.Helper()
	return map[string]func() moe.Policy{
		"mixture": func() moe.Policy {
			m, err := moe.NewMixture(moe.CanonicalExperts())
			if err != nil {
				t.Fatalf("NewMixture: %v", err)
			}
			return m
		},
		"online":   moe.NewOnlinePolicy,
		"analytic": func() moe.Policy { return moe.NewAnalyticPolicy(7) },
		"default":  moe.NewDefaultPolicy,
	}
}

func newCkptRuntime(t *testing.T, build func() moe.Policy) *moe.Runtime {
	t.Helper()
	rt, err := moe.NewRuntime(build(), ckptMaxThreads)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	return rt
}

// TestRuntimeRestartGolden is the golden restart test: a run that crashes
// at an arbitrary point and resumes from its checkpoint directory must
// produce exactly the decision trace of a run that never crashed — for
// every checkpointable policy, with periodic snapshots and journal
// rotation in play.
func TestRuntimeRestartGolden(t *testing.T) {
	const total, crashAt = 60, 37
	for name, build := range ckptPolicies(t) {
		t.Run(name, func(t *testing.T) {
			// The uninterrupted reference run.
			ref := newCkptRuntime(t, build)
			want := make([]int, total)
			for i := 0; i < total; i++ {
				want[i] = ref.Decide(ckptObservation(i))
			}
			refState, err := ref.Snapshot()
			if err != nil {
				t.Fatalf("reference snapshot: %v", err)
			}

			// The crashing run: checkpoint every 10 decisions, die at 37.
			dir := t.TempDir()
			store, err := moe.OpenCheckpoint(dir)
			if err != nil {
				t.Fatalf("OpenCheckpoint: %v", err)
			}
			crashed := newCkptRuntime(t, build)
			if err := crashed.AttachStore(store, 10); err != nil {
				t.Fatalf("AttachStore: %v", err)
			}
			got := make([]int, 0, total)
			for i := 0; i < crashAt; i++ {
				got = append(got, crashed.Decide(ckptObservation(i)))
			}
			if err := crashed.CheckpointErr(); err != nil {
				t.Fatalf("checkpointing failed mid-run: %v", err)
			}
			// Crash: the process is gone; nobody calls Close.

			// The resumed run.
			store2, err := moe.OpenCheckpoint(dir)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			resumed := newCkptRuntime(t, build)
			rec, err := resumed.Resume(store2)
			if err != nil {
				t.Fatalf("Resume: %v", err)
			}
			if resumed.Decisions() != crashAt {
				t.Fatalf("resumed to %d decisions, want %d\nreport: %v", resumed.Decisions(), crashAt, rec.Report)
			}
			if err := resumed.AttachStore(store2, 10); err != nil {
				t.Fatalf("re-AttachStore: %v", err)
			}
			for i := crashAt; i < total; i++ {
				got = append(got, resumed.Decide(ckptObservation(i)))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("decision %d diverged: crashed+resumed chose %d, uninterrupted chose %d", i, got[i], want[i])
				}
			}

			// Bit-identical internal state, not just identical outputs: the
			// resumed runtime's snapshot must encode to exactly the bytes of
			// the uninterrupted run's snapshot.
			resState, err := resumed.Snapshot()
			if err != nil {
				t.Fatalf("resumed snapshot: %v", err)
			}
			refBytes := encodeStateForTest(t, refState)
			resBytes := encodeStateForTest(t, resState)
			if string(refBytes) != string(resBytes) {
				t.Fatal("resumed state is not bit-identical to the uninterrupted state")
			}
		})
	}
}

// TestRuntimeRestartEvolvingPool is the restart golden test for a LIVING
// pool: the crash window straddles lifecycle steps, so resume must rebuild
// evolved pool members from the snapshot's serialized genomes and then
// replay journal observations THROUGH further births — pool changes and
// all — to land bit-identical to the uninterrupted run.
func TestRuntimeRestartEvolvingPool(t *testing.T) {
	const total, crashAt = 60, 37
	cfg := moe.EvolutionConfig{Period: 7, Seed: 5, MinAge: 14, MinPool: 2}
	build := func() moe.Policy {
		m, err := moe.NewEvolvingMixture(moe.CanonicalExperts(), cfg)
		if err != nil {
			t.Fatalf("NewEvolvingMixture: %v", err)
		}
		return m
	}

	refMix := build().(*moe.Mixture)
	ref, err := moe.NewRuntime(refMix, ckptMaxThreads)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int, total)
	for i := 0; i < total; i++ {
		want[i] = ref.Decide(ckptObservation(i))
	}
	if refMix.Snapshot().PoolEpoch == 0 {
		t.Fatal("no pool changes in the reference run; the restart test is vacuous")
	}
	refState, err := ref.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Crash at 37 with snapshots every 10: the last snapshot (30) already
	// holds evolved members, and the journal tail (31..37) crosses the
	// lifecycle step at 35.
	dir := t.TempDir()
	store, err := moe.OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	crashed := newCkptRuntime(t, build)
	if err := crashed.AttachStore(store, 10); err != nil {
		t.Fatal(err)
	}
	got := make([]int, 0, total)
	for i := 0; i < crashAt; i++ {
		got = append(got, crashed.Decide(ckptObservation(i)))
	}
	if err := crashed.CheckpointErr(); err != nil {
		t.Fatalf("checkpointing failed mid-run: %v", err)
	}

	store2, err := moe.OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	resumed := newCkptRuntime(t, build)
	if _, err := resumed.Resume(store2); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if resumed.Decisions() != crashAt {
		t.Fatalf("resumed to %d decisions, want %d", resumed.Decisions(), crashAt)
	}
	for i := crashAt; i < total; i++ {
		got = append(got, resumed.Decide(ckptObservation(i)))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("decision %d diverged: crashed+resumed chose %d, uninterrupted chose %d", i, got[i], want[i])
		}
	}
	resState, err := resumed.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if string(encodeStateForTest(t, refState)) != string(encodeStateForTest(t, resState)) {
		t.Fatal("resumed evolving state is not bit-identical to the uninterrupted state")
	}
}

// TestRuntimeResumePoolMismatchTyped: resuming an evolving run into a
// runtime whose mixture was built with evolution disabled fails with the
// typed pool-mismatch error instead of silently mis-sizing the pool.
func TestRuntimeResumePoolMismatchTyped(t *testing.T) {
	dir := t.TempDir()
	store, err := moe.OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	mix, err := moe.NewEvolvingMixture(moe.CanonicalExperts(), moe.EvolutionConfig{Period: 5, MinAge: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := moe.NewRuntime(mix, ckptMaxThreads)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.AttachStore(store, 5); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		rt.Decide(ckptObservation(i))
	}
	if err := rt.CheckpointErr(); err != nil {
		t.Fatal(err)
	}
	if mix.Snapshot().PoolEpoch == 0 {
		t.Fatal("no pool changes; mismatch test is vacuous")
	}

	store2, err := moe.OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	frozen, err := moe.NewMixture(moe.CanonicalExperts())
	if err != nil {
		t.Fatal(err)
	}
	rt2, err := moe.NewRuntime(frozen, ckptMaxThreads)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt2.Resume(store2); err == nil {
		t.Fatal("frozen runtime resumed an evolving checkpoint")
	} else if !errors.Is(err, moe.ErrPoolMismatch) {
		t.Fatalf("err = %v, want ErrPoolMismatch", err)
	}
}

// encodeStateForTest round-trips a state through a store to obtain its
// canonical snapshot bytes (the public API deliberately hides the codec).
func encodeStateForTest(t *testing.T, st *moe.RuntimeState) []byte {
	t.Helper()
	dir := t.TempDir()
	s, err := moe.OpenCheckpoint(dir)
	if err != nil {
		t.Fatalf("OpenCheckpoint: %v", err)
	}
	if err := s.WriteSnapshot(st); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".ckpt") {
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			return data
		}
	}
	t.Fatal("no snapshot file written")
	return nil
}

// TestRuntimeRestartTruncatedJournal truncates the journal at every byte
// offset before resuming; whatever decision count survives, feeding the
// remaining observations must reproduce the uninterrupted run exactly.
func TestRuntimeRestartTruncatedJournal(t *testing.T) {
	const total, crashAt = 40, 25
	m, err := moe.NewMixture(moe.CanonicalExperts())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := moe.NewRuntime(m, ckptMaxThreads)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int, total)
	for i := 0; i < total; i++ {
		want[i] = ref.Decide(ckptObservation(i))
	}

	// One journal holds the whole run: no periodic snapshots.
	masterDir := t.TempDir()
	store, err := moe.OpenCheckpoint(masterDir)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := moe.NewMixture(moe.CanonicalExperts())
	if err != nil {
		t.Fatal(err)
	}
	crashed, err := moe.NewRuntime(m2, ckptMaxThreads)
	if err != nil {
		t.Fatal(err)
	}
	if err := crashed.AttachStore(store, 0); err != nil {
		t.Fatalf("AttachStore: %v", err)
	}
	for i := 0; i < crashAt; i++ {
		crashed.Decide(ckptObservation(i))
	}
	if err := crashed.CheckpointErr(); err != nil {
		t.Fatalf("checkpointing failed: %v", err)
	}

	entries, err := os.ReadDir(masterDir)
	if err != nil {
		t.Fatal(err)
	}
	var journalName string
	var master [][2]string // name, contents of every checkpoint file
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(masterDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		master = append(master, [2]string{e.Name(), string(data)})
		if strings.HasSuffix(e.Name(), ".wal") {
			journalName = e.Name()
		}
	}
	if journalName == "" {
		t.Fatal("no journal file found")
	}

	journal := ""
	for _, f := range master {
		if f[0] == journalName {
			journal = f[1]
		}
	}
	for cut := 0; cut <= len(journal); cut += 1 {
		dir := t.TempDir()
		for _, f := range master {
			contents := f[1]
			if f[0] == journalName {
				contents = journal[:cut]
			}
			if err := os.WriteFile(filepath.Join(dir, f[0]), []byte(contents), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		s, err := moe.OpenCheckpoint(dir)
		if err != nil {
			t.Fatalf("cut %d: OpenCheckpoint: %v", cut, err)
		}
		m3, err := moe.NewMixture(moe.CanonicalExperts())
		if err != nil {
			t.Fatal(err)
		}
		resumed, err := moe.NewRuntime(m3, ckptMaxThreads)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := resumed.Resume(s); err != nil {
			t.Fatalf("cut %d: Resume: %v", cut, err)
		}
		d := resumed.Decisions()
		if d > crashAt {
			t.Fatalf("cut %d: recovered %d decisions from a %d-decision run", cut, d, crashAt)
		}
		for i := d; i < total; i++ {
			if got := resumed.Decide(ckptObservation(i)); got != want[i] {
				t.Fatalf("cut %d: decision %d diverged after recovery at %d", cut, i, d)
			}
		}
	}
}

func TestRuntimeResumeMismatchedPolicy(t *testing.T) {
	dir := t.TempDir()
	store, err := moe.OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	rt := newCkptRuntime(t, moe.NewOnlinePolicy)
	if err := rt.AttachStore(store, 5); err != nil {
		t.Fatalf("AttachStore: %v", err)
	}
	for i := 0; i < 12; i++ {
		rt.Decide(ckptObservation(i))
	}

	store2, err := moe.OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	other := newCkptRuntime(t, moe.NewDefaultPolicy)
	if _, err := other.Resume(store2); err == nil {
		t.Fatal("online checkpoint resumed into a default-policy runtime")
	}
}

func TestRuntimeResumeRequiresFreshRuntime(t *testing.T) {
	dir := t.TempDir()
	store, err := moe.OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	rt := newCkptRuntime(t, moe.NewOnlinePolicy)
	rt.Decide(ckptObservation(0))
	if _, err := rt.Resume(store); err == nil {
		t.Fatal("Resume accepted a runtime that had already decided")
	}
}

// TestRuntimeCheckpointErrDoesNotBlockDecisions: when the checkpoint
// directory disappears mid-run, the error is latched and decisions keep
// flowing from memory.
func TestRuntimeCheckpointErrDoesNotBlockDecisions(t *testing.T) {
	dir := t.TempDir()
	store, err := moe.OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	rt := newCkptRuntime(t, moe.NewOnlinePolicy)
	if err := rt.AttachStore(store, 1); err != nil { // snapshot every decision
		t.Fatalf("AttachStore: %v", err)
	}
	rt.Decide(ckptObservation(0))
	if err := rt.CheckpointErr(); err != nil {
		t.Fatalf("healthy store errored: %v", err)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	// The snapshot write must fail now; the decision must not.
	for i := 1; i < 4; i++ {
		if n := rt.Decide(ckptObservation(i)); n < 1 || n > ckptMaxThreads {
			t.Fatalf("decision %d out of range after store loss", n)
		}
	}
	if rt.CheckpointErr() == nil {
		t.Fatal("store loss was never reported")
	}
	if rt.Decisions() != 4 {
		t.Fatalf("decisions = %d, want 4", rt.Decisions())
	}
}

func TestRuntimeAttachStoreTwice(t *testing.T) {
	rt := newCkptRuntime(t, moe.NewOnlinePolicy)
	s1, err := moe.OpenCheckpoint(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.AttachStore(s1, 5); err != nil {
		t.Fatal(err)
	}
	s2, err := moe.OpenCheckpoint(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.AttachStore(s2, 5); err == nil {
		t.Fatal("second AttachStore accepted")
	}
}

func TestRuntimeRestoreRejectsMismatchedCap(t *testing.T) {
	rt := newCkptRuntime(t, moe.NewOnlinePolicy)
	for i := 0; i < 5; i++ {
		rt.Decide(ckptObservation(i))
	}
	st, err := rt.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	other, err := moe.NewRuntime(moe.NewOnlinePolicy(), ckptMaxThreads*2)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Restore(st); err == nil {
		t.Fatal("state restored onto a machine with a different thread cap")
	}
}

// TestRuntimeFreshAttachOverOldHistory: attaching a fresh runtime (no
// Resume) to a directory holding an abandoned run's longer history starts a
// new timeline. A crash before the first periodic snapshot must resume to
// the new timeline's decisions — not silently resurrect the old run's
// state and journal.
func TestRuntimeFreshAttachOverOldHistory(t *testing.T) {
	dir := t.TempDir()

	// Abandoned run: 30 decisions with periodic snapshots, then a crash.
	store, err := moe.OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	old := newCkptRuntime(t, moe.NewOnlinePolicy)
	if err := old.AttachStore(store, 10); err != nil {
		t.Fatalf("AttachStore: %v", err)
	}
	for i := 0; i < 30; i++ {
		old.Decide(ckptObservation(i))
	}
	if err := old.CheckpointErr(); err != nil {
		t.Fatalf("checkpointing failed: %v", err)
	}

	// New run: deliberately fresh (no Resume), one decision, crash.
	store2, err := moe.OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	fresh := newCkptRuntime(t, moe.NewOnlinePolicy)
	if err := fresh.AttachStore(store2, 10); err != nil {
		t.Fatalf("fresh AttachStore: %v", err)
	}
	fresh.Decide(ckptObservation(0))
	if err := fresh.CheckpointErr(); err != nil {
		t.Fatalf("checkpointing failed: %v", err)
	}

	// Resume must land on the new timeline.
	store3, err := moe.OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	resumed := newCkptRuntime(t, moe.NewOnlinePolicy)
	rec, err := resumed.Resume(store3)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if resumed.Decisions() != 1 {
		t.Fatalf("resumed to %d decisions, want the new run's 1\nreport: %v", resumed.Decisions(), rec.Report)
	}

	// And its state must be bit-identical to a 1-decision uninterrupted run.
	ref := newCkptRuntime(t, moe.NewOnlinePolicy)
	ref.Decide(ckptObservation(0))
	refState, err := ref.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	resState, err := resumed.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if string(encodeStateForTest(t, refState)) != string(encodeStateForTest(t, resState)) {
		t.Fatal("resumed state is not bit-identical to a fresh 1-decision run")
	}
}
