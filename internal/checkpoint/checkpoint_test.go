package checkpoint

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"moe/internal/atomicio"
	"moe/internal/core"
	"moe/internal/evolve"
	"moe/internal/expert"
	"moe/internal/features"
	"moe/internal/policy"
	"moe/internal/sim"
)

const testMaxThreads = 8

// synthDecision builds the i-th decision of a deterministic synthetic
// stream: features drift smoothly, availability dips periodically, rate
// wobbles. Enough variety to exercise trust, health, and selector updates.
func synthDecision(i int) sim.Decision {
	var f features.Vector
	for j := range f {
		f[j] = 0.15*float64(j+1) + 0.02*float64((i*7+j*3)%11)
	}
	avail := testMaxThreads
	if i%9 >= 6 {
		avail = testMaxThreads / 2
	}
	f[features.Processors] = float64(avail)
	return sim.Decision{
		Time:           0.25 * float64(i),
		Features:       f,
		Rate:           100 + 8*math.Sin(float64(i)/3),
		MaxThreads:     testMaxThreads,
		AvailableProcs: avail,
		RegionStart:    i%4 == 0,
		RegionIndex:    i,
	}
}

// drive runs a policy over decisions [from, to), threading CurrentThreads
// through like the engine does, and returns the chosen thread counts.
func drive(p sim.Policy, from, to int) []int {
	out := make([]int, 0, to-from)
	n := 4
	for i := from; i < to; i++ {
		d := synthDecision(i)
		d.CurrentThreads = n
		n = p.Decide(d)
		if n < 1 {
			n = 1
		}
		if n > d.MaxThreads {
			n = d.MaxThreads
		}
		out = append(out, n)
	}
	return out
}

func newMixture(t *testing.T) *core.Mixture {
	t.Helper()
	m, err := core.NewMixture(expert.Canonical4(), core.Options{})
	if err != nil {
		t.Fatalf("NewMixture: %v", err)
	}
	return m
}

// testState builds a realistic full State: a mixture driven through a
// synthetic stream, wrapped with runtime-level bookkeeping.
func testState(t *testing.T, decisions int) *State {
	t.Helper()
	m := newMixture(t)
	drive(m, 0, decisions)
	ps, err := CapturePolicy(m)
	if err != nil {
		t.Fatalf("CapturePolicy: %v", err)
	}
	return &State{
		PolicyName: m.Name(),
		MaxThreads: testMaxThreads,
		Decisions:  decisions,
		LastN:      3,
		Clock:      0.25 * float64(decisions),
		LastAvail:  testMaxThreads,
		Sanitized:  1,
		Hist:       map[int]int{1: 2, 3: 5, testMaxThreads: decisions},
		Policy:     ps,
	}
}

func testObservations(n, from int) []Observation {
	out := make([]Observation, n)
	for i := range out {
		d := synthDecision(from + i)
		out[i] = Observation{
			Time:           d.Time,
			Features:       d.Features,
			Rate:           d.Rate,
			RegionStart:    d.RegionStart,
			AvailableProcs: d.AvailableProcs,
		}
	}
	return out
}

// sameObs compares observation slices element-wise (nil and empty are the
// same journal tail).
func sameObs(a, b []Observation) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// --- Snapshot encoding ---

func TestSnapshotRoundTrip(t *testing.T) {
	analytic := policy.NewAnalytic(policy.AnalyticOptions{Seed: 99})
	drive(analytic, 0, 25)
	aState := analytic.ExportState()

	online := policy.NewOnline()
	drive(online, 0, 25)
	oState := online.ExportState()

	cases := map[string]*State{
		"mixture": testState(t, 40),
		"stateless": {
			PolicyName: "default", MaxThreads: 4, Decisions: 7, LastN: 2,
			Clock: 1.75, LastAvail: 4, Hist: map[int]int{2: 7},
			Policy: PolicyState{Kind: PolicyStateless},
		},
		"online": {
			PolicyName: "online", MaxThreads: 8, Decisions: 25, LastN: 5,
			Clock: 6.25, LastAvail: 8, Hist: map[int]int{5: 25},
			Policy: PolicyState{Kind: PolicyOnline, Online: &oState},
		},
		"analytic": {
			PolicyName: "analytic", MaxThreads: 8, Decisions: 25, LastN: 4,
			Clock: 6.25, LastAvail: 8, Hist: map[int]int{4: 25},
			Policy: PolicyState{Kind: PolicyAnalytic, Analytic: &aState},
		},
		"opaque": {
			PolicyName: "custom", MaxThreads: 8, Decisions: 3, LastN: 1,
			Clock: 0.75, LastAvail: 8, Hist: map[int]int{1: 3},
			Policy: PolicyState{Kind: PolicyOpaque, Opaque: []byte{0xde, 0xad, 0xbe, 0xef}},
		},
	}
	for name, st := range cases {
		t.Run(name, func(t *testing.T) {
			data, err := EncodeSnapshot(st, 7)
			if err != nil {
				t.Fatalf("EncodeSnapshot: %v", err)
			}
			got, run, err := DecodeSnapshot(data)
			if err != nil {
				t.Fatalf("DecodeSnapshot: %v", err)
			}
			if run != 7 {
				t.Fatalf("run stamp %d did not round-trip", run)
			}
			if !reflect.DeepEqual(st, got) {
				t.Fatalf("round trip mismatch:\n want %+v\n got  %+v", st, got)
			}
			// Determinism: encoding the decoded state reproduces the bytes.
			again, err := EncodeSnapshot(got, run)
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if string(again) != string(data) {
				t.Fatal("re-encoding decoded state produced different bytes")
			}
		})
	}
}

// TestSnapshotRoundTripEvolvingPool covers the optional evolution tail: a
// mixture with the online expert lifecycle enabled exports pool
// composition, lineage, refit history and emitter RNG state, all of which
// must survive the wire format bit-exactly — and restoring the snapshot
// into a freshly built evolving mixture must resume the identical decision
// stream, pool changes included.
func TestSnapshotRoundTripEvolvingPool(t *testing.T) {
	cfg := evolve.Config{Enabled: true, Period: 10, Seed: 3, MinAge: 20, MinPool: 2}
	build := func() *core.Mixture {
		m, err := core.NewMixture(expert.Canonical4(), core.Options{Evolution: cfg})
		if err != nil {
			t.Fatalf("NewMixture: %v", err)
		}
		return m
	}
	m := build()
	drive(m, 0, 120)
	ps, err := CapturePolicy(m)
	if err != nil {
		t.Fatalf("CapturePolicy: %v", err)
	}
	if ps.Mixture == nil || ps.Mixture.Evolution == nil {
		t.Fatal("evolving mixture captured no evolution state")
	}
	st := &State{
		PolicyName: m.Name(), MaxThreads: testMaxThreads, Decisions: 120,
		LastN: 3, Clock: 30, LastAvail: testMaxThreads,
		Hist: map[int]int{testMaxThreads: 120}, Policy: ps,
	}
	data, err := EncodeSnapshot(st, 2)
	if err != nil {
		t.Fatalf("EncodeSnapshot: %v", err)
	}
	got, _, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	if !reflect.DeepEqual(st, got) {
		t.Fatalf("evolving round trip mismatch:\n want %+v\n got  %+v", st.Policy.Mixture.Evolution, got.Policy.Mixture.Evolution)
	}
	again, err := EncodeSnapshot(got, 2)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if string(again) != string(data) {
		t.Fatal("re-encoding decoded evolving state produced different bytes")
	}

	restored := build()
	if err := RestorePolicy(restored, got.Policy); err != nil {
		t.Fatalf("RestorePolicy: %v", err)
	}
	want := drive(m, 120, 200)
	have := drive(restored, 120, 200)
	if !reflect.DeepEqual(want, have) {
		t.Fatal("restored evolving mixture diverged from the original")
	}
}

func TestObservationBitFidelity(t *testing.T) {
	obs := Observation{
		Time: math.Inf(1),
		Rate: math.Copysign(0, -1),
	}
	obs.Features[0] = math.NaN()
	obs.Features[1] = math.Float64frombits(0x7ff8000000000bad) // NaN payload
	obs.Features[2] = 5e-324                                   // subnormal
	obs.Features[3] = math.Inf(-1)

	e := &enc{}
	encodeObservation(e, &obs)
	d := &dec{b: e.b}
	got := decodeObservation(d)
	if err := d.done(); err != nil {
		t.Fatalf("decode: %v", err)
	}
	check := func(name string, want, have float64) {
		if math.Float64bits(want) != math.Float64bits(have) {
			t.Errorf("%s: bits %016x != %016x", name, math.Float64bits(have), math.Float64bits(want))
		}
	}
	check("Time", obs.Time, got.Time)
	check("Rate", obs.Rate, got.Rate)
	for i := range obs.Features {
		check("Features", obs.Features[i], got.Features[i])
	}
}

// TestDecodeSnapshotTruncation cuts a valid snapshot at every byte offset;
// every prefix must be rejected without panicking.
func TestDecodeSnapshotTruncation(t *testing.T) {
	data, err := EncodeSnapshot(testState(t, 30), 1)
	if err != nil {
		t.Fatalf("EncodeSnapshot: %v", err)
	}
	for cut := 0; cut < len(data); cut++ {
		if _, _, err := DecodeSnapshot(data[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(data))
		}
	}
	if _, _, err := DecodeSnapshot(data); err != nil {
		t.Fatalf("intact snapshot rejected: %v", err)
	}
}

// TestDecodeSnapshotBitFlips corrupts every byte of a valid snapshot (two
// flip patterns per byte); the CRC must catch every one — a single-byte
// error is a burst of at most 8 bits, within CRC-32C's guaranteed range.
func TestDecodeSnapshotBitFlips(t *testing.T) {
	data, err := EncodeSnapshot(testState(t, 30), 1)
	if err != nil {
		t.Fatalf("EncodeSnapshot: %v", err)
	}
	for i := range data {
		for _, mask := range []byte{0x01, 0xFF} {
			mut := append([]byte(nil), data...)
			mut[i] ^= mask
			if _, _, err := DecodeSnapshot(mut); err == nil {
				t.Fatalf("flip %02x at byte %d accepted", mask, i)
			}
		}
	}
}

func TestDecodeSnapshotTrailingBytes(t *testing.T) {
	data, err := EncodeSnapshot(testState(t, 5), 1)
	if err != nil {
		t.Fatalf("EncodeSnapshot: %v", err)
	}
	if _, _, err := DecodeSnapshot(append(data, 0x00)); err == nil {
		t.Fatal("snapshot with trailing garbage accepted")
	}
}

// --- Store ---

func TestStoreSnapshotAppendRecover(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	st := testState(t, 10)
	if err := s.WriteSnapshot(st); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	obs := testObservations(6, 10)
	for _, o := range obs {
		if err := s.Append(o); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	rec, err := s2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if !reflect.DeepEqual(rec.State, st) {
		t.Fatalf("recovered state mismatch:\n want %+v\n got  %+v", st, rec.State)
	}
	if !reflect.DeepEqual(rec.Tail, obs) {
		t.Fatalf("recovered tail mismatch: want %d entries, got %d (%+v)", len(obs), len(rec.Tail), rec.Tail)
	}
	if got := rec.Decisions(); got != 16 {
		t.Fatalf("Decisions() = %d, want 16", got)
	}
}

// TestStoreRecoverTruncatedJournal truncates the journal at every byte
// offset; recovery must keep the snapshot and yield a clean prefix of the
// appended observations — never an error, never a panic, never a mangled
// entry.
func TestStoreRecoverTruncatedJournal(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	st := testState(t, 10)
	if err := s.WriteSnapshot(st); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	obs := testObservations(5, 10)
	for _, o := range obs {
		if err := s.Append(o); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	jpath := filepath.Join(dir, journalName(fileID{1, 10}))
	full, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatalf("reading journal: %v", err)
	}
	for cut := 0; cut <= len(full); cut++ {
		if err := os.WriteFile(jpath, full[:cut], 0o644); err != nil {
			t.Fatalf("truncating: %v", err)
		}
		s2, err := Open(dir)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		rec, err := s2.Recover()
		if err != nil {
			t.Fatalf("cut %d: Recover: %v", cut, err)
		}
		if !reflect.DeepEqual(rec.State, st) {
			t.Fatalf("cut %d: snapshot damaged by journal truncation", cut)
		}
		if len(rec.Tail) > len(obs) {
			t.Fatalf("cut %d: recovered %d entries from %d appended", cut, len(rec.Tail), len(obs))
		}
		if !sameObs(rec.Tail, obs[:len(rec.Tail)]) {
			t.Fatalf("cut %d: recovered tail is not a clean prefix", cut)
		}
	}
}

// TestStoreRecoverCorruptSnapshotFallsBack corrupts the newest snapshot;
// recovery must land on the previous generation and replay its full journal
// forward through the newer epoch, reaching the same decision count.
func TestStoreRecoverCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	gen0 := testState(t, 0)
	gen0.Decisions = 0
	gen0.Clock = 0
	if err := s.WriteSnapshot(gen0); err != nil {
		t.Fatalf("WriteSnapshot gen0: %v", err)
	}
	first := testObservations(4, 0)
	for _, o := range first {
		if err := s.Append(o); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	gen1 := testState(t, 4)
	if err := s.WriteSnapshot(gen1); err != nil {
		t.Fatalf("WriteSnapshot gen1: %v", err)
	}
	second := testObservations(3, 4)
	for _, o := range second {
		if err := s.Append(o); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Flip one byte in the middle of the newest snapshot.
	spath := filepath.Join(dir, snapName(fileID{1, 4}))
	data, err := os.ReadFile(spath)
	if err != nil {
		t.Fatalf("reading snapshot: %v", err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(spath, data, 0o644); err != nil {
		t.Fatalf("corrupting snapshot: %v", err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	rec, err := s2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rec.State == nil || rec.State.Decisions != 0 {
		t.Fatalf("expected fallback to generation 0, got %+v", rec.State)
	}
	want := append(append([]Observation(nil), first...), second...)
	if !reflect.DeepEqual(rec.Tail, want) {
		t.Fatalf("fallback tail mismatch: want %d entries, got %d", len(want), len(rec.Tail))
	}
	if got := rec.Decisions(); got != 7 {
		t.Fatalf("Decisions() = %d, want 7", got)
	}
}

// TestStoreSnapshotCrashEveryStage aborts a snapshot write at every fault
// point of the atomic-replace protocol; recovery must always reach the full
// decision count — through the new snapshot if the rename landed, through
// the old snapshot plus journal replay otherwise.
func TestStoreSnapshotCrashEveryStage(t *testing.T) {
	for _, stage := range atomicio.Stages() {
		t.Run(string(stage), func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir)
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			base := testState(t, 0)
			base.Decisions = 0
			base.Clock = 0
			if err := s.WriteSnapshot(base); err != nil {
				t.Fatalf("WriteSnapshot base: %v", err)
			}
			obs := testObservations(5, 0)
			for _, o := range obs {
				if err := s.Append(o); err != nil {
					t.Fatalf("Append: %v", err)
				}
			}

			crash := stage
			s.snapshotFault = func(st atomicio.Stage) error {
				if st == crash {
					return errInjected
				}
				return nil
			}
			next := testState(t, 5)
			if err := s.WriteSnapshot(next); err == nil {
				t.Fatal("injected crash did not surface")
			}
			s.snapshotFault = nil
			if err := s.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}

			s2, err := Open(dir)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			rec, err := s2.Recover()
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			if got := rec.Decisions(); got != 5 {
				t.Fatalf("Decisions() = %d after crash at %s, want 5\nreport: %v", got, stage, rec.Report)
			}
			if rec.State == nil {
				t.Fatalf("no snapshot recovered after crash at %s", stage)
			}
			// Whichever rung recovery landed on, replaying the tail must
			// reach exactly the observations recorded after that base.
			if !sameObs(rec.Tail, obs[rec.State.Decisions:]) {
				t.Fatalf("tail after crash at %s is not the suffix past decision %d", stage, rec.State.Decisions)
			}
		})
	}
}

var errInjected = os.ErrDeadlineExceeded // any sentinel distinguishable from nil

// TestStoreRecoverEpochGap removes the journal bridging two epochs; the
// chain must stop rather than jump the gap and misattribute decisions.
func TestStoreRecoverEpochGap(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	gen0 := testState(t, 0)
	gen0.Decisions = 0
	gen0.Clock = 0
	if err := s.WriteSnapshot(gen0); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	for _, o := range testObservations(4, 0) {
		if err := s.Append(o); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	gen1 := testState(t, 4)
	if err := s.WriteSnapshot(gen1); err != nil {
		t.Fatalf("WriteSnapshot gen1: %v", err)
	}
	for _, o := range testObservations(3, 4) {
		if err := s.Append(o); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Corrupt the newest snapshot AND delete the epoch-0 journal: the old
	// snapshot survives but its chain to epoch 4 is broken.
	spath := filepath.Join(dir, snapName(fileID{1, 4}))
	data, _ := os.ReadFile(spath)
	data[0] ^= 0xFF
	os.WriteFile(spath, data, 0o644)
	os.Remove(filepath.Join(dir, journalName(fileID{1, 0})))

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	rec, err := s2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rec.State == nil || rec.State.Decisions != 0 || len(rec.Tail) != 0 {
		t.Fatalf("expected base 0 with empty tail across the gap, got base %+v tail %d", rec.State, len(rec.Tail))
	}
}

func TestStoreRecoverEmptyDir(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	rec, err := s.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rec.State != nil || len(rec.Tail) != 0 || rec.Decisions() != 0 {
		t.Fatalf("empty dir should cold-start, got %+v", rec)
	}
}

func TestStoreRecoverGarbageFiles(t *testing.T) {
	dir := t.TempDir()
	// Arbitrary junk wearing the right names must not break recovery.
	os.WriteFile(filepath.Join(dir, snapName(fileID{1, 3})), []byte("not a snapshot"), 0o644)
	os.WriteFile(filepath.Join(dir, journalName(fileID{1, 3})), []byte{0xff, 0x00, 0x41}, 0o644)
	os.WriteFile(filepath.Join(dir, "snap-garbage.ckpt"), []byte("junk"), 0o644)
	os.WriteFile(filepath.Join(dir, snapName(fileID{1, 1})+atomicio.TempSuffix), []byte("tempjunk"), 0o644)
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	rec, err := s.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rec.State != nil || len(rec.Tail) != 0 {
		t.Fatalf("garbage dir should cold-start, got %+v", rec)
	}
}

func TestStorePrunesOldGenerations(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for gen := 0; gen < 5; gen++ {
		st := testState(t, gen*10)
		st.Decisions = gen * 10
		if err := s.WriteSnapshot(st); err != nil {
			t.Fatalf("WriteSnapshot: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	snaps, err := s.list(snapPrefix, snapSuffix)
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if !reflect.DeepEqual(snaps, []fileID{{1, 30}, {1, 40}}) {
		t.Fatalf("retained snapshots %v, want [{1 30} {1 40}]", snaps)
	}
	journals, err := s.list(journalPrefix, journalSuffix)
	if err != nil {
		t.Fatalf("list journals: %v", err)
	}
	if !reflect.DeepEqual(journals, []fileID{{1, 30}, {1, 40}}) {
		t.Fatalf("retained journals %v, want [{1 30} {1 40}]", journals)
	}
}

func TestAppendWithoutSnapshot(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := s.Append(Observation{}); err == nil {
		t.Fatal("Append before any snapshot should fail")
	}
}

// --- Capture / restore property: restored policies continue identically ---

func TestRestoreContinuesIdentically(t *testing.T) {
	cases := map[string]func() sim.Policy{
		"mixture":  func() sim.Policy { m := newMixture(t); return m },
		"online":   func() sim.Policy { return policy.NewOnline() },
		"analytic": func() sim.Policy { return policy.NewAnalytic(policy.AnalyticOptions{Seed: 7}) },
		"default":  func() sim.Policy { return policy.NewDefault() },
	}
	const split, total = 30, 60
	for name, build := range cases {
		t.Run(name, func(t *testing.T) {
			original := build()
			drive(original, 0, split)

			ps, err := CapturePolicy(original)
			if err != nil {
				t.Fatalf("CapturePolicy: %v", err)
			}
			// Round-trip the state through the wire format, like a real
			// recovery would.
			st := &State{PolicyName: original.Name(), MaxThreads: testMaxThreads,
				Decisions: split, Hist: map[int]int{}, Policy: ps}
			data, err := EncodeSnapshot(st, 1)
			if err != nil {
				t.Fatalf("EncodeSnapshot: %v", err)
			}
			decoded, _, err := DecodeSnapshot(data)
			if err != nil {
				t.Fatalf("DecodeSnapshot: %v", err)
			}

			restored := build()
			if err := RestorePolicy(restored, decoded.Policy); err != nil {
				t.Fatalf("RestorePolicy: %v", err)
			}
			want := drive(original, split, total)
			got := drive(restored, split, total)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("continuation diverged:\n original %v\n restored %v", want, got)
			}
		})
	}
}

func TestRestorePolicyKindMismatch(t *testing.T) {
	online := policy.NewOnline()
	drive(online, 0, 10)
	ps, err := CapturePolicy(online)
	if err != nil {
		t.Fatalf("CapturePolicy: %v", err)
	}
	if err := RestorePolicy(newMixture(t), ps); err == nil {
		t.Fatal("online state restored into a mixture policy")
	}
	if err := RestorePolicy(policy.NewDefault(), ps); err == nil {
		t.Fatal("online state restored into a stateless policy")
	}
}

func TestCapturePolicyUncheckpointable(t *testing.T) {
	p := weirdPolicy{}
	if _, err := CapturePolicy(p); err == nil {
		t.Fatal("unknown stateful policy captured without error")
	}
}

type weirdPolicy struct{}

func (weirdPolicy) Name() string            { return "weird" }
func (weirdPolicy) Decide(sim.Decision) int { return 1 }

// --- Run / lineage separation (regression tests) ---

// TestStoreFreshAttachOverOldHistory: a new store attaching fresh (snapshot
// at decision 0) over a directory holding an abandoned run's higher-count
// history must keep its young snapshot through prune, and recovery after a
// crash before the first periodic snapshot must yield the new run's
// timeline — not resurrect the abandoned one.
func TestStoreFreshAttachOverOldHistory(t *testing.T) {
	dir := t.TempDir()

	// Abandoned run: three generations up to decision 100.
	old, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for _, d := range []int{80, 90, 100} {
		st := testState(t, d)
		st.Decisions = d
		if err := old.WriteSnapshot(st); err != nil {
			t.Fatalf("WriteSnapshot old: %v", err)
		}
	}
	if err := old.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// New run: fresh timeline from decision 0, one journaled decision, crash.
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	fresh := testState(t, 0)
	fresh.Decisions = 0
	fresh.Clock = 0
	if err := s.WriteSnapshot(fresh); err != nil {
		t.Fatalf("WriteSnapshot fresh: %v", err)
	}
	obs := testObservations(1, 0)
	if err := s.Append(obs[0]); err != nil {
		t.Fatalf("Append: %v", err)
	}
	// Crash: no Close.

	snaps, err := s.list(snapPrefix, snapSuffix)
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if !hasID(snaps, fileID{2, 0}) {
		t.Fatalf("fresh run's snapshot was pruned; remaining %v", snaps)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	rec, err := s2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rec.State == nil || rec.State.Decisions != 0 {
		t.Fatalf("recovery resurrected the abandoned timeline: %+v\nreport: %v", rec.State, rec.Report)
	}
	if got := rec.Decisions(); got != 1 {
		t.Fatalf("Decisions() = %d, want the new run's 1\nreport: %v", got, rec.Report)
	}
	if !sameObs(rec.Tail, obs) {
		t.Fatalf("recovered tail is not the new run's journal")
	}
}

// TestStoreRecoverNeverChainsForeignJournals: when recovery falls back to
// an older run's lineage, a retained journal from a newer, abandoned run
// must not be chained in, even if its epoch exactly matches the decision
// count the chain reaches.
func TestStoreRecoverNeverChainsForeignJournals(t *testing.T) {
	dir := t.TempDir()

	// Run 1: snapshot at 0, 4 entries, snapshot at 4, 2 more entries.
	s1, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	gen0 := testState(t, 0)
	gen0.Decisions = 0
	gen0.Clock = 0
	if err := s1.WriteSnapshot(gen0); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	for _, o := range testObservations(4, 0) {
		if err := s1.Append(o); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	gen1 := testState(t, 4)
	if err := s1.WriteSnapshot(gen1); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	own := testObservations(2, 4)
	for _, o := range own {
		if err := s1.Append(o); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := s1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Run 2: resumed to decision 6, snapshot at 6, journals 3 entries of a
	// *different* stream, then its snapshot is torn.
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	gen2 := testState(t, 6)
	if err := s2.WriteSnapshot(gen2); err != nil {
		t.Fatalf("WriteSnapshot run 2: %v", err)
	}
	foreign := testObservations(3, 50) // distinct contents
	for _, o := range foreign {
		if err := s2.Append(o); err != nil {
			t.Fatalf("Append run 2: %v", err)
		}
	}
	if err := s2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	spath := filepath.Join(dir, snapName(fileID{2, 6}))
	data, err := os.ReadFile(spath)
	if err != nil {
		t.Fatalf("reading run 2 snapshot: %v", err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(spath, data, 0o644); err != nil {
		t.Fatalf("corrupting run 2 snapshot: %v", err)
	}

	// Run 2 has no intact snapshot and no epoch-0 journal, so recovery must
	// fall back to run 1's lineage — and stop at its end (decision 6), not
	// continue into run 2's journal whose epoch (6) lines up.
	s3, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	rec, err := s3.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rec.State == nil || rec.State.Decisions != 4 {
		t.Fatalf("expected fallback to run 1's snapshot at 4, got %+v\nreport: %v", rec.State, rec.Report)
	}
	if got := rec.Decisions(); got != 6 {
		t.Fatalf("Decisions() = %d, want 6\nreport: %v", got, rec.Report)
	}
	if !sameObs(rec.Tail, own) {
		t.Fatalf("recovered tail mixed in a foreign run's journal entries:\n got %+v\n want %+v", rec.Tail, own)
	}
}

// TestStorePruneSkipsCorruptSnapshots: a snapshot that rots on disk must
// not count toward the retention window — the intact generation recovery
// would fall back to has to survive pruning.
func TestStorePruneSkipsCorruptSnapshots(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for _, d := range []int{10, 20} {
		st := testState(t, d)
		st.Decisions = d
		if err := s.WriteSnapshot(st); err != nil {
			t.Fatalf("WriteSnapshot: %v", err)
		}
	}
	// Decision-20 snapshot rots in place.
	spath := filepath.Join(dir, snapName(fileID{1, 20}))
	data, err := os.ReadFile(spath)
	if err != nil {
		t.Fatalf("reading snapshot: %v", err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(spath, data, 0o644); err != nil {
		t.Fatalf("corrupting snapshot: %v", err)
	}
	// The next snapshot prunes; it must keep decision 10 (intact fallback)
	// and discard the corrupt 20, not the other way round.
	st := testState(t, 30)
	st.Decisions = 30
	if err := s.WriteSnapshot(st); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	snaps, err := s.list(snapPrefix, snapSuffix)
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if !reflect.DeepEqual(snaps, []fileID{{1, 10}, {1, 30}}) {
		t.Fatalf("retained snapshots %v, want [{1 10} {1 30}]", snaps)
	}
}
