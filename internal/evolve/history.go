package evolve

import "moe/internal/features"

// Sample is one scored observation: the sanitized feature vector the
// mixture decided on, the environment norm actually observed one step later
// (the same supervised pair the selector learns from), the thread count the
// mixture committed alongside the features, and the progress rate observed
// after running with it. NextNorm trains candidate environment predictors;
// the (Feat, Threads) pairs from high-Rate steps train candidate thread
// predictors by behavior cloning.
type Sample struct {
	Feat     features.Vector
	NextNorm float64
	Threads  int
	Rate     float64
}

// History is a bounded ring of the newest samples. Iteration order is
// oldest-to-newest — refits accumulate floating-point sums, so the order
// must be a pure function of the sample stream for replays to be
// bit-identical.
type History struct {
	buf  []Sample
	next int // eviction cursor, valid once the ring is full
}

// NewHistory returns a ring holding at most cap samples.
func NewHistory(cap int) *History {
	if cap < 1 {
		cap = 1
	}
	return &History{buf: make([]Sample, 0, cap)}
}

// Append records one sample, evicting the oldest at capacity.
func (h *History) Append(s Sample) {
	if len(h.buf) < cap(h.buf) {
		h.buf = append(h.buf, s)
		return
	}
	h.buf[h.next] = s
	h.next++
	if h.next == len(h.buf) {
		h.next = 0
	}
}

// Len returns the number of samples held.
func (h *History) Len() int { return len(h.buf) }

// Each visits every sample oldest-to-newest.
func (h *History) Each(fn func(*Sample)) {
	if len(h.buf) == cap(h.buf) {
		for i := h.next; i < len(h.buf); i++ {
			fn(&h.buf[i])
		}
		for i := 0; i < h.next; i++ {
			fn(&h.buf[i])
		}
		return
	}
	for i := range h.buf {
		fn(&h.buf[i])
	}
}

// Export returns the samples oldest-to-newest for checkpointing.
func (h *History) Export() []Sample {
	out := make([]Sample, 0, len(h.buf))
	h.Each(func(s *Sample) { out = append(out, *s) })
	return out
}

// Restore replaces the ring's contents with samples (assumed
// oldest-to-newest, as Export produces), keeping the configured capacity
// and evicting the oldest if there are too many.
func (h *History) Restore(samples []Sample) {
	h.buf = h.buf[:0]
	h.next = 0
	for _, s := range samples {
		h.Append(s)
	}
}
