package features

import (
	"math"
	"testing"
	"testing/quick"
)

func sampleEnv() Env {
	return Env{
		WorkloadThreads: 16, Processors: 8, RunQueue: 16,
		Load1: 4.76, Load5: 2.17, CachedMem: 1.11, PageFreeRate: 1.65,
	}
}

func TestCombineRoundTrip(t *testing.T) {
	c := Code{LoadStore: 0.032, Instructions: 0.026, Branches: 0.2}
	e := sampleEnv()
	v := Combine(c, e)
	if got := v.CodePart(); got != c {
		t.Errorf("CodePart = %+v, want %+v", got, c)
	}
	if got := v.EnvPart(); got != e {
		t.Errorf("EnvPart = %+v, want %+v", got, e)
	}
}

func TestVectorLayoutMatchesTable1(t *testing.T) {
	v := Combine(Code{LoadStore: 1, Instructions: 2, Branches: 3},
		Env{WorkloadThreads: 4, Processors: 5, RunQueue: 6, Load1: 7, Load5: 8, CachedMem: 9, PageFreeRate: 10})
	for i := 0; i < Dim; i++ {
		if v[i] != float64(i+1) {
			t.Fatalf("feature f%d = %v, want %d (Table 1 ordering broken)", i+1, v[i], i+1)
		}
	}
}

func TestEnvNorm(t *testing.T) {
	e := Env{WorkloadThreads: 3, Processors: 4}
	if got := e.Norm(); !floatsClose(got, 5, 1e-12) {
		t.Errorf("Norm = %v, want 5", got)
	}
	v := Combine(Code{LoadStore: 100, Instructions: 100, Branches: 100}, e)
	if got := v.EnvNorm(); !floatsClose(got, 5, 1e-12) {
		t.Errorf("EnvNorm must ignore code features: %v", got)
	}
}

func TestSliceAndFromSlice(t *testing.T) {
	v := Combine(Code{LoadStore: 1}, sampleEnv())
	s := v.Slice()
	if len(s) != Dim {
		t.Fatalf("Slice length %d", len(s))
	}
	s[0] = 999 // must be a copy
	if v[0] == 999 {
		t.Error("Slice aliases the vector")
	}
	back, err := FromSlice(v.Slice())
	if err != nil || back != v {
		t.Errorf("FromSlice round trip failed: %v (%v)", back, err)
	}
	if _, err := FromSlice([]float64{1, 2}); err == nil {
		t.Error("FromSlice with wrong length should error")
	}
}

func TestDot(t *testing.T) {
	var v Vector
	for i := range v {
		v[i] = 1
	}
	w := make([]float64, Dim)
	for i := range w {
		w[i] = 2
	}
	got, err := v.Dot(w)
	if err != nil || got != 20 {
		t.Errorf("Dot = %v (%v), want 20", got, err)
	}
	// With bias.
	wb := append(w, 5.0)
	got, err = v.Dot(wb)
	if err != nil || got != 25 {
		t.Errorf("Dot with bias = %v (%v), want 25", got, err)
	}
	if _, err := v.Dot(w[:3]); err == nil {
		t.Error("Dot with wrong length should error")
	}
}

func TestDistanceAndSub(t *testing.T) {
	var a, b Vector
	a[0], b[0] = 3, 0
	a[5], b[5] = 0, 4
	if got := a.Distance(b); !floatsClose(got, 5, 1e-12) {
		t.Errorf("Distance = %v, want 5", got)
	}
	d := a.Sub(b)
	if d[0] != 3 || d[5] != -4 {
		t.Errorf("Sub = %v", d)
	}
	if a.Distance(a) != 0 {
		t.Error("Distance to self should be 0")
	}
}

func TestDistanceSymmetricNonNegative(t *testing.T) {
	f := func(raw1, raw2 [Dim]float64) bool {
		var a, b Vector
		for i := 0; i < Dim; i++ {
			a[i], b[i] = clean(raw1[i]), clean(raw2[i])
		}
		d1, d2 := a.Distance(b), b.Distance(a)
		return d1 >= 0 && floatsClose(d1, d2, 1e-9*(1+d1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLessEqEnvMajority(t *testing.T) {
	var lo, hi Vector
	for i := EnvStart; i < Dim; i++ {
		lo[i] = 1
		hi[i] = 2
	}
	if !lo.LessEq(hi) {
		t.Error("lo should be ≤ hi")
	}
	if hi.LessEq(lo) {
		t.Error("hi should not be ≤ lo")
	}
	// Code features must not participate.
	lo[0], lo[1], lo[2] = 100, 100, 100
	if !lo.LessEq(hi) {
		t.Error("code features should not affect LessEq")
	}
}

func TestNormalizeCode(t *testing.T) {
	c := NormalizeCode(50, 100, 10, 1000)
	if c.LoadStore != 0.05 || c.Instructions != 0.1 || c.Branches != 0.01 {
		t.Errorf("NormalizeCode = %+v", c)
	}
	if got := NormalizeCode(1, 2, 3, 0); got != (Code{}) {
		t.Errorf("NormalizeCode with zero total = %+v, want zero", got)
	}
}

func TestNamesComplete(t *testing.T) {
	for i, n := range Names {
		if n == "" {
			t.Errorf("feature %d has no name", i)
		}
	}
	for i, s := range Sources {
		if s != "compiler" && s != "linux" {
			t.Errorf("feature %d has unexpected source %q", i, s)
		}
	}
	if Sources[LoadStoreCount] != "compiler" || Sources[WorkloadThreads] != "linux" {
		t.Error("source assignment broken")
	}
}

func TestEnvDimConstants(t *testing.T) {
	if EnvStart != 3 || EnvDim != 7 || Dim != 10 {
		t.Errorf("dimension constants: EnvStart=%d EnvDim=%d Dim=%d", EnvStart, EnvDim, Dim)
	}
}

func TestStringIsCompact(t *testing.T) {
	v := Combine(Code{}, sampleEnv())
	s := v.String()
	if len(s) == 0 || s[0] != '[' {
		t.Errorf("String = %q", s)
	}
}

func floatsClose(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func clean(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1e6)
}
