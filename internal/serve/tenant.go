package serve

import (
	"context"
	"errors"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"time"

	"moe"
	"moe/internal/checkpoint"
	"moe/internal/replica"
	"moe/internal/telemetry"
)

// tenantIDRe is the admitted tenant namespace: filesystem- and label-safe,
// bounded length, no leading separator (tenant IDs become checkpoint
// directory names and metric label values verbatim).
var tenantIDRe = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// tenantCore is one serving generation of a tenant: the runtime, its
// attached checkpoint store (nil when ephemeral or degraded), and the
// single decision slot that serializes access to the runtime's writer
// path. A core is immutable once published; fault recovery never repairs a
// core in place — it abandons the generation and builds the next one, so a
// goroutine wedged inside an old generation can never touch the new one.
type tenantCore struct {
	gen   int
	rt    *moe.Runtime
	store *checkpoint.Store
	sem   chan struct{} // cap 1: the tenant's decision slot
}

// tenant is the registry entry: identity, the current core (nil between
// generations), and the fault-isolation state machine around it.
type tenant struct {
	id  string
	dir string // checkpoint lineage directory; "" = ephemeral

	// mu guards everything below. It is never held across policy code,
	// store I/O, or channel waits — a wedged tenant must stay observable.
	mu          sync.Mutex
	core        *tenantCore
	gen         int // generation the *next* core will get
	brk         *breaker
	degraded    string    // latched reason for journal-less serving; "" = persistent
	busySince   time.Time // non-zero while a decision is in flight on core
	recycles    int       // watchdog recycles, lifetime
	served      int64     // decisions served across generations
	lastDecided []int     // tail of the most recent batch, for /v1/tenants
	dedup       *dedupWindow

	// rebuild serializes core construction (store open + resume can be
	// slow); waiters bail out on their request context.
	rebuild chan struct{}

	// Streaming coalescer state: admitted frames queue on coalPending and
	// a single flusher goroutine (alive while coalActive) drains them in
	// merged DecideBatch groups. Guarded by coalMu, never t.mu — enqueue
	// must stay cheap and the flusher blocks on the decision slot.
	coalMu      sync.Mutex
	coalPending []*streamReq
	coalActive  bool

	// Per-tenant label set. Handles are created once at registration; past
	// the registry's cardinality cap they are detached (still usable,
	// never exposed) and counted in serve_labels_dropped_total.
	mDecisions *telemetry.Counter
	mState     *telemetry.Gauge // 0 ok, 1 quarantined, 2 probation
	mDegraded  *telemetry.Gauge
	mRecycles  *telemetry.Counter
}

// setStateLocked refreshes the tenant's state gauge; callers hold t.mu.
func (t *tenant) setStateLocked() {
	t.mState.Set(float64(t.brk.state))
}

func (t *tenant) setDegradedLocked(reason string) {
	t.degraded = reason
	if reason == "" {
		t.mDegraded.Set(0)
	} else {
		t.mDegraded.Set(1)
	}
}

// tenants is the registry. Reads (the per-request lookup) take the read
// lock; registration and drain take the write lock.
type tenants struct {
	mu sync.RWMutex
	m  map[string]*tenant
}

// snapshot returns the current tenant set, sorted by ID for deterministic
// iteration (drain order, listings, watchdog sweeps).
func (tn *tenants) snapshot() []*tenant {
	tn.mu.RLock()
	out := make([]*tenant, 0, len(tn.m))
	for _, t := range tn.m {
		out = append(out, t)
	}
	tn.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// tenant resolves id to its registry entry, registering it on first
// contact. Registration is cheap — directory and runtime construction are
// deferred to ensureCore so a flood of new tenant IDs cannot stall the
// registry lock behind disk I/O.
func (s *Server) tenant(id string) (*tenant, *apiError) {
	s.tn.mu.RLock()
	t := s.tn.m[id]
	s.tn.mu.RUnlock()
	if t != nil {
		return t, nil
	}
	if !tenantIDRe.MatchString(id) {
		return nil, &apiError{status: 400, code: "bad-tenant", msg: "tenant ID must match " + tenantIDRe.String()}
	}
	s.tn.mu.Lock()
	defer s.tn.mu.Unlock()
	if t = s.tn.m[id]; t != nil {
		return t, nil
	}
	if len(s.tn.m) >= s.cfg.MaxTenants {
		return nil, s.shed("tenant-capacity", 503, "tenant registry full", time.Second)
	}
	t = &tenant{
		id:      id,
		brk:     newBreaker(s.cfg.BreakerBackoff, s.cfg.BreakerBackoffMax, s.cfg.ProbationRequests),
		dedup:   newDedupWindow(s.cfg.DedupWindow),
		rebuild: make(chan struct{}, 1),
		mDecisions: s.reg.Counter("serve_tenant_decisions_total",
			"Decisions served, per tenant.", "tenant", id),
		mState: s.reg.Gauge("serve_tenant_state",
			"Tenant breaker state: 0 ok, 1 quarantined, 2 probation.", "tenant", id),
		mDegraded: s.reg.Gauge("serve_tenant_checkpoint_degraded",
			"1 when the tenant serves journal-less because its checkpoint store is unusable.", "tenant", id),
		mRecycles: s.reg.Counter("serve_tenant_recycles_total",
			"Watchdog recycles of a wedged tenant generation.", "tenant", id),
	}
	if s.cfg.CheckpointRoot != "" {
		t.dir = filepath.Join(s.cfg.CheckpointRoot, id)
	}
	s.tn.m[id] = t
	s.metrics.tenants.Set(float64(len(s.tn.m)))
	return t, nil
}

// ensureCore returns the tenant's current serving core, building one when
// the tenant is new or its last generation was abandoned (panic recycle,
// watchdog recycle). Builds serialize on t.rebuild; waiters give up when
// their request deadline fires rather than piling onto the registry.
func (s *Server) ensureCore(ctx context.Context, t *tenant) (*tenantCore, *apiError) {
	t.mu.Lock()
	core := t.core
	t.mu.Unlock()
	if core != nil {
		return core, nil
	}
	select {
	case t.rebuild <- struct{}{}:
	case <-ctx.Done():
		return nil, s.deadline()
	}
	defer func() { <-t.rebuild }()
	t.mu.Lock()
	core, gen := t.core, t.gen
	t.mu.Unlock()
	if core != nil { // lost the race to another builder: reuse its core
		return core, nil
	}
	core, degraded, err := s.buildCore(t, gen)
	if err != nil {
		// The tenant cannot even construct a runtime (policy build
		// failure). Quarantine it like a panic so retries back off.
		t.mu.Lock()
		t.brk.trip(time.Now())
		t.setStateLocked()
		t.mu.Unlock()
		s.metrics.breakerTrips.Inc()
		s.logf("serve: tenant %s: build failed, quarantined: %v", t.id, err)
		return nil, &apiError{status: 503, code: "tenant-build-failed", msg: err.Error(), retryAfter: s.jit.spread(s.cfg.BreakerBackoff)}
	}
	t.mu.Lock()
	t.core = core
	t.gen = gen + 1
	t.setDegradedLocked(degraded)
	t.mu.Unlock()
	return core, nil
}

// buildCore constructs one tenant generation: fresh policy, runtime, and —
// when persistence is configured — the tenant's store resumed from its
// newest intact lineage. Failure routing is the point:
//
//   - filesystem failures (checkpoint.DiskError) degrade the tenant to
//     journal-less serving with the reason latched, they never refuse it;
//   - a poison journal — replay panics, errors, or wedges past the wedge
//     budget — falls back to a cold runtime on a fresh lineage, because a
//     corrupt past must not deny service in the present;
//   - only policy construction failure refuses the tenant (nothing to
//     serve with).
func (s *Server) buildCore(t *tenant, gen int) (core *tenantCore, degraded string, err error) {
	newRuntime := func() (*moe.Runtime, error) {
		p, err := s.cfg.PolicyBuild(t.id)
		if err != nil {
			return nil, err
		}
		return moe.NewRuntime(p, s.cfg.MaxThreads)
	}
	rt, err := newRuntime()
	if err != nil {
		return nil, "", err
	}
	core = &tenantCore{gen: gen, rt: rt, sem: make(chan struct{}, 1)}
	if t.dir == "" {
		return core, "", nil
	}
	store, err := checkpoint.OpenOptions(t.dir, s.storeOptions())
	if err != nil {
		if checkpoint.IsDiskError(err) {
			s.logf("serve: tenant %s: checkpoint store unusable, serving journal-less: %v", t.id, err)
			return core, err.Error(), nil
		}
		return nil, "", err
	}
	s.wireStore(t, store)
	ok, dedups := s.boundedResume(t, core.rt, store)
	if !ok {
		// Poison or unreadable history: abandon that runtime (the resume
		// goroutine may still be wedged inside it) and serve cold on a
		// fresh lineage in the same directory — the newer run number
		// supersedes the poisoned one for all future recoveries.
		if rt, err = newRuntime(); err != nil {
			return nil, "", err
		}
		core = &tenantCore{gen: gen, rt: rt, sem: make(chan struct{}, 1)}
		if store, err = checkpoint.OpenOptions(t.dir, s.storeOptions()); err != nil {
			if checkpoint.IsDiskError(err) {
				return core, err.Error(), nil
			}
			return nil, "", err
		}
		s.wireStore(t, store)
		dedups = nil
	}
	// The dedup window must mirror the runtime state it answers for: replace
	// it with exactly what recovery saw (possibly nothing) before serving.
	t.mu.Lock()
	t.dedup.load(dedups)
	t.mu.Unlock()
	if err := core.rt.AttachStore(store, s.cfg.CheckpointEvery); err != nil {
		// The attach snapshot could not be written (full disk) or the
		// policy is not capturable: the tenant still serves, journal-less.
		store.Close()
		s.logf("serve: tenant %s: checkpointing unavailable, serving journal-less: %v", t.id, err)
		return core, err.Error(), nil
	}
	core.store = store
	// Ship the attach snapshot (and anything folded behind it) right away so
	// the standby holds a resumable lineage even before the first decision.
	if s.primary != nil {
		if err := s.primary.Flush(t.id); err != nil {
			s.logf("serve: tenant %s: replication bootstrap flush: %v", t.id, err)
		}
	}
	return core, "", nil
}

// storeOptions is how every tenant store is opened: the configured sync
// policy, with run numbers floored at the promotion term so a promoted
// standby's new lineages always supersede anything the deposed primary
// managed to write before it was fenced.
func (s *Server) storeOptions() checkpoint.Options {
	return checkpoint.Options{
		DisableSync: !s.cfg.CheckpointSync,
		MinRun:      int(s.promoted.Load()),
		GroupCommit: s.gcommit, // nil = per-append fsync as before
	}
}

// wireStore installs the serve-layer hooks on a freshly opened store, before
// any write can happen: fault injection (tests), the dedup window source
// (journal rotations persist the full window), and the replication shipper.
func (s *Server) wireStore(t *tenant, store *checkpoint.Store) {
	if s.cfg.JournalFault != nil {
		store.SetJournalFault(s.cfg.JournalFault(t.id))
	}
	store.SetDedupWindowSource(func() []checkpoint.DedupEntry {
		t.mu.Lock()
		defer t.mu.Unlock()
		return t.dedup.entries()
	})
	if s.primary != nil {
		store.SetShipper(s.primary.Shipper(t.id))
	}
}

// boundedResume replays the tenant's journal through the real policy under
// a recover and the wedge budget: a poison observation that panics or
// stalls the policy mid-replay must wedge at most this build attempt,
// never the server. ok false means the runtime and store must be abandoned —
// the replay goroutine may still hold both. On success, dedups is the
// recovered idempotency window (every identified request whose decisions
// the replayed state actually contains).
func (s *Server) boundedResume(t *tenant, rt *moe.Runtime, store *checkpoint.Store) (ok bool, dedups []checkpoint.DedupEntry) {
	type outcome struct {
		ok     bool
		dedups []checkpoint.DedupEntry
	}
	done := make(chan outcome, 1)
	go func() {
		var out outcome
		func() {
			defer func() {
				if p := recover(); p != nil {
					s.logf("serve: tenant %s: panic replaying journal (poison entry?): %v", t.id, p)
				}
			}()
			if rec, err := rt.Resume(store); err != nil {
				s.logf("serve: tenant %s: resume: %v", t.id, err)
			} else {
				out.ok = true
				out.dedups = rec.Dedups
			}
		}()
		done <- out
	}()
	select {
	case out := <-done:
		if !out.ok {
			s.metrics.resumeFailures.Inc()
		}
		return out.ok, out.dedups
	case <-time.After(s.cfg.WedgeTimeout):
		s.logf("serve: tenant %s: resume wedged past %s; starting cold", t.id, s.cfg.WedgeTimeout)
		s.metrics.resumeFailures.Inc()
		return false, nil
	}
}

// commitBatch runs in the decide goroutine after a successful batch, before
// the handler is released: the commit point for exactly-once semantics. For
// an identified request it journals the dedup marker behind the batch's own
// entries and admits it to the in-memory window; with replication on, it
// flushes the tenant's shipment group so the standby holds everything this
// ack promises before the client can see the ack (flush failure is absorbed
// — semi-synchronous — and surfaces as replica lag, not a client error).
// It is also where a journal write failure mid-batch latches the tenant
// degraded: acked decisions are never lost — they live in memory and in the
// shipped stream — but the local journal has stopped.
func (s *Server) commitBatch(t *tenant, core *tenantCore, reqID string, res *decideResult) {
	if res.panicked != "" {
		return
	}
	t.mu.Lock()
	current := t.core == core
	t.mu.Unlock()
	if !current {
		return
	}
	entry := checkpoint.DedupEntry{
		ID:        reqID,
		Decisions: int(res.decisions),
		Threads:   res.threads,
	}
	cerr := core.rt.CheckpointErr()
	if reqID != "" {
		if core.store != nil && cerr == nil {
			if err := core.store.AppendDedup(entry); err != nil {
				s.logf("serve: tenant %s: journal dedup marker: %v", t.id, err)
				cerr = err
			}
		}
		t.mu.Lock()
		if t.core == core {
			t.dedup.add(entry)
		}
		t.mu.Unlock()
	}
	// With group commit attached, appends deferred their fsync; this Sync is
	// the commit point that makes the batch (and its marker) durable before
	// the ack. Without a committer it is a no-op.
	if core.store != nil && cerr == nil {
		if err := core.store.Sync(); err != nil {
			s.logf("serve: tenant %s: group commit sync: %v", t.id, err)
			cerr = err
		}
	}
	if s.primary != nil {
		if err := s.primary.Flush(t.id); err != nil {
			if errors.Is(err, replica.ErrDeposed) {
				res.deposed = true
			}
			s.logf("serve: tenant %s: replication flush: %v", t.id, err)
		}
	}
	if core.store != nil && cerr != nil && checkpoint.IsDiskError(cerr) {
		t.mu.Lock()
		latch := t.core == core && t.degraded == ""
		if latch {
			t.setDegradedLocked(cerr.Error())
		}
		t.mu.Unlock()
		if latch {
			s.logf("serve: tenant %s: journal failed mid-batch, serving journal-less: %v", t.id, cerr)
		}
	}
}

// finishDecide runs in the decide goroutine after the batch returned or
// panicked — whether or not the requesting handler is still waiting (it
// may have timed out long ago). It is the single place tenant health is
// judged.
func (s *Server) finishDecide(t *tenant, core *tenantCore, res *decideResult) {
	t.mu.Lock()
	current := t.core == core
	if current {
		t.busySince = time.Time{}
	}
	if res.panicked == "" {
		if current {
			t.brk.succeed()
			t.setStateLocked()
			t.served = res.decisions
			t.lastDecided = res.threads
		}
		t.mu.Unlock()
		if current {
			n := int64(len(res.threads))
			t.mDecisions.Add(n)
			s.metrics.decisions.Add(n)
		}
		return
	}
	// Panic: recovered, and this tenant alone pays for it. Open the
	// breaker (exponential backoff, probation on re-entry) and abandon the
	// generation — probation serves a fresh runtime resumed from the last
	// checkpoint, exactly like a crashed process restarting.
	var quarantine time.Duration
	if current {
		t.brk.trip(time.Now())
		quarantine = t.brk.backoff / 2 // trip already doubled it
		t.core = nil
		t.setStateLocked()
	}
	t.mu.Unlock()
	s.metrics.panics.Inc()
	if current {
		s.metrics.breakerTrips.Inc()
		s.logf("serve: tenant %s: decision panic, quarantined %s (gen %d abandoned): %v",
			t.id, quarantine, core.gen, res.panicked)
		if core.store != nil {
			// Safe to close here: this goroutine was the generation's only
			// store writer, and it is done writing.
			core.store.Close()
		}
	}
}

// sweepWedged is the watchdog pass: any tenant whose in-flight decision
// has outlived the wedge budget gets its generation abandoned. The wedged
// goroutine keeps its runtime and store — closing the store under it would
// race — while the next request rebuilds from the last checkpoint on a
// fresh lineage; the abandoned generation's journal writes land on a
// superseded run number and are ignored by recovery from then on.
func (s *Server) sweepWedged(now time.Time) {
	for _, t := range s.tn.snapshot() {
		t.mu.Lock()
		wedged := t.core != nil && !t.busySince.IsZero() && now.Sub(t.busySince) > s.cfg.WedgeTimeout
		var gen int
		if wedged {
			gen = t.core.gen
			t.core = nil
			t.busySince = time.Time{}
			t.recycles++
		}
		t.mu.Unlock()
		if wedged {
			t.mRecycles.Inc()
			s.metrics.recycles.Inc()
			s.logf("serve: tenant %s: wedged past %s, recycled (gen %d abandoned)", t.id, s.cfg.WedgeTimeout, gen)
		}
	}
}

func (s *Server) watchdogLoop() {
	tick := time.NewTicker(s.cfg.WatchdogInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case now := <-tick.C:
			s.sweepWedged(now)
		}
	}
}
