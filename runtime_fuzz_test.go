package moe_test

import (
	"math"
	"testing"

	"moe"
)

// buildFuzzFeatures spreads four fuzzed values plus an optional hostile
// value across the 10-feature vector, so the fuzzer can reach every
// component without 10 separate parameters.
func buildFuzzFeatures(a, b, c, d float64, hostile uint8) moe.Features {
	vals := [4]float64{a, b, c, d}
	var f moe.Features
	for i := range f {
		f[i] = vals[i%4]
	}
	// The low three bits pick a hostile payload, the next four the slot.
	payloads := [...]float64{math.NaN(), math.Inf(1), math.Inf(-1), 1e308, -1e308, 5e-324, 0, -0.0}
	f[int(hostile>>3)%len(f)] = payloads[int(hostile&7)]
	return f
}

// FuzzRuntimeDecide is the property the degradation ladder promises:
// whatever observation a host reports — non-finite features, absurd
// magnitudes, backwards or NaN clocks, garbage rates and availabilities —
// Decide never panics and always returns a thread count in
// [1, maxThreads], for the mixture and for the baseline policies alike.
func FuzzRuntimeDecide(f *testing.F) {
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0, uint8(0), false)
	f.Add(1.0, 8.0, 2.0, 0.5, 10.0, 100.0, 16, uint8(9), true)
	f.Add(math.NaN(), math.Inf(1), math.Inf(-1), 1e308, math.NaN(), math.Inf(-1), -5, uint8(255), false)
	f.Add(-1e308, 1e-308, -0.0, 5e-324, -1.0, -1e9, 1<<30, uint8(42), true)
	f.Add(1e9, 1e10, -1e10, 32.0, 1e300, 0.0, 0, uint8(77), false)

	f.Fuzz(func(t *testing.T, a, b, c, d, tm, rate float64, avail int, hostile uint8, start bool) {
		const maxThreads = 16
		mix, err := moe.NewMixture(moe.CanonicalExperts())
		if err != nil {
			t.Fatal(err)
		}
		// An evolving mixture with a one-decision lifecycle period: pool
		// membership mutates on EVERY step of the loop below, so the ladder's
		// guarantees are fuzzed across births and retirements too.
		living, err := moe.NewEvolvingMixture(moe.CanonicalExperts(),
			moe.EvolutionConfig{Period: 1, MinAge: 2, MinPool: 1, Seed: uint64(hostile) + 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []moe.Policy{mix, living, moe.NewDefaultPolicy(), moe.NewOnlinePolicy()} {
			rt, err := moe.NewRuntime(p, maxThreads)
			if err != nil {
				t.Fatal(err)
			}
			obs := moe.Observation{
				Time:           tm,
				Features:       buildFuzzFeatures(a, b, c, d, hostile),
				Rate:           rate,
				RegionStart:    start,
				AvailableProcs: avail,
			}
			// Decide repeatedly: stateful policies (and the mixture's
			// health tracking) see the corruption scored on the next step.
			for i := 0; i < 4; i++ {
				n := rt.Decide(obs)
				if n < 1 || n > maxThreads {
					t.Fatalf("%s: decision %d outside [1, %d] for %+v",
						p.Name(), n, maxThreads, obs)
				}
				obs.Time = tm + float64(i)
			}
			// And a clean observation afterwards still works.
			var clean moe.Features
			clean[4] = 8
			if n := rt.Decide(moe.Observation{Time: tm + 10, Features: clean}); n < 1 || n > maxThreads {
				t.Fatalf("%s: decision %d out of range after recovery", p.Name(), n)
			}
		}
	})
}

// FuzzEvolvingPoolDecide fuzzes the living pool specifically: a long
// hostile stream with an aggressive lifecycle (births and retirements every
// few decisions), run twice. Every decision must stay in range, and the two
// runs must agree exactly — pool mutation under fire is still a pure
// function of the observation stream.
func FuzzEvolvingPoolDecide(f *testing.F) {
	f.Add(0.0, 0.0, 0.0, 0.0, uint8(0), uint64(1))
	f.Add(math.NaN(), math.Inf(1), -1e308, 5e-324, uint8(255), uint64(7))
	f.Add(1e9, -1e10, 32.0, 1e300, uint8(42), uint64(99))

	f.Fuzz(func(t *testing.T, a, b, c, d float64, hostile uint8, seed uint64) {
		const maxThreads = 16
		run := func() []int {
			mix, err := moe.NewEvolvingMixture(moe.CanonicalExperts(),
				moe.EvolutionConfig{Period: 3, MinAge: 6, MinPool: 1, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			rt, err := moe.NewRuntime(mix, maxThreads)
			if err != nil {
				t.Fatal(err)
			}
			out := make([]int, 0, 40)
			for i := 0; i < 40; i++ {
				obs := moe.Observation{
					Time:           float64(i),
					Features:       buildFuzzFeatures(a, b, c, d, hostile+uint8(i)),
					Rate:           100 + float64(i%7),
					AvailableProcs: 1 + i%maxThreads,
				}
				if i%3 == 0 {
					// Interleave clean observations so health recovery and
					// admission paths run, not just quarantine.
					var clean moe.Features
					clean[4] = 8
					obs.Features = clean
				}
				n := rt.Decide(obs)
				if n < 1 || n > maxThreads {
					t.Fatalf("evolving decision %d outside [1, %d] at step %d", n, maxThreads, i)
				}
				out = append(out, n)
			}
			return out
		}
		first := run()
		second := run()
		for i := range first {
			if first[i] != second[i] {
				t.Fatalf("evolving replay diverged at step %d: %d vs %d", i, first[i], second[i])
			}
		}
	})
}
