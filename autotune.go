package moe

import (
	"moe/internal/exec"
)

// Real-execution autotuning: the same policies that drive the simulator can
// drive actual goroutine worker pools, deciding per parallel region how
// many workers to fan out to from live Go-runtime metrics (the
// GOMAXPROCS-tuning analog).

// Tuner drives a kernel's parallel regions with a thread-selection policy.
type Tuner = exec.Tuner

// Kernel is a parallel computation the tuner can drive.
type Kernel = exec.Kernel

// RegionResult reports one executed parallel region.
type RegionResult = exec.RegionResult

// NewTuner wraps a policy for real execution; maxWorkers ≤ 0 selects the
// machine's CPU count.
func NewTuner(p Policy, maxWorkers int) (*Tuner, error) {
	return exec.NewTuner(p, maxWorkers)
}

// Built-in kernels covering the three workload characters the paper's
// benchmarks span.

// NewBlackScholesKernel returns a compute-bound option-pricing kernel over
// n options (the blackscholes analog).
func NewBlackScholesKernel(n int) Kernel { return exec.NewBlackScholes(n) }

// NewSparseMatVecKernel returns a memory-bound irregular-access kernel: an
// n-row sparse matrix–vector product with nnzPerRow nonzeros per row (the
// cg analog).
func NewSparseMatVecKernel(n, nnzPerRow int) Kernel { return exec.NewSparseMatVec(n, nnzPerRow) }

// NewStencilKernel returns a synchronization-sensitive streaming kernel
// over an n-point grid (the mg/lu analog). Call its Swap method between
// sweeps when using it directly.
func NewStencilKernel(n int) *exec.Stencil { return exec.NewStencil(n) }
