// Package moe is a mixture-of-experts runtime for thread-count selection in
// dynamic environments, reproducing Emani & O'Boyle, "Celebrating
// Diversity: A Mixture of Experts Approach for Runtime Mapping in Dynamic
// Environments" (PLDI 2015).
//
// The core idea: no single thread-selection policy fits every environment.
// The runtime therefore keeps a pool of offline-trained experts — each a
// pair of linear models, a thread predictor w and an environment predictor
// m — and an online selector that, at every parallel region, picks the
// expert whose recent *environment* predictions have been most accurate.
// Environment-prediction accuracy is observable at every timestep, unlike
// thread-prediction quality (the speedup other thread counts would have
// achieved is counterfactual), and because w and m are fitted to the same
// training data they are accurate in the same regions of the feature space.
//
// # Layout
//
//   - Runtime: the decision loop a host program embeds — feed it the
//     Table 1 features at each parallel region, get a thread count back.
//   - Training: build experts by simulation (Train) or load the paper's
//     published Table 1 coefficients (CanonicalExperts).
//   - Simulation: the dynamic-environment substrate (shared multicore
//     machine, co-executing workloads, processor hotplug) used for
//     training, evaluation, and the examples.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured results of every figure.
package moe

import (
	"fmt"

	"moe/internal/core"
	"moe/internal/evolve"
	"moe/internal/expert"
	"moe/internal/features"
	"moe/internal/sim"
	"moe/internal/training"
)

// Re-exported core types. The feature vector layout follows Table 1 of the
// paper: three static code features and seven runtime environment features.
type (
	// Features is the 10-dimensional state f = c ‖ e of Table 1.
	Features = features.Vector
	// CodeFeatures are the static loop features f1–f3.
	CodeFeatures = features.Code
	// EnvFeatures are the runtime environment features f4–f10.
	EnvFeatures = features.Env
	// Expert is one offline-trained policy: thread predictor +
	// environment predictor.
	Expert = expert.Expert
	// ExpertSet is an ordered expert pool.
	ExpertSet = expert.Set
	// Mixture is the runtime mixture-of-experts policy.
	Mixture = core.Mixture
	// MixtureStats is the analysis snapshot (selection frequencies,
	// environment accuracy, thread histogram).
	MixtureStats = core.Stats
	// Policy is the decision interface shared with the simulator.
	Policy = sim.Policy
	// Decision is the per-control-point context a Policy sees.
	Decision = sim.Decision
	// TrainingConfig controls simulated training-data generation.
	TrainingConfig = training.Config
	// TrainingData is a labelled dataset of training observations.
	TrainingData = training.DataSet
	// EvolutionConfig tunes the online expert lifecycle (see
	// NewEvolvingMixture). The zero value disables evolution entirely.
	EvolutionConfig = evolve.Config
)

// ErrPoolMismatch is returned by checkpoint restore when a snapshot's expert
// pool cannot be reconciled with the mixture's: the sizes differ without a
// pool composition to rebuild from, or the snapshot carries an evolving pool
// into a mixture built with evolution disabled. Match it with errors.Is.
var ErrPoolMismatch = core.ErrPoolMismatch

// CombineFeatures assembles the full feature vector from code and
// environment parts.
func CombineFeatures(c CodeFeatures, e EnvFeatures) Features {
	return features.Combine(c, e)
}

// CanonicalExperts returns the four experts with the exact regression
// coefficients published in Table 1 of the paper. They run out of the box;
// experts trained on this repository's simulator (Train + BuildExperts)
// are adapted to the simulated substrate instead.
func CanonicalExperts() ExpertSet { return expert.Canonical4() }

// Train generates a labelled training dataset by simulation, following the
// paper's methodology (§5.2.1): one target co-executing with workload
// programs, thread counts varied for both, on 12- and 32-core platforms.
// A zero Config selects the paper's setup.
func Train(cfg TrainingConfig) (*TrainingData, error) {
	return training.Generate(cfg)
}

// BuildExperts constructs an expert pool from training data. Supported
// sizes: 1 (the monolithic aggregate model of §7.7), 2 (the §3 motivation
// pair), 4 (the paper's deployed configuration, Fig 5) and 8 (the finer
// granularity of §8.4).
func BuildExperts(ds *TrainingData, k int) (ExpertSet, error) {
	switch k {
	case 1:
		mono, err := training.BuildMonolithic(ds)
		if err != nil {
			return nil, err
		}
		return ExpertSet{mono}, nil
	case 2:
		return training.BuildExperts2(ds)
	case 4:
		return training.BuildExperts4(ds)
	case 8:
		return training.BuildExperts8(ds)
	default:
		return nil, fmt.Errorf("moe: unsupported expert pool size %d (want 1, 2, 4 or 8)", k)
	}
}

// NewMixture builds the runtime mixture policy over an expert pool with
// the default (hyperplane) selector learnt purely online, per §5.3.
func NewMixture(set ExpertSet) (*Mixture, error) {
	return core.NewMixture(set, core.Options{})
}

// NewEvolvingMixture builds the runtime mixture with the online expert
// lifecycle enabled: the pool is no longer frozen at construction — new
// experts are bred from the incumbents against journaled observation
// history, admitted through probation, and persistently dominated experts
// are retired. A zero cfg (beyond Enabled) takes the defaults; Enabled is
// forced on. The lifecycle is fully deterministic given cfg.Seed and the
// observation stream, so journal replay reproduces pool changes exactly.
func NewEvolvingMixture(set ExpertSet, cfg EvolutionConfig) (*Mixture, error) {
	cfg.Enabled = true
	return core.NewMixture(set, core.Options{Evolution: cfg})
}

// NewTrainedMixture builds the configuration the paper evaluates: the
// expert pool gated by a selector whose feature-space partition is
// pretrained on the same dataset and keeps adapting online — the
// combination of offline prior models and online learning (§1).
func NewTrainedMixture(ds *TrainingData, set ExpertSet) (*Mixture, error) {
	return training.NewMixturePolicy(ds, set)
}

// SaveExperts writes a trained expert set to a JSON file, so the one-off
// training cost is paid once and the coefficients ship with an application
// — exactly how the paper ships Table 1.
func SaveExperts(set ExpertSet, path string) error {
	return expert.SaveSet(set, path)
}

// LoadExperts reads an expert set saved by SaveExperts.
func LoadExperts(path string) (ExpertSet, error) {
	return expert.LoadSet(path)
}

// Heuristic is a hand-written thread-selection rule.
type Heuristic = training.Heuristic

// RetrofitExpert wraps a hand-written heuristic as an expert the mixture
// can select (§4.1's retrofitting, §9's "hand written analytic models …
// selected by a mixtures approach"): the heuristic keeps full authority
// over thread counts, and the training data supplies only the environment
// predictor that lets the selector judge when the heuristic fits.
func RetrofitExpert(name string, h Heuristic, ds *TrainingData, maxThreads int) (*Expert, error) {
	return training.Retrofit(name, h, ds, maxThreads)
}

// SlotHeuristic is a built-in hand-written rule: claim the program's fair
// share of the machine as estimated from the load features.
func SlotHeuristic(f Features) int { return training.SlotHeuristic(f) }
