// Package parallel provides the bounded worker pool that fans independent
// scenario evaluations and training runs out across cores. The design goal
// is determinism under concurrency: the pool never decides *what* work runs
// or *where* results land — callers enumerate a fixed index space, each job
// writes only to its own index slot, and reductions iterate slots in index
// order. Scheduling therefore affects wall-clock time only, never output.
//
// The pool is nesting-safe. A ForEach job may itself call ForEach on the
// same pool (experiment tables fan out over targets, and each target fans
// out over repeats × policies): when every token is taken the submitting
// goroutine runs the job inline instead of blocking, so the total number of
// goroutines doing work stays bounded by the worker budget and saturated
// nested fan-outs cannot deadlock.
package parallel

import (
	"context"
	"runtime"
	"sync"
)

// Workers resolves a worker-count setting to an effective parallelism
// level: n itself when positive, otherwise runtime.GOMAXPROCS(0). The
// conventions match the -workers flags of cmd/moebench and cmd/moetrain:
// 0 means "use every core", 1 means "run serially".
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Pool is a bounded concurrency budget shared by any number of ForEach
// calls, nested or concurrent. The zero value and a nil *Pool are valid
// and run everything serially, as does NewPool(1); this makes "workers=1"
// follow the exact code path of the pre-parallel serial implementation.
type Pool struct {
	// sem holds one token per additional goroutine the pool may spawn
	// beyond the calling one. nil means serial.
	sem chan struct{}
}

// NewPool returns a pool that runs at most workers (resolved through
// Workers) jobs concurrently, counting the submitting goroutine.
func NewPool(workers int) *Pool {
	w := Workers(workers)
	if w <= 1 {
		return &Pool{}
	}
	return &Pool{sem: make(chan struct{}, w-1)}
}

// ForEach runs fn(ctx, i) for every i in [0, n), at most the pool's worker
// budget concurrently, and waits for all of them. Jobs for which no worker
// token is free run inline on the calling goroutine, preserving the bound
// under nesting.
//
// Cancellation and errors: the context passed to fn is cancelled as soon
// as any job returns a non-nil error (or the caller's ctx is cancelled);
// jobs not yet started are skipped. The returned error is deterministic —
// the non-nil error with the lowest index, regardless of completion order —
// falling back to the caller's context error if that is what stopped the
// loop. On a nil return every index ran to completion.
func (p *Pool) ForEach(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if p == nil || p.sem == nil || n == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			break
		}
		select {
		case p.sem <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-p.sem }()
				if ctx.Err() != nil {
					return
				}
				if err := fn(ctx, i); err != nil {
					errs[i] = err
					cancel()
				}
			}(i)
		default:
			if err := fn(ctx, i); err != nil {
				errs[i] = err
				cancel()
			}
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return parent.Err()
}

// Map runs fn for every index in [0, n) on the pool and collects the
// results in index order, so downstream reductions see the same sequence a
// serial loop would produce. On error the partial results are discarded.
// (A function rather than a method because Go methods cannot be generic.)
func Map[T any](ctx context.Context, p *Pool, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := p.ForEach(ctx, n, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
