package serve

import (
	"fmt"
	"strings"

	"moe"
	"moe/internal/sim"
)

// Fault injection for isolation proofs. Nothing here is wired by default:
// a host opts in by wrapping its PolicyBuild with FaultInjectionBuild
// (cmd/moed does so only behind -fault-injection), and then only tenants
// that name themselves into the chaos prefixes are affected. The wrappers
// implement Unwrap, so the runtime treats a fault tenant as a plain
// (non-fast-path) policy — exactly the pessimistic path a hostile tenant
// would exercise.

// Chaos tenant behavior, by ID prefix.
const (
	// ChaosPanicPrefix tenants panic on every FaultPanicEvery-th decision.
	ChaosPanicPrefix = "chaos-panic"
	// ChaosStallPrefix tenants block forever at decision FaultStallAt.
	ChaosStallPrefix = "chaos-stall"

	FaultPanicEvery = 50
	FaultStallAt    = 200
)

// PanicEvery wraps p so every nth Decide panics before p sees the
// decision (the decision is journaled first, like any other, so the panic
// also poisons the tenant's journal tail — resume hits it again, which is
// what exercises the cold-start fallback).
func PanicEvery(p moe.Policy, n int) moe.Policy {
	return &panicPolicy{p: p, n: n}
}

type panicPolicy struct {
	p     moe.Policy
	n     int
	count int
}

func (f *panicPolicy) Name() string       { return f.p.Name() }
func (f *panicPolicy) Unwrap() moe.Policy { return f.p }

func (f *panicPolicy) Decide(d sim.Decision) int {
	f.count++
	if f.n > 0 && f.count%f.n == 0 {
		panic(fmt.Sprintf("injected tenant fault at decision %d", f.count))
	}
	return f.p.Decide(d)
}

// StallAt wraps p so its nth Decide blocks until release is closed (nil
// release blocks forever) — a wedged tenant for the watchdog to find.
func StallAt(p moe.Policy, n int, release <-chan struct{}) moe.Policy {
	return &stallPolicy{p: p, n: n, release: release}
}

type stallPolicy struct {
	p       moe.Policy
	n       int
	count   int
	release <-chan struct{}
}

func (f *stallPolicy) Name() string       { return f.p.Name() }
func (f *stallPolicy) Unwrap() moe.Policy { return f.p }

func (f *stallPolicy) Decide(d sim.Decision) int {
	f.count++
	if f.count == f.n {
		if f.release == nil {
			select {}
		}
		<-f.release
	}
	return f.p.Decide(d)
}

// FaultInjectionBuild wraps build so tenants opting into the chaos
// prefixes get faulting policies; everyone else is untouched.
func FaultInjectionBuild(build func(string) (moe.Policy, error)) func(string) (moe.Policy, error) {
	return func(id string) (moe.Policy, error) {
		p, err := build(id)
		if err != nil {
			return nil, err
		}
		switch {
		case strings.HasPrefix(id, ChaosPanicPrefix):
			return PanicEvery(p, FaultPanicEvery), nil
		case strings.HasPrefix(id, ChaosStallPrefix):
			return StallAt(p, FaultStallAt, nil), nil
		}
		return p, nil
	}
}
