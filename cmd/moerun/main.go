// Command moerun runs a single target × workload × policy scenario and
// prints the outcome, optionally with a Fig 2-style thread timeline.
//
// Usage:
//
//	moerun -target lu -workload mg -policy mixture
//	moerun -target cg -workload is,cg -policy analytic -freq high -timeline
//
// Crash safety: with -checkpoint-dir the policy runs inside a moe.Runtime
// that journals every decision and snapshots periodically; a later
// invocation with -resume restores the learned state and continues where
// the previous run (however it died) left off.
//
//	moerun -target lu -policy mixture -checkpoint-dir /var/lib/moe
//	moerun -target lu -policy mixture -checkpoint-dir /var/lib/moe -resume
//
// Observability: -metrics-addr serves the decision-path metrics in
// Prometheus text format (/metrics), as JSON (/metrics.json) and the
// standard pprof profiles (/debug/pprof/) on one listener; -trace-out
// streams every decision as an NDJSON record. Either flag runs the policy
// inside a moe.Runtime (like -checkpoint-dir does) and changes no decision.
//
//	moerun -target lu -policy mixture -metrics-addr :9090 -metrics-hold 30s
//	moerun -target lu -policy mixture -trace-out decisions.ndjson
//
// Living pool: -evolve turns on the online expert lifecycle — the mixture
// births new experts (mutated and refit from the observation history),
// admits them through probation, and retires persistently dominated ones.
// Without the flag the pool is frozen and every decision is byte-identical
// to previous releases.
//
//	moerun -target lu -policy mixture -evolve -evolve-period 60 -evolve-seed 7
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"moe"
	"moe/internal/core"
	"moe/internal/evolve"
	"moe/internal/experiments"
	"moe/internal/sim"
	"moe/internal/telemetry"
	"moe/internal/trace"
	"moe/internal/training"
	"moe/internal/workload"
)

func main() {
	target := flag.String("target", "lu", "target program (see moetrace -programs)")
	wl := flag.String("workload", "mg", "comma-separated workload programs (empty = isolated)")
	policyName := flag.String("policy", "mixture", "policy: default|online|offline|analytic|mixture|oracle")
	freq := flag.String("freq", "low", "hardware change frequency: low|high|static")
	seed := flag.Uint64("seed", 42, "scenario seed")
	timeline := flag.Bool("timeline", false, "print the thread-choice timeline")
	checkpointDir := flag.String("checkpoint-dir", "", "checkpoint directory for crash-safe runtime state (empty = off)")
	checkpointEvery := flag.Int("checkpoint-every", 50, "decisions between snapshots with -checkpoint-dir (0 = journal only)")
	resume := flag.Bool("resume", false, "restore runtime state from -checkpoint-dir before running")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus metrics, JSON and pprof on this address (e.g. :9090; empty = off)")
	metricsHold := flag.Duration("metrics-hold", 0, "keep the metrics server up this long after the run (with -metrics-addr)")
	traceOut := flag.String("trace-out", "", "stream an NDJSON decision trace to this file (empty = off)")
	evolveFlag := flag.Bool("evolve", false, "enable the online expert lifecycle: birth, refit and retirement of experts at runtime (mixture policies only)")
	evolvePeriod := flag.Int("evolve-period", 0, "decisions between lifecycle steps with -evolve (0 = built-in default)")
	evolveSeed := flag.Uint64("evolve-seed", 1, "lifecycle RNG seed with -evolve (replays are bit-identical per seed)")
	flag.Parse()

	if *resume && *checkpointDir == "" {
		fmt.Fprintln(os.Stderr, "moerun: -resume requires -checkpoint-dir")
		os.Exit(2)
	}

	var hwFreq trace.Frequency
	switch *freq {
	case "low":
		hwFreq = trace.LowFrequency
	case "high":
		hwFreq = trace.HighFrequency
	case "static":
		hwFreq = trace.Static
	default:
		fmt.Fprintf(os.Stderr, "moerun: unknown frequency %q\n", *freq)
		os.Exit(2)
	}
	if _, err := workload.ByName(*target); err != nil {
		fmt.Fprintf(os.Stderr, "moerun: %v (programs: %s)\n", err, strings.Join(workload.Names(), ", "))
		os.Exit(2)
	}

	// The metrics server comes up before the (comparatively slow) training
	// phase so scrapers can connect for the whole lifetime of the process.
	var reg *telemetry.Registry
	if *metricsAddr != "" {
		reg = telemetry.NewRegistry()
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "moerun: %v\n", err)
			os.Exit(1)
		}
		srv := &http.Server{Handler: telemetry.Mux(reg)}
		go func() { _ = srv.Serve(ln) }()
		fmt.Fprintf(os.Stderr, "moerun: serving metrics on http://%s/metrics\n", ln.Addr())
	}
	var traceW *telemetry.TraceWriter
	if *traceOut != "" {
		var err error
		traceW, err = telemetry.CreateTrace(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "moerun: %v\n", err)
			os.Exit(1)
		}
	}

	fmt.Fprintln(os.Stderr, "moerun: training experts…")
	lab, err := experiments.NewLab(training.Config{Seed: *seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "moerun: %v\n", err)
		os.Exit(1)
	}

	var programs []string
	if *wl != "" {
		programs = strings.Split(*wl, ",")
	}
	spec := experiments.ScenarioSpec{
		Target:        *target,
		Workload:      programs,
		HWFreq:        hwFreq,
		Seed:          *seed,
		RecordSamples: *timeline,
	}
	base, err := lab.Run(spec, experiments.PolicyDefault)
	if err != nil {
		fmt.Fprintf(os.Stderr, "moerun: baseline: %v\n", err)
		os.Exit(1)
	}

	// With a checkpoint directory or any telemetry flag, the policy runs
	// inside a moe.Runtime (crash safety and observability are runtime
	// features); otherwise it runs bare, exactly as before.
	var rt *moe.Runtime
	var out *experiments.RunOutcome
	if *checkpointDir != "" || reg != nil || traceW != nil || *evolveFlag {
		var p sim.Policy
		var err error
		if *evolveFlag {
			p, err = lab.NewEvolvingPolicy(experiments.PolicyName(*policyName), *target, *seed,
				evolve.Config{Period: *evolvePeriod, Seed: *evolveSeed})
		} else {
			p, err = lab.NewPolicy(experiments.PolicyName(*policyName), *target, *seed)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "moerun: %v\n", err)
			os.Exit(1)
		}
		rt, err = moe.NewRuntime(p, lab.Eval.Cores)
		if err != nil {
			fmt.Fprintf(os.Stderr, "moerun: %v\n", err)
			os.Exit(1)
		}
		var regSink telemetry.Sink
		if reg != nil {
			regSink = telemetry.NewRegistrySink(reg)
		}
		rt.SetTelemetry(telemetry.MultiSink(regSink, traceW))
		var store *moe.CheckpointStore
		if *checkpointDir != "" {
			store, err = moe.OpenCheckpoint(*checkpointDir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "moerun: %v\n", err)
				os.Exit(1)
			}
			store.SetMetrics(reg)
			if *resume {
				rec, err := rt.Resume(store)
				if err != nil {
					fmt.Fprintf(os.Stderr, "moerun: resume: %v\n", err)
					os.Exit(1)
				}
				for _, line := range rec.Report {
					fmt.Fprintf(os.Stderr, "moerun: recovery: %s\n", line)
				}
				fmt.Fprintf(os.Stderr, "moerun: resumed at decision %d\n", rt.Decisions())
			}
			if err := rt.AttachStore(store, *checkpointEvery); err != nil {
				fmt.Fprintf(os.Stderr, "moerun: %v\n", err)
				os.Exit(1)
			}
		}
		out, err = lab.RunWithPolicy(spec, rt.SimPolicy())
		if err != nil {
			fmt.Fprintf(os.Stderr, "moerun: %v\n", err)
			os.Exit(1)
		}
		if err := rt.CheckpointErr(); err != nil {
			fmt.Fprintf(os.Stderr, "moerun: checkpointing degraded mid-run: %v\n", err)
		}
		if store != nil {
			if err := store.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "moerun: closing checkpoint store: %v\n", err)
			}
		}
		if traceW != nil {
			if err := traceW.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "moerun: decision trace: %v\n", err)
			} else {
				fmt.Fprintf(os.Stderr, "moerun: decision trace written to %s\n", *traceOut)
			}
		}
	} else {
		out, err = lab.Run(spec, experiments.PolicyName(*policyName))
		if err != nil {
			fmt.Fprintf(os.Stderr, "moerun: %v\n", err)
			os.Exit(1)
		}
	}

	fmt.Printf("target %s with workload [%s], %s hardware changes\n", *target, *wl, *freq)
	fmt.Printf("  default : %8.1f s\n", base.ExecTime)
	fmt.Printf("  %-8s: %8.1f s  (%.2fx speedup)\n", *policyName, out.ExecTime, base.ExecTime/out.ExecTime)
	fmt.Printf("  workload throughput vs default: %.2fx\n", out.WorkloadThroughput/base.WorkloadThroughput)

	mixStats, haveMix := moe.MixtureStats{}, false
	if mix, ok := out.Policy.(*core.Mixture); ok {
		mixStats, haveMix = mix.Snapshot(), true
	} else if rt != nil {
		mixStats, haveMix = rt.MixtureStatsSnapshot()
	}
	if haveMix {
		fmt.Printf("  expert selection:")
		for i, f := range mixStats.SelectionFraction {
			fmt.Printf(" E%d=%.0f%%", i+1, 100*f)
		}
		fmt.Printf("  env accuracy=%.0f%%\n", 100*mixStats.MixtureEnvAccuracy)
		if *evolveFlag {
			fmt.Printf("  pool: %d experts [%s], %d births, %d retirements (epoch %d)\n",
				len(mixStats.ExpertNames), strings.Join(mixStats.ExpertNames, " "),
				mixStats.PoolBirths, mixStats.PoolRetirements, mixStats.PoolEpoch)
		}
	}

	if *timeline {
		tr, err := out.Result.Target()
		if err != nil {
			fmt.Fprintf(os.Stderr, "moerun: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("\ntime    avail  wl-threads  threads  region")
		for i, s := range tr.Samples {
			if i%10 != 0 {
				continue
			}
			fmt.Printf("%6.1f  %5d  %10d  %7d  %s\n", s.Time, s.Available, s.WorkldThr, s.Threads, s.RegionName)
		}
	}

	if *metricsAddr != "" && *metricsHold > 0 {
		fmt.Fprintf(os.Stderr, "moerun: holding metrics server for %s\n", *metricsHold)
		time.Sleep(*metricsHold)
	}
}
