// Package expert implements the paper's offline experts (§4.1, §5.1). Each
// expert is a pair of models trained on one slice of the training data:
//
//   - the thread predictor w, which maps the 10-feature state f = c ‖ e to
//     the thread count expected to maximize speedup; and
//   - the environment predictor m, which maps f_t to the environment norm
//     ‖e_{t+1}‖ expected at the next timestep.
//
// The environment predictor is the paper's central trick: w's quality
// cannot be observed online (the counterfactual speedup of other thread
// counts is unknowable), but m's quality can be checked against the actual
// next environment — and because w and m are fitted to the same training
// data they are accurate in the same region of the feature space (§4.1).
package expert

import (
	"fmt"
	"math"

	"moe/internal/features"
	"moe/internal/regress"
)

// Expert is one offline-trained mapping policy.
type Expert struct {
	// Name identifies the expert (e.g. "E1").
	Name string
	// Threads is the direct-form thread predictor w: n = w·f + β — the
	// shape of Table 1's w rows, and the fallback when no speedup model
	// is present.
	Threads *regress.Model
	// Speedup, when present, is the paper's primary formulation x(n, f)
	// (§4.1): the thread choice becomes argmax_n x(n, f).
	Speedup *SpeedupModel
	// HeuristicFn, when present, takes full authority over thread
	// prediction — the §4.1 "hand-crafted or ad-hoc expert" retrofitted
	// into the mixture with only its environment predictor trained.
	HeuristicFn func(f features.Vector) int
	// Env is the environment predictor m forecasting the next
	// environment.
	Env EnvModel
	// FeatMean/FeatStd are the training-data feature statistics; when
	// set (std > 0 anywhere) they let the expert judge how far a state
	// lies outside its training distribution.
	FeatMean [features.Dim]float64
	FeatStd  [features.Dim]float64
	// MaxThreads caps predictions (the platform the expert was trained
	// on; predictions are additionally clamped by the runtime to the
	// current machine).
	MaxThreads int
	// TrainedOn documents the training slice (scalability class and
	// platform, Fig 5).
	TrainedOn string
}

// Validate checks the expert is usable.
func (e *Expert) Validate() error {
	if e == nil {
		return fmt.Errorf("expert: nil expert")
	}
	if e.Threads == nil || e.Env == nil {
		return fmt.Errorf("expert %s: missing thread or environment predictor", e.Name)
	}
	if err := e.Threads.Validate(); err != nil {
		return fmt.Errorf("expert %s: thread predictor: %w", e.Name, err)
	}
	if v, ok := e.Env.(interface{ Validate() error }); ok {
		if err := v.Validate(); err != nil {
			return fmt.Errorf("expert %s: %w", e.Name, err)
		}
	}
	if e.Threads.Dim() != features.Dim || e.Env.Dim() != features.Dim {
		return fmt.Errorf("expert %s: predictor dimensionality %d/%d, want %d",
			e.Name, e.Threads.Dim(), e.Env.Dim(), features.Dim)
	}
	if e.Speedup != nil {
		if err := e.Speedup.Validate(); err != nil {
			return fmt.Errorf("expert %s: %w", e.Name, err)
		}
	}
	if e.MaxThreads <= 0 {
		return fmt.Errorf("expert %s: non-positive MaxThreads", e.Name)
	}
	return nil
}

// OODScore reports how far state f lies outside the expert's training
// distribution: the mean absolute z-score of the environment features
// against the training statistics. 0 when statistics are absent.
func (e *Expert) OODScore(f features.Vector) float64 {
	sum, dims := 0.0, 0
	for i := features.EnvStart; i < features.Dim; i++ {
		sd := e.FeatStd[i]
		if sd <= 1e-9 {
			continue
		}
		sum += math.Abs(f[i]-e.FeatMean[i]) / sd
		dims++
	}
	if dims == 0 {
		return 0
	}
	return sum / float64(dims)
}

// MaxEnvZ reports the expert's worst single-feature surprise at state f:
// the largest absolute z-score over the environment features. One feature
// far outside the training range (e.g. a 32-processor state shown to a
// 12-core-trained expert) marks the expert inapplicable even if the other
// features look ordinary. 0 when statistics are absent.
func (e *Expert) MaxEnvZ(f *features.Vector) float64 {
	maxZ := 0.0
	for i := features.EnvStart; i < features.Dim; i++ {
		sd := e.FeatStd[i]
		if sd <= 1e-9 {
			continue
		}
		if z := math.Abs(f[i]-e.FeatMean[i]) / sd; z > maxZ {
			maxZ = z
		}
	}
	return maxZ
}

// PredictThreads returns the expert's thread choice for state f, clamped to
// [1, max] where max is the smaller of the expert's platform cap and the
// caller's cap (0 means no caller cap).
//
// The two fitted forms of the §4.1 thread predictor are blended by
// distribution distance: in regime the direct linear form n = w·f is used —
// it interpolates the training data best — and as the state leaves the
// expert's training distribution the choice shifts to argmax_n x(n, f) from
// the speedup surface, whose explicit n-interactions extrapolate far
// better. Canonical Table 1 experts (no speedup surface) always use the
// direct form.
func (e *Expert) PredictThreads(f features.Vector, callerMax int) int {
	return e.predictThreadsWith(&f, callerMax, nil)
}

// PredictThreadsBuf is PredictThreads with caller scratch (len ≥
// PredictScratchLen): the choice is identical, the per-call regression
// input allocations are not made. A too-short buf falls back to the
// allocating path.
func (e *Expert) PredictThreadsBuf(f *features.Vector, callerMax int, buf []float64) int {
	if len(buf) < PredictScratchLen {
		buf = nil
	}
	return e.predictThreadsWith(f, callerMax, buf)
}

func (e *Expert) predictThreadsWith(f *features.Vector, callerMax int, buf []float64) int {
	limit := e.MaxThreads
	if callerMax > 0 && callerMax < limit {
		limit = callerMax
	}
	if e.HeuristicFn != nil {
		n := e.HeuristicFn(*f)
		if n < 1 {
			n = 1
		}
		if n > limit {
			n = limit
		}
		return n
	}
	var x []float64
	if buf != nil {
		x = buf[:features.Dim]
		copy(x, f[:])
	} else {
		x = f.Slice()
	}
	nw := e.Threads.MustPredict(x)
	n := nw
	if e.Speedup != nil {
		z := e.MaxEnvZ(f)
		// z ≤ 1.5: in distribution, trust w. z ≥ 4: far outside, trust
		// the speedup argmax. Linear blend between.
		lambda := (z - 1.5) / 2.5
		if lambda > 0 {
			if lambda > 1 {
				lambda = 1
			}
			// x has been consumed by the thread predictor above; the basis
			// expansion may reuse the same scratch.
			nx, _ := e.Speedup.bestWith(*f, limit, buf)
			n = (1-lambda)*nw + lambda*float64(nx)
		}
	}
	if math.IsNaN(n) || math.IsInf(n, 0) {
		// A broken predictor (non-finite state slipped past sanitization,
		// or a corrupt model constructed around the boundary checks) must
		// still yield a legal count; the OpenMP-default choice — one
		// thread per context — is the neutral fallback. The mixture's
		// health tracking quarantines the expert via its environment
		// predictions; this guard only keeps the single prediction sane.
		return limit
	}
	out := int(math.Round(n))
	if out < 1 {
		out = 1
	}
	if out > limit {
		out = limit
	}
	return out
}

// PredictEnv forecasts the environment the expert expects at the next
// timestep.
func (e *Expert) PredictEnv(f features.Vector) EnvPrediction {
	return e.Env.Predict(f)
}

// PredictEnvBuf is PredictEnv with caller scratch: buf (len ≥
// PredictScratchLen) receives the feature slice handed to the regression
// models, and sigma — when the environment predictor is a VectorEnvModel —
// must be its cached ResidualSigma value (nil otherwise). The prediction is
// identical to PredictEnv's; only the allocations differ. Unknown model
// implementations fall back to the allocating path.
func (e *Expert) PredictEnvBuf(f *features.Vector, buf []float64, sigma *[features.EnvDim]float64) EnvPrediction {
	if len(buf) < features.Dim {
		return e.Env.Predict(*f)
	}
	x := buf[:features.Dim]
	copy(x, f[:])
	switch m := e.Env.(type) {
	case NormEnvModel:
		return m.predictWith(x)
	case VectorEnvModel:
		return m.predictWith(x, sigma)
	default:
		return e.Env.Predict(*f)
	}
}

// PredictEnvInto is PredictEnvBuf writing the prediction in place — the
// batch fast path refreshes every expert's pending prediction per decision,
// and the in-place form spares the return-value copy chain. The stored
// prediction is identical to PredictEnvBuf's.
func (e *Expert) PredictEnvInto(dst *EnvPrediction, f *features.Vector, buf []float64, sigma *[features.EnvDim]float64) {
	if len(buf) < features.Dim {
		*dst = e.Env.Predict(*f)
		return
	}
	x := buf[:features.Dim]
	copy(x, f[:])
	switch m := e.Env.(type) {
	case NormEnvModel:
		m.predictInto(dst, x)
	case VectorEnvModel:
		m.predictInto(dst, x, sigma)
	default:
		*dst = e.Env.Predict(*f)
	}
}

// PredictEnvIntoStaged is PredictEnvInto for a caller that has already
// staged f's components into x (exactly as copy(x, f[:]) with len(x) ==
// features.Dim would): the batch fast path refreshes every expert against
// the same feature vector, so one staging copy serves the whole pool. f is
// still consulted on the fallback path for unknown model implementations.
func (e *Expert) PredictEnvIntoStaged(dst *EnvPrediction, f *features.Vector, x []float64, sigma *[features.EnvDim]float64) {
	switch m := e.Env.(type) {
	case NormEnvModel:
		m.predictInto(dst, x)
	case VectorEnvModel:
		m.predictInto(dst, x, sigma)
	default:
		*dst = e.Env.Predict(*f)
	}
}

// Set is an ordered collection of experts forming the mixture's pool.
type Set []*Expert

// Validate checks every expert and name uniqueness.
func (s Set) Validate() error {
	if len(s) == 0 {
		return fmt.Errorf("expert: empty expert set")
	}
	seen := make(map[string]bool, len(s))
	for _, e := range s {
		if err := e.Validate(); err != nil {
			return err
		}
		if seen[e.Name] {
			return fmt.Errorf("expert: duplicate expert name %q", e.Name)
		}
		seen[e.Name] = true
	}
	return nil
}

// Names returns the expert names in order.
func (s Set) Names() []string {
	names := make([]string, len(s))
	for i, e := range s {
		names[i] = e.Name
	}
	return names
}

// MaxThreads returns the largest platform cap in the set.
func (s Set) MaxThreads() int {
	maxN := 0
	for _, e := range s {
		if e.MaxThreads > maxN {
			maxN = e.MaxThreads
		}
	}
	return maxN
}
