package experiments

import (
	"fmt"
	"os"

	"moe"
	"moe/internal/sim"
	"moe/internal/stats"
	"moe/internal/trace"
)

// RestartStudy measures what crash recovery is worth: every policy runs the
// same scenario under hardware churn three ways — uninterrupted, crashing
// midway and warm-restoring from a checkpoint directory, and crashing
// midway and cold-restarting with all learned state lost. All three drive
// the policy through the full moe.Runtime path (sanitization, availability
// fallback, write-ahead journaling for the warm variant), so the only
// difference between the rows is what survives the crash. Values are
// speedups over the uninterrupted OpenMP default; a warm row matching the
// uninterrupted row is the durability subsystem's correctness made visible
// (recovery reproduces the pre-crash state exactly), and the gap between
// warm and cold is the price of losing the online-learned state — selector
// weights, expert health, sensor trust — at the worst possible moment.
func (l *Lab) RestartStudy(sc Scale) (*Table, error) {
	return l.restartStudy(sc, DefaultMaxTime)
}

// restartCrashAfter is the decision count at which the crashing variants
// lose their runtime. Early enough that plenty of run remains to feel the
// loss, late enough that the online state is worth something.
const restartCrashAfter = 40

// restartCheckpointEvery is the warm variant's snapshot cadence; between
// snapshots the journal carries recovery.
const restartCheckpointEvery = 25

// restartVariant drives a scenario through a runtime and, at a fixed
// decision count, simulates a crash by discarding it and switching to
// whatever the rebuild hook reconstructs (a warm-restored runtime, or a
// cold fresh one). A nil rebuild never crashes.
type restartVariant struct {
	label   string
	active  sim.Policy
	n       int
	rebuild func() (sim.Policy, error)
	err     error
}

func (v *restartVariant) Name() string { return v.label }

func (v *restartVariant) Decide(d sim.Decision) int {
	if v.rebuild != nil && v.n == restartCrashAfter {
		p, err := v.rebuild()
		if err != nil {
			v.err = err
		} else {
			v.active = p
		}
		v.rebuild = nil
	}
	v.n++
	return v.active.Decide(d)
}

// restartStudy is RestartStudy with the run length exposed for tests.
func (l *Lab) restartStudy(sc Scale, maxTime float64) (*Table, error) {
	cols := append([]PolicyName{PolicyDefault}, BaselinePolicies...)
	variants := []string{"uninterrupted", "warm-restore", "cold-restart"}
	repeats := max(1, sc.Repeats)
	nC, nT, nV := len(cols), len(sc.Targets), len(variants)
	total := nV * nC * nT * repeats

	times, err := grid(l, total, func(i int) (float64, error) {
		ri := i % repeats
		ti := (i / repeats) % nT
		ci := (i / (repeats * nT)) % nC
		vi := i / (repeats * nT * nC)
		target := sc.Targets[ti]
		seed := sc.Seed + uint64(ti)*104729 + uint64(ri)*1000003

		build := func() (*moe.Runtime, error) {
			p, err := l.NewPolicy(cols[ci], target, seed)
			if err != nil {
				return nil, err
			}
			return moe.NewRuntime(p, l.Eval.Cores)
		}
		rt, err := build()
		if err != nil {
			return 0, err
		}
		v := &restartVariant{label: string(cols[ci]), active: rt.SimPolicy()}

		switch variants[vi] {
		case "uninterrupted":
			// No crash; v.rebuild stays nil.
		case "warm-restore":
			dir, err := os.MkdirTemp("", "moe-restart-")
			if err != nil {
				return 0, err
			}
			defer os.RemoveAll(dir)
			// Studies journal thousands of decisions; skipping the
			// per-append fsync keeps the sweep I/O-bound on nothing.
			store, err := moe.OpenCheckpointOptions(dir, moe.CheckpointOptions{DisableSync: true})
			if err != nil {
				return 0, err
			}
			if err := rt.AttachStore(store, restartCheckpointEvery); err != nil {
				return 0, err
			}
			v.rebuild = func() (sim.Policy, error) {
				store.Close() // a real crash drops the fd too
				if err := rt.CheckpointErr(); err != nil {
					return nil, err
				}
				rt2, err := build()
				if err != nil {
					return nil, err
				}
				store2, err := moe.OpenCheckpointOptions(dir, moe.CheckpointOptions{DisableSync: true})
				if err != nil {
					return nil, err
				}
				if _, err := rt2.Resume(store2); err != nil {
					return nil, err
				}
				if rt2.Decisions() != restartCrashAfter {
					return nil, fmt.Errorf("experiments: warm restore recovered %d of %d decisions", rt2.Decisions(), restartCrashAfter)
				}
				return rt2.SimPolicy(), nil
			}
		case "cold-restart":
			v.rebuild = func() (sim.Policy, error) {
				rt2, err := build()
				if err != nil {
					return nil, err
				}
				return rt2.SimPolicy(), nil
			}
		}

		out, err := l.RunWithPolicy(ScenarioSpec{
			Target:   target,
			Workload: []string{"cg"},
			HWFreq:   trace.HighFrequency,
			Seed:     seed,
			MaxTime:  maxTime,
		}, v)
		if err != nil {
			return 0, err
		}
		if v.err != nil {
			return 0, v.err
		}
		return out.ExecTime, nil
	})
	if err != nil {
		return nil, err
	}

	at := func(vi, ci, ti, ri int) float64 {
		return times[((vi*nC+ci)*nT+ti)*repeats+ri]
	}
	t := &Table{
		Title: "Restart — speedup over the uninterrupted default, crash at decision 40",
		Columns: func() []string {
			out := make([]string, nC)
			for i, c := range cols {
				out[i] = string(c)
			}
			return out
		}(),
		Notes: []string{
			"value = uninterrupted default exec time / variant exec time (hardware churn: high frequency)",
			"warm-restore resumes from snapshot + journal replay; cold-restart loses all online state",
			"warm matching uninterrupted is recovery fidelity; warm minus cold is what the checkpoint buys",
		},
	}
	for vi, label := range variants {
		vals := make([]float64, nC)
		for ci := 0; ci < nC; ci++ {
			ratios := make([]float64, 0, nT*repeats)
			for ti := 0; ti < nT; ti++ {
				for ri := 0; ri < repeats; ri++ {
					ratios = append(ratios, at(0, 0, ti, ri)/at(vi, ci, ti, ri))
				}
			}
			vals[ci] = stats.HMean(ratios)
		}
		t.AddRow(label, vals...)
	}
	return t, nil
}
