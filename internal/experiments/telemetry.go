package experiments

import (
	"moe"
	"moe/internal/chaos"
	"moe/internal/telemetry"
	"moe/internal/trace"
)

// TelemetryStudy runs the mixture through the full observable runtime —
// chaos on the observation path, a metrics registry on the sink — and
// tabulates, per target, what the decision-path counters saw: how many
// decisions were served, how many observations the sensor-trust layer
// disbelieved, how often the degradation ladder engaged (reroute,
// OS-default fallback), how many feature values the sanitizers repaired,
// how many quarantine entries occurred, and the decision-latency p50/p99.
// It is the registry exercised end to end on a real workload rather than a
// synthetic one; the counters are deterministic (they mirror the golden
// decision sequence), the latency columns are wall-clock and are not.
func (l *Lab) TelemetryStudy(sc Scale) (*Table, error) {
	return l.telemetryStudy(sc, DefaultMaxTime)
}

// telemetryRow is one target's counter snapshot.
type telemetryRow struct {
	decisions, suspects, reroutes, fallbacks float64
	repaired, quarantines                    float64
	p50us, p99us                             float64
}

// telemetryStudy is TelemetryStudy with the run length exposed for tests.
func (l *Lab) telemetryStudy(sc Scale, maxTime float64) (*Table, error) {
	nT := len(sc.Targets)
	rows, err := grid(l, nT, func(ti int) (telemetryRow, error) {
		target := sc.Targets[ti]
		seed := sc.Seed + uint64(ti)*104729
		p, err := l.NewPolicy(PolicyMixture, target, seed)
		if err != nil {
			return telemetryRow{}, err
		}
		// One fault of every kind on the observation path, so the trust,
		// repair and ladder counters have something to count.
		faults := make([]chaos.ScheduledFault, 0, len(chaos.Kinds()))
		for _, kind := range chaos.Kinds() {
			sf, err := chaos.NewKindFault(kind, l.Eval.Cores)
			if err != nil {
				return telemetryRow{}, err
			}
			faults = append(faults, sf)
		}
		inj, err := chaos.NewInjector(p, seed^0xc0ffee, faults...)
		if err != nil {
			return telemetryRow{}, err
		}
		rt, err := moe.NewRuntime(inj, l.Eval.Cores)
		if err != nil {
			return telemetryRow{}, err
		}
		reg := telemetry.NewRegistry()
		inj.SetMetrics(reg)
		rt.SetTelemetry(telemetry.NewRegistrySink(reg))
		if _, err := l.RunWithPolicy(ScenarioSpec{
			Target:   target,
			Workload: []string{"cg"},
			HWFreq:   trace.LowFrequency,
			Seed:     seed,
			MaxTime:  maxTime,
		}, rt.SimPolicy()); err != nil {
			return telemetryRow{}, err
		}
		counter := func(name string, labels ...string) float64 {
			return float64(reg.Counter(name, "", labels...).Value())
		}
		lat := reg.Histogram("moe_decision_seconds", "", nil)
		return telemetryRow{
			decisions: counter("moe_decisions_total"),
			suspects:  counter("moe_suspect_observations_total"),
			reroutes:  counter("moe_rerouted_decisions_total"),
			fallbacks: counter("moe_fallback_decisions_total"),
			repaired: counter("moe_repaired_values_total", "stage", "runtime") +
				counter("moe_repaired_values_total", "stage", "policy"),
			quarantines: counter("moe_quarantines_total"),
			p50us:       lat.Quantile(0.50) * 1e6,
			p99us:       lat.Quantile(0.99) * 1e6,
		}, nil
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:   "Telemetry — mixture decision-path counters under chaos (one fault of every kind)",
		Columns: []string{"decisions", "suspect", "reroute", "fallback", "repaired", "quarantine", "p50 µs", "p99 µs"},
		Notes: []string{
			"counters from the runtime's metrics registry after one observable run per target",
			"suspect = observations the sensor-trust layer disbelieved; repaired = feature values sanitized",
			"reroute/fallback = degradation-ladder engagements; latency columns are wall-clock (not deterministic)",
		},
	}
	var sum telemetryRow
	for ti, r := range rows {
		t.AddRow(sc.Targets[ti], r.decisions, r.suspects, r.reroutes, r.fallbacks,
			r.repaired, r.quarantines, r.p50us, r.p99us)
		sum.decisions += r.decisions
		sum.suspects += r.suspects
		sum.reroutes += r.reroutes
		sum.fallbacks += r.fallbacks
		sum.repaired += r.repaired
		sum.quarantines += r.quarantines
	}
	t.AddRow("total", sum.decisions, sum.suspects, sum.reroutes, sum.fallbacks,
		sum.repaired, sum.quarantines, 0, 0)
	return t, nil
}
