package exec

import (
	"time"

	"moe/internal/features"
	"moe/internal/sim"
	"moe/internal/stats"
)

// Batched region planning. A host that knows its next k regions up front
// (a pipeline of same-shaped kernels, a work queue drained in chunks) can
// have the policy plan them in one call: one environment sample, one
// sim.BatchPolicy invocation, then the regions execute sequentially with the
// usual per-region measurement. The plan is cheaper, not different — a
// BatchPolicy must decide exactly as the per-region loop would, and for
// policies without batch support ExecuteRegionBatch degrades to exactly
// that loop.
//
// The one semantic difference from k ExecuteRegion calls is inherent to
// planning ahead: all k decisions see the environment and rate as of the
// batch start, not refreshed between regions. Callers pick batch sizes
// small enough that the environment is stable across them — the same
// contract any lookahead planner carries.

// ExecuteRegionBatch plans thread counts for all regions in one policy
// call, then executes them in order. ks and items must have equal length;
// the slices' pairwise elements define the regions. Returns one
// RegionResult per region.
func (t *Tuner) ExecuteRegionBatch(ks []Kernel, items []int) []RegionResult {
	if len(ks) != len(items) {
		panic("exec: ExecuteRegionBatch kernel/items length mismatch")
	}
	if len(ks) == 0 {
		return nil
	}
	env := t.sampler.Sample(t.lastN)
	procs := int(env.Processors)
	now := t.sampler.Elapsed()

	ds := make([]sim.Decision, len(ks))
	for i, k := range ks {
		ds[i] = sim.Decision{
			Time:           now,
			Features:       features.Combine(k.Code(), env),
			Rate:           t.prevRate,
			CurrentThreads: t.lastN,
			MaxThreads:     t.maxN,
			AvailableProcs: procs,
			RegionStart:    true,
			RegionIndex:    t.region + i,
		}
	}
	var ns []int
	if bp, ok := t.policy.(sim.BatchPolicy); ok {
		ns = bp.DecideBatch(ds)
	} else {
		ns = make([]int, len(ds))
		for i, d := range ds {
			ns[i] = t.policy.Decide(d)
		}
	}

	out := make([]RegionResult, len(ks))
	for i, k := range ks {
		n := stats.ClampInt(ns[i], 1, t.maxN)
		start := time.Now()
		RunRegion(k, items[i], n)
		elapsed := time.Since(start)

		rate := 0.0
		if secs := elapsed.Seconds(); secs > 0 {
			rate = float64(items[i]) / secs
		}
		t.prevRate = rate
		t.lastN = n
		t.region++
		t.hist.Add(n)
		if t.regions != nil {
			t.regions.Inc()
			t.workers.Set(float64(n))
			t.rate.Set(rate)
			t.regionLatency.Observe(elapsed.Seconds())
		}
		out[i] = RegionResult{Workers: n, Items: items[i], Duration: elapsed, Rate: rate}
	}
	return out
}
