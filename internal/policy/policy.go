// Package policy implements the adaptive thread-selection baselines the
// paper compares against (§6.3):
//
//   - Default: the OpenMP default — as many threads as there are processors;
//   - Online: a robust hill-climbing scheme that perturbs the thread count
//     and keeps changes that improved observed execution rate (Parcae-style,
//     [24]);
//   - Offline: a single machine-learned model that predicts a thread count
//     from program and system features, with no online adaptation ([11]);
//   - Analytic: an analytical model that periodically executes with two
//     probe thread counts for fixed intervals, fits a speedup model by
//     regression, and commits to its optimum ([28], Sridharan et al.).
//
// All policies implement sim.Policy and are deterministic given their
// construction inputs.
package policy

import (
	"math"

	"moe/internal/features"
	"moe/internal/regress"
	"moe/internal/sim"
	"moe/internal/stats"
	"moe/internal/trace"
)

// Default is the OpenMP 3.0 default policy: one thread per available
// processor, re-read at every control point. It is the baseline of every
// figure in §7.
type Default struct{}

// NewDefault returns the OpenMP default policy.
func NewDefault() *Default { return &Default{} }

// Name implements sim.Policy.
func (*Default) Name() string { return "default" }

// Decide implements sim.Policy.
func (*Default) Decide(d sim.Decision) int { return d.AvailableProcs }

// Online is the hill-climbing adaptive scheme of [24]: every adaptation
// interval it compares the rate achieved since the last change against the
// previous rate, keeps stepping in a direction while it helps, and reverses
// when it hurts. It needs no model but "reacts slowly to the changes and
// hence achieves marginal improvement" (§7.2) and "may stick in local
// optimum" (§2) — behaviour that emerges naturally from the mechanism.
type Online struct {
	step      int
	direction int
	lastRate  float64
	lastN     int
	settled   int
	interval  float64
	nextMove  float64
}

// OnlineAdaptInterval is how often the hill climber takes a step (seconds).
// Real orchestration runtimes need a full measurement epoch per step (long
// enough for a thread-count change to propagate through queues and caches
// before its effect is measurable); this cadence is what makes the scheme
// "slow to react to the changes" (§7.2) and what causes the "delay to reach
// the best thread number" (§2).
const OnlineAdaptInterval = 5.0

// NewOnline returns a fresh hill climber starting from a conservative
// thread count.
func NewOnline() *Online {
	return &Online{step: 1, direction: +1, interval: OnlineAdaptInterval}
}

// Name implements sim.Policy.
func (*Online) Name() string { return "online" }

// Decide implements sim.Policy.
func (o *Online) Decide(d sim.Decision) int {
	if o.lastN == 0 {
		// First decision: start at half the processors — the common
		// conservative initialization for hill climbers — and adapt
		// from there.
		o.lastN = stats.ClampInt(d.AvailableProcs/2, 1, d.MaxThreads)
		o.direction = -1 // contention is the common reason to adapt
		o.nextMove = d.Time + o.interval
		return o.lastN
	}
	if d.Time < o.nextMove || d.Rate <= 0 {
		return stats.ClampInt(o.lastN, 1, d.MaxThreads)
	}
	o.nextMove = d.Time + o.interval
	// Keep direction while improving, reverse on regression; unit steps
	// only, which is what bounds the scheme's reaction speed. A small
	// tolerance keeps noise from flapping the climber.
	const tol = 0.02
	switch {
	case o.lastRate == 0:
		// No baseline yet; keep probing.
	case d.Rate > o.lastRate*(1+tol):
		o.settled = 0
	case d.Rate < o.lastRate*(1-tol):
		o.direction = -o.direction
		o.settled = 0
	default:
		// Plateau: hold for a few intervals, then re-probe so a
		// changed environment is eventually noticed.
		o.step = 1
		o.settled++
		if o.settled < 6 {
			o.lastRate = d.Rate
			return o.lastN
		}
		o.settled = 0
	}
	o.lastRate = d.Rate
	next := stats.ClampInt(o.lastN+o.direction*o.step, 1, d.MaxThreads)
	if next == o.lastN { // pinned at a bound; turn around
		o.direction = -o.direction
		o.step = 1
		next = stats.ClampInt(o.lastN+o.direction*o.step, 1, d.MaxThreads)
	}
	o.lastN = next
	return next
}

// Offline applies a single offline-trained linear model at runtime with no
// relearning ([11]). It is exactly one expert used unconditionally — the
// "one-size-fits-all" monolithic policy the mixture generalizes.
type Offline struct {
	model *regress.Model
	cap   int
}

// NewOffline wraps a trained thread-predictor model (10 features + bias).
// cap bounds predictions to the training platform's core count; 0 means
// uncapped.
func NewOffline(model *regress.Model, cap int) *Offline {
	return &Offline{model: model, cap: cap}
}

// Name implements sim.Policy.
func (*Offline) Name() string { return "offline" }

// Decide implements sim.Policy.
func (p *Offline) Decide(d sim.Decision) int {
	n := int(math.Round(p.model.MustPredict(d.Features.Slice())))
	limit := d.MaxThreads
	if p.cap > 0 && p.cap < limit {
		limit = p.cap
	}
	return stats.ClampInt(n, 1, limit)
}

// Analytic reproduces the state-of-the-art runtime of [28]: it interleaves
// exploration intervals — executing with two probe thread counts while
// measuring the achieved rate — with exploitation periods running the
// thread count a regression over the probes predicts to be best. Decisions
// therefore lag environment changes by up to a full explore/commit cycle,
// the delay visible at t0 in Fig 2.
type Analytic struct {
	rng *trace.RNG

	phase        analyticPhase
	probeN       [2]int
	probeRate    [2]float64
	probeIdx     int
	phaseEnds    float64
	committedN   int
	expectedRate float64
	probeLen     float64
	commitLen    float64
	// probe-window rate accumulation: point samples are noisy, so the
	// model is fitted to the mean rate over each probe window.
	probeSum   float64
	probeCount int
	// committed-phase observed-rate EMA for the deviation check.
	commitRate float64
	commitSeen bool
	// commitStretch grows the commit interval while the environment
	// stays stable, amortizing probe overhead ([28] similarly backs off
	// its re-evaluation when observed behaviour matches the model).
	commitStretch float64
}

type analyticPhase int

const (
	analyticIdle analyticPhase = iota
	analyticProbing
	analyticCommitted
)

// AnalyticOptions tunes the exploration cadence.
type AnalyticOptions struct {
	// ProbeInterval is how long each probe thread count runs (seconds).
	ProbeInterval float64
	// CommitInterval is how long a committed choice is kept before
	// re-exploring (seconds).
	CommitInterval float64
	// Seed drives the random probe choices.
	Seed uint64
}

// NewAnalytic returns the interval-exploration policy. Zero options select
// the defaults (1.5 s probes, 10 s commits).
func NewAnalytic(opts AnalyticOptions) *Analytic {
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = 1
	}
	if opts.CommitInterval <= 0 {
		opts.CommitInterval = 12
	}
	if opts.Seed == 0 {
		opts.Seed = 0x5eed0a0a
	}
	return &Analytic{
		rng:       trace.NewRNG(opts.Seed),
		probeLen:  opts.ProbeInterval,
		commitLen: opts.CommitInterval,
	}
}

// Name implements sim.Policy.
func (*Analytic) Name() string { return "analytic" }

// Decide implements sim.Policy.
func (a *Analytic) Decide(d sim.Decision) int {
	switch a.phase {
	case analyticIdle:
		return a.startProbing(d)

	case analyticProbing:
		if d.Time < a.phaseEnds {
			if d.Rate > 0 {
				a.probeSum += d.Rate
				a.probeCount++
			}
			return a.probeN[a.probeIdx]
		}
		// Probe finished; record the mean rate observed during it.
		if d.Rate > 0 {
			a.probeSum += d.Rate
			a.probeCount++
		}
		if a.probeCount > 0 {
			a.probeRate[a.probeIdx] = a.probeSum / float64(a.probeCount)
		} else {
			a.probeRate[a.probeIdx] = 0
		}
		a.probeSum, a.probeCount = 0, 0
		if a.probeIdx == 0 {
			a.probeIdx = 1
			a.phaseEnds = d.Time + a.probeLen
			return a.probeN[1]
		}
		return a.commit(d)

	case analyticCommitted:
		// Deviation check against a smoothed observed rate: if it
		// falls far from what the model expected, the environment
		// changed — re-explore.
		if d.Rate > 0 {
			if !a.commitSeen {
				a.commitRate = d.Rate
				a.commitSeen = true
			} else {
				a.commitRate += 0.3 * (d.Rate - a.commitRate)
			}
		}
		if a.expectedRate > 0 && a.commitSeen {
			dev := math.Abs(a.commitRate-a.expectedRate) / a.expectedRate
			if dev > 0.5 {
				a.commitStretch = 1
				return a.startProbing(d)
			}
		}
		if d.Time >= a.phaseEnds {
			// Stable commits earn longer exploitation next round.
			if a.commitStretch < 4 {
				a.commitStretch *= 1.5
			}
			return a.startProbing(d)
		}
		return a.committedN
	}
	return stats.ClampInt(d.AvailableProcs, 1, d.MaxThreads)
}

// startProbing picks two distinct randomly drawn probe thread counts ([28]
// explores with two randomly chosen thread numbers). The draws center on
// the current operating point — the runtime perturbs its degree of
// parallelism rather than jumping to arbitrary counts — with occasional
// wide probes so a drastically changed environment is still discovered.
func (a *Analytic) startProbing(d sim.Decision) int {
	maxN := stats.ClampInt(d.AvailableProcs, 1, d.MaxThreads)
	center := a.committedN
	if center == 0 {
		center = (maxN + 1) / 2
	}
	var lo, hi int
	if a.rng.Float64() < 0.25 {
		// Wide probe: cover the whole feasible range.
		lo = a.rng.IntRange(1, (maxN+1)/2)
		hi = a.rng.IntRange((maxN+1)/2, maxN)
	} else {
		spread := maxN / 4
		if spread < 2 {
			spread = 2
		}
		lo = stats.ClampInt(center-a.rng.IntRange(1, spread), 1, maxN)
		hi = stats.ClampInt(center+a.rng.IntRange(1, spread), 1, maxN)
	}
	if hi == lo {
		hi = stats.ClampInt(lo+1, 1, maxN)
		if hi == lo {
			lo = stats.ClampInt(hi-1, 1, maxN)
		}
	}
	a.probeN = [2]int{lo, hi}
	a.probeIdx = 0
	a.probeSum, a.probeCount = 0, 0
	a.commitSeen = false
	a.phase = analyticProbing
	a.phaseEnds = d.Time + a.probeLen
	return a.probeN[0]
}

// commit fits the scalability model to the two probes and exploits it.
// With two (n, rate) observations the paper's regression reduces to fitting
// rate(n) = c·(s + (1−s)/n)⁻¹-style behaviour; we fit the equivalent
// two-parameter linearization 1/rate = α + β/n and pick the feasible n
// maximizing the modelled rate net of a linear oversubscription discount.
func (a *Analytic) commit(d sim.Decision) int {
	n0, n1 := float64(a.probeN[0]), float64(a.probeN[1])
	r0, r1 := a.probeRate[0], a.probeRate[1]
	maxN := stats.ClampInt(d.AvailableProcs, 1, d.MaxThreads)
	if r0 <= 0 || r1 <= 0 || a.probeN[0] == a.probeN[1] {
		// Degenerate probes; fall back to the better of the two.
		a.committedN = a.probeN[0]
		if r1 > r0 {
			a.committedN = a.probeN[1]
		}
		a.expectedRate = math.Max(r0, r1)
	} else {
		// 1/rate = α + β/n.
		inv0, inv1 := 1/r0, 1/r1
		beta := (inv0 - inv1) / (1/n0 - 1/n1)
		alpha := inv0 - beta/n0
		// The two-point regression is only trusted near the probed
		// range; extrapolating far above the larger probe invites
		// oversubscription the model cannot see.
		hiProbe := a.probeN[0]
		if a.probeN[1] > hiProbe {
			hiProbe = a.probeN[1]
		}
		if cap := hiProbe + hiProbe/2 + 1; cap < maxN {
			maxN = cap
		}
		bestN, bestRate := a.probeN[0], r0
		for n := 1; n <= maxN; n++ {
			inv := alpha + beta/float64(n)
			if inv <= 0 {
				continue
			}
			rate := 1 / inv
			// Oversubscription discount: spawning beyond the
			// processors visibly idle discounts the modelled gain.
			if ext := d.Features[features.WorkloadThreads]; float64(n)+ext > float64(d.AvailableProcs) {
				over := (float64(n) + ext - float64(d.AvailableProcs)) / float64(d.AvailableProcs)
				rate /= 1 + 0.3*over
			}
			if rate > bestRate {
				bestN, bestRate = n, rate
			}
		}
		a.committedN = bestN
		a.expectedRate = bestRate
	}
	if a.commitStretch < 1 {
		a.commitStretch = 1
	}
	a.phase = analyticCommitted
	a.phaseEnds = d.Time + a.commitLen*a.commitStretch
	return a.committedN
}

// Oracle consults the simulator's ground-truth rate model at every control
// point; it is not attainable by a real runtime and exists for the
// ablation benches (how close does the mixture get to perfect selection?).
type Oracle struct {
	// BestFn returns the oracle thread count for the current decision;
	// wired up by the experiment harness which has simulator access.
	BestFn func(d sim.Decision) int
}

// Name implements sim.Policy.
func (*Oracle) Name() string { return "oracle" }

// Decide implements sim.Policy.
func (o *Oracle) Decide(d sim.Decision) int {
	if o.BestFn == nil {
		return d.AvailableProcs
	}
	return o.BestFn(d)
}
