package sim

import (
	"testing"

	"moe/internal/trace"
	"moe/internal/workload"
)

// benchScenario is the canonical stepping-loop workload: three catalog
// programs looping forever on the 32-core evaluation machine with
// low-frequency hardware churn. No target and a huge MaxTime means the
// engine never terminates on its own, so benchmarks can drive the loop
// for exactly as many operations as they need.
func benchScenario(tb testing.TB) Scenario {
	tb.Helper()
	machine := Eval32()
	hw, err := trace.GenerateHardware(trace.NewRNG(7), machine.Cores, trace.LowFrequency, 1e6)
	if err != nil {
		tb.Fatal(err)
	}
	machine.Hardware = hw
	var specs []ProgramSpec
	for i, name := range []string{"lu", "mg", "cg"} {
		p, err := workload.ByName(name)
		if err != nil {
			tb.Fatal(err)
		}
		specs = append(specs, ProgramSpec{Program: p.Clone(), Policy: FixedThreads(8 + 4*i), Loop: true})
	}
	return Scenario{Machine: machine, Programs: specs, MaxTime: 1e9}
}

// BenchmarkRunFixed100s times sim.Run end to end over 100 virtual seconds
// (1000 steps at the default DT).
func BenchmarkRunFixed100s(b *testing.B) {
	s := benchScenario(b)
	s.MaxTime = 100
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunEvent100s is BenchmarkRunFixed100s under the event-horizon
// engine; the ratio of the two is the end-to-end speedup.
func BenchmarkRunEvent100s(b *testing.B) {
	s := benchScenario(b)
	s.MaxTime = 100
	s.Stepping = SteppingEvent
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStepLoopFixed isolates the reference stepping loop: one op is
// one dt step of virtual time on a warm engine (setup excluded), the unit
// the PR's ≥3x / 0 allocs acceptance criteria are stated in.
func BenchmarkStepLoopFixed(b *testing.B) {
	e, err := newEngine(benchScenario(b))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for step := 0; step < b.N; step++ {
		if e.processStep(step) {
			b.Fatal("benchmark scenario terminated")
		}
	}
}

// BenchmarkStepLoopEvent drives the event-horizon loop across the same
// virtual-time grid: one op is still one dt step of virtual time, but the
// engine only touches the interesting ones and leaps the rest, so ns/op is
// directly comparable with BenchmarkStepLoopFixed.
func BenchmarkStepLoopEvent(b *testing.B) {
	s := benchScenario(b)
	s.Stepping = SteppingEvent
	e, err := newEngine(s)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for step := 0; step < b.N; {
		if e.processStep(step) {
			b.Fatal("benchmark scenario terminated")
		}
		next := e.nextEventStep(step)
		if next > step+1 {
			e.leap(step, next)
		}
		step = next
	}
}
