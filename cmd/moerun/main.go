// Command moerun runs a single target × workload × policy scenario and
// prints the outcome, optionally with a Fig 2-style thread timeline.
//
// Usage:
//
//	moerun -target lu -workload mg -policy mixture
//	moerun -target cg -workload is,cg -policy analytic -freq high -timeline
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"moe/internal/core"
	"moe/internal/experiments"
	"moe/internal/trace"
	"moe/internal/training"
	"moe/internal/workload"
)

func main() {
	target := flag.String("target", "lu", "target program (see moetrace -programs)")
	wl := flag.String("workload", "mg", "comma-separated workload programs (empty = isolated)")
	policyName := flag.String("policy", "mixture", "policy: default|online|offline|analytic|mixture|oracle")
	freq := flag.String("freq", "low", "hardware change frequency: low|high|static")
	seed := flag.Uint64("seed", 42, "scenario seed")
	timeline := flag.Bool("timeline", false, "print the thread-choice timeline")
	flag.Parse()

	var hwFreq trace.Frequency
	switch *freq {
	case "low":
		hwFreq = trace.LowFrequency
	case "high":
		hwFreq = trace.HighFrequency
	case "static":
		hwFreq = trace.Static
	default:
		fmt.Fprintf(os.Stderr, "moerun: unknown frequency %q\n", *freq)
		os.Exit(2)
	}
	if _, err := workload.ByName(*target); err != nil {
		fmt.Fprintf(os.Stderr, "moerun: %v (programs: %s)\n", err, strings.Join(workload.Names(), ", "))
		os.Exit(2)
	}

	fmt.Fprintln(os.Stderr, "moerun: training experts…")
	lab, err := experiments.NewLab(training.Config{Seed: *seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "moerun: %v\n", err)
		os.Exit(1)
	}

	var programs []string
	if *wl != "" {
		programs = strings.Split(*wl, ",")
	}
	spec := experiments.ScenarioSpec{
		Target:        *target,
		Workload:      programs,
		HWFreq:        hwFreq,
		Seed:          *seed,
		RecordSamples: *timeline,
	}
	base, err := lab.Run(spec, experiments.PolicyDefault)
	if err != nil {
		fmt.Fprintf(os.Stderr, "moerun: baseline: %v\n", err)
		os.Exit(1)
	}
	out, err := lab.Run(spec, experiments.PolicyName(*policyName))
	if err != nil {
		fmt.Fprintf(os.Stderr, "moerun: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("target %s with workload [%s], %s hardware changes\n", *target, *wl, *freq)
	fmt.Printf("  default : %8.1f s\n", base.ExecTime)
	fmt.Printf("  %-8s: %8.1f s  (%.2fx speedup)\n", *policyName, out.ExecTime, base.ExecTime/out.ExecTime)
	fmt.Printf("  workload throughput vs default: %.2fx\n", out.WorkloadThroughput/base.WorkloadThroughput)

	if mix, ok := out.Policy.(*core.Mixture); ok {
		st := mix.Snapshot()
		fmt.Printf("  expert selection:")
		for i, f := range st.SelectionFraction {
			fmt.Printf(" E%d=%.0f%%", i+1, 100*f)
		}
		fmt.Printf("  env accuracy=%.0f%%\n", 100*st.MixtureEnvAccuracy)
	}

	if *timeline {
		tr, err := out.Result.Target()
		if err != nil {
			fmt.Fprintf(os.Stderr, "moerun: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("\ntime    avail  wl-threads  threads  region")
		for i, s := range tr.Samples {
			if i%10 != 0 {
				continue
			}
			fmt.Printf("%6.1f  %5d  %10d  %7d  %s\n", s.Time, s.Available, s.WorkldThr, s.Threads, s.RegionName)
		}
	}
}
