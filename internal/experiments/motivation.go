package experiments

import (
	"fmt"
	"strings"

	"moe/internal/core"
	"moe/internal/sim"
	"moe/internal/trace"
	"moe/internal/training"
	"moe/internal/workload"
)

// TimelinePoint is one sample of the Fig 2 timelines: the environment plus
// each policy's thread choice at that moment.
type TimelinePoint struct {
	Time            float64
	WorkloadThreads int
	Processors      int
	Threads         map[PolicyName]int
}

// Motivation reproduces the §3 case study: target lu co-executing with
// workload mg, replaying the window of the live trace around the 175,000th
// second scaled to the evaluation machine. It returns the per-policy thread
// timelines (Fig 2) and the resulting speedups over the default (Fig 3).
// The policy set matches the figure: analytic, the two §3 experts, and the
// two-expert mixture.
func (l *Lab) Motivation(seed uint64) ([]TimelinePoint, *Table, error) {
	const target, wl = "lu", "mg"

	// Scaled-down live window, as §3 describes ("we replicated this
	// pattern in a scaled down experiment").
	live, err := trace.GenerateLive(trace.NewRNG(seed), trace.DefaultLiveConfig())
	if err != nil {
		return nil, nil, err
	}
	window := live.Window(175000-300, 175000+900)
	hw, _, err := trace.ScaleTo(window, l.Eval.Cores)
	if err != nil {
		return nil, nil, err
	}

	m, err := l.models(target)
	if err != nil {
		return nil, nil, err
	}
	expertPolicy := func(idx int) (sim.Policy, error) {
		if idx < 0 || idx >= len(m.set2) {
			return nil, fmt.Errorf("experiments: motivation expert %d out of range", idx)
		}
		return core.NewMixture(m.set2[idx:idx+1], core.Options{})
	}

	type entry struct {
		name  PolicyName
		build func(seed uint64) (sim.Policy, error)
	}
	policies := []entry{
		{PolicyDefault, func(s uint64) (sim.Policy, error) { return l.NewPolicy(PolicyDefault, target, s) }},
		{PolicyAnalytic, func(s uint64) (sim.Policy, error) { return l.NewPolicy(PolicyAnalytic, target, s) }},
		{"expert1", func(uint64) (sim.Policy, error) { return expertPolicy(0) }},
		{"expert2", func(uint64) (sim.Policy, error) { return expertPolicy(1) }},
		{PolicyMixture, func(uint64) (sim.Policy, error) { return training.NewMixtureFromPrior(m.prior2, m.set2) }},
	}

	type policyRun struct {
		samples []sim.Sample
		exec    float64
	}
	runs, err := grid(l, len(policies), func(i int) (policyRun, error) {
		p, err := policies[i].build(seed)
		if err != nil {
			return policyRun{}, err
		}
		run, err := l.runOnTrace(target, []string{wl}, hw, p, seed, true)
		if err != nil {
			return policyRun{}, err
		}
		tr, err := run.Result.Target()
		if err != nil {
			return policyRun{}, err
		}
		return policyRun{tr.Samples, run.ExecTime}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	timelines := make(map[PolicyName][]sim.Sample, len(policies))
	execTimes := make(map[PolicyName]float64, len(policies))
	for i, e := range policies {
		timelines[e.name] = runs[i].samples
		execTimes[e.name] = runs[i].exec
	}

	// Merge the per-policy samples onto a common time grid (Fig 2 plots
	// them against one shared x-axis).
	var points []TimelinePoint
	ref := timelines[PolicyDefault]
	for i, s := range ref {
		pt := TimelinePoint{
			Time:            s.Time,
			WorkloadThreads: s.WorkldThr,
			Processors:      s.Available,
			Threads:         make(map[PolicyName]int, len(policies)),
		}
		for _, e := range policies {
			samples := timelines[e.name]
			if i < len(samples) {
				pt.Threads[e.name] = samples[i].Threads
			}
		}
		points = append(points, pt)
	}

	t := &Table{
		Title:   "Fig 3 — motivation case study (lu vs mg): speedup over default",
		Columns: []string{"speedup"},
	}
	for _, e := range policies[1:] {
		t.AddRow(string(e.name), execTimes[PolicyDefault]/execTimes[e.name])
	}
	return points, t, nil
}

// runOnTrace runs a single scenario with a caller-fixed hardware trace
// (ScenarioSpec regenerates hardware from its seed, so fixed-trace
// experiments bypass it).
func (l *Lab) runOnTrace(target string, wl []string, hw *trace.HardwareTrace, p sim.Policy, seed uint64, record bool) (*RunOutcome, error) {
	machine := l.Eval
	machine.Hardware = hw
	return l.runDirect(target, wl, machine, p, seed, record)
}

// runDirect assembles and runs a scenario without trace generation.
func (l *Lab) runDirect(target string, wl []string, machine sim.MachineConfig, p sim.Policy, seed uint64, record bool) (*RunOutcome, error) {
	prog, err := workload.ByName(target)
	if err != nil {
		return nil, err
	}
	specs := []sim.ProgramSpec{{Program: prog.Clone(), Policy: p, Target: true}}
	for i, w := range wl {
		wp, err := workload.ByName(w)
		if err != nil {
			return nil, err
		}
		wp = wp.Clone()
		dp, err := l.NewPolicy(PolicyDefault, w, seed+uint64(i))
		if err != nil {
			return nil, err
		}
		specs = append(specs, sim.ProgramSpec{Program: wp, Policy: dp, Loop: true})
	}
	res, err := sim.Run(sim.Scenario{
		Stepping:      l.Stepping,
		Machine:       machine,
		Programs:      specs,
		MaxTime:       DefaultMaxTime,
		RateNoise:     DefaultRateNoise,
		Seed:          seed,
		RecordSamples: record,
	})
	if err != nil {
		return nil, err
	}
	tr, err := res.Target()
	if err != nil {
		return nil, err
	}
	exec, err := effectiveExecTime(tr, prog.TotalWork(), DefaultMaxTime)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s under %s: %w", target, p.Name(), err)
	}
	return &RunOutcome{ExecTime: exec, WorkloadThroughput: res.WorkloadThroughput(), Policy: p, Result: res}, nil
}

// FormatTimeline renders Fig 2 as text: one line per sample window showing
// the environment and each policy's thread choice.
func FormatTimeline(points []TimelinePoint, every int) string {
	if every < 1 {
		every = 1
	}
	var b strings.Builder
	b.WriteString("time    procs  wl-threads  default  analytic  expert1  expert2  mixture\n")
	for i, pt := range points {
		if i%every != 0 {
			continue
		}
		fmt.Fprintf(&b, "%6.1f  %5d  %10d  %7d  %8d  %7d  %7d  %7d\n",
			pt.Time, pt.Processors, pt.WorkloadThreads,
			pt.Threads[PolicyDefault], pt.Threads[PolicyAnalytic],
			pt.Threads["expert1"], pt.Threads["expert2"], pt.Threads[PolicyMixture])
	}
	return b.String()
}
