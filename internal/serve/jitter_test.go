package serve

import (
	"testing"
	"time"

	"moe/internal/checkpoint"
)

// TestTokenBucketPendingHints pins the concurrent-denial fix at the
// capacity edge: k callers denied in the same refill window must be hinted
// to k distinct future slots — each hint an upper bound that, when honored,
// finds a token waiting — instead of all being sent back to fight over the
// first token.
func TestTokenBucketPendingHints(t *testing.T) {
	now := time.Unix(3000, 0)
	b := newTokenBucket(10, 1) // 10/s, burst 1: one token, 100ms apart
	if ok, _ := b.take(now); !ok {
		t.Fatal("burst token refused")
	}
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 300 * time.Millisecond}
	var hints []time.Duration
	for i := range want {
		ok, retry := b.take(now)
		if ok {
			t.Fatalf("deny %d: admitted with no tokens", i)
		}
		hints = append(hints, retry)
	}
	for i := range want {
		if hints[i] != want[i] {
			t.Fatalf("hint %d = %v, want %v (hints must spread across callers)", i, hints[i], want[i])
		}
	}
	// Each caller returning exactly at its hint is admitted first try.
	for i, h := range hints {
		if ok, retry := b.take(now.Add(h)); !ok {
			t.Fatalf("caller %d honored its %v hint and was refused again (next hint %v)", i, h, retry)
		}
	}
	// Idle long enough to refill to burst: the ghost callers that never
	// came back stop padding hints.
	idle := now.Add(10 * time.Second)
	if ok, _ := b.take(idle); !ok {
		t.Fatal("take after idle refused")
	}
	if ok, retry := b.take(idle); ok || retry != 100*time.Millisecond {
		t.Fatalf("hint after idle reset = %v (ok=%v), want 100ms — pending must reset at full bucket", retry, ok)
	}
}

// TestJitterSpread pins the Retry-After jitter stream: deterministic per
// seed, bounded to [d, 1.5d), and actually spreading (a cohort of hints
// must not collapse onto one instant).
func TestJitterSpread(t *testing.T) {
	const d = 100 * time.Millisecond
	a, b := newJitter(7), newJitter(7)
	other := newJitter(8)
	seen := make(map[time.Duration]int)
	divergent := false
	for i := 0; i < 1000; i++ {
		got := a.spread(d)
		if got2 := b.spread(d); got2 != got {
			t.Fatalf("draw %d: same seed diverged (%v vs %v)", i, got, got2)
		}
		if other.spread(d) != got {
			divergent = true
		}
		if got < d || got >= d+d/2 {
			t.Fatalf("draw %d: spread(%v) = %v outside [d, 1.5d)", i, d, got)
		}
		seen[got]++
	}
	if !divergent {
		t.Fatal("distinct seeds produced identical streams")
	}
	if len(seen) < 900 {
		t.Fatalf("1000 draws landed on only %d distinct hints — cohort would retry in lockstep", len(seen))
	}
	if j := newJitter(1); j.spread(0) != 0 || j.spread(-time.Second) != -time.Second {
		t.Fatal("non-positive hints must pass through unjittered")
	}
}

// TestShedHintsJittered proves every refusal leaving the server's shed path
// carries a jittered hint: same base, different wire values, never below
// the base promise.
func TestShedHintsJittered(t *testing.T) {
	srv, err := NewServer(Config{JitterSeed: 42})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := 500 * time.Millisecond
	seen := make(map[time.Duration]bool)
	for i := 0; i < 16; i++ {
		e := srv.shed("test-reason", 503, "x", base)
		if e.retryAfter < base || e.retryAfter >= base+base/2 {
			t.Fatalf("shed hint %v outside [base, 1.5*base)", e.retryAfter)
		}
		seen[e.retryAfter] = true
	}
	if len(seen) < 8 {
		t.Fatalf("16 sheds produced only %d distinct hints", len(seen))
	}
}

// TestDedupWindowBounds pins the window container itself: FIFO eviction at
// capacity, refresh-in-place, and load keeping only the newest entries.
func TestDedupWindowBounds(t *testing.T) {
	w := newDedupWindow(3)
	for i, id := range []string{"a", "b", "c", "d"} {
		w.add(checkpoint.DedupEntry{ID: id, Decisions: i + 1, Threads: []int{i}})
	}
	if w.len() != 3 {
		t.Fatalf("len = %d, want 3", w.len())
	}
	if _, ok := w.lookup("a"); ok {
		t.Fatal("oldest entry survived past capacity")
	}
	if e, ok := w.lookup("d"); !ok || e.Decisions != 4 {
		t.Fatal("newest entry missing")
	}
	// Refresh does not grow the window or evict.
	w.add(checkpoint.DedupEntry{ID: "b", Decisions: 9, Threads: []int{9}})
	if w.len() != 3 {
		t.Fatalf("refresh grew the window to %d", w.len())
	}
	if e, _ := w.lookup("b"); e.Decisions != 9 {
		t.Fatal("refresh did not update the entry")
	}
	// entries round-trips through load; overlong loads keep the newest cap.
	w2 := newDedupWindow(2)
	w2.load(w.entries())
	if w2.len() != 2 {
		t.Fatalf("load kept %d entries, want cap 2", w2.len())
	}
	if _, ok := w2.lookup("b"); ok {
		t.Fatal("load kept the oldest entry past cap")
	}
	if _, ok := w2.lookup("c"); !ok {
		t.Fatal("load dropped a newest-cap entry")
	}
	// Mutating a returned entry must not alias the window.
	e, _ := w2.lookup("d")
	if len(e.Threads) > 0 {
		e.Threads[0] = 77
		if e2, _ := w2.lookup("d"); e2.Threads[0] == 77 {
			t.Fatal("lookup aliases window storage")
		}
	}
	// Disabled window: no-ops.
	off := newDedupWindow(0)
	off.add(checkpoint.DedupEntry{ID: "x"})
	if _, ok := off.lookup("x"); ok || off.len() != 0 {
		t.Fatal("disabled window retained entries")
	}
}
