module moe

go 1.22
