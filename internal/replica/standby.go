package replica

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"moe/internal/atomicio"
	"moe/internal/checkpoint"
	"moe/internal/telemetry"
)

// tenantIDRe matches the serving layer's tenant grammar; the standby
// validates independently because tenant IDs become directory names here.
var tenantIDRe = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// termFile persists the standby's fencing term across restarts, as a bare
// decimal. Losing it would let a deposed primary re-fence a restarted
// standby backwards.
const termFile = "replica-term"

// Standby receives replication groups into per-tenant checkpoint
// directories under root, and can be promoted: promotion bumps and
// persists the fencing term, refuses all further shipments, and leaves
// every tenant directory one Recover away from serving.
type Standby struct {
	root string
	sync bool
	logf func(format string, args ...any)

	mu       sync.Mutex
	term     uint64
	promoted atomic.Bool
	tenants  map[string]*standbyTenant

	applied   *telemetry.Counter
	applyErrs *telemetry.Counter
	rejected  *telemetry.Counter
	termG     *telemetry.Gauge
	tenantsG  *telemetry.Gauge
}

type standbyTenant struct {
	mu sync.Mutex
	ap *checkpoint.Applier
}

// NewStandby opens (creating root if needed) a standby that applies into
// <root>/<tenant>/. With sync, applied artifacts are fsynced — standby
// durability matches a syncing primary. reg and logf may be nil.
func NewStandby(root string, sync bool, reg *telemetry.Registry, logf func(string, ...any)) (*Standby, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("replica: standby root: %w", err)
	}
	s := &Standby{
		root:    root,
		sync:    sync,
		logf:    logf,
		tenants: make(map[string]*standbyTenant),
	}
	if data, err := os.ReadFile(filepath.Join(root, termFile)); err == nil {
		if term, perr := strconv.ParseUint(strings.TrimSpace(string(data)), 10, 64); perr == nil {
			s.term = term
		} else {
			return nil, fmt.Errorf("replica: corrupt %s: %w", termFile, perr)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("replica: read %s: %w", termFile, err)
	}
	if reg != nil {
		s.applied = reg.Counter("replica_applied_total", "Shipments applied into standby lineages.", "", "")
		s.applyErrs = reg.Counter("replica_apply_errors_total", "Shipments that failed to apply.", "", "")
		s.rejected = reg.Counter("replica_rejected_total", "Ship requests refused (fencing or ordering).", "", "")
		s.termG = reg.Gauge("replica_term", "This standby's fencing term.", "role", "standby")
		s.termG.Set(float64(s.term))
		s.tenantsG = reg.Gauge("replica_tenants", "Tenants with replicated lineages.", "", "")
	}
	return s, nil
}

// Term returns the highest fencing term this standby has seen or minted.
func (s *Standby) Term() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.term
}

// Promoted reports whether Promote has run.
func (s *Standby) Promoted() bool { return s.promoted.Load() }

// Root returns the standby's lineage root directory.
func (s *Standby) Root() string { return s.root }

// persistTermLocked durably records the term; callers hold s.mu.
func (s *Standby) persistTermLocked() error {
	path := filepath.Join(s.root, termFile)
	if err := atomicio.WriteFile(path, []byte(strconv.FormatUint(s.term, 10)+"\n"), 0o644); err != nil {
		return fmt.Errorf("replica: persist term: %w", err)
	}
	s.termG.Set(float64(s.term))
	return nil
}

// Promote fences the replication stream and returns the new term. It is
// idempotent. After Promote returns, no shipment — in flight or future —
// can modify any tenant directory: the promoted flag is checked again
// under each tenant's apply lock, and every applier is closed.
func (s *Standby) Promote() (uint64, error) {
	s.mu.Lock()
	if s.promoted.Load() {
		term := s.term
		s.mu.Unlock()
		return term, nil
	}
	s.term++
	if err := s.persistTermLocked(); err != nil {
		s.term--
		s.mu.Unlock()
		return 0, err
	}
	s.promoted.Store(true)
	term := s.term
	tenants := make([]*standbyTenant, 0, len(s.tenants))
	for _, st := range s.tenants {
		tenants = append(tenants, st)
	}
	s.mu.Unlock()

	// Taking each tenant's apply lock waits out any in-flight group; the
	// promoted flag stops everything queued behind it.
	for _, st := range tenants {
		st.mu.Lock()
		if st.ap != nil {
			if err := st.ap.Close(); err != nil {
				s.logf("replica: close applier on promote: %v", err)
			}
			st.ap = nil
		}
		st.mu.Unlock()
	}
	s.logf("replica: promoted at term %d", term)
	return term, nil
}

// TenantDirs lists the tenant lineage directories currently on disk,
// sorted. A promoting server resumes each one.
func (s *Standby) TenantDirs() ([]string, error) {
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() && tenantIDRe.MatchString(e.Name()) {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

func (s *Standby) tenant(id string) *standbyTenant {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.tenants[id]
	if st == nil {
		st = &standbyTenant{}
		s.tenants[id] = st
		s.tenantsG.Set(float64(len(s.tenants)))
	}
	return st
}

// Handler returns the standby's HTTP handler; mount it at the server root
// (it routes /replica/v1/*).
func (s *Standby) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(shipPath, s.handleShip)
	mux.HandleFunc(statusPath, s.handleStatus)
	return mux
}

func (s *Standby) handleShip(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	tenant := r.URL.Query().Get("tenant")
	if !tenantIDRe.MatchString(tenant) {
		http.Error(w, "bad tenant", http.StatusBadRequest)
		return
	}
	reqTerm, err := strconv.ParseUint(r.Header.Get(termHeader), 10, 64)
	if err != nil {
		http.Error(w, "bad term", http.StatusBadRequest)
		return
	}

	// Fencing: a promoted standby, or one that has seen a higher term,
	// refuses. A request at a *higher* term advances ours durably — the
	// sender is a newer primary than we knew about.
	s.mu.Lock()
	if s.promoted.Load() || reqTerm < s.term {
		cur := s.term
		s.mu.Unlock()
		s.rejected.Inc()
		w.Header().Set(termHeader, strconv.FormatUint(cur, 10))
		http.Error(w, "fenced", http.StatusForbidden)
		return
	}
	if reqTerm > s.term {
		s.term = reqTerm
		if err := s.persistTermLocked(); err != nil {
			// Keep the raised term in memory but refuse the group: acking
			// it would promise durability the term file does not have.
			s.mu.Unlock()
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	s.mu.Unlock()

	body, err := io.ReadAll(io.LimitReader(r.Body, maxShipBody+1))
	if err != nil {
		http.Error(w, "read body", http.StatusBadRequest)
		return
	}
	if len(body) > maxShipBody {
		http.Error(w, "group too large", http.StatusRequestEntityTooLarge)
		return
	}
	group, err := checkpoint.DecodeShipments(body)
	if err != nil {
		s.applyErrs.Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	st := s.tenant(tenant)
	st.mu.Lock()
	defer st.mu.Unlock()
	// Promotion may have landed while we waited for the lock: nothing may
	// touch the directories anymore.
	if s.promoted.Load() {
		s.rejected.Inc()
		w.Header().Set(termHeader, strconv.FormatUint(s.Term(), 10))
		http.Error(w, "fenced", http.StatusForbidden)
		return
	}
	if st.ap == nil {
		ap, err := checkpoint.NewApplier(filepath.Join(s.root, tenant), s.sync)
		if err != nil {
			s.applyErrs.Inc()
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		st.ap = ap
	}
	if r.Header.Get(fullHeader) == "1" {
		if err := st.ap.Reset(); err != nil {
			s.applyErrs.Inc()
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	for i, sh := range group {
		if err := st.ap.Apply(sh); err != nil {
			s.applyErrs.Inc()
			status := http.StatusInternalServerError
			switch {
			case errors.Is(err, checkpoint.ErrOutOfOrder):
				status = http.StatusConflict
			case errors.Is(err, checkpoint.ErrBadRecord):
				status = http.StatusBadRequest
			}
			s.logf("replica: tenant %s: apply %d/%d: %v", tenant, i, len(group), err)
			http.Error(w, err.Error(), status)
			return
		}
		s.applied.Inc()
	}
	w.WriteHeader(http.StatusOK)
}

// StatusTenant is one tenant's applied position in a status report.
type StatusTenant struct {
	Run     int `json:"run"`
	Epoch   int `json:"epoch"`
	Records int `json:"records"`
}

// Status is the standby's replication state, served as JSON.
type Status struct {
	Term     uint64                  `json:"term"`
	Promoted bool                    `json:"promoted"`
	Tenants  map[string]StatusTenant `json:"tenants"`
}

func (s *Standby) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := Status{Term: s.Term(), Promoted: s.promoted.Load(), Tenants: map[string]StatusTenant{}}
	s.mu.Lock()
	tenants := make(map[string]*standbyTenant, len(s.tenants))
	for id, t := range s.tenants {
		tenants[id] = t
	}
	s.mu.Unlock()
	for id, t := range tenants {
		t.mu.Lock()
		if t.ap != nil {
			run, epoch, records := t.ap.Tip()
			st.Tenants[id] = StatusTenant{Run: run, Epoch: epoch, Records: records}
		}
		t.mu.Unlock()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}
