package regress

import (
	"errors"
	"fmt"
	"math"
)

// Metrics summarizes prediction quality over a validation set.
type Metrics struct {
	MAE      float64 // mean absolute error
	RMSE     float64 // root mean squared error
	R2       float64 // coefficient of determination
	Accuracy float64 // fraction of predictions within Tolerance of truth
	N        int     // number of validation samples
}

// Tolerance is the relative error within which a prediction counts as
// "accurate" for the Accuracy metric. The paper reports environment
// predictors as "accurate ~80% of the time" with accuracy measured as the
// normalized difference between observed and predicted environment
// (Fig 15a); 15% relative tolerance reproduces that notion.
const Tolerance = 0.15

// Evaluate scores a fitted model against samples.
func Evaluate(m *Model, samples []Sample) (Metrics, error) {
	if len(samples) == 0 {
		return Metrics{}, ErrNoData
	}
	var sumAbs, sumSq, sumY float64
	accurate := 0
	for _, s := range samples {
		sumY += s.Y
	}
	meanY := sumY / float64(len(samples))
	var ssTot, ssRes float64
	for i, s := range samples {
		pred, err := m.Predict(s.X)
		if err != nil {
			return Metrics{}, fmt.Errorf("regress: evaluating sample %d: %w", i, err)
		}
		err2 := pred - s.Y
		sumAbs += math.Abs(err2)
		sumSq += err2 * err2
		ssRes += err2 * err2
		d := s.Y - meanY
		ssTot += d * d
		if withinTolerance(pred, s.Y) {
			accurate++
		}
	}
	n := float64(len(samples))
	metrics := Metrics{
		MAE:      sumAbs / n,
		RMSE:     math.Sqrt(sumSq / n),
		Accuracy: float64(accurate) / n,
		N:        len(samples),
	}
	if ssTot > 0 {
		metrics.R2 = 1 - ssRes/ssTot
	} else if ssRes == 0 {
		metrics.R2 = 1
	}
	return metrics, nil
}

// withinTolerance reports whether pred is within the relative Tolerance of
// truth (absolute tolerance of Tolerance near zero truth values).
func withinTolerance(pred, truth float64) bool {
	scale := math.Abs(truth)
	if scale < 1 {
		scale = 1
	}
	return math.Abs(pred-truth) <= Tolerance*scale
}

// GroupKeyFn assigns each sample to a cross-validation group. The paper
// uses leave-one-out at *program* granularity (§5.2.3: "if we are trying to
// predict the number of threads for program bt, we ensure that bt is not
// part of the training set"); the key is typically the program name index.
type GroupKeyFn func(i int) string

// LeaveOneOut runs leave-one-group-out cross validation: for each distinct
// group, fit on all other groups and evaluate on the held-out group. The
// returned metrics are aggregated over all held-out predictions.
func LeaveOneOut(samples []Sample, key GroupKeyFn, opts Options) (Metrics, error) {
	if len(samples) == 0 {
		return Metrics{}, ErrNoData
	}
	if key == nil {
		return Metrics{}, errors.New("regress: nil group key function")
	}
	groups := make(map[string][]int)
	for i := range samples {
		k := key(i)
		groups[k] = append(groups[k], i)
	}
	if len(groups) < 2 {
		return Metrics{}, errors.New("regress: leave-one-out needs at least two groups")
	}

	var all []heldOut
	for g, held := range groups {
		train := make([]Sample, 0, len(samples)-len(held))
		heldSet := make(map[int]bool, len(held))
		for _, i := range held {
			heldSet[i] = true
		}
		for i, s := range samples {
			if !heldSet[i] {
				train = append(train, s)
			}
		}
		model, err := Fit(train, opts)
		if err != nil {
			return Metrics{}, fmt.Errorf("regress: fold %q: %w", g, err)
		}
		for _, i := range held {
			pred, err := model.Predict(samples[i].X)
			if err != nil {
				return Metrics{}, err
			}
			all = append(all, heldOut{pred: pred, truth: samples[i].Y})
		}
	}
	return aggregate(all), nil
}

type heldOut struct{ pred, truth float64 }

func aggregate(outs []heldOut) Metrics {
	var sumAbs, sumSq, sumY float64
	accurate := 0
	for _, o := range outs {
		sumY += o.truth
	}
	meanY := sumY / float64(len(outs))
	var ssTot, ssRes float64
	for _, o := range outs {
		e := o.pred - o.truth
		sumAbs += math.Abs(e)
		sumSq += e * e
		ssRes += e * e
		d := o.truth - meanY
		ssTot += d * d
		if withinTolerance(o.pred, o.truth) {
			accurate++
		}
	}
	n := float64(len(outs))
	m := Metrics{
		MAE:      sumAbs / n,
		RMSE:     math.Sqrt(sumSq / n),
		Accuracy: float64(accurate) / n,
		N:        len(outs),
	}
	if ssTot > 0 {
		m.R2 = 1 - ssRes/ssTot
	} else if ssRes == 0 {
		m.R2 = 1
	}
	return m
}
