// Package stats provides the small statistical toolkit used throughout the
// repository: central tendencies (the paper reports harmonic means to avoid
// outliers, §7), dispersion, histograms for the distribution figures, and
// online exponential moving averages used by the simulated load-average
// metrics.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by aggregations that are undefined on empty input.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs, or 0 if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// HarmonicMean returns the harmonic mean of xs. The paper reports harmonic
// means of speedups to avoid overweighting outliers (§7). All inputs must be
// positive; non-positive values make the harmonic mean undefined and yield an
// error.
func HarmonicMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, errors.New("stats: harmonic mean requires positive values")
		}
		sum += 1 / x
	}
	return float64(len(xs)) / sum, nil
}

// HMean is HarmonicMean with errors collapsed to 0, for reporting paths where
// inputs are speedups already validated to be positive.
func HMean(xs []float64) float64 {
	h, err := HarmonicMean(xs)
	if err != nil {
		return 0
	}
	return h
}

// GeoMean returns the geometric mean of xs. All values must be positive.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, errors.New("stats: geometric mean requires positive values")
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), nil
}

// Median returns the median of xs without mutating it.
func Median(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2], nil
	}
	return (cp[n/2-1] + cp[n/2]) / 2, nil
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// MinMax returns the smallest and largest values in xs.
func MinMax(xs []float64) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi, nil
}

// Clamp restricts x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ClampInt restricts x to [lo, hi].
func ClampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// EMA is an exponential moving average over a virtual-time signal. It mirrors
// how Linux computes load averages: the decay depends on the elapsed time and
// a fixed time constant, so irregular sampling intervals are handled
// correctly.
type EMA struct {
	// TimeConstant is the e-folding period in the same unit as the dt
	// passed to Update (seconds in this repository).
	TimeConstant float64

	value       float64
	initialized bool
	// lastDT/lastAlpha memoize the decay factor: simulation loops call
	// Update with the same dt millions of times, and recomputing
	// 1−exp(−dt/τ) dominated the engine's profile. Reusing the cached
	// value is bitwise identical to recomputing it.
	lastDT    float64
	lastAlpha float64
}

// NewEMA returns an EMA with the given time constant. The first Update seeds
// the average with the observed value.
func NewEMA(timeConstant float64) *EMA {
	return &EMA{TimeConstant: timeConstant}
}

// Update advances the average by dt with the instantaneous value x and
// returns the new average.
func (e *EMA) Update(x, dt float64) float64 {
	if !e.initialized {
		e.value = x
		e.initialized = true
		return e.value
	}
	if dt <= 0 || e.TimeConstant <= 0 {
		return e.value
	}
	if dt != e.lastDT {
		e.lastDT = dt
		e.lastAlpha = 1 - math.Exp(-dt/e.TimeConstant)
	}
	e.value += e.lastAlpha * (x - e.value)
	return e.value
}

// UpdateSteady advances the average by elapsed time under a *constant*
// input x and returns the new average. It is the closed-form solution of
// the EMA recurrence for piecewise-constant signals:
//
//	ema' = x + (ema − x)·exp(−Δt/τ)
//
// One UpdateSteady(x, k·dt) call is algebraically identical to k
// successive Update(x, dt) calls — (1 − α)^k with α = 1 − exp(−dt/τ) is
// exactly exp(−k·dt/τ) — which is what lets the event-horizon simulation
// engine leap over runs of identical timesteps without perturbing load
// averages. An uninitialized average seeds to x, exactly as the first of
// the k iterated updates would.
func (e *EMA) UpdateSteady(x, elapsed float64) float64 {
	if !e.initialized {
		e.value = x
		e.initialized = true
		return e.value
	}
	if elapsed <= 0 || e.TimeConstant <= 0 {
		return e.value
	}
	e.value = x + (e.value-x)*math.Exp(-elapsed/e.TimeConstant)
	return e.value
}

// Value returns the current average (0 before the first Update).
func (e *EMA) Value() float64 { return e.value }

// Reset clears the average so the next Update seeds it again.
func (e *EMA) Reset() { e.value = 0; e.initialized = false }

// Histogram counts observations into fixed integer-labelled bins. It backs
// the thread-number distribution figure (Fig 17) and the expert-selection
// frequency figure (Fig 15b).
type Histogram struct {
	counts map[int]int
	total  int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]int)}
}

// Add records one observation of bin.
func (h *Histogram) Add(bin int) {
	h.counts[bin]++
	h.total++
}

// AddN records n observations of bin.
func (h *Histogram) AddN(bin, n int) {
	if n <= 0 {
		return
	}
	h.counts[bin] += n
	h.total += n
}

// Count returns the number of observations of bin.
func (h *Histogram) Count(bin int) int { return h.counts[bin] }

// Total returns the total number of observations.
func (h *Histogram) Total() int { return h.total }

// Fraction returns the share of observations in bin, or 0 when empty.
func (h *Histogram) Fraction(bin int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[bin]) / float64(h.total)
}

// Bins returns the occupied bins in ascending order.
func (h *Histogram) Bins() []int {
	bins := make([]int, 0, len(h.counts))
	for b := range h.counts {
		bins = append(bins, b)
	}
	sort.Ints(bins)
	return bins
}

// Mode returns the bin with the most observations; ties break toward the
// smaller bin. The second return is false when the histogram is empty.
func (h *Histogram) Mode() (int, bool) {
	if h.total == 0 {
		return 0, false
	}
	best, bestCount := 0, -1
	for _, b := range h.Bins() {
		if c := h.counts[b]; c > bestCount {
			best, bestCount = b, c
		}
	}
	return best, true
}

// Counts returns a copy of the raw bin → count map, the lossless form used
// by checkpointing. Mutating the returned map cannot affect the histogram.
func (h *Histogram) Counts() map[int]int {
	out := make(map[int]int, len(h.counts))
	for b, c := range h.counts {
		out[b] = c
	}
	return out
}

// NewHistogramFromCounts reconstructs a histogram from a Counts map.
// Non-positive counts are ignored, matching AddN.
func NewHistogramFromCounts(counts map[int]int) *Histogram {
	h := NewHistogram()
	for b, c := range counts {
		h.AddN(b, c)
	}
	return h
}

// Normalized returns bin → fraction for every occupied bin.
func (h *Histogram) Normalized() map[int]float64 {
	out := make(map[int]float64, len(h.counts))
	for b, c := range h.counts {
		out[b] = float64(c) / float64(h.total)
	}
	return out
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of the binned observations.
func (h *Histogram) Quantile(q float64) (int, error) {
	if h.total == 0 {
		return 0, ErrEmpty
	}
	q = Clamp(q, 0, 1)
	target := int(math.Ceil(q * float64(h.total)))
	if target < 1 {
		target = 1
	}
	seen := 0
	bins := h.Bins()
	for _, b := range bins {
		seen += h.counts[b]
		if seen >= target {
			return b, nil
		}
	}
	return bins[len(bins)-1], nil
}
