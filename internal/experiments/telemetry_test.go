package experiments

import "testing"

// TestTelemetryStudy checks the study's coherence properties: every target
// decided something, the chaos suite provoked the trust layer and the
// sanitizers (suspects and repairs nonzero somewhere), the ladder counters
// never exceed the decision count, and the total row sums the others.
func TestTelemetryStudy(t *testing.T) {
	l := lab(t)
	sc := Scale{Targets: []string{"lu", "cg"}, Repeats: 1, Seed: 5}
	tab, err := l.telemetryStudy(sc, 800)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tab)

	var suspects, repaired float64
	for _, target := range sc.Targets {
		dec := tab.MustGet(target, "decisions")
		if dec <= 0 {
			t.Errorf("%s: no decisions counted", target)
		}
		for _, col := range []string{"suspect", "reroute", "fallback"} {
			if v := tab.MustGet(target, col); v < 0 || v > dec {
				t.Errorf("%s: %s = %v outside [0, %v]", target, col, v, dec)
			}
		}
		if p50, p99 := tab.MustGet(target, "p50 µs"), tab.MustGet(target, "p99 µs"); p50 < 0 || p99 < p50 {
			t.Errorf("%s: latency quantiles disordered: p50=%v p99=%v", target, p50, p99)
		}
		suspects += tab.MustGet(target, "suspect")
		repaired += tab.MustGet(target, "repaired")
	}
	if suspects == 0 {
		t.Error("chaos suite never tripped the sensor-trust layer")
	}
	if repaired == 0 {
		t.Error("chaos suite never tripped the sanitizers")
	}
	wantTotal := tab.MustGet("lu", "decisions") + tab.MustGet("cg", "decisions")
	if got := tab.MustGet("total", "decisions"); got != wantTotal {
		t.Errorf("total decisions = %v, want %v", got, wantTotal)
	}
}
