package core

import (
	"fmt"
	"math"

	"moe/internal/expert"
	"moe/internal/features"
	"moe/internal/stats"
)

// Checkpoint state export/import. The mixture's entire *online* state — the
// selector's learned partition, per-expert health records, sensor trust,
// the pending predictions awaiting their observation, and the analysis
// bookkeeping — is representable as plain data, so a process can snapshot
// it, die, and resume with the accumulated learning intact. What is
// deliberately NOT here: the experts themselves (offline artifacts,
// reconstructed from training or an expert file) and construction-time
// constants (learning rate, penalty weights, decay factors). Restore
// therefore overlays state onto a mixture that was constructed identically
// to the one exported from; structural mismatches (pool size, selector
// kind) are rejected.
//
// Everything in these structs is primitive (floats, ints, bools, slices)
// so internal/checkpoint can serialize it without importing expert types.

// SelectorState is the tagged union of the selector implementations'
// mutable state. Kind matches Selector.Name() and selects which fields are
// meaningful.
type SelectorState struct {
	// Kind is the selector's Name(): "hyperplane", "accuracy-ema",
	// "fixed", or "random".
	Kind string

	// Hyperplane fields (also reused by accuracy-ema: ErrEMA/ErrSeen).
	Theta     [][]float64
	Mean      []float64
	M2        []float64
	Count     float64
	Misses    int
	Votes     int
	ErrEMA    []float64
	ErrSeen   []bool
	ScaleEMA  float64
	Incumbent int

	// Random-selector stream state.
	RandState uint64
}

// ExpertHealthState is one expert's quarantine record.
type ExpertHealthState struct {
	State       int // healthState ordinal
	ErrEMA      float64
	Seen        bool
	CoolLeft    int
	CleanLeft   int
	Quarantines int
}

// TrustState is the sensor-trust layer's memory.
type TrustState struct {
	LastFeat  []float64 // features.Dim values when HaveFeat
	HaveFeat  bool
	LastProc  float64
	HaveProc  bool
	ProcChurn float64
	Suspects  int
}

// EnvPredictionState is one pending environment prediction in primitive
// form.
type EnvPredictionState struct {
	Norm     float64
	HasVec   bool
	Vec      []float64 // features.EnvDim values when HasVec
	HasSigma bool
	Sigma    []float64 // features.EnvDim values when HasSigma
}

// MixtureState is the complete online state of a Mixture.
type MixtureState struct {
	// Experts is the pool size the state was exported from; restore
	// requires an identical pool size.
	Experts  int
	Selector SelectorState
	Health   []ExpertHealthState
	Trust    TrustState

	PendingValid bool
	PendingFeat  []float64 // features.Dim values when PendingValid
	PendingPred  []EnvPredictionState

	Selections   map[int]int
	ThreadHist   map[int]int
	Accurate     []int
	Observations []int
	MixAccurate  int
	MixObserved  int
	ErrSum       []float64
	ObsNormSum   float64
	Sanitized    int
	Rerouted     int
	Fallback     int
}

// ExportState captures the mixture's full online state as plain data. The
// returned value shares no memory with the mixture; mutating it cannot
// corrupt a live policy.
func (m *Mixture) ExportState() (*MixtureState, error) {
	sel, err := exportSelector(m.selector)
	if err != nil {
		return nil, err
	}
	k := len(m.experts)
	st := &MixtureState{
		Experts:      k,
		Selector:     sel,
		Health:       make([]ExpertHealthState, k),
		Trust:        exportTrust(&m.trust),
		Selections:   m.selections.Counts(),
		ThreadHist:   m.threadHist.Counts(),
		Accurate:     append([]int(nil), m.accurate...),
		Observations: append([]int(nil), m.observations...),
		MixAccurate:  m.mixAccurate,
		MixObserved:  m.mixObserved,
		ErrSum:       append([]float64(nil), m.errSum...),
		ObsNormSum:   m.obsNormSum,
		Sanitized:    m.sanitized,
		Rerouted:     m.rerouted,
		Fallback:     m.fallback,
	}
	for i, e := range m.health.experts {
		st.Health[i] = ExpertHealthState{
			State:       int(e.state),
			ErrEMA:      e.errEMA,
			Seen:        e.seen,
			CoolLeft:    e.coolLeft,
			CleanLeft:   e.cleanLeft,
			Quarantines: e.quarantines,
		}
	}
	if m.pendingValid {
		st.PendingValid = true
		st.PendingFeat = append([]float64(nil), m.pendingFeat[:]...)
		st.PendingPred = make([]EnvPredictionState, len(m.pendingPred))
		for i, p := range m.pendingPred {
			st.PendingPred[i] = exportPrediction(p)
		}
	}
	return st, nil
}

// RestoreState overlays a previously exported state onto a mixture that was
// constructed identically (same pool size, same selector kind). It
// validates structure and finiteness and refuses garbage rather than
// adopting it; on error the mixture is unchanged.
func (m *Mixture) RestoreState(st *MixtureState) error {
	m.fastPrimed = false
	if st == nil {
		return fmt.Errorf("core: nil mixture state")
	}
	k := len(m.experts)
	if st.Experts != k {
		return fmt.Errorf("core: state for %d experts, mixture has %d", st.Experts, k)
	}
	if len(st.Health) != k || len(st.Accurate) != k || len(st.Observations) != k || len(st.ErrSum) != k {
		return fmt.Errorf("core: per-expert state lengths do not match pool size %d", k)
	}
	for i, h := range st.Health {
		if h.State < int(healthOK) || h.State > int(healthProbation) {
			return fmt.Errorf("core: expert %d: invalid health state %d", i, h.State)
		}
		if !finite(h.ErrEMA) || h.ErrEMA < 0 || h.CoolLeft < 0 || h.CleanLeft < 0 || h.Quarantines < 0 {
			return fmt.Errorf("core: expert %d: invalid health record", i)
		}
	}
	for i := 0; i < k; i++ {
		if st.Accurate[i] < 0 || st.Observations[i] < 0 || st.Accurate[i] > st.Observations[i] {
			return fmt.Errorf("core: expert %d: invalid accuracy counters", i)
		}
		if !finite(st.ErrSum[i]) || st.ErrSum[i] < 0 {
			return fmt.Errorf("core: expert %d: invalid error sum", i)
		}
	}
	if st.MixAccurate < 0 || st.MixObserved < 0 || st.MixAccurate > st.MixObserved {
		return fmt.Errorf("core: invalid mixture accuracy counters")
	}
	if !finite(st.ObsNormSum) || st.ObsNormSum < 0 ||
		st.Sanitized < 0 || st.Rerouted < 0 || st.Fallback < 0 {
		return fmt.Errorf("core: invalid bookkeeping counters")
	}
	if err := validateCounts(st.Selections); err != nil {
		return fmt.Errorf("core: selections histogram: %w", err)
	}
	if err := validateCounts(st.ThreadHist); err != nil {
		return fmt.Errorf("core: thread histogram: %w", err)
	}
	if err := validateTrust(&st.Trust); err != nil {
		return err
	}
	if st.PendingValid {
		if len(st.PendingFeat) != features.Dim {
			return fmt.Errorf("core: pending state has %d features, want %d", len(st.PendingFeat), features.Dim)
		}
		for _, v := range st.PendingFeat {
			if !finite(v) {
				return fmt.Errorf("core: non-finite pending feature")
			}
		}
		if len(st.PendingPred) != k {
			return fmt.Errorf("core: %d pending predictions for %d experts", len(st.PendingPred), k)
		}
		for i := range st.PendingPred {
			if err := validatePrediction(&st.PendingPred[i]); err != nil {
				return fmt.Errorf("core: pending prediction %d: %w", i, err)
			}
		}
	}
	// Validate-then-restore the selector last so any error above leaves the
	// selector untouched too.
	if err := restoreSelector(m.selector, &st.Selector, k); err != nil {
		return err
	}

	for i := range m.health.experts {
		h := st.Health[i]
		m.health.experts[i] = expertHealth{
			state:       healthState(h.State),
			errEMA:      h.ErrEMA,
			seen:        h.Seen,
			coolLeft:    h.CoolLeft,
			cleanLeft:   h.CleanLeft,
			quarantines: h.Quarantines,
		}
	}
	restoreTrust(&m.trust, &st.Trust)
	m.selections = stats.NewHistogramFromCounts(st.Selections)
	m.threadHist = stats.NewHistogramFromCounts(st.ThreadHist)
	copy(m.accurate, st.Accurate)
	copy(m.observations, st.Observations)
	m.mixAccurate = st.MixAccurate
	m.mixObserved = st.MixObserved
	copy(m.errSum, st.ErrSum)
	m.obsNormSum = st.ObsNormSum
	m.sanitized = st.Sanitized
	m.rerouted = st.Rerouted
	m.fallback = st.Fallback

	m.pendingValid = st.PendingValid
	if st.PendingValid {
		copy(m.pendingFeat[:], st.PendingFeat)
		m.pendingPred = make([]expert.EnvPrediction, k)
		for i, p := range st.PendingPred {
			m.pendingPred[i] = restorePrediction(p)
		}
	} else {
		m.pendingFeat = features.Vector{}
		m.pendingPred = nil
	}
	return nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func validateCounts(counts map[int]int) error {
	for bin, c := range counts {
		if c < 0 {
			return fmt.Errorf("negative count %d in bin %d", c, bin)
		}
	}
	return nil
}

// --- selector state ---

func exportSelector(s Selector) (SelectorState, error) {
	switch sel := s.(type) {
	case *HyperplaneSelector:
		st := SelectorState{
			Kind:      sel.Name(),
			Theta:     sel.Hyperplanes(),
			Mean:      append([]float64(nil), sel.mean[:]...),
			M2:        append([]float64(nil), sel.m2[:]...),
			Count:     sel.count,
			Misses:    sel.misses,
			Votes:     sel.votes,
			ErrEMA:    append([]float64(nil), sel.errEMA...),
			ErrSeen:   append([]bool(nil), sel.errSeen...),
			ScaleEMA:  sel.scaleEMA,
			Incumbent: sel.incumbent,
		}
		return st, nil
	case *AccuracySelector:
		return SelectorState{
			Kind:    sel.Name(),
			ErrEMA:  append([]float64(nil), sel.ema...),
			ErrSeen: append([]bool(nil), sel.seen...),
		}, nil
	case FixedSelector:
		return SelectorState{Kind: sel.Name()}, nil
	case *RandomSelector:
		return SelectorState{Kind: sel.Name(), RandState: sel.state}, nil
	default:
		return SelectorState{}, fmt.Errorf("core: selector %q is not checkpointable", s.Name())
	}
}

func restoreSelector(s Selector, st *SelectorState, k int) error {
	if st.Kind != s.Name() {
		return fmt.Errorf("core: state for selector %q, mixture uses %q", st.Kind, s.Name())
	}
	switch sel := s.(type) {
	case *HyperplaneSelector:
		if len(st.Theta) != k {
			return fmt.Errorf("core: %d hyperplanes for %d experts", len(st.Theta), k)
		}
		for i, row := range st.Theta {
			if len(row) != features.Dim+1 {
				return fmt.Errorf("core: hyperplane %d has %d weights, want %d", i, len(row), features.Dim+1)
			}
			for _, v := range row {
				if !finite(v) {
					return fmt.Errorf("core: non-finite hyperplane weight")
				}
			}
		}
		if len(st.Mean) != features.Dim || len(st.M2) != features.Dim {
			return fmt.Errorf("core: standardization statistics have wrong dimensionality")
		}
		for i := 0; i < features.Dim; i++ {
			if !finite(st.Mean[i]) || !finite(st.M2[i]) || st.M2[i] < 0 {
				return fmt.Errorf("core: invalid standardization statistics")
			}
		}
		if !finite(st.Count) || st.Count < 0 || st.Misses < 0 || st.Votes < 0 || st.Misses > st.Votes {
			return fmt.Errorf("core: invalid selector counters")
		}
		if len(st.ErrEMA) != k || len(st.ErrSeen) != k {
			return fmt.Errorf("core: selector accuracy state has wrong pool size")
		}
		for _, v := range st.ErrEMA {
			if !finite(v) {
				return fmt.Errorf("core: non-finite selector error EMA")
			}
		}
		if !finite(st.ScaleEMA) || st.Incumbent < -1 || st.Incumbent >= k {
			return fmt.Errorf("core: invalid selector scale or incumbent")
		}
		for i, row := range st.Theta {
			copy(sel.theta[i], row)
		}
		copy(sel.mean[:], st.Mean)
		copy(sel.m2[:], st.M2)
		sel.count = st.Count
		sel.misses = st.Misses
		sel.votes = st.Votes
		copy(sel.errEMA, st.ErrEMA)
		copy(sel.errSeen, st.ErrSeen)
		sel.scaleEMA = st.ScaleEMA
		sel.incumbent = st.Incumbent
		return nil
	case *AccuracySelector:
		if len(st.ErrEMA) != k || len(st.ErrSeen) != k {
			return fmt.Errorf("core: accuracy selector state has wrong pool size")
		}
		for _, v := range st.ErrEMA {
			if !finite(v) {
				return fmt.Errorf("core: non-finite accuracy EMA")
			}
		}
		copy(sel.ema, st.ErrEMA)
		copy(sel.seen, st.ErrSeen)
		return nil
	case FixedSelector:
		return nil
	case *RandomSelector:
		if st.RandState == 0 {
			return fmt.Errorf("core: zero random-selector state")
		}
		sel.state = st.RandState
		return nil
	default:
		return fmt.Errorf("core: selector %q is not checkpointable", s.Name())
	}
}

// --- trust state ---

func exportTrust(t *sensorTrust) TrustState {
	st := TrustState{
		HaveFeat:  t.haveFeat,
		LastProc:  t.lastProc,
		HaveProc:  t.haveProc,
		ProcChurn: t.procChurn,
		Suspects:  t.suspects,
	}
	if t.haveFeat {
		st.LastFeat = append([]float64(nil), t.lastFeat[:]...)
	}
	return st
}

func validateTrust(st *TrustState) error {
	if st.HaveFeat {
		if len(st.LastFeat) != features.Dim {
			return fmt.Errorf("core: trust state has %d features, want %d", len(st.LastFeat), features.Dim)
		}
		for _, v := range st.LastFeat {
			if !finite(v) {
				return fmt.Errorf("core: non-finite trusted feature")
			}
		}
	}
	if !finite(st.LastProc) || !finite(st.ProcChurn) || st.ProcChurn < 0 || st.Suspects < 0 {
		return fmt.Errorf("core: invalid trust state")
	}
	return nil
}

func restoreTrust(t *sensorTrust, st *TrustState) {
	*t = sensorTrust{
		haveFeat:  st.HaveFeat,
		lastProc:  st.LastProc,
		haveProc:  st.HaveProc,
		procChurn: st.ProcChurn,
		suspects:  st.Suspects,
	}
	if st.HaveFeat {
		copy(t.lastFeat[:], st.LastFeat)
	}
}

// --- pending predictions ---

func exportPrediction(p expert.EnvPrediction) EnvPredictionState {
	st := EnvPredictionState{Norm: p.Norm, HasVec: p.HasVec}
	if p.HasVec {
		v := p.Vec
		st.Vec = []float64{v.WorkloadThreads, v.Processors, v.RunQueue, v.Load1, v.Load5, v.CachedMem, v.PageFreeRate}
		if p.Sigma != nil {
			st.HasSigma = true
			st.Sigma = append([]float64(nil), p.Sigma[:]...)
		}
	}
	return st
}

// validatePrediction bounds-checks a pending prediction. Non-finite values
// are allowed here — a snapshot taken while a corrupt expert was pending
// must round-trip exactly, and the scoring path already handles them.
func validatePrediction(st *EnvPredictionState) error {
	if st.HasVec && len(st.Vec) != features.EnvDim {
		return fmt.Errorf("prediction vector has %d dimensions, want %d", len(st.Vec), features.EnvDim)
	}
	if st.HasSigma {
		if !st.HasVec {
			return fmt.Errorf("sigma without vector")
		}
		if len(st.Sigma) != features.EnvDim {
			return fmt.Errorf("sigma has %d dimensions, want %d", len(st.Sigma), features.EnvDim)
		}
	}
	return nil
}

func restorePrediction(st EnvPredictionState) expert.EnvPrediction {
	p := expert.EnvPrediction{Norm: st.Norm, HasVec: st.HasVec}
	if st.HasVec {
		p.Vec = features.Env{
			WorkloadThreads: st.Vec[0],
			Processors:      st.Vec[1],
			RunQueue:        st.Vec[2],
			Load1:           st.Vec[3],
			Load5:           st.Vec[4],
			CachedMem:       st.Vec[5],
			PageFreeRate:    st.Vec[6],
		}
		if st.HasSigma {
			var sigma [features.EnvDim]float64
			copy(sigma[:], st.Sigma)
			p.Sigma = &sigma
		}
	}
	return p
}
