// Quickstart: train a mixture of experts and use it to run a benchmark in
// a dynamic shared environment, comparing against the OpenMP default.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"moe"
)

func main() {
	// 1. Generate training data on the simulator (one target × one-to-few
	//    workload programs, thread counts varied, 12- and 32-core
	//    platforms — the paper's §5.2 methodology). A fixed seed makes
	//    everything reproducible. Takes a minute or two.
	fmt.Println("training…")
	data, err := moe.Train(moe.TrainingConfig{Seed: 1, WorkloadsPerTarget: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d labelled samples\n", len(data.Samples))

	// 2. Build the paper's four experts (scalable/non-scalable programs ×
	//    12/32-core platforms) and the mixture policy over them.
	experts, err := moe.BuildExperts(data, 4)
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range experts {
		fmt.Printf("  %s trained on %s\n", e.Name, e.TrainedOn)
	}
	mixture, err := moe.NewTrainedMixture(data, experts)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Run the lu benchmark while mg loops beside it and processors
	//    come and go — once under the OpenMP default, once under the
	//    mixture. The same seed replays identical external conditions.
	scenario := moe.Simulation{
		Target:    "lu",
		Workload:  []string{"mg"},
		Frequency: moe.LowFrequency,
		Seed:      7,
	}
	scenario.Policy = moe.NewDefaultPolicy()
	base, err := moe.Simulate(scenario)
	if err != nil {
		log.Fatal(err)
	}
	scenario.Policy = mixture
	tuned, err := moe.Simulate(scenario)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nlu co-executing with mg under hardware churn:\n")
	fmt.Printf("  OpenMP default: %7.1f s\n", base.ExecTime)
	fmt.Printf("  mixture       : %7.1f s  → %.2fx speedup\n",
		tuned.ExecTime, base.ExecTime/tuned.ExecTime)

	st := mixture.Snapshot()
	fmt.Printf("  expert selection:")
	for i, frac := range st.SelectionFraction {
		fmt.Printf(" E%d=%.0f%%", i+1, 100*frac)
	}
	fmt.Printf("\n  environment-prediction accuracy: %.0f%%\n", 100*st.MixtureEnvAccuracy)
}
