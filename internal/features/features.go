// Package features defines the 10-dimensional feature vector of Table 1 in
// the paper: three static code features extracted from the parallel loop
// (f1–f3) and seven runtime environment features sampled from the operating
// system (f4–f10). The paper formalizes the "environment" as the norm of the
// runtime features (§5.2.2); that norm is the quantity the environment
// predictors are trained to forecast and the quantity the expert selector
// compares against observations.
package features

import (
	"fmt"
	"math"
)

// Dim is the number of features in a vector (Table 1).
const Dim = 10

// Indices of the individual features, matching Table 1 ordering (f1..f10 →
// 0..9).
const (
	LoadStoreCount  = iota // f1: loads+stores in the loop, normalized
	Instructions           // f2: instruction count, normalized
	Branches               // f3: branch count, normalized
	WorkloadThreads        // f4: threads belonging to external workloads
	Processors             // f5: currently available processors
	RunQueueSize           // f6: runq-sz
	CPULoad1               // f7: ldavg-1
	CPULoad5               // f8: ldavg-5
	CachedMemory           // f9: cached memory (GB)
	PageFreeRate           // f10: pages freed per second (thousands)
)

// EnvStart is the first environment-feature index; features
// [EnvStart, Dim) constitute the environment e (§5.2.2: f4–f10).
const EnvStart = WorkloadThreads

// EnvDim is the number of environment features.
const EnvDim = Dim - EnvStart

// Names holds the short feature names from Table 1, indexed by feature
// index.
var Names = [Dim]string{
	"load/store count",
	"instructions",
	"branches",
	"workload threads",
	"processors",
	"run queue size (runq-sz)",
	"cpu load (ldavg-1)",
	"cpu load (ldavg-5)",
	"cached memory",
	"pages free list rate",
}

// Sources notes where each feature comes from (Table 1 "type" column).
var Sources = [Dim]string{
	"compiler", "compiler", "compiler",
	"linux", "linux", "linux", "linux", "linux", "linux", "linux",
}

// Vector is a full feature vector f = c ‖ e at one timestamp (§4.1).
type Vector [Dim]float64

// Code holds only the static code features c = (f1, f2, f3), normalized to
// the total instruction count of the program (§5.2.2).
type Code struct {
	LoadStore    float64
	Instructions float64
	Branches     float64
}

// Env holds only the runtime environment features e = (f4 … f10).
type Env struct {
	WorkloadThreads float64 // threads of co-executing programs
	Processors      float64 // available processors
	RunQueue        float64 // runnable threads not running
	Load1           float64 // 1-minute load average
	Load5           float64 // 5-minute load average
	CachedMem       float64 // cached memory, GB
	PageFreeRate    float64 // pages freed / s, thousands
}

// Combine builds the full feature vector f = c ‖ e.
func Combine(c Code, e Env) Vector {
	return Vector{
		c.LoadStore, c.Instructions, c.Branches,
		e.WorkloadThreads, e.Processors, e.RunQueue,
		e.Load1, e.Load5, e.CachedMem, e.PageFreeRate,
	}
}

// CodePart extracts the static code features from v.
func (v Vector) CodePart() Code {
	return Code{LoadStore: v[LoadStoreCount], Instructions: v[Instructions], Branches: v[Branches]}
}

// EnvPart extracts the environment features from v.
func (v Vector) EnvPart() Env {
	return Env{
		WorkloadThreads: v[WorkloadThreads],
		Processors:      v[Processors],
		RunQueue:        v[RunQueueSize],
		Load1:           v[CPULoad1],
		Load5:           v[CPULoad5],
		CachedMem:       v[CachedMemory],
		PageFreeRate:    v[PageFreeRate],
	}
}

// Slice returns v as a plain slice (copy), convenient for the regression
// package.
func (v Vector) Slice() []float64 {
	out := make([]float64, Dim)
	copy(out, v[:])
	return out
}

// FromSlice builds a Vector from xs, which must have exactly Dim entries.
func FromSlice(xs []float64) (Vector, error) {
	var v Vector
	if len(xs) != Dim {
		return v, fmt.Errorf("features: need %d values, got %d", Dim, len(xs))
	}
	copy(v[:], xs)
	return v, nil
}

// Norm returns the Euclidean norm of the environment features f4–f10. The
// paper defines the environment as this norm (§5.2.2), and the expert
// selector compares predicted against observed norms (§5.3).
func (e Env) Norm() float64 {
	return math.Sqrt(e.WorkloadThreads*e.WorkloadThreads +
		e.Processors*e.Processors +
		e.RunQueue*e.RunQueue +
		e.Load1*e.Load1 +
		e.Load5*e.Load5 +
		e.CachedMem*e.CachedMem +
		e.PageFreeRate*e.PageFreeRate)
}

// EnvNorm returns the environment norm of the vector's runtime features.
func (v Vector) EnvNorm() float64 { return v.EnvPart().Norm() }

// Dot returns the inner product of v with a weight slice of length Dim or
// Dim+1; with Dim+1 the final entry is treated as the regression constant β
// (Table 1).
func (v Vector) Dot(w []float64) (float64, error) {
	switch len(w) {
	case Dim:
		s := 0.0
		for i := range v {
			s += v[i] * w[i]
		}
		return s, nil
	case Dim + 1:
		s := w[Dim]
		for i := range v {
			s += v[i] * w[i]
		}
		return s, nil
	default:
		return 0, fmt.Errorf("features: weight length %d, want %d or %d", len(w), Dim, Dim+1)
	}
}

// Sub returns v - u.
func (v Vector) Sub(u Vector) Vector {
	var out Vector
	for i := range v {
		out[i] = v[i] - u[i]
	}
	return out
}

// Distance returns the Euclidean distance between v and u in the full
// feature space.
func (v Vector) Distance(u Vector) float64 {
	s := 0.0
	for i := range v {
		d := v[i] - u[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// LessEq reports whether v ≤ u componentwise in the environment dimensions.
// The paper's worked example (§5.4) classifies a point against a hyperplane
// S with exactly this comparison (f ≤ S selects the expert below the plane).
// Only environment features participate: the code features describe the
// program, not the system state the hyperplanes partition.
func (v Vector) LessEq(u Vector) bool {
	ge, le := 0, 0
	for i := EnvStart; i < Dim; i++ {
		if v[i] <= u[i] {
			le++
		} else {
			ge++
		}
	}
	return le >= ge
}

// MaxMagnitude bounds the absolute value a sanitized feature may carry.
// Every Table 1 feature is a physical quantity — instruction ratios, thread
// counts, load averages, gigabytes — many orders of magnitude below this;
// anything larger is a sensor failure, and bounding it keeps every linear
// model downstream (weights bounded by regress.MaxCoefficient) provably
// finite.
const MaxMagnitude = 1e9

// Sanitize replaces non-finite components with zero and clamps finite ones
// to ±MaxMagnitude, returning the cleaned vector and how many components
// were repaired. It is the first rung of the degradation ladder: policies
// and predictors downstream may assume a sanitized vector is finite and
// boundedly sized, whatever the sensors reported.
func Sanitize(v Vector) (Vector, int) {
	repaired := 0
	for i, x := range v {
		switch {
		case math.IsNaN(x) || math.IsInf(x, 0):
			v[i] = 0
			repaired++
		case x > MaxMagnitude:
			v[i] = MaxMagnitude
			repaired++
		case x < -MaxMagnitude:
			v[i] = -MaxMagnitude
			repaired++
		}
	}
	return v, repaired
}

// Clean reports whether Sanitize(v) would be the identity: every component
// finite and within ±MaxMagnitude. It is the pure form of the sanitizer
// rung — the healthy-regime fast path uses it to prove, without touching
// any state, that sanitization cannot fire on v.
func Clean(v *Vector) bool {
	for _, x := range v {
		// The single range comparison is the whole check: NaN fails both
		// sides, ±Inf fall outside ±MaxMagnitude.
		if !(x >= -MaxMagnitude && x <= MaxMagnitude) {
			return false
		}
	}
	return true
}

// NormalizeCode returns code features normalized to the given total
// instruction count, per §5.2.2 ("code features at every loop were
// normalized to the total number of instructions in the program").
func NormalizeCode(loadStore, instructions, branches, totalInstructions float64) Code {
	if totalInstructions <= 0 {
		return Code{}
	}
	return Code{
		LoadStore:    loadStore / totalInstructions,
		Instructions: instructions / totalInstructions,
		Branches:     branches / totalInstructions,
	}
}

// String renders the vector compactly for logs and test failures.
func (v Vector) String() string {
	return fmt.Sprintf("[c=%.3f,%.3f,%.3f e=%.1f,%.1f,%.1f,%.2f,%.2f,%.2f,%.2f]",
		v[0], v[1], v[2], v[3], v[4], v[5], v[6], v[7], v[8], v[9])
}
