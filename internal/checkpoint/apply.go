package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"moe/internal/atomicio"
)

// Applier is the standby-side counterpart of a shipping Store: it applies
// Shipments into a checkpoint directory, re-validating every frame with the
// same machinery recovery uses, so the directory is always a state a
// crashed primary could itself have left behind — one `Recover` away from
// serving. It accepts shipments strictly in stream order (ErrOutOfOrder
// otherwise), which lets the replication layer detect a gap — a dropped
// flush, a restarted peer — and resynchronize from a snapshot instead of
// silently splicing timelines.
//
// An Applier is not safe for concurrent use; internal/replica serializes
// access per tenant.
type Applier struct {
	dir  string
	sync bool

	journal *os.File
	cur     fileID // journal being appended (valid when open)
	next    int    // expected Index of the next journal record
	open    bool
	applied int // shipments applied since NewApplier/Reset
}

// ErrOutOfOrder reports a shipment that does not continue the applied
// stream: a journal record for an epoch that is not open, or at an index
// other than the next expected one. The caller should resynchronize from
// the sender's buffered lineage (snapshot + full journal).
var ErrOutOfOrder = errors.New("checkpoint: shipment out of order")

// NewApplier creates (if needed) the directory and returns an applier for
// it. With sync, every applied artifact is fsynced before Apply returns —
// the standby's durability matches the primary's.
func NewApplier(dir string, sync bool) (*Applier, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, diskErr("apply", dir, err)
	}
	return &Applier{dir: dir, sync: sync}, nil
}

// Dir returns the applier's directory.
func (a *Applier) Dir() string { return a.dir }

// Tip returns the position the applied stream has reached: the journal
// run/epoch being appended and how many records it holds (post-header).
// All zeros before the first journal-open.
func (a *Applier) Tip() (run, epoch, records int) {
	if !a.open {
		return 0, 0, 0
	}
	return a.cur.run, a.cur.seq, a.next
}

// Applied returns the number of shipments applied since open or Reset.
func (a *Applier) Applied() int { return a.applied }

// Reset forgets the stream position (closing any open journal) so the next
// shipments may start a fresh resynchronization. Files already applied are
// left in place; the resync overwrites or supersedes them.
func (a *Applier) Reset() error {
	a.next = 0
	a.open = false
	a.applied = 0
	return a.closeJournal()
}

// Close closes the applier, syncing and closing any open journal.
func (a *Applier) Close() error {
	a.open = false
	return a.closeJournal()
}

func (a *Applier) closeJournal() error {
	if a.journal == nil {
		return nil
	}
	var err error
	if a.sync {
		err = a.journal.Sync()
	}
	if cerr := a.journal.Close(); err == nil {
		err = cerr
	}
	a.journal = nil
	return err
}

// Apply validates one shipment and makes it durable. Journal records must
// arrive in exactly the order the primary wrote them; anything else is
// ErrOutOfOrder. Corrupt payloads (bad CRC, kind mismatch, name/content
// disagreement) are rejected with ErrBadRecord — a defect in transit or in
// the sender, never written to disk.
func (a *Applier) Apply(sh Shipment) error {
	switch sh.Kind {
	case ShipSnapshot:
		return a.applySnapshot(sh)
	case ShipJournalOpen:
		return a.applyJournalOpen(sh)
	case ShipJournalRecord:
		return a.applyJournalRecord(sh)
	default:
		return fmt.Errorf("%w: unknown ship kind %d", ErrBadRecord, sh.Kind)
	}
}

func (a *Applier) applySnapshot(sh Shipment) error {
	st, run, err := DecodeSnapshot(sh.Data)
	if err != nil {
		return err
	}
	if run != sh.Run || st.Decisions != sh.Seq {
		return fmt.Errorf("%w: snapshot payload run %d decisions %d do not match shipment %d/%d",
			ErrBadRecord, run, st.Decisions, sh.Run, sh.Seq)
	}
	name := snapName(fileID{run: sh.Run, seq: sh.Seq})
	if err := atomicio.WriteFile(filepath.Join(a.dir, name), sh.Data, 0o644); err != nil {
		return diskErr("apply", filepath.Join(a.dir, name), err)
	}
	a.applied++
	return nil
}

func (a *Applier) applyJournalOpen(sh Shipment) error {
	kind, payload, size, err := readRecord(sh.Data)
	if err != nil {
		return err
	}
	if kind != recordJournalHeader || size != len(sh.Data) {
		return fmt.Errorf("%w: journal-open shipment is not a lone header record", ErrBadRecord)
	}
	hd := &dec{b: payload}
	run, epoch := hd.int(), hd.int()
	if hd.done() != nil || run != sh.Run || epoch != sh.Seq {
		return fmt.Errorf("%w: journal header names run %d epoch %d, shipment says %d/%d",
			ErrBadRecord, run, epoch, sh.Run, sh.Seq)
	}
	if err := a.closeJournal(); err != nil {
		return err
	}
	id := fileID{run: sh.Run, seq: sh.Seq}
	path := filepath.Join(a.dir, journalName(id))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return diskErr("apply", path, err)
	}
	if _, err := f.Write(sh.Data); err != nil {
		f.Close()
		return diskErr("apply", path, err)
	}
	if a.sync {
		if err := f.Sync(); err != nil {
			f.Close()
			return diskErr("apply", path, err)
		}
		if err := atomicio.SyncDir(a.dir); err != nil {
			f.Close()
			return diskErr("apply", a.dir, err)
		}
	}
	a.journal = f
	a.cur = id
	a.next = 0
	a.open = true
	a.applied++
	// Same retention discipline as the writing store: a rotation is the
	// moment older generations age out.
	return pruneDir(a.dir, id)
}

func (a *Applier) applyJournalRecord(sh Shipment) error {
	if !a.open || sh.Run != a.cur.run || sh.Seq != a.cur.seq || sh.Index != a.next {
		return fmt.Errorf("%w: record %d/%d#%d, applier at %d/%d#%d",
			ErrOutOfOrder, sh.Run, sh.Seq, sh.Index, a.cur.run, a.cur.seq, a.next)
	}
	kind, _, size, err := readRecord(sh.Data)
	if err != nil {
		return err
	}
	if size != len(sh.Data) {
		return fmt.Errorf("%w: journal-record shipment holds trailing bytes", ErrBadRecord)
	}
	switch kind {
	case recordJournalEntry, recordDedupMark, recordDedupWindow:
	default:
		return fmt.Errorf("%w: record kind %d cannot follow a journal header", ErrBadRecord, kind)
	}
	if _, err := a.journal.Write(sh.Data); err != nil {
		return diskErr("apply", a.journal.Name(), err)
	}
	if a.sync {
		if err := a.journal.Sync(); err != nil {
			return diskErr("apply", a.journal.Name(), err)
		}
	}
	a.next++
	a.applied++
	return nil
}
