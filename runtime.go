package moe

import (
	"fmt"
	"math"
	"sync"
	"time"

	"moe/internal/checkpoint"
	"moe/internal/features"
	"moe/internal/sim"
	"moe/internal/stats"
	"moe/internal/telemetry"
)

// Runtime is the embeddable decision loop: a host program (or the real
// worker-pool backend in internal/exec) calls Decide at every parallel
// region with the current Table 1 features and receives the thread count to
// use. Any Policy can drive it — the mixture, a single expert, or one of
// the baselines — making runtimes directly comparable.
//
// Concurrency guarantees: a Runtime is safe for concurrent use from any
// number of goroutines. Decide, Decisions, ThreadHistogram,
// MixtureStatsSnapshot and PolicyName all serialize on one internal lock —
// decisions must serialize anyway because every policy in this repository
// is stateful (the mixture scores its previous prediction against the
// environment the next call observes). Accessors return snapshots that are
// the caller's to keep: ThreadHistogram builds a fresh map per call and
// MixtureStatsSnapshot fresh slices and maps, so mutating a returned value
// can never corrupt — or be corrupted by — a concurrent Decide. The wrapped
// policy itself must not be shared with another Runtime or called directly
// while a Runtime owns it.
type Runtime struct {
	mu         sync.Mutex
	policy     Policy
	maxThreads int
	decisions  int
	hist       *stats.Histogram
	lastN      int
	clock      float64
	lastAvail  int
	sanitized  int

	// Crash safety (see checkpointing.go): when a store is attached, every
	// raw observation is journaled before it is decided on, and a snapshot
	// is written every checkpointEvery decisions. ckptErr latches the first
	// write failure; decisions continue in memory past it.
	store           *checkpoint.Store
	checkpointEvery int
	ckptErr         error

	// Observability (see telemetry.go): with a sink attached, every Decide
	// emits a telemetry.Record. sink == nil is the common case and costs
	// one pointer test — no allocation, no clock read. detailer is the
	// wrapped policy's detail hook when it (or anything it wraps, walked
	// through Unwrap) implements telemetry.Detailer.
	sink     telemetry.Sink
	detailer telemetry.Detailer
	// scratch is the telemetry record reused across decisions (guarded by
	// mu, like everything else here): resetting it and re-filling its slices
	// in place keeps the instrumented path allocation-free. Sinks therefore
	// must not retain the record past RecordDecision (see telemetry.Sink).
	scratch telemetry.Record
}

// monoBase anchors telemetry latency measurements: time.Since against a
// monotonic base compiles to a bare monotonic-clock read, roughly half the
// cost of time.Now (which also reads the wall clock). Only differences of
// these readings are ever used, so the base itself is arbitrary.
var monoBase = time.Now()

// NewRuntime wraps a policy for a machine with maxThreads hardware
// contexts.
func NewRuntime(p Policy, maxThreads int) (*Runtime, error) {
	if p == nil {
		return nil, fmt.Errorf("moe: nil policy")
	}
	if maxThreads < 1 {
		return nil, fmt.Errorf("moe: maxThreads must be at least 1, got %d", maxThreads)
	}
	return &Runtime{policy: p, maxThreads: maxThreads, hist: stats.NewHistogram(), lastN: 1}, nil
}

// Observation is what the host reports at a decision point.
type Observation struct {
	// Time is the caller's clock in seconds (monotonic; wall or virtual).
	Time float64
	// Features is the current state f = c ‖ e.
	Features Features
	// Rate is the work rate achieved since the previous decision
	// (arbitrary units; only relative changes matter). Zero if unknown.
	Rate float64
	// RegionStart marks the beginning of a new parallel region.
	RegionStart bool
	// AvailableProcs is the number of processors currently online; 0
	// means "read it from the features" (f5).
	AvailableProcs int
}

// Decide returns the number of threads to use from this point on. The
// observation is sanitized before the policy sees it — non-finite or
// absurdly sized feature components are repaired, a non-finite or negative
// rate is treated as unknown, a non-finite timestamp as "no time
// information", and a missing processor availability falls back through
// the f5 feature, then the last availability any prior observation
// established, and only then the machine cap. Whatever the host reports,
// the result is always in [1, maxThreads] and Decide never panics.
func (r *Runtime) Decide(obs Observation) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	// Telemetry observes and never steers: rec only collects what the
	// decision path computes anyway, so the chosen n is bit-identical with
	// or without a sink (pinned by the byte-identity tests).
	var rec *telemetry.Record
	var start time.Duration
	if r.sink != nil {
		start = time.Since(monoBase)
		rec = &r.scratch
		*rec = telemetry.Record{
			Seq:            r.decisions,
			SelectedExpert: -1,
			RawFeatures:    rec.RawFeatures[:0],
			Features:       rec.Features[:0],
			GatingErrors:   rec.GatingErrors[:0],
			HealthEvents:   rec.HealthEvents[:0],
		}
		rec.RawFeatures = append(rec.RawFeatures, obs.Features[:]...)
	}
	if r.store != nil && r.ckptErr == nil {
		// Write-ahead: journal the observation exactly as the host reported
		// it, before sanitization, so replaying the journal through this
		// same method reproduces the decision bit-identically.
		var jStart time.Duration
		if rec != nil {
			jStart = time.Since(monoBase)
		}
		if err := r.store.Append(checkpoint.Observation{
			Time:           obs.Time,
			Features:       obs.Features,
			Rate:           obs.Rate,
			RegionStart:    obs.RegionStart,
			AvailableProcs: obs.AvailableProcs,
		}); err != nil {
			r.ckptErr = err
		}
		if rec != nil {
			rec.JournalNanos = (time.Since(monoBase) - jStart).Nanoseconds()
		}
	}
	n := r.decideLocked(obs, rec)
	if r.store != nil && r.ckptErr == nil && r.checkpointEvery > 0 && r.decisions%r.checkpointEvery == 0 {
		var sStart time.Duration
		if rec != nil {
			sStart = time.Since(monoBase)
		}
		if st, err := r.snapshotLocked(); err != nil {
			r.ckptErr = err
		} else if err := r.store.WriteSnapshot(st); err != nil {
			r.ckptErr = err
		}
		if rec != nil {
			rec.SnapshotNanos = (time.Since(monoBase) - sStart).Nanoseconds()
		}
	}
	if rec != nil {
		rec.Threads = n
		if r.ckptErr != nil {
			rec.CheckpointErr = r.ckptErr.Error()
		}
		if r.detailer != nil {
			r.detailer.DecisionDetail(rec)
		}
		rec.DecisionNanos = (time.Since(monoBase) - start).Nanoseconds()
		r.sink.RecordDecision(rec)
	}
	return n
}

func (r *Runtime) decideLocked(obs Observation, rec *telemetry.Record) int {
	f, repaired := features.Sanitize(obs.Features)
	obs.Features = f
	r.sanitized += repaired
	if math.IsNaN(obs.Rate) || math.IsInf(obs.Rate, 0) || obs.Rate < 0 {
		obs.Rate = 0
	}
	avail := obs.AvailableProcs
	if avail <= 0 {
		avail = int(obs.Features[features.Processors])
	}
	if avail <= 0 {
		// No availability in this observation: carry the last known-good
		// value rather than leaping to the machine cap — a sensor dropout
		// does not mean every processor came back online.
		avail = r.lastAvail
	}
	if avail <= 0 {
		avail = r.maxThreads
	}
	if avail > r.maxThreads {
		avail = r.maxThreads
	}
	r.lastAvail = avail
	if math.IsNaN(obs.Time) || math.IsInf(obs.Time, 0) || obs.Time < r.clock {
		obs.Time = r.clock
	}
	r.clock = obs.Time
	n := r.policy.Decide(sim.Decision{
		Time:           obs.Time,
		Features:       obs.Features,
		Rate:           obs.Rate,
		CurrentThreads: r.lastN,
		MaxThreads:     r.maxThreads,
		AvailableProcs: avail,
		RegionStart:    obs.RegionStart,
		RegionIndex:    r.decisions,
	})
	n = stats.ClampInt(n, 1, r.maxThreads)
	r.lastN = n
	r.decisions++
	r.hist.Add(n)
	if rec != nil {
		rec.Time = obs.Time
		rec.Features = append(rec.Features, obs.Features[:]...)
		rec.RuntimeRepaired = repaired
		rec.AvailableProcs = avail
	}
	return n
}

// Unwrapper is the convention for policies that wrap another policy (the
// chaos injector, instrumentation shims): Unwrap returns the wrapped
// policy. Runtime accessors that look for a concrete policy type — mixture
// statistics, telemetry detail — walk the chain, so wrapping never hides
// the mixture from analysis.
type Unwrapper interface {
	Unwrap() Policy
}

// unwrapTo walks p's Unwrap chain until visit reports success or the chain
// ends.
func unwrapTo(p Policy, visit func(Policy) bool) bool {
	for p != nil {
		if visit(p) {
			return true
		}
		u, ok := p.(Unwrapper)
		if !ok {
			return false
		}
		p = u.Unwrap()
	}
	return false
}

// PolicyName reports the wrapped policy's name.
func (r *Runtime) PolicyName() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.policy.Name()
}

// Decisions returns how many decisions have been made.
func (r *Runtime) Decisions() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.decisions
}

// SanitizedValues returns how many observation components the runtime has
// repaired (non-finite or out-of-bound feature values). A nonzero count
// signals the host's sensor path is feeding the runtime garbage.
func (r *Runtime) SanitizedValues() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sanitized
}

// ThreadHistogram returns the distribution of chosen thread counts. The
// returned map is a freshly built copy, independent of the runtime's
// internal histogram — callers may mutate or retain it across further
// Decide calls.
func (r *Runtime) ThreadHistogram() map[int]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hist.Normalized()
}

// MixtureStatsSnapshot returns the mixture analysis snapshot when the
// wrapped policy is a mixture — directly or through any chain of wrappers
// implementing Unwrap (a chaos injector, say); ok is false otherwise.
func (r *Runtime) MixtureStatsSnapshot() (MixtureStats, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var st MixtureStats
	found := unwrapTo(r.policy, func(p Policy) bool {
		m, ok := p.(*Mixture)
		if ok {
			st = m.Snapshot()
		}
		return ok
	})
	return st, found
}
