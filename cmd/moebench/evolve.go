package main

import (
	"encoding/json"
	"fmt"
	"os"

	"moe/internal/experiments"
)

// The evolve study: does a living expert pool beat the same pool frozen,
// once the machine drifts somewhere the canonical coefficients were never
// fitted for? internal/experiments holds the study itself; this file is
// only the CLI artifact plumbing (BENCH_PR9.json).

// writeEvolveJSON runs the drifting-machine study and writes the committed
// artifact. A living pool that fails to beat the frozen pool is a hard
// failure: the artifact must never certify a lifecycle that does not pay
// for itself after drift.
func writeEvolveJSON(path string) error {
	rep, err := experiments.RunEvolveStudy(experiments.DefaultEvolveOptions())
	if err != nil {
		return err
	}
	if rep.LivingAdvantage <= 1 {
		return fmt.Errorf("living pool hmean speedup %.4f does not beat frozen %.4f",
			rep.HMeanLivingSpeedup, rep.HMeanFrozenSpeedup)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "moebench: evolve hmean speedup living %.3f vs frozen %.3f (%.3fx advantage), wrote %s\n",
		rep.HMeanLivingSpeedup, rep.HMeanFrozenSpeedup, rep.LivingAdvantage, path)
	return nil
}
