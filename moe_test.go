package moe_test

import (
	"sync"
	"testing"

	"moe"
)

// The facade tests share one small training run.
var (
	facadeOnce sync.Once
	facadeData *moe.TrainingData
	facadeErr  error
)

func trainedData(t *testing.T) *moe.TrainingData {
	t.Helper()
	facadeOnce.Do(func() {
		facadeData, facadeErr = moe.Train(moe.TrainingConfig{
			Duration:           30,
			WorkloadsPerTarget: 3,
			Seed:               11,
		})
	})
	if facadeErr != nil {
		t.Fatalf("training failed: %v", facadeErr)
	}
	return facadeData
}

func TestCanonicalExpertsRunnable(t *testing.T) {
	set := moe.CanonicalExperts()
	if len(set) != 4 {
		t.Fatalf("canonical experts = %d", len(set))
	}
	m, err := moe.NewMixture(set)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := moe.NewRuntime(m, 32)
	if err != nil {
		t.Fatal(err)
	}
	f := moe.CombineFeatures(
		moe.CodeFeatures{LoadStore: 0.032, Instructions: 0.026, Branches: 0.2},
		moe.EnvFeatures{WorkloadThreads: 4, Processors: 8, RunQueue: 16, Load1: 4.76, Load5: 2.17, CachedMem: 1.11, PageFreeRate: 1.65},
	)
	for i := 0; i < 5; i++ {
		n := rt.Decide(moe.Observation{Time: float64(i), Features: f, RegionStart: i == 0})
		if n < 1 || n > 32 {
			t.Fatalf("decision %d out of range", n)
		}
	}
	if rt.Decisions() != 5 {
		t.Errorf("decisions = %d", rt.Decisions())
	}
	if _, ok := rt.MixtureStatsSnapshot(); !ok {
		t.Error("mixture stats should be available")
	}
	if rt.PolicyName() != "mixture" {
		t.Errorf("policy name = %s", rt.PolicyName())
	}
}

func TestBuildExpertsSizes(t *testing.T) {
	data := trainedData(t)
	for _, k := range []int{1, 2, 4, 8} {
		set, err := moe.BuildExperts(data, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(set) != k {
			t.Errorf("k=%d built %d experts", k, len(set))
		}
	}
	if _, err := moe.BuildExperts(data, 3); err == nil {
		t.Error("unsupported size should error")
	}
}

func TestNewRuntimeValidation(t *testing.T) {
	if _, err := moe.NewRuntime(nil, 8); err == nil {
		t.Error("nil policy should error")
	}
	if _, err := moe.NewRuntime(moe.NewDefaultPolicy(), 0); err == nil {
		t.Error("zero maxThreads should error")
	}
}

func TestSimulateMixtureBeatsDefaultUnderLoad(t *testing.T) {
	data := trainedData(t)
	set, err := moe.BuildExperts(data, 4)
	if err != nil {
		t.Fatal(err)
	}
	mix, err := moe.NewTrainedMixture(data, set)
	if err != nil {
		t.Fatal(err)
	}
	spec := moe.Simulation{
		Target:    "cg",
		Workload:  []string{"is", "cg"},
		Frequency: moe.LowFrequency,
		Seed:      7,
	}
	spec.Policy = moe.NewDefaultPolicy()
	base, err := moe.Simulate(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Policy = mix
	tuned, err := moe.Simulate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if tuned.ExecTime >= base.ExecTime {
		t.Errorf("mixture (%v) should beat default (%v) for cg under load", tuned.ExecTime, base.ExecTime)
	}
	if tuned.Decisions == 0 {
		t.Error("no decisions recorded")
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := moe.Simulate(moe.Simulation{Target: "lu"}); err == nil {
		t.Error("missing policy should error")
	}
	if _, err := moe.Simulate(moe.Simulation{Target: "nope", Policy: moe.NewDefaultPolicy()}); err == nil {
		t.Error("unknown target should error")
	}
}

func TestSimulateWorkloadPolicies(t *testing.T) {
	// Smart-vs-smart (§7.4): both sides adaptive must still run to
	// completion and report workload throughput.
	out, err := moe.Simulate(moe.Simulation{
		Target:           "lu",
		Policy:           moe.NewOnlinePolicy(),
		Workload:         []string{"cg"},
		WorkloadPolicies: []moe.Policy{moe.NewOnlinePolicy()},
		Frequency:        moe.LowFrequency,
		Seed:             5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.WorkloadThroughput <= 0 {
		t.Error("workload throughput missing")
	}
}

func TestBaselinePolicyConstructors(t *testing.T) {
	data := trainedData(t)
	mono, err := moe.BuildExperts(data, 1)
	if err != nil {
		t.Fatal(err)
	}
	off, err := moe.NewOfflinePolicy(mono)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []moe.Policy{
		moe.NewDefaultPolicy(), moe.NewOnlinePolicy(), off, moe.NewAnalyticPolicy(3),
	} {
		if p.Name() == "" {
			t.Error("policy without a name")
		}
	}
	if _, err := moe.NewOfflinePolicy(nil); err == nil {
		t.Error("empty expert set should error")
	}
}

func TestProgramsListed(t *testing.T) {
	progs := moe.Programs()
	if len(progs) != 16 {
		t.Errorf("programs = %d", len(progs))
	}
}

func TestTunerWithRealKernels(t *testing.T) {
	m, err := moe.NewMixture(moe.CanonicalExperts())
	if err != nil {
		t.Fatal(err)
	}
	tuner, err := moe.NewTuner(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := moe.NewBlackScholesKernel(20_000)
	for i := 0; i < 3; i++ {
		res := tuner.ExecuteRegion(k, 20_000)
		if res.Workers < 1 {
			t.Fatalf("region %d: %d workers", i, res.Workers)
		}
	}
	st := moe.NewStencilKernel(10_000)
	tuner.ExecuteRegion(st, 10_000)
	st.Swap()
	sp := moe.NewSparseMatVecKernel(5_000, 8)
	tuner.ExecuteRegion(sp, 5_000)
	if tuner.Regions() != 5 {
		t.Errorf("regions = %d", tuner.Regions())
	}
}

func TestSaveLoadExperts(t *testing.T) {
	data := trainedData(t)
	set, err := moe.BuildExperts(data, 4)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/experts.json"
	if err := moe.SaveExperts(set, path); err != nil {
		t.Fatal(err)
	}
	back, err := moe.LoadExperts(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 4 {
		t.Fatalf("loaded %d experts", len(back))
	}
	// A mixture over reloaded experts must still run.
	m, err := moe.NewMixture(back)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := moe.NewRuntime(m, 32)
	if err != nil {
		t.Fatal(err)
	}
	f := moe.CombineFeatures(moe.CodeFeatures{LoadStore: 0.05, Instructions: 0.1, Branches: 0.01},
		moe.EnvFeatures{Processors: 16, WorkloadThreads: 8, Load1: 20, Load5: 18})
	if n := rt.Decide(moe.Observation{Features: f, RegionStart: true}); n < 1 || n > 32 {
		t.Errorf("decision %d out of range", n)
	}
}

func TestRetrofitExpertFacade(t *testing.T) {
	data := trainedData(t)
	h, err := moe.RetrofitExpert("slot", moe.SlotHeuristic, data, 32)
	if err != nil {
		t.Fatal(err)
	}
	set, err := moe.BuildExperts(data, 4)
	if err != nil {
		t.Fatal(err)
	}
	pool := append(moe.ExpertSet{}, set...)
	pool = append(pool, h)
	m, err := moe.NewMixture(pool)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("nil mixture")
	}
}
