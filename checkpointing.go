package moe

import (
	"fmt"
	"math"

	"moe/internal/checkpoint"
	"moe/internal/sim"
	"moe/internal/stats"
)

// Crash safety. A Runtime can persist its full online decision state — the
// wrapped policy's learned state plus the runtime-level bookkeeping — to a
// checkpoint directory: periodic atomic snapshots plus a write-ahead
// journal of every raw observation in between. After a crash, a freshly
// constructed runtime (same policy construction, same machine cap) calls
// Resume to load the newest intact snapshot and replay the journal tail
// through the ordinary decision path, reproducing the pre-crash state
// bit-identically. See internal/checkpoint for the on-disk format and the
// torn-write recovery ladder.

type (
	// RuntimeState is a point-in-time capture of a Runtime's online state.
	RuntimeState = checkpoint.State
	// CheckpointStore is a checkpoint directory handle.
	CheckpointStore = checkpoint.Store
	// CheckpointOptions tunes a store (journal fsync policy).
	CheckpointOptions = checkpoint.Options
	// CheckpointRecovery reports what Resume reconstructed.
	CheckpointRecovery = checkpoint.Recovery
)

// OpenCheckpoint opens (creating if needed) a checkpoint directory with
// every journal append fsynced.
func OpenCheckpoint(dir string) (*CheckpointStore, error) {
	return checkpoint.Open(dir)
}

// OpenCheckpointOptions is OpenCheckpoint with explicit options.
func OpenCheckpointOptions(dir string, opts CheckpointOptions) (*CheckpointStore, error) {
	return checkpoint.OpenOptions(dir, opts)
}

// Snapshot captures the runtime's complete online state. The returned
// value is a deep copy, safe to hold across further Decide calls.
func (r *Runtime) Snapshot() (*RuntimeState, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.snapshotLocked()
}

func (r *Runtime) snapshotLocked() (*checkpoint.State, error) {
	ps, err := checkpoint.CapturePolicy(r.policy)
	if err != nil {
		return nil, err
	}
	return &checkpoint.State{
		PolicyName: r.policy.Name(),
		MaxThreads: r.maxThreads,
		Decisions:  r.decisions,
		LastN:      r.lastN,
		Clock:      r.clock,
		LastAvail:  r.lastAvail,
		Sanitized:  r.sanitized,
		Hist:       r.hist.Counts(),
		Policy:     ps,
	}, nil
}

// Restore overlays a captured state onto this runtime. The runtime must
// have been constructed the same way as the one that produced the state:
// same policy name and construction inputs, same machine cap — Restore
// supplies everything learned online, not the offline artifacts. On error
// the runtime is unchanged.
func (r *Runtime) Restore(st *RuntimeState) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.restoreLocked(st)
}

func (r *Runtime) restoreLocked(st *checkpoint.State) error {
	if st == nil {
		return fmt.Errorf("moe: nil runtime state")
	}
	if st.PolicyName != r.policy.Name() {
		return fmt.Errorf("moe: state is for policy %q, runtime wraps %q", st.PolicyName, r.policy.Name())
	}
	if st.MaxThreads != r.maxThreads {
		return fmt.Errorf("moe: state is for a %d-thread machine, runtime caps at %d", st.MaxThreads, r.maxThreads)
	}
	if st.Decisions < 0 || st.Sanitized < 0 {
		return fmt.Errorf("moe: negative counters in runtime state")
	}
	if st.LastN < 1 || st.LastN > r.maxThreads {
		return fmt.Errorf("moe: last thread count %d outside [1, %d]", st.LastN, r.maxThreads)
	}
	if st.LastAvail < 0 || st.LastAvail > r.maxThreads {
		return fmt.Errorf("moe: last availability %d outside [0, %d]", st.LastAvail, r.maxThreads)
	}
	if math.IsNaN(st.Clock) || math.IsInf(st.Clock, 0) {
		return fmt.Errorf("moe: non-finite clock in runtime state")
	}
	for n, c := range st.Hist {
		if n < 1 || c < 0 {
			return fmt.Errorf("moe: invalid histogram entry %d:%d in runtime state", n, c)
		}
	}
	// Policy restore validates everything before mutating; it is the only
	// fallible mutation, so ordering it first keeps Restore all-or-nothing.
	if err := checkpoint.RestorePolicy(r.policy, st.Policy); err != nil {
		return err
	}
	r.decisions = st.Decisions
	r.lastN = st.LastN
	r.clock = st.Clock
	r.lastAvail = st.LastAvail
	r.sanitized = st.Sanitized
	r.hist = stats.NewHistogramFromCounts(st.Hist)
	// Rebuild the flat mirror behind the histogram read shard and
	// republish, so accessors see the restored state immediately.
	r.histArr = make([]int64, r.maxThreads+1)
	r.histTotal = 0
	for n, c := range st.Hist {
		if c <= 0 {
			continue
		}
		for len(r.histArr) <= n {
			r.histArr = append(r.histArr, 0)
		}
		r.histArr[n] += int64(c)
		r.histTotal += int64(c)
	}
	r.publishLocked()
	return nil
}

// AttachStore starts checkpointing this runtime into store: an immediate
// snapshot (which also seals any stale journal tail under a fresh epoch),
// then a write-ahead journal entry per decision, then an automatic
// snapshot every checkpointEvery decisions (0 disables periodic snapshots;
// the journal alone already recovers everything).
//
// Durability never blocks decisions: if a checkpoint write fails, the
// error is latched for CheckpointErr, further writes stop, and Decide
// keeps serving from memory.
func (r *Runtime) AttachStore(store *CheckpointStore, checkpointEvery int) error {
	if store == nil {
		return fmt.Errorf("moe: nil checkpoint store")
	}
	if checkpointEvery < 0 {
		return fmt.Errorf("moe: negative checkpoint interval %d", checkpointEvery)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.store != nil {
		return fmt.Errorf("moe: a checkpoint store is already attached")
	}
	st, err := r.snapshotLocked()
	if err != nil {
		return err
	}
	if err := store.WriteSnapshot(st); err != nil {
		return err
	}
	r.store = store
	r.checkpointEvery = checkpointEvery
	return nil
}

// CheckpointErr returns the first checkpoint write failure, if any.
// Decisions continue in memory after a failure; a host that requires
// durability should poll this and fail over. Shard-backed: reflects state
// as of the last completed decision call, and never blocks on one.
func (r *Runtime) CheckpointErr() error {
	r.counters.mu.RLock()
	defer r.counters.mu.RUnlock()
	return r.counters.ckptErr
}

// Resume loads the store's newest recoverable state into this freshly
// constructed runtime and replays the journal tail through the ordinary
// decision path, leaving the runtime exactly where the crashed one was
// after its last durably journaled decision. The runtime must not have
// decided yet. Resume does not attach the store; call AttachStore after —
// its immediate snapshot starts a clean epoch past any torn tail.
func (r *Runtime) Resume(store *CheckpointStore) (*CheckpointRecovery, error) {
	if store == nil {
		return nil, fmt.Errorf("moe: nil checkpoint store")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.decisions != 0 || r.store != nil {
		return nil, fmt.Errorf("moe: Resume requires a fresh runtime")
	}
	rec, err := store.Recover()
	if err != nil {
		return nil, err
	}
	if rec.State != nil {
		if err := r.restoreLocked(rec.State); err != nil {
			return nil, err
		}
	}
	for _, o := range rec.Tail {
		r.decideLocked(Observation{
			Time:           o.Time,
			Features:       o.Features,
			Rate:           o.Rate,
			RegionStart:    o.RegionStart,
			AvailableProcs: o.AvailableProcs,
		}, nil)
	}
	r.publishLocked()
	return rec, nil
}

// SimPolicy adapts the runtime to the simulator's Policy interface so
// engine-driven experiments exercise the full runtime path — observation
// sanitization, availability fallback, journaling — rather than the bare
// policy. The runtime substitutes its own decision count and thread
// bookkeeping for the engine's RegionIndex/CurrentThreads, so compare
// runtime-wrapped variants only against other runtime-wrapped variants.
func (r *Runtime) SimPolicy() Policy {
	return runtimePolicy{r}
}

type runtimePolicy struct{ r *Runtime }

func (p runtimePolicy) Name() string { return p.r.PolicyName() }

func (p runtimePolicy) Decide(d sim.Decision) int {
	return p.r.Decide(Observation{
		Time:           d.Time,
		Features:       d.Features,
		Rate:           d.Rate,
		RegionStart:    d.RegionStart,
		AvailableProcs: d.AvailableProcs,
	})
}
