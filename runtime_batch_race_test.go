package moe_test

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"moe"
	"moe/internal/sim"
	"moe/internal/telemetry"
)

// Concurrency suite for the sharded read path: batches mutating runtime and
// mixture state (including expert health flips mid-batch) while readers
// storm every shard-backed accessor. Run under -race in CI; the invariant
// assertions also catch torn histogram reads (counts/total mismatch) that
// the race detector alone would miss.

// assertCoherentReads hammers every lock-free accessor once and checks the
// cross-field invariants a torn read would break.
func assertCoherentReads(t *testing.T, rt *moe.Runtime, lastDecisions *int) {
	t.Helper()
	d := rt.Decisions()
	if d < *lastDecisions {
		t.Errorf("Decisions went backwards: %d after %d", d, *lastDecisions)
	}
	*lastDecisions = d
	hist := rt.ThreadHistogram()
	sum := 0.0
	for n, frac := range hist {
		if n < 1 || n > ckptMaxThreads {
			t.Errorf("histogram bin %d out of range", n)
		}
		sum += frac
	}
	if len(hist) > 0 && math.Abs(sum-1) > 1e-9 {
		t.Errorf("histogram fractions sum to %v — torn shard read", sum)
	}
	bs := rt.BatchStats()
	// Compare against a decisions read taken AFTER the stats read: both are
	// published atomically under one lock and decisions is monotone, so
	// stats ≤ decisions-at-stats-time ≤ decisions-now. (Comparing against
	// the earlier read of d races the writer: whole batches can land
	// between the two accessor calls.)
	if after := rt.Decisions(); bs.FastDecisions < 0 || bs.FullDecisions < 0 || bs.FastDecisions+bs.FullDecisions > after {
		t.Errorf("batch stats %+v inconsistent with %d decisions", bs, after)
	}
	if rt.SanitizedValues() < 0 {
		t.Error("negative sanitized count")
	}
	if rt.PolicyName() == "" {
		t.Error("empty policy name")
	}
	rt.CheckpointErr()
}

// TestDecideBatchConcurrentAccessors: one goroutine streams batches (steady
// and adversarial interleaved, so both fast and full paths run) while
// reader goroutines storm the accessors.
func TestDecideBatchConcurrentAccessors(t *testing.T) {
	rt, err := moe.NewRuntime(canonicalMixture(t), ckptMaxThreads)
	if err != nil {
		t.Fatal(err)
	}
	var done atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := 0
			for !done.Load() {
				assertCoherentReads(t, rt, &last)
			}
		}()
	}
	var dst []int
	for i := 0; i < 60; i++ {
		obs := make([]moe.Observation, 16)
		for j := range obs {
			k := i*16 + j
			if i%3 == 2 {
				obs[j] = adversarialObservation(k)
			} else {
				obs[j] = steadyObservation(k)
			}
		}
		dst = rt.DecideBatchInto(dst[:0], obs)
	}
	done.Store(true)
	wg.Wait()
	if rt.Decisions() != 60*16 {
		t.Fatalf("decisions = %d, want %d", rt.Decisions(), 60*16)
	}
	bs := rt.BatchStats()
	if bs.Batches != 60 || bs.FastDecisions+bs.FullDecisions != 60*16 {
		t.Fatalf("batch stats %+v don't cover the run", bs)
	}
	if bs.FastDecisions == 0 {
		t.Fatal("fast path never ran — the race coverage is vacuous")
	}
}

// TestDecideBatchWriterReaderTorture flips expert health mid-batch (the
// wild-expert pool quarantines, probations and re-quarantines continuously)
// while readers hammer accessors AND the serializing introspectors
// (MixtureStatsSnapshot, Snapshot) from other goroutines.
func TestDecideBatchWriterReaderTorture(t *testing.T) {
	m, err := moe.NewMixture(wildExpertSet())
	if err != nil {
		t.Fatal(err)
	}
	rt, err := moe.NewRuntime(m, ckptMaxThreads)
	if err != nil {
		t.Fatal(err)
	}
	var done atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := 0
			for !done.Load() {
				assertCoherentReads(t, rt, &last)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !done.Load() {
			if st, ok := rt.MixtureStatsSnapshot(); !ok || st.Decisions < 0 {
				t.Error("mixture snapshot incoherent")
			}
			if _, err := rt.Snapshot(); err != nil {
				t.Errorf("snapshot failed: %v", err)
			}
		}
	}()
	for i := 0; i < 40; i++ {
		obs := make([]moe.Observation, 16)
		for j := range obs {
			obs[j] = steadyObservation(i*16 + j)
		}
		rt.DecideBatch(obs)
	}
	done.Store(true)
	wg.Wait()
	st, _ := rt.MixtureStatsSnapshot()
	if st.QuarantineCount[1] == 0 {
		t.Fatal("wild expert never quarantined — the torture never flipped health")
	}
}

// TestShardedRuntimeConcurrent drives every shard from its own goroutines
// and checks the merged accessors.
func TestShardedRuntimeConcurrent(t *testing.T) {
	const shards, workers, batches, size = 4, 8, 30, 16
	srt, err := moe.NewShardedRuntime(shards, ckptMaxThreads, func(int) (moe.Policy, error) {
		m, err := moe.NewMixture(moe.CanonicalExperts())
		return m, err
	})
	if err != nil {
		t.Fatal(err)
	}
	if srt.Shards() != shards {
		t.Fatalf("shards = %d, want %d", srt.Shards(), shards)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(key uint64) {
			defer wg.Done()
			var dst []int
			for i := 0; i < batches; i++ {
				obs := make([]moe.Observation, size)
				for j := range obs {
					obs[j] = steadyObservation(i*size + j)
				}
				dst = srt.DecideBatchInto(key, dst[:0], obs)
				srt.Decisions()
				srt.ThreadHistogram()
				srt.BatchStats()
			}
		}(uint64(w))
	}
	wg.Wait()
	if got, want := srt.Decisions(), workers*batches*size; got != want {
		t.Fatalf("merged decisions = %d, want %d", got, want)
	}
	bs := srt.BatchStats()
	if bs.Batches != workers*batches || bs.FastDecisions+bs.FullDecisions != workers*batches*size {
		t.Fatalf("merged batch stats %+v don't cover the run", bs)
	}
	sum := 0.0
	for _, frac := range srt.ThreadHistogram() {
		sum += frac
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("merged histogram fractions sum to %v", sum)
	}
	// Per-shard inspection works and sums to the merge.
	perShard := 0
	for i := 0; i < shards; i++ {
		perShard += srt.Shard(i).Decisions()
	}
	if perShard != workers*batches*size {
		t.Fatalf("per-shard decisions sum to %d", perShard)
	}
}

// introspectingPolicy reads the runtime's shard-backed accessors from
// INSIDE Decide — the pattern that deadlocked when accessors took the
// decision lock. The rt field is set after construction (the runtime must
// exist first); nil-checked because NewRuntime probes Name before that.
type introspectingPolicy struct {
	inner moe.Policy
	rt    *moe.Runtime
	reads int
}

func (p *introspectingPolicy) Name() string { return p.inner.Name() }

func (p *introspectingPolicy) Decide(d sim.Decision) int {
	if p.rt != nil {
		before := p.rt.Decisions()
		p.rt.ThreadHistogram()
		p.rt.SanitizedValues()
		p.rt.BatchStats()
		p.rt.CheckpointErr()
		if p.rt.PolicyName() == "" {
			panic("empty policy name mid-decision")
		}
		// Shard semantics: mid-decision reads see the state published by
		// the last COMPLETED call — never this in-flight decision.
		if before > d.RegionIndex {
			panic("accessor observed an unpublished decision")
		}
		p.reads++
	}
	return p.inner.Decide(d)
}

// introspectingSink reads accessors from inside RecordDecision, under the
// decision lock — the telemetry flavor of the same regression.
type introspectingSink struct {
	rt    *moe.Runtime
	reads int
}

func (s *introspectingSink) RecordDecision(rec *telemetry.Record) {
	if s.rt.Decisions() > rec.Seq {
		panic("sink observed an unpublished decision")
	}
	s.rt.ThreadHistogram()
	s.rt.BatchStats()
	s.reads++
}

// TestAccessorsReentrantFromDecisionPath is the double-lock regression
// test: on the pre-shard runtime (accessors behind the decision mutex) both
// halves of this test deadlock instantly.
func TestAccessorsReentrantFromDecisionPath(t *testing.T) {
	t.Run("from-policy", func(t *testing.T) {
		p := &introspectingPolicy{inner: canonicalMixture(t)}
		rt, err := moe.NewRuntime(p, ckptMaxThreads)
		if err != nil {
			t.Fatal(err)
		}
		p.rt = rt
		for i := 0; i < 10; i++ {
			rt.Decide(steadyObservation(i))
		}
		obs := make([]moe.Observation, 20)
		for j := range obs {
			obs[j] = steadyObservation(10 + j)
		}
		rt.DecideBatch(obs)
		if p.reads != 30 {
			t.Fatalf("policy introspected %d decisions, want 30", p.reads)
		}
	})
	t.Run("from-sink", func(t *testing.T) {
		rt, err := moe.NewRuntime(canonicalMixture(t), ckptMaxThreads)
		if err != nil {
			t.Fatal(err)
		}
		sink := &introspectingSink{rt: rt}
		rt.SetTelemetry(sink)
		for i := 0; i < 10; i++ {
			rt.Decide(steadyObservation(i))
		}
		obs := make([]moe.Observation, 20)
		for j := range obs {
			obs[j] = steadyObservation(10 + j)
		}
		rt.DecideBatch(obs)
		if sink.reads != 30 {
			t.Fatalf("sink saw %d decisions, want 30", sink.reads)
		}
	})
}
