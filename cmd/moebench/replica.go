package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"moe/internal/experiments"
	"moe/internal/serve"
)

// The replication study: the decision daemon's hot-standby cost, measured
// end to end. The same fixed workload — sequential per-tenant batches over
// real HTTP — runs twice: once standalone, once as a primary shipping every
// committed checkpoint artifact to a live standby (group flush before each
// ack, the exactly-once commit path). The committed evidence
// (BENCH_PR8.json) reports sustained decisions/sec for both, the overhead
// ratio, the final replication lag (must be zero: every ack was shipped),
// and a scripted failover: the standby is promoted and every tenant must
// resume at exactly its acked decision count.

type replicaOpts struct {
	Tenants int // concurrent tenants
	Rounds  int // sequential batches per tenant
	Batch   int // observations per batch
}

func defaultReplicaOpts() replicaOpts {
	return replicaOpts{Tenants: 8, Rounds: 32, Batch: 16}
}

type replicaReport struct {
	Tenants     int `json:"tenants"`
	Rounds      int `json:"rounds"`
	Batch       int `json:"batch"`
	DecisionsPT int `json:"decisions_per_tenant"`

	SoloDecisionsPerSec       float64 `json:"solo_decisions_per_sec"`
	ReplicatedDecisionsPerSec float64 `json:"replicated_decisions_per_sec"`
	ReplicationOverhead       float64 `json:"replication_overhead_ratio"`

	// FinalLag is shipments buffered on the primary but never applied by
	// the standby when the load stopped: 0 means every ack was preceded by
	// a complete group flush.
	FinalLag int64 `json:"final_replication_lag"`

	// Failover proof: after promoting the standby, every tenant resumed at
	// exactly its acked decision count.
	PromotedTerm     uint64 `json:"promoted_term"`
	FailoverVerified int    `json:"failover_verified_tenants"`
	FailoverMismatch int    `json:"failover_mismatched_tenants"`

	Notes []string `json:"notes"`
}

// driveReplicaLoad runs the fixed workload against base and returns the
// elapsed wall time. One goroutine per tenant; each tenant's stream is
// strictly sequential, every request carries an idempotency key (the
// realistic client posture the dedup window exists for).
func driveReplicaLoad(base string, opts replicaOpts) (time.Duration, error) {
	errs := make(chan error, opts.Tenants)
	start := time.Now()
	for ti := 0; ti < opts.Tenants; ti++ {
		go func(ti int) {
			id := fmt.Sprintf("acct-%03d", ti)
			cl := &serveClient{base: base, client: &http.Client{Timeout: 30 * time.Second}}
			for r := 0; r < opts.Rounds; r++ {
				status, resp, err := cl.postID(id, tenantSeed(id), r*opts.Batch, opts.Batch,
					10000, fmt.Sprintf("req-%s-%d", id, r))
				if err != nil || status != http.StatusOK {
					errs <- fmt.Errorf("tenant %s round %d: status %d err %v", id, r, status, err)
					return
				}
				if want := int64((r + 1) * opts.Batch); resp.Decisions != want {
					errs <- fmt.Errorf("tenant %s round %d: decisions %d, want %d", id, r, resp.Decisions, want)
					return
				}
			}
			errs <- nil
		}(ti)
	}
	for ti := 0; ti < opts.Tenants; ti++ {
		if err := <-errs; err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// postID is post with an idempotency key.
func (c *serveClient) postID(tenant string, seed, from, n, deadlineMs int, reqID string) (int, *serveWireResp, error) {
	obs := make([]map[string]any, n)
	for i := range obs {
		obs[i] = serveObservation(seed, from+i)
	}
	body, err := json.Marshal(map[string]any{"tenant": tenant, "observations": obs, "request_id": reqID})
	if err != nil {
		return 0, nil, err
	}
	req, err := http.NewRequest(http.MethodPost, c.base+"/v1/decide", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if deadlineMs > 0 {
		req.Header.Set("X-Deadline-Ms", fmt.Sprint(deadlineMs))
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var out serveWireResp
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, &out, nil
}

func startReplicaServer(cfg serve.Config) (*serve.Server, *http.Server, string, error) {
	srv, err := serve.NewServer(cfg)
	if err != nil {
		return nil, nil, "", err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, nil, "", err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	return srv, httpSrv, "http://" + ln.Addr().String(), nil
}

func runReplica(opts replicaOpts) (*replicaReport, error) {
	rep := &replicaReport{
		Tenants:     opts.Tenants,
		Rounds:      opts.Rounds,
		Batch:       opts.Batch,
		DecisionsPT: opts.Rounds * opts.Batch,
	}
	totalDecisions := float64(opts.Tenants * opts.Rounds * opts.Batch)
	baseCfg := serve.Config{
		MaxThreads:      throughputMaxThreads,
		CheckpointEvery: 128,
		MaxInflight:     opts.Tenants * 2,
	}

	// Leg 1: standalone.
	soloRoot, err := os.MkdirTemp("", "moed-replica-solo-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(soloRoot)
	soloCfg := baseCfg
	soloCfg.CheckpointRoot = soloRoot
	soloSrv, soloHTTP, soloBase, err := startReplicaServer(soloCfg)
	if err != nil {
		return nil, err
	}
	soloElapsed, err := driveReplicaLoad(soloBase, opts)
	soloHTTP.Close()
	soloSrv.Close()
	if err != nil {
		return nil, fmt.Errorf("solo leg: %w", err)
	}
	rep.SoloDecisionsPerSec = totalDecisions / soloElapsed.Seconds()

	// Leg 2: primary + hot standby on loopback.
	sbRoot, err := os.MkdirTemp("", "moed-replica-sb-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(sbRoot)
	primRoot, err := os.MkdirTemp("", "moed-replica-prim-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(primRoot)

	sbCfg := baseCfg
	sbCfg.Standby = true
	sbCfg.CheckpointRoot = sbRoot
	sbSrv, sbHTTP, sbBase, err := startReplicaServer(sbCfg)
	if err != nil {
		return nil, err
	}
	defer sbHTTP.Close()
	defer sbSrv.Close()

	primCfg := baseCfg
	primCfg.CheckpointRoot = primRoot
	primCfg.ReplicateTo = sbBase
	primSrv, primHTTP, primBase, err := startReplicaServer(primCfg)
	if err != nil {
		return nil, err
	}
	replElapsed, err := driveReplicaLoad(primBase, opts)
	if err != nil {
		primHTTP.Close()
		primSrv.Close()
		return nil, fmt.Errorf("replicated leg: %w", err)
	}
	rep.ReplicatedDecisionsPerSec = totalDecisions / replElapsed.Seconds()
	if rep.ReplicatedDecisionsPerSec > 0 {
		rep.ReplicationOverhead = rep.SoloDecisionsPerSec / rep.ReplicatedDecisionsPerSec
	}
	rep.FinalLag = primSrv.ReplicaLag()

	// Failover: hard-stop the primary, promote the standby, verify every
	// tenant resumed at exactly its acked decision count.
	primHTTP.Close()
	primSrv.Close()
	resp, err := http.Post(sbBase+"/v1/promote", "application/json", nil)
	if err != nil {
		return nil, err
	}
	var prep serve.PromoteReport
	err = json.NewDecoder(resp.Body).Decode(&prep)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	rep.PromotedTerm = prep.Term
	want := int64(opts.Rounds * opts.Batch)
	for _, pt := range prep.Tenants {
		if pt.Err == "" && pt.Decisions == want {
			rep.FailoverVerified++
		} else {
			rep.FailoverMismatch++
			rep.Notes = append(rep.Notes, fmt.Sprintf("tenant %s promoted at %d decisions (err %q), want %d",
				pt.ID, pt.Decisions, pt.Err, want))
		}
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("replication: group flush before every ack; %.0f vs %.0f decisions/s (%.2fx overhead), final lag %d",
			rep.SoloDecisionsPerSec, rep.ReplicatedDecisionsPerSec, rep.ReplicationOverhead, rep.FinalLag),
		fmt.Sprintf("failover: standby promoted at term %d with %d/%d tenants at their exact acked decision count",
			rep.PromotedTerm, rep.FailoverVerified, opts.Tenants))
	return rep, nil
}

func replicaTable(rep *replicaReport) *experiments.Table {
	t := &experiments.Table{
		Title:   "Hot-standby replication — throughput cost and failover exactness",
		Columns: []string{"value"},
		Notes:   rep.Notes,
	}
	t.AddRow("tenants", float64(rep.Tenants))
	t.AddRow("decisions/sec solo", rep.SoloDecisionsPerSec)
	t.AddRow("decisions/sec replicated", rep.ReplicatedDecisionsPerSec)
	t.AddRow("overhead ratio", rep.ReplicationOverhead)
	t.AddRow("final replication lag", float64(rep.FinalLag))
	t.AddRow("failover tenants exact", float64(rep.FailoverVerified))
	t.AddRow("failover mismatches", float64(rep.FailoverMismatch))
	return t
}

// writeReplicaJSON runs the study and writes the committed artifact
// (BENCH_PR8.json). A non-zero final lag or any failover mismatch is a
// hard failure: the artifact must never certify a pair that can lose an
// acked decision.
func writeReplicaJSON(path string) error {
	rep, err := runReplica(defaultReplicaOpts())
	if err != nil {
		return err
	}
	if rep.FinalLag != 0 {
		return fmt.Errorf("replication lag %d after load stopped: acked decisions not fully shipped", rep.FinalLag)
	}
	if rep.FailoverMismatch > 0 {
		return fmt.Errorf("failover mismatch on %d tenants", rep.FailoverMismatch)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "moebench: replica %d tenants, %.0f solo vs %.0f replicated decisions/s (%.2fx), lag=%d, failover %d/%d exact at term %d, wrote %s\n",
		rep.Tenants, rep.SoloDecisionsPerSec, rep.ReplicatedDecisionsPerSec, rep.ReplicationOverhead,
		rep.FinalLag, rep.FailoverVerified, rep.Tenants, rep.PromotedTerm, path)
	return nil
}
