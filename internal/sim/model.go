package sim

import (
	"math"

	"moe/internal/features"
	"moe/internal/workload"
)

// ProgramShares water-fills the available processors across programs: each
// live program is entitled to an equal slot, programs demanding fewer
// threads than their slot cede the surplus, and the surplus is repeatedly
// redistributed. This models per-process (cgroup/autogroup) fairness in the
// OS scheduler: a program cannot grab more CPU simply by spawning more
// threads — which is exactly why over-threading a loaded machine hurts
// (§7.1: "spawning many threads slows down the program") and why thread
// selection matters at all.
//
// demands[i] is program i's runnable thread count; the returned slice gives
// each program's core allocation (Σ ≤ avail, allocation_i ≤ demands_i).
func ProgramShares(demands []int, avail int) []float64 {
	out := make([]float64, len(demands))
	programSharesInto(out, demands, avail)
	return out
}

// programSharesInto is ProgramShares writing into a caller-owned slice
// (len(out) must equal len(demands)) so the engine's stepping loop can
// water-fill into a reusable scratch buffer without allocating.
func programSharesInto(out []float64, demands []int, avail int) {
	for i := range out {
		out[i] = 0
	}
	remaining := float64(avail)
	unsat := 0
	for _, d := range demands {
		if d > 0 {
			unsat++
		}
	}
	// Iterative water-fill: at each round give every unsatisfied program
	// an equal share of what remains; programs whose demand is below the
	// share are finalized and their leftover is redistributed.
	for unsat > 0 && remaining > 1e-9 {
		slot := remaining / float64(unsat)
		progressed := false
		for i, d := range demands {
			if d <= 0 || out[i] > 0 {
				continue
			}
			if float64(d) <= slot {
				out[i] = float64(d)
				remaining -= float64(d)
				unsat--
				progressed = true
			}
		}
		if !progressed {
			// Every remaining program wants at least a full slot:
			// split evenly and finish.
			for i, d := range demands {
				if d > 0 && out[i] == 0 {
					out[i] = slot
				}
			}
			remaining = 0
			break
		}
	}
}

// demand returns the instance's current runnable thread count: regions
// execute their serial prologue on one thread before fanning out, so a
// program's load on the machine fluctuates at region granularity — the
// bursty behaviour visible in the paper's live trace (Fig 1) and the reason
// slow-reacting policies lose to instantaneous ones.
func (in *instance) demand() int {
	if in.serialLeft > 0 {
		return 1
	}
	return in.threads
}

// progressRate computes an instance's instantaneous work rate (units/s)
// given a hypothetical thread count n (only meaningful during the parallel
// phase; serial progress ignores n). Other instances are taken at their
// current demands.
func progressRate(in *instance, insts []*instance, es *engineState, avail, n int) float64 {
	if !in.arrived || in.finished {
		return 0
	}
	if in.serialLeft <= 0 && n != in.threads {
		// Hypothetical thread counts change the demand vector; take the
		// general path.
		return hypotheticalRate(in, insts, es, avail, n)
	}
	// At the instance's actual demand the demand vector — and therefore
	// the water-filled shares — is the same for every instance, so it is
	// computed once per step and shared until a demand moves
	// (es.sharesValid).
	if !es.sharesValid {
		es.refreshShares(insts, avail)
	}
	otherThreads := 0
	otherMem := 0.0
	for _, o := range insts {
		if !o.arrived || o.finished || o == in {
			continue
		}
		dem := o.demand()
		otherThreads += dem
		region := o.region
		active := dem
		if active > region.Grain {
			active = region.Grain
		}
		otherMem += float64(active) * region.MemIntensity
	}
	share := es.sharesBuf[in.compactIdx]
	if in.serialLeft > 0 {
		return serialRate(&es.cfg, in.region, share, otherThreads+1, otherMem, avail)
	}
	return parallelRate(&es.cfg, in.region, n, share, otherThreads, otherMem, avail)
}

// hypotheticalRate is progressRate for a thread count the instance is not
// actually running (oracle labels, curve evaluation): the self demand
// differs from the shared per-step vector, so demands and shares are
// rebuilt. It clobbers the scratch buffers and so invalidates the shared
// shares.
func hypotheticalRate(in *instance, insts []*instance, es *engineState, avail, n int) float64 {
	es.sharesValid = false
	demands := es.demandsBuf[:0]
	otherThreads := 0
	otherMem := 0.0
	self := -1
	for _, o := range insts {
		if !o.arrived || o.finished {
			continue
		}
		if o == in {
			self = len(demands)
			if in.serialLeft > 0 {
				demands = append(demands, 1)
			} else {
				demands = append(demands, n)
			}
			continue
		}
		dem := o.demand()
		demands = append(demands, dem)
		otherThreads += dem
		region := o.region
		active := dem
		if active > region.Grain {
			active = region.Grain
		}
		otherMem += float64(active) * region.MemIntensity
	}
	es.demandsBuf = demands
	if self < 0 {
		return 0
	}
	shares := es.sharesBuf[:len(demands)]
	programSharesInto(shares, demands, avail)
	if in.serialLeft > 0 {
		return serialRate(&es.cfg, in.region, shares[self], otherThreads+1, otherMem, avail)
	}
	return parallelRate(&es.cfg, in.region, n, shares[self], otherThreads, otherMem, avail)
}

// parallelPhaseRate computes the rate the instance's *parallel* phase would
// achieve with n threads, regardless of its current phase — the quantity
// the oracle label and thread policies care about (thread counts only
// matter once the region fans out).
func parallelPhaseRate(in *instance, insts []*instance, es *engineState, avail, n int) float64 {
	es.sharesValid = false
	demands := es.demandsBuf[:0]
	otherThreads := 0
	otherMem := 0.0
	self := -1
	for _, o := range insts {
		if !o.arrived || o.finished {
			continue
		}
		if o == in {
			self = len(demands)
			demands = append(demands, n)
			continue
		}
		dem := o.demand()
		demands = append(demands, dem)
		otherThreads += dem
		region := o.region
		active := dem
		if active > region.Grain {
			active = region.Grain
		}
		otherMem += float64(active) * region.MemIntensity
	}
	es.demandsBuf = demands
	if self < 0 {
		return 0
	}
	shares := es.sharesBuf[:len(demands)]
	programSharesInto(shares, demands, avail)
	return parallelRate(&es.cfg, in.region, n, shares[self], otherThreads, otherMem, avail)
}

// parallelRate is the performance model for a region's parallel phase: work
// units per second with n threads given the program's core allocation
// (slot), the other programs' runnable threads and aggregate memory demand,
// and the processors online. The model composes multiplicatively:
//
//	rate(n) = cores(n, slot) · contention · 1/(1+sync) · 1/(1+oversub) · 1/(1+migration)
//
// Each term responds to the environment the way the paper's narrative
// requires: co-running workloads shrink the slot and raise oversubscription;
// fewer processors do the same; memory-intensive co-runners depress
// memory-bound regions; thread counts beyond the slot buy no CPU but pay
// synchronization, switching and locality costs; affinity scheduling
// suppresses the migration cost.
func parallelRate(cfg *MachineConfig, region *workload.Region, n int, slot float64, otherThreads int, otherMemPressure float64, avail int) float64 {
	if n < 1 {
		n = 1
	}
	if avail < 1 {
		avail = 1
	}
	if slot <= 0 {
		slot = 1e-3
	}
	useful := n
	if useful > region.Grain {
		useful = region.Grain
	}

	// Per-thread speed under the program's slot.
	perThread := slot / float64(n)
	if perThread > 1 {
		perThread = 1
	}

	parCores := float64(useful) * perThread
	if parCores > slot {
		parCores = slot
	}
	if parCores < 1e-6 {
		parCores = 1e-6
	}
	rate := parCores

	// Memory contention: pressure per online core from co-runners and
	// from the program's own active threads once bandwidth saturates.
	ownMem := float64(useful) * region.MemIntensity
	pressure := (otherMemPressure + 0.5*ownMem) / float64(avail)
	rate /= 1 + cfg.ContentionScale*region.MemIntensity*pressure

	// Synchronization: barrier/reduction cost grows with thread count
	// and is amplified when threads time-share (descheduled mid-barrier).
	syncFactor := region.SyncCost * float64(n-1) * (1 + 3*(1-perThread))
	rate /= 1 + syncFactor

	// Oversubscription: context-switch overhead. The background term
	// reflects machine-wide thrashing; the own term charges for own
	// threads beyond the program's slot.
	total := float64(n + otherThreads)
	if over := (total - float64(avail)) / float64(avail); over > 0 {
		rate /= 1 + cfg.OversubPenalty*0.3*over
	}
	if ownOver := (float64(n) - slot) / math.Max(slot, 1); ownOver > 0 {
		rate /= 1 + cfg.OversubPenalty*0.25*ownOver
	}

	rate /= 1 + migrationFactor(cfg, region, total, avail)
	rate /= 1 + numaFactor(cfg, region, n)
	return rate
}

// serialRate is the performance model for a region's serial prologue: one
// runnable thread, so thread count and synchronization play no role, but
// memory contention and migration still apply.
func serialRate(cfg *MachineConfig, region *workload.Region, slot float64, totalThreads int, otherMemPressure float64, avail int) float64 {
	if avail < 1 {
		avail = 1
	}
	speed := slot
	if speed > 1 {
		speed = 1
	}
	if speed <= 0 {
		speed = 1e-3
	}
	pressure := otherMemPressure / float64(avail)
	speed /= 1 + cfg.ContentionScale*region.MemIntensity*pressure
	speed /= 1 + migrationFactor(cfg, region, float64(totalThreads), avail)
	return speed
}

// numaFactor models remote-memory access across sockets (Table 2's
// four-node topology): without affinity the OS scatters a program's
// threads across up to min(n, sockets) sockets; with affinity threads are
// packed onto the fewest sockets that hold them. Memory-bound code pays
// for every remote socket in play.
func numaFactor(cfg *MachineConfig, region *workload.Region, n int) float64 {
	if cfg.Sockets <= 1 {
		return 0
	}
	coresPerSocket := cfg.Cores / cfg.Sockets
	if coresPerSocket < 1 {
		coresPerSocket = 1
	}
	var socketsUsed int
	if cfg.Affinity {
		socketsUsed = (n + coresPerSocket - 1) / coresPerSocket
	} else {
		socketsUsed = n
		if socketsUsed > cfg.Sockets {
			socketsUsed = cfg.Sockets
		}
	}
	if socketsUsed <= 1 {
		return 0
	}
	remote := float64(socketsUsed-1) / float64(socketsUsed)
	return cfg.NUMAPenalty * region.MemIntensity * remote
}

// migrationFactor models lost locality from OS thread migration;
// memory-intensive code pays most, and affinity scheduling (§7.6) pins
// threads and removes most of the cost.
func migrationFactor(cfg *MachineConfig, region *workload.Region, totalThreads float64, avail int) float64 {
	churn := math.Min(1, totalThreads/float64(avail))
	migration := cfg.MigrationPenalty * region.MemIntensity * churn
	if cfg.Affinity {
		migration *= cfg.AffinityResidual
	}
	return migration
}

// regionRate is the amortized whole-region rate (serial prologue plus
// parallel phase) used by calibration tooling: the harmonic composition of
// the two phases weighted by the region's parallel fraction.
func regionRate(cfg *MachineConfig, region *workload.Region, n int, slot float64, otherThreads int, otherMemPressure float64, avail int) float64 {
	p := region.ParallelFrac
	ser := serialRate(cfg, region, math.Min(slot, 1), otherThreads+1, otherMemPressure, avail)
	par := parallelRate(cfg, region, n, slot, otherThreads, otherMemPressure, avail)
	return 1 / ((1-p)/ser + p/par)
}

// sampleEnv builds the machine-wide environment at time t and advances the
// metric state (load averages, page-scan EMA). Call once per timestep. The
// second return is the raw (unsmoothed) runnable thread count.
func sampleEnv(insts []*instance, es *engineState, t float64, avail int, dt float64) (features.Env, int) {
	runnable := 0
	memGB := 0.0
	for _, in := range insts {
		if !in.arrived || in.finished {
			continue
		}
		runnable += in.demand()
		memGB += in.spec.Program.WorkingSetGB
	}

	load1 := es.load1.Update(float64(runnable), dt)
	load5 := es.load5.Update(float64(runnable), dt)

	runqNow := runnable - avail
	if runqNow < 0 {
		runqNow = 0
	}
	// Thread counts and the run queue are reported as short sampling-
	// interval averages, the way sar/vmstat report them — instantaneous
	// spikes from co-runners fanning out and joining are smoothed away.
	smoothRunnable := es.wlEMA.Update(float64(runnable), dt)
	runq := es.runqEMA.Update(float64(runqNow), dt)

	// Cached memory: working sets fill the page cache; memory pressure
	// evicts pages, observable as the page-free rate (f10, thousands of
	// pages/s).
	cached := memGB
	pageFree := 0.1 // background reclaim
	if cached > es.cfg.MemoryGB {
		overGB := cached - es.cfg.MemoryGB
		cached = es.cfg.MemoryGB
		pageFree += overGB * 0.8
	}
	pageFree = es.pageEMA.Update(pageFree, dt)

	return features.Env{
		WorkloadThreads: smoothRunnable, // per-program view uses its own smoothed external count
		Processors:      float64(avail),
		RunQueue:        runq,
		Load1:           load1,
		Load5:           load5,
		CachedMem:       cached,
		PageFreeRate:    pageFree,
	}, runnable
}

// envExcluding adapts the machine-wide environment to one program's view:
// f4 counts only *external* workload threads (§5.2.2 "workload threads"),
// smoothed per instance so the program's own phase transitions do not
// appear as workload churn.
func envExcluding(env features.Env, self *instance) features.Env {
	out := env
	out.WorkloadThreads = self.extWL.Value()
	if out.WorkloadThreads < 0 {
		out.WorkloadThreads = 0
	}
	return out
}
