package moe_test

import (
	"testing"

	"moe"
	"moe/internal/chaos"
	"moe/internal/features"
	"moe/internal/telemetry"
)

// The regime dispatcher's safety contract under fault injection: a decision
// on which ANY ladder rung engages — a sanitizer repair, a suspect verdict,
// a reroute or fallback, a health transition — must never be served by the
// fast path. The test derives ground truth from an instrumented reference
// run (telemetry observes and never steers, so the reference decisions are
// the silent ones), then replays the identical stream through the batch
// dispatcher one observation per batch, reading the fast/full counters
// after each.
//
// Demotion is allowed to be conservative (the plan may fail on decisions
// the ladder would have let through — e.g. a repaired timestamp, which the
// full path silently clamps), so the implication is one-directional; the
// byte-identity check is what keeps over-demotion from hiding divergence.

// rungCapture flags each decision on which the reference run's ladder
// engaged.
type rungCapture struct {
	engaged []bool
}

func (c *rungCapture) RecordDecision(rec *telemetry.Record) {
	c.engaged = append(c.engaged,
		rec.Suspect ||
			rec.RuntimeRepaired > 0 ||
			rec.PolicyRepaired > 0 ||
			rec.FallbackRung == "reroute" ||
			rec.FallbackRung == "os-default" ||
			len(rec.HealthEvents) > 0)
}

func TestDecideBatchChaosDemotions(t *testing.T) {
	// wantDemotions: fault kinds whose corruption is directly visible to
	// the dispatcher and must demote while active. The others are either
	// invisible by design (rate-blackout: no ladder rung reads the rate) or
	// only sometimes detectable (feature-noise and stale-dropout produce
	// clean, plausible observations); for those the safety implication and
	// byte-identity are the whole contract.
	wantDemotions := map[string]bool{
		"nan-corruption": true,
		"hotplug-storm":  true,
		"zero-dropout":   true,
		"clock-skew":     true,
	}
	// Zero-dropout is only condemnable when the environment it blanks was
	// large relative to suspectErrRatio — a zeroed observation of an
	// already-small environment is within consensus tolerance, which the
	// steady ckptObservation stream demonstrates (it engages no rung at
	// all). Drive dropout with a big-environment stream so the consensus
	// rung has something to notice.
	bigEnv := func(i int) moe.Observation {
		o := ckptObservation(i)
		o.Features[features.CPULoad1] = 40 + 0.1*float64(i%7)
		o.Features[features.CPULoad5] = 40
		return o
	}
	for _, kind := range chaos.Kinds() {
		t.Run(kind, func(t *testing.T) {
			fault, err := chaos.NewKindFault(kind, ckptMaxThreads)
			if err != nil {
				t.Fatal(err)
			}
			gen := ckptObservation
			if kind == "zero-dropout" {
				gen = bigEnv
			}
			obs := recordFaultedStream(t, 160, 123, []chaos.ScheduledFault{fault}, gen)

			// Instrumented reference: ground truth for decisions and for
			// which of them engaged a rung.
			ref, err := moe.NewRuntime(canonicalMixture(t), ckptMaxThreads)
			if err != nil {
				t.Fatal(err)
			}
			cap := &rungCapture{}
			ref.SetTelemetry(cap)
			want := make([]int, len(obs))
			for i, o := range obs {
				want[i] = ref.Decide(o)
			}

			// Batch dispatcher, one observation per batch, fast/full read
			// back after each call.
			rt, err := moe.NewRuntime(canonicalMixture(t), ckptMaxThreads)
			if err != nil {
				t.Fatal(err)
			}
			servedFast := make([]bool, len(obs))
			for i, o := range obs {
				before := rt.BatchStats().FastDecisions
				got := rt.DecideBatch([]moe.Observation{o})
				if got[0] != want[i] {
					t.Fatalf("decision %d diverged under %s: %d vs %d", i, kind, got[0], want[i])
				}
				servedFast[i] = rt.BatchStats().FastDecisions > before
			}

			demoted := 0
			for i := range obs {
				if cap.engaged[i] && servedFast[i] {
					t.Errorf("decision %d: ladder engaged on the reference but the fast path served it", i)
				}
				if !servedFast[i] {
					demoted++
				}
			}
			t.Logf("%s: %d/%d demoted", kind, demoted, len(obs))
			// The cold first decision always demotes; count beyond it.
			if wantDemotions[kind] && demoted <= 1 {
				t.Errorf("%s corrupts observations directly but never demoted", kind)
			}
			if kind == "rate-blackout" && demoted > len(obs)/2 {
				t.Errorf("rate-blackout demoted %d/%d decisions — it must be transparent to the ladder", demoted, len(obs))
			}
		})
	}
}
