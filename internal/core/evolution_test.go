package core

import (
	"errors"
	"reflect"
	"testing"

	"moe/internal/evolve"
	"moe/internal/expert"
	"moe/internal/sim"
)

// evolvingPair builds a two-expert evolving mixture: A accurate in the
// norm-10 regime, B badly wrong there. B first, so the cold selector's
// index-order tie-break serves (and therefore niches) the bad expert before
// the gating evidence accumulates.
func evolvingPair(t *testing.T, cfg evolve.Config) *Mixture {
	t.Helper()
	cfg.Enabled = true
	set := expert.Set{envExpert("B", 20, 50), envExpert("A", 4, 10)}
	m, err := NewMixture(set, Options{Evolution: cfg})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEvolutionRequiresResizableSelector(t *testing.T) {
	set := expert.Set{envExpert("A", 4, 10), envExpert("B", 20, 50)}
	_, err := NewMixture(set, Options{
		Selector:  FixedSelector{},
		Evolution: evolve.Config{Enabled: true},
	})
	if err == nil {
		t.Fatal("evolution over a fixed selector must be refused at construction")
	}
}

func TestEvolutionBirthEntersProbation(t *testing.T) {
	m := evolvingPair(t, evolve.Config{
		Period: 10,
		// No retirements: keep the focus on the admission path.
		MinAge:  1 << 20,
		MaxPool: 4,
	})
	for i := 0; i < 100; i++ {
		decide(m, 10)
	}
	st := m.Snapshot()
	if st.PoolBirths < 1 {
		t.Fatalf("no births in 100 decisions at period 10: %+v", st.ExpertNames)
	}
	if len(st.ExpertNames) != 2+st.PoolBirths {
		t.Errorf("pool %v after %d births", st.ExpertNames, st.PoolBirths)
	}
	found := false
	for _, name := range st.ExpertNames {
		if name == "ev1" {
			found = true
		}
	}
	if !found {
		t.Errorf("first newborn not named ev1: %v", st.ExpertNames)
	}
	if st.PoolEpoch != st.PoolBirths+st.PoolRetirements {
		t.Errorf("epoch %d, want births %d + retirements %d",
			st.PoolEpoch, st.PoolBirths, st.PoolRetirements)
	}
	// The newborn must have entered on probation, not good standing: the
	// first birth happens at decision 10, and immediately after it the
	// regime must not be all-OK.
	m2 := evolvingPair(t, evolve.Config{Period: 10, MinAge: 1 << 20, MaxPool: 4})
	for i := 0; i < 10; i++ {
		decide(m2, 10)
	}
	if m2.Snapshot().PoolBirths != 1 {
		t.Fatal("expected the first birth at decision 10")
	}
	k := len(m2.experts) - 1
	if got := m2.health.stateOf(k); got != healthProbation {
		t.Errorf("newborn health = %v, want probation", got)
	}
}

func TestEvolutionRetiresDominatedExpert(t *testing.T) {
	m := evolvingPair(t, evolve.Config{
		Period:  10,
		MinAge:  10,
		MinPool: 1,
		MaxPool: 1, // no births: pure retirement test
	})
	for i := 0; i < 40; i++ {
		decide(m, 10)
	}
	st := m.Snapshot()
	if st.PoolRetirements < 1 {
		t.Fatalf("dominated expert not retired in 40 decisions: %v", st.ExpertNames)
	}
	for _, name := range st.ExpertNames {
		if name == "B" {
			t.Errorf("dominated B still in pool %v", st.ExpertNames)
		}
	}
	// Decision accounting is conserved across the retirement: B's banked
	// selections still count.
	if st.Decisions != 40 {
		t.Errorf("decisions = %d after retirement, want 40", st.Decisions)
	}
}

// TestEvolutionReplayDeterminism: two evolving mixtures fed the identical
// observation stream must make identical decisions and end in identical
// exported state — births, retirements and all. This is the property that
// lets the write-ahead journal rebuild an evolved pool after a crash.
func TestEvolutionReplayDeterminism(t *testing.T) {
	cfg := evolve.Config{Period: 10, MinAge: 20, MinPool: 1, Seed: 7}
	m1 := evolvingPair(t, cfg)
	m2 := evolvingPair(t, cfg)
	norms := []float64{10, 10, 50, 10, 90, 10, 10, 30}
	for i := 0; i < 300; i++ {
		n1 := decide(m1, norms[i%len(norms)])
		n2 := decide(m2, norms[i%len(norms)])
		if n1 != n2 {
			t.Fatalf("replay diverged at decision %d: %d vs %d", i, n1, n2)
		}
	}
	st1, err := m1.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	st2, err := m2.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st1, st2) {
		t.Error("replayed mixtures exported different state")
	}
	if st1.Evolution == nil {
		t.Fatal("evolving mixture exported no evolution state")
	}
	if m1.Snapshot().PoolEpoch == 0 {
		t.Error("stream produced no pool changes; determinism test is vacuous")
	}
}

// TestEvolutionExportRestoreRoundTrip: export mid-run (after the pool has
// changed shape), restore into a freshly built mixture, and demand the
// restored mixture tracks the original decision-for-decision.
func TestEvolutionExportRestoreRoundTrip(t *testing.T) {
	cfg := evolve.Config{Period: 10, MinAge: 20, MinPool: 1, Seed: 7}
	m1 := evolvingPair(t, cfg)
	norms := []float64{10, 10, 50, 10, 90, 10, 10, 30}
	for i := 0; i < 150; i++ {
		decide(m1, norms[i%len(norms)])
	}
	if m1.Snapshot().PoolEpoch == 0 {
		t.Fatal("no pool changes before export; round-trip test is vacuous")
	}
	st, err := m1.ExportState()
	if err != nil {
		t.Fatal(err)
	}

	m2 := evolvingPair(t, cfg)
	if err := m2.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if got, want := m2.Snapshot().ExpertNames, m1.Snapshot().ExpertNames; !reflect.DeepEqual(got, want) {
		t.Fatalf("restored pool %v, want %v", got, want)
	}
	for i := 150; i < 300; i++ {
		n1 := decide(m1, norms[i%len(norms)])
		n2 := decide(m2, norms[i%len(norms)])
		if n1 != n2 {
			t.Fatalf("restored mixture diverged at decision %d: %d vs %d", i, n1, n2)
		}
	}
	e1, err := m1.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	e2, err := m2.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e1, e2) {
		t.Error("original and restored mixtures exported different state")
	}
}

// TestRestorePoolMismatchTyped pins the typed error on the two
// irreconcilable restore shapes: a size mismatch without a pool
// composition, and an evolving snapshot offered to a frozen mixture.
func TestRestorePoolMismatchTyped(t *testing.T) {
	two := expert.Set{envExpert("A", 4, 10), envExpert("B", 20, 50)}
	three := expert.Set{envExpert("A", 4, 10), envExpert("B", 20, 50), envExpert("C", 8, 30)}

	m2, _ := NewMixture(two, Options{})
	m3, _ := NewMixture(three, Options{})
	for i := 0; i < 5; i++ {
		decide(m2, 10)
	}
	st, err := m2.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if err := m3.RestoreState(st); !errors.Is(err, ErrPoolMismatch) {
		t.Errorf("frozen 2-expert state into 3-expert mixture: err = %v, want ErrPoolMismatch", err)
	}

	ev := evolvingPair(t, evolve.Config{Period: 10, MinAge: 1 << 20})
	for i := 0; i < 20; i++ {
		decide(ev, 10)
	}
	evSt, err := ev.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if evSt.Evolution == nil {
		t.Fatal("evolving mixture exported no evolution state")
	}
	frozen, _ := NewMixture(two, Options{})
	if err := frozen.RestoreState(evSt); !errors.Is(err, ErrPoolMismatch) {
		t.Errorf("evolving state into frozen mixture: err = %v, want ErrPoolMismatch", err)
	}
}

// TestRestoreRebuildsGrownAndShrunkPool: an evolving mixture restores
// snapshots whose pool size differs from its construction size in either
// direction, rebuilding evolved members from their serialized genomes.
func TestRestoreRebuildsGrownAndShrunkPool(t *testing.T) {
	grownCfg := evolve.Config{Period: 10, MinAge: 1 << 20, MaxPool: 4}
	grown := evolvingPair(t, grownCfg)
	for i := 0; i < 30; i++ {
		decide(grown, 10)
	}
	if grown.Snapshot().PoolBirths < 1 {
		t.Fatal("no births to test grown-pool restore with")
	}
	gSt, err := grown.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	fresh := evolvingPair(t, grownCfg)
	if err := fresh.RestoreState(gSt); err != nil {
		t.Fatalf("grown-pool restore: %v", err)
	}
	if got, want := len(fresh.Snapshot().ExpertNames), len(grown.Snapshot().ExpertNames); got != want {
		t.Errorf("restored pool size %d, want %d", got, want)
	}

	shrunkCfg := evolve.Config{Period: 10, MinAge: 10, MinPool: 1, MaxPool: 1}
	shrunk := evolvingPair(t, shrunkCfg)
	for i := 0; i < 40; i++ {
		decide(shrunk, 10)
	}
	if shrunk.Snapshot().PoolRetirements < 1 {
		t.Fatal("no retirements to test shrunk-pool restore with")
	}
	sSt, err := shrunk.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	fresh2 := evolvingPair(t, shrunkCfg)
	if err := fresh2.RestoreState(sSt); err != nil {
		t.Fatalf("shrunk-pool restore: %v", err)
	}
	if got := len(fresh2.Snapshot().ExpertNames); got != 1 {
		t.Errorf("restored pool size %d, want 1", got)
	}
}

// TestRestoreFrozenEraSnapshotIntoEvolvingMixture: a snapshot taken before
// evolution existed (no evolution tail) restores into an evolving mixture
// of the same size; the lifecycle simply starts fresh.
func TestRestoreFrozenEraSnapshotIntoEvolvingMixture(t *testing.T) {
	set := expert.Set{envExpert("B", 20, 50), envExpert("A", 4, 10)}
	frozen, _ := NewMixture(set, Options{})
	for i := 0; i < 15; i++ {
		decide(frozen, 10)
	}
	st, err := frozen.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if st.Evolution != nil {
		t.Fatal("frozen mixture exported evolution state")
	}
	ev := evolvingPair(t, evolve.Config{Period: 10, MinAge: 1 << 20, MaxPool: 4})
	if err := ev.RestoreState(st); err != nil {
		t.Fatalf("frozen-era snapshot into evolving mixture: %v", err)
	}
	for i := 0; i < 20; i++ {
		decide(ev, 10)
	}
	if ev.Snapshot().PoolBirths < 1 {
		t.Error("lifecycle did not start fresh after frozen-era restore")
	}
}

// TestEvolutionNewbornNonFiniteQuarantined: a newborn whose environment
// model goes non-finite is quarantined by the same machinery that guards
// the seed pool, and the mixture's decisions never leave range while the
// broken newborn is in the pool — evolution adds members, never new trust.
func TestEvolutionNewbornNonFiniteQuarantined(t *testing.T) {
	m := evolvingPair(t, evolve.Config{Period: 1 << 20, MinAge: 1 << 20, MaxPool: 4})
	for i := 0; i < 10; i++ {
		decide(m, 10)
	}
	broken := false
	newborn := stubExpert(t, "evX", 8, &broken)
	m.addPoolExpert(newborn, -1, nil)
	broken = true
	for i := 0; i < 10; i++ {
		if n := decide(m, 10); n < 1 || n > 32 {
			t.Fatalf("decision %d out of range with broken newborn in pool", n)
		}
	}
	st := m.Snapshot()
	k := len(st.ExpertNames) - 1
	if st.ExpertNames[k] != "evX" {
		t.Fatalf("pool tail = %v, want the injected newborn last", st.ExpertNames)
	}
	if !st.Quarantined[k] {
		t.Error("non-finite newborn not quarantined")
	}
	if st.Quarantined[0] || st.Quarantined[1] {
		t.Error("seed experts quarantined by the newborn's corruption")
	}
}

// TestDecideEmptyPoolFallsBack: with zero experts the decision falls
// through to the OS default and never returns fewer than one thread — the
// K=0 guard on the selector and fallback paths.
func TestDecideEmptyPoolFallsBack(t *testing.T) {
	m, err := NewMixture(expert.Set{envExpert("A", 4, 10)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m.experts = expert.Set{}
	m.health = newHealthTracker(0)
	m.pendingValid = false

	n := m.Decide(sim.Decision{Features: stateWithNorm(10), MaxThreads: 8, AvailableProcs: 4})
	if n < 1 {
		t.Fatalf("empty pool returned %d threads", n)
	}
	if m.Snapshot().FallbackDecisions != 1 {
		t.Error("empty pool decision not served by the OS-default rung")
	}
	// And with no caller caps at all, the floor still holds.
	n = m.Decide(sim.Decision{Features: stateWithNorm(10)})
	if n < 1 {
		t.Fatalf("empty pool, no caps: returned %d threads", n)
	}
}
