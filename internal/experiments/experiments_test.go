package experiments

import (
	"strings"
	"sync"
	"testing"

	"moe/internal/trace"
	"moe/internal/training"
	"moe/internal/workload"
)

// The shared test lab trains once per test binary on a shortened setup.
var (
	labOnce sync.Once
	testLab *Lab
	labErr  error
)

func lab(t *testing.T) *Lab {
	t.Helper()
	labOnce.Do(func() {
		ds, err := training.Generate(training.Config{
			Duration:           40,
			WorkloadsPerTarget: 3,
			Seed:               31,
		})
		if err != nil {
			labErr = err
			return
		}
		testLab = NewLabFromData(ds)
	})
	if labErr != nil {
		t.Fatalf("lab setup failed: %v", labErr)
	}
	return testLab
}

// tinyScale keeps integration runs affordable.
func tinyScale() Scale {
	return Scale{Targets: []string{"lu", "cg"}, Repeats: 1, Seed: 5}
}

func TestTableGetAndString(t *testing.T) {
	tab := &Table{Title: "T", Columns: []string{"a", "b"}}
	tab.AddRow("r1", 1, 2)
	tab.AddRow("r2", 3, 4)
	if v := tab.MustGet("r2", "b"); v != 4 {
		t.Errorf("Get = %v", v)
	}
	if _, err := tab.Get("r3", "a"); err == nil {
		t.Error("missing row should error")
	}
	if _, err := tab.Get("r1", "c"); err == nil {
		t.Error("missing column should error")
	}
	s := tab.String()
	if !strings.Contains(s, "T") || !strings.Contains(s, "r1") || !strings.Contains(s, "3.000") {
		t.Errorf("String output:\n%s", s)
	}
	tab.Notes = append(tab.Notes, "hello")
	if !strings.Contains(tab.String(), "note: hello") {
		t.Error("notes not rendered")
	}
}

func TestLabPolicies(t *testing.T) {
	l := lab(t)
	names := []PolicyName{
		PolicyDefault, PolicyOnline, PolicyOffline, PolicyAnalytic,
		PolicyMixture, PolicyMixture2, PolicyMixture8, PolicyMonolithic,
		PolicyOracle, PolicyMixtureAccuracyGate, PolicyMixtureRandomGate,
		PolicyMixtureNoPretrain,
	}
	for _, n := range names {
		p, err := l.NewPolicy(n, "lu", 1)
		if err != nil {
			t.Errorf("policy %s: %v", n, err)
			continue
		}
		if p == nil {
			t.Errorf("policy %s is nil", n)
		}
	}
	if _, err := l.NewPolicy("bogus", "lu", 1); err == nil {
		t.Error("unknown policy should error")
	}
}

func TestLabLeaveOneOut(t *testing.T) {
	l := lab(t)
	sub, err := l.TrainingSubset("lu")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sub.Samples {
		if s.Program == "lu" {
			t.Fatal("lu sample in lu's training subset (§5.2.3 violated)")
		}
	}
	set, err := l.Experts4("lu")
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 4 {
		t.Fatalf("%d experts", len(set))
	}
}

func TestRunScenario(t *testing.T) {
	l := lab(t)
	spec := ScenarioSpec{
		Target:   "lu",
		Workload: []string{"mg"},
		HWFreq:   trace.LowFrequency,
		Seed:     3,
	}
	out, err := l.Run(spec, PolicyDefault)
	if err != nil {
		t.Fatal(err)
	}
	if out.ExecTime <= 0 {
		t.Errorf("exec time %v", out.ExecTime)
	}
	if out.WorkloadThroughput <= 0 {
		t.Errorf("workload throughput %v", out.WorkloadThroughput)
	}
	// Identical seeds replay identical conditions (§6.4).
	out2, err := l.Run(spec, PolicyDefault)
	if err != nil {
		t.Fatal(err)
	}
	if out.ExecTime != out2.ExecTime {
		t.Error("same spec, same policy, different result")
	}
}

func TestSpeedupAgainstSelfIsOne(t *testing.T) {
	l := lab(t)
	spec := ScenarioSpec{Target: "cg", Workload: []string{"is"}, HWFreq: trace.LowFrequency, Seed: 9}
	sp, wl, err := l.Speedup(spec, PolicyDefault, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sp != 1 || wl != 1 {
		t.Errorf("default vs default = %v / %v, want 1 / 1", sp, wl)
	}
}

func TestStaticExperiment(t *testing.T) {
	l := lab(t)
	tab, err := l.Static(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 { // two targets + hmean
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Result 1: the mixture adds no overhead in a static isolated
	// system — no slowdown beyond noise.
	mix := tab.MustGet("hmean", "mixture")
	if mix < 0.95 {
		t.Errorf("static mixture hmean = %v; must not slow the target", mix)
	}
}

func TestDynamicScenarioExperiment(t *testing.T) {
	l := lab(t)
	tab, err := l.DynamicScenario(workload.Small, trace.LowFrequency, tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range BaselinePolicies {
		v := tab.MustGet("hmean", string(n))
		if v <= 0 {
			t.Errorf("%s hmean = %v", n, v)
		}
	}
	// The mixture must deliver a real improvement over the default in
	// the dynamic shared scenario.
	if v := tab.MustGet("hmean", "mixture"); v < 1.1 {
		t.Errorf("dynamic mixture hmean = %v, want > 1.1", v)
	}
}

func TestWorkloadImpactNeverTanks(t *testing.T) {
	l := lab(t)
	sc := tinyScale()
	sc.Targets = []string{"lu"}
	tab, err := l.WorkloadImpact(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Result 3: the mixture must not degrade workloads.
	if v := tab.MustGet("workload", "mixture"); v < 0.95 {
		t.Errorf("mixture workload impact = %v; must not slow workloads", v)
	}
}

func TestMotivation(t *testing.T) {
	l := lab(t)
	points, tab, err := l.Motivation(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("no timeline points")
	}
	for _, name := range []string{"analytic", "expert1", "expert2", "mixture"} {
		if _, err := tab.Get(name, "speedup"); err != nil {
			t.Errorf("missing %s speedup: %v", name, err)
		}
	}
	txt := FormatTimeline(points, 10)
	if !strings.Contains(txt, "mixture") {
		t.Error("timeline header missing")
	}
}

func TestLiveTraceSummary(t *testing.T) {
	tab, err := LiveTraceSummary(42)
	if err != nil {
		t.Fatal(err)
	}
	if v := tab.MustGet("max processors", "value"); v != 2912 {
		t.Errorf("max processors = %v, want the paper's 2912", v)
	}
	if v := tab.MustGet("min processors", "value"); v != 1456 {
		t.Errorf("min processors = %v, want half capacity during the failure", v)
	}
}

func TestCoefficientsTable(t *testing.T) {
	l := lab(t)
	tab, err := l.CoefficientsTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 11 { // 10 features + β
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if len(tab.Columns) != 8 { // 4 experts × (w, m)
		t.Fatalf("columns = %d", len(tab.Columns))
	}
}

func TestFeatureImpactTable(t *testing.T) {
	l := lab(t)
	tab, err := l.FeatureImpact()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 10 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Shares per expert column sum to ~1.
	for col := 0; col < 4; col++ {
		sum := 0.0
		for _, r := range tab.Rows {
			sum += r.Values[col]
		}
		if sum < 0.5 || sum > 1.5 {
			t.Errorf("column %d shares sum to %v", col, sum)
		}
	}
}

func TestCrossValidationTable(t *testing.T) {
	l := lab(t)
	tab, err := l.CrossValidation()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if v := tab.MustGet("environment", "accuracy"); v <= 0 || v > 1 {
		t.Errorf("environment CV accuracy = %v", v)
	}
}

func TestEnvAccuracyAndSelectionFrequency(t *testing.T) {
	l := lab(t)
	sc := tinyScale()
	sc.Targets = []string{"lu"}
	acc, err := l.EnvAccuracy(sc)
	if err != nil {
		t.Fatal(err)
	}
	if v := acc.MustGet("mixture", "accuracy"); v < 0.3 {
		t.Errorf("mixture env accuracy = %v, implausibly low", v)
	}
	freq, err := l.SelectionFrequency(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range freq.Rows {
		sum := 0.0
		for _, v := range r.Values {
			sum += v
		}
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("scenario %s selection fractions sum to %v", r.Label, sum)
		}
	}
}

func TestAblationFeatures(t *testing.T) {
	l := lab(t)
	tab, err := l.AblationFeatures()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestGranularity(t *testing.T) {
	l := lab(t)
	sc := tinyScale()
	sc.Targets = []string{"cg"}
	tab, err := l.Granularity(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, label := range []string{"monolithic", "4 experts", "8 experts"} {
		if v := tab.MustGet(label, "speedup"); v <= 0 {
			t.Errorf("%s speedup = %v", label, v)
		}
	}
}

func TestEvalTargetsComplete(t *testing.T) {
	targets := EvalTargets()
	if len(targets) != 16 {
		t.Errorf("eval targets = %d", len(targets))
	}
}

func TestAdaptivePairs(t *testing.T) {
	l := lab(t)
	sc := tinyScale()
	tab, err := l.AdaptivePairs(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range BaselinePolicies {
		if v := tab.MustGet("pair", string(n)); v <= 0 {
			t.Errorf("%s pair speedup = %v", n, v)
		}
	}
}

func TestLiveStudy(t *testing.T) {
	l := lab(t)
	sc := tinyScale()
	sc.Targets = []string{"lu"}
	tab, err := l.LiveStudy(sc)
	if err != nil {
		t.Fatal(err)
	}
	if v := tab.MustGet("hmean", "mixture"); v <= 0 {
		t.Errorf("live mixture speedup = %v", v)
	}
}

func TestPortability(t *testing.T) {
	l := lab(t)
	sc := tinyScale()
	sc.Targets = []string{"cg"}
	tab, err := l.Portability(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The lab's evaluation machine must be restored afterwards.
	if l.Eval.Cores != 32 {
		t.Errorf("Eval machine not restored: %d cores", l.Eval.Cores)
	}
	for _, r := range tab.Rows {
		for i, v := range r.Values {
			if v <= 0 {
				t.Errorf("%s %s = %v", r.Label, tab.Columns[i], v)
			}
		}
	}
}

func TestAffinityExperiment(t *testing.T) {
	l := lab(t)
	sc := tinyScale()
	sc.Targets = []string{"cg"}
	tab, err := l.Affinity(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Affinity is a strict reduction of migration cost, so the
	// model-driven policies must not lose from it. Measurement-driven
	// policies (online, analytic) follow different search trajectories
	// with affinity on and can land anywhere; they are not asserted.
	for _, label := range []string{"offline", "mixture"} {
		if gain := tab.MustGet(label, "gain"); gain < 0.9 {
			t.Errorf("%s affinity gain = %v", label, gain)
		}
	}
}

func TestNumExpertsExperiment(t *testing.T) {
	l := lab(t)
	sc := tinyScale()
	sc.Targets = []string{"cg"}
	tab, err := l.NumExperts(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 { // 4 singles + mixtures of 2, 3, 4
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestMonolithicVsMixtureExperiment(t *testing.T) {
	l := lab(t)
	sc := tinyScale()
	sc.Targets = []string{"cg"}
	tab, err := l.MonolithicVsMixture(sc)
	if err != nil {
		t.Fatal(err)
	}
	if v := tab.MustGet("hmean", "mixture"); v <= 0 {
		t.Errorf("mixture = %v", v)
	}
}

func TestAblationGatingExperiment(t *testing.T) {
	l := lab(t)
	sc := tinyScale()
	sc.Targets = []string{"cg"}
	tab, err := l.AblationGating(sc)
	if err != nil {
		t.Fatal(err)
	}
	// The oracle bound must dominate every realizable gate.
	oracleSmall := tab.MustGet("oracle (bound)", "small/low")
	for _, r := range tab.Rows {
		if r.Label == "oracle (bound)" {
			continue
		}
		if r.Values[0] > oracleSmall*1.02 {
			t.Errorf("%s (%v) beats the oracle bound (%v)", r.Label, r.Values[0], oracleSmall)
		}
	}
}

func TestChartRendering(t *testing.T) {
	tab := &Table{Title: "C", Columns: []string{"a", "b"}}
	tab.AddRow("r1", 1, 2)
	tab.AddRow("r2", 0.5, 0)
	tab.Notes = append(tab.Notes, "n")
	out := tab.Chart()
	if !strings.Contains(out, "C") || !strings.Contains(out, "█") || !strings.Contains(out, "note: n") {
		t.Errorf("chart output:\n%s", out)
	}
	// Empty table must not divide by zero.
	empty := &Table{Title: "E"}
	if empty.Chart() == "" {
		t.Error("empty chart should still render a title")
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Error("empty series should render empty")
	}
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Errorf("sparkline length: %q", s)
	}
	flat := Sparkline([]float64{5, 5, 5})
	if len([]rune(flat)) != 3 {
		t.Errorf("flat sparkline: %q", flat)
	}
}

func TestTimelineSparklines(t *testing.T) {
	points := []TimelinePoint{
		{Time: 0, Processors: 32, WorkloadThreads: 10, Threads: map[PolicyName]int{PolicyDefault: 32, PolicyMixture: 12}},
		{Time: 1, Processors: 16, WorkloadThreads: 20, Threads: map[PolicyName]int{PolicyDefault: 16, PolicyMixture: 8}},
	}
	out := TimelineSparklines(points)
	if !strings.Contains(out, "procs") || !strings.Contains(out, "mixture") {
		t.Errorf("timeline sparklines:\n%s", out)
	}
	if TimelineSparklines(nil) != "" {
		t.Error("empty timeline should render empty")
	}
}

func TestChurn(t *testing.T) {
	l := lab(t)
	sc := tinyScale()
	sc.Targets = []string{"lu"}
	tab, err := l.Churn(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range BaselinePolicies {
		if v := tab.MustGet("hmean", string(n)); v <= 0 {
			t.Errorf("%s churn speedup = %v", n, v)
		}
	}
}
