package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Record framing. Every durable unit — a whole snapshot, a journal header,
// one journal entry — is wrapped in a self-validating frame:
//
//	magic   [4]byte  "MOEC"
//	version byte     format version (FormatVersion)
//	kind    byte     record kind
//	length  uvarint  payload byte count
//	payload [length]byte
//	crc     [4]byte  CRC-32C over version‖kind‖length‖payload, little-endian
//
// A reader can therefore decide for any byte prefix whether it starts with
// a complete, uncorrupted, version-compatible record; anything else — torn
// tail, truncation, bit-flip, version skew, foreign bytes — is rejected
// without being interpreted.

// FormatVersion is the on-disk format version. Readers reject records from
// other versions (version skew falls back down the recovery ladder rather
// than being misinterpreted).
const FormatVersion = 1

// Record kinds.
const (
	recordSnapshot      = 0x01 // payload: encoded State
	recordJournalHeader = 0x02 // payload: journal epoch (starting decision count)
	recordJournalEntry  = 0x03 // payload: encoded Observation
	recordDedupMark     = 0x04 // payload: encoded DedupEntry (idempotent request marker)
	recordDedupWindow   = 0x05 // payload: encoded []DedupEntry (full window at rotation)
)

var recordMagic = [4]byte{'M', 'O', 'E', 'C'}

// crcTable is the Castagnoli polynomial (hardware-accelerated on amd64/arm64).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// maxRecordPayload bounds a single record so a corrupt length field cannot
// demand an absurd allocation. Snapshots of realistic pools are a few KB;
// 16 MiB is orders of magnitude of headroom.
const maxRecordPayload = 16 << 20

// ErrBadRecord is wrapped by every framing rejection; recovery code treats
// any error from readRecord as "stop here, fall back".
var ErrBadRecord = fmt.Errorf("checkpoint: bad record")

// appendRecord frames a payload and appends it to b.
func appendRecord(b []byte, kind byte, payload []byte) []byte {
	b = append(b, recordMagic[:]...)
	body := make([]byte, 0, 2+binary.MaxVarintLen64+len(payload))
	body = append(body, FormatVersion, kind)
	body = binary.AppendUvarint(body, uint64(len(payload)))
	body = append(body, payload...)
	b = append(b, body...)
	b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(body, crcTable))
	return b
}

// readRecord parses one record at the start of b. It returns the kind, the
// payload, and the total frame size consumed. Any defect — short input,
// wrong magic, version skew, oversized length, checksum mismatch — yields
// an error wrapping ErrBadRecord and consumes nothing.
func readRecord(b []byte) (kind byte, payload []byte, size int, err error) {
	bad := func(format string, args ...any) (byte, []byte, int, error) {
		return 0, nil, 0, fmt.Errorf("%w: %s", ErrBadRecord, fmt.Sprintf(format, args...))
	}
	if len(b) < len(recordMagic)+2 {
		return bad("short header (%d bytes)", len(b))
	}
	for i, m := range recordMagic {
		if b[i] != m {
			return bad("wrong magic")
		}
	}
	body := b[len(recordMagic):]
	version, kindByte := body[0], body[1]
	if version != FormatVersion {
		return bad("format version %d, want %d", version, FormatVersion)
	}
	plen, n := binary.Uvarint(body[2:])
	if n <= 0 {
		return bad("unreadable payload length")
	}
	if plen > maxRecordPayload {
		return bad("payload length %d exceeds limit", plen)
	}
	bodyLen := 2 + n + int(plen)
	if len(body) < bodyLen+4 {
		return bad("truncated record (%d of %d bytes)", len(body), bodyLen+4)
	}
	body = body[:bodyLen]
	want := binary.LittleEndian.Uint32(b[len(recordMagic)+bodyLen:])
	if got := crc32.Checksum(body, crcTable); got != want {
		return bad("checksum mismatch (%08x != %08x)", got, want)
	}
	return kindByte, body[2+n : bodyLen], len(recordMagic) + bodyLen + 4, nil
}
