package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestNilSafety(t *testing.T) {
	// A nil registry hands out nil metrics whose every operation is a
	// no-op: instrumented code must never need an "is telemetry on?" branch
	// beyond holding the possibly-nil registry.
	var reg *Registry
	c := reg.Counter("c", "")
	g := reg.Gauge("g", "")
	h := reg.Histogram("h", "", nil)
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(1)
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil metrics must read as zero")
	}
	if fams := reg.sortedFamilies(); fams != nil {
		t.Error("nil registry should expose nothing")
	}
}

func TestCounterAndGauge(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("requests_total", "Requests.")
	c.Inc()
	c.Add(4)
	c.Add(-10) // counters only go up
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if again := reg.Counter("requests_total", "Requests."); again != c {
		t.Error("same name+labels must return the same counter")
	}
	g := reg.Gauge("temp", "")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Errorf("gauge = %v, want 1.5", g.Value())
	}
}

func TestRegistryLabels(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "", "kind", "a")
	b := reg.Counter("x_total", "", "kind", "b")
	if a == b {
		t.Fatal("different label values must be different counters")
	}
	a.Inc()
	if reg.Counter("x_total", "", "kind", "a").Value() != 1 {
		t.Error("labeled counter lookup must be stable")
	}
}

func TestRegistryKindMismatch(t *testing.T) {
	// A name reused under a different kind yields a detached but working
	// metric — never a panic in a hot path.
	reg := NewRegistry()
	reg.Counter("x", "")
	g := reg.Gauge("x", "")
	g.Set(7)
	if g.Value() != 7 {
		t.Error("detached metric must still work")
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "7") {
		t.Error("detached metric must not be exposed")
	}
}

func TestRegistrySeriesLimit(t *testing.T) {
	reg := NewRegistry()
	reg.SetSeriesLimit(2, "labels_dropped_total")

	// Up to the cap, labeled series register normally.
	a := reg.Counter("tenant_total", "", "tenant", "a")
	b := reg.Counter("tenant_total", "", "tenant", "b")
	a.Inc()
	b.Inc()
	if got := reg.Counter("labels_dropped_total", "").Value(); got != 0 {
		t.Fatalf("at the cap nothing is dropped, counter=%d", got)
	}

	// The first series past the cap is refused: a working, unexposed
	// detached metric plus one overflow count per refused request.
	c := reg.Counter("tenant_total", "", "tenant", "c")
	c.Inc()
	if c.Value() != 1 {
		t.Error("dropped metric must still work")
	}
	if got := reg.Counter("labels_dropped_total", "").Value(); got != 1 {
		t.Fatalf("one dropped series, counter=%d", got)
	}
	// The cap refuses per request, so a re-lookup of the same overflow
	// label set is a fresh detached metric and another overflow count.
	if reg.Counter("tenant_total", "", "tenant", "c") == c {
		t.Error("refused label sets are not cached")
	}
	if got := reg.Counter("labels_dropped_total", "").Value(); got != 2 {
		t.Fatalf("overflow counts per refused request, counter=%d", got)
	}

	// Series admitted before the cap keep resolving to the live metric,
	// and unlabeled series are exempt from the cap.
	if reg.Counter("tenant_total", "", "tenant", "a") != a {
		t.Error("admitted label set must stay stable past the cap")
	}
	u := reg.Counter("tenant_total", "")
	u.Inc()

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `tenant_total{tenant="a"} 1`) || !strings.Contains(out, "tenant_total 1") {
		t.Errorf("admitted series missing from exposition:\n%s", out)
	}
	if strings.Contains(out, `tenant="c"`) {
		t.Errorf("refused series must not be exposed:\n%s", out)
	}
	if !strings.Contains(out, "labels_dropped_total 2") {
		t.Errorf("overflow counter missing from exposition:\n%s", out)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 3, 3, 5, 100} {
		h.Observe(v)
	}
	h.Observe(math.NaN()) // ignored
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
	if math.Abs(h.Sum()-117.5) > 1e-9 {
		t.Errorf("sum = %v, want 117.5", h.Sum())
	}
	// The median rank (4 of 8) lands in the (2,4] bucket.
	if q := h.Quantile(0.5); q <= 2 || q > 4 {
		t.Errorf("p50 = %v, want in (2,4]", q)
	}
	// A quantile in the overflow bucket reports the highest finite bound.
	if q := h.Quantile(0.999); q != 8 {
		t.Errorf("p99.9 = %v, want 8", q)
	}
	if q := h.Quantile(-1); q < 0 {
		t.Errorf("clamped quantile went negative: %v", q)
	}
	var empty Histogram
	if empty.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile must be 0")
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1e-6, 10, 4)
	want := []float64{1e-6, 1e-5, 1e-4, 1e-3}
	for i := range want {
		if math.Abs(b[i]-want[i]) > want[i]*1e-9 {
			t.Fatalf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
	if b := ExpBuckets(-1, 0.5, 0); len(b) != 1 {
		t.Error("degenerate inputs must yield a usable bucket list")
	}
	defb := DefLatencyBuckets()
	for i := 1; i < len(defb); i++ {
		if defb[i] <= defb[i-1] {
			t.Fatal("default buckets must ascend")
		}
	}
}

func TestConcurrentMetrics(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				reg.Counter("c", "").Inc()
				reg.Gauge("g", "").Set(float64(i))
				reg.Histogram("h", "", nil).Observe(1e-4)
			}
		}()
	}
	wg.Wait()
	if v := reg.Counter("c", "").Value(); v != 8000 {
		t.Errorf("counter = %d, want 8000", v)
	}
	if v := reg.Histogram("h", "", nil).Count(); v != 8000 {
		t.Errorf("histogram count = %d, want 8000", v)
	}
}

func TestConcurrentCreateAndScrape(t *testing.T) {
	// Scraping while other goroutines lazily register new label sets (as
	// RegistrySink does per expert and per health transition) must never
	// touch a family's metrics map outside the registry lock — under -race
	// this test catches both the Go race detector report and the runtime's
	// fatal "concurrent map read and map write".
	reg := NewRegistry()
	stop := make(chan struct{})
	ready := make(chan struct{})
	var once sync.Once
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			// Register a fresh label set every iteration until told to stop,
			// so map inserts keep landing while scrapes are mid-walk. Gosched
			// shares the P with the scraper on single-CPU runners — without
			// it the scrapes and the inserts never interleave there.
			for i := w; ; i += 4 {
				select {
				case <-stop:
					return
				default:
				}
				reg.Counter("moe_expert_selections_total", "", "expert", strconv.Itoa(i)).Inc()
				reg.Gauge("g", "", "w", strconv.Itoa(i)).Set(float64(i))
				reg.Histogram("h", "", nil, "w", strconv.Itoa(i)).Observe(1e-4)
				once.Do(func() { close(ready) })
				runtime.Gosched()
			}
		}(w)
	}
	<-ready
	for i := 0; i < 50; i++ {
		if err := reg.WritePrometheus(io.Discard); err != nil {
			t.Fatalf("WritePrometheus: %v", err)
		}
		if err := reg.WriteJSON(io.Discard); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		runtime.Gosched()
	}
	close(stop)
	writers.Wait()
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "", "kind", "quote\"back\\slash\nnewline").Inc()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `c_total{kind="quote\"back\\slash\nnewline"} 1`
	if !strings.Contains(buf.String(), want) {
		t.Errorf("label value not escaped per text format:\nwant %s\ngot  %s", want, buf.String())
	}
	// Lookup with the same raw value must hit the same counter.
	if reg.Counter("c_total", "", "kind", "quote\"back\\slash\nnewline").Value() != 1 {
		t.Error("escaped label lookup must be stable")
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("moe_decisions_total", "Decisions.").Add(3)
	reg.Gauge("moe_threads", "Threads.").Set(4)
	reg.Counter("moe_repaired_values_total", "Repairs.", "stage", "runtime").Inc()
	h := reg.Histogram("moe_decision_seconds", "Latency.", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.5)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP moe_decisions_total Decisions.",
		"# TYPE moe_decisions_total counter",
		"moe_decisions_total 3",
		"# TYPE moe_threads gauge",
		"moe_threads 4",
		`moe_repaired_values_total{stage="runtime"} 1`,
		"# TYPE moe_decision_seconds histogram",
		`moe_decision_seconds_bucket{le="0.001"} 1`,
		`moe_decision_seconds_bucket{le="0.01"} 1`,
		`moe_decision_seconds_bucket{le="+Inf"} 2`,
		"moe_decision_seconds_sum 0.5005",
		"moe_decision_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Deterministic: two scrapes of an idle registry are byte-identical.
	var buf2 bytes.Buffer
	if err := reg.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("idle scrapes differ")
	}
}

func TestWritePrometheusLabeledHistogram(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("lat", "", []float64{1}, "op", "append").Observe(0.5)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `lat_bucket{op="append",le="1"} 1`) {
		t.Errorf("le label not merged into label set:\n%s", buf.String())
	}
}

func TestWriteJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "").Add(2)
	reg.Histogram("h", "", []float64{1, 2}).Observe(1.5)
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]struct {
		Type      string             `json:"type"`
		Value     any                `json:"value"`
		Count     int64              `json:"count"`
		Quantiles map[string]float64 `json:"quantiles"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if doc["c_total"].Type != "counter" || doc["c_total"].Value.(float64) != 2 {
		t.Errorf("counter = %+v", doc["c_total"])
	}
	if doc["h"].Count != 1 || doc["h"].Quantiles["p50"] == 0 {
		t.Errorf("histogram = %+v", doc["h"])
	}
}

func TestMux(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up_total", "").Inc()
	srv := httptest.NewServer(Mux(reg))
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return buf.String(), resp.Header.Get("Content-Type")
	}

	body, ct := get("/metrics")
	if !strings.HasPrefix(ct, "text/plain") || !strings.Contains(body, "up_total 1") {
		t.Errorf("/metrics: ct=%q body=%q", ct, body)
	}
	body, ct = get("/metrics.json")
	if !strings.HasPrefix(ct, "application/json") || !strings.Contains(body, `"counter"`) {
		t.Errorf("/metrics.json: ct=%q body=%q", ct, body)
	}
	if body, _ = get("/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}

func TestMultiSink(t *testing.T) {
	if MultiSink() != nil || MultiSink(nil, nil) != nil {
		t.Error("no usable sinks must compose to nil")
	}
	tw := NewTraceWriter(&bytes.Buffer{})
	if MultiSink(nil, tw) != Sink(tw) {
		t.Error("a single usable sink must come back unwrapped")
	}
	var buf bytes.Buffer
	w1, w2 := NewTraceWriter(&buf), NewTraceWriter(&buf)
	ms := MultiSink(w1, w2)
	ms.RecordDecision(&Record{Seq: 0, Threads: 2})
	_ = w1.Flush()
	_ = w2.Flush()
	recs, err := ReadTrace(&buf)
	if err != nil || len(recs) != 2 {
		t.Fatalf("fan-out: %d records, err %v", len(recs), err)
	}
}

// A typed-nil *TraceWriter slips past MultiSink's interface nil check
// (callers like moerun compose `MultiSink(regSink, traceW)` with traceW
// declared but never created); every method must no-op on a nil receiver
// rather than dereference it mid-decision.
func TestTraceWriterNilReceiver(t *testing.T) {
	var tw *TraceWriter
	s := MultiSink(nil, tw)
	if s == nil {
		t.Fatal("typed nil composes to a non-nil sink; this test must exercise it")
	}
	s.RecordDecision(&Record{Seq: 1, Threads: 2}) // must not panic
	if err := tw.Flush(); err != nil {
		t.Errorf("nil Flush: %v", err)
	}
	if err := tw.Err(); err != nil {
		t.Errorf("nil Err: %v", err)
	}
	if err := tw.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
}

func TestRegistrySink(t *testing.T) {
	reg := NewRegistry()
	sink := NewRegistrySink(reg)
	sink.RecordDecision(&Record{
		Seq: 0, Threads: 4, SelectedExpert: 2, FallbackRung: "selector",
		RuntimeRepaired: 1, DecisionNanos: 1000, JournalNanos: 500,
	})
	sink.RecordDecision(&Record{
		Seq: 1, Threads: 2, SelectedExpert: -1, FallbackRung: "os-default",
		Suspect: true, DecisionNanos: 2000, CheckpointErr: "disk gone",
		HealthEvents: []HealthEvent{{Expert: 0, From: "ok", To: "quarantined"}},
	})
	checks := []struct {
		name   string
		labels []string
		want   int64
	}{
		{"moe_decisions_total", nil, 2},
		{"moe_suspect_observations_total", nil, 1},
		{"moe_fallback_decisions_total", nil, 1},
		{"moe_repaired_values_total", []string{"stage", "runtime"}, 1},
		{"moe_quarantines_total", nil, 1},
		{"moe_expert_selections_total", []string{"expert", "2"}, 1},
		{"moe_health_transitions_total", []string{"to", "quarantined"}, 1},
		{"moe_checkpoint_errors_total", nil, 1},
	}
	for _, c := range checks {
		if got := reg.Counter(c.name, "", c.labels...).Value(); got != c.want {
			t.Errorf("%s%v = %d, want %d", c.name, c.labels, got, c.want)
		}
	}
	if reg.Gauge("moe_checkpoint_degraded", "").Value() != 1 {
		t.Error("degraded gauge not set")
	}
	if reg.Histogram("moe_decision_seconds", "", nil).Count() != 2 {
		t.Error("decision latency not observed")
	}
	if reg.Histogram("moe_checkpoint_journal_seconds", "", nil).Count() != 1 {
		t.Error("journal latency not observed")
	}
	// A clean record clears the degraded gauge again.
	sink.RecordDecision(&Record{Seq: 2, Threads: 1, SelectedExpert: -1})
	if reg.Gauge("moe_checkpoint_degraded", "").Value() != 0 {
		t.Error("degraded gauge not cleared")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.ndjson")
	tw, err := CreateTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		{Seq: 0, Time: 1.5, Threads: 4, SelectedExpert: 1, FallbackRung: "selector",
			RawFeatures: []float64{1, 2}, Features: []float64{1, 2},
			GatingErrors: []float64{0.1, 0.2}, AvailableProcs: 4, DecisionNanos: 123},
		{Seq: 1, Time: 2.5, Threads: 1, SelectedExpert: -1, FallbackRung: "os-default",
			Suspect:       true,
			HealthEvents:  []HealthEvent{{Expert: 1, From: "ok", To: "quarantined"}},
			CheckpointErr: "boom"},
	}
	for i := range want {
		tw.RecordDecision(&want[i])
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("round-trip lost records: %d of %d", len(got), len(want))
	}
	a, _ := json.Marshal(got)
	b, _ := json.Marshal(want)
	if !bytes.Equal(a, b) {
		t.Errorf("round-trip mismatch:\n%s\n%s", a, b)
	}
}

func TestTraceTornTail(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	tw.RecordDecision(&Record{Seq: 0, Threads: 2})
	tw.RecordDecision(&Record{Seq: 1, Threads: 3})
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.String()

	// A torn final line — the signature of a crashed writer — ends the
	// trace cleanly with everything before it.
	torn := full[:len(full)-10]
	recs, err := ReadTrace(strings.NewReader(torn))
	if err != nil {
		t.Fatalf("torn tail must be tolerated: %v", err)
	}
	if len(recs) != 1 || recs[0].Seq != 0 {
		t.Fatalf("torn trace: %d records", len(recs))
	}

	// Corruption in the middle is an error.
	lines := strings.SplitN(full, "\n", 2)
	bad := lines[0][:len(lines[0])-5] + "\n" + lines[1]
	if _, err := ReadTrace(strings.NewReader(bad)); err == nil {
		t.Fatal("mid-stream corruption must be an error")
	}

	// Blank lines are skipped.
	recs, err = ReadTrace(strings.NewReader("\n" + full + "\n"))
	if err != nil || len(recs) != 2 {
		t.Fatalf("blank lines: %d records, err %v", len(recs), err)
	}
}

func TestTraceWriterLatchesError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.ndjson")
	tw, err := CreateTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	// Close the file out from under the writer: the next flush fails, the
	// error latches, and later records are dropped instead of panicking.
	tw.f.Close()
	for i := 0; i < 10000; i++ {
		tw.RecordDecision(&Record{Seq: i})
	}
	_ = tw.Flush()
	if tw.Err() == nil {
		t.Fatal("write error did not latch")
	}
	tw.f = nil // already closed
	_ = os.Remove(path)
}
