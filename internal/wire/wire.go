// Package wire is the binary framing for the streaming decide transport:
// the precompiled fast path the JSON API demotes from. It follows the
// checkpoint record conventions — a length prefix, a kind byte, and a
// CRC-32C trailer over everything the length covers — so a reader can
// decide for any byte prefix whether it starts a complete, uncorrupted
// frame, and reject everything else (torn tail, bit-flip, foreign bytes,
// version skew) without interpreting it.
//
// Frame layout (integers little-endian):
//
//	length  u32      byte count of kind‖payload (length and crc excluded)
//	kind    byte     frame kind
//	payload [length-1]byte
//	crc     u32      CRC-32C over kind‖payload
//
// Payloads use the checkpoint codec idiom: uvarint/varint integers,
// uvarint-length-prefixed byte strings, fixed 8-byte IEEE-754 floats so
// every observation field round-trips bit-identically.
//
// Both directions are allocation-free in steady state: encoders append
// into a caller-owned buffer, decoders parse into caller-owned structs
// whose byte-slice fields alias the frame buffer (valid until the next
// frame is read) and whose slices are reused across frames.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"moe"
	"moe/internal/features"
)

// Version is the protocol version carried in the hello frame. A session
// opens with each side sending hello; version skew is refused with a typed
// error frame, never misinterpreted.
const Version = 1

// Frame kinds.
const (
	// FrameHello opens a session in both directions: magic + version.
	FrameHello = 0x01
	// FrameDecide is a client decide request (one batch of observations).
	FrameDecide = 0x02
	// FrameResult is the server's successful answer to one decide frame.
	FrameResult = 0x03
	// FrameError is the server's per-frame refusal — the wire spelling of
	// the HTTP error ladder (429/503/504 become codes, not statuses).
	FrameError = 0x04
)

// helloMagic opens every hello payload; it is deliberately different from
// the checkpoint record magic ("MOEC") so a journal can never be mistaken
// for a session and vice versa.
var helloMagic = [4]byte{'M', 'O', 'E', 'W'}

// MaxFrame bounds kind+payload so a corrupt or hostile length field cannot
// demand an absurd allocation. A max-batch decide frame (1024 observations,
// full feature vectors) is ~100 KiB; 4 MiB is ample headroom.
const MaxFrame = 4 << 20

// Field caps, matching what the serving layer will accept anyway: tenants
// are capped at 64 bytes by the tenant ID grammar, request IDs at 128 by
// the serve layer and 256 by the checkpoint journal. The wire enforces the
// loosest layer's bound; the server applies its own on top.
const (
	maxTenantLen    = 256
	maxRequestIDLen = 256
	maxErrStringLen = 1 << 10
)

// ErrBadFrame is wrapped by every framing rejection. A session that sees
// one mid-stream must close: after a framing defect the byte stream has no
// recoverable record boundary.
var ErrBadFrame = errors.New("wire: bad frame")

// ErrVersion reports a well-framed hello from an incompatible protocol
// version — refuse the session, do not demote (the peer speaks wire, just
// not ours).
var ErrVersion = errors.New("wire: unsupported version")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Decide is a parsed decide frame. Tenant and RequestID alias the frame
// buffer (copy to retain past the next read); Obs reuses its backing array
// across parses into the same struct.
type Decide struct {
	Seq        uint64
	DeadlineMs uint64
	Tenant     []byte
	RequestID  []byte
	Obs        []moe.Observation
}

// Result is a parsed result frame. Threads reuses its backing array across
// parses into the same struct.
type Result struct {
	Seq       uint64
	Decisions int64
	Deduped   bool
	Threads   []int
}

// Error is a parsed error frame. Code and Msg alias the frame buffer.
type Error struct {
	Seq          uint64
	RetryAfterMs int64
	Code         []byte
	Msg          []byte
}

// beginFrame reserves the length prefix and writes the kind byte; endFrame
// backfills the length and appends the CRC. Everything appended between the
// two calls is the payload.
func beginFrame(b []byte, kind byte) ([]byte, int) {
	mark := len(b)
	return append(b, 0, 0, 0, 0, kind), mark
}

func endFrame(b []byte, mark int) []byte {
	body := b[mark+4:] // kind‖payload
	binary.LittleEndian.PutUint32(b[mark:], uint32(len(body)))
	return binary.LittleEndian.AppendUint32(b, crc32.Checksum(body, crcTable))
}

func appendBytes(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendHello appends a hello frame.
func AppendHello(b []byte) []byte {
	b, mark := beginFrame(b, FrameHello)
	b = append(b, helloMagic[:]...)
	b = append(b, Version)
	return endFrame(b, mark)
}

// AppendDecide appends one decide frame. deadlineMs 0 lets the server pick
// its default deadline; requestID "" skips idempotency.
func AppendDecide(b []byte, seq, deadlineMs uint64, tenant, requestID string, obs []moe.Observation) []byte {
	b, mark := beginFrame(b, FrameDecide)
	b = binary.AppendUvarint(b, seq)
	b = binary.AppendUvarint(b, deadlineMs)
	b = appendBytes(b, tenant)
	b = appendBytes(b, requestID)
	b = binary.AppendUvarint(b, uint64(len(obs)))
	for i := range obs {
		o := &obs[i]
		b = appendF64(b, o.Time)
		b = appendF64(b, o.Rate)
		b = binary.AppendVarint(b, int64(o.AvailableProcs))
		b = appendBool(b, o.RegionStart)
		b = binary.AppendUvarint(b, uint64(len(o.Features)))
		for _, f := range o.Features {
			b = appendF64(b, f)
		}
	}
	return endFrame(b, mark)
}

// AppendResult appends one result frame.
func AppendResult(b []byte, r *Result) []byte {
	b, mark := beginFrame(b, FrameResult)
	b = binary.AppendUvarint(b, r.Seq)
	b = binary.AppendVarint(b, r.Decisions)
	b = appendBool(b, r.Deduped)
	b = binary.AppendUvarint(b, uint64(len(r.Threads)))
	for _, t := range r.Threads {
		b = binary.AppendVarint(b, int64(t))
	}
	return endFrame(b, mark)
}

// AppendError appends one error frame.
func AppendError(b []byte, seq uint64, retryAfterMs int64, code, msg string) []byte {
	b, mark := beginFrame(b, FrameError)
	b = binary.AppendUvarint(b, seq)
	b = binary.AppendVarint(b, retryAfterMs)
	b = appendBytes(b, code)
	b = appendBytes(b, msg)
	return endFrame(b, mark)
}

// cur is the bounds-checked payload cursor: every read validates the
// remaining input and latches the first error, so parsing arbitrary bytes
// can never panic or over-allocate (the checkpoint dec idiom, with
// zero-copy byte strings).
type cur struct {
	b   []byte
	off int
	err error
}

func (c *cur) fail(err error) {
	if c.err == nil {
		c.err = err
	}
}

func (c *cur) remaining() int { return len(c.b) - c.off }

func (c *cur) u64() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		c.fail(fmt.Errorf("%w: truncated uvarint", ErrBadFrame))
		return 0
	}
	c.off += n
	return v
}

func (c *cur) i64() int64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Varint(c.b[c.off:])
	if n <= 0 {
		c.fail(fmt.Errorf("%w: truncated varint", ErrBadFrame))
		return 0
	}
	c.off += n
	return v
}

func (c *cur) f64() float64 {
	if c.err != nil {
		return 0
	}
	if c.remaining() < 8 {
		c.fail(fmt.Errorf("%w: truncated float", ErrBadFrame))
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(c.b[c.off:]))
	c.off += 8
	return v
}

func (c *cur) bool() bool {
	if c.err != nil {
		return false
	}
	if c.remaining() < 1 {
		c.fail(fmt.Errorf("%w: truncated bool", ErrBadFrame))
		return false
	}
	v := c.b[c.off]
	c.off++
	switch v {
	case 0:
		return false
	case 1:
		return true
	default:
		c.fail(fmt.Errorf("%w: invalid bool byte %d", ErrBadFrame, v))
		return false
	}
}

// bytes returns a length-prefixed byte string aliasing the payload.
func (c *cur) bytes(maxLen int) []byte {
	n := c.u64()
	if c.err != nil {
		return nil
	}
	if n > uint64(maxLen) || n > uint64(c.remaining()) {
		c.fail(fmt.Errorf("%w: byte string length %d over limit", ErrBadFrame, n))
		return nil
	}
	s := c.b[c.off : c.off+int(n) : c.off+int(n)]
	c.off += int(n)
	return s
}

func (c *cur) done() error {
	if c.err != nil {
		return c.err
	}
	if c.remaining() != 0 {
		return fmt.Errorf("%w: %d trailing payload bytes", ErrBadFrame, c.remaining())
	}
	return nil
}

// ParseHello validates a hello payload and returns the peer's version.
// A malformed hello yields ErrBadFrame (the peer is not speaking wire —
// demote); a well-formed hello of another version yields ErrVersion
// (refuse, do not demote).
func ParseHello(payload []byte) (byte, error) {
	if len(payload) != len(helloMagic)+1 {
		return 0, fmt.Errorf("%w: hello payload of %d bytes", ErrBadFrame, len(payload))
	}
	for i, m := range helloMagic {
		if payload[i] != m {
			return 0, fmt.Errorf("%w: wrong hello magic", ErrBadFrame)
		}
	}
	v := payload[len(helloMagic)]
	if v != Version {
		return v, fmt.Errorf("%w: peer speaks version %d, want %d", ErrVersion, v, Version)
	}
	return v, nil
}

// minObsBytes is the smallest possible encoded observation (two floats, a
// varint, a bool, a zero feature count); hostile observation counts are
// bounded against it before anything is grown.
const minObsBytes = 8 + 8 + 1 + 1 + 1

// ParseDecide parses a decide payload into d, reusing d.Obs's backing
// array. Tenant and RequestID alias payload.
func ParseDecide(payload []byte, d *Decide) error {
	c := cur{b: payload}
	d.Seq = c.u64()
	d.DeadlineMs = c.u64()
	d.Tenant = c.bytes(maxTenantLen)
	d.RequestID = c.bytes(maxRequestIDLen)
	n := c.u64()
	if c.err == nil && n > uint64(c.remaining()/minObsBytes) {
		c.fail(fmt.Errorf("%w: observation count %d exceeds payload", ErrBadFrame, n))
	}
	d.Obs = d.Obs[:0]
	for i := uint64(0); i < n && c.err == nil; i++ {
		var o moe.Observation
		o.Time = c.f64()
		o.Rate = c.f64()
		ap := c.i64()
		if c.err == nil && (ap < math.MinInt32 || ap > math.MaxInt32) {
			c.fail(fmt.Errorf("%w: available_procs %d out of range", ErrBadFrame, ap))
		}
		o.AvailableProcs = int(ap)
		o.RegionStart = c.bool()
		nf := c.u64()
		if c.err == nil && nf > features.Dim {
			c.fail(fmt.Errorf("%w: %d features, max %d", ErrBadFrame, nf, features.Dim))
		}
		for j := uint64(0); j < nf && c.err == nil; j++ {
			o.Features[j] = c.f64()
		}
		if c.err == nil {
			d.Obs = append(d.Obs, o)
		}
	}
	return c.done()
}

// maxThreadsPerResult bounds a result's thread list (one decision per
// observation, so the decide batch cap is the natural ceiling).
const maxThreadsPerResult = 1 << 16

// ParseResult parses a result payload into r, reusing r.Threads's backing
// array.
func ParseResult(payload []byte, r *Result) error {
	c := cur{b: payload}
	r.Seq = c.u64()
	r.Decisions = c.i64()
	r.Deduped = c.bool()
	n := c.u64()
	if c.err == nil && (n > maxThreadsPerResult || n > uint64(c.remaining())) {
		c.fail(fmt.Errorf("%w: thread count %d exceeds payload", ErrBadFrame, n))
	}
	r.Threads = r.Threads[:0]
	for i := uint64(0); i < n && c.err == nil; i++ {
		v := c.i64()
		if c.err == nil {
			r.Threads = append(r.Threads, int(v))
		}
	}
	return c.done()
}

// ParseError parses an error payload into e. Code and Msg alias payload.
func ParseError(payload []byte, e *Error) error {
	c := cur{b: payload}
	e.Seq = c.u64()
	e.RetryAfterMs = c.i64()
	e.Code = c.bytes(maxErrStringLen)
	e.Msg = c.bytes(maxErrStringLen)
	return c.done()
}

// Reader reads frames off a byte stream into one reusable buffer. The
// returned payload aliases that buffer and is valid until the next call.
type Reader struct {
	r   io.Reader
	buf []byte
	hdr [4]byte
}

// NewReader wraps r (callers hand it something buffered; Reader issues two
// reads per frame).
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Next reads one frame: kind, payload (aliasing the internal buffer), and
// the total bytes consumed off the stream. A clean EOF at a frame boundary
// returns io.EOF; a partial frame returns io.ErrUnexpectedEOF; any framing
// defect returns an error wrapping ErrBadFrame — after which the stream has
// no recoverable frame boundary and the session must close.
func (rd *Reader) Next() (kind byte, payload []byte, size int, err error) {
	if _, err := io.ReadFull(rd.r, rd.hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, 0, io.EOF
		}
		return 0, nil, 0, err
	}
	n := binary.LittleEndian.Uint32(rd.hdr[:])
	if n < 1 || n > MaxFrame {
		return 0, nil, 0, fmt.Errorf("%w: frame length %d", ErrBadFrame, n)
	}
	need := int(n) + 4 // kind‖payload plus the crc trailer
	if cap(rd.buf) < need {
		rd.buf = make([]byte, need)
	}
	rd.buf = rd.buf[:need]
	if _, err := io.ReadFull(rd.r, rd.buf); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, 0, io.ErrUnexpectedEOF
		}
		return 0, nil, 0, err
	}
	body := rd.buf[:n]
	want := binary.LittleEndian.Uint32(rd.buf[n:])
	if got := crc32.Checksum(body, crcTable); got != want {
		return 0, nil, 0, fmt.Errorf("%w: checksum mismatch (%08x != %08x)", ErrBadFrame, got, want)
	}
	return body[0], body[1:], 4 + need, nil
}

// HelloPrefix reports whether b (the first bytes of a stream) could be the
// start of a valid hello frame. The serving layer peeks this before
// committing to the wire protocol: anything else on the first bytes —
// typically a '{' from a client posting JSON at the stream endpoint — is
// demoted to the JSON ladder instead of being rejected byte by byte.
func HelloPrefix(b []byte) bool {
	// A hello frame is exactly: len=6 | kind | magic | version | crc.
	want := [9]byte{6, 0, 0, 0, FrameHello, helloMagic[0], helloMagic[1], helloMagic[2], helloMagic[3]}
	if len(b) > len(want) {
		b = b[:len(want)]
	}
	for i := range b {
		if b[i] != want[i] {
			return false
		}
	}
	return true
}
