package workload

import "testing"

// TestDerivedCachesPinEquality pins the finalize-time caches to the
// on-demand computation: for every catalog program the cached
// AvgMemIntensity/AvgSyncCost must be bitwise equal to what a hand-built
// copy of the same program (which never passed through finalize) computes
// from scratch. Both paths must keep running the identical loop.
func TestDerivedCachesPinEquality(t *testing.T) {
	for _, name := range Names() {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if !p.derivedValid {
			t.Fatalf("%s: catalog program did not pass through finalize", name)
		}
		// A hand-built program: same visible fields, no finalize.
		hand := &Program{
			Name:         p.Name,
			Suite:        p.Suite,
			Regions:      append([]Region(nil), p.Regions...),
			Iterations:   p.Iterations,
			WorkingSetGB: p.WorkingSetGB,
		}
		if got, want := p.AvgMemIntensity(), hand.AvgMemIntensity(); got != want {
			t.Errorf("%s: cached AvgMemIntensity %.17g != computed %.17g", name, got, want)
		}
		if got, want := p.AvgSyncCost(), hand.AvgSyncCost(); got != want {
			t.Errorf("%s: cached AvgSyncCost %.17g != computed %.17g", name, got, want)
		}
	}
}

// TestDerivedCachesSurviveScaleWork checks that rescaling work — which
// changes the weights uniformly and so perturbs the floating-point result —
// refreshes the caches rather than serving stale values.
func TestDerivedCachesSurviveScaleWork(t *testing.T) {
	p, err := ByName("lu")
	if err != nil {
		t.Fatal(err)
	}
	p = p.Clone()
	if err := p.ScaleWork(0.3); err != nil {
		t.Fatal(err)
	}
	if got, want := p.AvgMemIntensity(), p.computeAvgMemIntensity(); got != want {
		t.Errorf("AvgMemIntensity stale after ScaleWork: cached %.17g computed %.17g", got, want)
	}
	if got, want := p.AvgSyncCost(), p.computeAvgSyncCost(); got != want {
		t.Errorf("AvgSyncCost stale after ScaleWork: cached %.17g computed %.17g", got, want)
	}
}
