package core

import (
	"math"
	"testing"

	"moe/internal/expert"
	"moe/internal/features"
	"moe/internal/regress"
	"moe/internal/sim"
)

func flatModel(val float64) *regress.Model {
	return &regress.Model{Weights: make([]float64, features.Dim), Bias: val}
}

// envExpert predicts a fixed thread count and a fixed environment norm.
func envExpert(name string, threads, env float64) *expert.Expert {
	return &expert.Expert{
		Name:       name,
		Threads:    flatModel(threads),
		Env:        expert.NormEnvModel{Model: flatModel(env)},
		MaxThreads: 32,
	}
}

func stateWithNorm(norm float64) features.Vector {
	var f features.Vector
	// Put the whole norm on one environment dimension for clarity.
	f[features.CPULoad1] = norm
	f[features.Processors] = 0
	return f
}

func decide(m *Mixture, norm float64) int {
	return m.Decide(sim.Decision{
		Features:       stateWithNorm(norm),
		MaxThreads:     32,
		AvailableProcs: 32,
	})
}

func TestMixtureSelectsAccurateExpert(t *testing.T) {
	// Expert A predicts env 10 (right); expert B predicts env 50
	// (wrong). After warm-up the mixture must use A's thread count.
	set := expert.Set{envExpert("A", 4, 10), envExpert("B", 20, 50)}
	m, err := NewMixture(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var last int
	for i := 0; i < 50; i++ {
		last = decide(m, 10)
	}
	if last != 4 {
		t.Errorf("mixture chose %d threads, want accurate expert A's 4", last)
	}
	st := m.Snapshot()
	if st.SelectionFraction[0] < 0.6 {
		t.Errorf("A selected only %.0f%%", 100*st.SelectionFraction[0])
	}
	if st.EnvAccuracy[0] < 0.9 {
		t.Errorf("A's accuracy %.2f should be high", st.EnvAccuracy[0])
	}
	if st.EnvAccuracy[1] > 0.1 {
		t.Errorf("B's accuracy %.2f should be low", st.EnvAccuracy[1])
	}
}

func TestMixtureSwitchesWithRegime(t *testing.T) {
	// A is accurate in the low-norm regime, B in the high-norm regime;
	// the mixture must switch experts when the environment changes —
	// the §3 motivation behaviour.
	set := expert.Set{envExpert("A", 4, 10), envExpert("B", 20, 100)}
	m, err := NewMixture(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		decide(m, 10)
	}
	if got := decide(m, 10); got != 4 {
		t.Fatalf("low regime chose %d", got)
	}
	var last int
	for i := 0; i < 60; i++ {
		last = decide(m, 100)
	}
	if last != 20 {
		t.Errorf("high regime chose %d, want B's 20", last)
	}
}

func TestMixtureValidation(t *testing.T) {
	if _, err := NewMixture(nil, Options{}); err == nil {
		t.Error("empty set should error")
	}
}

func TestSnapshotConsistency(t *testing.T) {
	set := expert.Set{envExpert("A", 4, 10), envExpert("B", 20, 50)}
	m, _ := NewMixture(set, Options{})
	for i := 0; i < 30; i++ {
		decide(m, 10)
	}
	st := m.Snapshot()
	if st.Decisions != 30 {
		t.Errorf("decisions = %d", st.Decisions)
	}
	sum := 0.0
	for _, f := range st.SelectionFraction {
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("selection fractions sum to %v", sum)
	}
	histSum := 0.0
	for _, f := range st.ThreadHistogram {
		histSum += f
	}
	if math.Abs(histSum-1) > 1e-9 {
		t.Errorf("thread histogram sums to %v", histSum)
	}
	if m.String() == "" {
		t.Error("String should describe the mixture")
	}
}

func TestHyperplaneSelectorLearnsPartition(t *testing.T) {
	// Errors depend on the state: expert 0 is best when load < 50,
	// expert 1 when load ≥ 50. The selector must learn the split.
	sel := NewHyperplaneSelector(2, 0)
	errsFor := func(f features.Vector) []float64 {
		if f[features.CPULoad1] < 50 {
			return []float64{1, 10}
		}
		return []float64{10, 1}
	}
	for epoch := 0; epoch < 200; epoch++ {
		f := stateWithNorm(float64((epoch * 13) % 100))
		sel.Update(f, errsFor(f))
	}
	right := 0
	for v := 0.0; v < 100; v += 5 {
		f := stateWithNorm(v)
		want := 0
		if v >= 50 {
			want = 1
		}
		if sel.Select(f) == want {
			right++
		}
	}
	if right < 15 { // 20 probes; allow boundary slack
		t.Errorf("selector classified %d/20 regimes correctly", right)
	}
	if sel.MissRate() == 0 {
		t.Error("selector should have recorded some learning misses")
	}
}

func TestHyperplaneSelectorSingleExpert(t *testing.T) {
	sel := NewHyperplaneSelector(1, 0)
	if sel.Select(stateWithNorm(3)) != 0 {
		t.Error("single-expert selector must return 0")
	}
	sel.Update(stateWithNorm(3), []float64{1}) // must not panic
}

func TestHyperplaneSelectorPretrain(t *testing.T) {
	sel := NewHyperplaneSelector(2, 0)
	theta := [][]float64{make([]float64, features.Dim+1), make([]float64, features.Dim+1)}
	// Expert 1 wins everywhere via its bias.
	theta[1][features.Dim] = 5
	var mean, std [features.Dim]float64
	for i := range std {
		std[i] = 1
	}
	if err := sel.Pretrain(theta, mean, std, 100); err != nil {
		t.Fatal(err)
	}
	if sel.Select(stateWithNorm(10)) != 1 {
		t.Error("pretrained bias should select expert 1")
	}
	if err := sel.Pretrain(theta[:1], mean, std, 100); err == nil {
		t.Error("wrong hyperplane count should error")
	}
	if err := sel.Pretrain([][]float64{{1}, {2}}, mean, std, 100); err == nil {
		t.Error("wrong width should error")
	}
}

func TestHyperplaneSelectorAccuracyPenalty(t *testing.T) {
	// Pretrained to prefer expert 0, but expert 0's errors are always
	// far worse: the recent-accuracy penalty must eventually flip the
	// choice even without a separating feature.
	sel := NewHyperplaneSelector(2, 0)
	theta := [][]float64{make([]float64, features.Dim+1), make([]float64, features.Dim+1)}
	theta[0][features.Dim] = 1
	var mean, std [features.Dim]float64
	for i := range std {
		std[i] = 1
	}
	if err := sel.Pretrain(theta, mean, std, 100); err != nil {
		t.Fatal(err)
	}
	f := stateWithNorm(5)
	for i := 0; i < 100; i++ {
		sel.Update(f, []float64{10, 1})
	}
	if sel.Select(f) != 1 {
		t.Error("persistently inaccurate expert should be demoted")
	}
}

func TestAccuracySelector(t *testing.T) {
	sel := NewAccuracySelector(3, 0)
	if sel.Name() != "accuracy-ema" {
		t.Errorf("name = %s", sel.Name())
	}
	var f features.Vector
	for i := 0; i < 20; i++ {
		sel.Update(f, []float64{5, 1, 9})
	}
	if got := sel.Select(f); got != 1 {
		t.Errorf("accuracy selector chose %d, want 1", got)
	}
	// Wrong-length updates are ignored.
	sel.Update(f, []float64{1})
	if got := sel.Select(f); got != 1 {
		t.Errorf("after bad update chose %d", got)
	}
}

func TestFixedAndRandomSelectors(t *testing.T) {
	var f features.Vector
	fx := FixedSelector{Index: 2}
	if fx.Select(f) != 2 {
		t.Error("fixed selector wrong")
	}
	fx.Update(f, nil) // no-op

	r := NewRandomSelector(4, 9)
	counts := make([]int, 4)
	for i := 0; i < 4000; i++ {
		counts[r.Select(f)]++
	}
	for i, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("random selector bucket %d = %d, far from uniform", i, c)
		}
	}
}

func TestArgminWithMeanGate(t *testing.T) {
	if got := argminWithMeanGate([]float64{1, 10, 10}); got != 0 {
		t.Errorf("clear winner: %d", got)
	}
	if got := argminWithMeanGate([]float64{5, 5, 5}); got != -1 {
		t.Errorf("no winner should gate out: %d", got)
	}
	if got := argminWithMeanGate([]float64{3}); got != 0 {
		t.Errorf("single expert: %d", got)
	}
}

func TestMixtureWithCanonicalExperts(t *testing.T) {
	// The shipped Table 1 experts must run end to end.
	m, err := NewMixture(expert.Canonical4(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var f features.Vector
	f[features.Processors] = 8
	f[features.WorkloadThreads] = 4
	f[features.CPULoad1] = 6
	for i := 0; i < 10; i++ {
		n := m.Decide(sim.Decision{Features: f, MaxThreads: 32, AvailableProcs: 8})
		if n < 1 || n > 32 {
			t.Fatalf("decision %d out of range", n)
		}
	}
}
