package experiments

import (
	"fmt"

	"moe/internal/core"
	"moe/internal/evolve"
	"moe/internal/expert"
	"moe/internal/policy"
	"moe/internal/sim"
	"moe/internal/stats"
	"moe/internal/trace"
	"moe/internal/workload"
)

// The evolve study measures what a LIVING expert pool buys when the
// deployment environment drifts away from the training distribution. Every
// policy faces the same regime shift: the machine starts at full capacity
// and permanently loses most of its processors at DriftAt — a sustained
// operating point the canonical Table 1 experts were never fitted for, not
// the transient churn of §6.4 (which recovers, and which the frozen mixture
// already handles). Three columns run the identical scenario: the OpenMP
// default (the speedup baseline), the frozen canonical mixture, and the
// same mixture with the online lifecycle enabled — breeding experts from
// the post-drift observation history while retiring dominated incumbents.
//
// The study needs no trained lab: the canonical coefficients are the point.
// A frozen pool can only reweight the four published tables; the living
// pool can place new tables where the observations actually are.

// EvolveOptions configures the drifting-machine study.
type EvolveOptions struct {
	// Targets are the measured programs (each run separately).
	Targets []string
	// Workload co-executes with every target, looping, under the OpenMP
	// default policy.
	Workload []string
	// Repeats averages each (target, policy) cell over this many seeds.
	Repeats int
	// Seed is the base evaluation seed.
	Seed uint64
	// MaxTime bounds one run in virtual seconds.
	MaxTime float64
	// DriftAt is when the machine permanently shrinks (virtual seconds).
	DriftAt float64
	// DriftCores is the post-drift processor count.
	DriftCores int
	// Evolution tunes the living column's lifecycle.
	Evolution evolve.Config
}

// DefaultEvolveOptions returns the committed-benchmark configuration
// (BENCH_PR9.json).
func DefaultEvolveOptions() EvolveOptions {
	return EvolveOptions{
		Targets:    []string{"lu", "cg", "mg"},
		Workload:   []string{"ft"},
		Repeats:    3,
		Seed:       42,
		MaxTime:    900,
		DriftAt:    12,
		DriftCores: 6,
		Evolution:  evolve.Config{Enabled: true, Period: 60, Seed: 7},
	}
}

// EvolveRow is one target's results, averaged over repeats.
type EvolveRow struct {
	Target string `json:"target"`

	// Mean completion times (virtual seconds).
	DefaultExec float64 `json:"default_exec_s"`
	FrozenExec  float64 `json:"frozen_exec_s"`
	LivingExec  float64 `json:"living_exec_s"`

	// Speedups over the OpenMP default on the identical drifted scenario.
	FrozenSpeedup float64 `json:"frozen_speedup"`
	LivingSpeedup float64 `json:"living_speedup"`

	// Mean lifecycle activity of the living pool.
	Births      float64 `json:"births"`
	Retirements float64 `json:"retirements"`
	FinalPool   float64 `json:"final_pool_size"`
}

// EvolveReport is the study's JSON artifact.
type EvolveReport struct {
	Targets    []string `json:"targets"`
	Workload   []string `json:"workload"`
	Repeats    int      `json:"repeats"`
	Seed       uint64   `json:"seed"`
	MaxTime    float64  `json:"max_time_s"`
	DriftAt    float64  `json:"drift_at_s"`
	DriftCores int      `json:"drift_cores"`
	Period     int      `json:"evolution_period"`

	Rows []EvolveRow `json:"rows"`

	// Harmonic-mean speedups over the default across all targets.
	HMeanFrozenSpeedup float64 `json:"hmean_frozen_speedup"`
	HMeanLivingSpeedup float64 `json:"hmean_living_speedup"`
	// LivingAdvantage is living over frozen: > 1 means the living pool
	// beat the frozen pool after the drift.
	LivingAdvantage float64 `json:"living_advantage"`

	Notes []string `json:"notes"`
}

// RunEvolveStudy executes the study. Fully deterministic in o.
func RunEvolveStudy(o EvolveOptions) (*EvolveReport, error) {
	cfg := o.Evolution
	cfg.Enabled = true
	rep := &EvolveReport{
		Targets: o.Targets, Workload: o.Workload, Repeats: o.Repeats,
		Seed: o.Seed, MaxTime: o.MaxTime, DriftAt: o.DriftAt,
		DriftCores: o.DriftCores, Period: cfg.WithDefaults(4).Period,
	}
	var frozenSp, livingSp []float64
	for _, target := range o.Targets {
		row := EvolveRow{Target: target}
		for r := 0; r < o.Repeats; r++ {
			seed := o.Seed + uint64(r)*1000003
			defExec, _, err := evolveRun(o, target, seed, policy.NewDefault())
			if err != nil {
				return nil, err
			}
			frozen, err := core.NewMixture(expert.Canonical4(), core.Options{})
			if err != nil {
				return nil, err
			}
			frozenExec, _, err := evolveRun(o, target, seed, frozen)
			if err != nil {
				return nil, err
			}
			living, err := core.NewMixture(expert.Canonical4(), core.Options{Evolution: cfg})
			if err != nil {
				return nil, err
			}
			livingExec, livingStats, err := evolveRun(o, target, seed, living)
			if err != nil {
				return nil, err
			}
			row.DefaultExec += defExec
			row.FrozenExec += frozenExec
			row.LivingExec += livingExec
			row.Births += float64(livingStats.PoolBirths)
			row.Retirements += float64(livingStats.PoolRetirements)
			row.FinalPool += float64(len(livingStats.ExpertNames))
		}
		n := float64(o.Repeats)
		row.DefaultExec /= n
		row.FrozenExec /= n
		row.LivingExec /= n
		row.Births /= n
		row.Retirements /= n
		row.FinalPool /= n
		row.FrozenSpeedup = row.DefaultExec / row.FrozenExec
		row.LivingSpeedup = row.DefaultExec / row.LivingExec
		frozenSp = append(frozenSp, row.FrozenSpeedup)
		livingSp = append(livingSp, row.LivingSpeedup)
		rep.Rows = append(rep.Rows, row)
	}
	var err error
	if rep.HMeanFrozenSpeedup, err = stats.HarmonicMean(frozenSp); err != nil {
		return nil, err
	}
	if rep.HMeanLivingSpeedup, err = stats.HarmonicMean(livingSp); err != nil {
		return nil, err
	}
	rep.LivingAdvantage = rep.HMeanLivingSpeedup / rep.HMeanFrozenSpeedup
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("drift: %d cores fall to %d at t=%.0fs and stay down; canonical experts were never fitted there",
			sim.Eval32().Cores, o.DriftCores, o.DriftAt),
		fmt.Sprintf("living pool hmean speedup %.3f vs frozen %.3f over the OpenMP default (advantage %.3fx)",
			rep.HMeanLivingSpeedup, rep.HMeanFrozenSpeedup, rep.LivingAdvantage))
	return rep, nil
}

// evolveRun executes one drifted scenario for one target under one policy
// and returns its completion time plus (for mixtures) the final stats.
func evolveRun(o EvolveOptions, target string, seed uint64, p sim.Policy) (float64, *core.Stats, error) {
	prog, err := workload.ByName(target)
	if err != nil {
		return 0, nil, err
	}
	machine := sim.Eval32()
	hw, err := trace.NewHardwareTrace([]trace.HardwareEvent{
		{Time: 0, Processors: machine.Cores},
		{Time: o.DriftAt, Processors: o.DriftCores},
	})
	if err != nil {
		return 0, nil, err
	}
	machine.Hardware = hw

	specs := []sim.ProgramSpec{{Program: prog.Clone(), Policy: p, Target: true}}
	for _, name := range o.Workload {
		wl, err := workload.ByName(name)
		if err != nil {
			return 0, nil, err
		}
		specs = append(specs, sim.ProgramSpec{
			Program: wl.Clone(), Policy: policy.NewDefault(), Loop: true,
		})
	}
	res, err := sim.Run(sim.Scenario{
		Machine:   machine,
		Programs:  specs,
		MaxTime:   o.MaxTime,
		RateNoise: DefaultRateNoise,
		Seed:      seed,
	})
	if err != nil {
		return 0, nil, err
	}
	tr, err := res.Target()
	if err != nil {
		return 0, nil, err
	}
	exec, err := effectiveExecTime(tr, prog.TotalWork(), o.MaxTime)
	if err != nil {
		return 0, nil, fmt.Errorf("experiments: evolve study, target %s under %s: %w", target, p.Name(), err)
	}
	var st *core.Stats
	if m, ok := p.(*core.Mixture); ok {
		s := m.Snapshot()
		st = &s
	}
	return exec, st, nil
}

// EvolveStudyTable renders the report as a printable experiment table.
func EvolveStudyTable(rep *EvolveReport) *Table {
	t := &Table{
		Title:   "Evolve — living vs frozen pool under sustained drift (speedup over OpenMP default)",
		Columns: []string{"frozen", "living", "births", "retirements", "final pool"},
		Notes:   rep.Notes,
	}
	for _, r := range rep.Rows {
		t.AddRow(r.Target, r.FrozenSpeedup, r.LivingSpeedup, r.Births, r.Retirements, r.FinalPool)
	}
	t.AddRow("hmean", rep.HMeanFrozenSpeedup, rep.HMeanLivingSpeedup, 0, 0, 0)
	return t
}
