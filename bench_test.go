// Benchmarks regenerating every table and figure of the paper's evaluation
// on the simulator substrate. Each benchmark runs the corresponding
// experiment end to end (training is done once and shared) and reports the
// headline numbers via b.ReportMetric, so `go test -bench=.` both times the
// pipeline and reproduces the paper's rows. The full-scale version of every
// experiment is available through cmd/moebench -full.
package moe_test

import (
	"sync"
	"testing"

	"moe/internal/experiments"
	"moe/internal/sim"
	"moe/internal/trace"
	"moe/internal/training"
	"moe/internal/workload"
)

// The bench lab trains once per binary invocation.
var (
	benchOnce sync.Once
	benchLab  *experiments.Lab
	benchErr  error
)

func lab(b *testing.B) *experiments.Lab {
	b.Helper()
	benchOnce.Do(func() {
		ds, err := training.Generate(training.Config{
			Duration:           60,
			WorkloadsPerTarget: 7,
			Seed:               42,
		})
		if err != nil {
			benchErr = err
			return
		}
		benchLab = experiments.NewLabFromData(ds)
	})
	if benchErr != nil {
		b.Fatalf("bench lab: %v", benchErr)
	}
	return benchLab
}

// benchScale keeps per-iteration work bounded; cmd/moebench -full runs the
// full 16-program, 3-repeat versions.
func benchScale() experiments.Scale {
	return experiments.Scale{
		Targets: []string{"lu", "cg", "mg", "bscholes"},
		Repeats: 1,
		Seed:    0xbe9c,
	}
}

// reportTable surfaces a table's headline row as benchmark metrics.
func reportTable(b *testing.B, t *experiments.Table, row string) {
	b.Helper()
	for i, col := range t.Columns {
		for _, r := range t.Rows {
			if r.Label == row && i < len(r.Values) {
				b.ReportMetric(r.Values[i], col+"_x")
			}
		}
	}
}

func BenchmarkFig01LiveTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.LiveTraceSummary(42); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig02Motivation(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		points, _, err := l.Motivation(7)
		if err != nil {
			b.Fatal(err)
		}
		if len(points) == 0 {
			b.Fatal("no timeline")
		}
	}
}

func BenchmarkFig03MotivationSpeedup(b *testing.B) {
	l := lab(b)
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		_, t, err := l.Motivation(7)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	if v, err := last.Get("mixture", "speedup"); err == nil {
		b.ReportMetric(v, "mixture_x")
	}
}

func BenchmarkTable01Coefficients(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		if _, err := l.CoefficientsTable(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig06FeatureImpact(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		if _, err := l.FeatureImpact(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig07Static(b *testing.B) {
	l := lab(b)
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := l.Static(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	reportTable(b, last, "hmean")
}

func BenchmarkFig08Summary(b *testing.B) {
	l := lab(b)
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := l.Summary(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	reportTable(b, last, "hmean")
}

func benchDynamic(b *testing.B, size workload.Size, freq trace.Frequency) {
	l := lab(b)
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := l.DynamicScenario(size, freq, benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	reportTable(b, last, "hmean")
}

func BenchmarkFig09SmallLow(b *testing.B)  { benchDynamic(b, workload.Small, trace.LowFrequency) }
func BenchmarkFig10SmallHigh(b *testing.B) { benchDynamic(b, workload.Small, trace.HighFrequency) }
func BenchmarkFig11LargeLow(b *testing.B)  { benchDynamic(b, workload.Large, trace.LowFrequency) }
func BenchmarkFig12LargeHigh(b *testing.B) { benchDynamic(b, workload.Large, trace.HighFrequency) }

func BenchmarkFig13aWorkloadImpact(b *testing.B) {
	l := lab(b)
	sc := benchScale()
	sc.Targets = sc.Targets[:2]
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := l.WorkloadImpact(sc)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	reportTable(b, last, "workload")
}

func BenchmarkFig13bAdaptivePairs(b *testing.B) {
	l := lab(b)
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := l.AdaptivePairs(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	reportTable(b, last, "pair")
}

func BenchmarkFig14aLiveStudy(b *testing.B) {
	l := lab(b)
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := l.LiveStudy(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	reportTable(b, last, "hmean")
}

func BenchmarkFig14bAffinity(b *testing.B) {
	l := lab(b)
	sc := benchScale()
	sc.Targets = sc.Targets[:2]
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := l.Affinity(sc)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	if v, err := last.Get("mixture", "gain"); err == nil {
		b.ReportMetric(v, "mixture_affinity_gain_x")
	}
}

func BenchmarkFig14cMonolithic(b *testing.B) {
	l := lab(b)
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := l.MonolithicVsMixture(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	reportTable(b, last, "hmean")
}

func BenchmarkFig15aEnvAccuracy(b *testing.B) {
	l := lab(b)
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := l.EnvAccuracy(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	if v, err := last.Get("mixture", "accuracy"); err == nil {
		b.ReportMetric(v, "mixture_acc")
	}
}

func BenchmarkFig15bSelectionFreq(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		if _, err := l.SelectionFrequency(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15cNumExperts(b *testing.B) {
	l := lab(b)
	sc := benchScale()
	sc.Targets = sc.Targets[:2]
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := l.NumExperts(sc)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	if v, err := last.Get("mixture of 4", "speedup"); err == nil {
		b.ReportMetric(v, "mixture4_x")
	}
}

func BenchmarkFig16Granularity(b *testing.B) {
	l := lab(b)
	sc := benchScale()
	sc.Targets = sc.Targets[:2]
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := l.Granularity(sc)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	if v, err := last.Get("8 experts", "speedup"); err == nil {
		b.ReportMetric(v, "experts8_x")
	}
}

func BenchmarkFig17ThreadDist(b *testing.B) {
	l := lab(b)
	sc := benchScale()
	sc.Targets = sc.Targets[:2]
	for i := 0; i < b.N; i++ {
		if _, err := l.ThreadDistribution(sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationGating(b *testing.B) {
	l := lab(b)
	sc := benchScale()
	sc.Targets = sc.Targets[:2]
	for i := 0; i < b.N; i++ {
		if _, err := l.AblationGating(sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationFeatures(b *testing.B) {
	l := lab(b)
	for i := 0; i < b.N; i++ {
		if _, err := l.AblationFeatures(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchScenarioEval times one full experiment grid (a dynamic-scenario
// table) at a given worker count. The output is byte-identical at every
// setting (see TestWorkersOutputIdentical in internal/experiments); only
// wall-clock changes. On a host with four or more cores the 4-worker
// variant approaches a 4× win over serial; on a single-core host the two
// are equivalent, since the pool runs excess jobs inline on the submitting
// goroutine rather than oversubscribing.
func benchScenarioEval(b *testing.B, workers int) {
	l := lab(b)
	saved := l.Workers
	l.Workers = workers
	defer func() { l.Workers = saved }()
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := l.DynamicScenario(workload.Small, trace.LowFrequency, sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScenarioEvalSerial(b *testing.B)   { benchScenarioEval(b, 1) }
func BenchmarkScenarioEvalWorkers4(b *testing.B) { benchScenarioEval(b, 4) }

// benchScenarioStepping times the same dynamic-scenario grid under each
// simulation engine. The two produce observables that agree within 1e-9
// (TestLabSteppingEquivalence); only the stepping strategy differs, so the
// pair isolates what the event-horizon engine buys at experiment scale.
func benchScenarioStepping(b *testing.B, mode sim.SteppingMode) {
	l := lab(b)
	saved := l.Stepping
	l.Stepping = mode
	defer func() { l.Stepping = saved }()
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := l.DynamicScenario(workload.Small, trace.LowFrequency, sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScenarioEvalSteppingFixed(b *testing.B) { benchScenarioStepping(b, sim.SteppingFixed) }
func BenchmarkScenarioEvalSteppingEvent(b *testing.B) { benchScenarioStepping(b, sim.SteppingEvent) }

// BenchmarkTrainingPipeline times end-to-end training-data generation and
// expert construction (the one-off cost of §5.2.1).
func BenchmarkTrainingPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ds, err := training.Generate(training.Config{
			Duration:           20,
			WorkloadsPerTarget: 2,
			Seed:               uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := training.BuildExperts4(ds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPortability evaluates the mixture on machine sizes the experts
// never saw (the §9 future-work study).
func BenchmarkPortability(b *testing.B) {
	l := lab(b)
	sc := benchScale()
	sc.Targets = sc.Targets[:2]
	for i := 0; i < b.N; i++ {
		if _, err := l.Portability(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChurn measures the arriving/departing-workload extension.
func BenchmarkChurn(b *testing.B) {
	l := lab(b)
	sc := benchScale()
	sc.Targets = sc.Targets[:2]
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := l.Churn(sc)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	reportTable(b, last, "hmean")
}
