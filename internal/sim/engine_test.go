package sim

import (
	"math"
	"testing"

	"moe/internal/trace"
	"moe/internal/workload"
)

func smallProgram(name string, regions, iterations int) *workload.Program {
	rs := make([]workload.Region, regions)
	for i := range rs {
		rs[i] = workload.Region{
			Name: "r", Work: 2, ParallelFrac: 0.9, MemIntensity: 0.4,
			SyncCost: 0.01, Grain: 16, LoadStore: 10, Instructions: 100, Branches: 5,
		}
	}
	p := &workload.Program{Name: name, Suite: workload.NAS, Regions: rs, Iterations: iterations, WorkingSetGB: 1}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p
}

func TestRunValidation(t *testing.T) {
	prog := smallProgram("p", 1, 1)
	cases := []Scenario{
		{},                  // no machine
		{Machine: Eval32()}, // no programs
		{Machine: Eval32(), Programs: []ProgramSpec{{Program: prog, Policy: FixedThreads(1)}}}, // no MaxTime
		{Machine: Eval32(), Programs: []ProgramSpec{{Program: nil, Policy: FixedThreads(1)}}, MaxTime: 10},
		{Machine: Eval32(), Programs: []ProgramSpec{{Program: prog}}, MaxTime: 10}, // no policy
		{Machine: Eval32(), Programs: []ProgramSpec{
			{Program: prog, Policy: FixedThreads(1), Target: true},
			{Program: prog, Policy: FixedThreads(1), Target: true},
		}, MaxTime: 10}, // two targets
	}
	for i, s := range cases {
		if _, err := Run(s); err == nil {
			t.Errorf("case %d should error", i)
		}
	}
}

func TestRunCompletesIsolatedProgram(t *testing.T) {
	prog := smallProgram("p", 2, 3)
	res, err := Run(Scenario{
		Machine:  Eval32(),
		Programs: []ProgramSpec{{Program: prog, Policy: FixedThreads(8), Target: true}},
		MaxTime:  10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := res.Target()
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Finished {
		t.Fatal("target should finish")
	}
	if tr.ExecTime <= 0 || tr.ExecTime > 10000 {
		t.Errorf("exec time %v", tr.ExecTime)
	}
	// All work accounted for (small tolerance for the final partial step).
	if math.Abs(tr.WorkDone-prog.TotalWork()) > 0.5 {
		t.Errorf("work done %v, program total %v", tr.WorkDone, prog.TotalWork())
	}
}

func TestMoreThreadsFasterWhenIsolatedAndScalable(t *testing.T) {
	run := func(n int) float64 {
		prog := smallProgram("p", 2, 3)
		res, err := Run(Scenario{
			Machine:  Eval32(),
			Programs: []ProgramSpec{{Program: prog, Policy: FixedThreads(n), Target: true}},
			MaxTime:  100000,
		})
		if err != nil {
			t.Fatal(err)
		}
		tr, _ := res.Target()
		return tr.ExecTime
	}
	t1, t8 := run(1), run(8)
	if t8 >= t1 {
		t.Errorf("8 threads (%v) should beat 1 thread (%v) in isolation", t8, t1)
	}
	if t1/t8 < 4 {
		t.Errorf("speedup %v too small for a p=0.9 grain-16 program", t1/t8)
	}
}

func TestSerialPhaseDemand(t *testing.T) {
	// A p=0 program is all-serial: its demand stays 1 regardless of
	// policy, so a co-runner should get almost the whole machine.
	serial := &workload.Program{
		Name: "serial", Suite: workload.NAS, Iterations: 1,
		Regions: []workload.Region{{
			Name: "s", Work: 50, ParallelFrac: 0, MemIntensity: 0.1,
			SyncCost: 0, Grain: 1, LoadStore: 1, Instructions: 10, Branches: 1,
		}},
	}
	if err := serial.Validate(); err != nil {
		t.Fatal(err)
	}
	par := smallProgram("par", 2, 30)
	res, err := Run(Scenario{
		Machine: Eval32(),
		Programs: []ProgramSpec{
			{Program: par, Policy: FixedThreads(16), Target: true},
			{Program: serial, Policy: FixedThreads(32), Loop: true},
		},
		MaxTime: 100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := res.Target()

	// Against a genuinely parallel co-runner the target must be slower.
	wide := smallProgram("wide", 2, 20)
	wide.Regions[0].MemIntensity = 0.8
	wide.Regions[1].MemIntensity = 0.8
	res2, err := Run(Scenario{
		Machine: Eval32(),
		Programs: []ProgramSpec{
			{Program: smallProgram("par", 2, 30), Policy: FixedThreads(16), Target: true},
			{Program: wide, Policy: FixedThreads(32), Loop: true},
		},
		MaxTime: 100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr2, _ := res2.Target()
	if tr2.ExecTime <= tr.ExecTime {
		t.Errorf("parallel co-runner (%v) should hurt more than serial co-runner (%v)", tr2.ExecTime, tr.ExecTime)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (float64, float64) {
		res, err := Run(Scenario{
			Machine: Eval32(),
			Programs: []ProgramSpec{
				{Program: smallProgram("a", 3, 4), Policy: FixedThreads(6), Target: true},
				{Program: smallProgram("b", 2, 2), Policy: FixedThreads(12), Loop: true},
			},
			MaxTime:   100000,
			RateNoise: 0.2,
			Seed:      99,
		})
		if err != nil {
			t.Fatal(err)
		}
		tr, _ := res.Target()
		return tr.ExecTime, res.WorkloadThroughput()
	}
	e1, w1 := run()
	e2, w2 := run()
	if e1 != e2 || w1 != w2 {
		t.Errorf("identical scenarios diverged: %v/%v vs %v/%v", e1, w1, e2, w2)
	}
}

func TestHardwareTraceLimitsProgress(t *testing.T) {
	run := func(hw *trace.HardwareTrace) float64 {
		m := Eval32()
		m.Hardware = hw
		res, err := Run(Scenario{
			Machine:  m,
			Programs: []ProgramSpec{{Program: smallProgram("p", 2, 4), Policy: FixedThreads(32), Target: true}},
			MaxTime:  100000,
		})
		if err != nil {
			t.Fatal(err)
		}
		tr, _ := res.Target()
		return tr.ExecTime
	}
	full := run(trace.StaticHardware(32))
	quarter := run(trace.StaticHardware(8))
	if quarter <= full {
		t.Errorf("fewer processors (%v) should be slower than full machine (%v)", quarter, full)
	}
}

func TestWorkloadLoopsUntilTargetFinishes(t *testing.T) {
	res, err := Run(Scenario{
		Machine: Eval32(),
		Programs: []ProgramSpec{
			{Program: smallProgram("t", 2, 6), Policy: FixedThreads(8), Target: true},
			{Program: smallProgram("w", 1, 1), Policy: FixedThreads(8), Loop: true},
		},
		MaxTime: 100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Programs[1].Finished {
		t.Error("looping workload should never report finished")
	}
	// The loop must have restarted: work done beyond one pass.
	if res.Programs[1].WorkDone <= smallProgram("w", 1, 1).TotalWork() {
		t.Error("workload did not loop")
	}
	if res.WorkloadThroughput() <= 0 {
		t.Error("workload throughput should be positive")
	}
}

func TestStartDelay(t *testing.T) {
	res, err := Run(Scenario{
		Machine: Eval32(),
		Programs: []ProgramSpec{
			{Program: smallProgram("t", 2, 4), Policy: FixedThreads(8), Target: true},
			{Program: smallProgram("w", 2, 4), Policy: FixedThreads(32), Loop: true, StartDelay: 1e7},
		},
		MaxTime: 100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The workload never arrives, so its work is zero.
	if res.Programs[1].WorkDone != 0 {
		t.Errorf("delayed workload did work: %v", res.Programs[1].WorkDone)
	}
}

func TestSamplesRecorded(t *testing.T) {
	res, err := Run(Scenario{
		Machine:       Eval32(),
		Programs:      []ProgramSpec{{Program: smallProgram("t", 2, 4), Policy: FixedThreads(8), Target: true}},
		MaxTime:       100000,
		RecordSamples: true,
		RecordOracle:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := res.Target()
	if len(tr.Samples) == 0 {
		t.Fatal("no samples recorded")
	}
	for _, s := range tr.Samples {
		if s.OracleN < 1 || s.OracleN > 32 {
			t.Errorf("oracle thread count %d out of range", s.OracleN)
		}
		if len(s.RateCurve) != 32 {
			t.Errorf("rate curve length %d", len(s.RateCurve))
		}
		if s.EnvNorm <= 0 {
			t.Error("environment norm should be positive")
		}
		if s.Features[4] != float64(s.Available) {
			t.Error("f5 must equal available processors")
		}
	}
}

func TestOraclePolicyBeatsFixedExtremes(t *testing.T) {
	run := func(p Policy) float64 {
		m := Eval32()
		hw, err := trace.GenerateHardware(trace.NewRNG(3), 32, trace.LowFrequency, 10000)
		if err != nil {
			t.Fatal(err)
		}
		m.Hardware = hw
		res, err := Run(Scenario{
			Machine: m,
			Programs: []ProgramSpec{
				{Program: smallProgram("t", 2, 6), Policy: p, Target: true},
				{Program: smallProgram("w", 2, 2), Policy: FixedThreads(32), Loop: true},
			},
			MaxTime: 100000,
		})
		if err != nil {
			t.Fatal(err)
		}
		tr, _ := res.Target()
		return tr.ExecTime
	}
	oracle := run(OraclePolicy{})
	if one := run(FixedThreads(1)); oracle > one {
		t.Errorf("oracle (%v) lost to 1 thread (%v)", oracle, one)
	}
	if wide := run(FixedThreads(32)); oracle > wide*1.001 {
		t.Errorf("oracle (%v) lost to 32 threads (%v)", oracle, wide)
	}
}

func TestThreadHistogramAndDecisions(t *testing.T) {
	res, err := Run(Scenario{
		Machine:  Eval32(),
		Programs: []ProgramSpec{{Program: smallProgram("t", 2, 4), Policy: FixedThreads(5), Target: true}},
		MaxTime:  100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := res.Target()
	if tr.DecisionCount == 0 {
		t.Fatal("no decisions recorded")
	}
	if tr.ThreadHist.Count(5) != tr.DecisionCount {
		t.Error("all decisions should be 5 threads")
	}
}

func TestRateNoiseOnlyAffectsObservation(t *testing.T) {
	run := func(noise float64) float64 {
		res, err := Run(Scenario{
			Machine:   Eval32(),
			Programs:  []ProgramSpec{{Program: smallProgram("t", 2, 4), Policy: FixedThreads(8), Target: true}},
			MaxTime:   100000,
			RateNoise: noise,
			Seed:      1,
		})
		if err != nil {
			t.Fatal(err)
		}
		tr, _ := res.Target()
		return tr.ExecTime
	}
	// A fixed policy ignores Rate, so noise must not change the outcome.
	if run(0) != run(0.5) {
		t.Error("rate noise changed actual progress under a fixed policy")
	}
}
