package evolve

import (
	"fmt"
	"math"

	"moe/internal/expert"
	"moe/internal/features"
	"moe/internal/regress"
)

// cloneRateFraction selects the behavior-cloning training set: only steps
// whose observed progress rate reached this fraction of the best rate in
// history count as decisions worth imitating.
const cloneRateFraction = 0.7

// Spawn breeds one candidate expert from up to two parents and the scored
// observation history. The candidate is always Table-1-form.
//
// The environment predictor — the candidate's selection identity — is refit
// from history (the (feature, next-norm) pairs the selector itself learns
// from) once enough samples exist, so a newborn is specialized to the
// environment actually being observed rather than to whatever regime its
// parents trained on; with thin history it falls back to mutating parentA's
// table. The thread predictor is bred QD-style: parentA's table crossed
// with parentB's (when a second parent exists), pulled toward a
// behavior-cloning fit of the pool's own high-progress decisions, then
// mutated. parentB may be nil.
//
// Spawn fails — deterministically, given the same inputs — when no valid
// Table-1 genome can be assembled; the caller skips that birth cycle.
func Spawn(name string, parentA, parentB *expert.Expert, hist *History, rng *RNG, cfg Config) (*expert.Expert, error) {
	if parentA == nil {
		return nil, fmt.Errorf("evolve: spawn without a parent")
	}

	env, err := breedEnv(parentA, hist, rng, cfg)
	if err != nil {
		return nil, err
	}
	threads, err := breedThreads(parentA, parentB, hist, rng, cfg)
	if err != nil {
		return nil, err
	}

	child := &expert.Expert{
		Name:       name,
		Threads:    threads,
		Env:        expert.NormEnvModel{Model: env},
		MaxThreads: parentA.MaxThreads,
		TrainedOn:  lineageTag(parentA, parentB),
		FeatMean:   parentA.FeatMean,
		FeatStd:    parentA.FeatStd,
	}
	if parentB != nil && parentB.MaxThreads > child.MaxThreads {
		child.MaxThreads = parentB.MaxThreads
	}
	if hist.Len() >= cfg.RefitMin {
		child.FeatMean, child.FeatStd = historyStats(hist)
	}
	if err := child.Validate(); err != nil {
		return nil, fmt.Errorf("evolve: candidate rejected: %w", err)
	}
	return child, nil
}

func lineageTag(a, b *expert.Expert) string {
	if b == nil {
		return fmt.Sprintf("evolved(%s)", a.Name)
	}
	return fmt.Sprintf("evolved(%s×%s)", a.Name, b.Name)
}

// breedEnv produces the candidate's environment predictor: a refit against
// history when enough evidence exists, otherwise a mutation of parentA's
// norm table.
func breedEnv(parentA *expert.Expert, hist *History, rng *RNG, cfg Config) (*regress.Model, error) {
	if hist.Len() >= cfg.RefitMin {
		samples := make([]regress.Sample, 0, hist.Len())
		hist.Each(func(s *Sample) {
			samples = append(samples, regress.Sample{X: s.Feat.Slice(), Y: s.NextNorm})
		})
		if m, err := regress.Fit(samples, regress.Options{Ridge: 1e-6}); err == nil {
			if fitted, err := regress.FromCoefficients(clampCoeffs(m.Coefficients())); err == nil {
				return fitted, nil
			}
		}
		// Singular or out-of-bound fit: fall through to mutation.
	}
	pm := expert.NormEnv(parentA)
	if pm == nil {
		return nil, fmt.Errorf("evolve: parent %s has no Table-1 environment predictor and history is too thin to refit", parentA.Name)
	}
	return expert.MutateModel(pm, cfg.MutationScale, rng.Sym)
}

// breedThreads produces the candidate's thread predictor: cross the
// parents, blend halfway toward a behavior clone of the pool's own
// high-progress decisions when one can be fit, then mutate.
func breedThreads(parentA, parentB *expert.Expert, hist *History, rng *RNG, cfg Config) (*regress.Model, error) {
	base := parentA.Threads
	if parentB != nil {
		crossed, err := expert.CrossModels(parentA.Threads, parentB.Threads, rng.Float64)
		if err != nil {
			return nil, err
		}
		base = crossed
	}
	if clone := fitClone(hist, cfg); clone != nil {
		blended, err := expert.CrossModels(base, clone, func() float64 { return 0.5 })
		if err == nil {
			base = blended
		}
	}
	return expert.MutateModel(base, cfg.MutationScale, rng.Sym)
}

// fitClone fits n = w·f to the history's high-rate decisions, or returns
// nil when the evidence is too thin or the fit fails.
func fitClone(hist *History, cfg Config) *regress.Model {
	if hist.Len() < cfg.RefitMin {
		return nil
	}
	maxRate := 0.0
	hist.Each(func(s *Sample) {
		if s.Rate > maxRate {
			maxRate = s.Rate
		}
	})
	if maxRate <= 0 {
		return nil
	}
	var samples []regress.Sample
	hist.Each(func(s *Sample) {
		if s.Rate >= cloneRateFraction*maxRate && s.Threads > 0 {
			samples = append(samples, regress.Sample{X: s.Feat.Slice(), Y: float64(s.Threads)})
		}
	})
	if len(samples) < cfg.RefitMin/2 {
		return nil
	}
	m, err := regress.Fit(samples, regress.Options{Ridge: 1e-6})
	if err != nil {
		return nil
	}
	m, err = regress.FromCoefficients(clampCoeffs(m.Coefficients()))
	if err != nil {
		return nil
	}
	return m
}

// clampCoeffs pulls fitted coefficients inside the loading bound so a
// wild-but-finite fit degrades to a saturated model instead of a rejected
// one. Non-finite values are left for FromCoefficients to reject.
func clampCoeffs(c []float64) []float64 {
	for i, v := range c {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		if v > regress.MaxCoefficient {
			c[i] = regress.MaxCoefficient
		} else if v < -regress.MaxCoefficient {
			c[i] = -regress.MaxCoefficient
		}
	}
	return c
}

// historyStats computes per-feature mean and standard deviation over the
// history, giving a refit candidate training statistics that describe the
// distribution it was actually fit on.
func historyStats(hist *History) (mean, std [features.Dim]float64) {
	n := float64(hist.Len())
	if n == 0 {
		return mean, std
	}
	hist.Each(func(s *Sample) {
		for i := 0; i < features.Dim; i++ {
			mean[i] += s.Feat[i]
		}
	})
	for i := range mean {
		mean[i] /= n
	}
	hist.Each(func(s *Sample) {
		for i := 0; i < features.Dim; i++ {
			d := s.Feat[i] - mean[i]
			std[i] += d * d
		}
	})
	for i := range std {
		std[i] = math.Sqrt(std[i] / n)
	}
	return mean, std
}
