package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"moe"
	"moe/internal/experiments"
	"moe/internal/features"
	"moe/internal/serve"
	"moe/moeclient"
)

// The stream study: the same fixed workload — eight tenants, each a strict
// sequence of small decide batches — pushed through every transport the
// daemon speaks, on otherwise identical servers. The committed evidence
// (BENCH_PR10.json) reports decisions/sec per transport and the speedup of
// the wire protocol (with and without request coalescing) over one-request-
// per-batch JSON, plus a separate durability phase measuring what journal
// group commit buys when every append must be fsynced. Every arm's served
// threads are replayed against solo runtimes; a mismatch is a hard failure,
// because a transport that is fast but wrong certifies nothing.

type streamOpts struct {
	Tenants         int // concurrent tenant streams
	Batch           int // observations per frame/request
	FramesPerTenant int // frames in each tenant's sequence (transport phase)
	NDJSONLines     int // frames folded into one NDJSON request
	FlushEvery      int // wire client: frames queued between flushes
	GCFrames        int // frames per tenant in the group-commit phase
	GCWindow        time.Duration
}

func defaultStreamOpts() streamOpts {
	return streamOpts{
		Tenants:         8,
		Batch:           4,
		FramesPerTenant: 512,
		NDJSONLines:     64,
		FlushEvery:      16,
		GCFrames:        96,
		GCWindow:        time.Millisecond,
	}
}

type streamArm struct {
	Transport       string  `json:"transport"`
	Decisions       int64   `json:"decisions"`
	ElapsedSec      float64 `json:"elapsed_sec"`
	DecisionsPerSec float64 `json:"decisions_per_sec"`
	SpeedupVsJSON   float64 `json:"speedup_vs_json"`
	// Coalescing evidence (wire arms): served groups and mean frames merged
	// per DecideBatch, from the serve_stream_coalesced_batch histogram.
	CoalescedGroups int64   `json:"coalesced_groups,omitempty"`
	MeanCoalesce    float64 `json:"mean_frames_per_group,omitempty"`
}

type streamGCArm struct {
	WindowMs        float64 `json:"window_ms"`
	Decisions       int64   `json:"decisions"`
	ElapsedSec      float64 `json:"elapsed_sec"`
	DecisionsPerSec float64 `json:"decisions_per_sec"`
	// Fsyncs is measured by the group committer when the window is open;
	// with the window closed every journal record (one per observation) pays
	// its own fsync, so the count equals the acked observations (reported as
	// the estimate it is).
	Fsyncs         int64 `json:"fsyncs"`
	FsyncsSaved    int64 `json:"fsyncs_saved"`
	FsyncsMeasured bool  `json:"fsyncs_measured"`
	ResumeVerified int   `json:"resume_verified_tenants"`
}

type streamReport struct {
	Tenants         int   `json:"tenants"`
	Batch           int   `json:"batch"`
	FramesPerTenant int   `json:"frames_per_tenant"`
	DecisionsPerArm int64 `json:"decisions_per_arm"`

	Arms []streamArm `json:"arms"`

	SpeedupWireVsJSON float64 `json:"speedup_wire_vs_json"`

	GoldenTenantsChecked int `json:"golden_tenants_checked"`
	GoldenMismatches     int `json:"golden_mismatches"`

	GroupCommit []streamGCArm `json:"group_commit"`

	Notes []string `json:"notes"`
}

// streamObsNative is soloServeThreads' stream in runtime form — the wire
// arms encode observations directly instead of via JSON maps.
func streamObsNative(seed, k int) moe.Observation {
	var f moe.Features
	for j := range f {
		f[j] = 0.15*float64(j+1) + 0.02*float64((k*7+j*3+seed)%11)
	}
	f[features.Processors] = throughputMaxThreads
	return moe.Observation{
		Time:           0.25 * float64(k),
		Features:       f,
		RegionStart:    k%4 == 0,
		Rate:           100 + float64(seed%13),
		AvailableProcs: throughputMaxThreads,
	}
}

func streamTenantID(i int) string { return fmt.Sprintf("stream-%03d", i) }

// startStreamServer brings up one in-process daemon for an arm and returns
// its base URL plus a shutdown func.
func startStreamServer(cfg serve.Config) (*serve.Server, string, func(), error) {
	srv, err := serve.NewServer(cfg)
	if err != nil {
		return nil, "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, "", nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	stop := func() {
		httpSrv.Close()
		srv.Close()
	}
	return srv, "http://" + ln.Addr().String(), stop, nil
}

func streamServeConfig(opts streamOpts) serve.Config {
	return serve.Config{
		MaxThreads:      throughputMaxThreads,
		MaxInflight:     opts.Tenants*opts.FramesPerTenant + 64,
		DefaultDeadline: 20 * time.Second,
		DrainWindow:     20 * time.Second,
		Logf:            func(string, ...any) {},
	}
}

// armResult carries one transport arm's timing and per-tenant served
// threads for the golden replay.
type armResult struct {
	elapsed time.Duration
	threads [][]int
	errs    []string
}

// runArmWorkers runs one goroutine per tenant and times the whole fleet.
func runArmWorkers(tenants int, work func(ti int) ([]int, error)) *armResult {
	res := &armResult{threads: make([][]int, tenants)}
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for ti := 0; ti < tenants; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			got, err := work(ti)
			mu.Lock()
			defer mu.Unlock()
			res.threads[ti] = got
			if err != nil {
				res.errs = append(res.errs, fmt.Sprintf("tenant %s: %v", streamTenantID(ti), err))
			}
		}(ti)
	}
	wg.Wait()
	res.elapsed = time.Since(start)
	return res
}

// runJSONArm is the baseline: one HTTP request per batch, keep-alive
// connections, strictly sequential per tenant.
func runJSONArm(base string, opts streamOpts) *armResult {
	transport := &http.Transport{MaxIdleConnsPerHost: opts.Tenants + 2}
	defer transport.CloseIdleConnections()
	return runArmWorkers(opts.Tenants, func(ti int) ([]int, error) {
		id := streamTenantID(ti)
		cl := &serveClient{base: base, client: &http.Client{Timeout: 30 * time.Second, Transport: transport}}
		seed := tenantSeed(id)
		var got []int
		for f := 0; f < opts.FramesPerTenant; f++ {
			status, resp, err := cl.post(id, seed, f*opts.Batch, opts.Batch, 20000)
			if err != nil {
				return got, err
			}
			if status != http.StatusOK {
				return got, fmt.Errorf("frame %d: status %d (%s)", f, status, resp.Code)
			}
			got = append(got, resp.Threads...)
		}
		return got, nil
	})
}

// runNDJSONArm folds frames into NDJSON bodies: fewer requests, same
// sequential per-line decide on the server.
func runNDJSONArm(base string, opts streamOpts) *armResult {
	transport := &http.Transport{MaxIdleConnsPerHost: opts.Tenants + 2}
	defer transport.CloseIdleConnections()
	return runArmWorkers(opts.Tenants, func(ti int) ([]int, error) {
		id := streamTenantID(ti)
		cl := &http.Client{Timeout: 60 * time.Second, Transport: transport}
		seed := tenantSeed(id)
		var got []int
		for f := 0; f < opts.FramesPerTenant; f += opts.NDJSONLines {
			lines := opts.NDJSONLines
			if f+lines > opts.FramesPerTenant {
				lines = opts.FramesPerTenant - f
			}
			var body bytes.Buffer
			enc := json.NewEncoder(&body)
			for l := 0; l < lines; l++ {
				obs := make([]map[string]any, opts.Batch)
				for i := range obs {
					obs[i] = serveObservation(seed, (f+l)*opts.Batch+i)
				}
				if err := enc.Encode(map[string]any{"tenant": id, "observations": obs}); err != nil {
					return got, err
				}
			}
			req, err := http.NewRequest(http.MethodPost, base+"/v1/decide", &body)
			if err != nil {
				return got, err
			}
			req.Header.Set("Content-Type", "application/x-ndjson")
			req.Header.Set("X-Deadline-Ms", strconv.Itoa(20000))
			resp, err := cl.Do(req)
			if err != nil {
				return got, err
			}
			dec := json.NewDecoder(resp.Body)
			for l := 0; l < lines; l++ {
				var line serveWireResp
				if err := dec.Decode(&line); err != nil {
					resp.Body.Close()
					return got, fmt.Errorf("request at frame %d line %d: %v", f, l, err)
				}
				if line.Code != "" {
					resp.Body.Close()
					return got, fmt.Errorf("request at frame %d line %d: %s", f, l, line.Code)
				}
				got = append(got, line.Threads...)
			}
			resp.Body.Close()
		}
		return got, nil
	})
}

// runWireArm drives one pipelined wire session per tenant: a writer pushes
// the whole frame sequence (flushing every FlushEvery frames) while a
// reader collects responses, so the server's coalescer sees real depth.
func runWireArm(base string, opts streamOpts, frames int) *armResult {
	return runArmWorkers(opts.Tenants, func(ti int) ([]int, error) {
		id := streamTenantID(ti)
		seed := tenantSeed(id)
		c, err := moeclient.DialHTTP(base, 5*time.Second)
		if err != nil {
			return nil, err
		}
		defer c.Close()

		type recvOut struct {
			threads []int
			err     error
		}
		done := make(chan recvOut, 1)
		go func() {
			var got []int
			for f := 0; f < frames; f++ {
				resp, err := c.Recv()
				if err != nil {
					done <- recvOut{got, fmt.Errorf("recv frame %d: %v", f, err)}
					return
				}
				if resp.Err != nil {
					done <- recvOut{got, fmt.Errorf("frame %d refused: %v", f, resp.Err)}
					return
				}
				if resp.Seq != uint64(f) {
					done <- recvOut{got, fmt.Errorf("frame %d: response seq %d out of order", f, resp.Seq)}
					return
				}
				got = append(got, resp.Threads...)
			}
			done <- recvOut{got, nil}
		}()

		obs := make([]moe.Observation, opts.Batch)
		for f := 0; f < frames; f++ {
			for i := range obs {
				obs[i] = streamObsNative(seed, f*opts.Batch+i)
			}
			if err := c.Send(uint64(f), 0, id, "", obs); err != nil {
				return nil, fmt.Errorf("send frame %d: %v", f, err)
			}
			if (f+1)%opts.FlushEvery == 0 {
				if err := c.Flush(); err != nil {
					return nil, fmt.Errorf("flush at frame %d: %v", f, err)
				}
			}
		}
		if err := c.Flush(); err != nil {
			return nil, fmt.Errorf("final flush: %v", err)
		}
		out := <-done
		return out.threads, out.err
	})
}

// coalesceStats reads the serve_stream_coalesced_batch histogram back out
// of the Prometheus exposition: groups served and frames merged.
func coalesceStats(srv *serve.Server) (groups int64, frames int64) {
	var buf bytes.Buffer
	if err := srv.Registry().WritePrometheus(&buf); err != nil {
		return 0, 0
	}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := sc.Text()
		if v, ok := strings.CutPrefix(line, "serve_stream_coalesced_batch_count "); ok {
			if n, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil {
				groups = int64(n)
			}
		}
		if v, ok := strings.CutPrefix(line, "serve_stream_coalesced_batch_sum "); ok {
			if n, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil {
				frames = int64(n)
			}
		}
	}
	return groups, frames
}

// runStreamGC is one durability arm: checkpoint-sync on, pipelined wire
// load, then drain and a cold restart proving every tenant's acked count
// survived — group commit must never trade away commit-before-ack.
func runStreamGC(opts streamOpts, window time.Duration) (*streamGCArm, []string, error) {
	root, err := os.MkdirTemp("", "moed-stream-gc-*")
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(root)

	cfg := streamServeConfig(opts)
	cfg.CheckpointRoot = root
	cfg.CheckpointSync = true
	cfg.GroupCommitWindow = window
	cfg.CheckpointEvery = 1 << 20 // journal-only: isolate append fsyncs

	srv, base, stop, err := startStreamServer(cfg)
	if err != nil {
		return nil, nil, err
	}
	res := runWireArm(base, opts, opts.GCFrames)
	arm := &streamGCArm{
		WindowMs:   float64(window) / float64(time.Millisecond),
		ElapsedSec: res.elapsed.Seconds(),
	}
	for _, ths := range res.threads {
		arm.Decisions += int64(len(ths))
	}
	arm.DecisionsPerSec = float64(arm.Decisions) / res.elapsed.Seconds()
	arm.Fsyncs, arm.FsyncsSaved = srv.GroupCommitStats()
	arm.FsyncsMeasured = window > 0
	if !arm.FsyncsMeasured {
		// No committer in the path: every journal record fsyncs itself,
		// one record per observation.
		arm.Fsyncs = int64(opts.Tenants * opts.GCFrames * opts.Batch)
	}
	notes := res.errs
	if drep, err := srv.Drain(cfg.DrainWindow); err != nil || !drep.Clean() {
		notes = append(notes, fmt.Sprintf("gc window %s: drain not clean (err=%v)", window, err))
	}
	stop()

	// Cold restart on the drained lineage: one more frame per tenant must
	// resume at exactly the acked count.
	_, base2, stop2, err := startStreamServer(cfg)
	if err != nil {
		return arm, notes, err
	}
	defer stop2()
	c, err := moeclient.DialHTTP(base2, 5*time.Second)
	if err != nil {
		return arm, append(notes, fmt.Sprintf("gc window %s: restart dial: %v", window, err)), nil
	}
	defer c.Close()
	for ti := 0; ti < opts.Tenants; ti++ {
		id := streamTenantID(ti)
		seed := tenantSeed(id)
		n := opts.GCFrames * opts.Batch
		obs := make([]moe.Observation, opts.Batch)
		for i := range obs {
			obs[i] = streamObsNative(seed, n+i)
		}
		resp, err := c.Do(uint64(1000+ti), 0, id, "", obs)
		if err != nil || resp.Err != nil {
			notes = append(notes, fmt.Sprintf("gc window %s: tenant %s restart decide failed: %v/%v", window, id, err, resp))
			continue
		}
		if resp.Decisions != int64(n+opts.Batch) {
			notes = append(notes, fmt.Sprintf("gc window %s: tenant %s resumed decisions=%d, want %d", window, id, resp.Decisions, n+opts.Batch))
			continue
		}
		arm.ResumeVerified++
	}
	return arm, notes, nil
}

// runStream is the whole study.
func runStream(opts streamOpts) (*streamReport, error) {
	rep := &streamReport{
		Tenants:         opts.Tenants,
		Batch:           opts.Batch,
		FramesPerTenant: opts.FramesPerTenant,
		DecisionsPerArm: int64(opts.Tenants * opts.FramesPerTenant * opts.Batch),
	}

	// Solo ground truth, shared by every arm's golden check.
	want := make([][]int, opts.Tenants)
	for ti := range want {
		ths, err := soloServeThreads(streamTenantID(ti), opts.FramesPerTenant*opts.Batch)
		if err != nil {
			return nil, err
		}
		want[ti] = ths
	}
	golden := func(transport string, res *armResult) {
		for _, e := range res.errs {
			rep.Notes = append(rep.Notes, transport+": "+e)
			rep.GoldenMismatches++
		}
		for ti, got := range res.threads {
			rep.GoldenTenantsChecked++
			match := len(got) == len(want[ti])
			for i := 0; match && i < len(got); i++ {
				match = got[i] == want[ti][i]
			}
			if !match {
				rep.GoldenMismatches++
				rep.Notes = append(rep.Notes, fmt.Sprintf("%s: tenant %s threads diverge from solo replay (%d served, %d expected)",
					transport, streamTenantID(ti), len(got), len(want[ti])))
			}
		}
	}

	type armRun struct {
		transport   string
		noCoalesce  bool
		run         func(base string) *armResult
		wantCoalesc bool
	}
	arms := []armRun{
		{"json", false, func(base string) *armResult { return runJSONArm(base, opts) }, false},
		{"ndjson", false, func(base string) *armResult { return runNDJSONArm(base, opts) }, false},
		{"wire", false, func(base string) *armResult { return runWireArm(base, opts, opts.FramesPerTenant) }, true},
		{"wire-nocoalesce", true, func(base string) *armResult { return runWireArm(base, opts, opts.FramesPerTenant) }, true},
	}
	var jsonDPS float64
	for _, a := range arms {
		cfg := streamServeConfig(opts)
		cfg.DisableStreamCoalesce = a.noCoalesce
		srv, base, stop, err := startStreamServer(cfg)
		if err != nil {
			return nil, err
		}
		res := a.run(base)
		arm := streamArm{Transport: a.transport, ElapsedSec: res.elapsed.Seconds()}
		for _, ths := range res.threads {
			arm.Decisions += int64(len(ths))
		}
		arm.DecisionsPerSec = float64(arm.Decisions) / res.elapsed.Seconds()
		if a.wantCoalesc {
			groups, frames := coalesceStats(srv)
			arm.CoalescedGroups = groups
			if groups > 0 {
				arm.MeanCoalesce = float64(frames) / float64(groups)
			}
		}
		golden(a.transport, res)
		stop()
		if a.transport == "json" {
			jsonDPS = arm.DecisionsPerSec
		}
		if jsonDPS > 0 {
			arm.SpeedupVsJSON = arm.DecisionsPerSec / jsonDPS
		}
		rep.Arms = append(rep.Arms, arm)
		if a.transport == "wire" {
			rep.SpeedupWireVsJSON = arm.SpeedupVsJSON
		}
	}

	// Durability phase: fsync-per-append vs group commit.
	for _, window := range []time.Duration{0, opts.GCWindow} {
		arm, notes, err := runStreamGC(opts, window)
		if err != nil {
			return nil, err
		}
		rep.Notes = append(rep.Notes, notes...)
		rep.GroupCommit = append(rep.GroupCommit, *arm)
	}

	rep.Notes = append(rep.Notes,
		fmt.Sprintf("identical workload per arm: %d tenants x %d frames x %d obs, served threads golden-checked against solo runtimes",
			opts.Tenants, opts.FramesPerTenant, opts.Batch),
		fmt.Sprintf("wire transport sustains %.1fx the JSON baseline (coalescing %s)",
			rep.SpeedupWireVsJSON, "on"))
	return rep, nil
}

func streamTable(rep *streamReport) *experiments.Table {
	t := &experiments.Table{
		Title:   "Streaming wire protocol — decisions/sec by transport on an identical workload",
		Columns: []string{"value"},
		Notes:   rep.Notes,
	}
	for _, a := range rep.Arms {
		t.AddRow(a.Transport+" decisions/sec", a.DecisionsPerSec)
	}
	t.AddRow("wire speedup vs json", rep.SpeedupWireVsJSON)
	t.AddRow("golden mismatches", float64(rep.GoldenMismatches))
	for _, g := range rep.GroupCommit {
		t.AddRow(fmt.Sprintf("sync decisions/sec (window %.1fms)", g.WindowMs), g.DecisionsPerSec)
		t.AddRow(fmt.Sprintf("journal fsyncs (window %.1fms)", g.WindowMs), float64(g.Fsyncs))
	}
	return t
}

// driveStream is the -stream-drive client mode behind scripts/stream_smoke.sh:
// it splits total decisions across tenant wire sessions against an external
// moed, requires every tenant's decision counters to count up contiguously
// from base (the resume proof after a restart), and prints a JSON summary.
func driveStream(target string, tenants, decisions, base int) error {
	opts := defaultStreamOpts()
	frames := decisions / (tenants * opts.Batch)
	if frames < 1 {
		frames = 1
	}
	dial := func() (*moeclient.Client, error) {
		if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") {
			return moeclient.DialHTTP(target, 5*time.Second)
		}
		return moeclient.Dial(target, 5*time.Second)
	}
	perTenant := make([]int64, tenants)
	var mu sync.Mutex
	errs := []string{} // non-nil: the smoke script reads it as a JSON array
	var wg sync.WaitGroup
	start := time.Now()
	for ti := 0; ti < tenants; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			fail := func(format string, a ...any) {
				mu.Lock()
				errs = append(errs, fmt.Sprintf("tenant %s: ", streamTenantID(ti))+fmt.Sprintf(format, a...))
				mu.Unlock()
			}
			id := streamTenantID(ti)
			seed := tenantSeed(id)
			c, err := dial()
			if err != nil {
				fail("dial: %v", err)
				return
			}
			defer c.Close()
			done := make(chan error, 1)
			go func() {
				for f := 0; f < frames; f++ {
					resp, err := c.Recv()
					if err != nil {
						done <- fmt.Errorf("recv frame %d: %v", f, err)
						return
					}
					if resp.Err != nil {
						done <- fmt.Errorf("frame %d refused: %v", f, resp.Err)
						return
					}
					want := int64(base + (f+1)*opts.Batch)
					if resp.Decisions != want {
						done <- fmt.Errorf("frame %d acked decisions=%d, want %d", f, resp.Decisions, want)
						return
					}
					perTenant[ti] = resp.Decisions
				}
				done <- nil
			}()
			obs := make([]moe.Observation, opts.Batch)
			for f := 0; f < frames; f++ {
				for i := range obs {
					obs[i] = streamObsNative(seed, base+f*opts.Batch+i)
				}
				if err := c.Send(uint64(f), 0, id, "", obs); err != nil {
					fail("send frame %d: %v", f, err)
					return
				}
				if (f+1)%opts.FlushEvery == 0 {
					if err := c.Flush(); err != nil {
						fail("flush at frame %d: %v", f, err)
						return
					}
				}
			}
			if err := c.Flush(); err != nil {
				fail("final flush: %v", err)
				return
			}
			if err := <-done; err != nil {
				fail("%v", err)
			}
		}(ti)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var acked int64
	for _, n := range perTenant {
		acked += n - int64(base)
	}
	out, _ := json.Marshal(map[string]any{
		"tenants":           tenants,
		"frames_per_tenant": frames,
		"batch":             opts.Batch,
		"decisions_acked":   acked,
		"decisions_per_sec": float64(acked) / elapsed.Seconds(),
		"per_tenant":        perTenant,
		"errors":            errs,
	})
	fmt.Println(string(out))
	if len(errs) > 0 {
		return fmt.Errorf("%d tenant streams failed (first: %s)", len(errs), errs[0])
	}
	return nil
}

// writeStreamJSON runs the study and writes the committed artifact
// (BENCH_PR10.json). The 5x bar and the golden replay are hard failures:
// the artifact must never certify a transport that is slow or wrong.
func writeStreamJSON(path string) error {
	rep, err := runStream(defaultStreamOpts())
	if err != nil {
		return err
	}
	if rep.GoldenMismatches > 0 {
		return fmt.Errorf("transport equivalence violated: %d golden mismatches", rep.GoldenMismatches)
	}
	if rep.SpeedupWireVsJSON < 5 {
		return fmt.Errorf("wire+coalescing speedup %.2fx below the 5x bar", rep.SpeedupWireVsJSON)
	}
	for _, g := range rep.GroupCommit {
		if g.ResumeVerified != rep.Tenants {
			return fmt.Errorf("group commit (window %.1fms): only %d/%d tenants resumed intact", g.WindowMs, g.ResumeVerified, rep.Tenants)
		}
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "moebench: stream %d tenants x %d frames x %d obs: wire %.1fx json (golden %d/0 mismatches), wrote %s\n",
		rep.Tenants, rep.FramesPerTenant, rep.Batch, rep.SpeedupWireVsJSON, rep.GoldenTenantsChecked, path)
	return nil
}
