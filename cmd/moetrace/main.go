// Command moetrace generates and inspects the dynamic-environment traces:
// the Fig 1 live-system log and the §6.4 hardware-availability schedules.
//
// Usage:
//
//	moetrace -kind live -samples 20      # live-system trace summary + samples
//	moetrace -kind hardware -freq high   # a hardware-change schedule
//	moetrace -programs                   # list benchmark programs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"moe/internal/trace"
	"moe/internal/workload"
)

func main() {
	kind := flag.String("kind", "live", "trace kind: live|hardware")
	freq := flag.String("freq", "low", "hardware frequency: low|high")
	seed := flag.Uint64("seed", 42, "generation seed")
	samples := flag.Int("samples", 20, "number of samples to print")
	duration := flag.Float64("duration", 600, "hardware trace duration (s)")
	programs := flag.Bool("programs", false, "list benchmark programs and exit")
	flag.Parse()

	if *programs {
		for _, p := range workload.Catalog() {
			fmt.Printf("%-10s %-8s regions=%d iterations=%d work=%.0f ws=%.1fGB memint=%.2f\n",
				p.Name, p.Suite, len(p.Regions), p.Iterations, p.TotalWork(), p.WorkingSetGB, p.AvgMemIntensity())
		}
		return
	}

	switch *kind {
	case "live":
		lt, err := trace.GenerateLive(trace.NewRNG(*seed), trace.DefaultLiveConfig())
		if err != nil {
			fmt.Fprintf(os.Stderr, "moetrace: %v\n", err)
			os.Exit(1)
		}
		points := lt.Points()
		fmt.Printf("live trace: %d samples over %.0f h\n", len(points), points[len(points)-1].Time/3600)
		step := len(points) / *samples
		if step < 1 {
			step = 1
		}
		fmt.Println("time(h)   threads  procs")
		for i := 0; i < len(points); i += step {
			p := points[i]
			bar := strings.Repeat("#", p.Threads*40/5824)
			fmt.Printf("%7.1f  %8d  %5d  %s\n", p.Time/3600, p.Threads, p.Procs, bar)
		}
	case "hardware":
		f := trace.LowFrequency
		if *freq == "high" {
			f = trace.HighFrequency
		}
		hw, err := trace.GenerateHardware(trace.NewRNG(*seed), 32, f, *duration)
		if err != nil {
			fmt.Fprintf(os.Stderr, "moetrace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("hardware schedule (%s frequency, 32-core machine):\n", f)
		for _, ev := range hw.Events() {
			if int(ev.Time) > int(*duration) {
				break
			}
			fmt.Printf("t=%6.0f  procs=%2d  %s\n", ev.Time, ev.Processors, strings.Repeat("#", ev.Processors))
		}
	default:
		fmt.Fprintf(os.Stderr, "moetrace: unknown kind %q\n", *kind)
		os.Exit(2)
	}
}
