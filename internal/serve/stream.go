package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"moe"
	"moe/internal/checkpoint"
	"moe/internal/replica"
	"moe/internal/telemetry"
	"moe/internal/wire"
)

// The streaming transport (DESIGN.md §16). One connection carries many
// decide frames; the session splits into two goroutine halves joined by an
// arrival-ordered slot queue:
//
//	decode loop ──► per-tenant coalescer ──► decide goroutine
//	     │                                        │ fills slot
//	     └────────── order queue ──► write loop ◄─┘
//
// The decode loop parses frames and runs the same admission envelope the
// HTTP path runs per request — drain gate, role gates, token bucket, slot
// pool, per-frame deadline, then tenant breaker/dedup under the tenant's
// decision slot — except refusals become per-frame error frames instead of
// HTTP statuses. Admitted frames enter the tenant's coalescer: frames that
// arrive while the tenant's decision slot is busy merge into one
// DecideBatch (byte-identical to serving them back to back — the PR 6
// batch contract), amortizing slot churn, journal commit, and replica
// flush across the group. Responses are written strictly in frame arrival
// order by a single writer that flushes once per quiet edge, so a
// coalesced group costs one syscall, not one per frame.

// streamMetrics is the serve_stream_* family.
type streamMetrics struct {
	sessions  *telemetry.Gauge
	framesIn  *telemetry.Counter
	framesOut *telemetry.Counter
	bytesIn   *telemetry.Counter
	bytesOut  *telemetry.Counter
	coalesced *telemetry.Histogram
	demotions *telemetry.Counter
	gcFsyncs  *telemetry.Counter
	gcSaved   *telemetry.Counter
}

func (m *streamMetrics) init(reg *telemetry.Registry) {
	m.sessions = reg.Gauge("serve_stream_sessions", "Open streaming sessions.")
	m.framesIn = reg.Counter("serve_stream_frames_total", "Stream frames by direction.", "dir", "in")
	m.framesOut = reg.Counter("serve_stream_frames_total", "Stream frames by direction.", "dir", "out")
	m.bytesIn = reg.Counter("serve_stream_bytes_total", "Stream bytes by direction.", "dir", "in")
	m.bytesOut = reg.Counter("serve_stream_bytes_total", "Stream bytes by direction.", "dir", "out")
	m.coalesced = reg.Histogram("serve_stream_coalesced_batch",
		"Decide frames merged into one DecideBatch by the per-tenant coalescer.",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128})
	m.demotions = reg.Counter("serve_stream_demotions_total",
		"Stream sessions demoted to the JSON ladder at handshake.")
	m.gcFsyncs = reg.Counter("serve_stream_group_commit_fsyncs_total",
		"Journal fsyncs issued by the group committer.")
	m.gcSaved = reg.Counter("serve_stream_group_commit_fsyncs_saved_total",
		"Journal fsyncs avoided by group commit (vs per-append fsync).")
}

// streamSlot is one frame's place in the response order. The decode loop
// enqueues it, exactly one producer fills buf and closes done, and the
// writer — the only reader of buf — writes it in arrival order, or gives
// up at the slot's deadline and never looks at buf again.
type streamSlot struct {
	seq       uint64
	start     time.Time
	deadline  time.Time
	holdsSlot bool // owns a server concurrency slot until written
	buf       []byte
	done      chan struct{}
}

// streamReq is an admitted decide frame on its way through a tenant
// coalescer; the decide goroutine fills decisions/threads for the commit.
type streamReq struct {
	reqID     string
	obs       []moe.Observation
	slot      *streamSlot
	decisions int64
	threads   []int
}

// session is one streaming connection.
type session struct {
	s       *Server
	conn    net.Conn
	bw      *bufio.Writer
	order   chan *streamSlot
	scratch []byte // writer-owned encode buffer for timeout error frames
	werr    error  // first write error; later writes are swallowed
}

// ServeStream serves the wire protocol on ln — the same session loop the
// hijacked POST /v1/stream runs, minus the HTTP upgrade. It returns when
// the listener closes (Close and Drain close registered listeners).
func (s *Server) ServeStream(ln net.Listener) error {
	s.sessMu.Lock()
	s.listeners = append(s.listeners, ln)
	closed := s.sessClosed
	s.sessMu.Unlock()
	if closed {
		ln.Close()
		return nil
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.stop:
				return nil
			default:
			}
			if s.draining.Load() {
				return nil
			}
			return err
		}
		go func() {
			br := bufio.NewReaderSize(conn, 64<<10)
			bw := bufio.NewWriterSize(conn, 64<<10)
			s.runSession(conn, br, bw)
		}()
	}
}

// handleStream upgrades POST /v1/stream to a raw full-duplex framed body
// and hands the connection to the shared session loop.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, &apiError{status: http.StatusMethodNotAllowed, code: "method-not-allowed", msg: "POST required"})
		return
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		s.writeError(w, &apiError{status: http.StatusInternalServerError, code: "stream-unsupported",
			msg: "connection cannot be hijacked for streaming"})
		return
	}
	conn, rw, err := hj.Hijack()
	if err != nil {
		s.writeError(w, &apiError{status: http.StatusInternalServerError, code: "stream-unsupported", msg: err.Error()})
		return
	}
	// Commit the upgrade before reading frames: clients wait for the 101
	// before streaming. The hijacked reader may already hold body bytes —
	// it stays the session's read side.
	io.WriteString(rw.Writer, "HTTP/1.1 101 Switching Protocols\r\nConnection: Upgrade\r\nUpgrade: moe-wire/1\r\n\r\n")
	if err := rw.Writer.Flush(); err != nil {
		conn.Close()
		return
	}
	s.runSession(conn, rw.Reader, rw.Writer)
}

// runSession is the shared session loop: handshake (or demotion), then the
// decode loop feeding the ordered writer until the peer hangs up, a frame
// breaks, or the server drains.
func (s *Server) runSession(conn net.Conn, br *bufio.Reader, bw *bufio.Writer) {
	defer conn.Close()
	if !s.trackSession(conn) {
		return
	}
	defer s.untrackSession(conn)
	s.stream.sessions.Add(1)
	defer s.stream.sessions.Add(-1)

	sess := &session{s: s, conn: conn, bw: bw, order: make(chan *streamSlot, s.cfg.MaxInflight+16)}

	// First bytes decide the protocol: a wire hello opens a framed
	// session; anything else (a '{' from a JSON client, typically) demotes
	// to the JSON ladder on the same connection — typed and counted, the
	// transport mirror of the regime dispatcher's full-ladder fallback.
	peek, _ := br.Peek(9)
	if len(peek) == 0 {
		return
	}
	if !wire.HelloPrefix(peek) {
		s.stream.demotions.Inc()
		s.serveDemoted(br, bw)
		return
	}
	rd := wire.NewReader(br)
	kind, payload, n, err := rd.Next()
	if err != nil || kind != wire.FrameHello {
		sess.writeNow(wire.AppendError(nil, 0, 0, "bad-frame", "malformed hello frame"))
		return
	}
	s.stream.framesIn.Inc()
	s.stream.bytesIn.Add(int64(n))
	if _, err := wire.ParseHello(payload); err != nil {
		code := "bad-frame"
		if errors.Is(err, wire.ErrVersion) {
			code = "unsupported-version"
		}
		sess.writeNow(wire.AppendError(nil, 0, 0, code, err.Error()))
		return
	}
	sess.writeNow(wire.AppendHello(nil))
	if sess.werr != nil {
		return
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		sess.writeLoop()
	}()
	sess.decodeLoop(rd)
	close(sess.order)
	wg.Wait()
	sess.bw.Flush()
}

// writeNow writes one frame immediately (handshake path; the writer
// goroutine is not running yet).
func (sess *session) writeNow(frame []byte) {
	if sess.werr != nil {
		return
	}
	if _, err := sess.bw.Write(frame); err != nil {
		sess.werr = err
		return
	}
	if err := sess.bw.Flush(); err != nil {
		sess.werr = err
		return
	}
	sess.s.stream.framesOut.Inc()
	sess.s.stream.bytesOut.Add(int64(len(frame)))
}

// decodeLoop reads frames until EOF, a framing defect, or a connection
// error. It is the only producer on sess.order.
func (sess *session) decodeLoop(rd *wire.Reader) {
	s := sess.s
	var req wire.Decide
	for {
		kind, payload, n, err := rd.Next()
		if err != nil {
			if errors.Is(err, wire.ErrBadFrame) {
				// After a framing defect the stream has no recoverable
				// frame boundary: report it and end the session.
				sess.enqueueError(0, time.Now(), &apiError{status: 400, code: "bad-frame", msg: err.Error()})
			}
			return
		}
		s.stream.framesIn.Inc()
		s.stream.bytesIn.Add(int64(n))
		switch kind {
		case wire.FrameDecide:
			sess.handleDecideFrame(payload, &req)
		case wire.FrameHello:
			// Redundant hello mid-stream: harmless, ignore.
		default:
			// Unknown kind with intact framing: refuse the frame, keep the
			// session (forward compatibility).
			sess.enqueueError(0, time.Now(), &apiError{status: 400, code: "bad-frame",
				msg: fmt.Sprintf("unexpected frame kind %#x", kind)})
		}
	}
}

// enqueueError creates, fills, and queues an error slot in one step
// (refusals that never reach a tenant).
func (sess *session) enqueueError(seq uint64, now time.Time, e *apiError) {
	sess.s.inflight.Add(1)
	slot := &streamSlot{seq: seq, start: now, deadline: now.Add(sess.s.cfg.DefaultDeadline), done: make(chan struct{})}
	fillAPIError(slot, e)
	sess.order <- slot
}

func fillAPIError(slot *streamSlot, e *apiError) {
	slot.buf = wire.AppendError(slot.buf[:0], slot.seq, e.retryAfter.Milliseconds(), e.code, e.msg)
	close(slot.done)
}

func fillResult(slot *streamSlot, decisions int64, threads []int, deduped bool) {
	r := wire.Result{Seq: slot.seq, Decisions: decisions, Deduped: deduped, Threads: threads}
	slot.buf = wire.AppendResult(slot.buf[:0], &r)
	close(slot.done)
}

// handleDecideFrame runs one decide frame through the admission envelope —
// the same gates, in the same order, as the HTTP path — and either fills
// its slot with a refusal or hands it to the tenant's coalescer.
func (sess *session) handleDecideFrame(payload []byte, req *wire.Decide) {
	s := sess.s
	now := time.Now()
	if err := wire.ParseDecide(payload, req); err != nil {
		// The frame passed its checksum, so this is a malformed payload
		// from a confused client, not line noise: refuse it, keep the
		// session.
		sess.enqueueError(req.Seq, now, &apiError{status: 400, code: "bad-request", msg: err.Error()})
		return
	}
	deadline := s.cfg.DefaultDeadline
	if req.DeadlineMs > 0 {
		deadline = time.Duration(req.DeadlineMs) * time.Millisecond
	}
	if deadline > s.cfg.MaxDeadline {
		deadline = s.cfg.MaxDeadline
	}
	// Joining the in-flight group before the drain gate gives streams the
	// same guarantee HTTP requests get: every admitted frame is flushed
	// (and journaled) before the drain's final snapshots.
	s.inflight.Add(1)
	slot := &streamSlot{seq: req.Seq, start: now, deadline: now.Add(deadline), done: make(chan struct{})}
	if e := sess.admitFrame(slot, req, now); e != nil {
		fillAPIError(slot, e)
	}
	sess.order <- slot
}

// admitFrame is the per-frame envelope: gates, bucket, slots, validation,
// tenant routing. nil means the frame reached its tenant's coalescer and
// something downstream now owns the slot fill.
func (sess *session) admitFrame(slot *streamSlot, req *wire.Decide, now time.Time) *apiError {
	s := sess.s
	if s.draining.Load() {
		return s.shed("draining", http.StatusServiceUnavailable, "server is draining", time.Second)
	}
	if !s.serving.Load() {
		return s.shed("standby", http.StatusServiceUnavailable, "standby; not serving until promoted", time.Second)
	}
	if s.primary != nil && s.primary.Deposed() {
		return s.shed("deposed", http.StatusServiceUnavailable, "deposed by promoted standby", time.Second)
	}
	if ok, retry := s.bucket.take(now); !ok {
		return s.shed("rate", http.StatusTooManyRequests, "request rate over limit", retry)
	}
	if !s.slots.tryAcquire() {
		return s.shed("capacity", http.StatusServiceUnavailable, "all decision slots busy", 100*time.Millisecond)
	}
	slot.holdsSlot = true
	s.metrics.inflight.Set(float64(s.slots.inUse()))
	if len(req.Obs) == 0 {
		return &apiError{status: 400, code: "bad-request", msg: "no observations"}
	}
	if len(req.Obs) > s.cfg.MaxBatch {
		return &apiError{status: 400, code: "bad-request",
			msg: fmt.Sprintf("batch of %d observations over the %d cap", len(req.Obs), s.cfg.MaxBatch)}
	}
	if len(req.RequestID) > maxRequestID {
		return &apiError{status: 400, code: "bad-request",
			msg: fmt.Sprintf("request_id of %d bytes over the %d cap", len(req.RequestID), maxRequestID)}
	}
	t, aerr := s.tenant(string(req.Tenant))
	if aerr != nil {
		return aerr
	}
	s.enqueueStream(t, &streamReq{
		reqID: string(req.RequestID),
		// req.Obs aliases the frame read buffer; the coalescer outlives it.
		obs:  append([]moe.Observation(nil), req.Obs...),
		slot: slot,
	})
	return nil
}

// writeLoop is the session's single writer: slots leave in arrival order,
// each waiting out at most its own deadline. The buffered writer is
// flushed on quiet edges — when the queue momentarily empties — so a
// coalesced group's responses share one flush.
func (sess *session) writeLoop() {
	s := sess.s
	for slot := range sess.order {
		select {
		case <-slot.done:
		default:
			wait := time.Until(slot.deadline)
			if wait < 0 {
				wait = 0
			}
			tm := time.NewTimer(wait)
			select {
			case <-slot.done:
				tm.Stop()
			case <-tm.C:
				// Deadline: the decide may still land in the slot later —
				// harmless, this writer never reads it again. Mirror of the
				// HTTP 504-and-abandon path.
				e := s.deadline()
				sess.scratch = wire.AppendError(sess.scratch[:0], slot.seq, 0, e.code, e.msg)
				sess.write(sess.scratch)
				sess.finishSlot(slot)
				continue
			}
		}
		sess.write(slot.buf)
		sess.finishSlot(slot)
	}
}

// write appends one frame to the buffered writer, flushing on quiet edges.
// After the first connection error, frames are dropped silently: slots
// still drain (their resources must be released) but the peer is gone.
func (sess *session) write(frame []byte) {
	if sess.werr == nil {
		if _, err := sess.bw.Write(frame); err != nil {
			sess.werr = err
		} else {
			sess.s.stream.framesOut.Inc()
			sess.s.stream.bytesOut.Add(int64(len(frame)))
		}
	}
	if sess.werr == nil && len(sess.order) == 0 {
		if err := sess.bw.Flush(); err != nil {
			sess.werr = err
		}
	}
}

// finishSlot releases what the slot holds: the server concurrency slot and
// its in-flight group membership.
func (sess *session) finishSlot(slot *streamSlot) {
	s := sess.s
	if slot.holdsSlot {
		s.slots.release()
		s.metrics.inflight.Set(float64(s.slots.inUse()))
	}
	s.metrics.requestSeconds.Observe(time.Since(slot.start).Seconds())
	s.inflight.Done()
}

// enqueueStream adds an admitted frame to the tenant's coalescer, starting
// its flusher if idle. The flusher drains groups until the pending queue
// is empty; frames that arrive while a group is being decided merge into
// the next group.
func (s *Server) enqueueStream(t *tenant, r *streamReq) {
	t.coalMu.Lock()
	t.coalPending = append(t.coalPending, r)
	spawn := !t.coalActive
	if spawn {
		t.coalActive = true
	}
	t.coalMu.Unlock()
	if spawn {
		go s.streamFlusher(t)
	}
}

func (s *Server) streamFlusher(t *tenant) {
	for {
		t.coalMu.Lock()
		group := t.coalPending
		t.coalPending = nil
		if len(group) == 0 {
			t.coalActive = false
			t.coalMu.Unlock()
			return
		}
		t.coalMu.Unlock()
		if s.cfg.DisableStreamCoalesce {
			for _, r := range group {
				s.streamServeGroup(t, []*streamReq{r})
			}
		} else {
			s.streamServeGroup(t, group)
		}
	}
}

// streamServeGroup serves one coalesced group on tenant t: breaker gate,
// core acquisition, dedup pass, then one merged DecideBatch whose commit —
// dedup markers, group-commit journal sync, replica flush — is shared by
// every member. The batch itself runs in its own goroutine so a wedged
// tenant wedges at most this group: the flusher times out at the group's
// latest deadline and moves on (the writer has already answered the
// members with deadline errors), and the watchdog owns the stuck
// generation — exactly the HTTP path's abandonment semantics.
func (s *Server) streamServeGroup(t *tenant, group []*streamReq) {
	now := time.Now()
	t.mu.Lock()
	ok, retry := t.brk.admit(now)
	t.setStateLocked()
	t.mu.Unlock()
	if !ok {
		for range group {
			// Count each member's refusal, as the HTTP path would.
			s.metrics.shed("quarantined").Inc()
		}
		e := &apiError{status: http.StatusServiceUnavailable, code: "quarantined",
			msg: "tenant quarantined after fault", retryAfter: s.jit.spread(retry)}
		failGroup(group, e)
		return
	}
	latest := group[0].slot.deadline
	for _, r := range group[1:] {
		if r.slot.deadline.After(latest) {
			latest = r.slot.deadline
		}
	}
	ctx, cancel := context.WithDeadline(context.Background(), latest)
	defer cancel()

	var core *tenantCore
	for attempt := 0; ; attempt++ {
		c, aerr := s.ensureCore(ctx, t)
		if aerr != nil {
			failGroup(group, aerr)
			return
		}
		select {
		case c.sem <- struct{}{}:
		case <-ctx.Done():
			for _, r := range group {
				fillAPIError(r.slot, s.deadline())
			}
			return
		}
		t.mu.Lock()
		stale := t.core != c
		if !stale {
			t.busySince = time.Now()
		}
		t.mu.Unlock()
		if !stale {
			core = c
			break
		}
		<-c.sem
		if attempt < 2 {
			continue
		}
		failGroup(group, s.shed("recycled", http.StatusServiceUnavailable, "tenant recycling", s.cfg.BreakerBackoff))
		return
	}

	// Dedup pass under the tenant lock, holding the decision slot (the
	// same serialization the HTTP path gets from core.sem): window hits
	// answer immediately; in-group duplicates of an executing ID defer to
	// the freshly committed window after the batch.
	exec := make([]*streamReq, 0, len(group))
	var late []*streamReq
	var seen map[string]bool
	dedupOn := s.cfg.DedupWindow > 0
	t.mu.Lock()
	for _, r := range group {
		if dedupOn && r.reqID != "" {
			if hit, ok := t.dedup.lookup(r.reqID); ok {
				fillResult(r.slot, int64(hit.Decisions), hit.Threads, true)
				s.metrics.dedupHits.Inc()
				continue
			}
			if seen[r.reqID] {
				late = append(late, r)
				continue
			}
			if seen == nil {
				seen = make(map[string]bool)
			}
			seen[r.reqID] = true
		}
		exec = append(exec, r)
	}
	if len(exec) == 0 {
		t.busySince = time.Time{}
		t.mu.Unlock()
		<-core.sem
		return
	}
	t.mu.Unlock()
	s.stream.coalesced.Observe(float64(len(exec)))

	total := 0
	for _, r := range exec {
		total += len(r.obs)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		merged := make([]moe.Observation, 0, total)
		for _, r := range exec {
			merged = append(merged, r.obs...)
		}
		res := &decideResult{}
		func() {
			defer func() {
				if p := recover(); p != nil {
					res.panicked = fmt.Sprint(p)
					res.threads = nil
				}
			}()
			res.threads = core.rt.DecideBatch(merged)
			res.decisions = int64(core.rt.Decisions())
		}()
		s.commitStreamGroup(t, core, exec, res)
		s.finishDecide(t, core, res)
		s.fillStreamGroup(t, exec, late, res)
		<-core.sem
	}()
	wait := time.Until(latest)
	if wait < 0 {
		wait = 0
	}
	tm := time.NewTimer(wait + 50*time.Millisecond)
	select {
	case <-done:
		tm.Stop()
	case <-tm.C:
		// The group is past every member's deadline (the writer has told
		// them so). Leave the decide goroutine to the watchdog and serve
		// the next group — on this generation if it recovers, on the
		// rebuilt one otherwise.
	}
}

func failGroup(group []*streamReq, e *apiError) {
	for _, r := range group {
		fillAPIError(r.slot, e)
	}
}

// commitStreamGroup is commitBatch for a coalesced group: per-member dedup
// markers journaled behind the merged batch's entries, one group-commit
// sync, one replica flush — all before any member's ack can be written.
// Per-member decision counts and thread sub-slices fall out of prefix sums
// over the merged result (DecideBatch answers one decision per observation,
// in order).
func (s *Server) commitStreamGroup(t *tenant, core *tenantCore, exec []*streamReq, res *decideResult) {
	if res.panicked != "" {
		return
	}
	t.mu.Lock()
	current := t.core == core
	t.mu.Unlock()
	if !current {
		return
	}
	cerr := core.rt.CheckpointErr()
	off := 0
	count := res.decisions - int64(len(res.threads))
	for _, r := range exec {
		sub := res.threads[off : off+len(r.obs)]
		off += len(r.obs)
		count += int64(len(r.obs))
		r.decisions = count
		r.threads = sub
		if r.reqID == "" {
			continue
		}
		entry := checkpoint.DedupEntry{ID: r.reqID, Decisions: int(count), Threads: sub}
		if core.store != nil && cerr == nil {
			if err := core.store.AppendDedup(entry); err != nil {
				s.logf("serve: tenant %s: journal dedup marker: %v", t.id, err)
				cerr = err
			}
		}
		t.mu.Lock()
		if t.core == core {
			t.dedup.add(entry)
		}
		t.mu.Unlock()
	}
	// The group commit point: everything this group journaled becomes
	// durable in one shared fsync before any ack leaves.
	if core.store != nil && cerr == nil {
		if err := core.store.Sync(); err != nil {
			s.logf("serve: tenant %s: group commit sync: %v", t.id, err)
			cerr = err
		}
	}
	if s.primary != nil {
		if err := s.primary.Flush(t.id); err != nil {
			if errors.Is(err, replica.ErrDeposed) {
				res.deposed = true
			}
			s.logf("serve: tenant %s: replication flush: %v", t.id, err)
		}
	}
	if core.store != nil && cerr != nil && checkpoint.IsDiskError(cerr) {
		t.mu.Lock()
		latch := t.core == core && t.degraded == ""
		if latch {
			t.setDegradedLocked(cerr.Error())
		}
		t.mu.Unlock()
		if latch {
			s.logf("serve: tenant %s: journal failed mid-batch, serving journal-less: %v", t.id, cerr)
		}
	}
}

// fillStreamGroup answers every member after the commit: results for the
// executed members, window answers for in-group duplicates, one shared
// fault for all of them when the batch panicked or the ack was fenced.
func (s *Server) fillStreamGroup(t *tenant, exec, late []*streamReq, res *decideResult) {
	if res.panicked != "" {
		e := &apiError{status: http.StatusInternalServerError, code: "tenant-fault",
			msg: "tenant decision faulted; tenant quarantined", retryAfter: s.jit.spread(s.cfg.BreakerBackoff)}
		for _, r := range exec {
			fillAPIError(r.slot, e)
		}
		for _, r := range late {
			fillAPIError(r.slot, e)
		}
		return
	}
	if res.deposed {
		for _, r := range exec {
			fillAPIError(r.slot, s.shed("deposed", http.StatusServiceUnavailable,
				"deposed by promoted standby; decision not acknowledged", time.Second))
		}
		for _, r := range late {
			fillAPIError(r.slot, s.shed("deposed", http.StatusServiceUnavailable,
				"deposed by promoted standby; decision not acknowledged", time.Second))
		}
		return
	}
	for _, r := range exec {
		fillResult(r.slot, r.decisions, r.threads, false)
	}
	for _, r := range late {
		t.mu.Lock()
		hit, ok := t.dedup.lookup(r.reqID)
		t.mu.Unlock()
		if ok {
			fillResult(r.slot, int64(hit.Decisions), hit.Threads, true)
			s.metrics.dedupHits.Inc()
		} else {
			// The twin it deferred to committed, but the window has already
			// evicted it (pathologically small window): refuse rather than
			// decide twice under one ID.
			fillAPIError(r.slot, &apiError{status: http.StatusConflict, code: "dedup-evicted",
				msg: "duplicate request id raced its twin out of the dedup window"})
		}
	}
}

// serveDemoted serves the JSON ladder on a stream connection that never
// spoke wire: each JSON value on the stream is a decide request run
// through the same envelope, answered as one JSON line, flushed as it
// goes. EOF ends the session.
func (s *Server) serveDemoted(br *bufio.Reader, bw *bufio.Writer) {
	dec := json.NewDecoder(io.LimitReader(br, 64<<20))
	enc := json.NewEncoder(bw)
	for {
		var req decideRequest
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, io.EOF) {
				enc.Encode(errorResponse{Error: "malformed JSON line: " + err.Error(), Code: "bad-request"})
			}
			break
		}
		resp, aerr := s.demotedServeOne(&req)
		if aerr != nil {
			enc.Encode(errorResponse{Error: aerr.msg, Code: aerr.code, RetryAfterMs: aerr.retryAfter.Milliseconds()})
		} else {
			enc.Encode(resp)
		}
		if bw.Flush() != nil {
			break
		}
	}
	bw.Flush()
}

// demotedServeOne is the admission envelope + serveOne for one demoted
// JSON request (the stream twin of handleDecide's per-request section).
func (s *Server) demotedServeOne(req *decideRequest) (*decideResponse, *apiError) {
	s.inflight.Add(1)
	defer s.inflight.Done()
	if s.draining.Load() {
		return nil, s.shed("draining", http.StatusServiceUnavailable, "server is draining", time.Second)
	}
	if !s.serving.Load() {
		return nil, s.shed("standby", http.StatusServiceUnavailable, "standby; not serving until promoted", time.Second)
	}
	if s.primary != nil && s.primary.Deposed() {
		return nil, s.shed("deposed", http.StatusServiceUnavailable, "deposed by promoted standby", time.Second)
	}
	if ok, retry := s.bucket.take(time.Now()); !ok {
		return nil, s.shed("rate", http.StatusTooManyRequests, "request rate over limit", retry)
	}
	if !s.slots.tryAcquire() {
		return nil, s.shed("capacity", http.StatusServiceUnavailable, "all decision slots busy", 100*time.Millisecond)
	}
	defer func() {
		s.slots.release()
		s.metrics.inflight.Set(float64(s.slots.inUse()))
	}()
	s.metrics.inflight.Set(float64(s.slots.inUse()))
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DefaultDeadline)
	defer cancel()
	return s.serveOne(ctx, req)
}

// Session registry: Drain closes sessions after the final snapshots (their
// in-flight frames were already waited out through the inflight group);
// Close closes listeners so accept loops end.
func (s *Server) trackSession(conn net.Conn) bool {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	if s.sessClosed || s.draining.Load() {
		return false
	}
	if s.sessions == nil {
		s.sessions = make(map[net.Conn]struct{})
	}
	s.sessions[conn] = struct{}{}
	return true
}

func (s *Server) untrackSession(conn net.Conn) {
	s.sessMu.Lock()
	delete(s.sessions, conn)
	s.sessMu.Unlock()
}

func (s *Server) closeStreamSessions() {
	s.sessMu.Lock()
	s.sessClosed = true
	conns := make([]net.Conn, 0, len(s.sessions))
	for c := range s.sessions {
		conns = append(conns, c)
	}
	s.sessMu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

func (s *Server) closeStreamListeners() {
	s.sessMu.Lock()
	lns := s.listeners
	s.listeners = nil
	s.sessMu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
}
