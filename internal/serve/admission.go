package serve

import (
	"math"
	"sync"
	"time"
)

// Admission control sits in front of every tenant. Two independent gates,
// checked in order after the drain gate:
//
//   - tokenBucket sheds sustained overload (429 + Retry-After): requests
//     refused here never touch a tenant, so a client storm cannot starve
//     the runtimes of CPU.
//   - slots bounds concurrent decision requests (503): the pool is sized to
//     what the host can actually serve at once, and the excess is shed
//     instead of queued, keeping deadlines meaningful under load.

// tokenBucket is a standard refill-on-demand token bucket. Rate <= 0
// disables it (every take succeeds).
//
// The retry hint must be an upper bound under concurrency: when k callers
// are denied in the same refill window, telling each "one token's worth"
// sends all k back at the same instant to fight over one token — k-1 of
// them shed again, ad infinitum. pending counts denials not yet satisfied,
// and each new denial is hinted far enough out that every caller before it
// can be granted first.
type tokenBucket struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64
	tokens  float64
	pending float64 // denied callers presumed waiting for a token
	last    time.Time
}

func newTokenBucket(rate float64, burst int) *tokenBucket {
	if rate <= 0 {
		return &tokenBucket{}
	}
	b := float64(burst)
	if b < 1 {
		b = math.Ceil(rate)
		if b < 1 {
			b = 1
		}
	}
	return &tokenBucket{rate: rate, burst: b, tokens: b}
}

// take consumes one token if available. When it cannot, retryAfter is how
// long until one will have accrued — the Retry-After hint.
func (b *tokenBucket) take(now time.Time) (ok bool, retryAfter time.Duration) {
	if b.rate <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
			// A full bucket means every hinted-away caller could have been
			// served already; stop padding hints for ghosts that never
			// returned.
			b.pending = 0
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		if b.pending > 0 {
			b.pending--
		}
		return true, 0
	}
	retry := time.Duration((1 - b.tokens + b.pending) / b.rate * float64(time.Second))
	b.pending++
	return false, retry
}

// slots is the concurrency limiter: a channel-as-semaphore whose capacity
// is the inflight bound. tryAcquire never blocks — admission sheds, it
// does not queue.
type slots struct {
	ch chan struct{}
}

func newSlots(n int) *slots {
	return &slots{ch: make(chan struct{}, n)}
}

func (s *slots) tryAcquire() bool {
	select {
	case s.ch <- struct{}{}:
		return true
	default:
		return false
	}
}

func (s *slots) release() { <-s.ch }

func (s *slots) inUse() int { return len(s.ch) }
