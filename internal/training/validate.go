package training

import (
	"fmt"

	"moe/internal/features"
	"moe/internal/regress"
)

// PredictorKind selects which of an expert's two models to validate.
type PredictorKind int

// The two predictors of §4.1.
const (
	ThreadPredictor PredictorKind = iota
	EnvPredictor
)

// String implements fmt.Stringer.
func (k PredictorKind) String() string {
	if k == ThreadPredictor {
		return "thread"
	}
	return "environment"
}

// CrossValidate runs leave-one-program-out cross validation (§5.2.3: the
// program being predicted is excluded from the training set) on the chosen
// predictor over the dataset.
func CrossValidate(ds *DataSet, kind PredictorKind) (regress.Metrics, error) {
	if len(ds.Samples) == 0 {
		return regress.Metrics{}, fmt.Errorf("training: cross-validation on empty dataset")
	}
	var samples []regress.Sample
	if kind == ThreadPredictor {
		samples = ds.threadSamples()
	} else {
		samples = ds.envNormSamples()
	}
	key := func(i int) string { return ds.Samples[i].Program }
	return regress.LeaveOneOut(samples, key, regress.Options{Ridge: 1e-6})
}

// CrossValidateThreadMasked is CrossValidate for the thread predictor with
// a feature mask (true = keep), backing the feature-set ablation.
func CrossValidateThreadMasked(ds *DataSet, mask []bool) (regress.Metrics, error) {
	if len(ds.Samples) == 0 {
		return regress.Metrics{}, fmt.Errorf("training: cross-validation on empty dataset")
	}
	key := func(i int) string { return ds.Samples[i].Program }
	return regress.LeaveOneOut(ds.threadSamples(), key, regress.Options{Ridge: 1e-6, Mask: mask})
}

// ImpactAccuracyFn returns a features.AccuracyFn for the dataset: it
// retrains the chosen predictor without one feature and reports held-out
// accuracy, implementing the paper's feature-impact metric π (§5.2.2 — "the
// drop in prediction accuracy of the model when this feature alone was
// removed from the feature-set").
func ImpactAccuracyFn(ds *DataSet, kind PredictorKind) features.AccuracyFn {
	var samples []regress.Sample
	if kind == ThreadPredictor {
		samples = ds.threadSamples()
	} else {
		samples = ds.envNormSamples()
	}
	key := func(i int) string { return ds.Samples[i].Program }
	return func(without int) (float64, error) {
		opts := regress.Options{Ridge: 1e-6}
		if without >= 0 {
			mask := make([]bool, features.Dim)
			for i := range mask {
				mask[i] = i != without
			}
			opts.Mask = mask
		}
		m, err := regress.LeaveOneOut(samples, key, opts)
		if err != nil {
			return 0, err
		}
		return m.Accuracy, nil
	}
}

// FeatureImpacts computes π for every feature of the chosen predictor over
// the dataset (one pie chart of Fig 6).
func FeatureImpacts(ds *DataSet, kind PredictorKind) ([]features.Impact, error) {
	return features.ComputeImpacts(ImpactAccuracyFn(ds, kind))
}
