// Package regress implements the ordinary-least-squares linear regression
// the paper uses to build its thread and environment predictors (§5.2.3):
// "a linear regression technique employing standard least squares", fit with
// leave-one-out cross validation. Models are 10-dimensional linear functions
// plus a regression constant β, exactly the shape of Table 1.
//
// The solver works on the normal equations with Gaussian elimination and
// partial pivoting; a small ridge term is retried automatically when the
// system is singular (which happens when training data does not span the
// feature space, e.g. a fixed processor count).
package regress

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoData is returned when a fit is requested with no samples.
var ErrNoData = errors.New("regress: no training samples")

// ErrSingular is returned when the normal equations are singular even after
// ridge regularization.
var ErrSingular = errors.New("regress: singular system")

// MaxCoefficient bounds the magnitude a parsed or loaded coefficient may
// have. Table 1 coefficients are O(1); anything beyond this bound is a
// corrupt table, not a model, and is rejected at the parse/load boundary so
// a finite feature vector can never be mapped to an astronomical or
// non-finite prediction.
const MaxCoefficient = 1e6

// Sample is one training observation: a feature vector and the value the
// model should predict for it (best thread count for w models, next
// environment norm for m models).
type Sample struct {
	X []float64
	Y float64
}

// Model is a fitted linear model y = w·x + β.
type Model struct {
	Weights []float64 // one per feature
	Bias    float64   // β, the regression constant of Table 1
}

// Predict evaluates the model at x. The length of x must match the number
// of weights. A non-finite result — possible only with non-finite inputs or
// a model that bypassed the coefficient boundary checks — is rejected with
// an error rather than handed to the caller as NaN.
func (m *Model) Predict(x []float64) (float64, error) {
	if len(x) != len(m.Weights) {
		return 0, fmt.Errorf("regress: predict with %d features, model has %d", len(x), len(m.Weights))
	}
	y := m.rawPredict(x)
	if math.IsNaN(y) || math.IsInf(y, 0) {
		return 0, fmt.Errorf("regress: non-finite prediction (non-finite inputs or corrupt coefficients)")
	}
	return y, nil
}

// MustPredict is Predict for callers that construct x with the model's own
// dimensionality; it panics on mismatch, which indicates a programming
// error rather than bad data. Unlike Predict it lets a non-finite result
// through: the decision path treats NaN/Inf predictions as an expert-health
// signal (quarantine) and must observe them rather than crash on them.
func (m *Model) MustPredict(x []float64) float64 {
	if len(x) != len(m.Weights) {
		panicPredictDim(len(x), len(m.Weights))
	}
	return m.rawPredict(x)
}

// panicPredictDim keeps the cold panic construction out of MustPredict so
// the hot wrapper stays within the inlining budget.
func panicPredictDim(got, want int) {
	panic(fmt.Errorf("regress: predict with %d features, model has %d", got, want))
}

func (m *Model) rawPredict(x []float64) float64 {
	x = x[:len(m.Weights)] // hoist the bound proof out of the loop
	y := m.Bias
	for i, w := range m.Weights {
		y += w * x[i]
	}
	return y
}

// Validate rejects models whose coefficients are non-finite. It is the
// check behind every construction boundary (parsing, JSON loading, expert
// validation): a model that passes cannot turn finite features into NaN.
func (m *Model) Validate() error {
	if m == nil {
		return errors.New("regress: nil model")
	}
	for i, w := range m.Weights {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("regress: weight %d (%v) is not finite", i, w)
		}
	}
	if math.IsNaN(m.Bias) || math.IsInf(m.Bias, 0) {
		return fmt.Errorf("regress: bias (%v) is not finite", m.Bias)
	}
	return nil
}

// Dim returns the number of features the model expects.
func (m *Model) Dim() int { return len(m.Weights) }

// Coefficients returns the weights with the bias appended, matching the
// Table 1 layout (w1..w10, β).
func (m *Model) Coefficients() []float64 {
	out := make([]float64, len(m.Weights)+1)
	copy(out, m.Weights)
	out[len(m.Weights)] = m.Bias
	return out
}

// FromCoefficients builds a model from a Table-1-style coefficient slice
// (weights followed by bias). Non-finite or absurd-magnitude values are
// rejected: this is the boundary every externally supplied model crosses
// (parsed tables, JSON expert sets), and letting a NaN weight through here
// would poison every downstream prediction.
func FromCoefficients(coeffs []float64) (*Model, error) {
	if len(coeffs) < 2 {
		return nil, fmt.Errorf("regress: need at least one weight plus bias, got %d values", len(coeffs))
	}
	for i, v := range coeffs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("regress: coefficient %d (%v) is not finite", i, v)
		}
		if math.Abs(v) > MaxCoefficient {
			return nil, fmt.Errorf("regress: coefficient %d (%v) exceeds magnitude bound %g", i, v, MaxCoefficient)
		}
	}
	w := make([]float64, len(coeffs)-1)
	copy(w, coeffs[:len(coeffs)-1])
	return &Model{Weights: w, Bias: coeffs[len(coeffs)-1]}, nil
}

// Options configures a fit.
type Options struct {
	// Ridge is the L2 regularization strength added to the normal
	// equations' diagonal (bias excluded). Zero requests pure OLS with an
	// automatic tiny-ridge retry if the system is singular.
	Ridge float64
	// Mask, when non-nil, marks features to exclude from the fit (true =
	// keep). Excluded features get weight 0 in the returned model, so the
	// model still accepts full-width inputs. This implements the
	// leave-one-feature-out ablation behind the paper's feature-impact
	// metric (Fig 6).
	Mask []bool
}

// Fit computes the least-squares model for the samples. All samples must
// share the same dimensionality.
func Fit(samples []Sample, opts Options) (*Model, error) {
	if len(samples) == 0 {
		return nil, ErrNoData
	}
	dim := len(samples[0].X)
	if dim == 0 {
		return nil, errors.New("regress: zero-dimensional samples")
	}
	for i, s := range samples {
		if len(s.X) != dim {
			return nil, fmt.Errorf("regress: sample %d has %d features, want %d", i, len(s.X), dim)
		}
	}
	if opts.Mask != nil && len(opts.Mask) != dim {
		return nil, fmt.Errorf("regress: mask length %d, want %d", len(opts.Mask), dim)
	}

	// Active feature indices after masking.
	active := make([]int, 0, dim)
	for i := 0; i < dim; i++ {
		if opts.Mask == nil || opts.Mask[i] {
			active = append(active, i)
		}
	}
	n := len(active) + 1 // +1 for the bias column

	// Normal equations A·θ = b with A = XᵀX, b = Xᵀy over the augmented
	// design matrix (active features + constant 1 column).
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
	}
	b := make([]float64, n)
	row := make([]float64, n)
	for _, s := range samples {
		for j, fi := range active {
			row[j] = s.X[fi]
		}
		row[n-1] = 1
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				a[i][j] += row[i] * row[j]
			}
			b[i] += row[i] * s.Y
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			a[i][j] = a[j][i]
		}
	}

	ridge := opts.Ridge
	theta, err := solveWithRidge(a, b, ridge, n)
	if err != nil {
		return nil, err
	}

	weights := make([]float64, dim)
	for j, fi := range active {
		weights[fi] = theta[j]
	}
	return &Model{Weights: weights, Bias: theta[n-1]}, nil
}

// solveWithRidge solves (A + λI)θ = b, retrying with growing λ when the
// system is singular. The bias row (last) is never regularized.
func solveWithRidge(a [][]float64, b []float64, ridge float64, n int) ([]float64, error) {
	for attempt := 0; attempt < 4; attempt++ {
		m := make([][]float64, n)
		for i := range m {
			m[i] = append([]float64(nil), a[i]...)
			if i < n-1 {
				m[i][i] += ridge
			}
		}
		theta, err := solve(m, append([]float64(nil), b...))
		if err == nil {
			return theta, nil
		}
		if ridge == 0 {
			ridge = 1e-8
		} else {
			ridge *= 1e3
		}
	}
	return nil, ErrSingular
}

// solve performs in-place Gaussian elimination with partial pivoting on the
// augmented system m·x = b.
func solve(m [][]float64, b []float64) ([]float64, error) {
	n := len(m)
	for col := 0; col < n; col++ {
		// Partial pivot: largest absolute value in this column.
		pivot := col
		best := math.Abs(m[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m[r][col]); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			m[col], m[pivot] = m[pivot], m[col]
			b[col], b[pivot] = b[pivot], b[col]
		}
		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m[r][c] -= f * m[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= m[r][c] * x[c]
		}
		x[r] = sum / m[r][r]
	}
	return x, nil
}
