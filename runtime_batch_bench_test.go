package moe_test

import (
	"sync/atomic"
	"testing"

	"moe"
)

// benchBatch builds a steady observation slice whose timestamps the
// benchmark loop rewrites in place: reusing a wrapped stream (the i%256
// trick of BenchmarkDecide) would regress the clock every cycle, and a
// repaired timestamp demotes the batch fast path by design.
func benchBatch(size int) []moe.Observation {
	obs := make([]moe.Observation, size)
	for j := range obs {
		obs[j] = steadyObservation(j)
	}
	return obs
}

// retime advances the batch clock monotonically, allocation-free.
func retime(obs []moe.Observation, step *int) {
	for j := range obs {
		obs[j].Time = 0.25 * float64(*step)
		*step++
	}
}

// BenchmarkDecideBatchSteady is the CI allocation bar: one op is one
// 64-observation batch on the healthy steady-state path, and after the
// warm-up batch (scratch laziness, pending predictions) it must run at
// 0 allocs/op. bench-smoke greps this benchmark's -benchmem output.
func BenchmarkDecideBatchSteady(b *testing.B) {
	rt := benchRuntime(b)
	obs := benchBatch(64)
	step := 0
	var dst []int
	retime(obs, &step)
	dst = rt.DecideBatchInto(dst[:0], obs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		retime(obs, &step)
		dst = rt.DecideBatchInto(dst[:0], obs)
	}
	_ = dst
}

// BenchmarkDecideBatch measures per-decision cost at several batch sizes;
// size 1 is the degenerate batch (full dispatcher overhead, no
// amortization) and sizes 8/64 show the amortization curve against
// BenchmarkDecide in telemetry_test.go.
func BenchmarkDecideBatch(b *testing.B) {
	for _, size := range []int{1, 8, 64} {
		b.Run(sizeName(size), func(b *testing.B) {
			rt := benchRuntime(b)
			obs := benchBatch(size)
			step := 0
			var dst []int
			retime(obs, &step)
			dst = rt.DecideBatchInto(dst[:0], obs)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				retime(obs, &step)
				dst = rt.DecideBatchInto(dst[:0], obs)
			}
			_ = dst
		})
	}
}

func sizeName(size int) string {
	switch size {
	case 1:
		return "size-1"
	case 8:
		return "size-8"
	default:
		return "size-64"
	}
}

// BenchmarkDecideBatchParallel drives a sharded runtime from parallel
// goroutines, each pinned to its own shard key with its own stream and
// destination buffer. On a multi-core host throughput scales with shard
// count because shards share no locks; b.SetBytes-style aggregate
// decisions/sec comes from cmd/moebench -experiment throughput.
func BenchmarkDecideBatchParallel(b *testing.B) {
	const shards, size = 4, 64
	srt, err := moe.NewShardedRuntime(shards, ckptMaxThreads, func(int) (moe.Policy, error) {
		return moe.NewMixture(moe.CanonicalExperts())
	})
	if err != nil {
		b.Fatal(err)
	}
	var nextKey atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		key := nextKey.Add(1) - 1
		obs := benchBatch(size)
		step := 0
		var dst []int
		for pb.Next() {
			retime(obs, &step)
			dst = srt.DecideBatchInto(key, dst[:0], obs)
		}
		_ = dst
	})
}
