package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
)

// exposition: the registry renders itself in the Prometheus text format
// (for scrapers) and as a JSON document (for humans and scripts). Both
// walks are deterministic — families and label sets in sorted order — so
// two scrapes of an idle registry are byte-identical.

// familySnapshot is a point-in-time copy of one family: name/help/kind plus
// every label set and its metric, sorted. The metric values themselves are
// atomics, so reading them after the snapshot needs no lock.
type familySnapshot struct {
	name   string
	help   string
	kind   metricKind
	series []seriesSnapshot
}

// seriesSnapshot is one labeled metric instance within a family.
type seriesSnapshot struct {
	labels string
	metric any
}

// sortedFamilies copies the family list — including each family's
// label→metric pairs — while holding the lock. Registry.metric inserts into
// family.metrics under the same lock, so exposition must never touch those
// maps after releasing it: a scrape racing a lazily-registered metric would
// otherwise be a concurrent map read and write.
func (r *Registry) sortedFamilies() []familySnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]familySnapshot, 0, len(r.families))
	for _, f := range r.families {
		fs := familySnapshot{name: f.name, help: f.help, kind: f.kind,
			series: make([]seriesSnapshot, 0, len(f.metrics))}
		for ls, m := range f.metrics {
			fs.series = append(fs.series, seriesSnapshot{labels: ls, metric: m})
		}
		sort.Slice(fs.series, func(i, j int) bool { return fs.series[i].labels < fs.series[j].labels })
		out = append(out, fs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// formatFloat renders a float the way Prometheus expects.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4). Histograms expose cumulative
// *_bucket{le=...} series plus *_sum and *_count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		kind := "counter"
		switch f.kind {
		case kindGauge:
			kind = "gauge"
		case kindHistogram:
			kind = "histogram"
		}
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, kind); err != nil {
			return err
		}
		for _, s := range f.series {
			switch m := s.metric.(type) {
			case *Counter:
				if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, m.Value()); err != nil {
					return err
				}
			case *Gauge:
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatFloat(m.Value())); err != nil {
					return err
				}
			case *Histogram:
				if err := writePrometheusHistogram(w, f.name, s.labels, m); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// writePrometheusHistogram renders one histogram series set. ls is the
// metric's own label string; the le label is merged into it.
func writePrometheusHistogram(w io.Writer, name, ls string, h *Histogram) error {
	bounds, cum := h.snapshotBuckets()
	withLE := func(le string) string {
		if ls == "" {
			return `{le="` + le + `"}`
		}
		return ls[:len(ls)-1] + `,le="` + le + `"}`
	}
	for i, b := range bounds {
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE(formatFloat(b)), cum[i]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE("+Inf"), cum[len(cum)-1]); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, ls, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, ls, h.Count())
	return err
}

// jsonMetric is one metric instance in the JSON exposition.
type jsonMetric struct {
	Type  string `json:"type"`
	Value any    `json:"value,omitempty"`
	// Histogram-only fields.
	Count     int64              `json:"count,omitempty"`
	Sum       float64            `json:"sum,omitempty"`
	Quantiles map[string]float64 `json:"quantiles,omitempty"`
}

// WriteJSON renders every registered metric as one JSON object keyed by
// "name{labels}". Histograms carry count, sum and p50/p90/p99 estimates.
func (r *Registry) WriteJSON(w io.Writer) error {
	doc := make(map[string]jsonMetric)
	for _, f := range r.sortedFamilies() {
		for _, s := range f.series {
			key := f.name + s.labels
			switch m := s.metric.(type) {
			case *Counter:
				doc[key] = jsonMetric{Type: "counter", Value: m.Value()}
			case *Gauge:
				doc[key] = jsonMetric{Type: "gauge", Value: m.Value()}
			case *Histogram:
				doc[key] = jsonMetric{
					Type:  "histogram",
					Count: m.Count(),
					Sum:   m.Sum(),
					Quantiles: map[string]float64{
						"p50": m.Quantile(0.50),
						"p90": m.Quantile(0.90),
						"p99": m.Quantile(0.99),
					},
				}
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Mux returns an http.ServeMux exposing the registry and the standard
// profiling endpoints on one listener:
//
//	/metrics       Prometheus text format
//	/metrics.json  JSON exposition
//	/debug/pprof/  net/http/pprof profiles
func Mux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
