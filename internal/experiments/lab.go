package experiments

import (
	"fmt"
	"sync"

	"moe/internal/core"
	"moe/internal/expert"
	"moe/internal/policy"
	"moe/internal/sim"
	"moe/internal/training"
	"moe/internal/workload"
)

// PolicyName identifies a thread-selection policy under evaluation.
type PolicyName string

// The policies of §6.3 plus the analysis/ablation variants.
const (
	PolicyDefault  PolicyName = "default"
	PolicyOnline   PolicyName = "online"
	PolicyOffline  PolicyName = "offline"
	PolicyAnalytic PolicyName = "analytic"
	PolicyMixture  PolicyName = "mixture"
	// PolicyMixture2 and PolicyMixture8 vary the expert pool size (§3,
	// §8.4).
	PolicyMixture2 PolicyName = "mixture2"
	PolicyMixture8 PolicyName = "mixture8"
	// PolicyMonolithic runs the single aggregate model with the full
	// mixture machinery (§7.7 / Fig 14c).
	PolicyMonolithic PolicyName = "monolithic"
	// PolicyOracle uses the simulator's ground truth (headroom bound).
	PolicyOracle PolicyName = "oracle"
	// Ablation variants of the mixture's selector.
	PolicyMixtureAccuracyGate PolicyName = "mixture-accuracy-gate"
	PolicyMixtureRandomGate   PolicyName = "mixture-random-gate"
	PolicyMixtureNoPretrain   PolicyName = "mixture-no-pretrain"
)

// BaselinePolicies are the schemes of every headline figure, in the order
// the paper lists them.
var BaselinePolicies = []PolicyName{PolicyOnline, PolicyOffline, PolicyAnalytic, PolicyMixture}

// Lab owns the trained models and hands out policy instances. Expert sets
// respect the paper's leave-one-out deployment rule (§5.2.3): models used
// for a target are trained without that target's data.
type Lab struct {
	// DS is the full training dataset (NAS programs, both platforms).
	DS *training.DataSet
	// Eval is the evaluation machine (Table 2).
	Eval sim.MachineConfig

	mu    sync.Mutex
	cache map[string]*targetModels
}

// targetModels are the per-excluded-target model builds.
type targetModels struct {
	sub  *training.DataSet
	set2 expert.Set
	set4 expert.Set
	set8 expert.Set
	mono *expert.Expert
}

// NewLab generates training data and returns a ready lab. The zero Config
// value selects the paper's training setup.
func NewLab(cfg training.Config) (*Lab, error) {
	ds, err := training.Generate(cfg)
	if err != nil {
		return nil, err
	}
	return &Lab{DS: ds, Eval: sim.Eval32(), cache: make(map[string]*targetModels)}, nil
}

// NewLabFromData wraps an existing dataset (used by tests that share one
// generation across many experiments).
func NewLabFromData(ds *training.DataSet) *Lab {
	return &Lab{DS: ds, Eval: sim.Eval32(), cache: make(map[string]*targetModels)}
}

// models returns (building and caching on first use) the model set trained
// without the named target program.
func (l *Lab) models(target string) (*targetModels, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if m, ok := l.cache[target]; ok {
		return m, nil
	}
	sub := l.DS.ExcludeProgram(target)
	set2, err := training.BuildExperts2(sub)
	if err != nil {
		return nil, fmt.Errorf("experiments: experts2 without %s: %w", target, err)
	}
	set4, err := training.BuildExperts4(sub)
	if err != nil {
		return nil, fmt.Errorf("experiments: experts4 without %s: %w", target, err)
	}
	set8, err := training.BuildExperts8(sub)
	if err != nil {
		return nil, fmt.Errorf("experiments: experts8 without %s: %w", target, err)
	}
	mono, err := training.BuildMonolithic(sub)
	if err != nil {
		return nil, fmt.Errorf("experiments: monolithic without %s: %w", target, err)
	}
	m := &targetModels{sub: sub, set2: set2, set4: set4, set8: set8, mono: mono}
	l.cache[target] = m
	return m, nil
}

// Experts4 exposes the four-expert pool trained without the target (for
// analysis experiments that inspect experts directly).
func (l *Lab) Experts4(target string) (expert.Set, error) {
	m, err := l.models(target)
	if err != nil {
		return nil, err
	}
	return m.set4, nil
}

// TrainingSubset exposes the leave-one-out dataset for a target.
func (l *Lab) TrainingSubset(target string) (*training.DataSet, error) {
	m, err := l.models(target)
	if err != nil {
		return nil, err
	}
	return m.sub, nil
}

// NewPolicy builds a fresh policy instance of the named kind for the given
// target program. Policies are stateful; never share one across runs.
func (l *Lab) NewPolicy(name PolicyName, target string, seed uint64) (sim.Policy, error) {
	switch name {
	case PolicyDefault:
		return policy.NewDefault(), nil
	case PolicyOnline:
		return policy.NewOnline(), nil
	case PolicyAnalytic:
		return policy.NewAnalytic(policy.AnalyticOptions{Seed: seed}), nil
	case PolicyOracle:
		return sim.OraclePolicy{}, nil
	}

	m, err := l.models(target)
	if err != nil {
		return nil, err
	}
	switch name {
	case PolicyOffline:
		return policy.NewOffline(m.mono.Threads, m.mono.MaxThreads), nil
	case PolicyMonolithic:
		return core.NewMixture(expert.Set{m.mono}, core.Options{})
	case PolicyMixture:
		return training.NewMixturePolicy(m.sub, m.set4)
	case PolicyMixture2:
		return training.NewMixturePolicy(m.sub, m.set2)
	case PolicyMixture8:
		return training.NewMixturePolicy(m.sub, m.set8)
	case PolicyMixtureAccuracyGate:
		return core.NewMixture(m.set4, core.Options{Selector: core.NewAccuracySelector(len(m.set4), 0)})
	case PolicyMixtureRandomGate:
		return core.NewMixture(m.set4, core.Options{Selector: core.NewRandomSelector(len(m.set4), seed)})
	case PolicyMixtureNoPretrain:
		return core.NewMixture(m.set4, core.Options{})
	default:
		return nil, fmt.Errorf("experiments: unknown policy %q", name)
	}
}

// SingleExpertPolicy wraps one expert from the four-expert pool as a
// standalone policy (the individual bars of Fig 15c).
func (l *Lab) SingleExpertPolicy(target string, idx int) (sim.Policy, error) {
	m, err := l.models(target)
	if err != nil {
		return nil, err
	}
	if idx < 0 || idx >= len(m.set4) {
		return nil, fmt.Errorf("experiments: expert index %d out of range", idx)
	}
	return core.NewMixture(expert.Set{m.set4[idx]}, core.Options{})
}

// SubsetMixturePolicy builds a mixture over the first k experts of the
// four-expert pool (the "adding experts" sweep of Fig 15c).
func (l *Lab) SubsetMixturePolicy(target string, k int) (sim.Policy, error) {
	m, err := l.models(target)
	if err != nil {
		return nil, err
	}
	if k < 1 || k > len(m.set4) {
		return nil, fmt.Errorf("experiments: subset size %d out of range", k)
	}
	return training.NewMixturePolicy(m.sub, m.set4[:k])
}

// EvalTargets returns the benchmark programs evaluated in the paper's
// figures: every catalog program (NAS + SpecOMP + Parsec, §6.2).
func EvalTargets() []string {
	progs := workload.Catalog()
	names := make([]string, len(progs))
	for i, p := range progs {
		names[i] = p.Name
	}
	return names
}
