package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"moe/internal/atomicio"
)

// Filesystem failures must surface as *DiskError so a multi-tenant host can
// degrade the affected tenant to journal-less serving instead of refusing
// it; content mismatches must not, so hosts cannot mistake a wrong lineage
// for a full disk.

func TestOpenOnUnwritablePathIsDiskError(t *testing.T) {
	// A regular file where the store directory should be: MkdirAll fails
	// with ENOTDIR regardless of privilege (a chmod-based read-only dir
	// would not stop root, which CI containers run as).
	dir := t.TempDir()
	blocked := filepath.Join(dir, "occupied")
	if err := os.WriteFile(blocked, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{blocked, filepath.Join(blocked, "tenant-1")} {
		_, err := Open(path)
		if err == nil {
			t.Fatalf("Open(%q) on an occupied path must fail", path)
		}
		if !IsDiskError(err) {
			t.Errorf("Open(%q): %v is not a DiskError", path, err)
		}
	}
}

func TestFailingSnapshotWriteIsDiskError(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	// Inject an ENOSPC-style failure at the write stage of the snapshot's
	// atomic replace; the injected cause must stay reachable through the
	// typed wrapper.
	cause := fmt.Errorf("injected: %w", errors.New("no space left on device"))
	store.SetSnapshotFault(func(stage atomicio.Stage) error {
		if stage == atomicio.StageWrite {
			return cause
		}
		return nil
	})
	err = store.WriteSnapshot(testState(t, 3))
	if err == nil {
		t.Fatal("snapshot write with injected fault must fail")
	}
	var de *DiskError
	if !errors.As(err, &de) {
		t.Fatalf("snapshot failure %v is not a DiskError", err)
	}
	if de.Op != "snapshot" {
		t.Errorf("op = %q, want snapshot", de.Op)
	}
	if !errors.Is(err, cause) {
		t.Error("injected cause must stay reachable through the DiskError")
	}

	// The store recovers once the disk does: clearing the fault, the same
	// snapshot lands and a journal epoch opens.
	store.SetSnapshotFault(nil)
	if err := store.WriteSnapshot(testState(t, 3)); err != nil {
		t.Fatalf("snapshot after fault cleared: %v", err)
	}
	if err := store.Append(testObservations(1, 0)[0]); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
}

func TestFailingAppendIsDiskError(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := store.WriteSnapshot(testState(t, 3)); err != nil {
		t.Fatal(err)
	}
	// Close the journal's file descriptor out from under the store: the
	// next append's write fails like it would on a dying disk.
	if err := store.journal.Close(); err != nil {
		t.Fatal(err)
	}
	err = store.Append(testObservations(1, 0)[0])
	if err == nil {
		t.Fatal("append to a closed journal must fail")
	}
	if !IsDiskError(err) {
		t.Errorf("append failure %v is not a DiskError", err)
	}
	store.journal = nil // already closed
}

func TestContentMismatchIsNotDiskError(t *testing.T) {
	// Corrupt contents and wrong-policy states are the caller's problem,
	// not the disk's; classifying them as disk failures would let a host
	// "degrade" around holding the wrong lineage.
	if _, _, err := DecodeSnapshot([]byte("garbage that is not a snapshot")); err == nil {
		t.Fatal("garbage must not decode")
	} else if IsDiskError(err) {
		t.Errorf("decode failure %v must not be a DiskError", err)
	}
	if err := RestorePolicy(newMixture(t), PolicyState{Kind: PolicyStateless}); err == nil {
		t.Fatal("kind mismatch must fail")
	} else if IsDiskError(err) {
		t.Errorf("kind mismatch %v must not be a DiskError", err)
	}
}
