package trace

import (
	"fmt"
	"sort"
)

// Frequency selects how often the number of available processors changes
// (§6.4: "reduced or increased every 20 seconds and 10 seconds in low
// frequency and high frequency settings respectively").
type Frequency int

const (
	// LowFrequency changes the processor count every 20 seconds.
	LowFrequency Frequency = iota
	// HighFrequency changes the processor count every 10 seconds.
	HighFrequency
	// Static never changes the processor count (the isolated static
	// system of §7.1).
	Static
)

// Period returns the change interval in seconds, or 0 for Static.
func (f Frequency) Period() float64 {
	switch f {
	case LowFrequency:
		return 20
	case HighFrequency:
		return 10
	default:
		return 0
	}
}

// String implements fmt.Stringer.
func (f Frequency) String() string {
	switch f {
	case LowFrequency:
		return "low"
	case HighFrequency:
		return "high"
	case Static:
		return "static"
	default:
		return fmt.Sprintf("Frequency(%d)", int(f))
	}
}

// HardwareEvent is one change in processor availability.
type HardwareEvent struct {
	Time       float64 // virtual seconds from scenario start
	Processors int     // processors available from this time onward
}

// HardwareTrace is a piecewise-constant schedule of available processors.
// Events are kept sorted by time; the processor count before the first
// event is the count of the first event.
type HardwareTrace struct {
	events []HardwareEvent
}

// NewHardwareTrace builds a trace from events, sorting them by time. At
// least one event is required and every processor count must be positive.
func NewHardwareTrace(events []HardwareEvent) (*HardwareTrace, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("trace: hardware trace needs at least one event")
	}
	cp := append([]HardwareEvent(nil), events...)
	sort.SliceStable(cp, func(i, j int) bool { return cp[i].Time < cp[j].Time })
	for _, ev := range cp {
		if ev.Processors <= 0 {
			return nil, fmt.Errorf("trace: non-positive processor count %d at t=%.1f", ev.Processors, ev.Time)
		}
	}
	return &HardwareTrace{events: cp}, nil
}

// StaticHardware returns a trace that always reports p processors.
func StaticHardware(p int) *HardwareTrace {
	t, err := NewHardwareTrace([]HardwareEvent{{Time: 0, Processors: p}})
	if err != nil {
		panic(err) // unreachable for p > 0; p <= 0 is programmer error
	}
	return t
}

// At returns the number of processors available at virtual time t.
func (h *HardwareTrace) At(t float64) int {
	p := h.events[0].Processors
	for _, ev := range h.events {
		if ev.Time > t {
			break
		}
		p = ev.Processors
	}
	return p
}

// Events returns a copy of the schedule.
func (h *HardwareTrace) Events() []HardwareEvent {
	return append([]HardwareEvent(nil), h.events...)
}

// MaxProcessors returns the largest processor count in the trace.
func (h *HardwareTrace) MaxProcessors() int {
	maxP := 0
	for _, ev := range h.events {
		if ev.Processors > maxP {
			maxP = ev.Processors
		}
	}
	return maxP
}

// GenerateHardware produces a §6.4-style schedule for a machine with
// maxProcs processors over duration seconds: every Period() seconds the
// available count is raised or lowered by a random step, staying within
// [minProcs, maxProcs]. With Static frequency the count stays at maxProcs.
func GenerateHardware(rng *RNG, maxProcs int, freq Frequency, duration float64) (*HardwareTrace, error) {
	if maxProcs <= 0 {
		return nil, fmt.Errorf("trace: maxProcs must be positive, got %d", maxProcs)
	}
	if freq == Static {
		return StaticHardware(maxProcs), nil
	}
	period := freq.Period()
	minProcs := maxProcs / 4
	if minProcs < 1 {
		minProcs = 1
	}
	events := []HardwareEvent{{Time: 0, Processors: maxProcs}}
	cur := maxProcs
	for t := period; t < duration; t += period {
		// Step size up to a quarter of the machine; direction biased
		// toward returning to full capacity when low, mirroring the
		// churn in Fig 1 (dips followed by recovery).
		maxStep := maxProcs / 4
		if maxStep < 1 {
			maxStep = 1
		}
		step := rng.IntRange(1, maxStep)
		down := rng.Float64() < 0.5
		if cur-step < minProcs {
			down = false
		} else if cur+step > maxProcs {
			down = true
		}
		if down {
			cur -= step
		} else {
			cur += step
		}
		if cur < minProcs {
			cur = minProcs
		}
		if cur > maxProcs {
			cur = maxProcs
		}
		events = append(events, HardwareEvent{Time: t, Processors: cur})
	}
	return NewHardwareTrace(events)
}

// FailureHardware models the §7.5 case study: the machine runs at full
// capacity, loses half its processors at failAt, and recovers at failAt +
// outage. Used by the live-system experiment (Fig 14a).
func FailureHardware(maxProcs int, failAt, outage float64) (*HardwareTrace, error) {
	if maxProcs < 2 {
		return nil, fmt.Errorf("trace: failure trace needs at least 2 processors, got %d", maxProcs)
	}
	return NewHardwareTrace([]HardwareEvent{
		{Time: 0, Processors: maxProcs},
		{Time: failAt, Processors: maxProcs / 2},
		{Time: failAt + outage, Processors: maxProcs},
	})
}
