// Package checkpoint is the durability subsystem: it snapshots the
// runtime's full online decision state as versioned, CRC-checksummed
// records written atomically, keeps an append-only write-ahead journal of
// the observations behind every decision between snapshots, and recovers
// after a crash by loading the newest intact snapshot and replaying the
// journal tail. Recovery is adversarially robust: torn writes, truncation,
// bit-flips and version skew are detected by the record framing and the
// decoder never panics on arbitrary bytes — it falls back down the ladder
// (older snapshot, shorter journal, cold start) instead of erroring out.
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// errTruncated reports input that ended mid-value — the torn-write
// signature at the wire level.
var errTruncated = fmt.Errorf("checkpoint: truncated input")

// enc is a deterministic append-only encoder: identical values always
// yield identical bytes (maps are emitted in sorted key order by the
// callers), which is what makes snapshot byte-equality a meaningful test.
type enc struct {
	b []byte
}

func (e *enc) u64(v uint64) { e.b = binary.AppendUvarint(e.b, v) }

func (e *enc) i64(v int64) { e.b = binary.AppendVarint(e.b, v) }

func (e *enc) int(v int) { e.i64(int64(v)) }

// f64 emits the exact IEEE-754 bits so every float — including NaN
// payloads, infinities, negative zero and subnormals — round-trips
// bit-identically.
func (e *enc) f64(v float64) {
	e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(v))
}

func (e *enc) bool(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}

func (e *enc) str(s string) {
	e.u64(uint64(len(s)))
	e.b = append(e.b, s...)
}

func (e *enc) f64s(xs []float64) {
	e.u64(uint64(len(xs)))
	for _, x := range xs {
		e.f64(x)
	}
}

func (e *enc) ints(xs []int) {
	e.u64(uint64(len(xs)))
	for _, x := range xs {
		e.int(x)
	}
}

func (e *enc) bools(xs []bool) {
	e.u64(uint64(len(xs)))
	for _, x := range xs {
		e.bool(x)
	}
}

// counts emits a histogram map in ascending bin order (determinism).
func (e *enc) counts(m map[int]int) {
	bins := make([]int, 0, len(m))
	for b := range m {
		bins = append(bins, b)
	}
	sort.Ints(bins)
	e.u64(uint64(len(bins)))
	for _, b := range bins {
		e.int(b)
		e.int(m[b])
	}
}

// dec is the matching decoder. Every read bounds-checks the remaining
// input and records the first error; subsequent reads return zero values,
// so decoding arbitrary bytes can never panic or over-allocate.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *dec) remaining() int { return len(d.b) - d.off }

func (d *dec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail(errTruncated)
		return 0
	}
	d.off += n
	return v
}

func (d *dec) i64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail(errTruncated)
		return 0
	}
	d.off += n
	return v
}

func (d *dec) int() int {
	v := d.i64()
	if int64(int(v)) != v {
		d.fail(fmt.Errorf("checkpoint: integer %d overflows int", v))
		return 0
	}
	return int(v)
}

func (d *dec) f64() float64 {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 8 {
		d.fail(errTruncated)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}

func (d *dec) bool() bool {
	if d.err != nil {
		return false
	}
	if d.remaining() < 1 {
		d.fail(errTruncated)
		return false
	}
	v := d.b[d.off]
	d.off++
	switch v {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail(fmt.Errorf("checkpoint: invalid bool byte %d", v))
		return false
	}
}

// length validates a count against the bytes remaining, assuming each
// element occupies at least elemSize bytes; a hostile length can therefore
// never trigger a huge allocation.
func (d *dec) length(elemSize int) int {
	n := d.u64()
	if d.err != nil {
		return 0
	}
	if n > uint64(d.remaining()/elemSize) {
		d.fail(fmt.Errorf("checkpoint: length %d exceeds remaining input", n))
		return 0
	}
	return int(n)
}

func (d *dec) str(maxLen int) string {
	n := d.length(1)
	if d.err != nil {
		return ""
	}
	if n > maxLen {
		d.fail(fmt.Errorf("checkpoint: string length %d exceeds limit %d", n, maxLen))
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *dec) f64s() []float64 {
	n := d.length(8)
	if d.err != nil {
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.f64()
	}
	return out
}

func (d *dec) ints() []int {
	n := d.length(1)
	if d.err != nil {
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = d.int()
	}
	return out
}

func (d *dec) bools() []bool {
	n := d.length(1)
	if d.err != nil {
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = d.bool()
	}
	return out
}

func (d *dec) counts() map[int]int {
	n := d.length(2)
	if d.err != nil {
		return nil
	}
	out := make(map[int]int, n)
	for i := 0; i < n; i++ {
		bin := d.int()
		c := d.int()
		if d.err != nil {
			return nil
		}
		if _, dup := out[bin]; dup {
			d.fail(fmt.Errorf("checkpoint: duplicate histogram bin %d", bin))
			return nil
		}
		out[bin] = c
	}
	return out
}

// done verifies the input was fully and cleanly consumed.
func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if d.remaining() != 0 {
		return fmt.Errorf("checkpoint: %d trailing bytes after payload", d.remaining())
	}
	return nil
}
