package core

import (
	"math"

	"moe/internal/features"
)

// Sensor trust: the second rung of the mixture's degradation ladder, and
// the one only a *mixture* can climb. Sanitization (rung one) repairs
// observations that are syntactically broken — non-finite, absurdly sized.
// But a sensor can lie with perfectly finite numbers: a dropped-out reader
// returns zeros, a hotplug storm reports a different processor count every
// sample. A single model cannot tell "my model is wrong" from "the sensor
// is wrong" — it has one witness. A diverse pool can: the experts
// disagree with each other about most things, so when every one of them
// simultaneously reports enormous prediction error, the likeliest
// explanation is that the observation, not the whole pool, is broken.
//
// A suspect observation is not learned from (no selector update, no
// health scoring — garbage evidence would quarantine healthy experts and
// repartition the feature space around a lie) and is not decided on: the
// mixture selects and predicts from the last trusted state instead,
// riding out the fault window on the freshest information it believes.
// Expert predictions that are non-finite still quarantine their expert
// regardless of trust — sanitized inputs through validated models cannot
// produce them, so they prove the *model* broken no matter what the
// sensors say.
const (
	// suspectErrRatio is the consensus threshold: when the BEST
	// finite expert's single-step relative environment error exceeds it,
	// the observation is disbelieved. It sits below quarantineErrRatio —
	// an observation bad enough to quarantine the entire pool at once is
	// exactly the kind that should be disbelieved instead.
	suspectErrRatio = 6.0
	// procChurnDecay weights the newest change indicator in the
	// availability-churn EMA.
	procChurnDecay = 0.2
	// procChurnLimit is the churn rate beyond which the availability
	// signal is considered to be storming: legitimate hardware schedules
	// change f5 every tens of seconds (change rate well under 0.15 per
	// decision), a hotplug storm changes it nearly every sample.
	procChurnLimit = 0.5
)

// sensorTrust tracks what the mixture currently believes about its
// observation path.
type sensorTrust struct {
	lastFeat  features.Vector // last trusted state
	haveFeat  bool
	lastProc  float64 // previous f5 sample, for the churn detector
	haveProc  bool
	procChurn float64 // EMA of "f5 changed this step"
	suspects  int     // observations disbelieved so far
}

// procStorming feeds one availability sample to the churn detector and
// reports whether the signal is currently churning too fast to believe.
func (s *sensorTrust) procStorming(proc float64) bool {
	if s.haveProc {
		changed := 0.0
		if proc != s.lastProc {
			changed = 1
		}
		s.procChurn += procChurnDecay * (changed - s.procChurn)
	}
	s.lastProc, s.haveProc = proc, true
	return s.procChurn > procChurnLimit
}

// wouldStorm is procStorming without the state update: the verdict the
// detector WOULD return for proc, plus the churn EMA that sample would
// leave behind, computed with procStorming's exact arithmetic. The
// healthy-regime fast path uses the verdict as a pure precheck; on commit
// commitChurn stores the returned EMA so the detector evolves exactly as
// the full path's would, without re-deriving it.
func (s *sensorTrust) wouldStorm(proc float64) (churn float64, storming bool) {
	churn = s.procChurn
	if s.haveProc {
		changed := 0.0
		if proc != s.lastProc {
			changed = 1
		}
		churn += procChurnDecay * (changed - churn)
	}
	return churn, churn > procChurnLimit
}

// commitChurn applies the churn sample planned by wouldStorm(proc).
func (s *sensorTrust) commitChurn(proc, churn float64) {
	s.procChurn = churn
	s.lastProc, s.haveProc = proc, true
}

// consensusSuspect reports whether the scored errors condemn the
// observation: every expert with a finite prediction missed by more than
// suspectErrRatio times the observed scale. Experts with non-finite
// predictions don't vote — their testimony is about themselves.
func consensusSuspect(raw []float64, finite []bool, observedNorm float64) bool {
	scale := math.Abs(observedNorm)
	if scale < 1 {
		scale = 1
	}
	voted := false
	for k, ok := range finite {
		if !ok {
			continue
		}
		voted = true
		if raw[k]/scale <= suspectErrRatio {
			return false
		}
	}
	return voted
}
