package exec

import (
	"runtime"
	"time"

	"moe/internal/features"
	"moe/internal/stats"
)

// MetricSampler derives the Table 1 environment features (f4–f10) from the
// live Go runtime — the real-machine analog of the simulator's /proc
// metrics:
//
//	f4 workload threads  → goroutines beyond our own workers
//	f5 processors        → GOMAXPROCS
//	f6 run queue         → runnable goroutines in excess of CPUs
//	f7/f8 load averages  → 1- and 5-minute EMAs of the goroutine count
//	f9 cached memory     → heap in use (GB)
//	f10 page free rate   → GC cycles per second (memory reclaim pressure)
//
// Every Go process carries a floor of goroutines that never contend for a
// CPU — main, the GC workers, the finalizer, whatever the host framework
// parked before the sampler existed. Counting that floor as workload made
// f4 report phantom external threads and f6 a phantom run queue even on an
// idle machine. The sampler therefore calibrates the floor once at
// construction and reports only goroutines beyond it.
type MetricSampler struct {
	load1, load5 *stats.EMA
	lastSample   time.Time
	lastGC       uint32
	gcRate       *stats.EMA
	start        time.Time
	// baseline is the process's resting goroutine count, calibrated at
	// construction; Sample subtracts it before deriving f4, f6 and the load
	// averages.
	baseline int
}

// NewMetricSampler returns a sampler; call Sample at decision points.
// Construct it while the process is at rest (before spawning workers): the
// goroutine count observed here becomes the baseline that Sample treats as
// "empty machine".
func NewMetricSampler() *MetricSampler {
	now := time.Now()
	return &MetricSampler{
		load1:      stats.NewEMA(60),
		load5:      stats.NewEMA(300),
		gcRate:     stats.NewEMA(10),
		lastSample: now,
		start:      now,
		baseline:   runtime.NumGoroutine(),
	}
}

// Sample reads the runtime and returns the environment features. ownWorkers
// is the number of goroutines the caller itself currently runs, excluded
// from the workload-thread feature (f4 counts *external* load).
func (m *MetricSampler) Sample(ownWorkers int) features.Env {
	now := time.Now()
	dt := now.Sub(m.lastSample).Seconds()
	m.lastSample = now

	goroutines := runtime.NumGoroutine()
	procs := runtime.GOMAXPROCS(0)

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	gcDelta := float64(ms.NumGC - m.lastGC)
	m.lastGC = ms.NumGC
	gcPerSec := 0.0
	if dt > 0 {
		gcPerSec = m.gcRate.Update(gcDelta/dt, dt)
	}

	// Everything load-like is measured above the calibrated resting floor:
	// an idle process reports zero workload, zero queue, zero load.
	active := goroutines - m.baseline
	if active < 0 {
		active = 0
	}
	load1 := m.load1.Update(float64(active), dt)
	load5 := m.load5.Update(float64(active), dt)

	external := active - ownWorkers
	if external < 0 {
		external = 0
	}
	runq := active - procs
	if runq < 0 {
		runq = 0
	}
	return features.Env{
		WorkloadThreads: float64(external),
		Processors:      float64(procs),
		RunQueue:        float64(runq),
		Load1:           load1,
		Load5:           load5,
		CachedMem:       float64(ms.HeapInuse) / (1 << 30),
		PageFreeRate:    gcPerSec,
	}
}

// Elapsed returns seconds since the sampler was created — the Time input
// for runtime decisions.
func (m *MetricSampler) Elapsed() float64 {
	return time.Since(m.start).Seconds()
}
