package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"testing"

	"moe"
)

// FuzzWireRoundTrip drives the codec from both ends:
//
//  1. The input bytes seed a structured decide request and result;
//     decode(encode(x)) must equal x bit-for-bit.
//  2. The raw input bytes are fed straight to the frame reader and every
//     payload parser; hostile bytes may be rejected but must never panic,
//     over-allocate, or be silently accepted with a bad checksum.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendHello(nil))
	f.Add(AppendDecide(nil, 3, 250, "tenant-a", "req-1", []moe.Observation{{Time: 1.5, Rate: 100, AvailableProcs: 8}}))
	f.Add(AppendResult(nil, &Result{Seq: 1, Decisions: 7, Threads: []int{1, 2, 3}}))
	f.Add(AppendError(nil, 2, 50, "rate", "over limit"))
	f.Fuzz(func(t *testing.T, data []byte) {
		roundTripFromSeed(t, data)
		hostileNeverPanics(t, data)
	})
}

// take reads n bytes from *data, zero-padded at the end of input.
func take(data *[]byte, n int) []byte {
	out := make([]byte, n)
	m := copy(out, *data)
	*data = (*data)[m:]
	return out
}

func roundTripFromSeed(t *testing.T, data []byte) {
	seq := binary.LittleEndian.Uint64(take(&data, 8))
	deadline := binary.LittleEndian.Uint64(take(&data, 8)) % (1 << 32)
	tenant := string(bytes.Map(printable, take(&data, int(take(&data, 1)[0])%maxTenantLen)))
	reqID := string(bytes.Map(printable, take(&data, int(take(&data, 1)[0])%maxRequestIDLen)))
	nobs := int(take(&data, 1)[0]) % 9
	obs := make([]moe.Observation, nobs)
	for i := range obs {
		obs[i].Time = math.Float64frombits(binary.LittleEndian.Uint64(take(&data, 8)))
		obs[i].Rate = math.Float64frombits(binary.LittleEndian.Uint64(take(&data, 8)))
		obs[i].AvailableProcs = int(int32(binary.LittleEndian.Uint32(take(&data, 4))))
		obs[i].RegionStart = take(&data, 1)[0]%2 == 1
		for j := range obs[i].Features {
			obs[i].Features[j] = math.Float64frombits(binary.LittleEndian.Uint64(take(&data, 8)))
		}
	}

	frame := AppendDecide(nil, seq, deadline, tenant, reqID, obs)
	kind, payload, size, err := frameAt(frame)
	if err != nil || kind != FrameDecide || size != len(frame) {
		t.Fatalf("own decide frame rejected: kind=%#x size=%d err=%v", kind, size, err)
	}
	var d Decide
	if err := ParseDecide(payload, &d); err != nil {
		t.Fatalf("own decide payload rejected: %v", err)
	}
	if d.Seq != seq || d.DeadlineMs != deadline || string(d.Tenant) != tenant || string(d.RequestID) != reqID || len(d.Obs) != nobs {
		t.Fatalf("decide round trip mismatch: %+v", d)
	}
	for i := range obs {
		a, b := obs[i], d.Obs[i]
		if math.Float64bits(a.Time) != math.Float64bits(b.Time) ||
			math.Float64bits(a.Rate) != math.Float64bits(b.Rate) ||
			a.AvailableProcs != b.AvailableProcs || a.RegionStart != b.RegionStart {
			t.Fatalf("obs %d scalar mismatch", i)
		}
		for j := range a.Features {
			if math.Float64bits(a.Features[j]) != math.Float64bits(b.Features[j]) {
				t.Fatalf("obs %d feature %d mismatch", i, j)
			}
		}
	}

	threads := make([]int, nobs)
	for i := range threads {
		threads[i] = int(int16(seq)) + i
	}
	rframe := AppendResult(nil, &Result{Seq: seq, Decisions: int64(deadline), Deduped: nobs%2 == 0, Threads: threads})
	kind, payload, _, err = frameAt(rframe)
	if err != nil || kind != FrameResult {
		t.Fatalf("own result frame rejected: %v", err)
	}
	var res Result
	if err := ParseResult(payload, &res); err != nil {
		t.Fatalf("own result payload rejected: %v", err)
	}
	if res.Seq != seq || res.Decisions != int64(deadline) || len(res.Threads) != nobs {
		t.Fatalf("result round trip mismatch: %+v", res)
	}
	for i := range threads {
		if res.Threads[i] != threads[i] {
			t.Fatalf("thread %d mismatch", i)
		}
	}
}

func printable(r rune) rune { return 'a' + (r % 26) }

func hostileNeverPanics(t *testing.T, data []byte) {
	rd := NewReader(bytes.NewReader(data))
	var d Decide
	var res Result
	var e Error
	for i := 0; i < 64; i++ {
		kind, payload, _, err := rd.Next()
		if err != nil {
			break
		}
		// Whatever the reader accepted passed the checksum; the payload
		// parsers must classify it without panicking either way.
		switch kind {
		case FrameHello:
			_, _ = ParseHello(payload)
		case FrameDecide:
			_ = ParseDecide(payload, &d)
		case FrameResult:
			_ = ParseResult(payload, &res)
		case FrameError:
			_ = ParseError(payload, &e)
		}
	}
	// The parsers must also survive raw bytes that never passed framing.
	_ = ParseDecide(data, &d)
	_ = ParseResult(data, &res)
	_ = ParseError(data, &e)
	_, _ = ParseHello(data)
	_ = HelloPrefix(data)
	_, _, _, _ = frameAt(data)
	// And a reader over an interrupted stream must end, not hang or panic.
	short := io.LimitReader(bytes.NewReader(data), int64(len(data)/2))
	srd := NewReader(short)
	for {
		if _, _, _, err := srd.Next(); err != nil {
			break
		}
	}
}
