package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"moe/internal/atomicio"
	"moe/internal/telemetry"
)

// Store manages a checkpoint directory:
//
//	snap-RRRRRR-NNNNNNNNNNNN.ckpt     run R's snapshot at decision count N
//	journal-RRRRRR-NNNNNNNNNNNN.wal   run R's observations for decisions N+1, …
//
// Every Store instance writes under a fresh *run* number — one larger than
// any run already present in the directory — and the run is also stamped
// inside the checksummed snapshot payload and journal header. A run is a
// lineage marker: all files it stamps describe one timeline of the same
// process's life. Pruning and recovery never mix runs, so a runtime that
// attaches fresh over an old directory can neither have its young snapshot
// pruned in favour of the abandoned higher-count history, nor have that
// history's journals replayed into its timeline just because decision
// counts happen to line up.
//
// Writing a snapshot is atomic (temp + fsync + rename + dir fsync) and
// rotates the journal to a fresh epoch; the previous snapshot generation
// and its journal are retained so a torn newest snapshot still recovers to
// the exact same state through the older snapshot plus its full journal.
// Appends go to the current journal as individually checksummed records.
//
// A Store is not safe for concurrent use; Runtime serializes access under
// its own lock.
type Store struct {
	dir  string
	sync bool
	run  int

	journal      *os.File
	journalEpoch int
	journalIndex int // records appended in the current epoch (post-header)

	// snapshotFault injects crashes into snapshot writes (tests only).
	snapshotFault atomicio.FaultFn
	// journalFault injects I/O errors into journal creates, writes, and
	// fsyncs (tests only). Unlike snapshotFault — whose stages model a crash
	// *after* the stage completed — journalFault is consulted *before* the
	// operation: a non-nil error makes the operation fail with that error,
	// modeling EIO/ENOSPC surfacing to the caller.
	journalFault atomicio.FaultFn

	// gc, when attached, takes over journal durability: appends skip the
	// inline fsync (marking the journal dirty instead) and Sync is the
	// batch commit point, sharing one fsync across every store that
	// reached the committer inside its flush window (groupcommit.go).
	gc         *GroupCommitter
	dirty      bool
	dirtyCount int // appends whose fsync was deferred to the next Sync

	// shipper observes every durable artifact for replication (ship.go).
	shipper func(Shipment)
	// dedupSource seeds each fresh journal epoch with the current dedup
	// window (ship.go).
	dedupSource func() []DedupEntry

	// Metrics (nil until SetMetrics): store-level write latency and error
	// counts, independent of any runtime attached above.
	appendLatency *telemetry.Histogram
	snapLatency   *telemetry.Histogram
	appendErrs    *telemetry.Counter
	snapErrs      *telemetry.Counter
}

// Options tunes a store.
type Options struct {
	// DisableSync skips the per-append fsync (snapshot atomicity is kept).
	// A crash may then lose the journal tail that was still in the page
	// cache — recovery still yields a valid, slightly older state. Used by
	// simulation studies where thousands of appends per run would
	// otherwise be fsync-bound.
	DisableSync bool

	// MinRun floors the run number the store claims. A promoted standby
	// passes its fencing term here so every run it ever writes outranks —
	// in lineage order — anything the deposed primary replicated before the
	// promotion, even if the replicated history had seen fewer runs.
	MinRun int

	// GroupCommit, when non-nil (and sync enabled), shares journal fsyncs
	// across every store attached to the same committer: appends defer
	// their fsync to the next Store.Sync, which is the batch commit point.
	GroupCommit *GroupCommitter
}

// generations is how many snapshot generations (snapshot + its journal)
// are retained; older ones are pruned after each successful snapshot.
const generations = 2

// Open creates (if needed) and opens a checkpoint directory with default
// options: every journal append is fsynced.
func Open(dir string) (*Store, error) {
	return OpenOptions(dir, Options{})
}

// OpenOptions is Open with explicit options. The store claims the next
// unused run number in the directory; everything it writes carries it.
func OpenOptions(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, diskErr("open", dir, err)
	}
	s := &Store{dir: dir, sync: !opts.DisableSync, gc: opts.GroupCommit}
	snaps, err := s.list(snapPrefix, snapSuffix)
	if err != nil {
		return nil, err
	}
	journals, err := s.list(journalPrefix, journalSuffix)
	if err != nil {
		return nil, err
	}
	maxRun := 0
	for _, id := range append(snaps, journals...) {
		if id.run > maxRun {
			maxRun = id.run
		}
	}
	s.run = maxRun + 1
	if s.run < opts.MinRun {
		s.run = opts.MinRun
	}
	return s, nil
}

// SetMetrics registers the store's write-latency histograms and error
// counters in reg. Metrics never change what the store writes or how it
// recovers; they only time and count the writes it was making anyway.
//
// SetMetrics must be called before the first Append or WriteSnapshot: the
// metric fields are plain pointers read by those paths without
// synchronization, so attaching metrics to a store already in use is a data
// race. (A Store is single-threaded anyway — Runtime serializes access —
// so this only constrains setup order, not steady-state use.)
func (s *Store) SetMetrics(reg *telemetry.Registry) {
	s.appendLatency = reg.Histogram("checkpoint_append_seconds", "Journal append latency at the store.", nil)
	s.snapLatency = reg.Histogram("checkpoint_snapshot_seconds", "Snapshot write latency at the store.", nil)
	s.appendErrs = reg.Counter("checkpoint_write_errors_total", "Failed checkpoint writes by operation.", "op", "append")
	s.snapErrs = reg.Counter("checkpoint_write_errors_total", "Failed checkpoint writes by operation.", "op", "snapshot")
}

// SetSnapshotFault installs (or clears, with nil) a fault hook on snapshot
// writes — the crash-injection seam the durability tests use to tear a
// write at an exact stage. Production code never calls this.
func (s *Store) SetSnapshotFault(fn atomicio.FaultFn) { s.snapshotFault = fn }

// SetJournalFault installs (or clears, with nil) a fault hook on the
// journal write path: StageCreate before a rotation's OpenFile, StageWrite
// before each record write, StageSyncFile before each fsync. A non-nil
// return makes the operation fail with that error wrapped in DiskError —
// this models a disk turning bad (EIO, ENOSPC), not a crash. Tests only.
func (s *Store) SetJournalFault(fn atomicio.FaultFn) { s.journalFault = fn }

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Run returns the lineage number this store writes under.
func (s *Store) Run() int { return s.run }

// JournalEpoch returns the decision count at which the current journal
// epoch started (meaningful once a snapshot has been written).
func (s *Store) JournalEpoch() int { return s.journalEpoch }

// Close closes the current journal (syncing it first — any deferred
// group-commit dirtiness is flushed here, not lost).
func (s *Store) Close() error {
	if s.journal == nil {
		return nil
	}
	err := s.journal.Sync()
	if cerr := s.journal.Close(); err == nil {
		err = cerr
	}
	s.journal = nil
	s.dirty = false
	s.dirtyCount = 0
	return err
}

const (
	snapPrefix    = "snap-"
	snapSuffix    = ".ckpt"
	journalPrefix = "journal-"
	journalSuffix = ".wal"
	runDigits     = 6
	seqDigits     = 12
)

// fileID identifies one checkpoint file: the run (lineage) that wrote it
// and its decision-count sequence number (snapshot count or journal epoch).
type fileID struct {
	run int
	seq int
}

func (a fileID) less(b fileID) bool {
	if a.run != b.run {
		return a.run < b.run
	}
	return a.seq < b.seq
}

func snapName(id fileID) string {
	return fmt.Sprintf("%s%0*d-%0*d%s", snapPrefix, runDigits, id.run, seqDigits, id.seq, snapSuffix)
}

func journalName(id fileID) string {
	return fmt.Sprintf("%s%0*d-%0*d%s", journalPrefix, runDigits, id.run, seqDigits, id.seq, journalSuffix)
}

// parseName extracts the run and sequence number from a snapshot or
// journal file name; ok is false for anything else (including temp files).
func parseName(name, prefix, suffix string) (fileID, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return fileID{}, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	if len(mid) != runDigits+1+seqDigits || mid[runDigits] != '-' {
		return fileID{}, false
	}
	run, err := strconv.Atoi(mid[:runDigits])
	if err != nil || run < 0 {
		return fileID{}, false
	}
	seq, err := strconv.Atoi(mid[runDigits+1:])
	if err != nil || seq < 0 {
		return fileID{}, false
	}
	return fileID{run: run, seq: seq}, true
}

// list returns the IDs of all files with the given naming scheme, sorted
// by (run, seq) ascending.
func (s *Store) list(prefix, suffix string) ([]fileID, error) {
	return listDir(s.dir, prefix, suffix)
}

func listDir(dir, prefix, suffix string) ([]fileID, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, diskErr("list", dir, err)
	}
	var out []fileID
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if id, ok := parseName(e.Name(), prefix, suffix); ok {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].less(out[j]) })
	return out, nil
}

// WriteSnapshot durably records a full state, rotates the journal to a new
// epoch at st.Decisions, and prunes generations beyond the retention
// window. On success the state is recoverable even if every later write is
// torn.
func (s *Store) WriteSnapshot(st *State) error {
	var start time.Time
	if s.snapLatency != nil {
		start = time.Now()
	}
	err := s.writeSnapshot(st)
	if s.snapLatency != nil {
		s.snapLatency.Observe(time.Since(start).Seconds())
		if err != nil {
			s.snapErrs.Inc()
		}
	}
	return err
}

func (s *Store) writeSnapshot(st *State) error {
	data, err := EncodeSnapshot(st, s.run)
	if err != nil {
		return err
	}
	name := snapName(fileID{run: s.run, seq: st.Decisions})
	if err := atomicio.WriteFileHooked(filepath.Join(s.dir, name), data, 0o644, s.snapshotFault); err != nil {
		return diskErr("snapshot", filepath.Join(s.dir, name), err)
	}
	s.ship(ShipSnapshot, s.run, st.Decisions, 0, data)
	if err := s.rotateJournal(st.Decisions); err != nil {
		return err
	}
	return s.prune()
}

// rotateJournal closes the current journal and starts a fresh one whose
// epoch is the given decision count, writing its header record durably.
func (s *Store) rotateJournal(epoch int) error {
	if err := s.Close(); err != nil {
		return err
	}
	path := filepath.Join(s.dir, journalName(fileID{run: s.run, seq: epoch}))
	if err := s.fault(atomicio.StageCreate); err != nil {
		return diskErr("rotate", path, err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return diskErr("rotate", path, err)
	}
	e := &enc{}
	e.int(s.run)
	e.int(epoch)
	header := appendRecord(nil, recordJournalHeader, e.b)
	if _, err := f.Write(header); err != nil {
		f.Close()
		return diskErr("rotate", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return diskErr("rotate", path, err)
	}
	if err := atomicio.SyncDir(s.dir); err != nil {
		f.Close()
		return diskErr("rotate", s.dir, err)
	}
	s.journal = f
	s.journalEpoch = epoch
	s.journalIndex = 0
	s.ship(ShipJournalOpen, s.run, epoch, 0, header)
	// Seed the fresh epoch with the current dedup window: recovery that
	// starts at this rotation's snapshot must still know the request IDs
	// acked before it.
	if s.dedupSource != nil {
		if window := s.dedupSource(); len(window) > 0 {
			if err := s.appendJournal(recordDedupWindow, encodeDedupWindow(window)); err != nil {
				return err
			}
		}
	}
	return nil
}

// fault consults the journal fault hook for one stage.
func (s *Store) fault(stage atomicio.Stage) error {
	if s.journalFault == nil {
		return nil
	}
	return s.journalFault(stage)
}

// Append writes one observation to the current journal. A snapshot must
// have been written first (it opens the journal epoch).
func (s *Store) Append(obs Observation) error {
	var start time.Time
	if s.appendLatency != nil {
		start = time.Now()
	}
	err := s.append(obs)
	if s.appendLatency != nil {
		s.appendLatency.Observe(time.Since(start).Seconds())
		if err != nil {
			s.appendErrs.Inc()
		}
	}
	return err
}

func (s *Store) append(obs Observation) error {
	e := &enc{}
	encodeObservation(e, &obs)
	return s.appendJournal(recordJournalEntry, e.b)
}

// appendJournal frames one record of any kind, writes it to the current
// journal (fsyncing when the store syncs), and ships it. All journal
// appends — observation entries and dedup records alike — route through
// here so the fault seam and the replication stream both see every record.
func (s *Store) appendJournal(kind byte, payload []byte) error {
	if s.journal == nil {
		return fmt.Errorf("checkpoint: no open journal; write a snapshot first")
	}
	frame := appendRecord(nil, kind, payload)
	if err := s.fault(atomicio.StageWrite); err != nil {
		return diskErr("append", s.journal.Name(), err)
	}
	if _, err := s.journal.Write(frame); err != nil {
		return diskErr("append", s.journal.Name(), err)
	}
	switch {
	case s.sync && s.gc != nil:
		// Group commit: durability is deferred to the next Sync, the batch
		// commit point. The record is written, not yet promised.
		s.dirty = true
		s.dirtyCount++
	case s.sync:
		if err := s.fault(atomicio.StageSyncFile); err != nil {
			return diskErr("append", s.journal.Name(), err)
		}
		if err := s.journal.Sync(); err != nil {
			return diskErr("append", s.journal.Name(), err)
		}
	}
	s.ship(ShipJournalRecord, s.run, s.journalEpoch, s.journalIndex, frame)
	s.journalIndex++
	return nil
}

// snapshotIntact reports whether a snapshot file decodes cleanly and its
// embedded run and decision count agree with its name. readable is false
// when the file could not be read at all — the caller cannot judge it.
func (s *Store) snapshotIntact(id fileID) (intact, readable bool) {
	return snapshotIntactIn(s.dir, id)
}

func snapshotIntactIn(dir string, id fileID) (intact, readable bool) {
	data, err := os.ReadFile(filepath.Join(dir, snapName(id)))
	if err != nil {
		return false, false
	}
	st, run, err := DecodeSnapshot(data)
	return err == nil && run == id.run && st.Decisions == id.seq, true
}

// prune removes snapshot generations and journals beyond the retention
// window. The current journal epoch is always kept.
func (s *Store) prune() error {
	return pruneDir(s.dir, fileID{run: s.run, seq: s.journalEpoch})
}

// pruneDir removes snapshot generations and journals beyond the retention
// window in dir; cur names the journal epoch currently being written (kept
// unconditionally). Retention counts only snapshots that validate — a torn
// or corrupt newer snapshot must not evict the intact generation recovery
// would actually fall back to. Shared by the writing Store and the
// replication Applier, which maintains the same retention discipline on the
// standby's copy of the lineage.
func pruneDir(dir string, cur fileID) error {
	snaps, err := listDir(dir, snapPrefix, snapSuffix)
	if err != nil {
		return err
	}
	// Keep the newest `generations` intact snapshots by (run, seq) —
	// lineage order, so a young snapshot of the current run outranks any
	// higher-count history from an abandoned earlier run. Corrupt files
	// within the scan window are junk and fall out of the keep set;
	// unreadable ones are left untouched (we cannot judge them) but do not
	// count toward retention.
	keep := make(map[fileID]bool)
	unreadable := make(map[fileID]bool)
	for i := len(snaps) - 1; i >= 0 && len(keep) < generations; i-- {
		id := snaps[i]
		intact, readable := snapshotIntactIn(dir, id)
		switch {
		case intact:
			keep[id] = true
		case !readable:
			unreadable[id] = true
		}
	}
	for _, id := range snaps {
		if keep[id] || unreadable[id] {
			continue
		}
		if err := os.Remove(filepath.Join(dir, snapName(id))); err != nil && !os.IsNotExist(err) {
			return diskErr("prune", filepath.Join(dir, snapName(id)), err)
		}
	}
	// A journal survives if some retained snapshot of its own run can seed
	// a replay chain through it (snapshot count ≤ journal epoch).
	journals, err := listDir(dir, journalPrefix, journalSuffix)
	if err != nil {
		return err
	}
	for _, j := range journals {
		if j == cur {
			continue
		}
		needed := false
		for id := range keep {
			if id.run == j.run && id.seq <= j.seq {
				needed = true
				break
			}
		}
		for id := range unreadable {
			if id.run == j.run && id.seq <= j.seq {
				needed = true
				break
			}
		}
		if !needed {
			if err := os.Remove(filepath.Join(dir, journalName(j))); err != nil && !os.IsNotExist(err) {
				return diskErr("prune", filepath.Join(dir, journalName(j)), err)
			}
		}
	}
	// Crash leftovers from interrupted snapshot writes are harmless but
	// accumulate; sweep them while we are here.
	return atomicio.RemoveTemps(dir)
}

// Recovery is the result of reading a checkpoint directory after a crash.
type Recovery struct {
	// State is the newest intact snapshot of the recovered lineage, or nil
	// for a cold start.
	State *State
	// Tail holds the journaled observations recorded after State (or from
	// the beginning, for a lineage whose snapshot was lost but whose
	// journal starts at decision 0), in decision order, up to the first
	// sign of corruption.
	Tail []Observation
	// Dedups is the reconstructed idempotent-request window, oldest first:
	// the newest full-window record seen in the replayed chain plus every
	// dedup marker after it. Entries whose Decisions exceed the recovered
	// decision count (markers journaled for observations whose entries were
	// then torn off) are already filtered out.
	Dedups []DedupEntry
	// Report documents the ladder: which files were used, skipped, or cut
	// short, and why. Purely informational.
	Report []string
}

// Decisions returns the decision count the recovered state reaches once
// the tail is replayed.
func (r *Recovery) Decisions() int {
	d := len(r.Tail)
	if r.State != nil {
		d += r.State.Decisions
	}
	return d
}

// Recover reads the directory and returns the best recoverable state. It
// walks runs newest-first and commits to the first lineage with anything
// recoverable — an intact snapshot, or a journal chain starting at
// decision 0 — then climbs that lineage's ladder: newest snapshot that
// validates, plus the longest contiguous journal chain of the same run on
// top of it. Journals of other runs are never replayed, however neatly
// their epochs would line up: they describe a different timeline.
//
// Recover never panics on arbitrary file contents and never returns an
// error for corruption — corruption just lands lower on the ladder (an
// older snapshot, an older run, ultimately a cold start). Errors are
// reserved for I/O failures reading the directory itself.
//
// Call Recover before the store's first WriteSnapshot/Append; the open
// journal belongs to the writer side.
func (s *Store) Recover() (*Recovery, error) {
	rec := &Recovery{}
	snaps, err := s.list(snapPrefix, snapSuffix)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			rec.Report = append(rec.Report, "no checkpoint directory; cold start")
			return rec, nil
		}
		return nil, err
	}
	journals, err := s.list(journalPrefix, journalSuffix)
	if err != nil {
		return nil, err
	}

	runSet := make(map[int]bool)
	for _, id := range snaps {
		runSet[id.run] = true
	}
	for _, id := range journals {
		runSet[id.run] = true
	}
	runs := make([]int, 0, len(runSet))
	for r := range runSet {
		runs = append(runs, r)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(runs)))

	for _, run := range runs {
		if s.recoverRun(run, snaps, journals, rec) {
			return rec, nil
		}
	}
	rec.Report = append(rec.Report, "no recoverable lineage; cold start")
	return rec, nil
}

// recoverRun attempts to recover the given run's lineage into rec,
// reporting whether it committed to this run. A run with an intact
// snapshot, or with a journal chain rooted at decision 0, is committed to;
// a run that left nothing recoverable is skipped so an older lineage can
// be tried.
func (s *Store) recoverRun(run int, snaps, journals []fileID, rec *Recovery) bool {
	// Rung 1: newest intact snapshot of this run.
	base := -1
	for i := len(snaps) - 1; i >= 0; i-- {
		id := snaps[i]
		if id.run != run {
			continue
		}
		name := snapName(id)
		data, rerr := os.ReadFile(filepath.Join(s.dir, name))
		if rerr != nil {
			rec.Report = append(rec.Report, fmt.Sprintf("%s: unreadable (%v); trying older", name, rerr))
			continue
		}
		st, srun, derr := DecodeSnapshot(data)
		if derr != nil {
			rec.Report = append(rec.Report, fmt.Sprintf("%s: rejected (%v); trying older", name, derr))
			continue
		}
		if srun != run || st.Decisions != id.seq {
			rec.Report = append(rec.Report, fmt.Sprintf("%s: embedded run %d / decision count %d do not match file name; trying older", name, srun, st.Decisions))
			continue
		}
		rec.State = st
		base = id.seq
		rec.Report = append(rec.Report, fmt.Sprintf("%s: loaded", name))
		break
	}
	if base < 0 {
		// Rung 2: no snapshot survived, but a journal rooted at decision 0
		// replays this lineage in full from a cold state.
		root := fileID{run: run, seq: 0}
		if !hasID(journals, root) || !s.journalHeaderIntact(root) {
			rec.Report = append(rec.Report, fmt.Sprintf("run %d: no intact snapshot and no replayable epoch-0 journal; trying older run", run))
			return false
		}
		rec.Report = append(rec.Report, fmt.Sprintf("run %d: no intact snapshot; replaying journal from decision 0", run))
		base = 0
	}

	// Rung 3: the contiguous journal chain of this run from the base.
	expected := base
	for _, j := range journals {
		if j.run != run || j.seq < expected {
			continue
		}
		if j.seq > expected {
			rec.Report = append(rec.Report, fmt.Sprintf("%s: epoch gap (want %d); stopping replay", journalName(j), expected))
			break
		}
		entries, clean := s.readJournal(j, rec)
		rec.Tail = append(rec.Tail, entries...)
		expected += len(entries)
		if !clean {
			break
		}
	}
	// A dedup marker records the decision count *after* its batch; one that
	// exceeds what this lineage actually recovers would promise decisions
	// the replay cannot reproduce. (Cannot happen with ordered appends —
	// markers follow their batch's entries — but recovery never trusts
	// ordering it didn't verify.)
	kept := rec.Dedups[:0]
	for _, mark := range rec.Dedups {
		if mark.Decisions <= expected {
			kept = append(kept, mark)
		}
	}
	rec.Dedups = kept
	return true
}

func hasID(ids []fileID, want fileID) bool {
	for _, id := range ids {
		if id == want {
			return true
		}
	}
	return false
}

// journalHeaderIntact reports whether a journal file opens with a valid
// header naming the expected run and epoch.
func (s *Store) journalHeaderIntact(id fileID) bool {
	data, err := os.ReadFile(filepath.Join(s.dir, journalName(id)))
	if err != nil {
		return false
	}
	kind, payload, _, err := readRecord(data)
	if err != nil || kind != recordJournalHeader {
		return false
	}
	hd := &dec{b: payload}
	run, epoch := hd.int(), hd.int()
	return hd.done() == nil && run == id.run && epoch == id.seq
}

// readJournal reads one journal file, validating the header and collecting
// entries until the first torn or corrupt record. clean reports whether the
// file was consumed without any defect (so a following epoch may continue
// the chain).
func (s *Store) readJournal(id fileID, rec *Recovery) (entries []Observation, clean bool) {
	name := journalName(id)
	data, err := os.ReadFile(filepath.Join(s.dir, name))
	if err != nil {
		rec.Report = append(rec.Report, fmt.Sprintf("%s: unreadable (%v)", name, err))
		return nil, false
	}
	kind, payload, size, err := readRecord(data)
	if err != nil || kind != recordJournalHeader {
		rec.Report = append(rec.Report, fmt.Sprintf("%s: bad header; ignoring file", name))
		return nil, false
	}
	hd := &dec{b: payload}
	run, epoch := hd.int(), hd.int()
	if hd.done() != nil || run != id.run || epoch != id.seq {
		rec.Report = append(rec.Report, fmt.Sprintf("%s: header run/epoch mismatch; ignoring file", name))
		return nil, false
	}
	data = data[size:]
	for len(data) > 0 {
		kind, payload, size, err = readRecord(data)
		if err != nil {
			rec.Report = append(rec.Report, fmt.Sprintf("%s: torn tail after %d entries (%v)", name, len(entries), err))
			return entries, false
		}
		switch kind {
		case recordJournalEntry:
			d := &dec{b: payload}
			obs := decodeObservation(d)
			if d.done() != nil {
				rec.Report = append(rec.Report, fmt.Sprintf("%s: malformed entry after %d entries", name, len(entries)))
				return entries, false
			}
			entries = append(entries, obs)
		case recordDedupMark:
			d := &dec{b: payload}
			mark := decodeDedupEntry(d)
			if d.done() != nil {
				rec.Report = append(rec.Report, fmt.Sprintf("%s: malformed dedup marker after %d entries", name, len(entries)))
				return entries, false
			}
			rec.Dedups = append(rec.Dedups, mark)
		case recordDedupWindow:
			window, werr := decodeDedupWindow(payload)
			if werr != nil {
				rec.Report = append(rec.Report, fmt.Sprintf("%s: malformed dedup window after %d entries (%v)", name, len(entries), werr))
				return entries, false
			}
			// A window record is the full state at its rotation: it
			// supersedes anything accumulated from older epochs.
			rec.Dedups = append(rec.Dedups[:0], window...)
		default:
			rec.Report = append(rec.Report, fmt.Sprintf("%s: unexpected record kind %d after %d entries", name, kind, len(entries)))
			return entries, false
		}
		data = data[size:]
	}
	rec.Report = append(rec.Report, fmt.Sprintf("%s: replayed %d entries", name, len(entries)))
	return entries, true
}
