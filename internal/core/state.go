package core

import (
	"errors"
	"fmt"
	"math"

	"moe/internal/evolve"
	"moe/internal/expert"
	"moe/internal/features"
	"moe/internal/regress"
	"moe/internal/stats"
)

// ErrPoolMismatch reports a snapshot whose expert pool cannot be overlaid
// on the live mixture: the counts differ and the snapshot carries no pool
// composition to rebuild from (or carries one the mixture's configuration
// cannot accept). Callers distinguish it from corruption with errors.Is.
var ErrPoolMismatch = errors.New("core: snapshot pool does not match mixture pool")

// Checkpoint state export/import. The mixture's entire *online* state — the
// selector's learned partition, per-expert health records, sensor trust,
// the pending predictions awaiting their observation, and the analysis
// bookkeeping — is representable as plain data, so a process can snapshot
// it, die, and resume with the accumulated learning intact. What is
// deliberately NOT here: the experts themselves (offline artifacts,
// reconstructed from training or an expert file) and construction-time
// constants (learning rate, penalty weights, decay factors). Restore
// therefore overlays state onto a mixture that was constructed identically
// to the one exported from; structural mismatches (pool size, selector
// kind) are rejected.
//
// Everything in these structs is primitive (floats, ints, bools, slices)
// so internal/checkpoint can serialize it without importing expert types.

// SelectorState is the tagged union of the selector implementations'
// mutable state. Kind matches Selector.Name() and selects which fields are
// meaningful.
type SelectorState struct {
	// Kind is the selector's Name(): "hyperplane", "accuracy-ema",
	// "fixed", or "random".
	Kind string

	// Hyperplane fields (also reused by accuracy-ema: ErrEMA/ErrSeen).
	Theta     [][]float64
	Mean      []float64
	M2        []float64
	Count     float64
	Misses    int
	Votes     int
	ErrEMA    []float64
	ErrSeen   []bool
	ScaleEMA  float64
	Incumbent int

	// Random-selector stream state.
	RandState uint64
}

// ExpertHealthState is one expert's quarantine record.
type ExpertHealthState struct {
	State       int // healthState ordinal
	ErrEMA      float64
	Seen        bool
	CoolLeft    int
	CleanLeft   int
	Quarantines int
}

// TrustState is the sensor-trust layer's memory.
type TrustState struct {
	LastFeat  []float64 // features.Dim values when HaveFeat
	HaveFeat  bool
	LastProc  float64
	HaveProc  bool
	ProcChurn float64
	Suspects  int
}

// EnvPredictionState is one pending environment prediction in primitive
// form.
type EnvPredictionState struct {
	Norm     float64
	HasVec   bool
	Vec      []float64 // features.EnvDim values when HasVec
	HasSigma bool
	Sigma    []float64 // features.EnvDim values when HasSigma
}

// MixtureState is the complete online state of a Mixture.
type MixtureState struct {
	// Experts is the pool size the state was exported from; restore
	// requires an identical pool size.
	Experts  int
	Selector SelectorState
	Health   []ExpertHealthState
	Trust    TrustState

	PendingValid bool
	PendingFeat  []float64 // features.Dim values when PendingValid
	PendingPred  []EnvPredictionState

	Selections   map[int]int
	ThreadHist   map[int]int
	Accurate     []int
	Observations []int
	MixAccurate  int
	MixObserved  int
	ErrSum       []float64
	ObsNormSum   float64
	Sanitized    int
	Rerouted     int
	Fallback     int

	// Evolution, when non-nil, is the online-lifecycle state: the pool's
	// composition and lineage plus the emitter bookkeeping. Restoring a
	// state that carries it REBUILDS the pool to the recorded composition;
	// nil states require matching pool sizes, as before evolution existed.
	Evolution *EvolutionState
}

// PoolMemberState records one live expert for the snapshot. Seed experts
// (present at construction) are stored as an index into the construction
// pool — their models are offline artifacts the restoring process already
// has. Evolved experts ARE online state: their whole Table-1 genome rides
// in the snapshot.
type PoolMemberState struct {
	// SeedIndex is the expert's index in the construction pool, or -1 for
	// an evolved expert.
	SeedIndex int
	// Name is recorded for both kinds: it cross-checks seed identity and
	// names evolved members.
	Name string
	// BornAt is the lifecycle decision count at birth (0 for seeds).
	BornAt int
	// Parents are the names of the experts this member was bred from
	// (evolved members only).
	Parents []string

	// Evolved-member genome (unused when SeedIndex >= 0).
	TrainedOn    string
	MaxThreads   int
	ThreadCoeffs []float64 // features.Dim weights + bias
	EnvCoeffs    []float64
	FeatMean     []float64 // features.Dim training statistics
	FeatStd      []float64
}

// EvolutionState is the lifecycle's complete mutable state.
type EvolutionState struct {
	RNG            uint64
	Decisions      int
	Births         int
	Retirements    int
	Epoch          int
	RetiredSel     int
	PendingThreads int

	// Pool is the live pool composition, in expert-index order.
	Pool []PoolMemberState

	// Refit history, oldest-to-newest; HistFeat is n·features.Dim values.
	HistFeat    []float64
	HistNorm    []float64
	HistThreads []int
	HistRate    []float64

	// Niche bookkeeping, k·expert.NicheCount row-major.
	NicheSel  []int
	NicheErr  []float64
	NicheSeen []bool
}

// ExportState captures the mixture's full online state as plain data. The
// returned value shares no memory with the mixture; mutating it cannot
// corrupt a live policy.
func (m *Mixture) ExportState() (*MixtureState, error) {
	sel, err := exportSelector(m.selector)
	if err != nil {
		return nil, err
	}
	k := len(m.experts)
	st := &MixtureState{
		Experts:      k,
		Selector:     sel,
		Health:       make([]ExpertHealthState, k),
		Trust:        exportTrust(&m.trust),
		Selections:   m.selections.Counts(),
		ThreadHist:   m.threadHist.Counts(),
		Accurate:     append([]int(nil), m.accurate...),
		Observations: append([]int(nil), m.observations...),
		MixAccurate:  m.mixAccurate,
		MixObserved:  m.mixObserved,
		ErrSum:       append([]float64(nil), m.errSum...),
		ObsNormSum:   m.obsNormSum,
		Sanitized:    m.sanitized,
		Rerouted:     m.rerouted,
		Fallback:     m.fallback,
	}
	for i, e := range m.health.experts {
		st.Health[i] = ExpertHealthState{
			State:       int(e.state),
			ErrEMA:      e.errEMA,
			Seen:        e.seen,
			CoolLeft:    e.coolLeft,
			CleanLeft:   e.cleanLeft,
			Quarantines: e.quarantines,
		}
	}
	if m.pendingValid {
		st.PendingValid = true
		st.PendingFeat = append([]float64(nil), m.pendingFeat[:]...)
		st.PendingPred = make([]EnvPredictionState, len(m.pendingPred))
		for i, p := range m.pendingPred {
			st.PendingPred[i] = exportPrediction(p)
		}
	}
	if m.evo != nil {
		ev, err := m.exportEvolution()
		if err != nil {
			return nil, err
		}
		st.Evolution = ev
	}
	return st, nil
}

// exportEvolution captures the lifecycle state, including the full genome
// of every evolved pool member.
func (m *Mixture) exportEvolution() (*EvolutionState, error) {
	e := m.evo
	st := &EvolutionState{
		RNG:            e.rng.State(),
		Decisions:      e.decisions,
		Births:         e.births,
		Retirements:    e.retirements,
		Epoch:          e.epoch,
		RetiredSel:     e.retiredSel,
		PendingThreads: e.pendingThreads,
		Pool:           make([]PoolMemberState, len(m.experts)),
	}
	for i, ex := range m.experts {
		mem := PoolMemberState{
			SeedIndex: e.seedIdx[i],
			Name:      ex.Name,
			BornAt:    e.born[i],
			Parents:   append([]string(nil), e.parents[i]...),
		}
		if e.seedIdx[i] < 0 {
			env := expert.NormEnv(ex)
			if env == nil {
				return nil, fmt.Errorf("core: evolved expert %q is not Table-1 form", ex.Name)
			}
			mem.TrainedOn = ex.TrainedOn
			mem.MaxThreads = ex.MaxThreads
			mem.ThreadCoeffs = ex.Threads.Coefficients()
			mem.EnvCoeffs = env.Coefficients()
			mem.FeatMean = append([]float64(nil), ex.FeatMean[:]...)
			mem.FeatStd = append([]float64(nil), ex.FeatStd[:]...)
		}
		st.Pool[i] = mem
	}
	for _, s := range e.hist.Export() {
		st.HistFeat = append(st.HistFeat, s.Feat[:]...)
		st.HistNorm = append(st.HistNorm, s.NextNorm)
		st.HistThreads = append(st.HistThreads, s.Threads)
		st.HistRate = append(st.HistRate, s.Rate)
	}
	st.NicheSel, st.NicheErr, st.NicheSeen = e.niche.Export()
	return st, nil
}

// RestoreState overlays a previously exported state onto a mixture that was
// constructed identically (same construction pool, same selector kind). It
// validates structure and finiteness and refuses garbage rather than
// adopting it; on error the mixture is unchanged.
//
// Pool-size mismatches: a state carrying Evolution (exported from an
// evolving mixture) REBUILDS the live pool to the recorded composition —
// seed members resolved by index into the construction pool, evolved
// members reconstructed from their snapshot genomes — so restore works
// across any number of births and retirements. A state without Evolution
// requires the sizes to match and otherwise fails with ErrPoolMismatch.
func (m *Mixture) RestoreState(st *MixtureState) error {
	m.fastPrimed = false
	if st == nil {
		return fmt.Errorf("core: nil mixture state")
	}

	// Resolve the pool the state describes.
	pool := m.experts
	if st.Evolution != nil {
		if m.evo == nil {
			return fmt.Errorf("%w: snapshot carries an evolving pool but evolution is disabled", ErrPoolMismatch)
		}
		var err error
		if pool, err = m.rebuildPool(st.Evolution); err != nil {
			return err
		}
		if st.Experts != len(pool) {
			return fmt.Errorf("core: state for %d experts, pool composition holds %d", st.Experts, len(pool))
		}
	} else if st.Experts != len(m.experts) {
		return fmt.Errorf("%w: state for %d experts, mixture has %d", ErrPoolMismatch, st.Experts, len(m.experts))
	}
	k := len(pool)
	if len(st.Health) != k || len(st.Accurate) != k || len(st.Observations) != k || len(st.ErrSum) != k {
		return fmt.Errorf("core: per-expert state lengths do not match pool size %d", k)
	}
	for i, h := range st.Health {
		if h.State < int(healthOK) || h.State > int(healthProbation) {
			return fmt.Errorf("core: expert %d: invalid health state %d", i, h.State)
		}
		if !finite(h.ErrEMA) || h.ErrEMA < 0 || h.CoolLeft < 0 || h.CleanLeft < 0 || h.Quarantines < 0 {
			return fmt.Errorf("core: expert %d: invalid health record", i)
		}
	}
	for i := 0; i < k; i++ {
		if st.Accurate[i] < 0 || st.Observations[i] < 0 || st.Accurate[i] > st.Observations[i] {
			return fmt.Errorf("core: expert %d: invalid accuracy counters", i)
		}
		if !finite(st.ErrSum[i]) || st.ErrSum[i] < 0 {
			return fmt.Errorf("core: expert %d: invalid error sum", i)
		}
	}
	if st.MixAccurate < 0 || st.MixObserved < 0 || st.MixAccurate > st.MixObserved {
		return fmt.Errorf("core: invalid mixture accuracy counters")
	}
	if !finite(st.ObsNormSum) || st.ObsNormSum < 0 ||
		st.Sanitized < 0 || st.Rerouted < 0 || st.Fallback < 0 {
		return fmt.Errorf("core: invalid bookkeeping counters")
	}
	if err := validateCounts(st.Selections); err != nil {
		return fmt.Errorf("core: selections histogram: %w", err)
	}
	if err := validateCounts(st.ThreadHist); err != nil {
		return fmt.Errorf("core: thread histogram: %w", err)
	}
	if err := validateTrust(&st.Trust); err != nil {
		return err
	}
	if st.PendingValid {
		if len(st.PendingFeat) != features.Dim {
			return fmt.Errorf("core: pending state has %d features, want %d", len(st.PendingFeat), features.Dim)
		}
		for _, v := range st.PendingFeat {
			if !finite(v) {
				return fmt.Errorf("core: non-finite pending feature")
			}
		}
		if len(st.PendingPred) != k {
			return fmt.Errorf("core: %d pending predictions for %d experts", len(st.PendingPred), k)
		}
		for i := range st.PendingPred {
			if err := validatePrediction(&st.PendingPred[i]); err != nil {
				return fmt.Errorf("core: pending prediction %d: %w", i, err)
			}
		}
	}
	// Validate the selector state against the resolved pool size; the
	// apply below is infallible, so any error above leaves the mixture —
	// selector included — untouched.
	if err := validateSelectorState(m.selector, &st.Selector, k); err != nil {
		return err
	}
	if st.Evolution != nil {
		if err := validateEvolution(st.Evolution, k); err != nil {
			return err
		}
	}

	// Commit. Nothing below can fail: every structure is rebuilt at the
	// resolved size and filled from the validated state.
	poolChanged := k != len(m.experts)
	m.experts = pool
	resizeSelector(m.selector, k)
	applySelectorState(m.selector, &st.Selector)
	if poolChanged {
		m.health = newHealthTracker(k)
		m.accurate = make([]int, k)
		m.observations = make([]int, k)
		m.errSum = make([]float64, k)
		m.poolShapeChanged()
	}
	for i := range m.health.experts {
		h := st.Health[i]
		m.health.experts[i] = expertHealth{
			state:       healthState(h.State),
			errEMA:      h.ErrEMA,
			seen:        h.Seen,
			coolLeft:    h.CoolLeft,
			cleanLeft:   h.CleanLeft,
			quarantines: h.Quarantines,
		}
	}
	restoreTrust(&m.trust, &st.Trust)
	m.selections = stats.NewHistogramFromCounts(st.Selections)
	m.threadHist = stats.NewHistogramFromCounts(st.ThreadHist)
	copy(m.accurate, st.Accurate)
	copy(m.observations, st.Observations)
	m.mixAccurate = st.MixAccurate
	m.mixObserved = st.MixObserved
	copy(m.errSum, st.ErrSum)
	m.obsNormSum = st.ObsNormSum
	m.sanitized = st.Sanitized
	m.rerouted = st.Rerouted
	m.fallback = st.Fallback

	m.pendingValid = st.PendingValid
	if st.PendingValid {
		copy(m.pendingFeat[:], st.PendingFeat)
		m.pendingPred = make([]expert.EnvPrediction, k)
		for i, p := range st.PendingPred {
			m.pendingPred[i] = restorePrediction(p)
		}
	} else {
		m.pendingFeat = features.Vector{}
		m.pendingPred = nil
	}
	if m.evo != nil {
		if st.Evolution != nil {
			m.restoreEvolution(st.Evolution, k)
		} else {
			// A frozen-era snapshot into an evolving mixture: the pool
			// matches, the lifecycle restarts from scratch.
			m.evo = newEvolutionState(m.evo.cfg, k)
		}
	}
	return nil
}

// rebuildPool reconstructs the live pool from a snapshot composition: seed
// members by index into the construction pool (cross-checked by name),
// evolved members from their serialized Table-1 genomes.
func (m *Mixture) rebuildPool(ev *EvolutionState) (expert.Set, error) {
	if len(ev.Pool) == 0 {
		return nil, fmt.Errorf("core: evolution state holds an empty pool composition")
	}
	pool := make(expert.Set, len(ev.Pool))
	for i, mem := range ev.Pool {
		if mem.SeedIndex >= 0 {
			if mem.SeedIndex >= len(m.baseline) {
				return nil, fmt.Errorf("core: pool member %d references construction expert %d, pool has %d", i, mem.SeedIndex, len(m.baseline))
			}
			base := m.baseline[mem.SeedIndex]
			if mem.Name != base.Name {
				return nil, fmt.Errorf("core: pool member %d names %q, construction expert %d is %q", i, mem.Name, mem.SeedIndex, base.Name)
			}
			pool[i] = base
			continue
		}
		wm, err := regress.FromCoefficients(mem.ThreadCoeffs)
		if err != nil {
			return nil, fmt.Errorf("core: pool member %d (%s): thread predictor: %w", i, mem.Name, err)
		}
		em, err := regress.FromCoefficients(mem.EnvCoeffs)
		if err != nil {
			return nil, fmt.Errorf("core: pool member %d (%s): environment predictor: %w", i, mem.Name, err)
		}
		if len(mem.FeatMean) != features.Dim || len(mem.FeatStd) != features.Dim {
			return nil, fmt.Errorf("core: pool member %d (%s): training statistics have wrong dimensionality", i, mem.Name)
		}
		for j := 0; j < features.Dim; j++ {
			if !finite(mem.FeatMean[j]) || !finite(mem.FeatStd[j]) || mem.FeatStd[j] < 0 {
				return nil, fmt.Errorf("core: pool member %d (%s): invalid training statistics", i, mem.Name)
			}
		}
		ex := &expert.Expert{
			Name:       mem.Name,
			Threads:    wm,
			Env:        expert.NormEnvModel{Model: em},
			MaxThreads: mem.MaxThreads,
			TrainedOn:  mem.TrainedOn,
		}
		copy(ex.FeatMean[:], mem.FeatMean)
		copy(ex.FeatStd[:], mem.FeatStd)
		if err := ex.Validate(); err != nil {
			return nil, fmt.Errorf("core: pool member %d: %w", i, err)
		}
		pool[i] = ex
	}
	if err := pool.Validate(); err != nil {
		return nil, fmt.Errorf("core: rebuilt pool: %w", err)
	}
	return pool, nil
}

// validateEvolution structure-checks a lifecycle state against the resolved
// pool size.
func validateEvolution(ev *EvolutionState, k int) error {
	if ev.Decisions < 0 || ev.Births < 0 || ev.Retirements < 0 || ev.Epoch < 0 ||
		ev.RetiredSel < 0 || ev.PendingThreads < 0 {
		return fmt.Errorf("core: invalid evolution counters")
	}
	n := len(ev.HistNorm)
	if len(ev.HistFeat) != n*features.Dim || len(ev.HistThreads) != n || len(ev.HistRate) != n {
		return fmt.Errorf("core: evolution history arrays disagree")
	}
	for _, v := range ev.HistFeat {
		if !finite(v) {
			return fmt.Errorf("core: non-finite evolution history feature")
		}
	}
	for i := 0; i < n; i++ {
		if !finite(ev.HistNorm[i]) || !finite(ev.HistRate[i]) || ev.HistThreads[i] < 0 {
			return fmt.Errorf("core: invalid evolution history sample %d", i)
		}
	}
	nk := k * expert.NicheCount
	if len(ev.NicheSel) != nk || len(ev.NicheErr) != nk || len(ev.NicheSeen) != nk {
		return fmt.Errorf("core: evolution niche matrices do not match pool size %d", k)
	}
	for i := 0; i < nk; i++ {
		if ev.NicheSel[i] < 0 || !finite(ev.NicheErr[i]) {
			return fmt.Errorf("core: invalid evolution niche record")
		}
	}
	for i, mem := range ev.Pool {
		if mem.BornAt < 0 || mem.BornAt > ev.Decisions {
			return fmt.Errorf("core: pool member %d born at %d, lifecycle at %d", i, mem.BornAt, ev.Decisions)
		}
	}
	return nil
}

// restoreEvolution rebuilds the lifecycle state; the caller has validated
// everything against the resolved pool size k.
func (m *Mixture) restoreEvolution(ev *EvolutionState, k int) {
	e := newEvolutionState(m.evo.cfg, k)
	e.rng.SetState(ev.RNG)
	e.decisions = ev.Decisions
	e.births = ev.Births
	e.retirements = ev.Retirements
	e.epoch = ev.Epoch
	e.retiredSel = ev.RetiredSel
	e.pendingThreads = ev.PendingThreads
	for i, mem := range ev.Pool {
		e.seedIdx[i] = mem.SeedIndex
		e.born[i] = mem.BornAt
		if len(mem.Parents) > 0 {
			e.parents[i] = append([]string(nil), mem.Parents...)
		} else {
			e.parents[i] = nil
		}
	}
	samples := make([]evolve.Sample, len(ev.HistNorm))
	for i := range samples {
		copy(samples[i].Feat[:], ev.HistFeat[i*features.Dim:(i+1)*features.Dim])
		samples[i].NextNorm = ev.HistNorm[i]
		samples[i].Threads = ev.HistThreads[i]
		samples[i].Rate = ev.HistRate[i]
	}
	e.hist.Restore(samples)
	e.niche = evolve.NewNicheStatsFrom(k, ev.NicheSel, ev.NicheErr, ev.NicheSeen)
	m.evo = e
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func validateCounts(counts map[int]int) error {
	for bin, c := range counts {
		if c < 0 {
			return fmt.Errorf("negative count %d in bin %d", c, bin)
		}
	}
	return nil
}

// --- selector state ---

func exportSelector(s Selector) (SelectorState, error) {
	switch sel := s.(type) {
	case *HyperplaneSelector:
		st := SelectorState{
			Kind:      sel.Name(),
			Theta:     sel.Hyperplanes(),
			Mean:      append([]float64(nil), sel.mean[:]...),
			M2:        append([]float64(nil), sel.m2[:]...),
			Count:     sel.count,
			Misses:    sel.misses,
			Votes:     sel.votes,
			ErrEMA:    append([]float64(nil), sel.errEMA...),
			ErrSeen:   append([]bool(nil), sel.errSeen...),
			ScaleEMA:  sel.scaleEMA,
			Incumbent: sel.incumbent,
		}
		return st, nil
	case *AccuracySelector:
		return SelectorState{
			Kind:    sel.Name(),
			ErrEMA:  append([]float64(nil), sel.ema...),
			ErrSeen: append([]bool(nil), sel.seen...),
		}, nil
	case FixedSelector:
		return SelectorState{Kind: sel.Name()}, nil
	case *RandomSelector:
		return SelectorState{Kind: sel.Name(), RandState: sel.state}, nil
	default:
		return SelectorState{}, fmt.Errorf("core: selector %q is not checkpointable", s.Name())
	}
}

// validateSelectorState is the fallible half of selector restoration: it
// checks st against selector s and pool size k without touching s, so a
// caller can validate everything before committing anything. k may differ
// from s's current size — resizeSelector reconciles that at commit time.
func validateSelectorState(s Selector, st *SelectorState, k int) error {
	if st.Kind != s.Name() {
		return fmt.Errorf("core: state for selector %q, mixture uses %q", st.Kind, s.Name())
	}
	switch s.(type) {
	case *HyperplaneSelector:
		if len(st.Theta) != k {
			return fmt.Errorf("core: %d hyperplanes for %d experts", len(st.Theta), k)
		}
		for i, row := range st.Theta {
			if len(row) != features.Dim+1 {
				return fmt.Errorf("core: hyperplane %d has %d weights, want %d", i, len(row), features.Dim+1)
			}
			for _, v := range row {
				if !finite(v) {
					return fmt.Errorf("core: non-finite hyperplane weight")
				}
			}
		}
		if len(st.Mean) != features.Dim || len(st.M2) != features.Dim {
			return fmt.Errorf("core: standardization statistics have wrong dimensionality")
		}
		for i := 0; i < features.Dim; i++ {
			if !finite(st.Mean[i]) || !finite(st.M2[i]) || st.M2[i] < 0 {
				return fmt.Errorf("core: invalid standardization statistics")
			}
		}
		if !finite(st.Count) || st.Count < 0 || st.Misses < 0 || st.Votes < 0 || st.Misses > st.Votes {
			return fmt.Errorf("core: invalid selector counters")
		}
		if len(st.ErrEMA) != k || len(st.ErrSeen) != k {
			return fmt.Errorf("core: selector accuracy state has wrong pool size")
		}
		for _, v := range st.ErrEMA {
			if !finite(v) {
				return fmt.Errorf("core: non-finite selector error EMA")
			}
		}
		if !finite(st.ScaleEMA) || st.Incumbent < -1 || st.Incumbent >= k {
			return fmt.Errorf("core: invalid selector scale or incumbent")
		}
		return nil
	case *AccuracySelector:
		if len(st.ErrEMA) != k || len(st.ErrSeen) != k {
			return fmt.Errorf("core: accuracy selector state has wrong pool size")
		}
		for _, v := range st.ErrEMA {
			if !finite(v) {
				return fmt.Errorf("core: non-finite accuracy EMA")
			}
		}
		return nil
	case FixedSelector:
		return nil
	case *RandomSelector:
		if st.RandState == 0 {
			return fmt.Errorf("core: zero random-selector state")
		}
		return nil
	default:
		return fmt.Errorf("core: selector %q is not checkpointable", s.Name())
	}
}

// resizeSelector reshapes s to track k experts, discarding per-expert
// learned state when the size actually changes (applySelectorState
// immediately overwrites it from the snapshot). A no-op at the current
// size. FixedSelector has no per-expert state to reshape.
func resizeSelector(s Selector, k int) {
	switch sel := s.(type) {
	case *HyperplaneSelector:
		if sel.k == k {
			return
		}
		theta := make([][]float64, k)
		for i := range theta {
			theta[i] = make([]float64, features.Dim+1)
		}
		sel.k = k
		sel.theta = theta
		sel.errEMA = make([]float64, k)
		sel.errSeen = make([]bool, k)
		sel.incumbent = -1
	case *AccuracySelector:
		if len(sel.ema) != k {
			sel.ema = make([]float64, k)
			sel.seen = make([]bool, k)
		}
	case *RandomSelector:
		sel.K = k
	}
}

// applySelectorState is the infallible half of selector restoration: the
// state has passed validateSelectorState against s's (post-resize) size.
func applySelectorState(s Selector, st *SelectorState) {
	switch sel := s.(type) {
	case *HyperplaneSelector:
		for i, row := range st.Theta {
			copy(sel.theta[i], row)
		}
		copy(sel.mean[:], st.Mean)
		copy(sel.m2[:], st.M2)
		sel.count = st.Count
		sel.misses = st.Misses
		sel.votes = st.Votes
		copy(sel.errEMA, st.ErrEMA)
		copy(sel.errSeen, st.ErrSeen)
		sel.scaleEMA = st.ScaleEMA
		sel.incumbent = st.Incumbent
	case *AccuracySelector:
		copy(sel.ema, st.ErrEMA)
		copy(sel.seen, st.ErrSeen)
	case *RandomSelector:
		sel.state = st.RandState
	}
}

// --- trust state ---

func exportTrust(t *sensorTrust) TrustState {
	st := TrustState{
		HaveFeat:  t.haveFeat,
		LastProc:  t.lastProc,
		HaveProc:  t.haveProc,
		ProcChurn: t.procChurn,
		Suspects:  t.suspects,
	}
	if t.haveFeat {
		st.LastFeat = append([]float64(nil), t.lastFeat[:]...)
	}
	return st
}

func validateTrust(st *TrustState) error {
	if st.HaveFeat {
		if len(st.LastFeat) != features.Dim {
			return fmt.Errorf("core: trust state has %d features, want %d", len(st.LastFeat), features.Dim)
		}
		for _, v := range st.LastFeat {
			if !finite(v) {
				return fmt.Errorf("core: non-finite trusted feature")
			}
		}
	}
	if !finite(st.LastProc) || !finite(st.ProcChurn) || st.ProcChurn < 0 || st.Suspects < 0 {
		return fmt.Errorf("core: invalid trust state")
	}
	return nil
}

func restoreTrust(t *sensorTrust, st *TrustState) {
	*t = sensorTrust{
		haveFeat:  st.HaveFeat,
		lastProc:  st.LastProc,
		haveProc:  st.HaveProc,
		procChurn: st.ProcChurn,
		suspects:  st.Suspects,
	}
	if st.HaveFeat {
		copy(t.lastFeat[:], st.LastFeat)
	}
}

// --- pending predictions ---

func exportPrediction(p expert.EnvPrediction) EnvPredictionState {
	st := EnvPredictionState{Norm: p.Norm, HasVec: p.HasVec}
	if p.HasVec {
		v := p.Vec
		st.Vec = []float64{v.WorkloadThreads, v.Processors, v.RunQueue, v.Load1, v.Load5, v.CachedMem, v.PageFreeRate}
		if p.Sigma != nil {
			st.HasSigma = true
			st.Sigma = append([]float64(nil), p.Sigma[:]...)
		}
	}
	return st
}

// validatePrediction bounds-checks a pending prediction. Non-finite values
// are allowed here — a snapshot taken while a corrupt expert was pending
// must round-trip exactly, and the scoring path already handles them.
func validatePrediction(st *EnvPredictionState) error {
	if st.HasVec && len(st.Vec) != features.EnvDim {
		return fmt.Errorf("prediction vector has %d dimensions, want %d", len(st.Vec), features.EnvDim)
	}
	if st.HasSigma {
		if !st.HasVec {
			return fmt.Errorf("sigma without vector")
		}
		if len(st.Sigma) != features.EnvDim {
			return fmt.Errorf("sigma has %d dimensions, want %d", len(st.Sigma), features.EnvDim)
		}
	}
	return nil
}

func restorePrediction(st EnvPredictionState) expert.EnvPrediction {
	p := expert.EnvPrediction{Norm: st.Norm, HasVec: st.HasVec}
	if st.HasVec {
		p.Vec = features.Env{
			WorkloadThreads: st.Vec[0],
			Processors:      st.Vec[1],
			RunQueue:        st.Vec[2],
			Load1:           st.Vec[3],
			Load5:           st.Vec[4],
			CachedMem:       st.Vec[5],
			PageFreeRate:    st.Vec[6],
		}
		if st.HasSigma {
			var sigma [features.EnvDim]float64
			copy(sigma[:], st.Sigma)
			p.Sigma = &sigma
		}
	}
	return p
}
