package expert

import (
	"encoding/json"
	"fmt"
	"os"

	"moe/internal/atomicio"
	"moe/internal/features"
	"moe/internal/regress"
)

// Persistence: trained experts serialize to JSON so the one-off training
// cost (§5.2.1) is paid once and the coefficients ship with an application,
// exactly as the paper ships Table 1.

// expertJSON is the serialized form of one expert.
type expertJSON struct {
	Name       string      `json:"name"`
	TrainedOn  string      `json:"trained_on"`
	MaxThreads int         `json:"max_threads"`
	Threads    []float64   `json:"threads"` // w coefficients + bias
	Speedup    []float64   `json:"speedup,omitempty"`
	EnvNorm    []float64   `json:"env_norm,omitempty"` // norm-model coefficients
	EnvVec     [][]float64 `json:"env_vec,omitempty"`  // per-dimension coefficients
	EnvSigma   []float64   `json:"env_sigma,omitempty"`
	FeatMean   []float64   `json:"feat_mean"`
	FeatStd    []float64   `json:"feat_std"`
}

type setJSON struct {
	// Version guards the format for future changes.
	Version int          `json:"version"`
	Experts []expertJSON `json:"experts"`
}

// MarshalSet serializes an expert set to JSON.
func MarshalSet(s Set) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	out := setJSON{Version: 1}
	for _, e := range s {
		if e.HeuristicFn != nil {
			return nil, fmt.Errorf("expert: %s wraps a hand-written heuristic, which cannot be serialized (only its linear shim would survive)", e.Name)
		}
		ej := expertJSON{
			Name:       e.Name,
			TrainedOn:  e.TrainedOn,
			MaxThreads: e.MaxThreads,
			Threads:    e.Threads.Coefficients(),
			FeatMean:   e.FeatMean[:],
			FeatStd:    e.FeatStd[:],
		}
		if e.Speedup != nil {
			ej.Speedup = e.Speedup.Model.Coefficients()
		}
		switch env := e.Env.(type) {
		case NormEnvModel:
			ej.EnvNorm = env.Model.Coefficients()
		case VectorEnvModel:
			for _, m := range env.Models {
				ej.EnvVec = append(ej.EnvVec, m.Coefficients())
			}
			ej.EnvSigma = env.Sigma[:]
		default:
			return nil, fmt.Errorf("expert: cannot serialize environment model %T", e.Env)
		}
		out.Experts = append(out.Experts, ej)
	}
	return json.MarshalIndent(out, "", "  ")
}

// UnmarshalSet reconstructs an expert set from JSON.
func UnmarshalSet(data []byte) (Set, error) {
	var in setJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("expert: parsing expert set: %w", err)
	}
	if in.Version != 1 {
		return nil, fmt.Errorf("expert: unsupported expert-set version %d", in.Version)
	}
	var set Set
	for i, ej := range in.Experts {
		w, err := regress.FromCoefficients(ej.Threads)
		if err != nil {
			return nil, fmt.Errorf("expert %d (%s): thread model: %w", i, ej.Name, err)
		}
		e := &Expert{
			Name:       ej.Name,
			TrainedOn:  ej.TrainedOn,
			MaxThreads: ej.MaxThreads,
			Threads:    w,
		}
		copy(e.FeatMean[:], ej.FeatMean)
		copy(e.FeatStd[:], ej.FeatStd)
		if len(ej.Speedup) > 0 {
			sm, err := regress.FromCoefficients(ej.Speedup)
			if err != nil {
				return nil, fmt.Errorf("expert %d (%s): speedup model: %w", i, ej.Name, err)
			}
			e.Speedup = &SpeedupModel{Model: sm}
		}
		switch {
		case len(ej.EnvVec) > 0:
			if len(ej.EnvVec) != features.EnvDim {
				return nil, fmt.Errorf("expert %d (%s): %d env dimensions, want %d", i, ej.Name, len(ej.EnvVec), features.EnvDim)
			}
			var vm VectorEnvModel
			for d, co := range ej.EnvVec {
				m, err := regress.FromCoefficients(co)
				if err != nil {
					return nil, fmt.Errorf("expert %d (%s): env dim %d: %w", i, ej.Name, d, err)
				}
				vm.Models[d] = m
			}
			copy(vm.Sigma[:], ej.EnvSigma)
			e.Env = vm
		case len(ej.EnvNorm) > 0:
			m, err := regress.FromCoefficients(ej.EnvNorm)
			if err != nil {
				return nil, fmt.Errorf("expert %d (%s): env model: %w", i, ej.Name, err)
			}
			e.Env = NormEnvModel{Model: m}
		default:
			return nil, fmt.Errorf("expert %d (%s): no environment model", i, ej.Name)
		}
		if err := e.Validate(); err != nil {
			return nil, err
		}
		set = append(set, e)
	}
	if err := set.Validate(); err != nil {
		return nil, err
	}
	return set, nil
}

// SaveSet writes an expert set to a JSON file. The write is atomic (temp
// file + fsync + rename), so a crash mid-save can never leave a torn model
// file behind — readers see the old set or the new one, nothing in between.
func SaveSet(s Set, path string) error {
	data, err := MarshalSet(s)
	if err != nil {
		return err
	}
	return atomicio.WriteFile(path, data, 0o644)
}

// LoadSet reads an expert set from a JSON file.
func LoadSet(path string) (Set, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("expert: reading %s: %w", path, err)
	}
	return UnmarshalSet(data)
}
