package experiments

import (
	"fmt"

	"moe/internal/sim"
	"moe/internal/stats"
	"moe/internal/trace"
	"moe/internal/workload"
)

// Portability addresses the paper's stated future work (§9): "To ensure
// portability and robustness of our approach, we also plan to evaluate on
// alternative hardware platforms." The experts stay trained on the 12- and
// 32-core platforms; evaluation runs on machines the models never saw. The
// mixture must degrade gracefully — the out-of-distribution machinery
// (speedup-surface extrapolation, applicability gating) exists for exactly
// this case.
func (l *Lab) Portability(sc Scale) (*Table, error) {
	platforms := []struct {
		label string
		cfg   sim.MachineConfig
	}{
		{"32-core (trained)", sim.Eval32()},
		{"16-core (unseen)", sim.MachineConfig{Cores: 16, MemoryGB: 32}},
		{"48-core (unseen)", sim.MachineConfig{Cores: 48, MemoryGB: 96}},
	}
	t := &Table{
		Title:   "Portability (§9) — mixture speedup over default on unseen platforms (small workload, low frequency)",
		Columns: policyColumns(BaselinePolicies),
	}
	// The platform override travels inside each ScenarioSpec (never by
	// mutating l.Eval), so scenarios on different machines are free to run
	// concurrently.
	sets := workload.Sets(workload.Small)
	nc := len(sc.Targets) * len(sets)
	for _, pl := range platforms {
		pl := pl
		cells, err := grid(l, nc, func(i int) (map[PolicyName]float64, error) {
			si := i % len(sets)
			spec := ScenarioSpec{
				Target:   sc.Targets[i/len(sets)],
				Workload: sets[si].Programs,
				HWFreq:   trace.LowFrequency,
				Seed:     sc.Seed + uint64(si)*7907,
				Machine:  &pl.cfg,
			}
			sp, _, err := l.scenarioSpeedups(spec, BaselinePolicies, sc.Repeats)
			if err != nil {
				return nil, fmt.Errorf("experiments: portability on %s: %w", pl.label, err)
			}
			return sp, nil
		})
		if err != nil {
			return nil, err
		}
		per := make(map[PolicyName][]float64)
		for _, sp := range cells {
			for _, n := range BaselinePolicies {
				per[n] = append(per[n], sp[n])
			}
		}
		vals := make([]float64, len(BaselinePolicies))
		for i, n := range BaselinePolicies {
			vals[i] = stats.HMean(per[n])
		}
		t.AddRow(pl.label, vals...)
	}
	t.Notes = append(t.Notes,
		"experts remain trained on the 12-/32-core platforms; unseen machines exercise the out-of-distribution path")
	return t, nil
}
