// Package exec is the real-execution backend: actual goroutine worker
// pools running compute-, memory- and synchronization-bound kernels, tuned
// by the same policies the simulator evaluates. It is the repository's
// GOMAXPROCS-tuning analog — the library deciding, per parallel region, how
// many workers a Go program should fan out to, from live runtime metrics.
package exec

import (
	"math"
	"sync"

	"moe/internal/features"
)

// Kernel is one parallel computation: Process handles a contiguous item
// range on one worker.
type Kernel interface {
	// Name identifies the kernel.
	Name() string
	// Code returns the static features of the kernel's loop (f1–f3
	// analog, normalized like the simulator's catalog entries).
	Code() features.Code
	// Process computes items [lo, hi).
	Process(lo, hi int)
}

// RunRegion executes items [0, n) across `workers` goroutines with a final
// join — one OpenMP-style parallel region.
func RunRegion(k Kernel, items, workers int) {
	if workers < 1 {
		workers = 1
	}
	if workers > items {
		workers = items
	}
	if workers <= 1 {
		k.Process(0, items)
		return
	}
	var wg sync.WaitGroup
	chunk := (items + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > items {
			hi = items
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			k.Process(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// BlackScholes is the compute-bound kernel: option pricing with the
// Black–Scholes closed form, the blackscholes workload of Parsec (§6.2).
type BlackScholes struct {
	Spot, Strike, Rate, Vol, T []float64
	Out                        []float64
}

// NewBlackScholes builds a pricing problem of n options with deterministic
// pseudo-random parameters.
func NewBlackScholes(n int) *BlackScholes {
	b := &BlackScholes{
		Spot:   make([]float64, n),
		Strike: make([]float64, n),
		Rate:   make([]float64, n),
		Vol:    make([]float64, n),
		T:      make([]float64, n),
		Out:    make([]float64, n),
	}
	state := uint64(0x9e3779b97f4a7c15)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / (1 << 53)
	}
	for i := 0; i < n; i++ {
		b.Spot[i] = 50 + 100*next()
		b.Strike[i] = 50 + 100*next()
		b.Rate[i] = 0.01 + 0.05*next()
		b.Vol[i] = 0.1 + 0.5*next()
		b.T[i] = 0.25 + 2*next()
	}
	return b
}

// Name implements Kernel.
func (*BlackScholes) Name() string { return "blackscholes" }

// Code implements Kernel: compute-bound, few memory operations.
func (*BlackScholes) Code() features.Code {
	return features.Code{LoadStore: 0.024, Instructions: 0.1, Branches: 0.008}
}

// Process implements Kernel.
func (b *BlackScholes) Process(lo, hi int) {
	for i := lo; i < hi; i++ {
		s, k, r, v, t := b.Spot[i], b.Strike[i], b.Rate[i], b.Vol[i], b.T[i]
		sq := v * math.Sqrt(t)
		d1 := (math.Log(s/k) + (r+v*v/2)*t) / sq
		d2 := d1 - sq
		b.Out[i] = s*cnd(d1) - k*math.Exp(-r*t)*cnd(d2)
	}
}

// cnd is the cumulative normal distribution (Abramowitz–Stegun 26.2.17).
func cnd(x float64) float64 {
	neg := x < 0
	if neg {
		x = -x
	}
	k := 1 / (1 + 0.2316419*x)
	poly := k * (0.319381530 + k*(-0.356563782+k*(1.781477937+k*(-1.821255978+k*1.330274429))))
	c := 1 - math.Exp(-x*x/2)/math.Sqrt(2*math.Pi)*poly
	if neg {
		return 1 - c
	}
	return c
}

// SparseMatVec is the memory-bound kernel: sparse matrix–vector product
// with irregular access, the cg workload analog.
type SparseMatVec struct {
	RowPtr []int
	Col    []int
	Val    []float64
	X, Y   []float64
}

// NewSparseMatVec builds an n-row sparse matrix with nnzPerRow random
// nonzeros per row.
func NewSparseMatVec(n, nnzPerRow int) *SparseMatVec {
	m := &SparseMatVec{
		RowPtr: make([]int, n+1),
		Col:    make([]int, n*nnzPerRow),
		Val:    make([]float64, n*nnzPerRow),
		X:      make([]float64, n),
		Y:      make([]float64, n),
	}
	state := uint64(0xdeadbeefcafef00d)
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 33
	}
	for i := 0; i < n; i++ {
		m.RowPtr[i] = i * nnzPerRow
		for j := 0; j < nnzPerRow; j++ {
			m.Col[i*nnzPerRow+j] = int(next() % uint64(n))
			m.Val[i*nnzPerRow+j] = 1 / float64(j+1)
		}
		m.X[i] = float64(i%97) / 97
	}
	m.RowPtr[n] = n * nnzPerRow
	return m
}

// Name implements Kernel.
func (*SparseMatVec) Name() string { return "spmv" }

// Code implements Kernel: memory-bound with irregular access.
func (*SparseMatVec) Code() features.Code {
	return features.Code{LoadStore: 0.066, Instructions: 0.1, Branches: 0.009}
}

// Process implements Kernel: rows are the items.
func (m *SparseMatVec) Process(lo, hi int) {
	for i := lo; i < hi; i++ {
		sum := 0.0
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			sum += m.Val[k] * m.X[m.Col[k]]
		}
		m.Y[i] = sum
	}
}

// Stencil is the synchronization-sensitive kernel: a 1-D 3-point stencil
// sweep; every region is a full sweep with a barrier at the join, the
// mg/lu workload analog.
type Stencil struct {
	A, B []float64
}

// NewStencil builds a grid of n points.
func NewStencil(n int) *Stencil {
	s := &Stencil{A: make([]float64, n), B: make([]float64, n)}
	for i := range s.A {
		s.A[i] = float64(i % 13)
	}
	return s
}

// Name implements Kernel.
func (*Stencil) Name() string { return "stencil" }

// Code implements Kernel: streaming memory with moderate compute.
func (*Stencil) Code() features.Code {
	return features.Code{LoadStore: 0.06, Instructions: 0.1, Branches: 0.006}
}

// Process implements Kernel.
func (s *Stencil) Process(lo, hi int) {
	n := len(s.A)
	for i := lo; i < hi; i++ {
		left, right := i-1, i+1
		if left < 0 {
			left = 0
		}
		if right >= n {
			right = n - 1
		}
		s.B[i] = 0.25*s.A[left] + 0.5*s.A[i] + 0.25*s.A[right]
	}
}

// Swap exchanges the stencil buffers between sweeps.
func (s *Stencil) Swap() { s.A, s.B = s.B, s.A }
