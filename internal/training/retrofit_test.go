package training

import (
	"testing"

	"moe/internal/core"
	"moe/internal/expert"
	"moe/internal/features"
	"moe/internal/sim"
)

func TestSlotHeuristic(t *testing.T) {
	state := func(avail, ext float64) features.Vector {
		var f features.Vector
		f[features.Processors] = avail
		f[features.WorkloadThreads] = ext
		return f
	}
	// Isolated: claim the whole machine.
	if got := SlotHeuristic(state(32, 0)); got != 32 {
		t.Errorf("isolated = %d, want 32", got)
	}
	// One saturated co-runner: claim about half.
	if got := SlotHeuristic(state(32, 32)); got != 16 {
		t.Errorf("one co-runner = %d, want 16", got)
	}
	// Heavy load: small slot.
	if got := SlotHeuristic(state(32, 192)); got > 6 || got < 2 {
		t.Errorf("heavy load = %d, want a small slot", got)
	}
	// Degenerate availability.
	if got := SlotHeuristic(state(0, 100)); got != 1 {
		t.Errorf("zero processors = %d, want 1", got)
	}
}

func TestRetrofit(t *testing.T) {
	ds := tinyDataset(t)
	e, err := Retrofit("H", SlotHeuristic, ds, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	// The heuristic keeps full authority over thread counts.
	var f features.Vector
	f[features.Processors] = 32
	f[features.WorkloadThreads] = 32
	if got := e.PredictThreads(f, 0); got != SlotHeuristic(f) {
		t.Errorf("retrofitted expert predicts %d, heuristic says %d", got, SlotHeuristic(f))
	}
	// The environment predictor exists and produces vector forecasts.
	p := e.PredictEnv(ds.Samples[0].Features)
	if !p.HasVec {
		t.Error("retrofitted environment predictor should be the vector model")
	}
	// Feature statistics were fitted (the selector's applicability
	// gating needs them).
	if e.FeatStd[features.Processors] <= 0 {
		t.Error("missing feature statistics")
	}
}

func TestRetrofitValidation(t *testing.T) {
	ds := tinyDataset(t)
	if _, err := Retrofit("H", nil, ds, 32); err == nil {
		t.Error("nil heuristic should error")
	}
	if _, err := Retrofit("H", SlotHeuristic, &DataSet{}, 32); err == nil {
		t.Error("empty dataset should error")
	}
	if _, err := Retrofit("H", SlotHeuristic, ds, 0); err == nil {
		t.Error("zero cap should error")
	}
}

func TestRetrofittedExpertJoinsMixture(t *testing.T) {
	// The §9 extension: a hand-written analytic model selected by the
	// mixture approach. Build 4 trained experts + the retrofitted
	// heuristic and run the 5-expert mixture.
	ds := tinyDataset(t)
	set, err := BuildExperts4(ds)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Retrofit("H", SlotHeuristic, ds, 32)
	if err != nil {
		t.Fatal(err)
	}
	pool := append(expert.Set{}, set...)
	pool = append(pool, h)
	m, err := core.NewMixture(pool, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range ds.Samples[:50] {
		n := m.Decide(decisionAt(s.Features, i))
		if n < 1 || n > 32 {
			t.Fatalf("5-expert mixture produced %d threads", n)
		}
	}
	st := m.Snapshot()
	if len(st.SelectionFraction) != 5 {
		t.Errorf("selection fractions for %d experts", len(st.SelectionFraction))
	}
}

// decisionAt wraps a feature vector as a minimal decision context.
func decisionAt(f features.Vector, i int) sim.Decision {
	return sim.Decision{
		Time:           float64(i) * 0.5,
		Features:       f,
		MaxThreads:     32,
		AvailableProcs: int(f[features.Processors]),
	}
}
