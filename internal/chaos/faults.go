package chaos

import (
	"fmt"
	"math"

	"moe/internal/features"
	"moe/internal/sim"
	"moe/internal/trace"
)

// The concrete fault kinds. Each models one way the observation path fails
// in production, graded by a severity knob so studies can sweep from
// annoyance to catastrophe. All of them perturb only environment signals —
// the code features f1–f3 come from the compiler, not from runtime sensors,
// and faulting them would model a different (and far less plausible)
// failure.

// FeatureNoise adds zero-mean Gaussian noise to every environment feature,
// scaled to each feature's own magnitude — the signature of a jittery or
// undersampled /proc reader. Sigma is the relative noise level (0.3 means
// ±30% swings are routine).
type FeatureNoise struct {
	Sigma float64
}

// Name implements Fault.
func (FeatureNoise) Name() string { return "feature-noise" }

// Apply implements Fault.
func (n FeatureNoise) Apply(d *sim.Decision, rng *trace.RNG) {
	for i := features.EnvStart; i < features.Dim; i++ {
		scale := math.Abs(d.Features[i])
		if scale < 1 {
			scale = 1
		}
		d.Features[i] += n.Sigma * scale * rng.Norm()
	}
}

// Dropout models a sensor daemon that stops producing samples. With Stale
// set it replays the last environment it saw before failing — the
// monitoring pipeline kept serving its cache — otherwise the reader returns
// zeros. Either way the policy's picture of the system freezes or blanks
// while the real machine keeps moving.
type Dropout struct {
	// Stale selects frozen-sample mode; false zeroes the environment.
	Stale bool

	frozen features.Env
	have   bool
}

// Name implements Fault.
func (f *Dropout) Name() string {
	if f.Stale {
		return "stale-dropout"
	}
	return "zero-dropout"
}

// Apply implements Fault. In stale mode the first perturbed decision's
// environment is captured and replayed for the rest of the run — the cache
// never refreshes while the daemon is down.
func (f *Dropout) Apply(d *sim.Decision, _ *trace.RNG) {
	var e features.Env
	if f.Stale {
		if !f.have {
			f.frozen = d.Features.EnvPart()
			f.have = true
		}
		e = f.frozen
	}
	c := d.Features.CodePart()
	d.Features = features.Combine(c, e)
}

// Corrupt injects non-finite values — the raw material of crashed parsers
// and uninitialized shared memory. Each active decision, every environment
// feature is independently replaced with NaN, +Inf or −Inf with probability
// Prob, and the progress rate is corrupted at the same odds. This is the
// fault the degradation ladder exists for: anything downstream that
// arithmetics on an observation without sanitizing it will propagate NaN
// into its models.
type Corrupt struct {
	Prob float64
}

// Name implements Fault.
func (Corrupt) Name() string { return "nan-corruption" }

// Apply implements Fault.
func (c Corrupt) Apply(d *sim.Decision, rng *trace.RNG) {
	for i := features.EnvStart; i < features.Dim; i++ {
		if rng.Float64() < c.Prob {
			d.Features[i] = nonFinite(rng)
		}
	}
	if rng.Float64() < c.Prob {
		d.Rate = nonFinite(rng)
	}
}

// nonFinite picks uniformly among NaN, +Inf and −Inf.
func nonFinite(rng *trace.RNG) float64 {
	switch rng.Intn(3) {
	case 0:
		return math.NaN()
	case 1:
		return math.Inf(1)
	default:
		return math.Inf(-1)
	}
}

// ClockSkew perturbs the decision clock by a uniform offset in
// ±MaxSkew seconds — an NTP step or a VM migration. The skew is resampled
// every decision, so time as the policy sees it jitters and runs backwards.
type ClockSkew struct {
	MaxSkew float64
}

// Name implements Fault.
func (ClockSkew) Name() string { return "clock-skew" }

// Apply implements Fault.
func (c ClockSkew) Apply(d *sim.Decision, rng *trace.RNG) {
	d.Time += rng.Range(-c.MaxSkew, c.MaxSkew)
	if d.Time < 0 {
		d.Time = 0
	}
}

// HotplugStorm reports a different processor availability at every
// decision — rapid oscillation between 1 and MaxProcs, as if cores were
// being hotplugged far faster than any governor would. Both the
// AvailableProcs field and the f5 feature move together, the way a real
// sysfs reader would see it.
type HotplugStorm struct {
	MaxProcs int
}

// Name implements Fault.
func (HotplugStorm) Name() string { return "hotplug-storm" }

// Apply implements Fault.
func (h HotplugStorm) Apply(d *sim.Decision, rng *trace.RNG) {
	max := h.MaxProcs
	if max < 1 {
		max = d.MaxThreads
	}
	if max < 1 {
		max = 1
	}
	p := rng.IntRange(1, max)
	d.AvailableProcs = p
	d.Features[features.Processors] = float64(p)
}

// RateBlackout zeroes the progress-rate signal — the instrumentation that
// measures work completed went dark, so rate-reactive policies (online
// search, the analytic model's feedback) fly blind while model-driven ones
// shouldn't care.
type RateBlackout struct{}

// Name implements Fault.
func (RateBlackout) Name() string { return "rate-blackout" }

// Apply implements Fault.
func (RateBlackout) Apply(d *sim.Decision, _ *trace.RNG) {
	d.Rate = 0
}

// Kinds returns the canonical fault-kind names, in study order. Each name
// is accepted by NewKindFault.
func Kinds() []string {
	return []string{
		"feature-noise",
		"zero-dropout",
		"stale-dropout",
		"nan-corruption",
		"clock-skew",
		"hotplug-storm",
		"rate-blackout",
	}
}

// NewKindFault builds the canonical scheduled instance of a named fault
// kind at study severity: after a short clean lead-in the fault pulses on
// and off in equal 20-second windows — long enough for quarantine and
// recovery to both play out repeatedly, dense enough (~50% duty) that an
// unprotected policy visibly degrades. maxProcs bounds the hotplug storm
// (use the evaluation machine's core count).
func NewKindFault(kind string, maxProcs int) (ScheduledFault, error) {
	sched := Pulse(5, 20, 40)
	switch kind {
	case "feature-noise":
		return ScheduledFault{Fault: FeatureNoise{Sigma: 0.6}, Schedule: sched}, nil
	case "zero-dropout":
		return ScheduledFault{Fault: &Dropout{}, Schedule: sched}, nil
	case "stale-dropout":
		return ScheduledFault{Fault: &Dropout{Stale: true}, Schedule: sched}, nil
	case "nan-corruption":
		return ScheduledFault{Fault: Corrupt{Prob: 0.5}, Schedule: sched}, nil
	case "clock-skew":
		return ScheduledFault{Fault: ClockSkew{MaxSkew: 40}, Schedule: sched}, nil
	case "hotplug-storm":
		return ScheduledFault{Fault: HotplugStorm{MaxProcs: maxProcs}, Schedule: sched}, nil
	case "rate-blackout":
		return ScheduledFault{Fault: RateBlackout{}, Schedule: sched}, nil
	default:
		return ScheduledFault{}, fmt.Errorf("chaos: unknown fault kind %q", kind)
	}
}
