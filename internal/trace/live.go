package trace

import (
	"fmt"
	"math"
)

// LivePoint is one sample of system activity in a live trace: how many
// workload threads are running and how many processors are up. Fig 1 plots
// exactly this signal ("number of threads vs. time") over 50 hours of a
// production HPC system.
type LivePoint struct {
	Time    float64 // seconds since trace start
	Threads int     // total workload threads active
	Procs   int     // processors available
}

// LiveTrace is a synthetic reproduction of the Fig 1 production log: bursty
// thread activity with quiet valleys, diurnal swell, and occasional capacity
// loss. The §7.5 case study replays a window of it scaled to the evaluation
// machine.
type LiveTrace struct {
	points []LivePoint
	period float64
}

// LiveConfig parameterizes trace synthesis.
type LiveConfig struct {
	Duration   float64 // total seconds (paper: 50 h = 180000 s)
	SamplePerd float64 // seconds between samples
	MaxThreads int     // peak workload thread population
	MaxProcs   int     // full machine capacity
	// FailureAt/FailureLen model the observed hardware failure where half
	// the processors were unavailable for two hours (§7.5). Zero disables.
	FailureAt  float64
	FailureLen float64
}

// DefaultLiveConfig mirrors the paper's observation window: 50 hours of
// activity on a machine with thousands of hardware contexts, including the
// two-hour half-capacity outage, sampled every 10 s.
func DefaultLiveConfig() LiveConfig {
	return LiveConfig{
		Duration:   50 * 3600,
		SamplePerd: 10,
		MaxThreads: 5824, // paper: 5824 hardware contexts
		MaxProcs:   2912, // paper: 2912 cores
		FailureAt:  30 * 3600,
		FailureLen: 2 * 3600,
	}
}

// GenerateLive synthesizes a live trace. The signal combines a diurnal
// component, bursts with exponentially distributed lifetimes, and noise;
// this reproduces the qualitative structure of Fig 1 (highly dynamic, with
// both saturated and idle periods).
func GenerateLive(rng *RNG, cfg LiveConfig) (*LiveTrace, error) {
	if cfg.Duration <= 0 || cfg.SamplePerd <= 0 {
		return nil, fmt.Errorf("trace: live config needs positive duration and sample period")
	}
	if cfg.MaxThreads <= 0 || cfg.MaxProcs <= 0 {
		return nil, fmt.Errorf("trace: live config needs positive thread and processor capacity")
	}
	n := int(cfg.Duration/cfg.SamplePerd) + 1
	points := make([]LivePoint, 0, n)

	// Burst process: jobs arrive in clumps and hold threads for a while.
	type burst struct {
		threads int
		until   float64
	}
	var bursts []burst
	baseline := float64(cfg.MaxThreads) * 0.15

	for i := 0; i < n; i++ {
		t := float64(i) * cfg.SamplePerd

		// Diurnal swell with a 24h period.
		diurnal := 0.25 * float64(cfg.MaxThreads) * (0.5 + 0.5*math.Sin(2*math.Pi*t/86400-math.Pi/2))

		// Spawn new bursts at random; heavier bursts are rarer.
		if rng.Float64() < 0.05 {
			size := int(rng.Exp(float64(cfg.MaxThreads) * 0.12))
			if size > 0 {
				bursts = append(bursts, burst{
					threads: size,
					until:   t + rng.Exp(1200), // mean 20-minute jobs
				})
			}
		}
		active := 0
		alive := bursts[:0]
		for _, b := range bursts {
			if b.until > t {
				active += b.threads
				alive = append(alive, b)
			}
		}
		bursts = alive

		noise := rng.Norm() * float64(cfg.MaxThreads) * 0.02
		threads := int(baseline + diurnal + float64(active) + noise)
		if threads < 0 {
			threads = 0
		}
		if threads > cfg.MaxThreads {
			threads = cfg.MaxThreads
		}

		procs := cfg.MaxProcs
		if cfg.FailureLen > 0 && t >= cfg.FailureAt && t < cfg.FailureAt+cfg.FailureLen {
			procs = cfg.MaxProcs / 2
		}
		points = append(points, LivePoint{Time: t, Threads: threads, Procs: procs})
	}
	return &LiveTrace{points: points, period: cfg.SamplePerd}, nil
}

// Points returns the samples (shared slice; callers must not mutate).
func (l *LiveTrace) Points() []LivePoint { return l.points }

// Len returns the number of samples.
func (l *LiveTrace) Len() int { return len(l.points) }

// At returns the sample covering virtual time t (the last sample at or
// before t).
func (l *LiveTrace) At(t float64) LivePoint {
	if len(l.points) == 0 {
		return LivePoint{}
	}
	idx := int(t / l.period)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(l.points) {
		idx = len(l.points) - 1
	}
	return l.points[idx]
}

// Window extracts the samples in [from, to) rebased to start at time 0.
// §3 zooms into the window around the 175,000th second; §7.5 replays such a
// window scaled down to the evaluation platform.
func (l *LiveTrace) Window(from, to float64) []LivePoint {
	var out []LivePoint
	for _, p := range l.points {
		if p.Time >= from && p.Time < to {
			out = append(out, LivePoint{Time: p.Time - from, Threads: p.Threads, Procs: p.Procs})
		}
	}
	return out
}

// ScaleTo rescales a window of the live trace onto a machine with maxProcs
// processors, "where the number of workload threads was scaled down in
// proportion with the maximum number of processors" (§7.5). It returns a
// hardware trace plus the workload-thread target at each sample.
func ScaleTo(points []LivePoint, maxProcs int) (*HardwareTrace, []LivePoint, error) {
	if len(points) == 0 {
		return nil, nil, fmt.Errorf("trace: empty live window")
	}
	if maxProcs <= 0 {
		return nil, nil, fmt.Errorf("trace: maxProcs must be positive, got %d", maxProcs)
	}
	origMax := 0
	for _, p := range points {
		if p.Procs > origMax {
			origMax = p.Procs
		}
	}
	if origMax == 0 {
		return nil, nil, fmt.Errorf("trace: live window has no processors")
	}
	scale := float64(maxProcs) / float64(origMax)
	events := make([]HardwareEvent, 0, len(points))
	scaled := make([]LivePoint, 0, len(points))
	lastProcs := -1
	for _, p := range points {
		procs := int(math.Round(float64(p.Procs) * scale))
		if procs < 1 {
			procs = 1
		}
		threads := int(math.Round(float64(p.Threads) * scale))
		scaled = append(scaled, LivePoint{Time: p.Time, Threads: threads, Procs: procs})
		if procs != lastProcs {
			events = append(events, HardwareEvent{Time: p.Time, Processors: procs})
			lastProcs = procs
		}
	}
	hw, err := NewHardwareTrace(events)
	if err != nil {
		return nil, nil, err
	}
	return hw, scaled, nil
}
