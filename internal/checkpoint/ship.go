package checkpoint

import (
	"encoding/binary"
	"fmt"
)

// Replication shipping. A Store can be given a shipper hook that observes
// every durable artifact the store commits locally — whole snapshot files,
// journal rotations, and individual journal records — as self-describing
// Shipments, in exactly the order they became durable. A standby that
// applies the same shipments into its own directory holds a byte-equivalent
// lineage: the snapshot payloads and journal record frames are the very
// bytes the primary wrote, CRC framing included, so the receiving side
// (Applier) re-validates everything with the same machinery recovery uses.
//
// The hook is synchronous and must not block on the network: internal/
// replica buffers shipments per tenant and flushes them in batch-atomic
// groups after the batch commit (see Primary.Flush).

// ShipKind says what a Shipment carries.
type ShipKind byte

const (
	// ShipSnapshot carries a complete snapshot file: Data is the framed,
	// checksummed snapshot record; Run/Seq are its lineage and decision
	// count (the file name fields).
	ShipSnapshot ShipKind = 1
	// ShipJournalOpen announces a fresh journal epoch: Data is the framed
	// header record; Run/Seq name the journal file. It resets the record
	// index for the epoch.
	ShipJournalOpen ShipKind = 2
	// ShipJournalRecord carries one framed journal record (an observation
	// entry or a dedup record) appended to the journal Run/Seq at position
	// Index (0-based, counting every post-header record).
	ShipJournalRecord ShipKind = 3
)

func (k ShipKind) String() string {
	switch k {
	case ShipSnapshot:
		return "snapshot"
	case ShipJournalOpen:
		return "journal-open"
	case ShipJournalRecord:
		return "journal-record"
	default:
		return fmt.Sprintf("ship-kind-%d", byte(k))
	}
}

// Shipment is one durable artifact on its way to a standby.
type Shipment struct {
	Kind  ShipKind
	Run   int // lineage stamp (file name run field)
	Seq   int // snapshot decision count / journal epoch
	Index int // record position within the epoch (ShipJournalRecord only)
	Data  []byte
}

// SetShipper installs (or clears, with nil) the replication hook. It must
// be set before the store's first write, for the same reason as SetMetrics:
// the field is read by the write paths without synchronization. The hook
// receives each artifact after it is locally durable and before the write
// call returns; the Data slice must not be retained past the call without
// copying — the store may reuse buffers. (internal/replica copies.)
func (s *Store) SetShipper(fn func(Shipment)) { s.shipper = fn }

func (s *Store) ship(kind ShipKind, run, seq, index int, data []byte) {
	if s.shipper == nil {
		return
	}
	s.shipper(Shipment{Kind: kind, Run: run, Seq: seq, Index: index, Data: data})
}

// maxShipData bounds a decoded shipment payload: a framed record is at most
// maxRecordPayload plus framing overhead.
const maxShipData = maxRecordPayload + 64

// EncodeShipment appends sh's wire form to b and returns the result. The
// wire form is a plain length-prefixed envelope — the payload inside is
// already CRC-framed, and the transport (HTTP) is reliable, so the envelope
// needs ordering fields only:
//
//	kind  byte
//	run   uvarint
//	seq   uvarint
//	index uvarint
//	len   uvarint
//	data  [len]byte
func EncodeShipment(b []byte, sh Shipment) []byte {
	b = append(b, byte(sh.Kind))
	b = binary.AppendUvarint(b, uint64(sh.Run))
	b = binary.AppendUvarint(b, uint64(sh.Seq))
	b = binary.AppendUvarint(b, uint64(sh.Index))
	b = binary.AppendUvarint(b, uint64(len(sh.Data)))
	b = append(b, sh.Data...)
	return b
}

// DecodeShipments parses a concatenation of EncodeShipment envelopes,
// strictly: trailing or truncated bytes are an error (a truncated HTTP body
// must reject the whole group, never apply a prefix silently). The Data
// slices alias b.
func DecodeShipments(b []byte) ([]Shipment, error) {
	var out []Shipment
	for len(b) > 0 {
		sh, rest, err := decodeShipment(b)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: shipment %d: %w", len(out), err)
		}
		out = append(out, sh)
		b = rest
	}
	return out, nil
}

func decodeShipment(b []byte) (Shipment, []byte, error) {
	var sh Shipment
	if len(b) < 1 {
		return sh, nil, errTruncated
	}
	sh.Kind = ShipKind(b[0])
	switch sh.Kind {
	case ShipSnapshot, ShipJournalOpen, ShipJournalRecord:
	default:
		return sh, nil, fmt.Errorf("unknown ship kind %d", b[0])
	}
	b = b[1:]
	uvarint := func() (uint64, error) {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			return 0, errTruncated
		}
		b = b[n:]
		return v, nil
	}
	run, err := uvarint()
	if err != nil {
		return sh, nil, err
	}
	seq, err := uvarint()
	if err != nil {
		return sh, nil, err
	}
	index, err := uvarint()
	if err != nil {
		return sh, nil, err
	}
	n, err := uvarint()
	if err != nil {
		return sh, nil, err
	}
	if n > maxShipData {
		return sh, nil, fmt.Errorf("shipment payload %d exceeds limit %d", n, maxShipData)
	}
	if uint64(len(b)) < n {
		return sh, nil, errTruncated
	}
	if run > uint64(maxFileSeq) || seq > uint64(maxFileSeq) || index > uint64(maxFileSeq) {
		return sh, nil, fmt.Errorf("shipment ordinal out of range")
	}
	sh.Run, sh.Seq, sh.Index = int(run), int(seq), int(index)
	sh.Data = b[:n]
	return sh, b[n:], nil
}

// maxFileSeq bounds run/seq/index ordinals decoded off the wire; file names
// carry at most seqDigits decimal digits anyway.
const maxFileSeq = 1e12 - 1

// --- Dedup records ---

// DedupEntry is one remembered idempotent request: the request ID a client
// presented, the runtime's decision count after its batch, and the thread
// decisions that were acked for it. The serving layer journals a dedup
// marker per identified batch (recordDedupMark) and the store seeds every
// fresh journal epoch with the full current window (recordDedupWindow), so
// recovery — local restart or standby promotion — reconstructs the window
// and a retried request returns its original decisions instead of
// re-advancing runtime state.
type DedupEntry struct {
	ID        string
	Decisions int
	Threads   []int
}

// maxRequestIDLen bounds request IDs on disk and on the wire.
const maxRequestIDLen = 256

func encodeDedupEntry(e *enc, d *DedupEntry) {
	e.str(d.ID)
	e.int(d.Decisions)
	e.ints(d.Threads)
}

func decodeDedupEntry(d *dec) DedupEntry {
	var out DedupEntry
	out.ID = d.str(maxRequestIDLen)
	out.Decisions = d.int()
	out.Threads = d.ints()
	return out
}

func encodeDedupWindow(entries []DedupEntry) []byte {
	e := &enc{}
	e.u64(uint64(len(entries)))
	for i := range entries {
		encodeDedupEntry(e, &entries[i])
	}
	return e.b
}

func decodeDedupWindow(payload []byte) ([]DedupEntry, error) {
	d := &dec{b: payload}
	n := d.length(3) // ID len + decisions + threads len, at least a byte each
	if d.err != nil {
		return nil, d.err
	}
	out := make([]DedupEntry, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, decodeDedupEntry(d))
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return out, nil
}

// AppendDedup journals one dedup marker in the current epoch. Markers ride
// the same journal as observation entries — and ship to the standby in the
// same ordered stream — so the window a recovery reconstructs is exactly
// consistent with the decisions it replays.
func (s *Store) AppendDedup(entry DedupEntry) error {
	if len(entry.ID) > maxRequestIDLen {
		return fmt.Errorf("checkpoint: request ID of %d bytes exceeds %d", len(entry.ID), maxRequestIDLen)
	}
	e := &enc{}
	encodeDedupEntry(e, &entry)
	return s.appendJournal(recordDedupMark, e.b)
}

// SetDedupWindowSource installs a callback that returns the current dedup
// window (oldest first). When set, every journal rotation writes the full
// window as the epoch's first record after the header, so markers journaled
// before the rotation's snapshot are not lost when recovery starts at that
// snapshot. Set it before the store's first write.
//
// The callback runs inside the store's write path (under whatever lock the
// writer holds — the Runtime's mutex, for an attached store); it must not
// call back into the runtime or block.
func (s *Store) SetDedupWindowSource(fn func() []DedupEntry) { s.dedupSource = fn }
