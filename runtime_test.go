package moe_test

import (
	"sync"
	"testing"

	"moe"
)

func TestRuntimeConcurrentDecide(t *testing.T) {
	m, err := moe.NewMixture(moe.CanonicalExperts())
	if err != nil {
		t.Fatal(err)
	}
	rt, err := moe.NewRuntime(m, 16)
	if err != nil {
		t.Fatal(err)
	}
	f := moe.CombineFeatures(
		moe.CodeFeatures{LoadStore: 0.05, Instructions: 0.1, Branches: 0.01},
		moe.EnvFeatures{Processors: 16, WorkloadThreads: 8, RunQueue: 2, Load1: 18, Load5: 16, CachedMem: 4, PageFreeRate: 0.1},
	)
	var wg sync.WaitGroup
	const goroutines, perG = 8, 50
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				n := rt.Decide(moe.Observation{Time: float64(g*perG + i), Features: f})
				if n < 1 || n > 16 {
					t.Errorf("decision %d out of range", n)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := rt.Decisions(); got != goroutines*perG {
		t.Errorf("decisions = %d, want %d", got, goroutines*perG)
	}
	hist := rt.ThreadHistogram()
	sum := 0.0
	for _, frac := range hist {
		sum += frac
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("histogram fractions sum to %v", sum)
	}
}

func TestRuntimeClockMonotone(t *testing.T) {
	rt, err := moe.NewRuntime(moe.NewOnlinePolicy(), 8)
	if err != nil {
		t.Fatal(err)
	}
	var f moe.Features
	f[4] = 8 // processors
	// Out-of-order timestamps must not move the runtime's clock backwards
	// (stateful policies assume monotone time).
	rt.Decide(moe.Observation{Time: 100, Features: f})
	n := rt.Decide(moe.Observation{Time: 5, Features: f})
	if n < 1 || n > 8 {
		t.Errorf("decision %d out of range after clock regression", n)
	}
}

func TestRuntimeDerivesAvailFromFeatures(t *testing.T) {
	rt, err := moe.NewRuntime(moe.NewDefaultPolicy(), 32)
	if err != nil {
		t.Fatal(err)
	}
	var f moe.Features
	f[4] = 12 // f5: processors
	if n := rt.Decide(moe.Observation{Features: f}); n != 12 {
		t.Errorf("default policy through runtime = %d, want 12 (from f5)", n)
	}
	// Explicit AvailableProcs wins over the feature.
	if n := rt.Decide(moe.Observation{Features: f, AvailableProcs: 6}); n != 6 {
		t.Errorf("explicit avail = %d, want 6", n)
	}
	// No information at all: cap.
	var zero moe.Features
	if n := rt.Decide(moe.Observation{Features: zero}); n != 32 {
		t.Errorf("no processor info = %d, want the cap 32", n)
	}
}
