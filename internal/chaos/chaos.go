// Package chaos is a deterministic, seedable fault injector for the
// observation path. The simulator's engine hands every policy a
// sim.Decision describing what the sensors report — features, progress
// rate, clock, processor availability. In a real deployment each of those
// signals can fail independently of the program under control: /proc
// readers return garbage after an OS update, a monitoring daemon stalls and
// replays stale samples, clocks step backwards under NTP, processors
// hotplug in storms. This package reproduces those failures between the
// engine and the policy: an Injector wraps any sim.Policy and perturbs a
// copy of each Decision according to a set of scheduled faults before the
// wrapped policy sees it.
//
// Everything is deterministic given the injector seed: each scheduled
// fault draws from its own SplitMix64 stream (derived from the seed and the
// fault's position), and a fault's stream only advances while its schedule
// is active — which is itself a pure function of the decision clock. Two
// runs with the same seed, faults and decision sequence perturb
// identically, so chaos scenarios replay exactly (the property every
// experiment in this repository is built on) and can be pinned by golden
// traces.
//
// The injector perturbs only what policies observe. The engine's ground
// truth — the machine's real availability, the workload, the rate model —
// is untouched, so a policy's score under chaos measures exactly how much
// performance it loses to a lying sensor layer, not a different machine.
package chaos

import (
	"fmt"
	"strings"

	"moe/internal/sim"
	"moe/internal/telemetry"
	"moe/internal/trace"
)

// Schedule gates when a fault is active, as a function of the decision
// clock. The zero value is always active.
type Schedule struct {
	// Start is when the fault first becomes active (seconds).
	Start float64
	// Duration is how long each active window lasts; <= 0 means the fault
	// stays active indefinitely once started.
	Duration float64
	// Period repeats the active window every Period seconds after Start;
	// <= 0 means a single window. A periodic schedule with Duration >=
	// Period is permanently active after Start.
	Period float64
}

// ActiveAt reports whether the schedule is active at time t.
func (s Schedule) ActiveAt(t float64) bool {
	if t < s.Start {
		return false
	}
	if s.Duration <= 0 {
		return true
	}
	elapsed := t - s.Start
	if s.Period > 0 {
		for elapsed >= s.Period {
			elapsed -= s.Period
		}
	}
	return elapsed < s.Duration
}

// Always returns a schedule that is active from time zero on.
func Always() Schedule { return Schedule{} }

// Window returns a single active window [start, start+duration).
func Window(start, duration float64) Schedule {
	return Schedule{Start: start, Duration: duration}
}

// Pulse returns a periodic schedule: active for duration at the start of
// every period, beginning at start.
func Pulse(start, duration, period float64) Schedule {
	return Schedule{Start: start, Duration: duration, Period: period}
}

// Fault is one kind of sensor failure. Apply perturbs the decision in
// place, drawing any randomness it needs from rng — never from any other
// source, so injection stays replayable. Faults may keep internal state
// (e.g. the stale-sample fault remembers what it froze), which ties one
// Fault value to one injector; build fresh faults per run.
type Fault interface {
	// Name identifies the fault kind in reports and golden traces.
	Name() string
	// Apply perturbs the observation the wrapped policy is about to see.
	Apply(d *sim.Decision, rng *trace.RNG)
}

// ScheduledFault pairs a fault with its activation schedule.
type ScheduledFault struct {
	Fault    Fault
	Schedule Schedule
}

// Injector wraps a policy and perturbs every Decision it forwards. It
// implements sim.Policy; Name delegates to the wrapped policy so result
// tables line up whether or not a policy ran under chaos.
type Injector struct {
	inner    sim.Policy
	faults   []ScheduledFault
	rngs     []*trace.RNG
	applied  []int
	counters []*telemetry.Counter // per fault, nil until SetMetrics
}

// NewInjector builds an injector over inner. Each fault receives an
// independent random stream derived from seed and its position, so adding
// or reordering faults never silently re-randomizes the others' draws
// beyond their position change, and a single fault's perturbations are
// identical whether it runs alone or composed.
func NewInjector(inner sim.Policy, seed uint64, faults ...ScheduledFault) (*Injector, error) {
	if inner == nil {
		return nil, fmt.Errorf("chaos: nil inner policy")
	}
	for i, sf := range faults {
		if sf.Fault == nil {
			return nil, fmt.Errorf("chaos: nil fault at position %d", i)
		}
	}
	inj := &Injector{
		inner:   inner,
		faults:  append([]ScheduledFault(nil), faults...),
		rngs:    make([]*trace.RNG, len(faults)),
		applied: make([]int, len(faults)),
	}
	for i := range faults {
		inj.rngs[i] = trace.NewRNG(seed + 0x9e3779b97f4a7c15*uint64(i+1))
	}
	return inj, nil
}

// Name implements sim.Policy, reporting the wrapped policy's name.
func (inj *Injector) Name() string { return inj.inner.Name() }

// Unwrap exposes the wrapped policy, following the runtime's Unwrapper
// convention so wrapping a mixture in chaos never hides it from analysis
// accessors (mixture statistics, telemetry detail).
func (inj *Injector) Unwrap() sim.Policy { return inj.inner }

// SetMetrics registers per-fault-kind applied counters in reg. Counting
// through the registry replaces nothing — Applied still reports exact
// totals — it just makes fault pressure scrapeable alongside the runtime's
// own metrics. Injection itself is untouched: the same faults fire on the
// same decisions with or without metrics attached.
//
// SetMetrics must be called before the first Decide: the counter slice is
// read by Decide without synchronization, so attaching metrics to an
// injector already serving decisions is a data race.
func (inj *Injector) SetMetrics(reg *telemetry.Registry) {
	inj.counters = make([]*telemetry.Counter, len(inj.faults))
	for i, sf := range inj.faults {
		inj.counters[i] = reg.Counter("chaos_faults_applied_total",
			"Decisions perturbed, per fault kind.", "kind", sf.Fault.Name())
	}
}

// Decide implements sim.Policy: apply every active fault to a copy of the
// decision, then forward it. The engine's Decision is passed by value so
// the perturbation can never leak back into the simulation's ground truth.
func (inj *Injector) Decide(d sim.Decision) int {
	for i, sf := range inj.faults {
		if sf.Schedule.ActiveAt(d.Time) {
			sf.Fault.Apply(&d, inj.rngs[i])
			inj.applied[i]++
			if inj.counters != nil {
				inj.counters[i].Inc()
			}
		}
	}
	return inj.inner.Decide(d)
}

// Applied returns, per fault, how many decisions it perturbed.
func (inj *Injector) Applied() []int {
	return append([]int(nil), inj.applied...)
}

// String summarizes the injector for logs.
func (inj *Injector) String() string {
	names := make([]string, len(inj.faults))
	for i, sf := range inj.faults {
		names[i] = sf.Fault.Name()
	}
	return fmt.Sprintf("chaos(%s over %s)", strings.Join(names, "+"), inj.inner.Name())
}
