package core

import "math"

// Expert health tracking: the graceful-degradation layer of the mixture.
// Every expert's environment predictions are already scored at each step
// (that is the paper's selection signal); health tracking turns the same
// scores into a quarantine decision. An expert is quarantined when its
// predictions go non-finite — the signature of a corrupt model — or when
// its rolling relative error explodes far past the worst error a merely
// out-of-regime expert produces. Quarantined experts cannot be selected;
// after a cooldown they re-enter on probation, where a few clean scored
// predictions re-admit them and a single violation sends them back. When
// every expert is quarantined the mixture falls through to the OS-default
// policy (one thread per available processor), so a fully corrupt pool
// degrades to exactly the baseline the paper measures everything against.

// healthState is one expert's position in the quarantine state machine.
type healthState int

const (
	// healthOK marks an expert in good standing, freely selectable.
	healthOK healthState = iota
	// healthQuarantined marks an expert barred from selection.
	healthQuarantined
	// healthProbation marks an expert readmitted provisionally: selectable,
	// but one bad scored prediction re-quarantines it.
	healthProbation
)

func (s healthState) String() string {
	switch s {
	case healthOK:
		return "ok"
	case healthQuarantined:
		return "quarantined"
	case healthProbation:
		return "probation"
	default:
		return "invalid"
	}
}

// Quarantine tuning. The error ratio is deliberately loose: in-regime
// experts score relative errors around the 0.15 accuracy tolerance and even
// badly out-of-regime experts stay within a small multiple of the observed
// norm, while a corrupt or saturated model is off by orders of magnitude.
const (
	// quarantineErrRatio is the rolling relative error (prediction error
	// over observed environment norm) beyond which an expert is
	// quarantined.
	quarantineErrRatio = 8.0
	// healthEMADecay weights the newest relative error in the rolling
	// average.
	healthEMADecay = 0.25
	// quarantineCooldown is how many scored steps an expert sits out
	// before probation.
	quarantineCooldown = 20
	// probationLength is how many consecutive clean scored predictions
	// re-admit a probationary expert to good standing.
	probationLength = 5
)

// expertHealth is the per-expert quarantine record.
type expertHealth struct {
	state       healthState
	errEMA      float64 // rolling relative environment-prediction error
	seen        bool    // errEMA initialized
	coolLeft    int     // quarantined: scored steps until probation
	cleanLeft   int     // probation: clean predictions still required
	quarantines int     // lifetime count of quarantine entries
}

// healthTracker holds the pool's health records.
type healthTracker struct {
	experts []expertHealth
}

func newHealthTracker(k int) *healthTracker {
	return &healthTracker{experts: make([]expertHealth, k)}
}

// addExpert registers a newborn expert. It enters on probation with the
// full clean-prediction requirement ahead of it and no error history:
// admission to good standing is earned through scoring, exactly like a
// quarantined expert re-entering — a newborn never starts in good standing.
func (h *healthTracker) addExpert() {
	h.experts = append(h.experts, expertHealth{
		state:     healthProbation,
		cleanLeft: probationLength,
	})
}

// removeExpert splices out expert k's record.
func (h *healthTracker) removeExpert(k int) {
	h.experts = append(h.experts[:k], h.experts[k+1:]...)
}

// relErr normalizes a raw prediction error by the observed environment
// magnitude (floored at 1, matching withinEnvTolerance's scale).
func relErr(rawErr, observedNorm float64) float64 {
	scale := math.Abs(observedNorm)
	if scale < 1 {
		scale = 1
	}
	return rawErr / scale
}

// observe scores one expert's prediction against the observed environment
// and advances its state machine. finite reports whether the prediction was
// finite; rawErr is its absolute environment error (ignored when not
// finite). It returns true when the expert is quarantined by this
// observation.
func (h *healthTracker) observe(k int, finite bool, rawErr, observedNorm float64) bool {
	e := &h.experts[k]

	if !finite || math.IsNaN(rawErr) || math.IsInf(rawErr, 0) {
		// Non-finite prediction: corrupt model, quarantine immediately
		// whatever state it was in.
		h.enterQuarantine(e)
		return true
	}

	r := relErr(rawErr, observedNorm)
	if e.seen {
		e.errEMA += healthEMADecay * (r - e.errEMA)
	} else {
		e.errEMA = r
		e.seen = true
	}

	switch e.state {
	case healthOK:
		if e.errEMA > quarantineErrRatio {
			h.enterQuarantine(e)
			return true
		}
	case healthQuarantined:
		e.coolLeft--
		if e.coolLeft <= 0 {
			e.state = healthProbation
			e.cleanLeft = probationLength
		}
	case healthProbation:
		if r > quarantineErrRatio {
			// One bad prediction during probation: straight back.
			h.enterQuarantine(e)
			return true
		}
		e.cleanLeft--
		if e.cleanLeft <= 0 {
			e.state = healthOK
			// Forget the error history accumulated while broken so the
			// readmitted expert is not instantly re-quarantined by its
			// own past.
			e.errEMA = r
		}
	}
	return false
}

func (h *healthTracker) enterQuarantine(e *expertHealth) {
	e.state = healthQuarantined
	e.coolLeft = quarantineCooldown
	e.quarantines++
	e.seen = false
}

// allOK reports whether every expert is in good standing — the standing
// precondition of the healthy-regime fast path (see batch.go): with no
// quarantine or probation live, the reroute and OS-default rungs of the
// fallback chain provably cannot fire.
func (h *healthTracker) allOK() bool {
	for k := range h.experts {
		if h.experts[k].state != healthOK {
			return false
		}
	}
	return true
}

// wouldLeaveOK answers, without mutating anything, whether observing a
// finite prediction with error rawErr at observedNorm would move expert k
// out of good standing — and hands back the error EMA that observation
// would store, computed with observe's exact arithmetic. It mirrors
// observe's healthOK arm; callers must already have established that the
// expert is in healthOK. A proven-cold commit stores the returned EMA via
// commitHealthyEMA instead of re-deriving it.
func (h *healthTracker) wouldLeaveOK(k int, rawErr, observedNorm float64) (ema float64, leaves bool) {
	e := &h.experts[k]
	if math.IsNaN(rawErr) || math.IsInf(rawErr, 0) {
		return 0, true
	}
	r := relErr(rawErr, observedNorm)
	ema = r
	if e.seen {
		ema = e.errEMA + healthEMADecay*(r-e.errEMA)
	}
	return ema, ema > quarantineErrRatio
}

// commitHealthyEMA applies a planned observation to expert k: the plan
// proved the expert is in good standing and the observation keeps it there
// (wouldLeaveOK returned false with this ema), which reduces observe's
// entire healthOK arm — relErr, the finiteness checks, the EMA update and
// the quarantine branch — to storing the value the plan already computed.
func (h *healthTracker) commitHealthyEMA(k int, ema float64) {
	e := &h.experts[k]
	e.errEMA = ema
	e.seen = true
}

// usable reports whether expert k may be selected (good standing or
// probation).
func (h *healthTracker) usable(k int) bool {
	return h.experts[k].state != healthQuarantined
}

// stateOf returns expert k's current health state (telemetry reads it to
// report transitions).
func (h *healthTracker) stateOf(k int) healthState {
	return h.experts[k].state
}

// allQuarantined reports whether no expert may be selected — the condition
// that engages the OS-default fallback.
func (h *healthTracker) allQuarantined() bool {
	for k := range h.experts {
		if h.usable(k) {
			return false
		}
	}
	return true
}

// healthiest returns the usable expert with the lowest rolling error — the
// "best healthy single expert" rung of the fallback chain — or -1 when all
// are quarantined. A never-scored expert carries no evidence for it either:
// every scored expert, whatever its error, ranks ahead of every unscored
// one (a newborn on probation must not outrank a proven veteran). Within
// each group, lower rolling error wins and good standing beats probation at
// equal error.
func (h *healthTracker) healthiest() int {
	best := -1
	bestErr := math.Inf(1)
	bestProb := false
	bestSeen := false
	for k := range h.experts {
		e := &h.experts[k]
		if e.state == healthQuarantined {
			continue
		}
		err := 0.0
		if e.seen {
			err = e.errEMA
		}
		prob := e.state == healthProbation
		better := false
		switch {
		case best == -1:
			better = true
		case e.seen != bestSeen:
			better = e.seen
		case err < bestErr:
			better = true
		case err == bestErr && bestProb && !prob:
			better = true
		}
		if better {
			best, bestErr, bestProb, bestSeen = k, err, prob, e.seen
		}
	}
	return best
}

// snapshot exports the per-expert state for Stats.
func (h *healthTracker) snapshot() (quarantined []bool, counts []int) {
	quarantined = make([]bool, len(h.experts))
	counts = make([]int, len(h.experts))
	for k := range h.experts {
		quarantined[k] = h.experts[k].state == healthQuarantined
		counts[k] = h.experts[k].quarantines
	}
	return quarantined, counts
}
