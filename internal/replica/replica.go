// Package replica is the hot-standby replication layer for the moed
// decision daemon: a primary streams every committed checkpoint artifact —
// snapshots, journal rotations, individual journal records — per tenant to
// a standby over HTTP, and the standby applies them into its own
// checkpoint lineages so it is always one Resume away from serving.
//
// The design leans entirely on the byte-identity discipline of
// internal/checkpoint: what ships is the exact CRC-framed bytes the
// primary made durable (checkpoint.Shipment), the standby re-validates
// every frame with the same machinery recovery uses, and a promoted
// standby therefore replays to exactly the state the primary would have
// recovered to itself. Correctness of failover reduces to correctness of
// crash recovery, which PR 3's matrices already pin.
//
// Grouping and ordering. The primary buffers shipments per tenant and
// flushes a whole batch's worth as one HTTP POST after the batch commits
// locally and before the client is acked (Primary.Flush). The standby
// applies a group atomically-in-order: any defect or gap rejects the whole
// group with no partial apply of the remainder. A rejected or lost flush
// leaves the standby one group behind; the next flush detects the gap
// (HTTP 409 from the standby's ordering check) and heals by resending the
// folded lineage — newest snapshot plus the full current journal — as a
// full resynchronization. Replication is thus semi-synchronous: a flush
// failure never blocks serving (the primary keeps the lineage buffered and
// resyncs on the next flush), it only widens the window a failover could
// lose, which the lag metrics make visible.
//
// Fencing. Every ship request carries the primary's term (X-Moe-Term). A
// standby that has been promoted — or has seen a higher term — refuses
// lower-term shipments with HTTP 403, and the primary latches Deposed: its
// serving layer sheds from then on. The promoted standby floors its store
// run numbers at its term (checkpoint.Options.MinRun), so in the shared
// lineage ordering every run the new primary writes outranks anything the
// deposed primary replicated, mirroring the generation-abandonment trick
// the serving envelope uses for wedged tenants.
package replica

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"moe/internal/checkpoint"
	"moe/internal/telemetry"
)

// ErrDeposed reports that this primary has been fenced by a promoted
// standby: a ship request was refused with a higher term. The serving
// layer must stop acking decisions.
var ErrDeposed = errors.New("replica: primary deposed by promoted standby")

// errOutOfOrder is the client-side reflection of the standby's 409: the
// standby's applier is not at the position this group assumes.
var errOutOfOrder = errors.New("replica: standby out of sync")

const (
	shipPath   = "/replica/v1/ship"
	statusPath = "/replica/v1/status"

	termHeader = "X-Moe-Term"
	fullHeader = "X-Moe-Full"

	// maxShipBody bounds one replication group on the receiving side.
	maxShipBody = 64 << 20
)

// Primary ships checkpoint artifacts for any number of tenants to one
// standby. Shipper hooks buffer synchronously under the tenant's decision
// lock; Flush does the network round trip. Methods are safe for concurrent
// use across tenants; per-tenant calls are serialized by the caller (the
// serving layer holds one decision slot per tenant).
type Primary struct {
	base   string // standby base URL, e.g. http://127.0.0.1:9276
	client *http.Client
	logf   func(format string, args ...any)

	term    atomic.Uint64
	deposed atomic.Bool

	mu      sync.Mutex
	tenants map[string]*lineage

	// failpoint, when set, is consulted before each send; returning true
	// simulates a network drop (tests only).
	failMu    sync.Mutex
	failpoint func() bool

	pendingTotal atomic.Int64

	shipments  *telemetry.Counter
	shipErrs   *telemetry.Counter
	resyncs    *telemetry.Counter
	fenced     *telemetry.Counter
	pendingG   *telemetry.Gauge
	termG      *telemetry.Gauge
	flushSecs  *telemetry.Histogram
	groupBytes *telemetry.Histogram
}

// lineage is the folded replication state of one tenant: the newest
// snapshot, the journal records since it (acked by the standby), and the
// not-yet-flushed pending tail.
type lineage struct {
	mu      sync.Mutex
	curRun  int
	snap    *checkpoint.Shipment
	recs    []checkpoint.Shipment // journal-open + records since snap, acked
	pending []checkpoint.Shipment
	synced  bool // standby confirmed up to recs; pending may follow incrementally
}

// NewPrimary returns a primary shipping to the standby at base (scheme +
// host, no path). reg may be nil; logf may be nil.
func NewPrimary(base string, reg *telemetry.Registry, logf func(string, ...any)) *Primary {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	p := &Primary{
		base:    base,
		client:  &http.Client{Timeout: 5 * time.Second},
		logf:    logf,
		tenants: make(map[string]*lineage),
	}
	p.term.Store(1)
	if reg != nil {
		p.shipments = reg.Counter("replica_shipments_total", "Checkpoint artifacts buffered for replication.", "", "")
		p.shipErrs = reg.Counter("replica_ship_errors_total", "Replication flushes that failed.", "", "")
		p.resyncs = reg.Counter("replica_resyncs_total", "Full lineage resynchronizations sent.", "", "")
		p.fenced = reg.Counter("replica_fenced_total", "Ship requests refused by a higher term.", "", "")
		p.pendingG = reg.Gauge("replica_pending_shipments", "Artifacts buffered but not yet acked by the standby.", "", "")
		p.termG = reg.Gauge("replica_term", "This primary's fencing term.", "role", "primary")
		p.termG.Set(1)
		p.flushSecs = reg.Histogram("replica_flush_seconds", "Replication flush round-trip latency.", nil)
		p.groupBytes = reg.Histogram("replica_group_bytes", "Bytes per replication group.", nil)
	}
	return p
}

// SetTerm sets the fencing term stamped on every ship request. A freshly
// promoted server chains its standby's term through here.
func (p *Primary) SetTerm(term uint64) {
	p.term.Store(term)
	p.termG.Set(float64(term))
}

// Term returns the current fencing term.
func (p *Primary) Term() uint64 { return p.term.Load() }

// Deposed reports whether a standby has fenced this primary.
func (p *Primary) Deposed() bool { return p.deposed.Load() }

// SetFailpoint installs (or clears, with nil) a hook consulted before each
// network send; returning true drops the send as if the network ate it.
// Tests use it to create replication gaps deterministically.
func (p *Primary) SetFailpoint(fn func() bool) {
	p.failMu.Lock()
	p.failpoint = fn
	p.failMu.Unlock()
}

func (p *Primary) dropSend() bool {
	p.failMu.Lock()
	fn := p.failpoint
	p.failMu.Unlock()
	return fn != nil && fn()
}

// Lag returns the number of buffered artifacts not yet acked by the
// standby, across all tenants.
func (p *Primary) Lag() int64 { return p.pendingTotal.Load() }

func (p *Primary) lineageFor(tenant string) *lineage {
	p.mu.Lock()
	defer p.mu.Unlock()
	ln := p.tenants[tenant]
	if ln == nil {
		ln = &lineage{}
		p.tenants[tenant] = ln
	}
	return ln
}

// Shipper returns the checkpoint shipping hook for one tenant, suitable
// for Store.SetShipper. It copies the artifact bytes and buffers them; no
// I/O happens until Flush.
func (p *Primary) Shipper(tenant string) func(checkpoint.Shipment) {
	ln := p.lineageFor(tenant)
	return func(sh checkpoint.Shipment) {
		sh.Data = append([]byte(nil), sh.Data...)
		ln.mu.Lock()
		defer ln.mu.Unlock()
		// A shipment from a run older than the lineage's current run is a
		// late write from an abandoned store generation (a wedged tenant
		// the watchdog recycled); it must not splice into the stream.
		if sh.Run < ln.curRun {
			return
		}
		if sh.Run > ln.curRun {
			if sh.Kind != checkpoint.ShipSnapshot {
				// A fresh store always announces itself with a snapshot
				// (AttachStore writes one immediately); journal artifacts
				// of a run we have no snapshot for cannot seed a standby.
				return
			}
			ln.curRun = sh.Run
		}
		ln.pending = append(ln.pending, sh)
		p.pendingTotal.Add(1)
		p.pendingG.Set(float64(p.pendingTotal.Load()))
		p.shipments.Inc()
	}
}

// Flush sends the tenant's buffered artifacts to the standby as one
// atomic group, resynchronizing the full folded lineage if the standby
// reports a gap. It is called after a batch commits locally and before the
// client is acked. A returned error (other than ErrDeposed) means the
// standby is behind but serving may continue; the next Flush heals.
func (p *Primary) Flush(tenant string) error {
	if p.deposed.Load() {
		return ErrDeposed
	}
	ln := p.lineageFor(tenant)
	ln.mu.Lock()
	defer ln.mu.Unlock()

	var start time.Time
	if p.flushSecs != nil {
		start = time.Now()
	}
	err := p.flushLocked(tenant, ln)
	if p.flushSecs != nil {
		p.flushSecs.Observe(time.Since(start).Seconds())
	}
	if err != nil {
		p.shipErrs.Inc()
	}
	return err
}

func (p *Primary) flushLocked(tenant string, ln *lineage) error {
	if ln.synced {
		if len(ln.pending) == 0 {
			return nil
		}
		err := p.send(tenant, ln.pending, false)
		if err == nil {
			p.fold(ln)
			return nil
		}
		if errors.Is(err, ErrDeposed) {
			return err
		}
		// Gap or transport loss: the incremental group may or may not have
		// landed. Fall through to a full resync, which is idempotent —
		// the standby resets and replays the folded lineage.
		ln.synced = false
		p.logf("replica: tenant %s: incremental flush failed (%v); resyncing", tenant, err)
	}

	group := make([]checkpoint.Shipment, 0, 1+len(ln.recs)+len(ln.pending))
	if ln.snap != nil {
		group = append(group, *ln.snap)
	}
	group = append(group, ln.recs...)
	group = append(group, ln.pending...)
	if len(group) == 0 {
		return nil
	}
	p.resyncs.Inc()
	if err := p.send(tenant, group, true); err != nil {
		return err
	}
	p.fold(ln)
	ln.synced = true
	return nil
}

// fold absorbs the pending tail into the acked lineage representation:
// a snapshot supersedes everything before it; a journal-open starts the
// record chain over.
func (p *Primary) fold(ln *lineage) {
	for i := range ln.pending {
		sh := ln.pending[i]
		switch sh.Kind {
		case checkpoint.ShipSnapshot:
			ln.snap = &sh
			ln.recs = nil
		case checkpoint.ShipJournalOpen:
			ln.recs = append(ln.recs[:0], sh)
		case checkpoint.ShipJournalRecord:
			ln.recs = append(ln.recs, sh)
		}
	}
	p.pendingTotal.Add(int64(-len(ln.pending)))
	p.pendingG.Set(float64(p.pendingTotal.Load()))
	ln.pending = nil
}

func (p *Primary) send(tenant string, group []checkpoint.Shipment, full bool) error {
	if p.dropSend() {
		return fmt.Errorf("replica: send dropped by failpoint")
	}
	var body []byte
	for _, sh := range group {
		body = EncodeShipmentTo(body, sh)
	}
	p.groupBytes.Observe(float64(len(body)))
	req, err := http.NewRequest(http.MethodPost, p.base+shipPath+"?tenant="+tenant, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(termHeader, strconv.FormatUint(p.term.Load(), 10))
	if full {
		req.Header.Set(fullHeader, "1")
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
		return nil
	case http.StatusForbidden:
		p.fenced.Inc()
		p.deposed.Store(true)
		p.logf("replica: tenant %s: fenced by standby (term %s); primary deposed",
			tenant, resp.Header.Get(termHeader))
		return ErrDeposed
	case http.StatusConflict:
		return errOutOfOrder
	default:
		return fmt.Errorf("replica: standby returned %s", resp.Status)
	}
}

// EncodeShipmentTo is checkpoint.EncodeShipment re-exported for callers
// holding a replica handle; it keeps the wire format in one place.
func EncodeShipmentTo(b []byte, sh checkpoint.Shipment) []byte {
	return checkpoint.EncodeShipment(b, sh)
}
