package serve

import (
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"moe"
)

// TestDrainCheckpointsAndRestartResumesBitIdentically is the drain
// contract end to end: requests racing a drain either complete fully (and
// are on disk) or shed with 503 "draining" (and left no trace); every
// persistent tenant is checkpointed inside the window; and a cold restart
// on the same directory continues every tenant's decision stream exactly
// where the acknowledged prefix left off — the combined trace is
// byte-identical to a solo runtime that never restarted.
func TestDrainCheckpointsAndRestartResumesBitIdentically(t *testing.T) {
	root := t.TempDir()
	ids := []string{"alpha", "beta", "gamma"}
	cfg := Config{CheckpointRoot: root, CheckpointEvery: 16}
	srv1, ts1 := newTestServer(t, cfg)

	const batch = 16
	acked := make(map[string][]moe.Observation) // observations the server acknowledged, in order
	got := make(map[string][]int)               // threads it returned for them

	// Phase A: a served prefix for every tenant.
	for r := 0; r < 5; r++ {
		for _, id := range ids {
			stream := tenantStream(id, r*batch, batch)
			resp := mustDecide(t, ts1.URL, id, toWire(stream))
			acked[id] = append(acked[id], stream...)
			got[id] = append(got[id], resp.Threads...)
		}
	}

	// Phase B: one more batch per tenant in flight while the drain fires —
	// the mid-batch SIGTERM. Every outcome must be all-or-nothing.
	type outcome struct {
		id      string
		stream  []moe.Observation
		status  int
		code    string
		threads []int
	}
	outcomes := make(chan outcome, len(ids))
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			stream := tenantStream(id, 5*batch, batch)
			status, resp, eresp, _ := postDecide(t, ts1.URL, id, toWire(stream), 0)
			o := outcome{id: id, stream: stream, status: status}
			switch {
			case status == http.StatusOK:
				o.threads = resp.Threads
			case eresp != nil:
				o.code = eresp.Code
			}
			outcomes <- o
		}(id)
	}
	rep, err := srv1.Drain(5 * time.Second)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	close(outcomes)
	for o := range outcomes {
		switch o.status {
		case http.StatusOK:
			acked[o.id] = append(acked[o.id], o.stream...)
			got[o.id] = append(got[o.id], o.threads...)
		case http.StatusServiceUnavailable:
			if o.code != "draining" {
				t.Fatalf("tenant %s: shed with code %q, want draining", o.id, o.code)
			}
		default:
			t.Fatalf("tenant %s: mid-drain status %d, want 200 or 503", o.id, o.status)
		}
	}

	// The drain reached every tenant inside the window.
	if !rep.Clean() {
		t.Fatalf("drain not clean: timed_out=%v errors=%v", rep.TimedOut, rep.Errors)
	}
	if rep.Tenants != len(ids) || rep.Checkpointed != len(ids) {
		t.Fatalf("drain report %d/%d checkpointed, want %d/%d (%+v)",
			rep.Checkpointed, rep.Tenants, len(ids), len(ids), rep)
	}
	if rep.Elapsed > 5*time.Second {
		t.Fatalf("drain took %v, over its window", rep.Elapsed)
	}
	if _, err := srv1.Drain(time.Second); err == nil {
		t.Fatal("second drain must refuse")
	}
	// Draining servers shed new work with 503 "draining".
	status, _, eresp, _ := postDecide(t, ts1.URL, "alpha", toWire(tenantStream("alpha", 999, 1)), 0)
	if status != http.StatusServiceUnavailable || eresp.Code != "draining" {
		t.Fatalf("post-drain request: status %d code %q, want 503 draining", status, eresp.Code)
	}

	// Cold restart on the same root: every tenant continues exactly where
	// its acknowledged prefix ended.
	_, ts2 := newTestServer(t, cfg)
	for r := 0; r < 3; r++ {
		for _, id := range ids {
			stream := tenantStream(id, len(acked[id]), batch)
			resp := mustDecide(t, ts2.URL, id, toWire(stream))
			// The resumed decision count proves state carried across: the
			// runtime's counter includes every pre-restart decision.
			if want := int64(len(acked[id]) + batch); resp.Decisions != want {
				t.Fatalf("tenant %s: post-restart decisions=%d, want %d (resume lost state)",
					id, resp.Decisions, want)
			}
			acked[id] = append(acked[id], stream...)
			got[id] = append(got[id], resp.Threads...)
		}
	}
	for _, id := range ids {
		want := soloThreads(t, acked[id])
		if fmt.Sprint(got[id]) != fmt.Sprint(want) {
			t.Errorf("tenant %s: drain+restart trace diverges from an unbroken solo runtime:\n got %v\nwant %v",
				id, got[id], want)
		}
	}
}
