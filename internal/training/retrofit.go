package training

import (
	"fmt"
	"math"

	"moe/internal/expert"
	"moe/internal/features"
	"moe/internal/regress"
	"moe/internal/stats"
)

// Retrofitting (§4.1): "Existing experts that are generated using machine
// learning can be retrofitted by retraining them, using the same original
// training data, to predict the environment as well. It is more challenging
// for hand-crafted or ad-hoc experts as a new environment predictor would
// need to be created."
//
// This file implements exactly that: wrap ANY thread-selection heuristic as
// an Expert by fitting only the environment predictor (and the feature
// statistics the selector's applicability gating needs) on training data.
// The retrofitted expert then participates in the mixture like any other.

// Heuristic is a hand-written thread-selection rule: state in, thread count
// out.
type Heuristic func(f features.Vector) int

// Retrofit builds an expert around a hand-written heuristic. The heuristic
// keeps full authority over thread counts; the training data only supplies
// the environment predictor m and feature statistics. maxThreads caps the
// heuristic's output.
func Retrofit(name string, h Heuristic, ds *DataSet, maxThreads int) (*expert.Expert, error) {
	if h == nil {
		return nil, fmt.Errorf("training: nil heuristic")
	}
	if len(ds.Samples) == 0 {
		return nil, fmt.Errorf("training: retrofit needs training data for the environment predictor")
	}
	if maxThreads <= 0 {
		return nil, fmt.Errorf("training: retrofit needs a positive thread cap")
	}

	var env expert.VectorEnvModel
	for dim := 0; dim < features.EnvDim; dim++ {
		samples := ds.envSamples(dim)
		m, err := regress.Fit(samples, regress.Options{Ridge: 1e-6})
		if err != nil {
			return nil, fmt.Errorf("training: retrofit env dim %d: %w", dim, err)
		}
		env.Models[dim] = m
		var sumSq float64
		for _, s := range samples {
			r := m.MustPredict(s.X) - s.Y
			sumSq += r * r
		}
		env.Sigma[dim] = math.Sqrt(sumSq / float64(len(samples)))
	}

	// Linear shim fitted to the heuristic's own outputs over the training
	// states, so callers inspecting the Table-1-style coefficients see a
	// faithful approximation; the mixture itself calls PredictThreads,
	// which defers to the exact heuristic via HeuristicFn.
	shimSamples := make([]regress.Sample, len(ds.Samples))
	for i, s := range ds.Samples {
		shimSamples[i] = regress.Sample{X: s.Features.Slice(), Y: float64(h(s.Features))}
	}
	shim, err := regress.Fit(shimSamples, regress.Options{Ridge: 1e-6})
	if err != nil {
		return nil, fmt.Errorf("training: retrofit thread shim: %w", err)
	}

	e := &expert.Expert{
		Name:        name,
		Threads:     shim,
		HeuristicFn: h,
		Env:         env,
		MaxThreads:  maxThreads,
		TrainedOn:   "hand-written heuristic, environment predictor retrofitted",
	}
	n := float64(len(ds.Samples))
	for _, s := range ds.Samples {
		for i := 0; i < features.Dim; i++ {
			e.FeatMean[i] += s.Features[i]
		}
	}
	for i := range e.FeatMean {
		e.FeatMean[i] /= n
	}
	for _, s := range ds.Samples {
		for i := 0; i < features.Dim; i++ {
			d := s.Features[i] - e.FeatMean[i]
			e.FeatStd[i] += d * d
		}
	}
	for i := range e.FeatStd {
		e.FeatStd[i] = math.Sqrt(e.FeatStd[i] / n)
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return e, nil
}

// SlotHeuristic is a reasonable hand-written analytic rule of the kind §9
// mentions ("hand written analytic models can be selected by a mixtures
// approach"): estimate the program's fair share of the machine from the
// load features and claim it, never exceeding the processor count.
//
//	n = avail / (1 + externalThreads/avail), clamped to [1, avail]
//
// The denominator approximates the number of competing saturated programs.
func SlotHeuristic(f features.Vector) int {
	avail := f[features.Processors]
	if avail < 1 {
		avail = 1
	}
	ext := f[features.WorkloadThreads]
	programs := 1 + ext/avail
	n := int(math.Round(avail / programs))
	return stats.ClampInt(n, 1, int(avail))
}
