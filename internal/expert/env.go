package expert

import (
	"fmt"
	"math"

	"moe/internal/features"
	"moe/internal/regress"
)

// EnvModel is an expert's environment predictor m (§4.1): from the current
// state f it forecasts the environment at the next timestep. The paper
// formulates selection both as argmin_k |ê^k − e| over environment vectors
// (§4.2) and as a norm difference a^k = ‖ê^k‖ − ‖e‖ (§5.3); the two
// implementations below correspond to those two readings.
type EnvModel interface {
	// Predict forecasts the next environment from the current state.
	Predict(f features.Vector) EnvPrediction
	// Dim reports the model's input dimensionality (for validation).
	Dim() int
}

// EnvPrediction is a forecast environment. Vector models fill Vec; norm
// models only Norm.
type EnvPrediction struct {
	// Norm is the predicted environment norm ‖ê‖.
	Norm float64
	// Vec is the full predicted environment (vector models only).
	Vec features.Env
	// HasVec reports whether Vec is meaningful.
	HasVec bool
	// Sigma holds the predictor's per-dimension training residual
	// standard deviations; when present, Error is the Mahalanobis
	// (likelihood-based) distance instead of Euclidean.
	Sigma *[features.EnvDim]float64
}

// Finite reports whether every value the prediction carries is finite. A
// non-finite prediction is the unambiguous signature of a broken expert —
// finite models on sanitized features cannot produce one — and is what the
// mixture's health tracking quarantines on.
func (p *EnvPrediction) Finite() bool {
	if math.IsNaN(p.Norm) || math.IsInf(p.Norm, 0) {
		return false
	}
	if !p.HasVec {
		return true
	}
	for _, v := range [...]float64{
		p.Vec.WorkloadThreads, p.Vec.Processors, p.Vec.RunQueue,
		p.Vec.Load1, p.Vec.Load5, p.Vec.CachedMem, p.Vec.PageFreeRate,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// envDiffs returns the per-dimension differences ê − e.
func (p EnvPrediction) envDiffs(observed features.Env) [features.EnvDim]float64 {
	return [features.EnvDim]float64{
		p.Vec.WorkloadThreads - observed.WorkloadThreads,
		p.Vec.Processors - observed.Processors,
		p.Vec.RunQueue - observed.RunQueue,
		p.Vec.Load1 - observed.Load1,
		p.Vec.Load5 - observed.Load5,
		p.Vec.CachedMem - observed.CachedMem,
		p.Vec.PageFreeRate - observed.PageFreeRate,
	}
}

// RawError returns the plain prediction error against the observed
// environment: Euclidean distance ‖ê − e‖ for vector predictions (§4.2's
// argmin_k ‖ê^k − e‖), or |‖ê‖ − ‖e‖| for norm-only predictions (§5.3's
// a^k). This is the quantity behind the Fig 15a accuracy statistic.
func (p EnvPrediction) RawError(observed features.Env) float64 {
	if p.HasVec {
		d := 0.0
		for _, diff := range p.envDiffs(observed) {
			d += diff * diff
		}
		return math.Sqrt(d)
	}
	return math.Abs(p.Norm - observed.Norm())
}

// Error returns the gating error the expert selector minimizes. When the
// predictor carries training residual scales this is the Mahalanobis
// distance — the (log-)likelihood view of "how surprised is this expert by
// the observed environment", which the paper's selector maximizes ("use a
// proxy environment predictor as a measure of quality and then maximise
// likelihood", §2). An expert whose training regime fit tightly is heavily
// penalized for residuals it never produced in regime, which is what keeps
// a small-platform expert from hijacking states it cannot handle. Without
// residual scales this falls back to RawError.
func (p EnvPrediction) Error(observed features.Env) float64 {
	if !p.HasVec || p.Sigma == nil {
		return p.RawError(observed)
	}
	d := 0.0
	for i, diff := range p.envDiffs(observed) {
		sd := p.Sigma[i]
		if sd < 1e-3 {
			sd = 1e-3
		}
		z := diff / sd
		d += z * z
	}
	return math.Sqrt(d / features.EnvDim)
}

// ErrorsWith returns Error and RawError together against an observed
// environment whose norm the caller has already computed (observedNorm must
// be observed.Norm()). The per-dimension differences are evaluated once and
// feed both distances with Error's and RawError's exact arithmetic, so the
// results are bit-identical to calling the two methods separately; only the
// redundant passes (and, for norm-only predictions, the repeated
// observed-norm computation) are gone. This is the batch fast path's gating
// kernel — FastPlan scores every expert per observation, which makes the
// two-methods form the hottest redundancy in the whole decision loop.
func (p *EnvPrediction) ErrorsWith(observed *features.Env, observedNorm float64) (gating, raw float64) {
	if !p.HasVec {
		raw = math.Abs(p.Norm - observedNorm)
		return raw, raw
	}
	diffs := [features.EnvDim]float64{
		p.Vec.WorkloadThreads - observed.WorkloadThreads,
		p.Vec.Processors - observed.Processors,
		p.Vec.RunQueue - observed.RunQueue,
		p.Vec.Load1 - observed.Load1,
		p.Vec.Load5 - observed.Load5,
		p.Vec.CachedMem - observed.CachedMem,
		p.Vec.PageFreeRate - observed.PageFreeRate,
	}
	sum := 0.0
	for _, diff := range diffs {
		sum += diff * diff
	}
	raw = math.Sqrt(sum)
	if p.Sigma == nil {
		return raw, raw
	}
	d := 0.0
	for i, diff := range diffs {
		sd := p.Sigma[i]
		if sd < 1e-3 {
			sd = 1e-3
		}
		z := diff / sd
		d += z * z
	}
	return math.Sqrt(d / features.EnvDim), raw
}

// NormEnvModel predicts only the environment norm with a single linear
// model — the shape of Table 1's m rows.
type NormEnvModel struct {
	Model *regress.Model
}

// Predict implements EnvModel.
func (m NormEnvModel) Predict(f features.Vector) EnvPrediction {
	return m.predictWith(f.Slice())
}

// predictWith is Predict over a caller-owned slice already holding f's
// components — the allocation-free kernel behind Expert.PredictEnvBuf.
func (m NormEnvModel) predictWith(x []float64) EnvPrediction {
	v := m.Model.MustPredict(x)
	if v < 0 {
		v = 0
	}
	return EnvPrediction{Norm: v}
}

// predictInto is predictWith writing the (identical) prediction in place.
func (m NormEnvModel) predictInto(dst *EnvPrediction, x []float64) {
	v := m.Model.MustPredict(x)
	if v < 0 {
		v = 0
	}
	*dst = EnvPrediction{Norm: v}
}

// Dim implements EnvModel.
func (m NormEnvModel) Dim() int { return m.Model.Dim() }

// Validate checks the model is usable and its coefficients finite.
func (m NormEnvModel) Validate() error {
	if m.Model == nil {
		return fmt.Errorf("expert: norm environment model with nil regression")
	}
	return m.Model.Validate()
}

// VectorEnvModel predicts every environment feature (f4–f10) with one
// linear model per dimension. The environment's dynamics — load-average
// EMAs, workload-policy responses, hardware persistence — are linear in the
// feature set, so a per-regime linear fit can be sharp in regime and
// visibly biased out of regime, which is what gives the expert selector its
// signal.
type VectorEnvModel struct {
	Models [features.EnvDim]*regress.Model
	// Sigma holds the per-dimension residual standard deviation on the
	// training data; the selector's likelihood gating divides prediction
	// residuals by these scales. All-zero disables the scaling.
	Sigma [features.EnvDim]float64
}

// Predict implements EnvModel.
func (m VectorEnvModel) Predict(f features.Vector) EnvPrediction {
	return m.predictWith(f.Slice(), m.ResidualSigma())
}

// predictWith is Predict over a caller-owned feature slice, attaching sigma
// — which must be ResidualSigma()'s value — instead of allocating a fresh
// copy per prediction.
func (m VectorEnvModel) predictWith(x []float64, sigma *[features.EnvDim]float64) EnvPrediction {
	var vals [features.EnvDim]float64
	for i, mod := range m.Models {
		v := mod.MustPredict(x)
		if v < 0 {
			v = 0 // all environment features are non-negative quantities
		}
		vals[i] = v
	}
	vec := features.Env{
		WorkloadThreads: vals[features.WorkloadThreads-features.EnvStart],
		Processors:      vals[features.Processors-features.EnvStart],
		RunQueue:        vals[features.RunQueueSize-features.EnvStart],
		Load1:           vals[features.CPULoad1-features.EnvStart],
		Load5:           vals[features.CPULoad5-features.EnvStart],
		CachedMem:       vals[features.CachedMemory-features.EnvStart],
		PageFreeRate:    vals[features.PageFreeRate-features.EnvStart],
	}
	return EnvPrediction{Norm: vec.Norm(), Vec: vec, HasVec: true, Sigma: sigma}
}

// predictInto is predictWith writing the (identical) prediction in place:
// the same per-dimension models, clamps and norm, filling the caller's
// struct directly instead of copying a returned one.
func (m VectorEnvModel) predictInto(dst *EnvPrediction, x []float64, sigma *[features.EnvDim]float64) {
	var vals [features.EnvDim]float64
	for i, mod := range m.Models {
		v := mod.MustPredict(x)
		if v < 0 {
			v = 0 // all environment features are non-negative quantities
		}
		vals[i] = v
	}
	dst.Vec = features.Env{
		WorkloadThreads: vals[features.WorkloadThreads-features.EnvStart],
		Processors:      vals[features.Processors-features.EnvStart],
		RunQueue:        vals[features.RunQueueSize-features.EnvStart],
		Load1:           vals[features.CPULoad1-features.EnvStart],
		Load5:           vals[features.CPULoad5-features.EnvStart],
		CachedMem:       vals[features.CachedMemory-features.EnvStart],
		PageFreeRate:    vals[features.PageFreeRate-features.EnvStart],
	}
	dst.Norm = dst.Vec.Norm()
	dst.HasVec = true
	dst.Sigma = sigma
}

// ResidualSigma returns a pointer to a private copy of the residual scales,
// or nil when likelihood scaling is disabled (all-zero Sigma). Allocation-
// free callers cache it once per expert and share the copy across
// predictions; the models are read-only, so sharing is safe.
func (m VectorEnvModel) ResidualSigma() *[features.EnvDim]float64 {
	for _, sd := range m.Sigma {
		if sd > 0 {
			sigma := m.Sigma
			return &sigma
		}
	}
	return nil
}

// Dim implements EnvModel.
func (m VectorEnvModel) Dim() int {
	if m.Models[0] == nil {
		return 0
	}
	return m.Models[0].Dim()
}

// Validate checks all component models exist, agree on dimensionality and
// carry finite coefficients.
func (m VectorEnvModel) Validate() error {
	for i, mod := range m.Models {
		if mod == nil {
			return fmt.Errorf("expert: vector environment model missing dimension %d", i)
		}
		if mod.Dim() != m.Models[0].Dim() {
			return fmt.Errorf("expert: vector environment model has inconsistent dimensionality")
		}
		if err := mod.Validate(); err != nil {
			return fmt.Errorf("expert: vector environment model dimension %d: %w", i, err)
		}
	}
	return nil
}
