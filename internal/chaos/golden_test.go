package chaos

import (
	"testing"

	"moe/internal/core"
	"moe/internal/expert"
	"moe/internal/policy"
	"moe/internal/sim"
	"moe/internal/telemetry"
	"moe/internal/trace"
	"moe/internal/workload"
)

// chaosGoldenThreads pins the mixture's per-step thread decisions for the
// core golden scenario (lu + looping mg, canonical Table 1 experts,
// 32-core evaluation machine, low-frequency hardware changes, seed 77)
// with one fault of every kind staggered across the run. Together with
// core's TestGoldenTrace this pins both halves of the determinism claim:
// the healthy path is byte-stable, and so is the chaotic one — same seed,
// same faults, same lies, same decisions. Any change to the injector's
// stream derivation, the fault implementations, the sanitizer, the
// sensor-trust layer or the quarantine machinery that shifts even one
// perturbed decision fails here.
var chaosGoldenThreads = []int{
	29, 26, 27, 27, 27, 27, 28, 28, 28, 28, 28, 32, 2, 22, 22, 22, 22,
	22, 22, 22, 22, 22, 22, 22, 22, 22, 22, 22, 22, 22, 22, 22, 22, 22,
	22, 29, 29, 29, 29, 29, 29, 29, 29, 29, 29, 29, 29, 29, 29, 29, 29,
	30, 30, 30, 30, 30, 31, 31, 31, 31, 31, 31, 31, 31, 31, 31, 31, 31,
	31, 31, 31, 31, 31, 31, 31, 31, 31, 31, 31, 31, 31, 31, 31, 31, 31,
	31, 31, 31, 31, 31, 31, 29, 30, 29, 11, 11, 11, 11, 28, 28, 26, 26,
	26, 26, 26, 26, 26, 26, 26, 26, 26, 26, 26, 26, 26, 26, 26, 26, 26,
	26, 26, 26, 27, 27, 26, 26, 27, 27,
}

// chaosGoldenFaults builds one scheduled fault of every kind, staggered so
// each gets a window of its own inside the 25-second run (the rate
// blackout runs throughout — the mixture never reads the rate, so it
// proves fault transparency rather than perturbing anything).
func chaosGoldenFaults() []ScheduledFault {
	return []ScheduledFault{
		{Fault: FeatureNoise{Sigma: 0.4}, Schedule: Window(2, 4)},
		{Fault: &Dropout{}, Schedule: Window(7, 3)},
		{Fault: &Dropout{Stale: true}, Schedule: Window(11, 3)},
		{Fault: Corrupt{Prob: 0.5}, Schedule: Window(14, 3)},
		{Fault: ClockSkew{MaxSkew: 5}, Schedule: Window(17, 3)},
		{Fault: HotplugStorm{MaxProcs: 32}, Schedule: Window(20, 3)},
		{Fault: RateBlackout{}, Schedule: Always()},
	}
}

func chaosGoldenScenario(t *testing.T) (*core.Mixture, *Injector, sim.Scenario) {
	t.Helper()
	mix, err := core.NewMixture(expert.Canonical4(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	inj, err := NewInjector(mix, 77, chaosGoldenFaults()...)
	if err != nil {
		t.Fatal(err)
	}
	target, err := workload.ByName("lu")
	if err != nil {
		t.Fatal(err)
	}
	wl, err := workload.ByName("mg")
	if err != nil {
		t.Fatal(err)
	}
	machine := sim.Eval32()
	hw, err := trace.GenerateHardware(trace.NewRNG(77), machine.Cores, trace.LowFrequency, 25)
	if err != nil {
		t.Fatal(err)
	}
	machine.Hardware = hw
	return mix, inj, sim.Scenario{
		Machine: machine,
		Programs: []sim.ProgramSpec{
			{Program: target.Clone(), Policy: inj, Target: true},
			{Program: wl.Clone(), Policy: policy.NewDefault(), Loop: true},
		},
		MaxTime:       25,
		RecordSamples: true,
		Seed:          77,
	}
}

func TestChaosGoldenTrace(t *testing.T) {
	mix, inj, scenario := chaosGoldenScenario(t)
	res, err := sim.Run(scenario)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := res.Target()
	if err != nil {
		t.Fatal(err)
	}
	if tr.DecisionCount != len(chaosGoldenThreads) {
		t.Fatalf("decisions = %d, want %d", tr.DecisionCount, len(chaosGoldenThreads))
	}
	for i, s := range tr.Samples {
		if s.Threads != chaosGoldenThreads[i] {
			t.Errorf("step %d (t=%.1f): threads = %d, want %d", i, s.Time, s.Threads, chaosGoldenThreads[i])
		}
	}
	// Every fault's application count is pinned: schedules gate on the
	// decision clock, which is itself deterministic.
	applied := inj.Applied()
	wantApplied := []int{20, 15, 16, 15, 15, 21, 128}
	for i := range applied {
		if applied[i] != wantApplied[i] {
			t.Errorf("fault %d (%s) applied %d times, want %d",
				i, chaosGoldenFaults()[i].Fault.Name(), applied[i], wantApplied[i])
		}
	}
	// The degradation ladder's engagement is pinned too: the sensor-trust
	// layer disbelieves the dropout and corruption windows, and no expert
	// is ever quarantined — the faults lie about the world, not the models.
	st := mix.Snapshot()
	if st.SuspectObservations != 79 {
		t.Errorf("suspect observations = %d, want 79", st.SuspectObservations)
	}
	for k, q := range st.Quarantined {
		if q {
			t.Errorf("expert %d quarantined by observation faults", k)
		}
	}
	if st.SanitizedValues == 0 {
		t.Error("corruption window repaired no values")
	}
}

// TestChaosGoldenTraceWithMetrics re-runs the chaos golden scenario with a
// metrics registry and decision detail attached and demands the identical
// decision sequence and fault counts: telemetry observes injection, it must
// never perturb it. The registry's per-kind counters must agree exactly
// with the injector's own Applied() bookkeeping.
func TestChaosGoldenTraceWithMetrics(t *testing.T) {
	mix, inj, scenario := chaosGoldenScenario(t)
	mix.EnableDecisionDetail()
	reg := telemetry.NewRegistry()
	inj.SetMetrics(reg)
	res, err := sim.Run(scenario)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := res.Target()
	if err != nil {
		t.Fatal(err)
	}
	if tr.DecisionCount != len(chaosGoldenThreads) {
		t.Fatalf("decisions = %d, want %d", tr.DecisionCount, len(chaosGoldenThreads))
	}
	for i, s := range tr.Samples {
		if s.Threads != chaosGoldenThreads[i] {
			t.Errorf("step %d: threads = %d, want %d with metrics on", i, s.Threads, chaosGoldenThreads[i])
		}
	}
	applied := inj.Applied()
	wantApplied := []int{20, 15, 16, 15, 15, 21, 128}
	for i, sf := range chaosGoldenFaults() {
		if applied[i] != wantApplied[i] {
			t.Errorf("fault %d applied %d times, want %d", i, applied[i], wantApplied[i])
		}
		got := reg.Counter("chaos_faults_applied_total", "", "kind", sf.Fault.Name()).Value()
		if got != int64(wantApplied[i]) {
			t.Errorf("chaos_faults_applied_total{kind=%q} = %d, want %d", sf.Fault.Name(), got, wantApplied[i])
		}
	}
	if mix.Snapshot().SuspectObservations != 79 {
		t.Error("suspect count shifted under telemetry")
	}
}

// TestInjectorUnwrap pins the Unwrap convention: analysis layers reach the
// wrapped policy through it.
func TestInjectorUnwrap(t *testing.T) {
	mix, inj, _ := chaosGoldenScenario(t)
	if got := inj.Unwrap(); got != sim.Policy(mix) {
		t.Fatalf("Unwrap = %v, want the wrapped mixture", got)
	}
}

// TestChaosGoldenReplays re-runs the chaos scenario twice and demands
// bit-identical outcomes — injection must be a pure function of the seed.
func TestChaosGoldenReplays(t *testing.T) {
	_, i1, s1 := chaosGoldenScenario(t)
	_, i2, s2 := chaosGoldenScenario(t)
	r1, err := sim.Run(s1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sim.Run(s2)
	if err != nil {
		t.Fatal(err)
	}
	t1, _ := r1.Target()
	t2, _ := r2.Target()
	if t1.ExecTime != t2.ExecTime || t1.WorkDone != t2.WorkDone {
		t.Errorf("replay diverged: exec %v vs %v, work %v vs %v",
			t1.ExecTime, t2.ExecTime, t1.WorkDone, t2.WorkDone)
	}
	for i := range t1.Samples {
		if t1.Samples[i].Threads != t2.Samples[i].Threads {
			t.Errorf("replay diverged at step %d", i)
		}
	}
	a1, a2 := i1.Applied(), i2.Applied()
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Errorf("fault %d applied %d vs %d times across replays", i, a1[i], a2[i])
		}
	}
}
