package regress

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"unicode"
)

// ParseCoefficients parses a textual coefficient row — the layout of the
// paper's Table 1 — into values. Numbers are separated by commas,
// semicolons and/or whitespace; the final value is the bias term. It
// rejects empty input, malformed numbers, non-finite values and values
// beyond the MaxCoefficient magnitude bound, so a model assembled from
// parsed coefficients can never predict NaN — or an astronomically wrong
// thread count — from finite features.
func ParseCoefficients(s string) ([]float64, error) {
	fields := strings.FieldsFunc(s, func(r rune) bool {
		return r == ',' || r == ';' || unicode.IsSpace(r)
	})
	if len(fields) == 0 {
		return nil, fmt.Errorf("regress: no coefficients in %q", s)
	}
	out := make([]float64, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("regress: coefficient %d (%q): %w", i, f, err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("regress: coefficient %d (%q) is not finite", i, f)
		}
		if math.Abs(v) > MaxCoefficient {
			return nil, fmt.Errorf("regress: coefficient %d (%q) exceeds magnitude bound %g — corrupt table?", i, f, MaxCoefficient)
		}
		out[i] = v
	}
	return out, nil
}

// FormatCoefficients renders coefficients in the format ParseCoefficients
// reads back exactly (shortest round-trippable decimal form).
func FormatCoefficients(coeffs []float64) string {
	parts := make([]string, len(coeffs))
	for i, c := range coeffs {
		parts[i] = strconv.FormatFloat(c, 'g', -1, 64)
	}
	return strings.Join(parts, ", ")
}

// ParseModel parses a coefficient row and assembles the linear model
// (weights followed by the bias).
func ParseModel(s string) (*Model, error) {
	coeffs, err := ParseCoefficients(s)
	if err != nil {
		return nil, err
	}
	return FromCoefficients(coeffs)
}

// Metrics summarizes prediction quality over a validation set.
type Metrics struct {
	MAE      float64 // mean absolute error
	RMSE     float64 // root mean squared error
	R2       float64 // coefficient of determination
	Accuracy float64 // fraction of predictions within Tolerance of truth
	N        int     // number of validation samples
}

// Tolerance is the relative error within which a prediction counts as
// "accurate" for the Accuracy metric. The paper reports environment
// predictors as "accurate ~80% of the time" with accuracy measured as the
// normalized difference between observed and predicted environment
// (Fig 15a); 15% relative tolerance reproduces that notion.
const Tolerance = 0.15

// Evaluate scores a fitted model against samples.
func Evaluate(m *Model, samples []Sample) (Metrics, error) {
	if len(samples) == 0 {
		return Metrics{}, ErrNoData
	}
	var sumAbs, sumSq, sumY float64
	accurate := 0
	for _, s := range samples {
		sumY += s.Y
	}
	meanY := sumY / float64(len(samples))
	var ssTot, ssRes float64
	for i, s := range samples {
		pred, err := m.Predict(s.X)
		if err != nil {
			return Metrics{}, fmt.Errorf("regress: evaluating sample %d: %w", i, err)
		}
		err2 := pred - s.Y
		sumAbs += math.Abs(err2)
		sumSq += err2 * err2
		ssRes += err2 * err2
		d := s.Y - meanY
		ssTot += d * d
		if withinTolerance(pred, s.Y) {
			accurate++
		}
	}
	n := float64(len(samples))
	metrics := Metrics{
		MAE:      sumAbs / n,
		RMSE:     math.Sqrt(sumSq / n),
		Accuracy: float64(accurate) / n,
		N:        len(samples),
	}
	if ssTot > 0 {
		metrics.R2 = 1 - ssRes/ssTot
	} else if ssRes == 0 {
		metrics.R2 = 1
	}
	return metrics, nil
}

// withinTolerance reports whether pred is within the relative Tolerance of
// truth (absolute tolerance of Tolerance near zero truth values).
func withinTolerance(pred, truth float64) bool {
	scale := math.Abs(truth)
	if scale < 1 {
		scale = 1
	}
	return math.Abs(pred-truth) <= Tolerance*scale
}

// GroupKeyFn assigns each sample to a cross-validation group. The paper
// uses leave-one-out at *program* granularity (§5.2.3: "if we are trying to
// predict the number of threads for program bt, we ensure that bt is not
// part of the training set"); the key is typically the program name index.
type GroupKeyFn func(i int) string

// LeaveOneOut runs leave-one-group-out cross validation: for each distinct
// group, fit on all other groups and evaluate on the held-out group. The
// returned metrics are aggregated over all held-out predictions.
func LeaveOneOut(samples []Sample, key GroupKeyFn, opts Options) (Metrics, error) {
	if len(samples) == 0 {
		return Metrics{}, ErrNoData
	}
	if key == nil {
		return Metrics{}, errors.New("regress: nil group key function")
	}
	groups := make(map[string][]int)
	for i := range samples {
		k := key(i)
		groups[k] = append(groups[k], i)
	}
	if len(groups) < 2 {
		return Metrics{}, errors.New("regress: leave-one-out needs at least two groups")
	}

	var all []heldOut
	for g, held := range groups {
		train := make([]Sample, 0, len(samples)-len(held))
		heldSet := make(map[int]bool, len(held))
		for _, i := range held {
			heldSet[i] = true
		}
		for i, s := range samples {
			if !heldSet[i] {
				train = append(train, s)
			}
		}
		model, err := Fit(train, opts)
		if err != nil {
			return Metrics{}, fmt.Errorf("regress: fold %q: %w", g, err)
		}
		for _, i := range held {
			pred, err := model.Predict(samples[i].X)
			if err != nil {
				return Metrics{}, err
			}
			all = append(all, heldOut{pred: pred, truth: samples[i].Y})
		}
	}
	return aggregate(all), nil
}

type heldOut struct{ pred, truth float64 }

func aggregate(outs []heldOut) Metrics {
	var sumAbs, sumSq, sumY float64
	accurate := 0
	for _, o := range outs {
		sumY += o.truth
	}
	meanY := sumY / float64(len(outs))
	var ssTot, ssRes float64
	for _, o := range outs {
		e := o.pred - o.truth
		sumAbs += math.Abs(e)
		sumSq += e * e
		ssRes += e * e
		d := o.truth - meanY
		ssTot += d * d
		if withinTolerance(o.pred, o.truth) {
			accurate++
		}
	}
	n := float64(len(outs))
	m := Metrics{
		MAE:      sumAbs / n,
		RMSE:     math.Sqrt(sumSq / n),
		Accuracy: float64(accurate) / n,
		N:        len(outs),
	}
	if ssTot > 0 {
		m.R2 = 1 - ssRes/ssTot
	} else if ssRes == 0 {
		m.R2 = 1
	}
	return m
}
