#!/usr/bin/env bash
# replica_smoke.sh — two-process hot-standby failover with the real moed
# binary. A primary replicates every committed checkpoint artifact to a
# standby over HTTP; clients send identified requests (X-Request-Id). The
# primary is then killed hard (SIGKILL, no drain), the standby is promoted
# with `moed -promote`, and the script proves:
#   1. the standby refused decisions until promoted,
#   2. every acked decision survived the node loss (counters exact),
#   3. a retried in-flight request deduplicates instead of re-executing,
#   4. the deposed primary's decisions are refused after promotion.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
PRIM_PID=""
SB_PID=""
cleanup() {
    [ -n "$PRIM_PID" ] && kill -9 "$PRIM_PID" 2>/dev/null || true
    [ -n "$SB_PID" ] && kill -9 "$SB_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

PRIM_ADDR=127.0.0.1:9178
SB_ADDR=127.0.0.1:9179
PRIM="http://$PRIM_ADDR"
SB="http://$SB_ADDR"

go build -o "$WORK/moed" ./cmd/moed

wait_up() { # wait_up <base-url> <name>
    for _ in $(seq 1 100); do
        curl -fsS "$1/healthz" >/dev/null 2>&1 && return 0
        sleep 0.1
    done
    echo "replica-smoke: $2 never came up" >&2
    exit 1
}

# body <tenant> <from> <n> — one decide request with a monotone clock.
body() {
    python3 - "$1" "$2" "$3" <<'PY'
import json, sys
tenant, start, n = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
obs = [{"time": 0.25*k,
        "features": [0.15*(j+1) + 0.02*((k*7+j*3) % 11) for j in range(9)] + [32.0],
        "region_start": k % 4 == 0, "rate": 100, "available_procs": 32}
       for k in range(start, start+n)]
print(json.dumps({"tenant": tenant, "observations": obs}))
PY
}

decisions_of() { python3 -c 'import json,sys; print(json.load(sys.stdin)["decisions"])'; }

# decide <base> <tenant> <from> <n> <request-id> — identified decide.
decide() {
    body "$2" "$3" "$4" | curl -fsS -X POST -H 'Content-Type: application/json' \
        -H "X-Request-Id: $5" --data-binary @- "$1/v1/decide"
}

# Standby first, then the primary pointed at it.
"$WORK/moed" -listen "$SB_ADDR" -checkpoint-dir "$WORK/sb" -standby -quiet &
SB_PID=$!
wait_up "$SB" standby
"$WORK/moed" -listen "$PRIM_ADDR" -checkpoint-dir "$WORK/prim" -replicate-to "$SB" -quiet &
PRIM_PID=$!
wait_up "$PRIM" primary
echo "replica-smoke: primary on $PRIM_ADDR replicating to standby on $SB_ADDR"

# 1. The standby refuses decisions before promotion (503 standby).
SB_CODE=$(body early 0 4 | curl -sS -o /dev/null -w '%{http_code}' -X POST \
    -H 'Content-Type: application/json' --data-binary @- "$SB/v1/decide")
[ "$SB_CODE" = 503 ] || { echo "replica-smoke: standby served before promotion (status $SB_CODE)" >&2; exit 1; }

# 2. Acked decisions on the primary, each with an idempotency key.
for i in 0 1 2; do
    R=$(decide "$PRIM" alpha $((i*8)) 8 "alpha-req-$i")
    [ "$(echo "$R" | decisions_of)" = $(( (i+1)*8 )) ] \
        || { echo "replica-smoke: alpha batch $i wrong counter: $R" >&2; exit 1; }
done
R=$(decide "$PRIM" beta 0 8 beta-req-0)
[ "$(echo "$R" | decisions_of)" = 8 ] || { echo "replica-smoke: beta counter: $R" >&2; exit 1; }

# 3. Hard-kill the primary: no drain, no final checkpoint. Everything the
# clients were acked must already be on the standby.
kill -9 "$PRIM_PID" && wait "$PRIM_PID" 2>/dev/null || true
echo "replica-smoke: primary killed (SIGKILL)"

# 4. Promote via the CLI client mode and check the recovered counters.
"$WORK/moed" -promote "$SB" > "$WORK/promote.json"
python3 - "$WORK/promote.json" <<'PY'
import json, sys
rep = json.load(open(sys.argv[1]))
ts = {t["id"]: t["decisions"] for t in rep["tenants"]}
assert rep["term"] >= 2, rep
assert ts.get("alpha") == 24, ts
assert ts.get("beta") == 8, ts
PY
echo "replica-smoke: standby promoted, counters exact (alpha=24 beta=8)"

# 5. A client retrying its last acked request against the new primary gets
# the original result back (dedup hit — no double execution).
R=$(decide "$SB" alpha 16 8 alpha-req-2)
[ "$(echo "$R" | decisions_of)" = 24 ] \
    || { echo "replica-smoke: retry re-executed instead of deduplicating: $R" >&2; exit 1; }
echo "$R" | python3 -c 'import json,sys; assert json.load(sys.stdin).get("deduped") is True' \
    || { echo "replica-smoke: retry not marked deduped: $R" >&2; exit 1; }

# 6. Fresh traffic continues on the promoted standby.
R=$(decide "$SB" alpha 24 8 alpha-req-3)
[ "$(echo "$R" | decisions_of)" = 32 ] || { echo "replica-smoke: post-failover decide: $R" >&2; exit 1; }

# 7. A zombie primary restarted on its old directory at the stale term is
# fenced: its first decide is refused, not acked.
"$WORK/moed" -listen "$PRIM_ADDR" -checkpoint-dir "$WORK/prim" -replicate-to "$SB" -quiet &
PRIM_PID=$!
wait_up "$PRIM" "restarted primary"
Z_CODE=$(body alpha 32 4 | curl -sS -o /dev/null -w '%{http_code}' -X POST \
    -H 'Content-Type: application/json' --data-binary @- "$PRIM/v1/decide")
[ "$Z_CODE" = 503 ] || { echo "replica-smoke: stale primary acked after promotion (status $Z_CODE)" >&2; exit 1; }
echo "replica-smoke: stale primary fenced (503, decision not acknowledged)"

# 8. The promoted standby drains cleanly.
kill -TERM "$SB_PID" && wait "$SB_PID" || { echo "replica-smoke: promoted standby drain failed" >&2; exit 1; }
SB_PID=""

echo "replica-smoke: OK"
