package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-5); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-5) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}

func TestForEachRunsAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		p := NewPool(workers)
		const n = 100
		seen := make([]int32, n)
		err := p.ForEach(context.Background(), n, func(_ context.Context, i int) error {
			atomic.AddInt32(&seen[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachNilPoolIsSerial(t *testing.T) {
	var p *Pool
	order := make([]int, 0, 5)
	err := p.ForEach(context.Background(), 5, func(_ context.Context, i int) error {
		order = append(order, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial pool ran out of order: %v", order)
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	p := NewPool(workers)
	var cur, peak int32
	err := p.ForEach(context.Background(), 64, func(_ context.Context, i int) error {
		c := atomic.AddInt32(&cur, 1)
		for {
			old := atomic.LoadInt32(&peak)
			if c <= old || atomic.CompareAndSwapInt32(&peak, old, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		atomic.AddInt32(&cur, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(&peak); got > workers {
		t.Fatalf("observed %d concurrent jobs, budget is %d", got, workers)
	}
}

// TestForEachNestedDoesNotDeadlock mirrors how experiment tables use the
// pool: an outer fan-out over targets whose jobs each fan out over repeats,
// with far more jobs than workers at both levels.
func TestForEachNestedDoesNotDeadlock(t *testing.T) {
	p := NewPool(2)
	var total int64
	err := p.ForEach(context.Background(), 8, func(ctx context.Context, _ int) error {
		return p.ForEach(ctx, 8, func(_ context.Context, _ int) error {
			atomic.AddInt64(&total, 1)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 64 {
		t.Fatalf("ran %d inner jobs, want 64", total)
	}
}

func TestForEachFirstErrorByIndex(t *testing.T) {
	p := NewPool(4)
	want := errors.New("boom-3")
	err := p.ForEach(context.Background(), 32, func(_ context.Context, i int) error {
		switch i {
		case 3:
			return want
		case 7:
			return errors.New("boom-7")
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("got %v, want lowest-index error %v", err, want)
	}
}

func TestForEachCancelSkipsRemaining(t *testing.T) {
	p := NewPool(2)
	var started int64
	err := p.ForEach(context.Background(), 1000, func(_ context.Context, i int) error {
		atomic.AddInt64(&started, 1)
		if i == 0 {
			return fmt.Errorf("early failure")
		}
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := atomic.LoadInt64(&started); n == 1000 {
		t.Fatalf("cancellation did not skip any of the %d jobs", n)
	}
}

func TestForEachParentContextCancelled(t *testing.T) {
	p := NewPool(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := p.ForEach(ctx, 10, func(_ context.Context, _ int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestMapOrdersResults(t *testing.T) {
	p := NewPool(8)
	out, err := Map(context.Background(), p, 50, func(_ context.Context, i int) (int, error) {
		time.Sleep(time.Duration(50-i) * 10 * time.Microsecond) // finish roughly in reverse
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapErrorDiscardsResults(t *testing.T) {
	p := NewPool(4)
	out, err := Map(context.Background(), p, 10, func(_ context.Context, i int) (int, error) {
		if i == 5 {
			return 0, errors.New("bad")
		}
		return i, nil
	})
	if err == nil || out != nil {
		t.Fatalf("got (%v, %v), want nil results and an error", out, err)
	}
}

// TestPoolSharedAcrossGoroutines drives one pool from many submitters at
// once — the shape of a race-detector workout for the token accounting.
func TestPoolSharedAcrossGoroutines(t *testing.T) {
	p := NewPool(4)
	var wg sync.WaitGroup
	var total int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = p.ForEach(context.Background(), 40, func(_ context.Context, _ int) error {
				atomic.AddInt64(&total, 1)
				return nil
			})
		}()
	}
	wg.Wait()
	if total != 8*40 {
		t.Fatalf("ran %d jobs, want %d", total, 8*40)
	}
}
