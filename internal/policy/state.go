package policy

import (
	"fmt"
	"math"
)

// Checkpoint state export/import for the stateful baselines. Construction
// parameters (adaptation interval, probe/commit lengths, RNG seed) are not
// part of the state: restore overlays onto a policy constructed with the
// same parameters, exactly as for the mixture. Default and Offline carry no
// mutable state and need nothing here.

// OnlineState is the hill climber's mutable state.
type OnlineState struct {
	Step      int
	Direction int
	LastRate  float64
	LastN     int
	Settled   int
	NextMove  float64
}

// ExportState captures the hill climber's state.
func (o *Online) ExportState() OnlineState {
	return OnlineState{
		Step:      o.step,
		Direction: o.direction,
		LastRate:  o.lastRate,
		LastN:     o.lastN,
		Settled:   o.settled,
		NextMove:  o.nextMove,
	}
}

// RestoreState overlays a previously exported state; on error the policy is
// unchanged.
func (o *Online) RestoreState(st OnlineState) error {
	if st.Direction != 1 && st.Direction != -1 {
		return fmt.Errorf("policy: invalid hill-climber direction %d", st.Direction)
	}
	if st.Step < 0 || st.LastN < 0 || st.Settled < 0 {
		return fmt.Errorf("policy: negative hill-climber counters")
	}
	if !finite(st.LastRate) || st.LastRate < 0 || !finite(st.NextMove) {
		return fmt.Errorf("policy: invalid hill-climber rate state")
	}
	o.step = st.Step
	o.direction = st.Direction
	o.lastRate = st.LastRate
	o.lastN = st.LastN
	o.settled = st.Settled
	o.nextMove = st.NextMove
	return nil
}

// AnalyticState is the interval-exploration policy's mutable state,
// including its probe-RNG stream position.
type AnalyticState struct {
	RNGState      uint64
	Phase         int
	ProbeN        [2]int
	ProbeRate     [2]float64
	ProbeIdx      int
	PhaseEnds     float64
	CommittedN    int
	ExpectedRate  float64
	ProbeSum      float64
	ProbeCount    int
	CommitRate    float64
	CommitSeen    bool
	CommitStretch float64
}

// ExportState captures the analytic policy's state.
func (a *Analytic) ExportState() AnalyticState {
	return AnalyticState{
		RNGState:      a.rng.State(),
		Phase:         int(a.phase),
		ProbeN:        a.probeN,
		ProbeRate:     a.probeRate,
		ProbeIdx:      a.probeIdx,
		PhaseEnds:     a.phaseEnds,
		CommittedN:    a.committedN,
		ExpectedRate:  a.expectedRate,
		ProbeSum:      a.probeSum,
		ProbeCount:    a.probeCount,
		CommitRate:    a.commitRate,
		CommitSeen:    a.commitSeen,
		CommitStretch: a.commitStretch,
	}
}

// RestoreState overlays a previously exported state; on error the policy is
// unchanged.
func (a *Analytic) RestoreState(st AnalyticState) error {
	if st.Phase < int(analyticIdle) || st.Phase > int(analyticCommitted) {
		return fmt.Errorf("policy: invalid analytic phase %d", st.Phase)
	}
	if st.ProbeIdx < 0 || st.ProbeIdx > 1 {
		return fmt.Errorf("policy: invalid probe index %d", st.ProbeIdx)
	}
	if st.ProbeN[0] < 0 || st.ProbeN[1] < 0 || st.CommittedN < 0 || st.ProbeCount < 0 {
		return fmt.Errorf("policy: negative analytic counters")
	}
	for _, v := range []float64{st.ProbeRate[0], st.ProbeRate[1], st.PhaseEnds, st.ExpectedRate, st.ProbeSum, st.CommitRate, st.CommitStretch} {
		if !finite(v) {
			return fmt.Errorf("policy: non-finite analytic state")
		}
	}
	a.rng.SetState(st.RNGState)
	a.phase = analyticPhase(st.Phase)
	a.probeN = st.ProbeN
	a.probeRate = st.ProbeRate
	a.probeIdx = st.ProbeIdx
	a.phaseEnds = st.PhaseEnds
	a.committedN = st.CommittedN
	a.expectedRate = st.ExpectedRate
	a.probeSum = st.ProbeSum
	a.probeCount = st.ProbeCount
	a.commitRate = st.CommitRate
	a.commitSeen = st.CommitSeen
	a.commitStretch = st.CommitStretch
	return nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
