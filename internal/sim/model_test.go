package sim

import (
	"testing"

	"moe/internal/workload"
)

func testRegion(p, mem, sync float64, grain int) workload.Region {
	return workload.Region{
		Name: "r", Work: 1, ParallelFrac: p, MemIntensity: mem,
		SyncCost: sync, Grain: grain, LoadStore: 10, Instructions: 100, Branches: 5,
	}
}

func TestParallelRateScalesWithThreads(t *testing.T) {
	cfg := Eval32().withDefaults()
	r := testRegion(0.99, 0.05, 0.001, 256)
	// Isolated: the whole machine is the slot.
	r1 := parallelRate(&cfg, &r, 1, 32, 0, 0, 32)
	r16 := parallelRate(&cfg, &r, 16, 32, 0, 0, 32)
	r32 := parallelRate(&cfg, &r, 32, 32, 0, 0, 32)
	if !(r32 > r16 && r16 > r1) {
		t.Errorf("compute-bound region should scale: %v %v %v", r1, r16, r32)
	}
	if r32 < 20*r1 {
		t.Errorf("near-linear kernel speedup only %v at 32 threads", r32/r1)
	}
}

func TestParallelRateGrainCaps(t *testing.T) {
	cfg := Eval32().withDefaults()
	r := testRegion(0.95, 0.3, 0.005, 8)
	r8 := parallelRate(&cfg, &r, 8, 32, 0, 0, 32)
	r32 := parallelRate(&cfg, &r, 32, 32, 0, 0, 32)
	if r32 >= r8 {
		t.Errorf("threads beyond grain should not help: r8=%v r32=%v", r8, r32)
	}
}

func TestParallelRateSyncPenalty(t *testing.T) {
	cfg := Eval32().withDefaults()
	quiet := testRegion(0.95, 0.3, 0.001, 64)
	noisy := testRegion(0.95, 0.3, 0.05, 64)
	if parallelRate(&cfg, &noisy, 32, 32, 0, 0, 32) >= parallelRate(&cfg, &quiet, 32, 32, 0, 0, 32) {
		t.Error("higher sync cost should slow a wide region")
	}
}

func TestParallelRateContention(t *testing.T) {
	cfg := Eval32().withDefaults()
	memBound := testRegion(0.95, 0.9, 0.005, 32)
	loaded := parallelRate(&cfg, &memBound, 8, 8, 96, 80, 32)
	alone := parallelRate(&cfg, &memBound, 8, 8, 0, 0, 32)
	if loaded >= alone {
		t.Error("memory pressure from co-runners should depress a memory-bound region")
	}
	computeBound := testRegion(0.95, 0.05, 0.005, 32)
	dropMem := alone / loaded
	dropCompute := parallelRate(&cfg, &computeBound, 8, 8, 0, 0, 32) /
		parallelRate(&cfg, &computeBound, 8, 8, 96, 80, 32)
	if dropCompute >= dropMem {
		t.Errorf("memory-bound code should suffer more from contention: %v vs %v", dropMem, dropCompute)
	}
}

func TestParallelRateOversubscriptionOptimum(t *testing.T) {
	// With a small slot, the best thread count is near the slot, not the
	// machine width — the physics behind §7.1's "spawning many threads
	// slows down the program".
	cfg := Eval32().withDefaults()
	r := testRegion(0.97, 0.5, 0.01, 64)
	slot := 4.6
	bestN, bestV := 0, -1.0
	for n := 1; n <= 32; n++ {
		v := parallelRate(&cfg, &r, n, slot, 192, 120, 32)
		if v > bestV {
			bestN, bestV = n, v
		}
	}
	if bestN > 12 {
		t.Errorf("loaded optimum at %d threads; expected near the slot (~5)", bestN)
	}
	wide := parallelRate(&cfg, &r, 32, slot, 192, 120, 32)
	if wide >= bestV*0.95 {
		t.Error("machine-width threading should be visibly worse than the optimum under load")
	}
}

func TestSerialRate(t *testing.T) {
	cfg := Eval32().withDefaults()
	r := testRegion(0.9, 0.5, 0.01, 32)
	full := serialRate(&cfg, &r, 1, 1, 0, 32)
	if full > 1 {
		t.Errorf("serial speed cannot exceed one core: %v", full)
	}
	squeezed := serialRate(&cfg, &r, 0.5, 200, 100, 32)
	if squeezed >= full {
		t.Error("a squeezed slot plus contention should slow the serial phase")
	}
}

func TestAffinityReducesMigrationCost(t *testing.T) {
	base := Eval32().withDefaults()
	withAff := base
	withAff.Affinity = true
	r := testRegion(0.95, 0.8, 0.01, 32)
	plain := parallelRate(&base, &r, 8, 8, 64, 40, 32)
	pinned := parallelRate(&withAff, &r, 8, 8, 64, 40, 32)
	if pinned <= plain {
		t.Error("affinity should speed up a memory-bound region on a busy machine")
	}
	// Compute-bound code barely cares.
	c := testRegion(0.99, 0.02, 0.001, 64)
	plainC := parallelRate(&base, &c, 8, 8, 64, 40, 32)
	pinnedC := parallelRate(&withAff, &c, 8, 8, 64, 40, 32)
	if (pinned/plain - 1) <= (pinnedC/plainC - 1) {
		t.Error("affinity gain should be larger for memory-bound code")
	}
}

func TestRegionRateComposesPhases(t *testing.T) {
	cfg := Eval32().withDefaults()
	r := testRegion(0.5, 0.1, 0.001, 64)
	// With p=0.5, even infinite parallelism at most doubles throughput.
	r32 := regionRate(&cfg, &r, 32, 32, 0, 0, 32)
	r1 := regionRate(&cfg, &r, 1, 32, 0, 0, 32)
	if r32/r1 > 2.01 {
		t.Errorf("Amdahl bound violated: speedup %v with p=0.5", r32/r1)
	}
}

func TestRateCurveShape(t *testing.T) {
	cfg := Eval32()
	prog, err := workload.ByName("ep")
	if err != nil {
		t.Fatal(err)
	}
	iso := RateCurve(cfg, prog.Regions[0], 0, 0, 0, 32)
	if len(iso) != 32 {
		t.Fatalf("curve length %d", len(iso))
	}
	if iso[31] < iso[0]*20 {
		t.Errorf("ep isolated speedup only %v", iso[31]/iso[0])
	}
	cg, _ := workload.ByName("cg")
	cgIso := RateCurve(cfg, cg.Regions[0], 0, 0, 0, 32)
	peak, peakN := -1.0, 0
	for i, v := range cgIso {
		if v > peak {
			peak, peakN = v, i+1
		}
	}
	if peakN > 20 {
		t.Errorf("cg isolated optimum at %d threads; should peak early (irregular program)", peakN)
	}
	if cgIso[31] >= peak {
		t.Error("cg at 32 threads should be worse than its peak (§7.1)")
	}
}

func TestScalabilityClassesDiverge(t *testing.T) {
	// The P/4 split the experts are built on must hold in the model:
	// ep/lu/bt/sp scale, cg/is/mg/art don't (32-core machine).
	cfg := Eval32()
	speedupAt32 := func(name string) float64 {
		p, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		// Work-weighted speedup across regions.
		var t1, t32 float64
		for _, r := range p.Regions {
			c1 := RateCurve(cfg, r, 0, 0, 0, 32)[0]
			c32 := RateCurve(cfg, r, 0, 0, 0, 32)[31]
			t1 += r.Work / c1
			t32 += r.Work / c32
		}
		return t1 / t32
	}
	for _, name := range []string{"ep", "lu", "bt", "sp"} {
		if s := speedupAt32(name); s < 8 {
			t.Errorf("%s speedup %v < P/4: should be scalable", name, s)
		}
	}
	for _, name := range []string{"cg", "is", "art"} {
		if s := speedupAt32(name); s >= 8 {
			t.Errorf("%s speedup %v ≥ P/4: should be non-scalable", name, s)
		}
	}
}
