package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// fuzzSeedSnapshot builds one valid snapshot for the corpus.
func fuzzSeedSnapshot(f *testing.F) []byte {
	f.Helper()
	analytic := PolicyState{Kind: PolicyStateless}
	st := &State{
		PolicyName: "default", MaxThreads: 8, Decisions: 12, LastN: 4,
		Clock: 3, LastAvail: 8, Hist: map[int]int{4: 12}, Policy: analytic,
	}
	data, err := EncodeSnapshot(st, 1)
	if err != nil {
		f.Fatalf("seed snapshot: %v", err)
	}
	return data
}

// FuzzRestoreSnapshot feeds arbitrary bytes to the snapshot decoder: it must
// never panic, and anything it accepts must re-encode deterministically to a
// snapshot that decodes to the same state (no silent mangling).
func FuzzRestoreSnapshot(f *testing.F) {
	seed := fuzzSeedSnapshot(f)
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte("MOEC"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	// A corrupted variant: valid frame, flipped payload byte.
	mut := append([]byte(nil), seed...)
	mut[len(mut)/2] ^= 0x10
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		st, run, err := DecodeSnapshot(data)
		if err != nil {
			return // rejected, as most inputs should be
		}
		// Accepted: the state must survive an encode/decode round trip
		// bit-identically (semantic fixpoint — the original bytes may
		// differ, e.g. non-minimal varints, but the state may not).
		enc1, err := EncodeSnapshot(st, run)
		if err != nil {
			t.Fatalf("accepted state failed to re-encode: %v", err)
		}
		st2, run2, err := DecodeSnapshot(enc1)
		if err != nil {
			t.Fatalf("re-encoded snapshot rejected: %v", err)
		}
		if !reflect.DeepEqual(st, st2) || run != run2 {
			t.Fatalf("state changed across re-encode:\n %+v (run %d)\n %+v (run %d)", st, run, st2, run2)
		}
	})
}

// FuzzReplayJournal feeds arbitrary bytes as a journal file (behind a valid
// snapshot): recovery must never panic, never error, and every recovered
// entry must itself re-encode cleanly.
func FuzzReplayJournal(f *testing.F) {
	snapshot := fuzzSeedSnapshot(f)

	// Seed: a valid journal with a header (run 1, epoch 12) and two entries.
	valid := appendRecord(nil, recordJournalHeader, func() []byte {
		e := &enc{}
		e.int(1)
		e.int(12)
		return e.b
	}())
	for i := 0; i < 2; i++ {
		e := &enc{}
		obs := Observation{Time: float64(i), Rate: 100, AvailableProcs: 8}
		encodeObservation(e, &obs)
		valid = appendRecord(valid, recordJournalEntry, e.b)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x00}, 40))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, snapName(fileID{1, 12})), snapshot, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, journalName(fileID{1, 12})), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		rec, err := s.Recover()
		if err != nil {
			t.Fatalf("Recover must absorb corruption, got error: %v", err)
		}
		if rec.State == nil || rec.State.Decisions != 12 {
			t.Fatalf("intact snapshot lost during journal replay: %+v", rec.State)
		}
		for i := range rec.Tail {
			e := &enc{}
			encodeObservation(e, &rec.Tail[i])
			d := &dec{b: e.b}
			back := decodeObservation(d)
			if d.done() != nil {
				t.Fatalf("recovered entry %d does not decode", i)
			}
			// Compare re-encoded bytes, not values: a fuzzed journal may
			// legally carry NaN floats, which defeat DeepEqual.
			e2 := &enc{}
			encodeObservation(e2, &back)
			if !bytes.Equal(e.b, e2.b) {
				t.Fatalf("recovered entry %d does not round-trip", i)
			}
		}
	})
}
