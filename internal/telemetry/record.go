package telemetry

import "strconv"

// Record is the structured trace of one decision: what the runtime was
// told, what it repaired, what the policy's internals did with it, what
// came out, and what it cost. The runtime fills the outer fields; a policy
// implementing Detailer fills the mixture-internal ones. Fields are JSON-
// tagged for the NDJSON trace writer (see tracewriter.go).
type Record struct {
	// Seq is the decision index (0-based).
	Seq int `json:"seq"`
	// Time is the sanitized decision clock (seconds).
	Time float64 `json:"time"`
	// RawFeatures is the state exactly as the host reported it, before
	// sanitization.
	RawFeatures []float64 `json:"raw_features,omitempty"`
	// Features is the sanitized state the policy layer received.
	Features []float64 `json:"features,omitempty"`
	// RuntimeRepaired counts feature components the runtime's sanitizer
	// repaired on this observation.
	RuntimeRepaired int `json:"runtime_repaired,omitempty"`
	// PolicyRepaired counts components the policy-level sanitizer repaired —
	// nonzero only when something between runtime and policy (e.g. a chaos
	// injector) re-corrupted the observation.
	PolicyRepaired int `json:"policy_repaired,omitempty"`
	// GatingErrors are the per-expert raw environment-prediction errors a^k
	// scored on this step (empty on the first step and on suspect steps,
	// when nothing is scored).
	GatingErrors []float64 `json:"gating_errors,omitempty"`
	// SelectedExpert is the index of the expert that produced the decision;
	// -1 when no expert did (OS-default fallback, or a non-mixture policy).
	SelectedExpert int `json:"selected_expert"`
	// FallbackRung names how far down the degradation ladder the decision
	// was served: "selector", "reroute" (selector's choice quarantined,
	// healthiest expert substituted) or "os-default" (whole pool
	// quarantined). Empty for policies without a ladder.
	FallbackRung string `json:"fallback_rung,omitempty"`
	// Suspect reports the sensor-trust verdict: true when the observation
	// was disbelieved and the decision ran against the last trusted state.
	Suspect bool `json:"suspect,omitempty"`
	// HealthEvents are the expert health-state transitions this decision
	// caused.
	HealthEvents []HealthEvent `json:"health_events,omitempty"`
	// PoolSize is the live expert-pool size at the end of the decision.
	// Zero for policies without an expert pool.
	PoolSize int `json:"pool_size,omitempty"`
	// PoolEpoch counts pool-membership changes (births + retirements)
	// since construction; a reader seeing it advance knows per-expert
	// series have been re-indexed.
	PoolEpoch int `json:"pool_epoch,omitempty"`
	// PoolEvents are the expert births and retirements this decision's
	// lifecycle step performed (evolution only; almost always empty).
	PoolEvents []PoolEvent `json:"pool_events,omitempty"`
	// PoolAges holds each live expert's age in decisions, indexed like the
	// pool. Filled only when evolution is active.
	PoolAges []int `json:"pool_ages,omitempty"`
	// Threads is the decision: the thread count returned to the host.
	Threads int `json:"threads"`
	// AvailableProcs is the resolved processor availability the decision
	// used (after the dropout-fallback ladder).
	AvailableProcs int `json:"available_procs"`
	// DecisionNanos is the end-to-end latency of Runtime.Decide.
	DecisionNanos int64 `json:"decision_ns"`
	// JournalNanos is the write-ahead journal append latency (0 when no
	// store is attached).
	JournalNanos int64 `json:"journal_ns,omitempty"`
	// SnapshotNanos is the checkpoint snapshot latency, on decisions that
	// wrote one.
	SnapshotNanos int64 `json:"snapshot_ns,omitempty"`
	// CheckpointErr carries the latched checkpoint failure, if any — every
	// record after the failure repeats it, making a silently degraded store
	// visible in the trace stream.
	CheckpointErr string `json:"checkpoint_err,omitempty"`
}

// HealthEvent is one expert health-state transition.
type HealthEvent struct {
	Expert int    `json:"expert"`
	From   string `json:"from"`
	To     string `json:"to"`
}

// PoolEvent is one expert-pool membership change: a birth (Kind "birth",
// with the parents the candidate was bred from) or a retirement (Kind
// "retire").
type PoolEvent struct {
	Kind    string   `json:"kind"`
	Expert  string   `json:"expert"`
	Parents []string `json:"parents,omitempty"`
}

// Sink receives completed decision records. RecordDecision is called under
// the runtime's decision lock; the record (and its slices) is scratch the
// runtime reuses on the next decision, so sinks must copy anything they
// keep past the call. Sinks must be fast. A sink may read the runtime's
// shard-backed accessors (Decisions, ThreadHistogram, PolicyName,
// CheckpointErr, BatchStats, SanitizedValues) — they never take the
// decision lock — but must not call Decide/DecideBatch, Snapshot/Restore or
// MixtureStatsSnapshot, which do.
type Sink interface {
	RecordDecision(rec *Record)
}

// Detailer is implemented by policies (the mixture) that can report
// per-decision internals. EnableDecisionDetail turns the bookkeeping on;
// DecisionDetail copies the most recent decision's internals into rec and
// reports whether detail was available. Enabling detail must not change any
// decision.
type Detailer interface {
	EnableDecisionDetail()
	DecisionDetail(rec *Record) bool
}

// multiSink fans records out to several sinks in order.
type multiSink []Sink

func (m multiSink) RecordDecision(rec *Record) {
	for _, s := range m {
		s.RecordDecision(rec)
	}
}

// MultiSink composes sinks; nil entries are dropped. With zero or one
// usable sink it returns nil or that sink unwrapped.
func MultiSink(sinks ...Sink) Sink {
	var out multiSink
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}

// RegistrySink folds decision records into registry metrics: counters for
// every decision-path event, histograms for latencies, gauges for current
// state. One sink per runtime; the registry may be shared.
type RegistrySink struct {
	decisions   *Counter
	suspects    *Counter
	reroutes    *Counter
	fallbacks   *Counter
	rtRepairs   *Counter
	polRepairs  *Counter
	quarantines *Counter
	decLatency  *Histogram
	jrnLatency  *Histogram
	snapLatency *Histogram
	threads     *Gauge
	ckptErr     *Gauge
	ckptErrs    *Counter
	poolSize    *Gauge
	poolEpoch   *Gauge
	poolBirths  *Counter
	poolRetires *Counter

	reg         *Registry
	selections  []*Counter          // per-expert, grown on demand
	ages        []*Gauge            // per-expert pool age, grown on demand
	transitions map[string]*Counter // health transitions by to-state
	degraded    bool                // last value written to ckptErr
	batch       *batchMetrics       // moe_decide_batch_* family, lazy (batch.go)
}

// NewRegistrySink builds a sink over reg (nil reg yields a sink whose
// updates are all no-ops).
func NewRegistrySink(reg *Registry) *RegistrySink {
	return &RegistrySink{
		decisions:   reg.Counter("moe_decisions_total", "Decisions served by the runtime."),
		suspects:    reg.Counter("moe_suspect_observations_total", "Observations the sensor-trust layer disbelieved."),
		reroutes:    reg.Counter("moe_rerouted_decisions_total", "Selections moved off a quarantined expert."),
		fallbacks:   reg.Counter("moe_fallback_decisions_total", "Decisions served by the OS-default fallback."),
		rtRepairs:   reg.Counter("moe_repaired_values_total", "Feature components repaired by the sanitizer.", "stage", "runtime"),
		polRepairs:  reg.Counter("moe_repaired_values_total", "Feature components repaired by the sanitizer.", "stage", "policy"),
		quarantines: reg.Counter("moe_quarantines_total", "Expert quarantine entries."),
		decLatency:  reg.Histogram("moe_decision_seconds", "End-to-end Runtime.Decide latency.", nil),
		jrnLatency:  reg.Histogram("moe_checkpoint_journal_seconds", "Write-ahead journal append latency.", nil),
		snapLatency: reg.Histogram("moe_checkpoint_snapshot_seconds", "Checkpoint snapshot write latency.", nil),
		threads:     reg.Gauge("moe_threads", "Most recently chosen thread count."),
		ckptErr:     reg.Gauge("moe_checkpoint_degraded", "1 when the checkpoint store has latched a write failure."),
		ckptErrs:    reg.Counter("moe_checkpoint_errors_total", "Decisions recorded while checkpointing was degraded."),
		poolSize:    reg.Gauge("moe_pool_size", "Live expert-pool size."),
		poolEpoch:   reg.Gauge("moe_pool_epoch", "Pool-membership changes since construction."),
		poolBirths:  reg.Counter("moe_pool_births_total", "Experts born by the online lifecycle."),
		poolRetires: reg.Counter("moe_pool_retirements_total", "Experts retired by the online lifecycle."),
		reg:         reg,
		transitions: make(map[string]*Counter),
	}
}

// RecordDecision implements Sink.
func (s *RegistrySink) RecordDecision(rec *Record) {
	s.decisions.Inc()
	s.decLatency.Observe(float64(rec.DecisionNanos) / 1e9)
	s.threads.Set(float64(rec.Threads))
	s.rtRepairs.Add(int64(rec.RuntimeRepaired))
	s.polRepairs.Add(int64(rec.PolicyRepaired))
	if rec.Suspect {
		s.suspects.Inc()
	}
	switch rec.FallbackRung {
	case "reroute":
		s.reroutes.Inc()
	case "os-default":
		s.fallbacks.Inc()
	}
	if rec.SelectedExpert >= 0 {
		for len(s.selections) <= rec.SelectedExpert {
			s.selections = append(s.selections,
				s.reg.Counter("moe_expert_selections_total", "Decisions served per expert.",
					"expert", strconv.Itoa(len(s.selections))))
		}
		s.selections[rec.SelectedExpert].Inc()
	}
	for _, ev := range rec.HealthEvents {
		c, ok := s.transitions[ev.To]
		if !ok {
			c = s.reg.Counter("moe_health_transitions_total", "Expert health-state transitions by destination state.", "to", ev.To)
			s.transitions[ev.To] = c
		}
		c.Inc()
		if ev.To == "quarantined" {
			s.quarantines.Inc()
		}
	}
	if rec.PoolSize > 0 {
		s.poolSize.Set(float64(rec.PoolSize))
		s.poolEpoch.Set(float64(rec.PoolEpoch))
	}
	for _, ev := range rec.PoolEvents {
		switch ev.Kind {
		case "birth":
			s.poolBirths.Inc()
		case "retire":
			s.poolRetires.Inc()
		}
	}
	for i, age := range rec.PoolAges {
		for len(s.ages) <= i {
			s.ages = append(s.ages,
				s.reg.Gauge("moe_pool_expert_age", "Age in decisions of each pool slot.",
					"expert", strconv.Itoa(len(s.ages))))
		}
		s.ages[i].Set(float64(age))
	}
	if rec.JournalNanos > 0 {
		s.jrnLatency.Observe(float64(rec.JournalNanos) / 1e9)
	}
	if rec.SnapshotNanos > 0 {
		s.snapLatency.Observe(float64(rec.SnapshotNanos) / 1e9)
	}
	if rec.CheckpointErr != "" {
		s.ckptErr.Set(1)
		s.degraded = true
		s.ckptErrs.Inc()
	} else if s.degraded {
		s.ckptErr.Set(0)
		s.degraded = false
	}
}
