package moe

import (
	"math"
	"time"

	"moe/internal/checkpoint"
	"moe/internal/features"
	"moe/internal/sim"
	"moe/internal/stats"
	"moe/internal/telemetry"
)

// Batched deciding. DecideBatch is semantically one Decide per observation,
// in order — byte-identical decisions, mixture statistics, health
// transitions, journal contents and telemetry counters, pinned by the
// differential harness in runtime_batch_test.go — with the writer lock
// taken once per batch, the read shards republished once per batch, and
// each observation dispatched by regime:
//
//   - Healthy regime (the steady state): the wrapped policy is the mixture
//     itself, no sink is attached, no checkpoint error is latched, and the
//     mixture's pure FastPlan proves that no rung of the degradation ladder
//     can fire on this observation. The decision is then served by the
//     precompiled fast path — memoized gating, scratch buffers, deferred
//     histogram counts — at 0 allocs/op.
//   - Anything else — dirty features, a repaired timestamp, suspect or
//     storming sensors, quarantine or probation live, detail capture on,
//     a wrapped (e.g. chaos-injected) policy, checkpointing degraded —
//     demotes that observation to the full Decide ladder, unmodified,
//     because the failed plan mutated nothing.
//
// The runtime-level gate mirrors decideLocked's sanitize/rate/availability/
// clock arithmetic exactly; the one deliberate tightening is that a
// timestamp the runtime would have to repair (non-finite or regressed)
// demotes instead of being silently clamped on the fast path — repair is
// the full ladder's business. Demotion never changes a decision, only which
// path serves it.

// BatchStats reports the batch dispatcher's lifetime outcomes. Shard-backed
// and lock-free, like Decisions.
type BatchStats struct {
	// Batches counts DecideBatch calls served.
	Batches int
	// FastDecisions counts batch decisions served by the healthy-regime
	// fast path.
	FastDecisions int
	// FullDecisions counts batch decisions routed through the full ladder.
	FullDecisions int
}

// BatchStats returns the dispatcher counters published by the last
// completed batch.
func (r *Runtime) BatchStats() BatchStats {
	r.counters.mu.RLock()
	defer r.counters.mu.RUnlock()
	return BatchStats{
		Batches:       r.counters.batches,
		FastDecisions: r.counters.batchFast,
		FullDecisions: r.counters.batchFull,
	}
}

// DecideBatch decides every observation in order and returns the thread
// counts. Equivalent to calling Decide per observation; see the package
// notes above for what is amortized.
func (r *Runtime) DecideBatch(obs []Observation) []int {
	return r.DecideBatchInto(make([]int, 0, len(obs)), obs)
}

// DecideBatchInto is DecideBatch appending into dst (which may be nil),
// letting steady-state callers reuse one result buffer across batches and
// keep the whole call allocation-free.
func (r *Runtime) DecideBatchInto(dst []int, obs []Observation) []int {
	if len(obs) == 0 {
		return dst
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var start time.Duration
	if r.batchSink != nil {
		start = time.Since(monoBase)
	}
	fastBefore, fullBefore := r.batchFast, r.batchFull
	for i := range obs {
		dst = append(dst, r.decideBatchOneLocked(&obs[i]))
	}
	r.flushBatchLocked()
	r.batches++
	if r.batchSink != nil {
		r.batchRec = telemetry.BatchRecord{
			Size:     len(obs),
			FastPath: r.batchFast - fastBefore,
			FullPath: r.batchFull - fullBefore,
			Nanos:    (time.Since(monoBase) - start).Nanoseconds(),
		}
		r.batchSink.RecordBatch(&r.batchRec)
	}
	r.publishLocked()
	return dst
}

// decideBatchOneLocked dispatches one batched observation by regime.
func (r *Runtime) decideBatchOneLocked(o *Observation) int {
	if r.sink == nil && r.mix != nil && r.ckptErr == nil {
		if n, ok := r.tryFastLocked(o); ok {
			r.batchFast++
			return n
		}
	}
	r.batchFull++
	return r.decideFullLocked(*o)
}

// tryFastLocked attempts o on the healthy-regime fast path: the runtime
// gate replays decideLocked's input arithmetic pure, the mixture's FastPlan
// proves the ladder cold, and only then is anything — journal, runtime
// counters, mixture state — committed. A false return leaves the runtime
// and policy exactly as they were.
func (r *Runtime) tryFastLocked(o *Observation) (int, bool) {
	// Feature cleanliness is FastPlan's first proof obligation; the runtime
	// gate only needs to vet the inputs the mixture never sees.
	tm := o.Time
	if math.IsNaN(tm) || math.IsInf(tm, 0) || tm < r.clock {
		// A timestamp the runtime would have to repair is a distrusted
		// input; repairs belong to the full ladder.
		return 0, false
	}
	rate := o.Rate
	if math.IsNaN(rate) || math.IsInf(rate, 0) || rate < 0 {
		rate = 0
	}
	avail := o.AvailableProcs
	if avail <= 0 {
		avail = int(o.Features[features.Processors])
	}
	if avail <= 0 {
		avail = r.lastAvail
	}
	if avail <= 0 {
		avail = r.maxThreads
	}
	if avail > r.maxThreads {
		avail = r.maxThreads
	}
	d := sim.Decision{
		Time:           tm,
		Features:       o.Features,
		Rate:           rate,
		CurrentThreads: r.lastN,
		MaxThreads:     r.maxThreads,
		AvailableProcs: avail,
		RegionStart:    o.RegionStart,
		RegionIndex:    r.decisions,
	}
	if !r.mix.FastPlan(&d) {
		return 0, false
	}
	// The plan holds; the decision will be served. Journal the raw
	// observation first (write-ahead, exactly as Decide orders it — the
	// plan was pure, so nothing observable happened before this append).
	// An append failure latches, and the decision is still served from
	// memory, as on the full path.
	if r.store != nil {
		if err := r.store.Append(checkpoint.Observation{
			Time:           o.Time,
			Features:       o.Features,
			Rate:           o.Rate,
			RegionStart:    o.RegionStart,
			AvailableProcs: o.AvailableProcs,
		}); err != nil {
			r.ckptErr = err
		}
	}
	n := r.mix.FastCommit(&d)
	n = stats.ClampInt(n, 1, r.maxThreads)
	r.lastAvail = avail
	r.clock = tm
	r.lastN = n
	r.decisions++
	r.histDeferred[n]++ // n ≤ maxThreads: always in range
	if r.store != nil && r.ckptErr == nil && r.checkpointEvery > 0 && r.decisions%r.checkpointEvery == 0 {
		// Snapshots must capture the canonical histograms, so fold the
		// deferred counts in before capturing.
		r.flushBatchLocked()
		if st, err := r.snapshotLocked(); err != nil {
			r.ckptErr = err
		} else if err := r.store.WriteSnapshot(st); err != nil {
			r.ckptErr = err
		}
	}
	return n, true
}

// flushBatchLocked folds the batch's deferred histogram increments —
// runtime-level and mixture-level — into the canonical histograms. Called
// before the writer lock is released (and before any snapshot), so no
// reader or snapshot can observe the deferred state.
func (r *Runtime) flushBatchLocked() {
	if r.mix != nil {
		r.mix.FlushFast()
	}
	for n, c := range r.histDeferred {
		if c != 0 {
			r.histAdd(n, c)
			r.histDeferred[n] = 0
		}
	}
}

// DecideBatch implements sim.BatchPolicy for the runtime adapter: engine-
// driven batch experiments exercise the real batched path.
func (p runtimePolicy) DecideBatch(ds []sim.Decision) []int {
	obs := make([]Observation, len(ds))
	for i, d := range ds {
		obs[i] = Observation{
			Time:           d.Time,
			Features:       d.Features,
			Rate:           d.Rate,
			RegionStart:    d.RegionStart,
			AvailableProcs: d.AvailableProcs,
		}
	}
	return p.r.DecideBatch(obs)
}
