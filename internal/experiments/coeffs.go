package experiments

import (
	"fmt"
	"math"

	"moe/internal/expert"
	"moe/internal/features"
	"moe/internal/training"
)

// CoefficientsTable reproduces Table 1: the regression coefficients of the
// thread predictor w and (norm-projected) environment predictor m of every
// expert, trained on the full dataset (Table 1 is the deployed model, not a
// leave-one-out fold).
func (l *Lab) CoefficientsTable() (*Table, error) {
	set, err := training.BuildExperts4(l.DS)
	if err != nil {
		return nil, err
	}
	t := &Table{Title: "Table 1 — regression coefficients per expert"}
	for _, e := range set {
		t.Columns = append(t.Columns, e.Name+".w", e.Name+".m")
	}
	rows := make([][]float64, features.Dim+1)
	for i := range rows {
		rows[i] = make([]float64, 0, 2*len(set))
	}
	for _, e := range set {
		w := e.Threads.Coefficients()
		m, err := normProjection(e)
		if err != nil {
			return nil, err
		}
		for i := 0; i <= features.Dim; i++ {
			rows[i] = append(rows[i], w[i], m[i])
		}
	}
	// Interleave back into row-major layout.
	for i := 0; i < features.Dim; i++ {
		vals := make([]float64, 0, 2*len(set))
		for k := range set {
			vals = append(vals, rows[i][2*k], rows[i][2*k+1])
		}
		t.AddRow(fmt.Sprintf("f%d %s", i+1, features.Names[i]), vals...)
	}
	vals := make([]float64, 0, 2*len(set))
	for k := range set {
		vals = append(vals, rows[features.Dim][2*k], rows[features.Dim][2*k+1])
	}
	t.AddRow("β regression constant", vals...)
	t.Notes = append(t.Notes,
		"m columns show the environment predictor projected to the norm target (Table 1's shape); the deployed predictor is the per-dimension vector model")
	return t, nil
}

// normProjection fits a Table-1-shaped single linear model predicting the
// next environment norm, for display alongside the vector model actually
// deployed.
func normProjection(e *expert.Expert) ([]float64, error) {
	if vm, ok := e.Env.(expert.VectorEnvModel); ok {
		// Project by predicting the norm of the vector model's output
		// is nonlinear; instead refit on the same slice is unavailable
		// here, so approximate with the norm of per-dimension
		// coefficient rows: coefficient of feature j for the norm is
		// the aggregate sensitivity √Σ_d m_dj².
		out := make([]float64, features.Dim+1)
		for j := 0; j <= features.Dim; j++ {
			s := 0.0
			for _, m := range vm.Models {
				c := m.Coefficients()
				s += c[j] * c[j]
			}
			out[j] = math.Sqrt(s)
		}
		return out, nil
	}
	if nm, ok := e.Env.(expert.NormEnvModel); ok {
		return nm.Model.Coefficients(), nil
	}
	return nil, fmt.Errorf("experiments: unsupported environment model %T", e.Env)
}

// FeatureImpact reproduces Fig 6: the impact π of each feature on each
// expert's thread predictor (drop in leave-one-program-out accuracy when
// the feature is ablated), normalized per expert, with the cross-expert
// average in the last column.
func (l *Lab) FeatureImpact() (*Table, error) {
	splits := []struct {
		name     string
		scalable bool
		cores    int
	}{
		{"E1", true, 32}, {"E2", true, 12}, {"E3", false, 32}, {"E4", false, 12},
	}
	t := &Table{Title: "Fig 6 — feature impact π per expert"}
	var perExpert [][]features.Impact
	for _, sp := range splits {
		sub := l.DS.Filter(func(s training.LabeledSample) bool {
			return s.Scalable == sp.scalable && s.PlatformCores == sp.cores
		})
		if len(sub.Samples) == 0 {
			sub = l.DS
		}
		impacts, err := training.FeatureImpacts(sub, training.ThreadPredictor)
		if err != nil {
			return nil, err
		}
		perExpert = append(perExpert, impacts)
		t.Columns = append(t.Columns, sp.name)
	}
	t.Columns = append(t.Columns, "avg π")
	avg, err := features.AverageImpacts(perExpert)
	if err != nil {
		return nil, err
	}
	for i := 0; i < features.Dim; i++ {
		vals := make([]float64, 0, len(perExpert)+1)
		for _, impacts := range perExpert {
			vals = append(vals, impacts[i].Share)
		}
		vals = append(vals, avg[i].Share)
		t.AddRow(features.Names[i], vals...)
	}
	return t, nil
}

// CrossValidation summarizes leave-one-program-out quality of the two
// predictors on the full dataset — the §5.2.3 methodology check.
func (l *Lab) CrossValidation() (*Table, error) {
	t := &Table{
		Title:   "Cross-validation (leave one program out)",
		Columns: []string{"MAE", "RMSE", "R2", "accuracy"},
	}
	for _, kind := range []training.PredictorKind{training.ThreadPredictor, training.EnvPredictor} {
		m, err := training.CrossValidate(l.DS, kind)
		if err != nil {
			return nil, err
		}
		t.AddRow(kind.String(), m.MAE, m.RMSE, m.R2, m.Accuracy)
	}
	return t, nil
}
