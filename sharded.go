package moe

import "fmt"

// ShardedRuntime partitions decision traffic across independent runtimes so
// concurrent hosts (one stream per tuned program, say) stop serializing on a
// single writer lock. Each shard is a complete Runtime wrapping its own
// policy instance — policies are stateful online learners, so shards
// deliberately do not share learned state; a stream keyed to shard i always
// learns from, and only from, its own history. Decide and DecideBatch route
// by key (key % Shards): streams with distinct keys proceed fully in
// parallel, and calls sharing a key serialize exactly as a single Runtime
// would. The merged accessors fold the shards' lock-free read snapshots, so
// they are as safe under concurrency as the single-runtime ones.
type ShardedRuntime struct {
	shards []*Runtime
}

// NewShardedRuntime builds shards independent runtimes, each wrapping the
// policy built by build(shard). build must return a fresh policy per call —
// sharing one stateful policy across shards would race its internal state.
func NewShardedRuntime(shards, maxThreads int, build func(shard int) (Policy, error)) (*ShardedRuntime, error) {
	if shards < 1 {
		return nil, fmt.Errorf("moe: shard count must be at least 1, got %d", shards)
	}
	if build == nil {
		return nil, fmt.Errorf("moe: nil shard policy builder")
	}
	s := &ShardedRuntime{shards: make([]*Runtime, shards)}
	for i := range s.shards {
		p, err := build(i)
		if err != nil {
			return nil, fmt.Errorf("moe: building shard %d policy: %w", i, err)
		}
		r, err := NewRuntime(p, maxThreads)
		if err != nil {
			return nil, err
		}
		s.shards[i] = r
	}
	return s, nil
}

// Shards returns the shard count.
func (s *ShardedRuntime) Shards() int { return len(s.shards) }

// Shard returns shard i's runtime for per-shard attachment (telemetry,
// checkpoint stores) and inspection.
func (s *ShardedRuntime) Shard(i int) *Runtime { return s.shards[i] }

func (s *ShardedRuntime) shard(key uint64) *Runtime {
	return s.shards[key%uint64(len(s.shards))]
}

// Decide routes one observation to key's shard.
func (s *ShardedRuntime) Decide(key uint64, obs Observation) int {
	return s.shard(key).Decide(obs)
}

// DecideBatch routes a batch to key's shard.
func (s *ShardedRuntime) DecideBatch(key uint64, obs []Observation) []int {
	return s.shard(key).DecideBatch(obs)
}

// DecideBatchInto is DecideBatch appending into dst (which may be nil).
func (s *ShardedRuntime) DecideBatchInto(key uint64, dst []int, obs []Observation) []int {
	return s.shard(key).DecideBatchInto(dst, obs)
}

// Decisions returns the total decisions published across all shards.
func (s *ShardedRuntime) Decisions() int {
	total := 0
	for _, r := range s.shards {
		total += r.Decisions()
	}
	return total
}

// BatchStats returns the dispatcher counters summed across all shards.
func (s *ShardedRuntime) BatchStats() BatchStats {
	var out BatchStats
	for _, r := range s.shards {
		b := r.BatchStats()
		out.Batches += b.Batches
		out.FastDecisions += b.FastDecisions
		out.FullDecisions += b.FullDecisions
	}
	return out
}

// ThreadHistogram returns the thread-count distribution merged across all
// shards, weighted by each shard's decision count. Like the single-runtime
// accessor it returns a fresh map the caller may keep.
func (s *ShardedRuntime) ThreadHistogram() map[int]float64 {
	counts := make(map[int]int64)
	var total int64
	for _, r := range s.shards {
		cs, t := r.histCounts()
		total += t
		for n, c := range cs {
			if c != 0 {
				counts[n] += c
			}
		}
	}
	out := make(map[int]float64, len(counts))
	if total == 0 {
		return out
	}
	for n, c := range counts {
		out[n] = float64(c) / float64(total)
	}
	return out
}
