package telemetry

// Batch telemetry. DecideBatch emits one BatchRecord per call summarizing
// the dispatcher's outcome — how many decisions the healthy-regime fast
// path served and how many demoted to the full ladder. Per-decision
// telemetry is unchanged: with a Sink attached every decision takes the
// full per-record path (the fast path is only eligible on silent runtimes),
// so the moe_decide_batch_* families are strictly additive and the
// per-decision counter families stay byte-identical with batching on or
// off.

// BatchRecord summarizes one DecideBatch call.
type BatchRecord struct {
	// Size is the number of observations in the batch.
	Size int `json:"size"`
	// FastPath counts decisions served by the healthy-regime fast path.
	FastPath int `json:"fast_path"`
	// FullPath counts decisions routed through the full ladder.
	FullPath int `json:"full_path"`
	// Nanos is the end-to-end latency of the DecideBatch call.
	Nanos int64 `json:"batch_ns"`
}

// BatchSink is implemented by sinks that also want per-batch summaries.
// RecordBatch is called under the runtime's decision lock at the end of a
// batch; the record is scratch reused by the next batch, so sinks must copy
// what they keep. The Sink caveats apply unchanged.
type BatchSink interface {
	Sink
	RecordBatch(rec *BatchRecord)
}

// RecordBatch fans the batch record to every member sink that accepts
// batch summaries, making multiSink a BatchSink whenever it wraps one.
func (m multiSink) RecordBatch(rec *BatchRecord) {
	for _, s := range m {
		if b, ok := s.(BatchSink); ok {
			b.RecordBatch(rec)
		}
	}
}

// batchSizeBuckets spans the batch sizes hosts plausibly submit — the
// equivalence suite's {1, 2, 7, 64} all land in distinct buckets.
func batchSizeBuckets() []float64 {
	return []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
}

// batchMetrics is the RegistrySink's moe_decide_batch_* family handles,
// created lazily so sinks on runtimes that never batch register nothing.
type batchMetrics struct {
	batches *Counter
	fast    *Counter
	full    *Counter
	size    *Histogram
	latency *Histogram
}

func (s *RegistrySink) batchInit() *batchMetrics {
	if s.batch == nil {
		s.batch = &batchMetrics{
			batches: s.reg.Counter("moe_decide_batches_total", "DecideBatch calls served."),
			fast:    s.reg.Counter("moe_decide_batch_fast_decisions_total", "Batch decisions served by the healthy-regime fast path."),
			full:    s.reg.Counter("moe_decide_batch_full_decisions_total", "Batch decisions routed through the full ladder."),
			size:    s.reg.Histogram("moe_decide_batch_size", "Observations per DecideBatch call.", batchSizeBuckets()),
			latency: s.reg.Histogram("moe_decide_batch_seconds", "End-to-end DecideBatch latency.", nil),
		}
	}
	return s.batch
}

// RecordBatch implements BatchSink.
func (s *RegistrySink) RecordBatch(rec *BatchRecord) {
	b := s.batchInit()
	b.batches.Inc()
	b.fast.Add(int64(rec.FastPath))
	b.full.Add(int64(rec.FullPath))
	b.size.Observe(float64(rec.Size))
	b.latency.Observe(float64(rec.Nanos) / 1e9)
}
