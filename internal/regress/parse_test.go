package regress

import (
	"math"
	"testing"
)

// table1E1W is the E1 thread-predictor row from the paper's Table 1 —
// ten weights plus the regression constant β.
const table1E1W = "1.05, -1.52, 0.87, -0.62, 0.98, 0.003, 0.002, -0.013, -0.07, 0.004, -1.21"

func TestParseCoefficientsTable1(t *testing.T) {
	got, err := ParseCoefficients(table1E1W)
	if err != nil {
		t.Fatalf("ParseCoefficients(%q): %v", table1E1W, err)
	}
	want := []float64{1.05, -1.52, 0.87, -0.62, 0.98, 0.003, 0.002, -0.013, -0.07, 0.004, -1.21}
	if len(got) != len(want) {
		t.Fatalf("got %d coefficients, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("coefficient %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestParseCoefficientsSeparators(t *testing.T) {
	for _, s := range []string{"1, 2, 3", "1 2 3", "1;2;3", "1,\t2 ;3", " 1 , 2 , 3 "} {
		got, err := ParseCoefficients(s)
		if err != nil {
			t.Fatalf("ParseCoefficients(%q): %v", s, err)
		}
		if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
			t.Errorf("ParseCoefficients(%q) = %v, want [1 2 3]", s, got)
		}
	}
}

func TestParseCoefficientsRejects(t *testing.T) {
	for _, s := range []string{
		"", "   ", ",,;", "1, banana", "1, NaN", "1, Inf", "1, -Inf", "1..2",
		// Absurd magnitudes: a Table 1 row is O(1); these are corruption.
		"1, 1e7", "1, -2e9", "1e308, 2", "1, 1.0000001e6",
	} {
		if got, err := ParseCoefficients(s); err == nil {
			t.Errorf("ParseCoefficients(%q) = %v, want error", s, got)
		}
	}
	// The bound itself is inclusive.
	if _, err := ParseCoefficients("1, 1e6, -1e6"); err != nil {
		t.Errorf("ParseCoefficients at the magnitude bound: %v", err)
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	in := []float64{1.05, -1.52, 0.003, 1e-300, -6.8, 0, MaxCoefficient}
	out, err := ParseCoefficients(FormatCoefficients(in))
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip: got %d values, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("round trip [%d]: got %v, want %v", i, out[i], in[i])
		}
	}
}

func TestParseModelTable1(t *testing.T) {
	m, err := ParseModel(table1E1W)
	if err != nil {
		t.Fatalf("ParseModel: %v", err)
	}
	if m.Dim() != 10 {
		t.Errorf("Dim() = %d, want 10", m.Dim())
	}
	if m.Bias != -1.21 {
		t.Errorf("Bias = %v, want -1.21", m.Bias)
	}
	if got := FormatCoefficients(m.Coefficients()); got != table1E1W {
		t.Errorf("Coefficients() renders %q, want %q", got, table1E1W)
	}
}

func TestParseModelRejectsSingleValue(t *testing.T) {
	if m, err := ParseModel("3.14"); err == nil {
		t.Errorf("ParseModel(\"3.14\") = %v, want error (needs at least one weight plus bias)", m)
	}
}

// FuzzParseCoefficients checks the parser never panics, never accepts
// non-finite values, and that everything it accepts survives a
// format→parse round trip exactly.
func FuzzParseCoefficients(f *testing.F) {
	// The four thread-predictor (w) and environment-predictor (m) rows of
	// the paper's Table 1.
	f.Add(table1E1W)
	f.Add("-0.47, 0.35, 1.15, 0.39, 0.46, 0.29, 0.17, 0.64, 0.01, 0.002, 0.25")
	f.Add("-0.84, 1.12, 0.84, 0.05, 0.98, 0.02, 0.03, 0.227, 0.002, -0.08, -6.8")
	f.Add("1.02, -0.78, 0.05, 0.44, 0.002, 0.23, 0.09, 0.6, 0.05, -0.04, 0.28")
	f.Add("0.14, 0.95, -0.87, -0.48, 0.99, -0.15, 0.473, -1.07, 0.007, 0.01, -3.03")
	f.Add("1.1, 1.10, 0.54, 0.44, 0.142, 0.25, 0.07, 0.15, 0.06, 0.14, 0.33")
	f.Add("0.05, 0.03, -0.57, 0.004, 0.92, 0.22, 0.01, -0.62, 0.03, -0.14, -2.5")
	f.Add("0.74, 1.03, 1.12, 0.39, 0.74, 0.28, 0.09, 0.59, 0.12, 0.00, -0.0")
	f.Add("")
	f.Add("NaN Inf -Inf")
	f.Add("1;2;;3,,4 \t 5")
	f.Add("1e308 -1e308 1e-308")
	f.Add("nan, -nan, +Inf, Infinity")
	f.Add("1, 2, NaN, 4, 5, 6, 7, 8, 9, 10, 11")
	f.Add("1e7 -1e7 999999.9 1000000.1")
	f.Add("0x1p-1074 5e-324 -0")

	f.Fuzz(func(t *testing.T, s string) {
		coeffs, err := ParseCoefficients(s)
		if err != nil {
			return
		}
		if len(coeffs) == 0 {
			t.Fatalf("ParseCoefficients(%q) succeeded with zero values", s)
		}
		for i, c := range coeffs {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				t.Fatalf("ParseCoefficients(%q) accepted non-finite value %v at %d", s, c, i)
			}
			if math.Abs(c) > MaxCoefficient {
				t.Fatalf("ParseCoefficients(%q) accepted out-of-bound value %v at %d", s, c, i)
			}
		}
		// Round trip must be exact (including negative zero).
		again, err := ParseCoefficients(FormatCoefficients(coeffs))
		if err != nil {
			t.Fatalf("re-parsing formatted %q: %v", s, err)
		}
		if len(again) != len(coeffs) {
			t.Fatalf("round trip of %q changed length %d → %d", s, len(coeffs), len(again))
		}
		for i := range coeffs {
			if again[i] != coeffs[i] {
				t.Fatalf("round trip of %q changed value %d: %v → %v", s, i, coeffs[i], again[i])
			}
		}
		// Two or more values must always assemble into a model.
		if len(coeffs) >= 2 {
			m, err := ParseModel(s)
			if err != nil {
				t.Fatalf("ParseModel(%q) failed after ParseCoefficients succeeded: %v", s, err)
			}
			if m.Dim() != len(coeffs)-1 {
				t.Fatalf("ParseModel(%q).Dim() = %d, want %d", s, m.Dim(), len(coeffs)-1)
			}
		} else if _, err := ParseModel(s); err == nil {
			t.Fatalf("ParseModel(%q) accepted a single value", s)
		}
	})
}
