package sim

// curveCache memoizes per-thread-count rate sweeps (the curves behind
// oracleThreads and Sample.RateCurve) across control points. The sweep's
// output is fully determined by a small contention signature — processors
// online, which program is asking, its current region, and the (index,
// region, demand) triple of every other live program — and scenarios
// revisit the same signatures at almost every control point, so the cache
// turns consult's O(cores) model evaluations into a lookup on the steady
// state. Entries are verified against the full key on lookup (a hash
// collision falls through to recomputation), and recomputation runs the
// exact same parallelPhaseRate sweep, so cached and fresh curves are
// bitwise identical.
type curveCache struct {
	entries map[uint64]*curveEntry
	keyBuf  []uint64
}

type curveEntry struct {
	key   []uint64
	curve []float64
}

// maxCurveEntries bounds cache growth on adversarial scenarios (e.g. fuzz
// inputs that never revisit a signature); the map is dropped wholesale when
// full, which keeps the common steady-state case allocation-free.
const maxCurveEntries = 4096

// signature appends the contention signature of (in, insts, avail) to the
// cache's reusable key buffer. Demands are bounded by 4·Cores and region
// and program indices are small, so packing three values per co-runner
// into one word is lossless.
func (c *curveCache) signature(in *instance, insts []*instance, avail int) []uint64 {
	key := c.keyBuf[:0]
	prog := in.spec.Program
	key = append(key, uint64(avail)<<32|uint64(in.idx)<<16|uint64(in.regionIdx%len(prog.Regions)))
	for _, o := range insts {
		if o == in || !o.arrived || o.finished {
			continue
		}
		key = append(key, uint64(o.idx)<<48|uint64(o.regionIdx%len(o.spec.Program.Regions))<<32|uint64(o.demand()))
	}
	c.keyBuf = key
	return key
}

func hashKey(key []uint64) uint64 {
	// FNV-1a over the signature words.
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, w := range key {
		for i := 0; i < 8; i++ {
			h ^= (w >> (8 * i)) & 0xff
			h *= prime
		}
	}
	return h
}

func equalKey(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// curveFor returns the parallel-phase rate for every thread count
// 1..Cores in the instance's current environment, memoized on the
// contention signature. The returned slice is owned by the cache: callers
// must copy it if they retain it past the next engine step.
func curveFor(in *instance, insts []*instance, es *engineState, avail int) []float64 {
	c := &es.curves
	key := c.signature(in, insts, avail)
	h := hashKey(key)
	if c.entries == nil {
		c.entries = make(map[uint64]*curveEntry)
	} else if e, ok := c.entries[h]; ok && equalKey(e.key, key) {
		return e.curve
	}
	if len(c.entries) >= maxCurveEntries {
		c.entries = make(map[uint64]*curveEntry)
	}
	e := &curveEntry{
		key:   append([]uint64(nil), key...),
		curve: make([]float64, es.cfg.Cores),
	}
	for n := 1; n <= es.cfg.Cores; n++ {
		e.curve[n-1] = parallelPhaseRate(in, insts, es, avail, n)
	}
	c.entries[h] = e
	return e.curve
}
