package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"syscall"
	"testing"

	"moe/internal/atomicio"
)

// captureShipments wires a store to collect (copies of) everything it ships.
func captureShipments(s *Store) *[]Shipment {
	var out []Shipment
	s.SetShipper(func(sh Shipment) {
		sh.Data = append([]byte(nil), sh.Data...)
		out = append(out, sh)
	})
	return &out
}

// dirContents returns name → bytes for every regular file in dir.
func dirContents(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir(%s): %v", dir, err)
	}
	out := make(map[string][]byte)
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("ReadFile(%s): %v", e.Name(), err)
		}
		out[e.Name()] = data
	}
	return out
}

func sortedKeys(m map[string][]byte) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TestShipApplyByteIdentity drives a primary store through a realistic
// mixed write sequence — snapshots, observation appends, dedup markers,
// rotations with window seeding — applies the shipped stream into a second
// directory, and requires the standby directory to be byte-identical to the
// primary's, file for file.
func TestShipApplyByteIdentity(t *testing.T) {
	primary := t.TempDir()
	standby := t.TempDir()

	s, err := Open(primary)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	shipped := captureShipments(s)
	window := []DedupEntry{}
	s.SetDedupWindowSource(func() []DedupEntry { return window })

	writeBatch := func(from, n int, reqID string) {
		for i, obs := range testObservations(n, from) {
			if err := s.Append(obs); err != nil {
				t.Fatalf("Append %d: %v", from+i, err)
			}
		}
		mark := DedupEntry{ID: reqID, Decisions: from + n, Threads: []int{from, n}}
		if err := s.AppendDedup(mark); err != nil {
			t.Fatalf("AppendDedup %s: %v", reqID, err)
		}
		window = append(window, mark)
	}

	if err := s.WriteSnapshot(testState(t, 0)); err != nil {
		t.Fatalf("WriteSnapshot(0): %v", err)
	}
	writeBatch(0, 3, "req-a")
	writeBatch(3, 2, "req-b")
	if err := s.WriteSnapshot(testState(t, 5)); err != nil {
		t.Fatalf("WriteSnapshot(5): %v", err)
	}
	writeBatch(5, 4, "req-c")
	if err := s.WriteSnapshot(testState(t, 9)); err != nil {
		t.Fatalf("WriteSnapshot(9): %v", err)
	}
	writeBatch(9, 1, "req-d")
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	a, err := NewApplier(standby, true)
	if err != nil {
		t.Fatalf("NewApplier: %v", err)
	}
	for i, sh := range *shipped {
		if err := a.Apply(sh); err != nil {
			t.Fatalf("Apply shipment %d (%v %d/%d#%d): %v", i, sh.Kind, sh.Run, sh.Seq, sh.Index, err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatalf("applier Close: %v", err)
	}

	pf, sf := dirContents(t, primary), dirContents(t, standby)
	if pk, sk := sortedKeys(pf), sortedKeys(sf); !equalStrings(pk, sk) {
		t.Fatalf("file sets differ:\n  primary: %v\n  standby: %v", pk, sk)
	}
	for name, data := range pf {
		if !bytes.Equal(data, sf[name]) {
			t.Errorf("%s: standby bytes differ from primary", name)
		}
	}

	// The applied lineage must recover to the same place as the primary's.
	ps, err := Open(primary)
	if err != nil {
		t.Fatalf("reopen primary: %v", err)
	}
	prec, err := ps.Recover()
	if err != nil {
		t.Fatalf("primary Recover: %v", err)
	}
	ss, err := Open(standby)
	if err != nil {
		t.Fatalf("open standby: %v", err)
	}
	srec, err := ss.Recover()
	if err != nil {
		t.Fatalf("standby Recover: %v", err)
	}
	if prec.Decisions() != 10 || srec.Decisions() != 10 {
		t.Fatalf("recovered decisions: primary %d standby %d, want 10", prec.Decisions(), srec.Decisions())
	}
	if !sameObs(prec.Tail, srec.Tail) {
		t.Errorf("recovered tails differ")
	}
	if !sameDedups(prec.Dedups, srec.Dedups) {
		t.Errorf("recovered dedup windows differ: primary %v standby %v", prec.Dedups, srec.Dedups)
	}
	// All four request IDs survive: the window record seeded at each
	// rotation carries the pre-rotation marks forward.
	if len(srec.Dedups) != 4 {
		t.Fatalf("standby dedup window has %d entries, want 4: %v", len(srec.Dedups), srec.Dedups)
	}
	for i, want := range []string{"req-a", "req-b", "req-c", "req-d"} {
		if srec.Dedups[i].ID != want {
			t.Errorf("dedup[%d] = %q, want %q", i, srec.Dedups[i].ID, want)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameDedups(a, b []DedupEntry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Decisions != b[i].Decisions {
			return false
		}
		if len(a[i].Threads) != len(b[i].Threads) {
			return false
		}
		for j := range a[i].Threads {
			if a[i].Threads[j] != b[i].Threads[j] {
				return false
			}
		}
	}
	return true
}

// TestApplierRejectsOutOfOrder proves the gap-detection contract: dropping
// any single journal-record shipment makes the next one fail ErrOutOfOrder,
// and a full resynchronization (Reset + snapshot + journal replay) heals.
func TestApplierRejectsOutOfOrder(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	shipped := captureShipments(s)
	if err := s.WriteSnapshot(testState(t, 0)); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	for _, obs := range testObservations(5, 0) {
		if err := s.Append(obs); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	s.Close()

	recs := *shipped
	a, err := NewApplier(t.TempDir(), false)
	if err != nil {
		t.Fatalf("NewApplier: %v", err)
	}
	// Apply snapshot + journal-open + records 0,1 — then skip record 2.
	for _, sh := range recs[:4] {
		if err := a.Apply(sh); err != nil {
			t.Fatalf("Apply: %v", err)
		}
	}
	if err := a.Apply(recs[5]); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("skipped record applied with err=%v, want ErrOutOfOrder", err)
	}
	// Duplicate delivery is also out of order.
	if err := a.Apply(recs[3]); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("replayed record applied with err=%v, want ErrOutOfOrder", err)
	}
	// Resync: reset and replay the whole stream.
	if err := a.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	for i, sh := range recs {
		if err := a.Apply(sh); err != nil {
			t.Fatalf("resync Apply %d: %v", i, err)
		}
	}
	if _, _, n := a.Tip(); n != 5 {
		t.Fatalf("after resync applier holds %d records, want 5", n)
	}
	a.Close()
}

// TestApplierRejectsCorruptShipments: payload defects never reach disk.
func TestApplierRejectsCorruptShipments(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	shipped := captureShipments(s)
	if err := s.WriteSnapshot(testState(t, 0)); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if err := s.Append(testObservations(1, 0)[0]); err != nil {
		t.Fatalf("Append: %v", err)
	}
	s.Close()
	recs := *shipped

	a, err := NewApplier(t.TempDir(), false)
	if err != nil {
		t.Fatalf("NewApplier: %v", err)
	}
	defer a.Close()

	// Bit-flip each shipment's payload: every apply must reject.
	for i, sh := range recs {
		bad := sh
		bad.Data = append([]byte(nil), sh.Data...)
		bad.Data[len(bad.Data)/2] ^= 0x40
		if err := a.Apply(bad); err == nil {
			t.Fatalf("corrupt shipment %d applied cleanly", i)
		}
	}
	// Mislabeled ordinals (payload/envelope disagreement) must reject too.
	snap := recs[0]
	snap.Seq++
	if err := a.Apply(snap); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("mislabeled snapshot: err=%v, want ErrBadRecord", err)
	}
	// The pristine stream still applies afterwards.
	for i, sh := range recs {
		if err := a.Apply(sh); err != nil {
			t.Fatalf("pristine Apply %d after rejections: %v", i, err)
		}
	}
}

// TestShipmentWireRoundTrip pins the envelope encoding.
func TestShipmentWireRoundTrip(t *testing.T) {
	in := []Shipment{
		{Kind: ShipSnapshot, Run: 3, Seq: 128, Data: []byte("snapshot-bytes")},
		{Kind: ShipJournalOpen, Run: 3, Seq: 128, Data: []byte("hdr")},
		{Kind: ShipJournalRecord, Run: 3, Seq: 128, Index: 0, Data: []byte{0xde, 0xad}},
		{Kind: ShipJournalRecord, Run: 3, Seq: 128, Index: 1, Data: nil},
	}
	var wire []byte
	for _, sh := range in {
		wire = EncodeShipment(wire, sh)
	}
	out, err := DecodeShipments(wire)
	if err != nil {
		t.Fatalf("DecodeShipments: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d shipments, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Kind != in[i].Kind || out[i].Run != in[i].Run || out[i].Seq != in[i].Seq ||
			out[i].Index != in[i].Index || !bytes.Equal(out[i].Data, in[i].Data) {
			t.Errorf("shipment %d: got %+v want %+v", i, out[i], in[i])
		}
	}

	// Truncation anywhere is an error, never a silent prefix.
	for cut := 1; cut < len(wire); cut++ {
		if _, err := DecodeShipments(wire[:cut]); err == nil {
			// Cuts landing exactly on an envelope boundary decode cleanly —
			// that is a shorter valid group, which the applier's ordering
			// check handles. Verify that is the only clean case.
			if got, _ := DecodeShipments(wire[:cut]); len(got) == 0 {
				t.Errorf("cut at %d decoded to zero shipments without error", cut)
			}
		}
	}
	if _, err := DecodeShipments([]byte{0x7f}); err == nil {
		t.Errorf("unknown kind decoded cleanly")
	}
}

// TestJournalFaultMatrix is the disk-fault matrix for the journal path:
// for each failing stage (write, fsync) × errno (EIO, ENOSPC) × nth append,
// the failing Append must surface a typed DiskError wrapping the errno, and
// recovery must yield exactly the acked prefix — every append that returned
// nil is recovered, nothing past the failure is invented.
func TestJournalFaultMatrix(t *testing.T) {
	const total = 6
	for _, stage := range []atomicio.Stage{atomicio.StageWrite, atomicio.StageSyncFile} {
		for _, errno := range []error{syscall.EIO, syscall.ENOSPC} {
			for nth := 1; nth <= total; nth++ {
				name := fmt.Sprintf("%s-%v-at-%d", string(stage), errno, nth)
				t.Run(name, func(t *testing.T) {
					dir := t.TempDir()
					s, err := Open(dir)
					if err != nil {
						t.Fatalf("Open: %v", err)
					}
					if err := s.WriteSnapshot(testState(t, 0)); err != nil {
						t.Fatalf("WriteSnapshot: %v", err)
					}
					calls := 0
					s.SetJournalFault(func(st atomicio.Stage) error {
						if st != stage {
							return nil
						}
						calls++
						if calls == nth {
							return errno
						}
						return nil
					})
					acked := 0
					var failure error
					for _, obs := range testObservations(total, 0) {
						if err := s.Append(obs); err != nil {
							failure = err
							break
						}
						acked++
					}
					if failure == nil {
						t.Fatalf("no append failed (acked %d)", acked)
					}
					if !IsDiskError(failure) {
						t.Fatalf("failure %v is not a DiskError", failure)
					}
					if !errors.Is(failure, errno) {
						t.Fatalf("failure %v does not wrap %v", failure, errno)
					}
					if acked != nth-1 {
						t.Fatalf("acked %d appends before failure, want %d", acked, nth-1)
					}
					s.Close()

					s2, err := Open(dir)
					if err != nil {
						t.Fatalf("reopen: %v", err)
					}
					rec, err := s2.Recover()
					if err != nil {
						t.Fatalf("Recover: %v", err)
					}
					// A write-stage fault fails before the record reaches
					// the file: exactly the acked prefix is on disk. A
					// sync-stage fault fails after the write: the record's
					// bytes are present (fsync durability was the failure),
					// so recovery may legitimately see one more than was
					// acked — but never fewer, and never an invented tail.
					minWant, maxWant := acked, acked
					if stage == atomicio.StageSyncFile {
						maxWant = acked + 1
					}
					got := len(rec.Tail)
					if got < minWant || got > maxWant {
						t.Fatalf("recovered %d entries, want in [%d, %d]\nreport: %v", got, minWant, maxWant, rec.Report)
					}
					want := testObservations(got, 0)
					for i := range want {
						if !sameObs(rec.Tail[i:i+1], want[i:i+1]) {
							t.Fatalf("recovered entry %d differs from acked stream", i)
						}
					}
				})
			}
		}
	}
}

// TestJournalFaultAtRotation: a create-stage fault makes the rotation fail
// typed, and the previous generation still recovers.
func TestJournalFaultAtRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := s.WriteSnapshot(testState(t, 0)); err != nil {
		t.Fatalf("WriteSnapshot(0): %v", err)
	}
	for _, obs := range testObservations(4, 0) {
		if err := s.Append(obs); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	s.SetJournalFault(func(st atomicio.Stage) error {
		if st == atomicio.StageCreate {
			return syscall.ENOSPC
		}
		return nil
	})
	err = s.WriteSnapshot(testState(t, 4))
	if !IsDiskError(err) || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("rotation under ENOSPC: err=%v, want DiskError wrapping ENOSPC", err)
	}
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	rec, err := s2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rec.Decisions() != 4 {
		t.Fatalf("recovered %d decisions, want 4 (snapshot wrote before rotation failed)\nreport: %v",
			rec.Decisions(), rec.Report)
	}
}

// TestRecoverDedupWindow: markers journaled mid-epoch and windows seeded at
// rotation reconstruct the same bounded window a restart needs, and a
// marker ahead of a torn tail never survives recovery.
func TestRecoverDedupWindow(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	window := []DedupEntry{}
	s.SetDedupWindowSource(func() []DedupEntry { return window })
	if err := s.WriteSnapshot(testState(t, 0)); err != nil {
		t.Fatalf("WriteSnapshot(0): %v", err)
	}
	obs := testObservations(6, 0)
	for i := 0; i < 3; i++ {
		if err := s.Append(obs[i]); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	mark := DedupEntry{ID: "old-req", Decisions: 3, Threads: []int{2, 4, 8}}
	if err := s.AppendDedup(mark); err != nil {
		t.Fatalf("AppendDedup: %v", err)
	}
	window = append(window, mark)
	// Rotation: old-req now lives only in the new epoch's window record
	// (the old journal will be pruned once retention ages it out).
	if err := s.WriteSnapshot(testState(t, 3)); err != nil {
		t.Fatalf("WriteSnapshot(3): %v", err)
	}
	for i := 3; i < 6; i++ {
		if err := s.Append(obs[i]); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	mark2 := DedupEntry{ID: "new-req", Decisions: 6, Threads: []int{1}}
	if err := s.AppendDedup(mark2); err != nil {
		t.Fatalf("AppendDedup: %v", err)
	}
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	rec, err := s2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rec.Decisions() != 6 {
		t.Fatalf("recovered %d decisions, want 6", rec.Decisions())
	}
	if len(rec.Dedups) != 2 || rec.Dedups[0].ID != "old-req" || rec.Dedups[1].ID != "new-req" {
		t.Fatalf("recovered window %v, want [old-req new-req]", rec.Dedups)
	}
	if rec.Dedups[0].Decisions != 3 || len(rec.Dedups[0].Threads) != 3 || rec.Dedups[0].Threads[2] != 8 {
		t.Fatalf("old-req payload mangled: %+v", rec.Dedups[0])
	}

	// Tear the journal mid-way through the last observation entry: the
	// marker after it is gone, and so is its promise.
	journals, err := listDir(dir, journalPrefix, journalSuffix)
	if err != nil {
		t.Fatalf("listDir: %v", err)
	}
	last := journals[len(journals)-1]
	path := filepath.Join(dir, journalName(last))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if err := os.WriteFile(path, data[:len(data)-30], 0o644); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	s3, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after tear: %v", err)
	}
	rec2, err := s3.Recover()
	if err != nil {
		t.Fatalf("Recover after tear: %v", err)
	}
	for _, d := range rec2.Dedups {
		if d.Decisions > rec2.Decisions() {
			t.Fatalf("recovered marker %q promises decision %d but lineage recovers only %d",
				d.ID, d.Decisions, rec2.Decisions())
		}
	}
}
