package checkpoint

import (
	"errors"
	"fmt"
)

// DiskError marks a checkpoint failure caused by the filesystem underneath
// the store — an unwritable or missing directory at Open, an ENOSPC-style
// write or fsync failure on a snapshot or journal append — as opposed to
// corrupt or mismatched checkpoint *contents* (those surface as plain
// errors from decode/validate paths and mean the state itself is wrong).
//
// The distinction matters to multi-tenant hosts: a tenant whose directory
// cannot be written can still be served — journal-less, with the failure
// latched and visible in metrics — whereas a state mismatch means the
// caller is holding the wrong lineage. errors.As(err, new(*DiskError))
// classifies; IsDiskError is the shorthand.
type DiskError struct {
	// Op names the failed operation: "open", "list", "snapshot", "rotate",
	// "append", or "prune".
	Op string
	// Path is the file or directory the operation failed on.
	Path string
	// Err is the underlying filesystem error.
	Err error
}

func (e *DiskError) Error() string {
	return fmt.Sprintf("checkpoint: %s %s: %v", e.Op, e.Path, e.Err)
}

func (e *DiskError) Unwrap() error { return e.Err }

// IsDiskError reports whether err is (or wraps) a DiskError — a filesystem
// failure a host can degrade around, rather than a state mismatch it must
// not ignore.
func IsDiskError(err error) bool {
	var de *DiskError
	return errors.As(err, &de)
}

// diskErr wraps err as a DiskError; nil passes through.
func diskErr(op, path string, err error) error {
	if err == nil {
		return nil
	}
	return &DiskError{Op: op, Path: path, Err: err}
}
