package experiments

import (
	"fmt"

	"moe/internal/stats"
	"moe/internal/trace"
	"moe/internal/workload"
)

// Scale sizes an experiment sweep. The paper evaluates every benchmark with
// three repeats; quick scale keeps CI and bench runs affordable.
type Scale struct {
	// Targets are the evaluated benchmark programs.
	Targets []string
	// Repeats per configuration (§6.1 uses 3).
	Repeats int
	// Seed bases all scenario seeds.
	Seed uint64
}

// FullScale evaluates all 16 catalog programs with 3 repeats.
func FullScale() Scale {
	return Scale{Targets: EvalTargets(), Repeats: DefaultRepeats, Seed: 0xe7a1}
}

// QuickScale evaluates a representative subset (both scalability classes,
// all three suites) with one repeat.
func QuickScale() Scale {
	return Scale{
		Targets: []string{"lu", "cg", "bt", "mg", "is", "bscholes", "equake", "fmine"},
		Repeats: 1,
		Seed:    0xe7a1,
	}
}

// scenarioSpeedups runs one scenario spec under the default baseline plus
// every named policy with identical seeds, averaged over repeats, and
// returns speedups over default and relative workload throughput.
//
// The repeat × policy grid fans out on the lab's worker pool. Every job's
// seed comes from its repeat index alone, and the reduction walks results
// in the serial loop's order, so the returned means are byte-identical for
// any worker count.
func (l *Lab) scenarioSpeedups(spec ScenarioSpec, names []PolicyName, repeats int) (map[PolicyName]float64, map[PolicyName]float64, error) {
	if repeats <= 0 {
		repeats = DefaultRepeats
	}
	cols := 1 + len(names) // default baseline first, then each policy
	outs, err := grid(l, repeats*cols, func(i int) (*RunOutcome, error) {
		r, c := i/cols, i%cols
		s := spec
		s.Seed = spec.Seed + uint64(r)*1000003
		name := PolicyDefault
		if c > 0 {
			name = names[c-1]
		}
		return l.Run(s, name)
	})
	if err != nil {
		return nil, nil, err
	}
	execSum := make(map[PolicyName]float64, len(names))
	wlSum := make(map[PolicyName]float64, len(names))
	var baseExec, baseWL float64
	for r := 0; r < repeats; r++ {
		base := outs[r*cols]
		baseExec += base.ExecTime
		baseWL += base.WorkloadThroughput
		for ci, name := range names {
			out := outs[r*cols+1+ci]
			execSum[name] += out.ExecTime
			wlSum[name] += out.WorkloadThroughput
		}
	}
	speedups := make(map[PolicyName]float64, len(names))
	wlRel := make(map[PolicyName]float64, len(names))
	for _, name := range names {
		speedups[name] = baseExec / execSum[name]
		if baseWL > 0 {
			wlRel[name] = wlSum[name] / baseWL
		}
	}
	return speedups, wlRel, nil
}

// targetScenarioSpeedups averages a target's speedups over the Table 3
// workload sets of the given size ("all results are averaged over these
// different benchmark sets", §6.4).
func (l *Lab) targetScenarioSpeedups(target string, size workload.Size, freq trace.Frequency, names []PolicyName, sc Scale) (map[PolicyName]float64, map[PolicyName]float64, error) {
	sets := workload.Sets(size)
	if len(sets) == 0 {
		return nil, nil, fmt.Errorf("experiments: no workload sets for size %q", size)
	}
	type setResult struct {
		sp, wl map[PolicyName]float64
	}
	results, err := grid(l, len(sets), func(si int) (setResult, error) {
		spec := ScenarioSpec{
			Target:   target,
			Workload: sets[si].Programs,
			HWFreq:   freq,
			Seed:     sc.Seed + uint64(si)*7907,
		}
		sp, wl, err := l.scenarioSpeedups(spec, names, sc.Repeats)
		return setResult{sp, wl}, err
	})
	if err != nil {
		return nil, nil, err
	}
	acc := make(map[PolicyName][]float64)
	accWL := make(map[PolicyName][]float64)
	for _, res := range results {
		for _, n := range names {
			acc[n] = append(acc[n], res.sp[n])
			accWL[n] = append(accWL[n], res.wl[n])
		}
	}
	out := make(map[PolicyName]float64, len(names))
	outWL := make(map[PolicyName]float64, len(names))
	for _, n := range names {
		out[n] = stats.Mean(acc[n])
		outWL[n] = stats.Mean(accWL[n])
	}
	return out, outWL, nil
}

// DynamicScenario reproduces one of Figs 9–12: per-benchmark speedups over
// the OpenMP default for each policy, in one workload-size ×
// hardware-frequency setting, with the harmonic mean in the final row.
func (l *Lab) DynamicScenario(size workload.Size, freq trace.Frequency, sc Scale) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Speedup over default — %s workload, %s frequency hardware change", size, freq),
		Columns: policyColumns(BaselinePolicies),
	}
	rows, err := grid(l, len(sc.Targets), func(i int) (map[PolicyName]float64, error) {
		sp, _, err := l.targetScenarioSpeedups(sc.Targets[i], size, freq, BaselinePolicies, sc)
		return sp, err
	})
	if err != nil {
		return nil, err
	}
	perPolicy := make(map[PolicyName][]float64)
	for ti, target := range sc.Targets {
		sp := rows[ti]
		vals := make([]float64, len(BaselinePolicies))
		for i, n := range BaselinePolicies {
			vals[i] = sp[n]
			perPolicy[n] = append(perPolicy[n], sp[n])
		}
		t.AddRow(target, vals...)
	}
	hm := make([]float64, len(BaselinePolicies))
	for i, n := range BaselinePolicies {
		hm[i] = stats.HMean(perPolicy[n])
	}
	t.AddRow("hmean", hm...)
	return t, nil
}

// scenarioKinds enumerates the four dynamic settings of §7.2.
var scenarioKinds = []struct {
	Label string
	Size  workload.Size
	Freq  trace.Frequency
}{
	{"small/low", workload.Small, trace.LowFrequency},
	{"small/high", workload.Small, trace.HighFrequency},
	{"large/low", workload.Large, trace.LowFrequency},
	{"large/high", workload.Large, trace.HighFrequency},
}

// Summary reproduces Fig 8: harmonic-mean speedup of each policy per
// dynamic scenario plus the overall mean and median across all targets and
// scenarios.
func (l *Lab) Summary(sc Scale) (*Table, error) {
	t := &Table{
		Title:   "Fig 8 — speedup over OpenMP default across dynamic scenarios",
		Columns: policyColumns(BaselinePolicies),
	}
	// One grid job per (scenario kind, target) cell; the reduction below
	// regroups cells kind-major, matching the serial iteration order.
	nt := len(sc.Targets)
	cells, err := grid(l, len(scenarioKinds)*nt, func(i int) (map[PolicyName]float64, error) {
		kind := scenarioKinds[i/nt]
		sp, _, err := l.targetScenarioSpeedups(sc.Targets[i%nt], kind.Size, kind.Freq, BaselinePolicies, sc)
		return sp, err
	})
	if err != nil {
		return nil, err
	}
	all := make(map[PolicyName][]float64)
	for ki, kind := range scenarioKinds {
		per := make(map[PolicyName][]float64)
		for ti := 0; ti < nt; ti++ {
			sp := cells[ki*nt+ti]
			for _, n := range BaselinePolicies {
				per[n] = append(per[n], sp[n])
				all[n] = append(all[n], sp[n])
			}
		}
		vals := make([]float64, len(BaselinePolicies))
		for i, n := range BaselinePolicies {
			vals[i] = stats.HMean(per[n])
		}
		t.AddRow(kind.Label, vals...)
	}
	mean := make([]float64, len(BaselinePolicies))
	med := make([]float64, len(BaselinePolicies))
	for i, n := range BaselinePolicies {
		mean[i] = stats.HMean(all[n])
		m, err := stats.Median(all[n])
		if err != nil {
			return nil, err
		}
		med[i] = m
	}
	t.AddRow("hmean", mean...)
	t.AddRow("median", med...)
	return t, nil
}

// Static reproduces Fig 7: each policy on an isolated static system (no
// workload, fixed processor count). The mixture must add no overhead here
// (Result 1).
func (l *Lab) Static(sc Scale) (*Table, error) {
	t := &Table{
		Title:   "Fig 7 — isolated static system (speedup over default)",
		Columns: policyColumns(BaselinePolicies),
	}
	rows, err := grid(l, len(sc.Targets), func(i int) (map[PolicyName]float64, error) {
		spec := ScenarioSpec{Target: sc.Targets[i], HWFreq: trace.Static, Seed: sc.Seed}
		sp, _, err := l.scenarioSpeedups(spec, BaselinePolicies, sc.Repeats)
		return sp, err
	})
	if err != nil {
		return nil, err
	}
	perPolicy := make(map[PolicyName][]float64)
	for ti, target := range sc.Targets {
		sp := rows[ti]
		vals := make([]float64, len(BaselinePolicies))
		for i, n := range BaselinePolicies {
			vals[i] = sp[n]
			perPolicy[n] = append(perPolicy[n], sp[n])
		}
		t.AddRow(target, vals...)
	}
	hm := make([]float64, len(BaselinePolicies))
	for i, n := range BaselinePolicies {
		hm[i] = stats.HMean(perPolicy[n])
	}
	t.AddRow("hmean", hm...)
	return t, nil
}

func policyColumns(names []PolicyName) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = string(n)
	}
	return out
}
