package features

import (
	"errors"
	"testing"
)

func TestComputeImpacts(t *testing.T) {
	// A synthetic model whose accuracy drops 0.2 without feature 0, 0.1
	// without feature 5, and improves (drop clamps to 0) without 9.
	acc := func(without int) (float64, error) {
		switch without {
		case -1:
			return 0.9, nil
		case 0:
			return 0.7, nil
		case 5:
			return 0.8, nil
		case 9:
			return 0.95, nil
		default:
			return 0.9, nil
		}
	}
	impacts, err := ComputeImpacts(acc)
	if err != nil {
		t.Fatal(err)
	}
	if len(impacts) != Dim {
		t.Fatalf("got %d impacts", len(impacts))
	}
	if !floatsClose(impacts[0].Drop, 0.2, 1e-12) || !floatsClose(impacts[5].Drop, 0.1, 1e-12) {
		t.Errorf("drops: %v, %v", impacts[0].Drop, impacts[5].Drop)
	}
	if impacts[9].Drop != 0 {
		t.Errorf("negative drop should clamp to 0, got %v", impacts[9].Drop)
	}
	sum := 0.0
	for _, im := range impacts {
		sum += im.Share
	}
	if !floatsClose(sum, 1, 1e-9) {
		t.Errorf("shares sum to %v", sum)
	}
	if !floatsClose(impacts[0].Share, 2.0/3, 1e-9) {
		t.Errorf("share of f1 = %v, want 2/3", impacts[0].Share)
	}
}

func TestComputeImpactsPropagatesErrors(t *testing.T) {
	wantErr := errors.New("boom")
	if _, err := ComputeImpacts(func(int) (float64, error) { return 0, wantErr }); err == nil {
		t.Error("full-model error should propagate")
	}
	calls := 0
	if _, err := ComputeImpacts(func(without int) (float64, error) {
		calls++
		if without == 3 {
			return 0, wantErr
		}
		return 0.5, nil
	}); err == nil {
		t.Error("per-feature error should propagate")
	}
}

func TestComputeImpactsAllZero(t *testing.T) {
	impacts, err := ComputeImpacts(func(int) (float64, error) { return 0.5, nil })
	if err != nil {
		t.Fatal(err)
	}
	for _, im := range impacts {
		if im.Share != 0 {
			t.Errorf("zero-drop model should have zero shares, got %v", im.Share)
		}
	}
}

func TestRankImpacts(t *testing.T) {
	impacts := []Impact{
		{Feature: 0, Share: 0.1},
		{Feature: 1, Share: 0.5},
		{Feature: 2, Share: 0.4},
	}
	ranked := RankImpacts(impacts)
	if ranked[0].Feature != 1 || ranked[1].Feature != 2 || ranked[2].Feature != 0 {
		t.Errorf("RankImpacts order: %v", ranked)
	}
	// Input untouched.
	if impacts[0].Feature != 0 {
		t.Error("RankImpacts mutated input")
	}
}

func TestAverageImpacts(t *testing.T) {
	a := make([]Impact, Dim)
	b := make([]Impact, Dim)
	a[0] = Impact{Feature: 0, Drop: 0.2, Share: 1}
	b[0] = Impact{Feature: 0, Drop: 0.4, Share: 0.5}
	avg, err := AverageImpacts([][]Impact{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if !floatsClose(avg[0].Drop, 0.3, 1e-12) || !floatsClose(avg[0].Share, 0.75, 1e-12) {
		t.Errorf("avg = %+v", avg[0])
	}
	if _, err := AverageImpacts(nil); err == nil {
		t.Error("empty input should error")
	}
	if _, err := AverageImpacts([][]Impact{{}}); err == nil {
		t.Error("wrong-length slice should error")
	}
}
