package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"moe"
	"moe/internal/features"
)

const testMaxThreads = 16

// tenantStream is the deterministic per-tenant observation stream: the
// steady golden shape of the differential suite, perturbed by a seed
// derived from the tenant ID so no two tenants see identical inputs.
func tenantStream(id string, from, n int) []moe.Observation {
	seed := 0
	for _, c := range id {
		seed = seed*31 + int(c)
	}
	if seed < 0 {
		seed = -seed
	}
	out := make([]moe.Observation, n)
	for i := range out {
		k := from + i
		var f moe.Features
		for j := range f {
			f[j] = 0.15*float64(j+1) + 0.02*float64((k*7+j*3+seed)%11)
		}
		f[features.Processors] = testMaxThreads
		out[i] = moe.Observation{
			Time:           0.25 * float64(k),
			Features:       f,
			RegionStart:    k%4 == 0,
			Rate:           100 + float64(seed%13),
			AvailableProcs: testMaxThreads,
		}
	}
	return out
}

// wire converts runtime observations to their JSON form, the exact body a
// client would post.
func toWire(obs []moe.Observation) []observation {
	out := make([]observation, len(obs))
	for i, o := range obs {
		fs := make([]float64, len(o.Features))
		copy(fs, o.Features[:])
		out[i] = observation{
			Time:           o.Time,
			Features:       fs,
			Rate:           o.Rate,
			RegionStart:    o.RegionStart,
			AvailableProcs: o.AvailableProcs,
		}
	}
	return out
}

// soloThreads is the ground truth: a lone Runtime wrapping the same
// canonical mixture, fed the same stream directly.
func soloThreads(t *testing.T, obs []moe.Observation) []int {
	t.Helper()
	p, err := DefaultPolicyBuild("solo")
	if err != nil {
		t.Fatal(err)
	}
	rt, err := moe.NewRuntime(p, testMaxThreads)
	if err != nil {
		t.Fatal(err)
	}
	return rt.DecideBatch(obs)
}

// postDecide posts one decide request and decodes whichever shape came
// back. deadlineMs <= 0 omits the header.
func postDecide(t *testing.T, url, tenant string, obs []observation, deadlineMs int) (int, *decideResponse, *errorResponse, http.Header) {
	t.Helper()
	body, err := json.Marshal(decideRequest{Tenant: tenant, Observations: obs})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/decide", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if deadlineMs > 0 {
		req.Header.Set("X-Deadline-Ms", strconv.Itoa(deadlineMs))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		var out decideResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decoding 200 body: %v", err)
		}
		return resp.StatusCode, &out, nil, resp.Header
	}
	var eresp errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&eresp); err != nil {
		t.Fatalf("decoding %d body: %v", resp.StatusCode, err)
	}
	return resp.StatusCode, nil, &eresp, resp.Header
}

// mustDecide posts and requires 200.
func mustDecide(t *testing.T, url, tenant string, obs []observation) *decideResponse {
	t.Helper()
	status, out, eresp, _ := postDecide(t, url, tenant, obs, 0)
	if status != http.StatusOK {
		t.Fatalf("tenant %s: status %d (%+v)", tenant, status, eresp)
	}
	return out
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.MaxThreads == 0 {
		cfg.MaxThreads = testMaxThreads
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	return srv, ts
}

func TestTokenBucket(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newTokenBucket(10, 2) // 10/sec, burst 2
	for i := 0; i < 2; i++ {
		if ok, _ := b.take(now); !ok {
			t.Fatalf("take %d within burst refused", i)
		}
	}
	ok, retry := b.take(now)
	if ok {
		t.Fatal("take past burst admitted")
	}
	if retry <= 0 || retry > 100*time.Millisecond {
		t.Fatalf("retry hint %v, want (0, 100ms]", retry)
	}
	if ok, _ = b.take(now.Add(retry)); !ok {
		t.Fatal("take after the hinted wait refused")
	}
	// Disabled bucket admits everything.
	free := newTokenBucket(0, 0)
	for i := 0; i < 1000; i++ {
		if ok, _ := free.take(now); !ok {
			t.Fatal("disabled bucket refused")
		}
	}
}

func TestBreakerLadder(t *testing.T) {
	now := time.Unix(2000, 0)
	b := newBreaker(100*time.Millisecond, 400*time.Millisecond, 2)
	if ok, _ := b.admit(now); !ok {
		t.Fatal("fresh breaker refused")
	}
	b.trip(now)
	if ok, retry := b.admit(now.Add(50 * time.Millisecond)); ok {
		t.Fatal("quarantined breaker admitted early")
	} else if retry != 50*time.Millisecond {
		t.Fatalf("retry = %v, want 50ms", retry)
	}
	// Quarantine lapses into probation; two clean requests close it and
	// forgive the backoff.
	now = now.Add(150 * time.Millisecond)
	if ok, _ := b.admit(now); !ok {
		t.Fatal("lapsed quarantine refused")
	}
	if b.state != breakerProbation {
		t.Fatalf("state %v after lapse, want probation", b.state)
	}
	b.succeed()
	if b.state != breakerProbation {
		t.Fatal("closed after one clean request, probation wants two")
	}
	b.succeed()
	if b.state != breakerClosed {
		t.Fatal("not closed after probation served")
	}
	if b.backoff != 100*time.Millisecond {
		t.Fatalf("backoff %v after clean probation, want reset to base", b.backoff)
	}
	// Re-trips double the quarantine, saturating at max.
	for i, want := range []time.Duration{100, 200, 400, 400} {
		b.trip(now)
		got := b.openUntil.Sub(now)
		if got != want*time.Millisecond {
			t.Fatalf("trip %d: quarantine %v, want %v", i, got, want*time.Millisecond)
		}
		now = b.openUntil
		b.admit(now) // into probation; next trip doubles
	}
}

func TestRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatch: 8})
	cases := []struct {
		name   string
		tenant string
		obs    []observation
		code   string
	}{
		{"no observations", "ok-tenant", nil, "bad-request"},
		{"oversized batch", "ok-tenant", toWire(tenantStream("ok-tenant", 0, 9)), "bad-request"},
		{"bad tenant id", "no/slashes", toWire(tenantStream("x", 0, 1)), "bad-tenant"},
		{"empty tenant id", "", toWire(tenantStream("x", 0, 1)), "bad-tenant"},
		{"oversized features", "ok-tenant", []observation{{Features: make([]float64, features.Dim+1)}}, "bad-request"},
	}
	for _, tc := range cases {
		status, _, eresp, _ := postDecide(t, ts.URL, tc.tenant, tc.obs, 0)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, status)
			continue
		}
		if eresp.Code != tc.code {
			t.Errorf("%s: code %q, want %q", tc.name, eresp.Code, tc.code)
		}
	}
}

func TestServesAndCountsDecisions(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	stream := tenantStream("solo-check", 0, 48)
	var got []int
	for i := 0; i < 48; i += 16 {
		resp := mustDecide(t, ts.URL, "solo-check", toWire(stream[i:i+16]))
		got = append(got, resp.Threads...)
		if want := int64(i + 16); resp.Decisions != want {
			t.Fatalf("decisions after %d served = %d, want %d", i+16, resp.Decisions, want)
		}
	}
	want := soloThreads(t, stream)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("served threads diverge from solo runtime:\n got %v\nwant %v", got, want)
	}
	if v := srv.metrics.decisions.Value(); v != 48 {
		t.Fatalf("serve_decisions_total = %d, want 48", v)
	}
}

func TestNDJSONStreaming(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	stream := tenantStream("ndjson-tenant", 0, 32)
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for i := 0; i < 32; i += 8 {
		if err := enc.Encode(decideRequest{Tenant: "ndjson-tenant", Observations: toWire(stream[i : i+8])}); err != nil {
			t.Fatal(err)
		}
	}
	// A malformed trailing line must not poison the earlier ones.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/decide", &body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	var got []int
	for i := 0; i < 4; i++ {
		var line decideResponse
		if err := dec.Decode(&line); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		got = append(got, line.Threads...)
	}
	want := soloThreads(t, stream)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("NDJSON threads diverge from solo runtime:\n got %v\nwant %v", got, want)
	}
}
