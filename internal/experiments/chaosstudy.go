package experiments

import (
	"fmt"

	"moe/internal/chaos"
	"moe/internal/sim"
	"moe/internal/stats"
	"moe/internal/trace"
)

// ChaosStudy measures graceful degradation: every policy runs the same
// co-execution scenario once clean and once per fault kind with a fault
// injector lying to it (internal/chaos), and the table reports performance
// against a common fault-free baseline — speedup over the clean OpenMP
// default — per fault kind, plus the fault-free row for reference. The
// engine's ground truth is identical in every run (same seeds, same
// hardware trace, same workload), so the drop from the fault-free row is
// attributable purely to the policy's handling of a corrupted observation
// path; normalizing every policy against the same baseline keeps a policy
// that is merely slow when healthy from looking "robust" because it had
// little performance to lose.
//
// The mixture's robustness story is diversity plus the degradation ladder:
// sanitization absorbs non-finite inputs, quarantine ejects experts that a
// fault has blinded, and the fallback chain keeps decisions sane when the
// whole pool is down. A single expert has the same ladder but no diversity
// to reroute to, which is what this study exposes.
func (l *Lab) ChaosStudy(sc Scale) (*Table, error) {
	return l.chaosStudy(sc, DefaultMaxTime)
}

// chaosPolicies are the study's columns: the mixture, each single expert
// of its pool (Fig 15c's bars, now under fire), and the OpenMP default.
func (l *Lab) chaosPolicies() []struct {
	label string
	build func(target string, seed uint64) (sim.Policy, error)
} {
	cols := []struct {
		label string
		build func(target string, seed uint64) (sim.Policy, error)
	}{
		{"mixture", func(target string, seed uint64) (sim.Policy, error) {
			return l.NewPolicy(PolicyMixture, target, seed)
		}},
	}
	for i := 0; i < 4; i++ {
		idx := i
		cols = append(cols, struct {
			label string
			build func(target string, seed uint64) (sim.Policy, error)
		}{
			label: fmt.Sprintf("expert%d", idx+1),
			build: func(target string, seed uint64) (sim.Policy, error) {
				return l.SingleExpertPolicy(target, idx)
			},
		})
	}
	cols = append(cols, struct {
		label string
		build func(target string, seed uint64) (sim.Policy, error)
	}{
		label: "default",
		build: func(target string, seed uint64) (sim.Policy, error) {
			return l.NewPolicy(PolicyDefault, target, seed)
		},
	})
	return cols
}

// chaosStudy is ChaosStudy with the run length exposed so tests can keep
// the sweep affordable.
func (l *Lab) chaosStudy(sc Scale, maxTime float64) (*Table, error) {
	kinds := chaos.Kinds()
	cols := l.chaosPolicies()
	repeats := max(1, sc.Repeats)
	nC, nT := len(cols), len(sc.Targets)
	// Variant 0 is the clean run; variant k>0 injects fault kind k-1.
	nV := 1 + len(kinds)
	total := nV * nC * nT * repeats

	times, err := grid(l, total, func(i int) (float64, error) {
		ri := i % repeats
		ti := (i / repeats) % nT
		ci := (i / (repeats * nT)) % nC
		vi := i / (repeats * nT * nC)
		target := sc.Targets[ti]
		seed := sc.Seed + uint64(ti)*104729 + uint64(ri)*1000003
		p, err := cols[ci].build(target, seed)
		if err != nil {
			return 0, err
		}
		if vi > 0 {
			sf, err := chaos.NewKindFault(kinds[vi-1], l.Eval.Cores)
			if err != nil {
				return 0, err
			}
			// The injector seed depends on scenario but not policy, so
			// every column faces the same perturbation stream.
			inj, err := chaos.NewInjector(p, seed^(uint64(vi)*0x9e3779b9), sf)
			if err != nil {
				return 0, err
			}
			p = inj
		}
		out, err := l.RunWithPolicy(ScenarioSpec{
			Target:   target,
			Workload: []string{"cg"},
			HWFreq:   trace.LowFrequency,
			Seed:     seed,
			MaxTime:  maxTime,
		}, p)
		if err != nil {
			return 0, err
		}
		return out.ExecTime, nil
	})
	if err != nil {
		return nil, err
	}

	at := func(vi, ci, ti, ri int) float64 {
		return times[((vi*nC+ci)*nT+ti)*repeats+ri]
	}
	// The common baseline: the clean run of the "default" column.
	baseCol := nC - 1
	t := &Table{
		Title: "Chaos — speedup over the fault-free default, observation path under fault",
		Columns: func() []string {
			out := make([]string, nC)
			for i, c := range cols {
				out[i] = c.label
			}
			return out
		}(),
		Notes: []string{
			"value = clean default exec time / policy exec time under the row's fault",
			"the fault-free row is the ordinary speedup; the drop below it is the fault's cost",
			"faults perturb only what the policy observes; the machine and workload are identical",
		},
	}
	perCol := make([][]float64, nC)
	addRow := func(label string, vi int) {
		vals := make([]float64, nC)
		for ci := 0; ci < nC; ci++ {
			ratios := make([]float64, 0, nT*repeats)
			for ti := 0; ti < nT; ti++ {
				for ri := 0; ri < repeats; ri++ {
					ratios = append(ratios, at(0, baseCol, ti, ri)/at(vi, ci, ti, ri))
				}
			}
			vals[ci] = stats.HMean(ratios)
			if vi > 0 {
				perCol[ci] = append(perCol[ci], vals[ci])
			}
		}
		t.AddRow(label, vals...)
	}
	addRow("fault-free", 0)
	for vi := 1; vi < nV; vi++ {
		addRow(kinds[vi-1], vi)
	}
	hm := make([]float64, nC)
	for ci := range cols {
		hm[ci] = stats.HMean(perCol[ci])
	}
	t.AddRow("hmean", hm...)
	return t, nil
}
