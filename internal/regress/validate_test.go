package regress

import (
	"fmt"
	"math"
	"testing"
)

func TestEvaluatePerfectModel(t *testing.T) {
	samples := genLinear([]float64{1, 1}, 0, 50, 0, 9)
	m, err := Fit(samples, Options{})
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := Evaluate(m, samples)
	if err != nil {
		t.Fatal(err)
	}
	if metrics.MAE > 1e-9 || metrics.RMSE > 1e-9 {
		t.Errorf("perfect model has errors: %+v", metrics)
	}
	if metrics.Accuracy != 1 {
		t.Errorf("perfect model accuracy = %v", metrics.Accuracy)
	}
	if math.Abs(metrics.R2-1) > 1e-9 {
		t.Errorf("perfect model R2 = %v", metrics.R2)
	}
	if metrics.N != 50 {
		t.Errorf("N = %d", metrics.N)
	}
}

func TestEvaluateConstantModelR2(t *testing.T) {
	// A model that always predicts the mean has R² = 0.
	samples := []Sample{
		{X: []float64{0}, Y: 1},
		{X: []float64{0}, Y: 3},
	}
	m := &Model{Weights: []float64{0}, Bias: 2}
	metrics, err := Evaluate(m, samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(metrics.R2) > 1e-9 {
		t.Errorf("mean model R2 = %v, want 0", metrics.R2)
	}
}

func TestEvaluateErrors(t *testing.T) {
	m := &Model{Weights: []float64{1}, Bias: 0}
	if _, err := Evaluate(m, nil); err == nil {
		t.Error("empty set should error")
	}
	if _, err := Evaluate(m, []Sample{{X: []float64{1, 2}, Y: 1}}); err == nil {
		t.Error("dimension mismatch should error")
	}
}

func TestWithinTolerance(t *testing.T) {
	// Relative tolerance away from zero.
	if !withinTolerance(108, 100) {
		t.Error("8% error at scale 100 should be within a 15% tolerance")
	}
	if withinTolerance(120, 100) {
		t.Error("20% error should be outside tolerance")
	}
	// Absolute tolerance near zero.
	if !withinTolerance(0.1, 0) {
		t.Error("0.1 absolute at scale ~0 should be within tolerance")
	}
	if withinTolerance(0.5, 0) {
		t.Error("0.5 absolute at scale ~0 should be outside tolerance")
	}
}

func TestLeaveOneOutGroupsByKey(t *testing.T) {
	// Two groups drawn from the same linear model: each fold trains on
	// the other and predicts perfectly.
	var samples []Sample
	samples = append(samples, genLinear([]float64{2}, 1, 20, 0, 11)...)
	samples = append(samples, genLinear([]float64{2}, 1, 20, 0, 12)...)
	key := func(i int) string {
		if i < 20 {
			return "a"
		}
		return "b"
	}
	metrics, err := LeaveOneOut(samples, key, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if metrics.MAE > 1e-6 {
		t.Errorf("cross-model LOO MAE = %v", metrics.MAE)
	}
	if metrics.N != 40 {
		t.Errorf("N = %d, want 40", metrics.N)
	}
}

func TestLeaveOneOutDetectsGroupShift(t *testing.T) {
	// Group b has a different bias; holding it out must show error.
	var samples []Sample
	samples = append(samples, genLinear([]float64{1}, 0, 30, 0, 13)...)
	shifted := genLinear([]float64{1}, 10, 30, 0, 14)
	samples = append(samples, shifted...)
	key := func(i int) string {
		if i < 30 {
			return "a"
		}
		return "b"
	}
	metrics, err := LeaveOneOut(samples, key, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if metrics.MAE < 1 {
		t.Errorf("group shift should produce large LOO error, got MAE=%v", metrics.MAE)
	}
}

func TestLeaveOneOutErrors(t *testing.T) {
	if _, err := LeaveOneOut(nil, func(int) string { return "" }, Options{}); err == nil {
		t.Error("empty samples should error")
	}
	s := genLinear([]float64{1}, 0, 5, 0, 15)
	if _, err := LeaveOneOut(s, nil, Options{}); err == nil {
		t.Error("nil key should error")
	}
	if _, err := LeaveOneOut(s, func(int) string { return "only" }, Options{}); err == nil {
		t.Error("single group should error")
	}
}

func TestLeaveOneOutManyGroups(t *testing.T) {
	var samples []Sample
	for g := 0; g < 5; g++ {
		samples = append(samples, genLinear([]float64{1, -1}, 2, 12, 0.01, uint64(20+g))...)
	}
	key := func(i int) string { return fmt.Sprintf("g%d", i/12) }
	metrics, err := LeaveOneOut(samples, key, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if metrics.Accuracy < 0.9 {
		t.Errorf("near-noiseless LOO accuracy = %v", metrics.Accuracy)
	}
}
