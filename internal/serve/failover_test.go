package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"moe"
	"moe/internal/atomicio"
)

// Failover proofs: a primary/standby pair must lose zero acked decisions and
// duplicate zero acked decisions across a hard primary kill at ANY point in
// a multi-tenant trace, and the concatenated acked stream must stay
// byte-identical to a lone Runtime that never crashed.

// postDecideID is postDecide with an idempotency key on the request.
func postDecideID(t *testing.T, url, tenant, reqID string, obs []observation) (int, *decideResponse, *errorResponse) {
	t.Helper()
	body, err := json.Marshal(decideRequest{Tenant: tenant, Observations: obs, RequestID: reqID})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/decide", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		var out decideResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decoding 200 body: %v", err)
		}
		return resp.StatusCode, &out, nil
	}
	var eresp errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&eresp); err != nil {
		t.Fatalf("decoding %d body: %v", resp.StatusCode, err)
	}
	return resp.StatusCode, nil, &eresp
}

// promoteStandby POSTs /v1/promote and requires success.
func promoteStandby(t *testing.T, url string) *PromoteReport {
	t.Helper()
	resp, err := http.Post(url+"/v1/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote: status %d", resp.StatusCode)
	}
	var rep PromoteReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	return &rep
}

// failoverPair is a replicating primary plus its hot standby.
type failoverPair struct {
	prim   *Server
	primTS *httptest.Server
	sb     *Server
	sbTS   *httptest.Server
}

func newFailoverPair(t *testing.T, every int, mutate func(prim, sb *Config)) *failoverPair {
	t.Helper()
	sbCfg := Config{Standby: true, CheckpointRoot: t.TempDir(), CheckpointEvery: every}
	primCfg := Config{CheckpointRoot: t.TempDir(), CheckpointEvery: every}
	if mutate != nil {
		mutate(&primCfg, &sbCfg)
	}
	sb, sbTS := newTestServer(t, sbCfg)
	primCfg.ReplicateTo = sbTS.URL
	prim, primTS := newTestServer(t, primCfg)
	return &failoverPair{prim: prim, primTS: primTS, sb: sb, sbTS: sbTS}
}

// kill hard-kills the primary: connections refused, no drain, no flush —
// from the standby's perspective, a crash.
func (p *failoverPair) kill() {
	p.primTS.Close()
	p.prim.Close()
}

// step is one request of the golden multi-tenant trace.
type step struct {
	tenant string
	idx    int // per-tenant decision index
}

// goldenSchedule interleaves the tenants' streams request by request.
func goldenSchedule(tenants []string, perTenant int) []step {
	var steps []step
	for k := 0; k < perTenant; k++ {
		for _, id := range tenants {
			steps = append(steps, step{tenant: id, idx: k})
		}
	}
	return steps
}

// TestKillMatrixByteIdentity is the headline proof: for every index k in the
// golden trace, hard-kill the primary at k, promote the standby, finish the
// trace there — the concatenated acked per-tenant thread sequences must be
// byte-identical to an unbroken solo runtime, with zero lost and zero
// duplicated acked decisions. Three kill flavors per index:
//
//   - clean: the primary dies between requests; request k onward runs on
//     the promoted standby.
//   - acked-lost: request k was acked and shipped, but the ack never
//     reached the client (died in flight). The retry on the new primary
//     must answer from the replicated dedup window — same threads, no
//     re-execution.
//   - unshipped: the primary died after deciding request k but its
//     replication group was lost with it (and so was the ack). The retry
//     re-executes on the standby's state and must produce the identical
//     threads, because the standby holds exactly the pre-k state.
func TestKillMatrixByteIdentity(t *testing.T) {
	tenants := []string{"alpha", "beta"}
	const perTenant = 8
	steps := goldenSchedule(tenants, perTenant)
	solo := make(map[string][]int, len(tenants))
	streams := make(map[string][]moe.Observation, len(tenants))
	for _, id := range tenants {
		streams[id] = tenantStream(id, 0, perTenant)
		solo[id] = soloThreads(t, streams[id])
	}
	stride := 1
	if testing.Short() {
		stride = 5
	}
	for _, variant := range []string{"clean", "acked-lost", "unshipped"} {
		for k := 0; k < len(steps); k += stride {
			t.Run(fmt.Sprintf("%s/k=%d", variant, k), func(t *testing.T) {
				runKillScenario(t, variant, k, steps, streams, solo)
			})
		}
	}
}

func runKillScenario(t *testing.T, variant string, killAt int, steps []step,
	streams map[string][]moe.Observation, solo map[string][]int) {
	pair := newFailoverPair(t, 4, nil)
	acked := make(map[string][]int)
	url := pair.primTS.URL
	killed := false
	reqID := func(st step) string { return fmt.Sprintf("req-%s-%d", st.tenant, st.idx) }
	obsOf := func(st step) []observation { return toWire(streams[st.tenant][st.idx : st.idx+1]) }

	promote := func() {
		pair.kill()
		promoteStandby(t, pair.sbTS.URL)
		url = pair.sbTS.URL
		killed = true
	}
	for i, st := range steps {
		if i == killAt && !killed {
			switch variant {
			case "clean":
				// Die between requests; request k is served by the standby.
				promote()
			case "acked-lost":
				// Request k is acked (decided, journaled, shipped) but the
				// response dies with the node. The client retries.
				status, orig, eresp := postDecideID(t, url, st.tenant, reqID(st), obsOf(st))
				if status != http.StatusOK {
					t.Fatalf("step %d pre-kill: status %d (%+v)", i, status, eresp)
				}
				promote()
				status, retr, eresp := postDecideID(t, url, st.tenant, reqID(st), obsOf(st))
				if status != http.StatusOK {
					t.Fatalf("step %d retry: status %d (%+v)", i, status, eresp)
				}
				if !retr.Deduped {
					t.Fatalf("step %d retry of shipped ack was re-executed, want dedup hit", i)
				}
				if fmt.Sprint(retr.Threads) != fmt.Sprint(orig.Threads) {
					t.Fatalf("step %d dedup answer %v != original ack %v", i, retr.Threads, orig.Threads)
				}
				if retr.Decisions != int64(st.idx+1) {
					t.Fatalf("step %d dedup decisions %d, want %d", i, retr.Decisions, st.idx+1)
				}
				acked[st.tenant] = append(acked[st.tenant], retr.Threads...)
				continue
			case "unshipped":
				// The replication group for request k is lost with the node
				// (and so is the ack): the retry must re-execute on the
				// standby's pre-k state and land on identical threads.
				pair.prim.SetReplicaFailpoint(func() bool { return true })
				status, orig, eresp := postDecideID(t, url, st.tenant, reqID(st), obsOf(st))
				if status != http.StatusOK {
					t.Fatalf("step %d pre-kill: status %d (%+v)", i, status, eresp)
				}
				if lag := pair.prim.ReplicaLag(); lag == 0 {
					t.Fatalf("step %d: failpoint did not strand shipments", i)
				}
				promote()
				status, retr, eresp := postDecideID(t, url, st.tenant, reqID(st), obsOf(st))
				if status != http.StatusOK {
					t.Fatalf("step %d retry: status %d (%+v)", i, status, eresp)
				}
				if retr.Deduped {
					t.Fatalf("step %d: unshipped request dedup-hit on the standby", i)
				}
				if fmt.Sprint(retr.Threads) != fmt.Sprint(orig.Threads) {
					t.Fatalf("step %d re-executed threads %v != original %v", i, retr.Threads, orig.Threads)
				}
				acked[st.tenant] = append(acked[st.tenant], retr.Threads...)
				continue
			}
		}
		status, out, eresp := postDecideID(t, url, st.tenant, reqID(st), obsOf(st))
		if status != http.StatusOK {
			t.Fatalf("step %d (%s[%d], killed=%v): status %d (%+v)", i, st.tenant, st.idx, killed, status, eresp)
		}
		if out.Deduped {
			t.Fatalf("step %d: fresh request answered from the dedup window", i)
		}
		if out.Decisions != int64(st.idx+1) {
			t.Fatalf("step %d: decisions %d, want %d — lost or duplicated acks", i, out.Decisions, st.idx+1)
		}
		acked[st.tenant] = append(acked[st.tenant], out.Threads...)
	}
	if !killed {
		promote() // killAt past the trace: still exercise promote-at-end
	}
	for id, want := range solo {
		if fmt.Sprint(acked[id]) != fmt.Sprint(want) {
			t.Errorf("tenant %s acked trace diverged from unbroken solo runtime:\n got %v\nwant %v", id, acked[id], want)
		}
	}
}

// TestPromotionFencesLivePrimary proves the fencing half of failover: when
// the standby is promoted while the old primary is still alive, the old
// primary's very next decision is refused before it can be acked (its
// commit flush hits the promoted term), it latches deposed, and the client
// finishes the trace on the new primary with zero forked history.
func TestPromotionFencesLivePrimary(t *testing.T) {
	pair := newFailoverPair(t, 4, nil)
	const total = 8
	stream := tenantStream("alpha", 0, total)
	solo := soloThreads(t, stream)
	var acked []int
	for k := 0; k < 3; k++ {
		status, out, eresp := postDecideID(t, pair.primTS.URL, "alpha", fmt.Sprintf("req-alpha-%d", k), toWire(stream[k:k+1]))
		if status != http.StatusOK {
			t.Fatalf("pre-promote step %d: status %d (%+v)", k, status, eresp)
		}
		acked = append(acked, out.Threads...)
	}

	rep := promoteStandby(t, pair.sbTS.URL)
	if rep.Term < 2 {
		t.Fatalf("promoted term %d, want >= 2", rep.Term)
	}
	if len(rep.Tenants) != 1 || rep.Tenants[0].ID != "alpha" || rep.Tenants[0].Decisions != 3 {
		t.Fatalf("promote report %+v, want alpha at 3 decisions", rep.Tenants)
	}

	// The old primary is alive and does not know yet. Its next decision must
	// be fenced before the ack — 503, never a 200 that forks history.
	status, _, eresp := postDecideID(t, pair.primTS.URL, "alpha", "req-alpha-3", toWire(stream[3:4]))
	if status != http.StatusServiceUnavailable || eresp.Code != "deposed" {
		t.Fatalf("deposed primary answered %d code %q, want 503 deposed", status, eresp.Code)
	}
	if !pair.prim.primary.Deposed() {
		t.Fatal("primary did not latch deposed after fenced flush")
	}
	// From here the gate refuses before the decision path runs at all.
	status, _, eresp = postDecideID(t, pair.primTS.URL, "alpha", "req-alpha-3", toWire(stream[3:4]))
	if status != http.StatusServiceUnavailable || eresp.Code != "deposed" {
		t.Fatalf("latched primary answered %d code %q, want 503 deposed", status, eresp.Code)
	}

	// The client retries the fenced request on the new primary and finishes
	// the trace there.
	for k := 3; k < total; k++ {
		status, out, eresp := postDecideID(t, pair.sbTS.URL, "alpha", fmt.Sprintf("req-alpha-%d", k), toWire(stream[k:k+1]))
		if status != http.StatusOK {
			t.Fatalf("post-promote step %d: status %d (%+v)", k, status, eresp)
		}
		if out.Deduped {
			t.Fatalf("step %d: fenced (never-acked) decision dedup-hit on new primary", k)
		}
		acked = append(acked, out.Threads...)
	}
	if fmt.Sprint(acked) != fmt.Sprint(solo) {
		t.Fatalf("acked trace across fencing diverged from solo:\n got %v\nwant %v", acked, solo)
	}
}

// TestFailoverChaosIsolation is failover × the PR 7 envelope: the standby is
// promoted while one tenant sits breaker-quarantined after a panic and
// another is wedged under the watchdog. Fault isolation must hold through
// the promotion — the healthy tenant's acked trace stays byte-identical to
// solo, and the faulted tenants resume on the new primary from exactly
// their last acked decision.
func TestFailoverChaosIsolation(t *testing.T) {
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	primBuild := func(id string) (moe.Policy, error) {
		p, err := DefaultPolicyBuild(id)
		if err != nil {
			return nil, err
		}
		switch id {
		case "boom":
			return PanicEvery(p, 4), nil // panics on its 4th decision
		case "wedge":
			return StallAt(p, 4, release), nil // wedges on its 4th decision
		}
		return p, nil
	}
	pair := newFailoverPair(t, 4, func(prim, sb *Config) {
		prim.PolicyBuild = primBuild
		prim.WedgeTimeout = 150 * time.Millisecond
		prim.WatchdogInterval = 20 * time.Millisecond
		prim.BreakerBackoff = 30 * time.Second // stays quarantined through the promotion
	})
	const total = 8
	streams := map[string][]moe.Observation{}
	for _, id := range []string{"healthy", "boom", "wedge"} {
		streams[id] = tenantStream(id, 0, total)
	}
	ackedHealthy := []int{}
	decide := func(url, id string, k, deadlineMs int) (int, *decideResponse, *errorResponse) {
		body, _ := json.Marshal(decideRequest{Tenant: id, Observations: toWire(streams[id][k : k+1]),
			RequestID: fmt.Sprintf("req-%s-%d", id, k)})
		req, _ := http.NewRequest(http.MethodPost, url+"/v1/decide", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		if deadlineMs > 0 {
			req.Header.Set("X-Deadline-Ms", fmt.Sprint(deadlineMs))
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			var out decideResponse
			json.NewDecoder(resp.Body).Decode(&out)
			return resp.StatusCode, &out, nil
		}
		var eresp errorResponse
		json.NewDecoder(resp.Body).Decode(&eresp)
		return resp.StatusCode, nil, &eresp
	}

	// Three clean decisions each.
	for k := 0; k < 3; k++ {
		for _, id := range []string{"healthy", "boom", "wedge"} {
			status, out, eresp := decide(pair.primTS.URL, id, k, 5000)
			if status != http.StatusOK {
				t.Fatalf("tenant %s step %d: status %d (%+v)", id, k, status, eresp)
			}
			if id == "healthy" {
				ackedHealthy = append(ackedHealthy, out.Threads...)
			}
		}
	}
	// boom's 4th decision panics: 500, breaker opens, quarantined.
	if status, _, _ := decide(pair.primTS.URL, "boom", 3, 5000); status != http.StatusInternalServerError {
		t.Fatalf("boom fault: status %d, want 500", status)
	}
	// wedge's 4th decision stalls: 504, and the watchdog recycles the
	// generation while the goroutine stays stuck in the policy.
	if status, _, _ := decide(pair.primTS.URL, "wedge", 3, 300); status != http.StatusGatewayTimeout {
		t.Fatalf("wedge fault: status %d, want 504", status)
	}
	deadlineAt := time.Now().Add(2 * time.Second)
	for pair.prim.metrics.recycles.Value() < 1 {
		if time.Now().After(deadlineAt) {
			t.Fatal("watchdog never recycled the wedged tenant")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Promote mid-chaos: one tenant quarantined, one wedged.
	rep := promoteStandby(t, pair.sbTS.URL)
	byID := map[string]PromotedTenant{}
	for _, pt := range rep.Tenants {
		byID[pt.ID] = pt
	}
	for _, id := range []string{"healthy", "boom", "wedge"} {
		pt, ok := byID[id]
		if !ok {
			t.Fatalf("tenant %s missing from promote report %+v", id, rep.Tenants)
		}
		if pt.Err != "" || pt.Decisions != 3 {
			t.Fatalf("tenant %s promoted at %d decisions (err %q), want 3 — faulted decisions were never acked",
				id, pt.Decisions, pt.Err)
		}
	}

	// The new primary (default policies) serves everyone from their last
	// acked decision; the faulted tenants' unacked attempts left no trace.
	for k := 3; k < total; k++ {
		for _, id := range []string{"healthy", "boom", "wedge"} {
			status, out, eresp := decide(pair.sbTS.URL, id, k, 5000)
			if status != http.StatusOK {
				t.Fatalf("post-promote tenant %s step %d: status %d (%+v)", id, k, status, eresp)
			}
			if out.Decisions != int64(k+1) {
				t.Fatalf("post-promote tenant %s step %d: decisions %d, want %d", id, k, out.Decisions, k+1)
			}
			if id == "healthy" {
				ackedHealthy = append(ackedHealthy, out.Threads...)
			}
		}
	}
	if want := soloThreads(t, streams["healthy"]); fmt.Sprint(ackedHealthy) != fmt.Sprint(want) {
		t.Fatalf("healthy tenant diverged across chaos failover:\n got %v\nwant %v", ackedHealthy, want)
	}
}

// TestJournalFaultDegradesTenantE2E is the disk-fault satellite, end to end:
// a journal append that dies mid-trace with a typed disk error must degrade
// that tenant to journal-less serving — latched, visible, isolated — while
// its acked decisions continue uninterrupted and byte-identical; a restart
// recovers the clean journal prefix from before the fault.
func TestJournalFaultDegradesTenantE2E(t *testing.T) {
	root := t.TempDir()
	var writes atomic.Int64
	faultCfg := Config{
		CheckpointRoot:  root,
		CheckpointEvery: 0, // journal-only: every decision is one append
		JournalFault: func(tenant string) atomicio.FaultFn {
			if tenant != "faulty" {
				return nil
			}
			return func(stage atomicio.Stage) error {
				if stage == atomicio.StageWrite && writes.Add(1) == 4 {
					return syscall.EIO
				}
				return nil
			}
		},
	}
	_, ts := newTestServer(t, faultCfg)
	const total = 8
	stream := tenantStream("faulty", 0, total)
	solo := soloThreads(t, stream)
	var acked []int
	for k := 0; k < total; k++ {
		status, out, eresp := postDecideID(t, ts.URL, "faulty", "", toWire(stream[k:k+1]))
		if status != http.StatusOK {
			t.Fatalf("step %d: status %d (%+v) — a disk fault must never fail a decision", k, status, eresp)
		}
		if out.Decisions != int64(k+1) {
			t.Fatalf("step %d: decisions %d, want %d", k, out.Decisions, k+1)
		}
		acked = append(acked, out.Threads...)
	}
	if fmt.Sprint(acked) != fmt.Sprint(solo) {
		t.Fatalf("acked trace diverged through the disk fault:\n got %v\nwant %v", acked, solo)
	}
	// The degradation is latched and typed: the tenant listing carries the
	// I/O error, not a silent journal gap.
	resp, err := http.Get(ts.URL + "/v1/tenants")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var infos []struct {
		ID       string `json:"id"`
		Degraded string `json:"degraded"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, info := range infos {
		if info.ID == "faulty" {
			found = true
			if info.Degraded == "" {
				t.Fatal("tenant not marked degraded after journal EIO")
			}
			if !strings.Contains(info.Degraded, "input/output error") {
				t.Fatalf("degraded reason %q does not carry the typed disk error", info.Degraded)
			}
		}
	}
	if !found {
		t.Fatal("tenant missing from listing")
	}

	// Restart on the same root, fault gone: the journal prefix from before
	// the fault (3 appends succeeded; the 4th died) recovers cleanly.
	_, ts2 := newTestServer(t, Config{CheckpointRoot: root, CheckpointEvery: 0})
	status, out, eresp := postDecideID(t, ts2.URL, "faulty", "", toWire(stream[3:4]))
	if status != http.StatusOK {
		t.Fatalf("post-restart: status %d (%+v)", status, eresp)
	}
	if out.Decisions != 4 {
		t.Fatalf("post-restart decisions %d, want 4 (3 recovered + 1 new)", out.Decisions)
	}
}

// TestRequestIDDedup pins same-process idempotency and its survival across
// a restart: a retried request ID answers from the window with the original
// decisions, the runtime advances exactly once, and the journaled markers
// rebuild the window after the process is replaced.
func TestRequestIDDedup(t *testing.T) {
	root := t.TempDir()
	_, ts := newTestServer(t, Config{CheckpointRoot: root})
	stream := tenantStream("idem", 0, 4)

	status, first, eresp := postDecideID(t, ts.URL, "idem", "r1", toWire(stream[0:2]))
	if status != http.StatusOK {
		t.Fatalf("first: status %d (%+v)", status, eresp)
	}
	status, again, _ := postDecideID(t, ts.URL, "idem", "r1", toWire(stream[0:2]))
	if status != http.StatusOK || !again.Deduped {
		t.Fatalf("retry: status %d deduped %v, want 200 dedup hit", status, again.Deduped)
	}
	if fmt.Sprint(again.Threads) != fmt.Sprint(first.Threads) || again.Decisions != first.Decisions {
		t.Fatalf("dedup answer (%v, %d) != original (%v, %d)",
			again.Threads, again.Decisions, first.Threads, first.Decisions)
	}
	// The header spelling is equivalent for single-JSON bodies.
	body, _ := json.Marshal(decideRequest{Tenant: "idem", Observations: toWire(stream[0:2])})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/decide", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", "r1")
	hresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var hout decideResponse
	json.NewDecoder(hresp.Body).Decode(&hout)
	hresp.Body.Close()
	if !hout.Deduped {
		t.Fatal("X-Request-Id header did not dedup")
	}

	// Unidentified requests advance normally.
	status, out, _ := postDecideID(t, ts.URL, "idem", "", toWire(stream[2:3]))
	if status != http.StatusOK || out.Decisions != 3 {
		t.Fatalf("anonymous request: status %d decisions %d, want 200/3", status, out.Decisions)
	}

	// A replacement process recovers the window from the journal markers.
	_, ts2 := newTestServer(t, Config{CheckpointRoot: root})
	status, rec, _ := postDecideID(t, ts2.URL, "idem", "r1", toWire(stream[0:2]))
	if status != http.StatusOK || !rec.Deduped {
		t.Fatalf("post-restart retry: status %d deduped %v, want dedup hit", status, rec.Deduped)
	}
	if fmt.Sprint(rec.Threads) != fmt.Sprint(first.Threads) {
		t.Fatalf("post-restart dedup answer %v != original %v", rec.Threads, first.Threads)
	}
	// An oversized ID is refused before it can reach the journal.
	status, _, eresp = postDecideID(t, ts2.URL, "idem", strings.Repeat("x", maxRequestID+1), toWire(stream[3:4]))
	if status != http.StatusBadRequest {
		t.Fatalf("oversized request ID: status %d, want 400", status)
	}
	_ = eresp
}
