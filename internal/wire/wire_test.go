package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math"
	"testing"

	"moe"
)

func testObs(k int) moe.Observation {
	o := moe.Observation{
		Time:           0.25 * float64(k),
		Rate:           100 + float64(k%13),
		RegionStart:    k%4 == 0,
		AvailableProcs: 16,
	}
	for j := range o.Features {
		o.Features[j] = 0.15*float64(j+1) + 0.02*float64((k*7+j*3)%11)
	}
	return o
}

func TestHelloRoundTrip(t *testing.T) {
	b := AppendHello(nil)
	rd := NewReader(bytes.NewReader(b))
	kind, payload, size, err := rd.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if kind != FrameHello {
		t.Fatalf("kind = %#x, want hello", kind)
	}
	if size != len(b) {
		t.Fatalf("size = %d, want %d", size, len(b))
	}
	v, err := ParseHello(payload)
	if err != nil {
		t.Fatalf("ParseHello: %v", err)
	}
	if v != Version {
		t.Fatalf("version = %d, want %d", v, Version)
	}
}

func TestHelloVersionSkew(t *testing.T) {
	b := AppendHello(nil)
	// Rewrite the version byte and fix up the checksum the way a future
	// peer would: a well-formed frame of another version.
	body := b[4 : len(b)-4]
	body[len(body)-1] = Version + 1
	binary.LittleEndian.PutUint32(b[len(b)-4:], crcSum(body))
	rd := NewReader(bytes.NewReader(b))
	_, payload, _, err := rd.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if _, err := ParseHello(payload); !errors.Is(err, ErrVersion) {
		t.Fatalf("ParseHello = %v, want ErrVersion", err)
	}
}

func crcSum(b []byte) uint32 { return crc32.Checksum(b, crcTable) }

func TestDecideRoundTrip(t *testing.T) {
	obs := make([]moe.Observation, 7)
	for k := range obs {
		obs[k] = testObs(k)
	}
	// Hostile-friendly floats must survive bit-identically.
	obs[2].Time = math.NaN()
	obs[3].Rate = math.Inf(1)
	obs[4].Features[0] = math.Copysign(0, -1)
	b := AppendDecide(nil, 42, 1500, "tenant-a", "req-001", obs)

	rd := NewReader(bytes.NewReader(b))
	kind, payload, _, err := rd.Next()
	if err != nil || kind != FrameDecide {
		t.Fatalf("Next: kind=%#x err=%v", kind, err)
	}
	var d Decide
	if err := ParseDecide(payload, &d); err != nil {
		t.Fatalf("ParseDecide: %v", err)
	}
	if d.Seq != 42 || d.DeadlineMs != 1500 {
		t.Fatalf("seq/deadline = %d/%d", d.Seq, d.DeadlineMs)
	}
	if string(d.Tenant) != "tenant-a" || string(d.RequestID) != "req-001" {
		t.Fatalf("tenant/id = %q/%q", d.Tenant, d.RequestID)
	}
	if len(d.Obs) != len(obs) {
		t.Fatalf("obs count = %d, want %d", len(d.Obs), len(obs))
	}
	for i := range obs {
		want, got := obs[i], d.Obs[i]
		if math.Float64bits(want.Time) != math.Float64bits(got.Time) ||
			math.Float64bits(want.Rate) != math.Float64bits(got.Rate) ||
			want.RegionStart != got.RegionStart || want.AvailableProcs != got.AvailableProcs {
			t.Fatalf("obs %d scalar mismatch: %+v vs %+v", i, want, got)
		}
		for j := range want.Features {
			if math.Float64bits(want.Features[j]) != math.Float64bits(got.Features[j]) {
				t.Fatalf("obs %d feature %d mismatch", i, j)
			}
		}
	}
}

func TestResultErrorRoundTrip(t *testing.T) {
	b := AppendResult(nil, &Result{Seq: 9, Decisions: 1234, Deduped: true, Threads: []int{1, 8, 16, 3}})
	b = AppendError(b, 10, 250, "rate", "request rate over limit")

	rd := NewReader(bytes.NewReader(b))
	kind, payload, _, err := rd.Next()
	if err != nil || kind != FrameResult {
		t.Fatalf("Next: kind=%#x err=%v", kind, err)
	}
	var res Result
	if err := ParseResult(payload, &res); err != nil {
		t.Fatalf("ParseResult: %v", err)
	}
	if res.Seq != 9 || res.Decisions != 1234 || !res.Deduped {
		t.Fatalf("result = %+v", res)
	}
	if len(res.Threads) != 4 || res.Threads[0] != 1 || res.Threads[3] != 3 {
		t.Fatalf("threads = %v", res.Threads)
	}

	kind, payload, _, err = rd.Next()
	if err != nil || kind != FrameError {
		t.Fatalf("Next: kind=%#x err=%v", kind, err)
	}
	var e Error
	if err := ParseError(payload, &e); err != nil {
		t.Fatalf("ParseError: %v", err)
	}
	if e.Seq != 10 || e.RetryAfterMs != 250 || string(e.Code) != "rate" || string(e.Msg) != "request rate over limit" {
		t.Fatalf("error = %+v", e)
	}

	if _, _, _, err := rd.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want clean EOF, got %v", err)
	}
}

func TestReaderRejectsCorruption(t *testing.T) {
	good := AppendDecide(nil, 1, 0, "t", "", []moe.Observation{testObs(0)})

	// Flip one payload byte: checksum must catch it.
	flipped := append([]byte(nil), good...)
	flipped[10] ^= 0x40
	if _, _, _, err := NewReader(bytes.NewReader(flipped)).Next(); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("bit flip: err = %v, want ErrBadFrame", err)
	}

	// Zero length and absurd length are rejected before any allocation.
	for _, n := range []uint32{0, MaxFrame + 1, math.MaxUint32} {
		hostile := append([]byte(nil), good...)
		binary.LittleEndian.PutUint32(hostile, n)
		if _, _, _, err := NewReader(bytes.NewReader(hostile)).Next(); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("length %d: err = %v, want ErrBadFrame", n, err)
		}
	}

	// Every truncation point is a partial frame, never a panic.
	for cut := 1; cut < len(good); cut++ {
		_, _, _, err := NewReader(bytes.NewReader(good[:cut])).Next()
		if err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}

	// A decide payload claiming more observations than its bytes can hold.
	var d Decide
	b := binary.AppendUvarint(nil, 1)              // seq
	b = binary.AppendUvarint(b, 0)                 // deadline
	b = append(b, 1, 't')                          // tenant
	b = append(b, 0)                               // request id
	b = binary.AppendUvarint(b, math.MaxUint32>>1) // hostile obs count
	if err := ParseDecide(b, &d); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("hostile count: err = %v, want ErrBadFrame", err)
	}
}

func TestHelloPrefix(t *testing.T) {
	hello := AppendHello(nil)
	if !HelloPrefix(hello) {
		t.Fatal("hello frame not recognized")
	}
	for cut := 0; cut <= 9; cut++ {
		if !HelloPrefix(hello[:cut]) {
			t.Fatalf("hello prefix of %d bytes not recognized", cut)
		}
	}
	if HelloPrefix([]byte(`{"tenant":"a"}`)) {
		t.Fatal("JSON body mistaken for hello")
	}
	if HelloPrefix(AppendDecide(nil, 1, 0, "t", "", []moe.Observation{testObs(0)})) {
		t.Fatal("decide frame mistaken for hello")
	}
}

// TestWireRoundTripSteadyStateAllocs pins both directions of the codec at
// zero allocations once buffers are warm — the bar bench-smoke enforces.
func TestWireRoundTripSteadyStateAllocs(t *testing.T) {
	obs := make([]moe.Observation, 4)
	for k := range obs {
		obs[k] = testObs(k)
	}
	var buf []byte
	var d Decide
	var res Result
	resIn := Result{Seq: 7, Decisions: 99, Threads: []int{4, 8, 12, 16}}
	// Warm the reusable buffers once.
	buf = AppendDecide(buf[:0], 1, 0, "tenant-a", "req", obs)
	buf = AppendResult(buf, &resIn)
	allocs := testing.AllocsPerRun(100, func() {
		buf = AppendDecide(buf[:0], 1, 0, "tenant-a", "req", obs)
		kind, payload, size, err := frameAt(buf)
		if err != nil || kind != FrameDecide {
			t.Fatalf("frame: %v", err)
		}
		if err := ParseDecide(payload, &d); err != nil {
			t.Fatal(err)
		}
		buf = AppendResult(buf[:size], &resIn)
		kind, payload, _, err = frameAt(buf[size:])
		if err != nil || kind != FrameResult {
			t.Fatalf("frame: %v", err)
		}
		if err := ParseResult(payload, &res); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("wire round trip allocates %.1f/op in steady state, want 0", allocs)
	}
}

// frameAt parses one frame at the start of b without a Reader (test-side
// helper mirroring Reader.Next's validation on an in-memory buffer).
func frameAt(b []byte) (kind byte, payload []byte, size int, err error) {
	if len(b) < 4 {
		return 0, nil, 0, io.ErrUnexpectedEOF
	}
	n := binary.LittleEndian.Uint32(b)
	if n < 1 || n > MaxFrame {
		return 0, nil, 0, ErrBadFrame
	}
	if len(b) < int(4+n+4) {
		return 0, nil, 0, io.ErrUnexpectedEOF
	}
	body := b[4 : 4+n]
	want := binary.LittleEndian.Uint32(b[4+n:])
	if crcSum(body) != want {
		return 0, nil, 0, ErrBadFrame
	}
	return body[0], body[1:], int(4 + n + 4), nil
}

// BenchmarkWireRoundTrip is the bench-smoke guard: encode one 4-observation
// decide frame, parse it back, encode its result, parse that back — all
// into reused buffers. allocs/op must be 0.
func BenchmarkWireRoundTrip(b *testing.B) {
	obs := make([]moe.Observation, 4)
	for k := range obs {
		obs[k] = testObs(k)
	}
	var buf []byte
	var d Decide
	var res Result
	resIn := Result{Seq: 7, Decisions: 99, Threads: []int{4, 8, 12, 16}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendDecide(buf[:0], uint64(i), 0, "tenant-a", "req", obs)
		kind, payload, size, err := frameAt(buf)
		if err != nil || kind != FrameDecide {
			b.Fatalf("frame: %v", err)
		}
		if err := ParseDecide(payload, &d); err != nil {
			b.Fatal(err)
		}
		buf = AppendResult(buf[:size], &resIn)
		kind, payload, _, err = frameAt(buf[size:])
		if err != nil || kind != FrameResult {
			b.Fatalf("frame: %v", err)
		}
		if err := ParseResult(payload, &res); err != nil {
			b.Fatal(err)
		}
	}
}
