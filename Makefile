GO ?= go

.PHONY: build test race vet bench bench-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./internal/... .

vet:
	$(GO) vet ./...

# bench regenerates the committed perf baseline: it measures both simulation
# engines on the canonical scenario (min-of-3, two-point step-loop
# derivation) and rewrites BENCH_PR5.json in place. Commit the result when
# the engine changes on purpose.
bench:
	$(GO) run ./cmd/moebench -bench-json BENCH_PR5.json

# bench-smoke is the CI guard: a cheap fixed-iteration run of the sim
# stepping-loop microbenchmarks that fails if the steady-state loop ever
# allocates again. Timing is not asserted (CI machines are too noisy); the
# allocs/op == 0 invariant is.
bench-smoke:
	$(GO) test ./internal/sim -run=NONE -bench 'StepLoop' -benchmem -benchtime=100x -count=2 | tee bench-smoke.txt
	@if grep -E '[1-9][0-9]* allocs/op' bench-smoke.txt; then \
		echo 'bench-smoke: stepping loop allocates'; exit 1; \
	fi
	@grep -c ' 0 allocs/op' bench-smoke.txt > /dev/null
