package core

import (
	"math"
	"testing"

	"moe/internal/expert"
	"moe/internal/features"
	"moe/internal/regress"
	"moe/internal/sim"
)

// --- healthTracker state machine -----------------------------------------

func TestHealthNonFiniteQuarantinesImmediately(t *testing.T) {
	h := newHealthTracker(2)
	if !h.observe(0, false, 0, 10) {
		t.Fatal("non-finite prediction did not quarantine")
	}
	if h.usable(0) {
		t.Error("quarantined expert reported usable")
	}
	if !h.usable(1) {
		t.Error("healthy expert reported unusable")
	}
	if h.allQuarantined() {
		t.Error("allQuarantined with one healthy expert")
	}
}

func TestHealthExplodingErrorQuarantines(t *testing.T) {
	h := newHealthTracker(1)
	// Relative error 20 — far past the ratio — trips on the first sample.
	if !h.observe(0, true, 200, 10) {
		t.Error("relative error 20 did not quarantine")
	}

	// Moderate errors never do, no matter how many.
	h2 := newHealthTracker(1)
	for i := 0; i < 500; i++ {
		if h2.observe(0, true, 20, 10) { // relative error 2
			t.Fatalf("moderate error quarantined at step %d", i)
		}
	}
	if !h2.usable(0) {
		t.Error("moderately erring expert became unusable")
	}
}

// driveToProbation feeds clean observations until the cooldown elapses.
func driveToProbation(t *testing.T, h *healthTracker, k int) {
	t.Helper()
	for i := 0; i < quarantineCooldown; i++ {
		if h.usable(k) {
			t.Fatalf("expert %d usable after only %d cooldown steps", k, i)
		}
		h.observe(k, true, 1, 10)
	}
	if !h.usable(k) {
		t.Fatalf("expert %d not on probation after cooldown", k)
	}
	if h.experts[k].state != healthProbation {
		t.Fatalf("expert %d state %v after cooldown, want probation", k, h.experts[k].state)
	}
}

func TestHealthCooldownThenProbationThenReadmission(t *testing.T) {
	h := newHealthTracker(1)
	h.observe(0, false, 0, 10)
	driveToProbation(t, h, 0)
	// probationLength clean predictions restore good standing.
	for i := 0; i < probationLength; i++ {
		if h.experts[0].state != healthProbation {
			t.Fatalf("left probation after only %d clean steps", i)
		}
		h.observe(0, true, 1, 10)
	}
	if h.experts[0].state != healthOK {
		t.Errorf("state %v after clean probation, want ok", h.experts[0].state)
	}
	if got := h.experts[0].quarantines; got != 1 {
		t.Errorf("quarantine count %d, want 1", got)
	}
}

func TestHealthProbationViolationRequarantines(t *testing.T) {
	h := newHealthTracker(1)
	h.observe(0, false, 0, 10)
	driveToProbation(t, h, 0)
	h.observe(0, true, 1, 10) // one clean step into probation
	// A single bad prediction sends it straight back.
	if !h.observe(0, true, 500, 10) {
		t.Fatal("probation violation did not re-quarantine")
	}
	if h.usable(0) {
		t.Error("re-quarantined expert reported usable")
	}
	if got := h.experts[0].quarantines; got != 2 {
		t.Errorf("quarantine count %d, want 2", got)
	}
}

func TestHealthReadmissionForgetsOldErrors(t *testing.T) {
	h := newHealthTracker(1)
	h.observe(0, true, 200, 10) // quarantined with errEMA 20
	driveToProbation(t, h, 0)
	for i := 0; i < probationLength; i++ {
		h.observe(0, true, 1, 10)
	}
	// Readmitted with a reset EMA: the next ordinary observation must not
	// re-trip on history accumulated while broken.
	if h.observe(0, true, 10, 10) {
		t.Error("readmitted expert re-quarantined by its pre-quarantine history")
	}
}

func TestHealthiestAndAllQuarantined(t *testing.T) {
	h := newHealthTracker(3)
	h.observe(0, true, 10, 10) // relative error 1
	h.observe(1, true, 50, 10) // relative error 5
	h.observe(2, false, 0, 10) // quarantined
	if got := h.healthiest(); got != 0 {
		t.Errorf("healthiest = %d, want 0", got)
	}
	h.observe(0, false, 0, 10)
	if got := h.healthiest(); got != 1 {
		t.Errorf("healthiest after losing 0 = %d, want 1", got)
	}
	h.observe(1, false, 0, 10)
	if !h.allQuarantined() {
		t.Error("allQuarantined false with every expert down")
	}
	if got := h.healthiest(); got != -1 {
		t.Errorf("healthiest of empty pool = %d, want -1", got)
	}
}

// TestHealthiestRanksUnscoredBehindScored is the regression test for the
// ranking bug the living pool exposed: healthiest() treated a never-scored
// expert's zero error EMA as a perfect record, so a newborn with no
// evidence at all outranked every proven veteran on the reroute rung. An
// unscored expert must rank behind every scored one, whatever the scored
// errors are.
func TestHealthiestRanksUnscoredBehindScored(t *testing.T) {
	h := newHealthTracker(1)
	h.observe(0, true, 30, 10) // scored veteran, relative error 3
	h.addExpert()              // newborn: probation, never scored
	if got := h.healthiest(); got != 0 {
		t.Errorf("healthiest = %d, want the scored veteran over the unscored newborn", got)
	}
	// Among several unscored experts the first wins (stable tie-break) —
	// and scoring any of them immediately promotes it past the rest.
	h2 := newHealthTracker(0)
	h2.addExpert()
	h2.addExpert()
	if got := h2.healthiest(); got != 0 {
		t.Errorf("all-unscored healthiest = %d, want 0", got)
	}
	h2.observe(1, true, 70, 10) // terrible, but it is evidence
	if got := h2.healthiest(); got != 1 {
		t.Errorf("healthiest = %d, want the scored expert despite its error", got)
	}
}

func TestHealthiestPrefersGoodStandingOverProbation(t *testing.T) {
	h := newHealthTracker(2)
	h.experts[0] = expertHealth{state: healthProbation, errEMA: 1, seen: true}
	h.experts[1] = expertHealth{state: healthOK, errEMA: 1, seen: true}
	if got := h.healthiest(); got != 1 {
		t.Errorf("healthiest = %d, want the expert in good standing", got)
	}
}

func TestHealthSnapshot(t *testing.T) {
	h := newHealthTracker(2)
	h.observe(0, false, 0, 10)
	q, counts := h.snapshot()
	if !q[0] || q[1] {
		t.Errorf("snapshot quarantined = %v, want [true false]", q)
	}
	if counts[0] != 1 || counts[1] != 0 {
		t.Errorf("snapshot counts = %v, want [1 0]", counts)
	}
}

// --- mixture-level fallback chain ----------------------------------------

// switchableEnv is an environment predictor with a breakage switch; while
// broken it predicts NaN — the signature of a corrupt model. It deliberately
// has no Validate method: boundary validation makes such models
// unconstructible from tables, so tests inject them directly.
type switchableEnv struct {
	broken *bool
}

func (s switchableEnv) Predict(features.Vector) expert.EnvPrediction {
	if *s.broken {
		return expert.EnvPrediction{Norm: math.NaN()}
	}
	return expert.EnvPrediction{Norm: 10}
}

func (s switchableEnv) Dim() int { return features.Dim }

// stubExpert builds an expert whose thread predictor always answers n and
// whose environment predictor breaks when *broken is set.
func stubExpert(t *testing.T, name string, n float64, broken *bool) *expert.Expert {
	t.Helper()
	coeffs := make([]float64, features.Dim+1)
	coeffs[features.Dim] = n // bias-only model: constant prediction
	m, err := regress.FromCoefficients(coeffs)
	if err != nil {
		t.Fatal(err)
	}
	return &expert.Expert{
		Name:       name,
		Threads:    m,
		Env:        switchableEnv{broken: broken},
		MaxThreads: 32,
	}
}

// healthTestDecision's environment has norm 10, matching the healthy stub
// predictions so healthy experts score near-zero error.
func healthTestDecision(t float64) sim.Decision {
	return sim.Decision{
		Time: t,
		Features: features.Combine(
			features.Code{LoadStore: 0.05, Instructions: 0.1, Branches: 0.01},
			features.Env{Processors: 10},
		),
		CurrentThreads: 1,
		MaxThreads:     16,
		AvailableProcs: 5,
	}
}

func TestMixtureFallbackChain(t *testing.T) {
	var broken0, broken1 bool
	set := expert.Set{
		stubExpert(t, "A", 8, &broken0),
		stubExpert(t, "B", 4, &broken1),
	}
	m, err := NewMixture(set, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Healthy phase: predictions come from the pool (8 or 4, depending on
	// gating), never from the OS-default fallback (5).
	for i := 0; i < 10; i++ {
		n := m.Decide(healthTestDecision(float64(i)))
		if n != 8 && n != 4 {
			t.Fatalf("healthy decision %d = %d, want 8 or 4", i, n)
		}
	}
	st := m.Snapshot()
	if st.Quarantined[0] || st.Quarantined[1] {
		t.Fatal("healthy expert quarantined")
	}
	if st.FallbackDecisions != 0 || st.ReroutedDecisions != 0 {
		t.Fatalf("healthy run used the fallback chain: %+v", st)
	}

	// Break expert A: its NaN predictions quarantine it at the next scored
	// step, and every decision reroutes to B.
	broken0 = true
	for i := 10; i < 20; i++ {
		m.Decide(healthTestDecision(float64(i)))
	}
	st = m.Snapshot()
	if !st.Quarantined[0] {
		t.Fatal("broken expert A not quarantined")
	}
	if st.Quarantined[1] {
		t.Fatal("healthy expert B quarantined alongside A")
	}
	if n := m.Decide(healthTestDecision(20)); n != 4 {
		t.Errorf("decision with A down = %d, want B's 4", n)
	}

	// Break B too: the whole pool is down, so decisions fall through to the
	// OS default — one thread per available processor.
	broken1 = true
	for i := 21; i < 25; i++ {
		m.Decide(healthTestDecision(float64(i)))
	}
	if n := m.Decide(healthTestDecision(25)); n != 5 {
		t.Errorf("all-quarantined decision = %d, want AvailableProcs 5", n)
	}
	st = m.Snapshot()
	if !st.Quarantined[0] || !st.Quarantined[1] {
		t.Fatal("full pool breakage not reflected in snapshot")
	}
	if st.FallbackDecisions == 0 {
		t.Error("no fallback decisions counted with the pool down")
	}
	if st.QuarantineCount[0] < 1 || st.QuarantineCount[1] < 1 {
		t.Errorf("quarantine counts %v, want at least one each", st.QuarantineCount)
	}

	// Repair both experts: after cooldown and probation the pool recovers
	// and predictions come from experts again.
	broken0, broken1 = false, false
	for i := 26; i < 26+2*(quarantineCooldown+probationLength)+4; i++ {
		m.Decide(healthTestDecision(float64(i)))
	}
	st = m.Snapshot()
	if st.Quarantined[0] || st.Quarantined[1] {
		t.Fatalf("pool did not recover after repair: %+v", st.Quarantined)
	}
	if n := m.Decide(healthTestDecision(1000)); n != 8 && n != 4 {
		t.Errorf("recovered decision = %d, want an expert prediction", n)
	}

	// Decisions must count both expert-served and fallback-served steps.
	st = m.Snapshot()
	if st.Decisions == 0 || st.Decisions != st.FallbackDecisions+totalSelections(m) {
		t.Errorf("Decisions = %d, fallback = %d, selections = %d",
			st.Decisions, st.FallbackDecisions, totalSelections(m))
	}
}

func totalSelections(m *Mixture) int { return m.selections.Total() }

// TestMixtureSanitizesFeatures: non-finite features are repaired before
// prediction, counted in the snapshot, and never produce an out-of-range
// decision or a quarantine of a healthy expert.
func TestMixtureSanitizesFeatures(t *testing.T) {
	var broken bool
	set := expert.Set{stubExpert(t, "A", 8, &broken)}
	m, err := NewMixture(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := healthTestDecision(0)
	d.Features[features.CPULoad1] = math.NaN()
	d.Features[features.CachedMemory] = math.Inf(1)
	n := m.Decide(d)
	if n < 1 || n > d.MaxThreads {
		t.Errorf("decision %d out of range on corrupt features", n)
	}
	st := m.Snapshot()
	if st.SanitizedValues != 2 {
		t.Errorf("SanitizedValues = %d, want 2", st.SanitizedValues)
	}
	// The constant-prediction expert stays healthy through garbage input.
	for i := 1; i < 10; i++ {
		m.Decide(healthTestDecision(float64(i)))
	}
	if st := m.Snapshot(); st.Quarantined[0] {
		t.Error("healthy expert quarantined by sanitized input")
	}
}
