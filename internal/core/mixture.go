// Package core implements the paper's contribution: the mixture-of-experts
// expert selector (§4.2, §5.3). Given a pool of offline experts, the online
// model M decides which expert to consult at each control point. Because
// the quality of a thread prediction cannot be observed directly — the
// speedup other thread counts would have achieved is counterfactual — M
// selects using a proxy: each expert's *environment predictor*. At every
// timestep the previous step's environment predictions are scored against
// the now-observed environment norm, and the feature space is repartitioned
// so that each region is owned by the expert whose predictions have been
// most accurate there.
//
// Two selector implementations are provided:
//
//   - HyperplaneSelector: the paper's scheme — a series of hyperplanes S in
//     the 10-dimensional feature space defining the region owned by each
//     expert, adjusted online using data from the last timestep only;
//   - AccuracySelector: a simpler gating baseline that tracks an
//     exponentially decayed per-expert accuracy and picks the current best
//     regardless of feature-space position. Used by the ablation benches.
package core

import (
	"fmt"
	"math"

	"moe/internal/evolve"
	"moe/internal/expert"
	"moe/internal/features"
	"moe/internal/sim"
	"moe/internal/stats"
	"moe/internal/telemetry"
)

// Selector is the gating model M: it names the expert to use for a state f
// and learns from environment-prediction errors.
type Selector interface {
	// Select returns the index of the expert to consult for state f.
	Select(f features.Vector) int
	// Update incorporates the outcome of the previous timestep: the state
	// it was decided in, and each expert's absolute environment error a^k
	// at that state.
	Update(f features.Vector, errors []float64)
	// Name identifies the selector variant.
	Name() string
}

// Mixture is the complete runtime policy: a pool of experts plus a selector,
// implementing sim.Policy. It records the bookkeeping behind the analysis
// figures: per-expert selection counts (Fig 15b), environment-prediction
// accuracy (Fig 15a) and chosen-thread histograms (Fig 17).
//
// The mixture degrades gracefully when its inputs or experts fail. Incoming
// features are sanitized (non-finite components zeroed, magnitudes
// bounded), every expert carries a health record that quarantines it when
// its environment predictions go non-finite or its rolling error explodes
// (see health.go), and selection descends a fallback chain: the gated
// mixture while any healthy expert remains, the healthiest single expert
// when the selector's choice is quarantined, and the OS-default policy (one
// thread per available processor) when the whole pool is quarantined.
type Mixture struct {
	experts  expert.Set
	selector Selector
	health   *healthTracker
	trust    sensorTrust

	// pending holds last step's state and per-expert environment
	// predictions, scored when the next observation arrives.
	pendingValid bool
	pendingFeat  features.Vector
	pendingPred  []expert.EnvPrediction

	// Analysis bookkeeping.
	selections   *stats.Histogram // expert index → times chosen
	threadHist   *stats.Histogram
	accurate     []int // per expert: predictions within tolerance
	observations []int // per expert: scored predictions
	mixAccurate  int   // chosen expert's prediction within tolerance
	mixObserved  int
	errSum       []float64 // per expert: Σ a^k, for normalized error
	obsNormSum   float64   // Σ ‖e‖ observed, to normalize errors
	sanitized    int       // feature components repaired on the way in
	rerouted     int       // selections rerouted off a quarantined expert
	fallback     int       // decisions served by the OS-default fallback

	// detail, when non-nil, captures each decision's internals for the
	// telemetry layer (see EnableDecisionDetail). Capture only reads the
	// decision path's existing values, so enabling it never changes a
	// decision — the golden-trace tests pin that.
	detail *decisionDetail

	// fast holds the healthy-regime fast path's preallocated scratch and
	// memoized gating evaluations (see batch.go); nil until the first
	// FastPlan.
	fast *fastScratch

	// fastPrimed records that the last mutation was a FastCommit, which
	// provably preserves RegimeHealthy (no health transition, detail capture
	// untouched, pending predictions refreshed, expert pool unchanged) — so
	// the next FastPlan may skip the standing-regime recheck. Every other
	// mutator (Decide, the detail toggles, RestoreState) clears it.
	fastPrimed bool

	// evo, when non-nil, runs the online expert lifecycle (see
	// evolution.go): the pool grows and shrinks at runtime. nil — the zero
	// Options.Evolution — keeps the pool frozen and every code path
	// byte-identical to the pre-evolution mixture.
	evo *evolutionState

	// baseline is the construction-time pool, kept so a checkpointed pool
	// composition can be rebuilt by name from indexes into it (evolved
	// members carry their full coefficient tables in the snapshot instead).
	baseline expert.Set
}

// decisionDetail is the per-decision scratch the telemetry layer reads.
// Buffers are reused across decisions to keep the instrumented path cheap.
type decisionDetail struct {
	repaired   int
	suspect    bool
	gating     []float64
	selected   int
	rung       string
	events     []telemetry.HealthEvent
	states     []healthState // health states at decision entry, for diffing
	poolSize   int           // live pool size (evolution only; 0 otherwise)
	poolEpoch  int
	poolEvents []telemetry.PoolEvent
	poolAges   []int
}

// Options configures a mixture.
type Options struct {
	// Selector picks the gating implementation; nil selects the paper's
	// hyperplane scheme with default learning rate.
	Selector Selector
	// Evolution configures the online expert lifecycle (births,
	// retirements, diversity maintenance — see evolution.go). The zero
	// value disables it: the pool stays frozen and the mixture is
	// byte-identical to one built before evolution existed.
	Evolution evolve.Config
}

// NewMixture builds the mixture policy over the given experts.
func NewMixture(set expert.Set, opts Options) (*Mixture, error) {
	if err := set.Validate(); err != nil {
		return nil, err
	}
	sel := opts.Selector
	if sel == nil {
		sel = NewHyperplaneSelector(len(set), 0)
	}
	m := &Mixture{
		experts:      set,
		selector:     sel,
		health:       newHealthTracker(len(set)),
		selections:   stats.NewHistogram(),
		threadHist:   stats.NewHistogram(),
		accurate:     make([]int, len(set)),
		observations: make([]int, len(set)),
		errSum:       make([]float64, len(set)),
	}
	if opts.Evolution.Enabled {
		if _, ok := sel.(resizableSelector); !ok {
			return nil, fmt.Errorf("core: selector %q cannot track a changing pool; disable evolution or use a resizable selector", sel.Name())
		}
		// The pool will be mutated in place: give the mixture its own
		// backing array, and keep the construction pool for checkpoint
		// rebuilds.
		m.experts = append(expert.Set(nil), set...)
		m.baseline = append(expert.Set(nil), set...)
		m.evo = newEvolutionState(opts.Evolution.WithDefaults(len(set)), len(set))
	}
	return m, nil
}

// Name implements sim.Policy.
func (m *Mixture) Name() string { return "mixture" }

// Experts returns a copy of the expert pool. The slice is the caller's to
// keep; the experts themselves are shared read-only models.
func (m *Mixture) Experts() expert.Set {
	return append(expert.Set(nil), m.experts...)
}

// Decide implements sim.Policy: sanitize the observation, judge whether it
// deserves belief, score last step's predictions against the newly
// observed environment, update the selector and each expert's health,
// select an expert through the fallback chain, and return its thread
// prediction. A disbelieved observation (see trust.go) is neither learned
// from nor decided on — selection runs against the last trusted state.
func (m *Mixture) Decide(d sim.Decision) int {
	m.fastPrimed = false
	f, repaired := features.Sanitize(d.Features)
	m.sanitized += repaired
	observedEnv := f.EnvPart()
	observedNorm := observedEnv.Norm()

	if m.evo != nil {
		m.evo.events = m.evo.events[:0]
	}

	det := m.detail
	if det != nil {
		det.repaired = repaired
		det.suspect = false
		det.selected = -1
		det.rung = ""
		det.gating = det.gating[:0]
		det.events = det.events[:0]
		// Health states only change inside Decide (scoring), so the states
		// recorded at the end of the previous decision ARE this decision's
		// entry states — the baseline is rebuilt only on first capture.
		if len(det.states) != len(m.experts) {
			det.states = det.states[:0]
			for k := range m.experts {
				det.states = append(det.states, m.health.stateOf(k))
			}
		}
	}

	// Sensor trust engages only for diverse pools: disbelieving a sensor
	// takes multiple witnesses, and a lone expert cannot outvote its only
	// source of information. An observation that needed repair, or whose
	// availability signal is churning implausibly fast, is suspect before
	// any expert votes.
	trustActive := len(m.experts) >= 2
	suspect := false
	if trustActive {
		storming := m.trust.procStorming(f[features.Processors])
		suspect = repaired > 0 || storming
	}

	// Score the pending predictions now that e_t is observable. Per §5.3
	// only this single (last-timestep) observation updates M.
	if m.pendingValid {
		// Gating errors (likelihood-scaled when available) drive the
		// selector; raw errors back the Fig 15a accuracy statistics.
		// The applicability factor inflates the error of experts whose
		// training never covered this state (input likelihood, the
		// gating of the classic mixture-of-experts formulation): a
		// 12-core-trained expert is no authority on a 32-processor
		// machine no matter how lucky its last prediction was.
		errors := make([]float64, len(m.experts))
		raw := make([]float64, len(m.experts))
		finite := make([]bool, len(m.experts))
		for k := range m.experts {
			pred := m.pendingPred[k]
			finite[k] = pred.Finite()
			if finite[k] {
				errors[k] = pred.Error(observedEnv) * applicabilityFactor(m.experts[k], &m.pendingFeat)
				raw[k] = pred.RawError(observedEnv)
			} else {
				// A corrupt expert's NaN must not poison the selector's
				// bookkeeping; a finite error far beyond anything a
				// working expert produces demotes it everywhere while
				// health tracking quarantines it.
				errors[k] = quarantineGatingError(observedNorm)
				raw[k] = errors[k]
			}
		}
		if det != nil {
			det.gating = append(det.gating, raw...)
		}
		if trustActive && !suspect && consensusSuspect(raw, finite, observedNorm) {
			suspect = true
		}
		if suspect {
			// Don't learn from a lie — but a non-finite prediction proves
			// its expert broken whatever the sensors say, so quarantine
			// still applies.
			for k := range m.experts {
				if !finite[k] {
					m.health.observe(k, false, raw[k], observedNorm)
				}
			}
		} else {
			for k := range m.experts {
				m.errSum[k] += raw[k]
				m.observations[k]++
				if finite[k] && withinEnvTolerance(raw[k], observedNorm) {
					m.accurate[k]++
				}
				m.health.observe(k, finite[k], raw[k], observedNorm)
			}
			m.obsNormSum += observedNorm
			if m.evo != nil {
				m.evoRecordScored(raw, observedNorm, d.Rate)
			}
			m.selector.Update(m.pendingFeat, errors)

			// Mixture-level accuracy: was the *chosen* expert accurate?
			chosen := m.selector.Select(m.pendingFeat)
			m.mixObserved++
			if chosen >= 0 && chosen < len(raw) && withinEnvTolerance(raw[chosen], observedNorm) {
				m.mixAccurate++
			}
		}
	}

	if det != nil {
		// Health transitions caused by this step's scoring; the baseline is
		// advanced in place so it carries to the next decision.
		for k := range m.experts {
			if now := m.health.stateOf(k); now != det.states[k] {
				det.events = append(det.events, telemetry.HealthEvent{
					Expert: k, From: det.states[k].String(), To: now.String(),
				})
				det.states[k] = now
			}
		}
		det.suspect = suspect
	}

	// The state decisions are made from: the current observation when
	// believed, otherwise the freshest state the mixture still trusts.
	sel := f
	if suspect {
		m.trust.suspects++
		if m.trust.haveFeat {
			sel = m.trust.lastFeat
		}
	} else if trustActive {
		m.trust.lastFeat, m.trust.haveFeat = f, true
	}

	// Select and predict, descending the fallback chain as far as health
	// requires: selector's choice → healthiest single expert → OS default.
	// An empty pool (reachable only through evolution's retirements, and
	// then only transiently) and an out-of-range selector verdict are both
	// treated as "nothing usable": degrade, never panic.
	var n int
	selected := -1
	if len(m.experts) == 0 || m.health.allQuarantined() {
		n = m.fallbackThreads(d)
		m.fallback++
		if det != nil {
			det.rung = "os-default"
		}
	} else {
		k := m.selector.Select(sel)
		rung := "selector"
		if k < 0 || k >= len(m.experts) || !m.health.usable(k) {
			k = m.health.healthiest()
			m.rerouted++
			rung = "reroute"
		}
		if k < 0 {
			n = m.fallbackThreads(d)
			m.fallback++
			rung = "os-default"
		} else {
			selected = k
			m.selections.Add(k)
			n = m.experts[k].PredictThreads(sel, d.MaxThreads)
		}
		if det != nil {
			det.selected = selected
			det.rung = rung
		}
	}
	m.threadHist.Add(n)

	// Stash this step's environment predictions for scoring next time —
	// including quarantined experts', whose scored recovery is what drives
	// probation and re-admission. A suspect step stashes nothing: the
	// predictions made from the last trusted state stay pending until a
	// trustworthy observation arrives to score them.
	if !suspect {
		if len(m.pendingPred) != len(m.experts) {
			m.pendingPred = make([]expert.EnvPrediction, len(m.experts))
		}
		for i, e := range m.experts {
			m.pendingPred[i] = e.PredictEnv(f)
		}
		m.pendingFeat = f
		m.pendingValid = len(m.experts) > 0
	}

	if m.evo != nil {
		m.evoFinishDecide(n, suspect, selected, &sel)
		if det = m.detail; det != nil {
			det.poolSize = len(m.experts)
			det.poolEpoch = m.evo.epoch
			det.poolEvents = append(det.poolEvents[:0], m.evo.events...)
			det.poolAges = det.poolAges[:0]
			for _, b := range m.evo.born {
				det.poolAges = append(det.poolAges, m.evo.decisions-b)
			}
		}
	}

	return n
}

// fallbackThreads is the last rung of the degradation ladder: with no
// usable expert, behave exactly like the OpenMP default — one thread per
// available processor, bounded by the machine cap.
func (m *Mixture) fallbackThreads(d sim.Decision) int {
	limit := d.MaxThreads
	if limit < 1 {
		limit = m.experts.MaxThreads()
	}
	if limit < 1 {
		// No caller cap and no experts to borrow one from (the pool can be
		// momentarily empty under evolution): serial execution, never zero.
		limit = 1
	}
	n := d.AvailableProcs
	if n < 1 {
		n = limit
	}
	return stats.ClampInt(n, 1, limit)
}

// quarantineGatingError is the finite stand-in gating error charged to an
// expert whose prediction was non-finite: an order of magnitude past the
// quarantine threshold at the current environment scale, so it both loses
// every selection contest and trips health tracking immediately.
func quarantineGatingError(observedNorm float64) float64 {
	scale := math.Abs(observedNorm)
	if scale < 1 {
		scale = 1
	}
	return 10 * quarantineErrRatio * scale
}

// applicabilityFactor grows the gating error of an expert whose training
// distribution does not cover the state: 1 in distribution, quadratic in
// the worst single-feature surprise beyond 3σ.
func applicabilityFactor(e *expert.Expert, f *features.Vector) float64 {
	z := e.MaxEnvZ(f)
	if z <= 4 {
		return 1
	}
	d := z - 4
	return 1 + 0.25*d*d
}

// envAccuracyTolerance is the relative tolerance within which an
// environment prediction counts as accurate for the Fig 15a statistic.
const envAccuracyTolerance = 0.15

// withinEnvTolerance reports whether a prediction error is small relative
// to the observed environment's magnitude.
func withinEnvTolerance(err, observedNorm float64) bool {
	scale := math.Abs(observedNorm)
	if scale < 1 {
		scale = 1
	}
	return err <= envAccuracyTolerance*scale
}

// Stats is the analysis snapshot backing Figs 15a, 15b and 17.
type Stats struct {
	// SelectionFraction[k] is how often expert k was chosen.
	SelectionFraction []float64
	// EnvAccuracy[k] is the fraction of expert k's environment
	// predictions within tolerance of the observation.
	EnvAccuracy []float64
	// MixtureEnvAccuracy scores only the chosen expert at each step —
	// the mixture's effective environment-prediction accuracy.
	MixtureEnvAccuracy float64
	// NormalizedError[k] is Σa^k / Σ‖e‖, the normalized difference
	// plotted in Fig 15a.
	NormalizedError []float64
	// ThreadHistogram counts decisions per thread count (Fig 17).
	ThreadHistogram map[int]float64
	// Decisions is the total number of decisions made.
	Decisions int
	// Quarantined[k] reports whether expert k is currently quarantined.
	Quarantined []bool
	// QuarantineCount[k] is how many times expert k entered quarantine.
	QuarantineCount []int
	// SanitizedValues counts feature components the input sanitizer
	// repaired (non-finite or out-of-bound observations).
	SanitizedValues int
	// ReroutedDecisions counts selections moved off a quarantined expert
	// onto the healthiest remaining one.
	ReroutedDecisions int
	// FallbackDecisions counts decisions served by the OS-default fallback
	// because every expert was quarantined.
	FallbackDecisions int
	// SuspectObservations counts observations the sensor-trust layer
	// disbelieved (see trust.go): not learned from, decided against the
	// last trusted state instead.
	SuspectObservations int
	// ExpertNames names the live pool, indexed like the per-expert slices
	// above — under evolution the pool is not the construction pool.
	ExpertNames []string
	// PoolBirths and PoolRetirements count lifecycle events; PoolEpoch is
	// their sum, the pool-membership version. All zero with evolution off.
	PoolBirths      int
	PoolRetirements int
	PoolEpoch       int
}

// Snapshot returns the current analysis statistics.
func (m *Mixture) Snapshot() Stats {
	k := len(m.experts)
	quarantined, counts := m.health.snapshot()
	st := Stats{
		SelectionFraction:   make([]float64, k),
		EnvAccuracy:         make([]float64, k),
		NormalizedError:     make([]float64, k),
		ThreadHistogram:     m.threadHist.Normalized(),
		Decisions:           m.selections.Total() + m.fallback,
		Quarantined:         quarantined,
		QuarantineCount:     counts,
		SanitizedValues:     m.sanitized,
		ReroutedDecisions:   m.rerouted,
		FallbackDecisions:   m.fallback,
		SuspectObservations: m.trust.suspects,
		ExpertNames:         m.experts.Names(),
	}
	if m.evo != nil {
		// Selections of retired experts no longer own a histogram bin but
		// remain decisions that happened.
		st.Decisions += m.evo.retiredSel
		st.PoolBirths = m.evo.births
		st.PoolRetirements = m.evo.retirements
		st.PoolEpoch = m.evo.epoch
	}
	for i := 0; i < k; i++ {
		st.SelectionFraction[i] = m.selections.Fraction(i)
		if m.observations[i] > 0 {
			st.EnvAccuracy[i] = float64(m.accurate[i]) / float64(m.observations[i])
		}
		if m.obsNormSum > 0 {
			st.NormalizedError[i] = m.errSum[i] / m.obsNormSum
		}
	}
	if m.mixObserved > 0 {
		st.MixtureEnvAccuracy = float64(m.mixAccurate) / float64(m.mixObserved)
	}
	return st
}

// EnableDecisionDetail implements telemetry.Detailer: from the next Decide
// on, the mixture captures its per-decision internals (gating errors,
// selection, fallback rung, trust verdict, health transitions) for
// DecisionDetail to read. Capture is observation only — decisions are
// byte-identical with it on or off.
func (m *Mixture) EnableDecisionDetail() {
	m.fastPrimed = false
	if m.detail == nil {
		m.detail = &decisionDetail{selected: -1}
	}
}

// DisableDecisionDetail turns per-decision capture back off, returning the
// mixture to the Healthy-eligible regime set (detail capture forces
// RegimeObserved; see batch.go). Like enabling, disabling never changes a
// decision.
func (m *Mixture) DisableDecisionDetail() {
	m.fastPrimed = false
	m.detail = nil
}

// DecisionDetail implements telemetry.Detailer: it copies the most recent
// decision's internals into rec. It reports false until detail capture is
// enabled.
func (m *Mixture) DecisionDetail(rec *telemetry.Record) bool {
	det := m.detail
	if det == nil {
		return false
	}
	rec.PolicyRepaired = det.repaired
	rec.Suspect = det.suspect
	rec.SelectedExpert = det.selected
	rec.FallbackRung = det.rung
	if len(det.gating) > 0 {
		rec.GatingErrors = append(rec.GatingErrors[:0], det.gating...)
	}
	if len(det.events) > 0 {
		rec.HealthEvents = append(rec.HealthEvents[:0], det.events...)
	}
	if det.poolSize > 0 {
		rec.PoolSize = det.poolSize
		rec.PoolEpoch = det.poolEpoch
		rec.PoolEvents = append(rec.PoolEvents[:0], det.poolEvents...)
		rec.PoolAges = append(rec.PoolAges[:0], det.poolAges...)
	}
	return true
}

// String summarizes the mixture for logs.
func (m *Mixture) String() string {
	return fmt.Sprintf("mixture(%d experts, %s selector)", len(m.experts), m.selector.Name())
}
