package experiments

import (
	"fmt"

	"moe/internal/sim"
	"moe/internal/stats"
	"moe/internal/trace"
	"moe/internal/workload"
)

// Churn extends the paper's fixed-workload scenarios with the arrival and
// departure pattern of the Fig 1 production log: workload programs arrive
// in staggered waves and *leave when they finish* instead of looping
// forever, so the external load rises and falls during the target's run.
// This is the regime the paper's introduction motivates ("the environment
// is shared, dynamic and unknown") distilled into one experiment: policies
// must ride load transitions in both directions.
func (l *Lab) Churn(sc Scale) (*Table, error) {
	t := &Table{
		Title:   "Churn — workloads arriving and departing mid-run (speedup over default)",
		Columns: policyColumns(BaselinePolicies),
	}
	rows, err := grid(l, len(sc.Targets), func(ti int) (map[PolicyName]float64, error) {
		return l.churnSpeedups(sc.Targets[ti], sc, uint64(ti))
	})
	if err != nil {
		return nil, err
	}
	per := make(map[PolicyName][]float64)
	for ti, target := range sc.Targets {
		speedups := rows[ti]
		vals := make([]float64, len(BaselinePolicies))
		for i, n := range BaselinePolicies {
			vals[i] = speedups[n]
			per[n] = append(per[n], speedups[n])
		}
		t.AddRow(target, vals...)
	}
	hm := make([]float64, len(BaselinePolicies))
	for i, n := range BaselinePolicies {
		hm[i] = stats.HMean(per[n])
	}
	t.AddRow("hmean", hm...)
	return t, nil
}

// churnSpeedups runs the churn scenario for one target under every policy
// with identical conditions.
func (l *Lab) churnSpeedups(target string, sc Scale, salt uint64) (map[PolicyName]float64, error) {
	run := func(name PolicyName, seed uint64) (float64, error) {
		p, err := l.NewPolicy(name, target, seed)
		if err != nil {
			return 0, err
		}
		out, err := l.runChurn(target, p, seed)
		if err != nil {
			return 0, err
		}
		return out, nil
	}
	repeats := max(1, sc.Repeats)
	cols := 1 + len(BaselinePolicies)
	times, err := grid(l, repeats*cols, func(i int) (float64, error) {
		r, c := i/cols, i%cols
		seed := sc.Seed + salt*104729 + uint64(r)*1000003
		name := PolicyDefault
		if c > 0 {
			name = BaselinePolicies[c-1]
		}
		return run(name, seed)
	})
	if err != nil {
		return nil, err
	}
	out := make(map[PolicyName]float64, len(BaselinePolicies))
	for r := 0; r < repeats; r++ {
		base := times[r*cols]
		for ci, name := range BaselinePolicies {
			out[name] += times[r*cols+1+ci] / base / float64(repeats)
		}
	}
	// Convert accumulated time ratios into speedups.
	for name, ratio := range out {
		out[name] = 1 / ratio
	}
	return out, nil
}

// runChurn assembles the arrival/departure scenario: three waves of
// finite (non-looping) workload programs, staggered so load rises, peaks
// and drains during the target's execution, plus hardware churn.
func (l *Lab) runChurn(target string, p sim.Policy, seed uint64) (float64, error) {
	prog, err := workload.ByName(target)
	if err != nil {
		return 0, err
	}
	machine := l.Eval
	hw, err := trace.GenerateHardware(trace.NewRNG(seed^0xc4a412), machine.Cores, trace.LowFrequency, DefaultMaxTime)
	if err != nil {
		return 0, err
	}
	machine.Hardware = hw

	waves := []struct {
		programs []string
		delay    float64
	}{
		{[]string{"cg", "ft"}, 0},
		{[]string{"bt", "art", "is"}, 60},
		{[]string{"mg", "equake"}, 150},
	}
	specs := []sim.ProgramSpec{{Program: prog.Clone(), Policy: p, Target: true}}
	for wi, wave := range waves {
		for pi, name := range wave.programs {
			wp, err := workload.ByName(name)
			if err != nil {
				return 0, err
			}
			dp, err := l.NewPolicy(PolicyDefault, name, seed+uint64(wi*7+pi))
			if err != nil {
				return 0, err
			}
			specs = append(specs, sim.ProgramSpec{
				Program:    wp.Clone(),
				Policy:     dp,
				StartDelay: wave.delay,
				// Non-looping: each program departs when it finishes.
			})
		}
	}
	res, err := sim.Run(sim.Scenario{
		Stepping:  l.Stepping,
		Machine:   machine,
		Programs:  specs,
		MaxTime:   DefaultMaxTime,
		RateNoise: DefaultRateNoise,
		Seed:      seed,
	})
	if err != nil {
		return 0, err
	}
	tr, err := res.Target()
	if err != nil {
		return 0, err
	}
	exec, err := effectiveExecTime(tr, prog.TotalWork(), DefaultMaxTime)
	if err != nil {
		return 0, fmt.Errorf("experiments: churn target %s: %w", target, err)
	}
	return exec, nil
}
