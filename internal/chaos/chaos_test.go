package chaos

import (
	"math"
	"testing"

	"moe/internal/features"
	"moe/internal/sim"
	"moe/internal/trace"
)

// capture records every decision the injector forwards, so tests can
// inspect exactly what the wrapped policy observed.
type capture struct {
	ds []sim.Decision
}

func (c *capture) Name() string { return "capture" }

func (c *capture) Decide(d sim.Decision) int {
	c.ds = append(c.ds, d)
	return d.CurrentThreads
}

func testDecision(t float64) sim.Decision {
	return sim.Decision{
		Time: t,
		Features: features.Combine(
			features.Code{LoadStore: 0.05, Instructions: 0.1, Branches: 0.01},
			features.Env{WorkloadThreads: 8, Processors: 16, RunQueue: 2,
				Load1: 18, Load5: 16, CachedMem: 4, PageFreeRate: 0.3},
		),
		Rate:           120,
		CurrentThreads: 4,
		MaxThreads:     32,
		AvailableProcs: 16,
	}
}

func TestScheduleActiveAt(t *testing.T) {
	cases := []struct {
		name  string
		s     Schedule
		t     float64
		wantA bool
	}{
		{"zero value always", Always(), 0, true},
		{"zero value late", Always(), 1e9, true},
		{"before start", Window(10, 5), 9.99, false},
		{"window open", Window(10, 5), 10, true},
		{"window interior", Window(10, 5), 14.99, true},
		{"window closed", Window(10, 5), 15, false},
		{"open-ended", Schedule{Start: 10}, 1e9, true},
		{"pulse first window", Pulse(10, 5, 20), 12, true},
		{"pulse first gap", Pulse(10, 5, 20), 18, false},
		{"pulse second window", Pulse(10, 5, 20), 31, true},
		{"pulse second gap", Pulse(10, 5, 20), 36, false},
		{"pulse far future", Pulse(10, 5, 20), 10 + 20*1000 + 2, true},
		{"saturated pulse", Pulse(0, 20, 10), 999, true},
	}
	for _, c := range cases {
		if got := c.s.ActiveAt(c.t); got != c.wantA {
			t.Errorf("%s: ActiveAt(%v) = %v, want %v", c.name, c.t, got, c.wantA)
		}
	}
}

// TestInjectorTransparent: with no faults (or outside every active window)
// the wrapped policy sees the engine's decision bit-for-bit, and the
// injector reports the inner policy's name.
func TestInjectorTransparent(t *testing.T) {
	inner := &capture{}
	inj, err := NewInjector(inner, 1,
		ScheduledFault{Fault: Corrupt{Prob: 1}, Schedule: Window(1000, 10)})
	if err != nil {
		t.Fatal(err)
	}
	if inj.Name() != "capture" {
		t.Errorf("Name() = %q, want the inner policy's name", inj.Name())
	}
	d := testDecision(5)
	got := inj.Decide(d)
	if got != d.CurrentThreads {
		t.Errorf("Decide = %d, want inner's %d", got, d.CurrentThreads)
	}
	if len(inner.ds) != 1 || inner.ds[0] != d {
		t.Errorf("inner saw %+v, want the unperturbed decision", inner.ds[0])
	}
	if n := inj.Applied()[0]; n != 0 {
		t.Errorf("inactive fault applied %d times", n)
	}
}

// TestInjectorDeterministic: same seed and fault set → identical
// perturbations, decision for decision.
func TestInjectorDeterministic(t *testing.T) {
	build := func() *capture {
		inner := &capture{}
		inj, err := NewInjector(inner, 42,
			ScheduledFault{Fault: FeatureNoise{Sigma: 0.5}, Schedule: Always()},
			ScheduledFault{Fault: Corrupt{Prob: 0.3}, Schedule: Pulse(5, 10, 20)},
			ScheduledFault{Fault: ClockSkew{MaxSkew: 7}, Schedule: Always()},
		)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			inj.Decide(testDecision(float64(i)))
		}
		return inner
	}
	a, b := build(), build()
	if len(a.ds) != len(b.ds) {
		t.Fatalf("runs saw %d vs %d decisions", len(a.ds), len(b.ds))
	}
	for i := range a.ds {
		if !decisionsEqual(a.ds[i], b.ds[i]) {
			t.Fatalf("decision %d diverged:\n%+v\nvs\n%+v", i, a.ds[i], b.ds[i])
		}
	}
}

// decisionsEqual compares decisions treating NaN as equal to NaN (corrupt
// observations must still replay identically).
func decisionsEqual(a, b sim.Decision) bool {
	feq := func(x, y float64) bool {
		if math.IsNaN(x) && math.IsNaN(y) {
			return true
		}
		return x == y
	}
	if !feq(a.Time, b.Time) || !feq(a.Rate, b.Rate) {
		return false
	}
	for i := range a.Features {
		if !feq(a.Features[i], b.Features[i]) {
			return false
		}
	}
	return a.CurrentThreads == b.CurrentThreads && a.MaxThreads == b.MaxThreads &&
		a.AvailableProcs == b.AvailableProcs && a.RegionStart == b.RegionStart &&
		a.RegionIndex == b.RegionIndex
}

// TestFaultStreamsIndependent: a fault's perturbations are identical
// whether it runs alone or composed with other faults at the same
// position, because each position derives an independent stream.
func TestFaultStreamsIndependent(t *testing.T) {
	run := func(extra bool) []sim.Decision {
		inner := &capture{}
		faults := []ScheduledFault{{Fault: FeatureNoise{Sigma: 0.5}, Schedule: Always()}}
		if extra {
			faults = append(faults, ScheduledFault{Fault: RateBlackout{}, Schedule: Always()})
		}
		inj, err := NewInjector(inner, 7, faults...)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			inj.Decide(testDecision(float64(i)))
		}
		return inner.ds
	}
	alone, composed := run(false), run(true)
	for i := range alone {
		if alone[i].Features != composed[i].Features {
			t.Fatalf("decision %d: noise stream perturbed by unrelated fault:\n%v\nvs\n%v",
				i, alone[i].Features, composed[i].Features)
		}
	}
}

func TestFeatureNoise(t *testing.T) {
	d := testDecision(0)
	orig := d.Features
	FeatureNoise{Sigma: 0.5}.Apply(&d, trace.NewRNG(3))
	if d.Features.CodePart() != orig.CodePart() {
		t.Error("noise must not touch code features")
	}
	changed := 0
	for i := features.EnvStart; i < features.Dim; i++ {
		if d.Features[i] != orig[i] {
			changed++
		}
		if math.IsNaN(d.Features[i]) || math.IsInf(d.Features[i], 0) {
			t.Errorf("noise produced non-finite feature %d", i)
		}
	}
	if changed == 0 {
		t.Error("noise changed nothing")
	}
}

func TestDropoutZero(t *testing.T) {
	d := testDecision(0)
	orig := d.Features
	f := &Dropout{}
	f.Apply(&d, nil)
	if d.Features.CodePart() != orig.CodePart() {
		t.Error("dropout must not touch code features")
	}
	if e := d.Features.EnvPart(); e != (features.Env{}) {
		t.Errorf("zero dropout left environment %+v", e)
	}
}

func TestDropoutStale(t *testing.T) {
	f := &Dropout{Stale: true}
	d1 := testDecision(0)
	first := d1.Features.EnvPart()
	f.Apply(&d1, nil)
	if d1.Features.EnvPart() != first {
		t.Error("stale dropout must replay the first environment unchanged")
	}
	// A later, different environment must be replaced by the frozen one.
	d2 := testDecision(1)
	d2.Features[features.Processors] = 2
	d2.Features[features.CPULoad1] = 99
	f.Apply(&d2, nil)
	if d2.Features.EnvPart() != first {
		t.Errorf("stale dropout served %+v, want the frozen %+v", d2.Features.EnvPart(), first)
	}
}

func TestCorrupt(t *testing.T) {
	d := testDecision(0)
	Corrupt{Prob: 1}.Apply(&d, trace.NewRNG(11))
	for i := features.EnvStart; i < features.Dim; i++ {
		if !math.IsNaN(d.Features[i]) && !math.IsInf(d.Features[i], 0) {
			t.Errorf("Prob=1 corruption left feature %d finite: %v", i, d.Features[i])
		}
	}
	if !math.IsNaN(d.Rate) && !math.IsInf(d.Rate, 0) {
		t.Errorf("Prob=1 corruption left rate finite: %v", d.Rate)
	}
	if d.Features.CodePart() != testDecision(0).Features.CodePart() {
		t.Error("corruption must not touch code features")
	}
}

func TestClockSkew(t *testing.T) {
	rng := trace.NewRNG(5)
	sawBackward := false
	for i := 0; i < 200; i++ {
		d := testDecision(100)
		ClockSkew{MaxSkew: 40}.Apply(&d, rng)
		if d.Time < 100-40 || d.Time > 100+40 {
			t.Fatalf("skewed time %v outside ±40 of 100", d.Time)
		}
		if d.Time < 100 {
			sawBackward = true
		}
	}
	if !sawBackward {
		t.Error("clock skew never moved time backwards")
	}
	// Skew never produces negative time.
	d := testDecision(1)
	for i := 0; i < 100; i++ {
		ClockSkew{MaxSkew: 50}.Apply(&d, rng)
		if d.Time < 0 {
			t.Fatalf("skewed time went negative: %v", d.Time)
		}
		d.Time = 1
	}
}

func TestHotplugStorm(t *testing.T) {
	rng := trace.NewRNG(9)
	seen := map[int]bool{}
	for i := 0; i < 300; i++ {
		d := testDecision(float64(i))
		HotplugStorm{MaxProcs: 8}.Apply(&d, rng)
		if d.AvailableProcs < 1 || d.AvailableProcs > 8 {
			t.Fatalf("availability %d outside [1, 8]", d.AvailableProcs)
		}
		if d.Features[features.Processors] != float64(d.AvailableProcs) {
			t.Fatal("f5 and AvailableProcs must oscillate together")
		}
		seen[d.AvailableProcs] = true
	}
	if len(seen) < 4 {
		t.Errorf("storm visited only %d availability levels", len(seen))
	}
	// Zero MaxProcs falls back to the machine cap.
	d := testDecision(0)
	HotplugStorm{}.Apply(&d, rng)
	if d.AvailableProcs < 1 || d.AvailableProcs > d.MaxThreads {
		t.Errorf("default-cap storm gave %d, cap %d", d.AvailableProcs, d.MaxThreads)
	}
}

func TestRateBlackout(t *testing.T) {
	d := testDecision(0)
	RateBlackout{}.Apply(&d, nil)
	if d.Rate != 0 {
		t.Errorf("rate after blackout = %v, want 0", d.Rate)
	}
}

func TestKindsRegistry(t *testing.T) {
	names := map[string]bool{}
	for _, kind := range Kinds() {
		sf, err := NewKindFault(kind, 32)
		if err != nil {
			t.Fatalf("NewKindFault(%q): %v", kind, err)
		}
		if sf.Fault.Name() != kind {
			t.Errorf("kind %q built fault named %q", kind, sf.Fault.Name())
		}
		if names[kind] {
			t.Errorf("duplicate kind %q", kind)
		}
		names[kind] = true
	}
	if _, err := NewKindFault("solar-flare", 32); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestNewInjectorRejects(t *testing.T) {
	if _, err := NewInjector(nil, 1); err == nil {
		t.Error("nil inner policy accepted")
	}
	if _, err := NewInjector(&capture{}, 1, ScheduledFault{}); err == nil {
		t.Error("nil fault accepted")
	}
}

// TestAppliedCounts: schedules gate exactly which decisions each fault
// perturbs, and the counters record it.
func TestAppliedCounts(t *testing.T) {
	inner := &capture{}
	inj, err := NewInjector(inner, 1,
		ScheduledFault{Fault: RateBlackout{}, Schedule: Always()},
		ScheduledFault{Fault: RateBlackout{}, Schedule: Window(10, 20)},
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		inj.Decide(testDecision(float64(i)))
	}
	got := inj.Applied()
	if got[0] != 100 {
		t.Errorf("always-on fault applied %d, want 100", got[0])
	}
	if got[1] != 20 {
		t.Errorf("windowed fault applied %d, want 20", got[1])
	}
}
