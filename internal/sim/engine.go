package sim

import (
	"fmt"
	"math"

	"moe/internal/features"
	"moe/internal/stats"
	"moe/internal/trace"
	"moe/internal/workload"
)

// Timestep constants. The engine advances in fixed dt steps; policies are
// consulted every ControlInterval and at region boundaries, matching a
// runtime that re-decides the thread count at every parallel loop.
const (
	DefaultDT              = 0.1 // seconds of virtual time per step
	DefaultControlInterval = 0.5 // seconds between policy consultations
)

// ProgramSpec binds a program model to the policy that controls it and the
// role it plays in the scenario.
type ProgramSpec struct {
	Program *workload.Program
	Policy  Policy
	// Loop makes the program restart when it completes, modelling
	// external workloads that keep the system busy until the target
	// finishes (§6.1: "continue running till the other finishes").
	Loop bool
	// Target marks the program whose completion ends the scenario.
	Target bool
	// StartDelay postpones the program's arrival.
	StartDelay float64
}

// Sample is one timestep observation of a program, used to build training
// data and the timeline figures (Fig 2).
type Sample struct {
	Time     float64
	Features features.Vector
	EnvNorm  float64 // ‖e‖ of the environment features at this time
	Threads  int     // thread count in force
	Rate     float64 // instantaneous work rate
	BestRate float64 // rate the oracle thread count would achieve
	OracleN  int     // oracle-optimal thread count at this instant
	// RateCurve holds the ground-truth parallel-phase rate for every
	// thread count 1..cores (RecordOracle only); it labels the paper's
	// speedup model x(n, f) (§4.1).
	RateCurve  []float64
	Region     int // flat region-execution index
	Available  int // processors online
	WorkldThr  int // external workload threads
	RegionName string
}

// ProgramResult summarizes one program's run.
type ProgramResult struct {
	Name string
	// Finished reports whether the program ran to completion (targets) —
	// looping workloads never finish.
	Finished bool
	// ExecTime is the completion time for finished programs, else the
	// scenario duration.
	ExecTime float64
	// WorkDone is total work units completed (loops included), the
	// throughput measure used for workload impact (Fig 13a).
	WorkDone float64
	// Samples holds the per-control-interval trace if sampling was
	// enabled.
	Samples []Sample
	// ThreadHist counts control intervals spent at each thread count
	// (Fig 17).
	ThreadHist *stats.Histogram
	// DecisionCount is how many times the policy was consulted.
	DecisionCount int
}

// Result is a completed scenario.
type Result struct {
	Programs []ProgramResult
	// Duration is the virtual time the scenario ran.
	Duration float64
	// TargetIndex is the index of the target program in Programs, or -1.
	TargetIndex int
}

// Target returns the target program's result.
func (r *Result) Target() (*ProgramResult, error) {
	if r.TargetIndex < 0 || r.TargetIndex >= len(r.Programs) {
		return nil, fmt.Errorf("sim: result has no target program")
	}
	return &r.Programs[r.TargetIndex], nil
}

// WorkloadThroughput returns total work per second completed by non-target
// programs, the workload-performance measure of Fig 13a.
func (r *Result) WorkloadThroughput() float64 {
	if r.Duration <= 0 {
		return 0
	}
	sum := 0.0
	for i := range r.Programs {
		if i != r.TargetIndex {
			sum += r.Programs[i].WorkDone
		}
	}
	return sum / r.Duration
}

// Scenario is one co-execution experiment.
type Scenario struct {
	Machine  MachineConfig
	Programs []ProgramSpec
	// MaxTime bounds the run; required so broken policies cannot hang.
	MaxTime float64
	// DT and ControlInterval override the defaults when positive.
	DT              float64
	ControlInterval float64
	// RecordSamples enables per-interval traces on all programs (memory
	// proportional to duration; off for bulk sweeps).
	RecordSamples bool
	// RecordOracle additionally computes the oracle thread count at each
	// control point (used for training-data generation; costs one rate
	// evaluation per candidate thread count).
	RecordOracle bool
	// RateNoise is the relative standard deviation of multiplicative
	// measurement noise applied to the Rate reported to policies (real
	// runtimes time intervals against a noisy clock on a noisy machine).
	// Actual simulated progress is unaffected. Zero disables noise.
	RateNoise float64
	// Seed drives the measurement-noise stream; the default (0) derives
	// a fixed seed so runs stay reproducible.
	Seed uint64
}

// instance is the runtime state of one program. Each region executes in
// two phases: the serial prologue (one runnable thread) followed by the
// parallel phase (the policy-chosen thread count).
type instance struct {
	spec         ProgramSpec
	threads      int
	regionIdx    int     // flat region-execution index
	serialLeft   float64 // serial work left in the current region
	parallelLeft float64 // parallel work left in the current region
	arrived      bool
	finished     bool
	finishTime   float64
	workDone     float64
	// control-interval accounting
	intervalWork  float64
	lastRate      float64
	nextControl   float64
	regionPending bool // region boundary reached; consult policy
	// extWL smooths the instance's view of external workload threads
	// (total runnable minus own demand) so the program's own
	// serial/parallel transitions do not masquerade as workload churn.
	extWL  *stats.EMA
	result ProgramResult
}

// enterRegion loads the region at the instance's current index, carrying
// surplus progress from the previous step into the serial phase first.
func (in *instance) enterRegion(surplus float64) {
	r := in.spec.Program.RegionAt(in.regionIdx)
	in.serialLeft = (1 - r.ParallelFrac) * r.Work
	in.parallelLeft = r.ParallelFrac * r.Work
	in.serialLeft -= surplus
	if in.serialLeft < 0 {
		in.parallelLeft += in.serialLeft
		in.serialLeft = 0
	}
	in.regionPending = true
}

// engineState carries the shared per-step machine state.
type engineState struct {
	cfg       MachineConfig
	load1     *stats.EMA
	load5     *stats.EMA
	pageEMA   *stats.EMA
	wlEMA     *stats.EMA // short smoothing of runnable threads (sar-style)
	runqEMA   *stats.EMA // short smoothing of the run queue
	lastHW    int
	hwChange  float64 // time of last hardware change, drives migration churn
	noise     *trace.RNG
	rateNoise float64
}

// Run executes the scenario to completion of the target (or MaxTime) and
// returns per-program results.
func Run(s Scenario) (*Result, error) {
	cfg := s.Machine.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(s.Programs) == 0 {
		return nil, fmt.Errorf("sim: scenario has no programs")
	}
	if s.MaxTime <= 0 {
		return nil, fmt.Errorf("sim: scenario needs positive MaxTime")
	}
	dt := s.DT
	if dt <= 0 {
		dt = DefaultDT
	}
	ctrl := s.ControlInterval
	if ctrl <= 0 {
		ctrl = DefaultControlInterval
	}

	targetIdx := -1
	insts := make([]*instance, len(s.Programs))
	for i, spec := range s.Programs {
		if spec.Program == nil {
			return nil, fmt.Errorf("sim: program %d is nil", i)
		}
		if spec.Policy == nil {
			return nil, fmt.Errorf("sim: program %d (%s) has no policy", i, spec.Program.Name)
		}
		if err := spec.Program.Validate(); err != nil {
			return nil, err
		}
		if spec.Target {
			if targetIdx >= 0 {
				return nil, fmt.Errorf("sim: multiple target programs")
			}
			targetIdx = i
		}
		insts[i] = &instance{
			spec:    spec,
			threads: 1,
			extWL:   stats.NewEMA(2),
			result: ProgramResult{
				Name:       spec.Program.Name,
				ThreadHist: stats.NewHistogram(),
			},
		}
		insts[i].enterRegion(0)
	}

	seed := s.Seed
	if seed == 0 {
		seed = 0x517a7e51 + uint64(len(s.Programs))
	}
	es := &engineState{
		cfg:       cfg,
		load1:     stats.NewEMA(60),
		load5:     stats.NewEMA(300),
		pageEMA:   stats.NewEMA(5),
		wlEMA:     stats.NewEMA(2),
		runqEMA:   stats.NewEMA(2),
		lastHW:    cfg.availableAt(0),
		hwChange:  -1e9,
		noise:     trace.NewRNG(seed),
		rateNoise: s.RateNoise,
	}

	steps := int(math.Ceil(s.MaxTime / dt))
	for step := 0; step <= steps; step++ {
		t := float64(step) * dt
		avail := cfg.availableAt(t)
		if avail != es.lastHW {
			es.lastHW = avail
			es.hwChange = t
		}

		// Arrival and completion bookkeeping.
		for _, in := range insts {
			if !in.arrived && t >= in.spec.StartDelay {
				in.arrived = true
				in.nextControl = t
			}
		}

		// Shared machine state for this step.
		env, rawRunnable := sampleEnv(insts, es, t, avail, dt)
		for _, in := range insts {
			if in.arrived && !in.finished {
				ext := float64(rawRunnable - in.demand())
				if ext < 0 {
					ext = 0
				}
				in.extWL.Update(ext, dt)
			}
		}

		// Policy control points.
		for _, in := range insts {
			if !in.arrived || in.finished {
				continue
			}
			if t+1e-9 >= in.nextControl || in.regionPending {
				consult(in, insts, es, env, t, avail, ctrl, s)
			}
		}

		// Advance every live program by dt.
		for _, in := range insts {
			if !in.arrived || in.finished {
				continue
			}
			// Consume the step's time across phase and region
			// boundaries, re-evaluating the rate whenever the phase
			// changes: serial work progresses at the serial rate,
			// parallel work at the parallel rate, never mixed. Other
			// programs' demands are held constant within the step.
			remaining := dt
			for iter := 0; remaining > 1e-12 && !in.finished && iter < 64; iter++ {
				rate := progressRate(in, insts, es, avail, in.threads)
				if rate <= 0 {
					break
				}
				phaseLeft := &in.parallelLeft
				if in.serialLeft > 0 {
					phaseLeft = &in.serialLeft
				}
				done := rate * remaining
				if done < *phaseLeft {
					*phaseLeft -= done
					in.workDone += done
					in.intervalWork += done
					remaining = 0
					break
				}
				// Phase exhausted: charge only the time it needed.
				in.workDone += *phaseLeft
				in.intervalWork += *phaseLeft
				remaining -= *phaseLeft / rate
				*phaseLeft = 0
				if in.serialLeft <= 0 && in.parallelLeft <= 0 {
					// Region complete; move to the next.
					in.regionIdx++
					if in.regionIdx >= in.spec.Program.RegionCount() {
						if in.spec.Loop {
							in.regionIdx = 0
							in.enterRegion(0)
						} else {
							in.finished = true
							in.finishTime = t + dt - remaining
						}
					} else {
						in.enterRegion(0)
					}
				}
			}
		}

		// Scenario ends when the target finishes.
		if targetIdx >= 0 && insts[targetIdx].finished {
			break
		}
		allDone := true
		for _, in := range insts {
			if !in.finished {
				allDone = false
				break
			}
		}
		if allDone {
			break
		}
	}

	res := &Result{TargetIndex: targetIdx}
	duration := 0.0
	for _, in := range insts {
		r := in.result
		r.Finished = in.finished
		if in.finished {
			r.ExecTime = in.finishTime
		} else {
			r.ExecTime = s.MaxTime
		}
		r.WorkDone = in.workDone
		if r.ExecTime > duration {
			duration = r.ExecTime
		}
		res.Programs = append(res.Programs, r)
	}
	if targetIdx >= 0 && insts[targetIdx].finished {
		duration = insts[targetIdx].finishTime
	}
	res.Duration = duration
	return res, nil
}

// consult invokes the instance's policy at a control point.
func consult(in *instance, insts []*instance, es *engineState, env features.Env, t float64, avail int, ctrl float64, s Scenario) {
	prog := in.spec.Program
	code := prog.CodeFeatures(in.regionIdx)
	feat := features.Combine(code, envExcluding(env, in))

	// Instantaneous rate over the last control interval, with optional
	// measurement noise (the simulated progress itself is exact; only
	// what the policy observes is noisy).
	rate := in.lastRate
	if t > 0 && in.intervalWork > 0 {
		rate = in.intervalWork / ctrl
		if es.rateNoise > 0 {
			factor := 1 + es.rateNoise*es.noise.Norm()
			if factor < 0.1 {
				factor = 0.1
			}
			rate *= factor
		}
	}

	d := Decision{
		Time:           t,
		Features:       feat,
		Rate:           rate,
		CurrentThreads: in.threads,
		MaxThreads:     es.cfg.Cores,
		AvailableProcs: avail,
		RegionStart:    in.regionPending,
		RegionIndex:    in.regionIdx,
	}
	var n int
	if oa, isOracle := in.spec.Policy.(OracleAware); isOracle {
		oracleN, _ := oracleThreads(in, insts, es, avail)
		n = oa.DecideWithOracle(d, oracleN)
	} else {
		n = in.spec.Policy.Decide(d)
	}
	// Programs may oversubscribe (OMP_NUM_THREADS can exceed the core
	// count) but not without bound; Decision.MaxThreads advertises the
	// sensible cap, the engine only guards against runaway values.
	n = stats.ClampInt(n, 1, 4*es.cfg.Cores)
	in.threads = n
	in.result.DecisionCount++
	in.result.ThreadHist.Add(n)

	if s.RecordSamples {
		sample := Sample{
			Time:       t,
			Features:   feat,
			EnvNorm:    feat.EnvNorm(),
			Threads:    n,
			Rate:       rate,
			Region:     in.regionIdx,
			Available:  avail,
			WorkldThr:  int(feat[features.WorkloadThreads]),
			RegionName: prog.RegionAt(in.regionIdx).Name,
		}
		if s.RecordOracle {
			bestN, bestRate := oracleThreads(in, insts, es, avail)
			sample.OracleN = bestN
			curve := make([]float64, es.cfg.Cores)
			for n := 1; n <= es.cfg.Cores; n++ {
				curve[n-1] = parallelPhaseRate(in, insts, es, avail, n)
			}
			sample.RateCurve = curve
			sample.BestRate = bestRate
		}
		in.result.Samples = append(in.result.Samples, sample)
	}

	in.lastRate = rate
	in.intervalWork = 0
	in.nextControl = t + ctrl
	in.regionPending = false
}

// oracleThreads evaluates every thread count and returns the best — the
// simulator analog of exhaustively running all thread counts, used to label
// training data. "Best" is the smallest count within 1% of the peak rate:
// rate curves flatten near their top, and the smallest near-optimal count
// is both a stable regression label and the efficient choice (equal speed,
// less system load).
func oracleThreads(in *instance, insts []*instance, es *engineState, avail int) (int, float64) {
	rates := make([]float64, es.cfg.Cores)
	peak := -1.0
	for n := 1; n <= es.cfg.Cores; n++ {
		r := parallelPhaseRate(in, insts, es, avail, n)
		rates[n-1] = r
		if r > peak {
			peak = r
		}
	}
	for n := 1; n <= es.cfg.Cores; n++ {
		if rates[n-1] >= 0.99*peak {
			return n, rates[n-1]
		}
	}
	return 1, rates[0]
}

// RateCurve evaluates the ground-truth rate model for every thread count
// from 1 to cfg.Cores in a hypothetical environment described by the number
// of co-running programs (each assumed to demand their fair slot fully),
// their total threads and aggregate memory pressure. It backs calibration
// tests and the model-inspection tooling.
func RateCurve(cfg MachineConfig, region workload.Region, otherPrograms, otherThreads int, otherMemPressure float64, avail int) []float64 {
	cfg = cfg.withDefaults()
	out := make([]float64, cfg.Cores)
	perOther := 0
	if otherPrograms > 0 {
		perOther = otherThreads / otherPrograms
	}
	for n := 1; n <= cfg.Cores; n++ {
		demands := make([]int, 1+otherPrograms)
		demands[0] = n
		for i := 1; i <= otherPrograms; i++ {
			demands[i] = perOther
		}
		shares := ProgramShares(demands, avail)
		out[n-1] = regionRate(cfg, region, n, shares[0], otherThreads, otherMemPressure, avail)
	}
	return out
}
